// Query analytics on discarded data: after the in-situ pipeline has kept
// only bitmaps, answer value/spatial subset queries, approximate aggregates
// with rigorous bounds, interactive correlation queries, incomplete-data
// aggregation, and subgroup discovery — all without the original arrays
// (the paper's §2.2/§4.1 companion analyses).
//
//	go run ./examples/query-analytics
package main

import (
	"context"
	"fmt"
	"log"

	"insitubits"
)

func main() {
	// Pretend these came back from disk: ocean temperature/salinity indices.
	d, err := insitubits.GenerateOcean(64, 64, 16, 123)
	if err != nil {
		log.Fatal(err)
	}
	temp, _ := d.VarCurveOrder("temperature")
	salt, _ := d.VarCurveOrder("salinity")
	oxy, _ := d.VarCurveOrder("oxygen")
	tlo, thi := insitubits.MinMax(temp)
	slo, shi := insitubits.MinMax(salt)
	olo, ohi := insitubits.MinMax(oxy)
	mt, _ := insitubits.NewUniformBins(tlo, thi+1e-9, 64)
	ms, _ := insitubits.NewUniformBins(slo, shi+1e-9, 64)
	mo, _ := insitubits.NewUniformBins(olo, ohi+1e-9, 64)
	xt := insitubits.BuildIndex(temp, mt)
	xs := insitubits.BuildIndex(salt, ms)
	xo := insitubits.BuildIndex(oxy, mo)
	n := xt.N()
	fmt.Printf("indices only from here on (%d cells; raw data conceptually discarded)\n\n", n)

	// 1. Subset counting is exact.
	warm := insitubits.QuerySubset{ValueLo: 15, ValueHi: 100}
	c, err := insitubits.SubsetCount(context.Background(), xt, warm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cells with temperature >= 15 C: %d (%.1f%%)\n", c, 100*float64(c)/float64(n))

	// 2. Aggregation is approximate but rigorously bounded.
	upper := insitubits.QuerySubset{SpatialLo: 0, SpatialHi: n / 4} // first quarter of the Z-curve
	mean, err := insitubits.SubsetMean(context.Background(), xt, upper)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean temperature over first curve quarter: %.3f C (true value in [%.3f, %.3f])\n",
		mean.Estimate, mean.Lo, mean.Hi)
	min, max, err := insitubits.SubsetMinMax(context.Background(), xt, insitubits.QuerySubset{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("temperature extremes: min in [%.2f, %.2f], max in [%.2f, %.2f]\n\n",
		min.Lo, min.Hi, max.Lo, max.Hi)

	// 3. Interactive correlation query (§4.1): how coupled are T and S
	//    inside a planted current vs a random block?
	reg := d.Planted[0]
	// Convert the region's first cells into a curve range by probing.
	cells := d.PlantedCurveCells()
	lo, hi := -1, -1
	for i, in := range cells {
		if in {
			if lo < 0 {
				lo = i
			}
			hi = i + 1
		}
	}
	sub := insitubits.QuerySubset{SpatialLo: lo, SpatialHi: hi}
	inCur, err := insitubits.CorrelationQuery(context.Background(), xt, xs, sub, sub)
	if err != nil {
		log.Fatal(err)
	}
	ref := insitubits.QuerySubset{SpatialLo: 0, SpatialHi: hi - lo}
	outCur, err := insitubits.CorrelationQuery(context.Background(), xt, xs, ref, ref)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correlation query I(T;S): planted span %.3f bits vs reference span %.3f bits\n",
		inCur.MI, outCur.MI)
	_ = reg

	// 4. Incomplete data: mask out a sensor dropout and aggregate anyway.
	validIdx := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if i < n/3 || i >= n/3+n/10 { // a contiguous dropout of 10%
			validIdx = append(validIdx, i)
		}
	}
	masked, err := insitubits.NewMaskedIndex(xt, insitubits.FromIndices(n, validIdx))
	if err != nil {
		log.Fatal(err)
	}
	mAgg, err := masked.Sum(context.Background(), insitubits.QuerySubset{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with %d cells missing: mean over valid = %.3f C (bounds [%.3f, %.3f])\n\n",
		masked.Missing(), mAgg.Estimate/float64(mAgg.Count), mAgg.Lo/float64(mAgg.Count), mAgg.Hi/float64(mAgg.Count))

	// 5. Subgroup discovery: under which (T, S) conditions is oxygen
	//    unusually low? (Physically: warm saline water holds less oxygen.)
	sgs, err := insitubits.DiscoverSubgroups([]*insitubits.Index{xt, xs}, xo, insitubits.SubgroupConfig{
		TopK: 3, MaxConditions: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	globalMean, _ := insitubits.SubsetMean(context.Background(), xo, insitubits.QuerySubset{})
	fmt.Printf("subgroups with anomalous oxygen (global mean %.3f):\n", globalMean.Estimate)
	for i, sg := range sgs {
		fmt.Printf("  %d. %s  -> mean %.3f over %d cells (quality %.3f)\n",
			i+1, insitubits.DescribeSubgroup(sg, []*insitubits.Index{xt, xs}, []string{"temperature", "salinity"}),
			sg.Mean, sg.Count, sg.Quality)
	}
}
