// Bitmaps vs in-situ sampling (paper §5.5): run the same Heat3D selection
// workload through both reduction methods and quantify what sampling loses.
// Bitmaps reproduce the exact full-data metrics; samples perturb them, and
// the perturbation grows as the sample shrinks.
//
//	go run ./examples/sampling-compare
package main

import (
	"fmt"
	"log"
	"math"

	"insitubits"
)

func main() {
	const steps = 24
	h, err := insitubits.NewHeat3D(32, 32, 24)
	if err != nil {
		log.Fatal(err)
	}
	mapper, err := insitubits.NewUniformBins(0, 130, 160)
	if err != nil {
		log.Fatal(err)
	}

	// Materialize the trajectory once so every method sees identical data.
	raw := make([][]float64, steps)
	for t := range raw {
		raw[t] = h.Step(2)[0].Data
	}
	n := len(raw[0])

	var exact, viaBitmaps []insitubits.Summary
	for _, data := range raw {
		exact = append(exact, insitubits.NewDataSummary(data, mapper))
		viaBitmaps = append(viaBitmaps, insitubits.NewBitmapSummary(insitubits.BuildIndex(data, mapper)))
	}
	selExact, err := insitubits.SelectTimeSteps(exact, 6, insitubits.FixedLengthPartitioning{}, insitubits.MetricConditionalEntropy)
	if err != nil {
		log.Fatal(err)
	}
	selBits, err := insitubits.SelectTimeSteps(viaBitmaps, 6, insitubits.FixedLengthPartitioning{}, insitubits.MetricConditionalEntropy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact selection:   %v\n", selExact.Selected)
	fmt.Printf("bitmap selection:  %v (identical: %v)\n", selBits.Selected, equal(selExact.Selected, selBits.Selected))

	// All-pairs conditional entropy is the quantity Figure 16 perturbs.
	ref := pairwise(exact)

	fmt.Printf("\n%-12s %-22s %14s %12s\n", "method", "selected", "mean rel.loss", "bytes/step")
	bitsBytes := viaBitmaps[0].SizeBytes()
	fmt.Printf("%-12s %-22s %13.2f%% %12d\n", "bitmaps", fmt.Sprint(selBits.Selected), 0.0, bitsBytes)

	for _, pct := range []float64{30, 15, 5, 1} {
		smp, err := insitubits.NewRandomSampler(n, pct, 99)
		if err != nil {
			log.Fatal(err)
		}
		var approx []insitubits.Summary
		for _, data := range raw {
			sd, err := smp.Sample(data)
			if err != nil {
				log.Fatal(err)
			}
			approx = append(approx, insitubits.NewDataSummary(sd, mapper))
		}
		selS, err := insitubits.SelectTimeSteps(approx, 6, insitubits.FixedLengthPartitioning{}, insitubits.MetricConditionalEntropy)
		if err != nil {
			log.Fatal(err)
		}
		got := pairwise(approx)
		loss := 0.0
		for i := range ref {
			if e := math.Abs(ref[i]); e > 1e-12 {
				loss += math.Abs(ref[i]-got[i]) / e
			}
		}
		loss /= float64(len(ref))
		fmt.Printf("%-12s %-22s %13.2f%% %12d\n",
			fmt.Sprintf("sample-%g%%", pct), fmt.Sprint(selS.Selected), 100*loss, smp.SampleBytes())
	}
	fmt.Println("\nsampling may keep fewer bytes, but its selection drifts and its metrics are biased;")
	fmt.Println("bitmaps reproduce the exact analysis at a fraction of the raw size.")
}

func pairwise(steps []insitubits.Summary) []float64 {
	var out []float64
	for i := range steps {
		for j := range steps {
			if i != j {
				out = append(out, steps[i].Dissimilarity(steps[j], insitubits.MetricConditionalEntropy))
			}
		}
	}
	return out
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
