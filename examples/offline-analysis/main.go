// Offline analysis over an in-situ archive: run a pipeline that persists
// only the selected bitmaps, then — pretending the simulation is long gone —
// load the archive and do the paper's post-analysis: trace the phenomenon's
// evolution, re-rank the archived steps with the DP selector, and answer
// value queries against data that no longer exists.
//
//	go run ./examples/offline-analysis
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"insitubits"
)

func main() {
	dir, err := os.MkdirTemp("", "insitu-archive-")
	if err != nil {
		log.Fatal(err)
	}

	// --- In-situ phase: simulate, keep only bitmaps of 8 of 40 steps. ---
	h, err := insitubits.NewHeat3D(32, 32, 24)
	if err != nil {
		log.Fatal(err)
	}
	res, err := insitubits.RunPipeline(insitubits.PipelineConfig{
		Sim: h, Steps: 40, Select: 8,
		Method: insitubits.MethodBitmaps, Bins: 160,
		Metric:    insitubits.MetricConditionalEntropy,
		Cores:     2,
		OutputDir: dir,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-situ phase kept steps %v as bitmaps in %s\n", res.Selected, dir)
	fmt.Printf("(the raw 40 x %.1f MB of simulation output is gone)\n\n", float64(res.StepBytes)/1e6)

	// --- Offline phase: everything below uses only the archive. ---
	a, err := insitubits.LoadArchive(dir)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Evolution of the phenomenon across the kept steps.
	ev, err := a.Evolve("temperature")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %10s %14s %12s\n", "step", "entropy", "H(cur|prev)", "EMD(prev)")
	for _, e := range ev {
		fmt.Printf("%-6d %10.4f %14.4f %12.0f\n", e.Step, e.Entropy, e.CondEntropy, e.EMD)
	}

	// 2. Offline re-selection: with time to spare, the DP selector finds
	//    the best 4-step storyline among the archived 8.
	picked, err := a.Reselect("temperature", 4, insitubits.MetricConditionalEntropy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDP re-selection of 4 storyline steps: %v\n", picked)

	// 3. Value queries against the discarded data.
	last := a.Steps()[len(a.Steps())-1]
	x, err := a.Index(last, "temperature")
	if err != nil {
		log.Fatal(err)
	}
	hot, err := insitubits.SubsetCount(context.Background(), x, insitubits.QuerySubset{ValueLo: 80, ValueHi: 200})
	if err != nil {
		log.Fatal(err)
	}
	med, err := insitubits.SubsetQuantile(context.Background(), x, insitubits.QuerySubset{}, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstep %d, from bitmaps alone: %d cells >= 80 C; median in [%.2f, %.2f] C\n",
		last, hot, med.Lo, med.Hi)

	// 4. Pairwise similarity matrix of the archived steps.
	pm, err := a.PairwiseMetrics("temperature")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmutual information between archived steps (bits):\n      ")
	steps := a.Steps()
	for _, s := range steps {
		fmt.Printf("%7d", s)
	}
	fmt.Println()
	for i, s := range steps {
		fmt.Printf("%5d ", s)
		for j := range steps {
			if i == j {
				fmt.Printf("%7s", "-")
			} else {
				fmt.Printf("%7.2f", pm[i][j].MI)
			}
		}
		fmt.Println()
	}
}
