// Correlation mining on a POP-like ocean dataset: generate multi-variable
// ocean state with planted temperature/salinity "currents", index both
// variables in Z-order, and run the paper's Algorithm 2 to rediscover the
// planted regions — comparing the flat, multi-level, and full-data paths.
//
//	go run ./examples/correlation-mining
package main

import (
	"fmt"
	"log"
	"time"

	"insitubits"
)

func main() {
	const lon, lat, depth = 128, 128, 16
	d, err := insitubits.GenerateOcean(lon, lat, depth, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ocean state %dx%dx%d: variables %v\n", lon, lat, depth, d.Names)
	fmt.Printf("planted correlated regions: %d (%.1f%% of cells)\n",
		len(d.Planted), 100*d.PlantedFraction())

	// Z-order layout makes each spatial unit a contiguous bit range.
	temp, err := d.VarCurveOrder("temperature")
	if err != nil {
		log.Fatal(err)
	}
	salt, err := d.VarCurveOrder("salinity")
	if err != nil {
		log.Fatal(err)
	}
	tlo, thi := insitubits.MinMax(temp)
	slo, shi := insitubits.MinMax(salt)
	mt, err := insitubits.NewUniformBins(tlo, thi+1e-9, 48)
	if err != nil {
		log.Fatal(err)
	}
	ms, err := insitubits.NewUniformBins(slo, shi+1e-9, 48)
	if err != nil {
		log.Fatal(err)
	}
	xt := insitubits.BuildIndex(temp, mt)
	xs := insitubits.BuildIndex(salt, ms)
	fmt.Printf("indices: %.1f%% and %.1f%% of raw size\n",
		100*float64(xt.SizeBytes())/float64(8*len(temp)),
		100*float64(xs.SizeBytes())/float64(8*len(salt)))

	cfg := insitubits.MiningConfig{
		UnitSize:         512, // 8x8x8 Z-order blocks
		ValueThreshold:   0.002,
		SpatialThreshold: 0.05,
	}

	t0 := time.Now()
	flat, err := insitubits.Mine(xt, xs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	tFlat := time.Since(t0)

	mlt, err := insitubits.BuildMultiLevel(xt, 6)
	if err != nil {
		log.Fatal(err)
	}
	mls, err := insitubits.BuildMultiLevel(xs, 6)
	if err != nil {
		log.Fatal(err)
	}
	t1 := time.Now()
	multi, err := insitubits.MineMultiLevel(mlt, mls, cfg)
	if err != nil {
		log.Fatal(err)
	}
	tMulti := time.Since(t1)

	t2 := time.Now()
	full, err := insitubits.MineFullData(temp, salt, mt, ms, cfg)
	if err != nil {
		log.Fatal(err)
	}
	tFull := time.Since(t2)

	fmt.Printf("findings: flat %d (%.1fms) | multi-level %d (%.1fms) | full-data %d (%.1fms)\n",
		len(flat), 1e3*tFlat.Seconds(), len(multi), 1e3*tMulti.Seconds(), len(full), 1e3*tFull.Seconds())
	if len(flat) != len(full) || len(flat) != len(multi) {
		log.Fatal("paths disagree — should be identical")
	}

	// Score against ground truth: what fraction of findings fall in the
	// planted regions, and how much of the planted area was rediscovered?
	planted := d.PlantedCurveCells()
	inPlanted, coveredCells := 0, 0
	covered := make([]bool, len(planted))
	for _, f := range flat {
		overlap := 0
		for p := f.Begin; p < f.End; p++ {
			if planted[p] {
				overlap++
			}
			covered[p] = true
		}
		// A unit straddling the region boundary still detects it; count a
		// finding as correct when at least a quarter of its cells are
		// planted.
		if overlap*4 >= f.End-f.Begin {
			inPlanted++
		}
	}
	plantedTotal := 0
	for i, p := range planted {
		if p {
			plantedTotal++
			if covered[i] {
				coveredCells++
			}
		}
	}
	fmt.Printf("precision: %.0f%% of findings inside planted currents\n",
		100*float64(inPlanted)/float64(len(flat)))
	fmt.Printf("recall:    %.0f%% of planted cells covered by findings\n",
		100*float64(coveredCells)/float64(plantedTotal))

	// Merge adjacent units into contiguous regions and show the strongest,
	// decoded back to grid coordinates.
	regions := insitubits.MergeFindings(flat)
	best := regions[0]
	for _, reg := range regions {
		if reg.MaxMI > best.MaxMI {
			best = reg
		}
	}
	layout := d.Layout()
	row := layout.RowMajor(best.Begin)
	x := row % lon
	y := (row / lon) % lat
	z := row / (lon * lat)
	fmt.Printf("%d findings merge into %d contiguous regions\n", len(flat), len(regions))
	fmt.Printf("strongest region: bins (T=%d, S=%d), %d units over curve [%d,%d), near grid (%d,%d,%d), max local MI %.3f\n",
		best.BinA, best.BinB, best.Units, best.Begin, best.End, x, y, z, best.MaxMI)
}
