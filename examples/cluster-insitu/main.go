// Parallel in-situ analysis: a Heat3D domain decomposed across simulated
// cluster nodes (goroutines with channel-based halo exchange standing in
// for MPI), per-node bitmap generation, global time-step selection by
// reducing per-node statistics, and output to either local disks or one
// shared remote data server — the paper's §5.3 environment.
//
//	go run ./examples/cluster-insitu [-nodes N]
package main

import (
	"flag"
	"fmt"
	"log"

	"insitubits"
)

func main() {
	nodes := flag.Int("nodes", 4, "simulated cluster nodes")
	flag.Parse()

	const gx, gy, gz = 32, 32, 96
	const steps, selectK = 30, 8

	fmt.Printf("Heat3D %dx%dx%d on %d nodes, selecting %d of %d steps\n",
		gx, gy, gz, *nodes, selectK, steps)

	run := func(method insitubits.ReductionMethod, remote bool) *insitubits.ClusterResult {
		cfg := insitubits.ClusterConfig{
			Nodes:        *nodes,
			CoresPerNode: 2,
			GridX:        gx, GridY: gy, GridZ: gz,
			Steps:  steps,
			Select: selectK,
			Metric: insitubits.MetricConditionalEntropy,
			Method: insitubits.ClusterFullData,
			Bins:   160,
		}
		if method == insitubits.MethodBitmaps {
			cfg.Method = insitubits.ClusterBitmaps
		}
		if remote {
			st, err := insitubits.NewIOStore(100) // the shared 100 MB/s server
			if err != nil {
				log.Fatal(err)
			}
			cfg.Remote = st
		} else {
			cfg.LocalMBps = insitubits.OakleyNode.DiskMBps
		}
		res, err := insitubits.RunCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("%-9s %-7s %10s %10s %9s\n", "method", "target", "bytes(MB)", "output(s)", "selected")
	var firstSel []int
	for _, method := range []insitubits.ReductionMethod{insitubits.MethodFullData, insitubits.MethodBitmaps} {
		for _, remote := range []bool{false, true} {
			res := run(method, remote)
			target := "local"
			if remote {
				target = "remote"
			}
			name := "fulldata"
			if method == insitubits.MethodBitmaps {
				name = "bitmaps"
			}
			fmt.Printf("%-9s %-7s %10.2f %10.4f %v\n",
				name, target, float64(res.BytesWritten)/1e6, res.Output.Seconds(), res.Selected)
			if firstSel == nil {
				firstSel = res.Selected
			} else {
				for i := range firstSel {
					if res.Selected[i] != firstSel[i] {
						log.Fatal("methods selected different steps — global metric reduction is broken")
					}
				}
			}
		}
	}
	fmt.Println("all four configurations selected identical steps (no accuracy loss)")
}
