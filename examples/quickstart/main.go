// Quickstart: build a bitmap index over an array, query it, and compute
// the paper's analysis metrics twice — from the raw data and from the
// bitmaps alone — to see that they agree exactly while the bitmaps are a
// fraction of the size.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"insitubits"
)

func main() {
	// A synthetic "simulation output": a smooth wave with a hot anomaly.
	const n = 100000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		x := float64(i) / n
		a[i] = 50 + 20*math.Sin(8*math.Pi*x)
		b[i] = 48 + 20*math.Sin(8*math.Pi*x+0.4) // correlated with a
		if i > n/2 && i < n/2+5000 {
			a[i] += 30 // the anomaly
		}
	}

	// One binning drives everything; both variables share the value range.
	mapper, err := insitubits.NewUniformBins(0, 110, 64)
	if err != nil {
		log.Fatal(err)
	}

	// Build compressed bitmap indices (this is the paper's Algorithm 1,
	// streaming with in-place WAH compression).
	xa := insitubits.BuildIndex(a, mapper)
	xb := insitubits.BuildIndex(b, mapper)
	fmt.Printf("raw array:      %8d bytes\n", 8*n)
	fmt.Printf("bitmap index:   %8d bytes (%.1f%% of raw, %d bins)\n",
		xa.SizeBytes(), 100*float64(xa.SizeBytes())/float64(8*n), xa.Bins())

	// Value query on the compressed form: where is the anomaly (>85)?
	hot := xa.Query(85, 200)
	first, last := -1, -1
	hot.Iterate(func(pos int) bool {
		if first < 0 {
			first = pos
		}
		last = pos
		return true
	})
	fmt.Printf("query value>85: %d elements, span [%d, %d]\n", hot.Count(), first, last)

	// The paper's claim: analysis metrics from bitmaps equal the full-data
	// ones exactly (same binning), because binning is the only lossy step
	// and both paths share it.
	fromData := insitubits.PairFromData(a, b, mapper, mapper)
	fromBits := insitubits.PairFromBitmaps(xa, xb)
	fmt.Printf("entropy H(A):        data %.6f | bitmaps %.6f\n", fromData.EntropyA, fromBits.EntropyA)
	fmt.Printf("mutual info I(A;B):  data %.6f | bitmaps %.6f\n", fromData.MI, fromBits.MI)
	fmt.Printf("cond. ent. H(A|B):   data %.6f | bitmaps %.6f\n", fromData.CondEntropyAB, fromBits.CondEntropyAB)

	emdData := insitubits.EMDSpatialData(a, b, mapper)
	emdBits := insitubits.EMDSpatialBitmaps(xa, xb)
	fmt.Printf("spatial EMD:         data %.0f | bitmaps %.0f\n", emdData, emdBits)

	if fromData.MI != fromBits.MI || emdData != emdBits {
		log.Fatal("bitmap metrics diverged from full data — this should be impossible")
	}
	fmt.Println("all bitmap-path metrics match the full-data path exactly")
}
