// Heat3D in-situ analysis, end to end: simulate 60 time-steps of 3-D heat
// diffusion, generate compressed bitmaps on the fly, select the 12 most
// informative steps online (conditional entropy), and write only their
// bitmaps to disk — the paper's full single-node workflow.
//
//	go run ./examples/heat3d-insitu [-steps N] [-select K] [-out DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"

	"insitubits"
)

func main() {
	steps := flag.Int("steps", 60, "time-steps to simulate")
	selectK := flag.Int("select", 12, "time-steps to keep")
	out := flag.String("out", "", "directory for selected bitmap files (default: temp dir)")
	cores := flag.Int("cores", runtime.NumCPU(), "worker goroutines")
	flag.Parse()

	dir := *out
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "heat3d-insitu-")
		if err != nil {
			log.Fatal(err)
		}
	}

	h, err := insitubits.NewHeat3D(48, 48, 32)
	if err != nil {
		log.Fatal(err)
	}
	// Calibrate the core split with the paper's Equations 1 and 2, then run
	// with the Separate Cores strategy: simulation and bitmap generation
	// proceed concurrently through a bounded step queue.
	calSim, err := insitubits.NewHeat3D(48, 48, 32)
	if err != nil {
		log.Fatal(err)
	}
	base := insitubits.PipelineConfig{
		Sim:    calSim,
		Steps:  *steps,
		Select: *selectK,
		Method: insitubits.MethodBitmaps,
		Bins:   160,
		Metric: insitubits.MetricConditionalEntropy,
		Cores:  *cores,
	}
	var split insitubits.SeparateCores
	if *cores >= 2 {
		split, err = insitubits.Calibrate(base, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("core allocation (Eq. 1/2): %s of %d cores\n", split.Describe(), *cores)
	} else {
		fmt.Println("single core: shared-cores strategy (no split to calibrate)")
	}

	store, err := insitubits.NewIOStore(insitubits.Xeon.DiskMBps)
	if err != nil {
		log.Fatal(err)
	}
	cfg := base
	cfg.Sim = h
	cfg.Store = store
	cfg.OutputDir = dir // persist the selected bitmaps for real
	if *cores >= 2 {
		cfg.Strategy = split
	}
	res, err := insitubits.RunPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("selected steps:  %v\n", res.Selected)
	fmt.Printf("phase times:     simulate %.3fs, bitmap-gen %.3fs, select %.3fs, output %.3fs (modelled)\n",
		res.Breakdown.Simulate.Seconds(), res.Breakdown.Reduce.Seconds(),
		res.Breakdown.Select.Seconds(), res.Breakdown.Output.Seconds())
	fmt.Printf("wall (overlap):  %.3fs\n", res.Wall.Seconds())
	fmt.Printf("raw step size:   %.2f MB; bitmap summary: %.2f MB (%.1fx smaller)\n",
		float64(res.StepBytes)/1e6, float64(res.SummaryBytes)/1e6,
		float64(res.StepBytes)/float64(res.SummaryBytes))
	fmt.Printf("modelled memory: %.2f MB (full data would need %.2f MB)\n",
		float64(res.PeakMemory)/1e6,
		float64(insitubits.MemoryModel(insitubits.MethodFullData, res.StepBytes, 0, 10))/1e6)

	// The pipeline persisted the selected bitmaps itself (OutputDir);
	// read the manifest back and reload one index offline.
	m, err := insitubits.ReadManifest(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d bitmap files + %s to %s\n", len(m.Files), insitubits.PipelineManifestName, dir)
	f, err := os.Open(filepath.Join(dir, m.Files[0].Path))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	x, err := insitubits.ReadIndexFile(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded step %d: %d elements, %d bins, entropy %.4f bits\n",
		m.Files[0].Step, x.N(), x.Bins(), insitubits.Entropy(x.Histogram(), x.N()))
}
