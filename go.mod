module insitubits

go 1.22
