// Command benchtrend is the benchmark-trend regression gate: it compares
// the newest archived BENCH_*.json snapshot (written by `make bench-json`)
// against a baseline and fails when a benchmark moved past the noise
// threshold in the wrong direction.
//
//	benchtrend -dir .                       # newest vs second-newest
//	benchtrend -baseline BENCH_20260801.json
//	benchtrend -metric MB/s -threshold 0.05
//	benchtrend -warn-only                   # report but exit 0 on regressions
//	benchtrend -json                        # machine-readable comparison
//
// Exit status: 0 when the latest snapshot is within the threshold of the
// baseline (or when there is only one snapshot — nothing to compare yet);
// 1 on regressions (unless -warn-only) and always on missing or malformed
// snapshots — a damaged archive must never read as "no regressions".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"insitubits/internal/benchfmt"
)

func main() {
	dir := flag.String("dir", ".", "directory holding BENCH_*.json snapshots")
	metric := flag.String("metric", "ns/op", "metric to compare")
	threshold := flag.Float64("threshold", 0.10, "relative noise threshold (0.10 = 10%)")
	baseline := flag.String("baseline", "", "explicit baseline snapshot (default: second-newest in -dir)")
	warnOnly := flag.Bool("warn-only", false, "report regressions but exit 0 (malformed snapshots still fail)")
	asJSON := flag.Bool("json", false, "emit the comparison as JSON")
	flag.Parse()

	if err := run(*dir, *metric, *threshold, *baseline, *warnOnly, *asJSON); err != nil {
		fmt.Fprintf(os.Stderr, "benchtrend: %v\n", err)
		os.Exit(1)
	}
}

// run returns an error only for conditions that must fail the gate.
func run(dir, metric string, threshold float64, baseline string, warnOnly, asJSON bool) error {
	if threshold <= 0 {
		return fmt.Errorf("threshold must be positive, got %g", threshold)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return err
	}
	sort.Strings(snaps) // BENCH_YYYYMMDD[...] sorts chronologically
	if len(snaps) == 0 {
		return fmt.Errorf("no BENCH_*.json snapshots in %s (run `make bench-json` first)", dir)
	}
	latestPath := snaps[len(snaps)-1]
	basePath := baseline
	if basePath == "" {
		if len(snaps) < 2 {
			fmt.Printf("benchtrend: only one snapshot (%s) — nothing to compare yet\n",
				filepath.Base(latestPath))
			return nil
		}
		basePath = snaps[len(snaps)-2]
	}
	// Malformed or missing snapshots are a hard failure even under
	// -warn-only: the gate must not pass because its inputs are broken.
	base, err := benchfmt.LoadFile(basePath)
	if err != nil {
		return err
	}
	latest, err := benchfmt.LoadFile(latestPath)
	if err != nil {
		return err
	}
	cmp := benchfmt.Compare(base, latest, metric, threshold)
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cmp); err != nil {
			return err
		}
	} else {
		render(os.Stdout, filepath.Base(basePath), filepath.Base(latestPath), cmp)
	}
	if len(cmp.Regressions) > 0 {
		if warnOnly {
			fmt.Printf("benchtrend: %d regression(s) past %.0f%% — warn-only, not failing\n",
				len(cmp.Regressions), threshold*100)
			return nil
		}
		return fmt.Errorf("%d benchmark(s) regressed past %.0f%% on %s",
			len(cmp.Regressions), threshold*100, metric)
	}
	return nil
}

func render(w *os.File, baseName, latestName string, cmp *benchfmt.Comparison) {
	fmt.Fprintf(w, "benchtrend: %s vs %s, metric %s, threshold %.0f%%\n",
		latestName, baseName, cmp.Metric, cmp.Threshold*100)
	section := func(title string, ds []benchfmt.Delta) {
		if len(ds) == 0 {
			return
		}
		fmt.Fprintf(w, "%s:\n", title)
		for _, d := range ds {
			fmt.Fprintf(w, "  %-50s %12.4g -> %-12.4g %+6.1f%%\n",
				d.Pkg+"."+d.Name, d.Base, d.Latest, d.Change*100)
		}
	}
	section("regressions", cmp.Regressions)
	section("improvements", cmp.Improvements)
	if len(cmp.OnlyInBase) > 0 {
		fmt.Fprintf(w, "no longer present: %d benchmark(s)\n", len(cmp.OnlyInBase))
	}
	if len(cmp.OnlyInLatest) > 0 {
		fmt.Fprintf(w, "new since baseline: %d benchmark(s)\n", len(cmp.OnlyInLatest))
	}
	fmt.Fprintf(w, "%d stable, %d improved, %d regressed\n",
		len(cmp.Stable), len(cmp.Improvements), len(cmp.Regressions))
}
