package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

const baseSnap = `{"benchmarks":[{"name":"BenchmarkA-8","runs":10,"metrics":{"ns/op":100}}]}`

func TestRunGate(t *testing.T) {
	t.Run("no snapshots", func(t *testing.T) {
		if err := run(t.TempDir(), "ns/op", 0.10, "", false, false); err == nil {
			t.Error("empty dir passed the gate")
		}
	})
	t.Run("single snapshot is not a failure", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, "BENCH_20260801.json", baseSnap)
		if err := run(dir, "ns/op", 0.10, "", false, false); err != nil {
			t.Errorf("single snapshot failed: %v", err)
		}
	})
	t.Run("within threshold passes", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, "BENCH_20260801.json", baseSnap)
		write(t, dir, "BENCH_20260802.json",
			`{"benchmarks":[{"name":"BenchmarkA-8","runs":10,"metrics":{"ns/op":105}}]}`)
		if err := run(dir, "ns/op", 0.10, "", false, false); err != nil {
			t.Errorf("5%% drift failed a 10%% gate: %v", err)
		}
	})
	t.Run("regression fails", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, "BENCH_20260801.json", baseSnap)
		write(t, dir, "BENCH_20260802.json",
			`{"benchmarks":[{"name":"BenchmarkA-8","runs":10,"metrics":{"ns/op":150}}]}`)
		if err := run(dir, "ns/op", 0.10, "", false, false); err == nil {
			t.Error("50% regression passed a 10% gate")
		}
		if err := run(dir, "ns/op", 0.10, "", true, false); err != nil {
			t.Errorf("warn-only still failed: %v", err)
		}
	})
	t.Run("malformed snapshot always fails", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, "BENCH_20260801.json", baseSnap)
		write(t, dir, "BENCH_20260802.json", `{"benchmarks":[{"name":`)
		if err := run(dir, "ns/op", 0.10, "", true, false); err == nil {
			t.Error("malformed latest snapshot passed under -warn-only")
		}
	})
	t.Run("explicit baseline", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, "BENCH_20260802.json", baseSnap)
		base := filepath.Join(dir, "pinned.json")
		if err := os.WriteFile(base,
			[]byte(`{"benchmarks":[{"name":"BenchmarkA-8","runs":10,"metrics":{"ns/op":50}}]}`), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := run(dir, "ns/op", 0.10, base, false, false); err == nil {
			t.Error("2x regression vs pinned baseline passed")
		}
	})
}
