// Command insitu-run executes a configurable in-situ pipeline: pick the
// workload, reduction method, metric, core strategy and sizes from flags
// and get the paper-style phase breakdown.
//
//	insitu-run -sim heat3d -method bitmaps -steps 100 -select 25 -cores 8
//	insitu-run -sim lulesh -method fulldata -metric emd-spatial
//	insitu-run -sim heat3d -method sampling -sample 10
//	insitu-run -sim heat3d -strategy separate -simcores 2 -redcores 2
//	insitu-run -sim heat3d -strategy auto      # Eq. 1/2 calibration
//	insitu-run -sim heat3d -out run1/ -resume  # continue a crashed run
//
// Runs with -out are crash-safe: every artifact is written atomically and
// committed through a fsync'd journal (journal.isbj), so a killed run
// resumes with -resume and `bitmapctl fsck` can audit the directory.
//
// Observability (see docs/OBSERVABILITY.md): -debug-addr starts a debug
// HTTP server with live expvar counters, Prometheus /metrics, the pipeline
// span tree, the live /debug/run dashboard and pprof; -telemetry dumps the
// full telemetry snapshot as JSON after the run; -slowlog/-slowlog-threshold
// emit every query slower than the threshold as a JSON line with its full
// ANALYZE profile; -qlog captures every selection query into a workload
// log for `bitmapctl replay` / `bitmapctl workload`; -profile runs the
// continuous profiler (pprof-labelled run phases, periodic CPU/heap/
// goroutine/mutex/block snapshots served at /debug/profiles and browsed
// with `bitmapctl profile top|diff|watch`); -hold keeps the process (and
// debug server) alive until SIGINT/SIGTERM.
//
// Identity tracing: -trace records one TraceID'd span tree per pipeline
// step, browsable at /debug/traces (plain, Chrome trace-event, or OTLP
// JSON). -trace-sample keeps 1 of every N step traces, -trace-slow always
// keeps steps slower than the given duration regardless of sampling,
// -trace-ring sizes the in-memory ring of kept traces, and -trace-otlp
// additionally appends every kept trace to a file as OTLP JSON lines.
//
//	insitu-run -sim heat3d -debug-addr :6060 -steps 200 -select 50 -hold
//	insitu-run -sim heat3d -slowlog slow.jsonl -slowlog-threshold 5ms
//	insitu-run -sim heat3d -trace -trace-sample 10 -trace-slow 50ms \
//	    -trace-otlp traces.jsonl -debug-addr :6060
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"insitubits"
)

func main() {
	simName := flag.String("sim", "heat3d", "workload: heat3d | lulesh")
	method := flag.String("method", "bitmaps", "reduction: bitmaps | fulldata | sampling")
	metric := flag.String("metric", "cond-entropy", "selection metric: cond-entropy | emd-count | emd-spatial")
	steps := flag.Int("steps", 50, "time-steps to simulate")
	selectK := flag.Int("select", 10, "time-steps to keep")
	bins := flag.Int("bins", 160, "value bins per variable")
	codecName := flag.String("codec", "auto", "bitmap codec per bin: auto | wah | bbc | dense")
	sample := flag.Float64("sample", 10, "sampling percentage (method=sampling)")
	cores := flag.Int("cores", runtime.NumCPU(), "worker goroutines")
	strategy := flag.String("strategy", "shared", "core allocation: shared | separate | auto")
	simCores := flag.Int("simcores", 0, "simulation cores (strategy=separate)")
	redCores := flag.Int("redcores", 0, "reduction cores (strategy=separate)")
	disk := flag.Float64("disk", insitubits.Xeon.DiskMBps, "modelled disk bandwidth MB/s")
	dim := flag.Int("dim", 32, "grid/mesh edge length")
	outDir := flag.String("out", "", "persist selected summaries (+manifest.json) to this directory")
	resume := flag.Bool("resume", false, "continue a crashed run from -out's journal instead of starting over")
	debugAddr := flag.String("debug-addr", "", "serve live telemetry, expvar and pprof on this address (e.g. :6060)")
	telemetryDump := flag.Bool("telemetry", false, "print the telemetry snapshot as JSON after the run")
	slowLog := flag.String("slowlog", "", `slow-query log destination: "stderr" or a file path (JSON lines)`)
	slowLogThreshold := flag.Duration("slowlog-threshold", 10*time.Millisecond, "log queries slower than this (with -slowlog)")
	qlogPath := flag.String("qlog", "", "capture every selection query into this workload log (.isql)")
	trace := flag.Bool("trace", false, "record identity traces (one per pipeline step), served at /debug/traces")
	traceSample := flag.Int("trace-sample", 1, "keep 1 of every N traces (head sampling; 1 keeps all)")
	traceSlow := flag.Duration("trace-slow", 0, "always keep traces slower than this, regardless of sampling")
	traceRing := flag.Int("trace-ring", 256, "completed traces held in memory")
	traceOTLP := flag.String("trace-otlp", "", "append kept traces to this file as OTLP JSON lines (implies -trace)")
	profile := flag.Bool("profile", false, "run the continuous profiler: pprof-labelled phases, periodic CPU/heap/goroutine snapshots at /debug/profiles (bitmapctl profile)")
	profileInterval := flag.Duration("profile-interval", 30*time.Second, "snapshot interval for -profile")
	hold := flag.Bool("hold", false, "keep the process (and debug server) alive after the report; ctrl-C shuts down cleanly")
	flag.Parse()

	var otlpErr func() error
	if *trace || *traceOTLP != "" {
		rec := insitubits.NewTraceRecorder(insitubits.TraceConfig{
			Capacity:      *traceRing,
			SampleEvery:   *traceSample,
			SlowThreshold: *traceSlow,
		})
		if *traceOTLP != "" {
			f, err := os.OpenFile(*traceOTLP, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			var sink func(*insitubits.Trace)
			sink, otlpErr = insitubits.NewOTLPFileSink(f)
			rec.SetSink(sink)
		}
		insitubits.SetTraceRecorder(rec)
		defer func() {
			st := rec.Stats()
			fmt.Printf("traces:         %d started, %d kept (%d slow), %d dropped\n",
				st.Started, st.Kept, st.KeptSlow, st.Dropped)
			if otlpErr != nil {
				if err := otlpErr(); err != nil {
					log.Printf("trace export: %v", err)
				}
			}
		}()
	}

	var dbg *insitubits.TelemetryDebugServer
	var hist *insitubits.MetricsHistory
	if *debugAddr != "" {
		var err error
		dbg, err = insitubits.Telemetry.ServeDebug(*debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		// Runtime metrics (goroutines, heap, GC) ride the same registry, so
		// they land in /metrics, the history ring, and `bitmapctl top` for
		// free.
		insitubits.Telemetry.EnableRuntimeMetrics()
		hist = insitubits.StartMetricsHistory(insitubits.Telemetry, time.Second, 300)
		defer hist.Stop()
		fmt.Printf("debug server:   http://%s  (/telemetry /metrics /debug/metrics/history /debug/profiles /debug/vars /debug/pprof/)\n", dbg.Addr)
	}
	if *profile {
		col := insitubits.StartProfiling(insitubits.ProfilingConfig{
			Registry: insitubits.Telemetry,
			History:  hist, // nil without -debug-addr; snapshots just lose the cursor stamp
			Interval: *profileInterval,
		})
		defer col.Stop()
	}
	if *qlogPath != "" {
		w, err := insitubits.CreateQueryLog(*qlogPath)
		if err != nil {
			log.Fatal(err)
		}
		insitubits.InstallQueryLog(w)
		defer func() {
			insitubits.InstallQueryLog(nil)
			if err := w.Close(); err != nil {
				log.Printf("workload log: %v", err)
			}
			// Health after Close: records are counted as the drain goroutine
			// writes them, so the final count is only stable once drained.
			h := w.Health()
			fmt.Printf("workload log:   %d records to %s (%d dropped, %d errors)\n",
				h.Records, *qlogPath, h.Dropped, h.Errors)
		}()
	}
	if *slowLog != "" {
		w := os.Stderr
		if *slowLog != "stderr" {
			f, err := os.OpenFile(*slowLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		insitubits.SetSlowQueryLog(slog.New(slog.NewJSONHandler(w, nil)), *slowLogThreshold)
	}

	mkSim := func() (insitubits.Simulator, error) {
		switch *simName {
		case "heat3d":
			return insitubits.NewHeat3D(*dim, *dim, *dim)
		case "lulesh":
			return insitubits.NewLulesh(*dim, *dim, *dim)
		default:
			return nil, fmt.Errorf("unknown workload %q", *simName)
		}
	}
	s, err := mkSim()
	if err != nil {
		log.Fatal(err)
	}
	codecID, err := insitubits.ParseCodec(*codecName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := insitubits.PipelineConfig{
		Sim:       s,
		Steps:     *steps,
		Select:    *selectK,
		Bins:      *bins,
		Codec:     codecID,
		SamplePct: *sample,
		Seed:      1,
		Cores:     *cores,
	}
	switch *method {
	case "bitmaps":
		cfg.Method = insitubits.MethodBitmaps
	case "fulldata":
		cfg.Method = insitubits.MethodFullData
	case "sampling":
		cfg.Method = insitubits.MethodSampling
	default:
		log.Fatalf("unknown method %q", *method)
	}
	switch *metric {
	case "cond-entropy":
		cfg.Metric = insitubits.MetricConditionalEntropy
	case "emd-count":
		cfg.Metric = insitubits.MetricEMDCount
	case "emd-spatial":
		cfg.Metric = insitubits.MetricEMDSpatial
	default:
		log.Fatalf("unknown metric %q", *metric)
	}
	switch *strategy {
	case "shared":
		cfg.Strategy = insitubits.SharedCores{}
	case "separate":
		if *simCores < 1 || *redCores < 1 {
			log.Fatal("strategy=separate needs -simcores and -redcores")
		}
		cfg.Strategy = insitubits.SeparateCores{SimCores: *simCores, ReduceCores: *redCores}
	case "auto":
		calibSim, err := mkSim()
		if err != nil {
			log.Fatal(err)
		}
		calCfg := cfg
		calCfg.Sim = calibSim
		split, err := insitubits.Calibrate(calCfg, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("calibrated allocation (Eq. 1/2): %s\n", split.Describe())
		cfg.Strategy = split
	default:
		log.Fatalf("unknown strategy %q", *strategy)
	}
	store, err := insitubits.NewIOStore(*disk)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Store = store
	cfg.OutputDir = *outDir

	var res *insitubits.PipelineResult
	if *resume {
		if *outDir == "" {
			log.Fatal("-resume needs -out pointing at the crashed run's directory")
		}
		res, err = insitubits.ResumePipeline(*outDir, cfg)
	} else {
		res, err = insitubits.RunPipeline(cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload:       %s (%d vars x %d elements, %.2f MB/step)\n",
		*simName, len(s.Vars()), s.Elements(), float64(res.StepBytes)/1e6)
	fmt.Printf("method:         %v, metric %v, %d bins, codec %v\n", cfg.Method, cfg.Metric, *bins, codecID)
	fmt.Printf("selected:       %v\n", res.Selected)
	fmt.Printf("simulate:       %.3fs\n", res.Breakdown.Simulate.Seconds())
	fmt.Printf("reduce:         %.3fs\n", res.Breakdown.Reduce.Seconds())
	fmt.Printf("select:         %.3fs\n", res.Breakdown.Select.Seconds())
	fmt.Printf("output:         %.3fs (modelled, %.2f MB at %.0f MB/s)\n",
		res.Breakdown.Output.Seconds(), float64(res.BytesWritten)/1e6, *disk)
	fmt.Printf("total:          %.3fs (wall with overlap: %.3fs)\n",
		res.Breakdown.Total().Seconds(), res.Wall.Seconds())
	fmt.Printf("summary size:   %.2f MB/step (%.1fx smaller than raw)\n",
		float64(res.SummaryBytes)/1e6, float64(res.StepBytes)/float64(res.SummaryBytes))
	fmt.Printf("modelled peak:  %.2f MB\n", float64(res.PeakMemory)/1e6)
	if _, ok := cfg.Strategy.(insitubits.SeparateCores); ok {
		fmt.Printf("queue peak:     %d steps (memory backpressure watermark)\n", res.QueuePeak)
	}
	if *outDir != "" {
		fmt.Printf("write time:     %.3fs (measured file output)\n", res.WriteTime.Seconds())
	}
	if len(res.SlowQueries) > 0 {
		fmt.Printf("slowest selection queries (top %d):\n", len(res.SlowQueries))
		for _, p := range res.SlowQueries {
			fmt.Printf("  %-28s %8.3fms  %s\n", p.Query, float64(p.ElapsedNs)/1e6, p.Detail)
		}
	}
	if *telemetryDump {
		data, err := insitubits.Telemetry.MarshalJSON()
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(append(data, '\n'))
	}
	if *hold {
		fmt.Println("holding (-hold): press ctrl-C to exit")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := dbg.Shutdown(ctx); err != nil {
			log.Printf("debug server shutdown: %v", err)
		}
	}
}
