package main

import (
	"fmt"

	"insitubits"
)

// figSizes renders the §2.2 size claim: compressed bitmaps are well under
// 30% of the raw data across all three workloads, with the BBC codec shown
// for comparison (the WAH-vs-BBC ablation).
func figSizes() error {
	header("Size table — bitmap index vs raw data (§2.2: bitmaps < 30% of data)",
		"WAH = this library's index; BBC = byte-aligned baseline codec")
	row("%-24s %10s %10s %8s %10s %8s %6s", "array", "raw(MB)", "WAH(MB)", "WAH%", "BBC(MB)", "BBC%", "bins")

	report := func(name string, data []float64, bins int) error {
		lo, hi := insitubits.MinMax(data)
		m, err := insitubits.NewUniformBins(lo, hi+1e-9, bins)
		if err != nil {
			return err
		}
		x := insitubits.BuildIndex(data, m)
		raw := int64(8 * len(data))
		wah := int64(x.SizeBytes())
		bbc := int64(0)
		for b := 0; b < x.Bins(); b++ {
			bbc += int64(insitubits.BBCFromBitmap(x.Bitmap(b)).SizeBytes())
		}
		row("%-24s %10.2f %10.2f %7.1f%% %10.2f %7.1f%% %6d",
			name, mb(raw), mb(wah), 100*float64(wah)/float64(raw), mb(bbc), 100*float64(bbc)/float64(raw), bins)
		return nil
	}

	gx, gy, gz := 64, 64, 32
	if *quick {
		gx, gy, gz = 24, 24, 16
	}
	h, err := insitubits.NewHeat3D(gx, gy, gz)
	if err != nil {
		return err
	}
	for i := 0; i < 10; i++ {
		h.Step(1)
	}
	if err := report("heat3d temperature", h.Step(1)[0].Data, 160); err != nil {
		return err
	}

	ln := 16
	if *quick {
		ln = 8
	}
	l, err := insitubits.NewLulesh(ln, ln, ln)
	if err != nil {
		return err
	}
	for i := 0; i < 10; i++ {
		l.Step(1)
	}
	fields := l.Step(1)
	for _, k := range []int{0, 3, 9} { // one coordinate, one force, one velocity
		if err := report("lulesh "+fields[k].Name, fields[k].Data, 120); err != nil {
			return err
		}
	}

	olon, olat, odep := 64, 64, 16
	if *quick {
		olon, olat, odep = 32, 32, 8
	}
	d, err := insitubits.GenerateOcean(olon, olat, odep, 3)
	if err != nil {
		return err
	}
	for _, v := range []string{"temperature", "salinity"} {
		data, err := d.VarCurveOrder(v)
		if err != nil {
			return err
		}
		if err := report(fmt.Sprintf("ocean %s", v), data, 64); err != nil {
			return err
		}
	}
	return nil
}
