package main

import (
	"time"

	"insitubits"
)

// figAblations prints the DESIGN.md §3 ablation table: each design choice
// measured against its alternative on the same inputs. All numbers here are
// direct single-core measurements (no scaling model).
func figAblations() error {
	header("Ablations — design choices vs alternatives (measured, single core)",
		"see DESIGN.md §3; benchmarks BenchmarkAblation* measure the same pairs")

	gx, gy, gz := 48, 48, 32
	if *quick {
		gx, gy, gz = 24, 24, 16
	}
	h, err := insitubits.NewHeat3D(gx, gy, gz)
	if err != nil {
		return err
	}
	for i := 0; i < 5; i++ {
		h.Step(1)
	}
	data := h.Step(1)[0].Data
	m, err := insitubits.NewUniformBins(0, 130, 160)
	if err != nil {
		return err
	}

	timeIt := func(fn func()) time.Duration {
		// Repeat until ≥20ms of samples for a stable median-ish estimate.
		best := time.Duration(1 << 62)
		total := time.Duration(0)
		for total < 20*time.Millisecond {
			t0 := time.Now()
			fn()
			d := time.Since(t0)
			total += d
			if d < best {
				best = d
			}
		}
		return best
	}

	row("%-44s %12s %12s %8s", "choice vs alternative", "chosen(ms)", "alt(ms)", "factor")
	pr := func(name string, chosen, alt time.Duration) {
		row("%-44s %12.3f %12.3f %7.1fx", name,
			1e3*chosen.Seconds(), 1e3*alt.Seconds(), float64(alt)/float64(chosen))
	}

	// 1. Streaming (Algorithm 1) vs two-phase compression.
	tStream := timeIt(func() { insitubits.BuildIndex(data, m) })
	tTwo := timeIt(func() { insitubits.BuildIndexTwoPhase(data, m) })
	pr("streaming build vs two-phase", tStream, tTwo)

	// 2. Lazy touched-bin builder vs paper-literal dense merge.
	tDense := timeIt(func() { insitubits.BuildIndexAlgorithm1(data, m) })
	pr("lazy builder vs dense Algorithm 1", tStream, tDense)

	// 3. Decode-based joint histogram vs bins x bins AND.
	xa := insitubits.BuildIndex(data, m)
	data2 := h.Step(1)[0].Data
	xb := insitubits.BuildIndex(data2, m)
	tDecode := timeIt(func() { insitubits.JointHistogramBitmaps(xa, xb) })
	tAND := timeIt(func() { insitubits.JointHistogramBitmapsAND(xa, xb) })
	pr("joint histogram: decode vs AND product", tDecode, tAND)

	// 4. WAH compressed AND vs BBC decode-operate-encode.
	best, second := 0, 1
	for b := 0; b < xa.Bins(); b++ {
		if xa.Count(b) > xa.Count(best) {
			second = best
			best = b
		}
	}
	va, vb := xa.Bitmap(best), xa.Bitmap(second)
	ba := insitubits.BBCFromBitmap(va)
	bb := insitubits.BBCFromBitmap(vb)
	tWAH := timeIt(func() { va.AndCount(vb) })
	tBBC := timeIt(func() { ba.And(bb) })
	pr("WAH AND (compressed) vs BBC AND", tWAH, tBBC)

	// 5. Multi-level vs flat mining on ocean data.
	d, err := insitubits.GenerateOcean(64, 64, 16, 7)
	if err != nil {
		return err
	}
	temp, _ := d.VarCurveOrder("temperature")
	salt, _ := d.VarCurveOrder("salinity")
	tlo, thi := insitubits.MinMax(temp)
	slo, shi := insitubits.MinMax(salt)
	mt, _ := insitubits.NewUniformBins(tlo, thi+1e-9, 48)
	ms, _ := insitubits.NewUniformBins(slo, shi+1e-9, 48)
	xt := insitubits.BuildIndex(temp, mt)
	xs := insitubits.BuildIndex(salt, ms)
	mlt, err := insitubits.BuildMultiLevel(xt, 6)
	if err != nil {
		return err
	}
	mls, err := insitubits.BuildMultiLevel(xs, 6)
	if err != nil {
		return err
	}
	cfg := insitubits.MiningConfig{UnitSize: 512, ValueThreshold: 0.002, SpatialThreshold: 0.05}
	tFlat := timeIt(func() {
		if _, err := insitubits.Mine(xt, xs, cfg); err != nil {
			panic(err)
		}
	})
	tMulti := timeIt(func() {
		if _, err := insitubits.MineMultiLevel(mlt, mls, cfg); err != nil {
			panic(err)
		}
	})
	pr("multi-level mining vs flat low-level", tMulti, tFlat)

	// 6. Equi-depth vs uniform binning on skewed data: compare index sizes.
	eq, err := insitubits.NewEquiDepthBins(temp, 48)
	if err != nil {
		return err
	}
	xeq := insitubits.BuildIndex(temp, eq)
	row("%-44s %12.1f %12.1f %7.1fx", "index size: uniform vs equi-depth bins (KB)",
		float64(xt.SizeBytes())/1e3, float64(xeq.SizeBytes())/1e3,
		float64(xeq.SizeBytes())/float64(xt.SizeBytes()))
	return nil
}
