// Command experiments regenerates every table and figure of the paper's
// evaluation (§5). Each subcommand prints the same rows/series the paper
// reports, at reproduction scale (dataset sizes are MB not GB; scale
// factors are printed in each header and recorded in EXPERIMENTS.md).
//
// Usage:
//
//	experiments [-quick] [-cores N] <figure>
//
// where <figure> is one of: fig7 fig8 fig9 fig10 fig11 fig12a fig12b fig12c
// fig13 fig14 fig15 fig16 fig17 size all.
//
// All computation (simulation, bitmap generation, metric evaluation,
// selection, mining) is executed for real. Two things are modelled, and
// both are printed as such: storage/network transfer times (bytes over the
// profile's bandwidth) and — because this reproduction may run on a host
// with fewer cores than the paper's 32-60-core testbeds — the multi-core
// scaling of measured single-core busy times, via Amdahl's law with
// per-phase parallel fractions (see model.go).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

var (
	quick  = flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	cores  = flag.Int("cores", 0, "override the modelled max core count (0 = per-figure default)")
	datDir = flag.String("dat", "", "also write each figure's output to <dir>/<figure>.dat (plot-ready)")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	figs := map[string]func() error{
		"fig7":      func() error { return figHeatXeon() },
		"fig8":      func() error { return figHeatMIC() },
		"fig9":      func() error { return figLuleshXeon() },
		"fig10":     func() error { return figLuleshMIC() },
		"fig11":     func() error { return figMemory() },
		"fig12a":    func() error { return figAllocation("12a") },
		"fig12b":    func() error { return figAllocation("12b") },
		"fig12c":    func() error { return figAllocation("12c") },
		"fig13":     func() error { return figCluster() },
		"fig14":     func() error { return figMiningTime() },
		"fig15":     func() error { return figSamplingTime() },
		"fig16":     func() error { return figSamplingAccuracy() },
		"fig17":     func() error { return figMiningAccuracy() },
		"size":      func() error { return figSizes() },
		"ablations": func() error { return figAblations() },
		"verify":    func() error { return figVerify() },
	}
	runFig := func(n string) error {
		if *datDir == "" {
			return figs[n]()
		}
		// Tee the figure's rows into a plot-ready .dat file.
		if err := os.MkdirAll(*datDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*datDir, n+".dat"))
		if err != nil {
			return err
		}
		oldOut := out
		out = io.MultiWriter(oldOut, f)
		err = figs[n]()
		out = oldOut
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	}
	if name == "all" {
		order := []string{"size", "fig7", "fig8", "fig9", "fig10", "fig11",
			"fig12a", "fig12b", "fig12c", "fig13", "fig14", "fig15", "fig16", "fig17", "ablations", "verify"}
		for _, n := range order {
			if err := runFig(n); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", n, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	}
	if _, ok := figs[name]; !ok {
		usage()
		os.Exit(2)
	}
	if err := runFig(name); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: experiments [-quick] [-cores N] <figure>
figures: fig7 fig8 fig9 fig10 fig11 fig12a fig12b fig12c fig13 fig14 fig15 fig16 fig17 size ablations verify all`)
}
