package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// captureFig runs one figure function with -quick sizing and returns its
// printed output.
func captureFig(t *testing.T, fn func() error) string {
	t.Helper()
	oldQuick := *quick
	*quick = true
	defer func() { *quick = oldQuick }()
	var buf bytes.Buffer
	oldOut := out
	out = &buf
	defer func() { out = oldOut }()
	if err := fn(); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestSizeTableContent checks the deterministic parts of the size table:
// every workload row appears and the WAH column reports a genuine
// reduction for every array.
func TestSizeTableContent(t *testing.T) {
	got := captureFig(t, figSizes)
	for _, want := range []string{
		"heat3d temperature", "lulesh coord.x", "lulesh force.x",
		"lulesh veloc.x", "ocean temperature", "ocean salinity",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("size table missing %q:\n%s", want, got)
		}
	}
	// Every percentage in the WAH column must be below 100 (a reduction).
	for _, line := range strings.Split(got, "\n") {
		if !strings.Contains(line, "%") || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "array") {
			continue
		}
		fields := strings.Fields(line)
		// fields: name..., raw, wah, wah%, bbc, bbc%, bins — find the
		// first percentage token.
		for _, f := range fields {
			if strings.HasSuffix(f, "%") {
				var v float64
				if _, err := fmtSscanf(strings.TrimSuffix(f, "%"), &v); err == nil && v >= 100 {
					t.Fatalf("array not compressed (%s): %s", f, line)
				}
				break
			}
		}
	}
}

func fmtSscanf(s string, v *float64) (int, error) {
	return sscan(s, v)
}

// TestFigure16ZeroBitmapLoss runs the accuracy figure at quick size and
// asserts the machine-checked part of its output: bitmaps report exactly
// zero loss and the sampling losses appear for all three levels.
func TestFigure16ZeroBitmapLoss(t *testing.T) {
	got := captureFig(t, figSamplingAccuracy)
	if !strings.Contains(got, "mean loss 0.00%") {
		t.Fatalf("no zero-loss bitmap line:\n%s", got)
	}
	for _, level := range []string{"sample-30%", "sample-15%", "sample- 5%"} {
		if !strings.Contains(got, level) {
			t.Fatalf("missing %s row:\n%s", level, got)
		}
	}
}

// TestFigure11Ratios asserts the memory figure prints a >1 ratio for every
// workload (bitmaps always smaller under the model).
func TestFigure11Ratios(t *testing.T) {
	got := captureFig(t, figMemory)
	rows := 0
	for _, line := range strings.Split(got, "\n") {
		if !strings.Contains(line, "Heat3D") && !strings.Contains(line, "Lulesh") {
			continue
		}
		fields := strings.Fields(line)
		last := fields[len(fields)-1]
		if !strings.HasSuffix(last, "x") {
			continue
		}
		rows++
		var ratio float64
		if _, err := fmt.Sscanf(strings.TrimSuffix(last, "x"), "%f", &ratio); err != nil {
			t.Fatalf("unparseable ratio %q in: %s", last, line)
		}
		if ratio <= 1 {
			t.Fatalf("ratio %.2f not above 1 in: %s", ratio, line)
		}
	}
	if rows != 4 {
		t.Fatalf("%d workload rows, want 4:\n%s", rows, got)
	}
}

func sscan(s string, v *float64) (int, error) {
	var f float64
	n, err := fmt.Sscanf(s, "%f", &f)
	*v = f
	return n, err
}
