package main

import (
	"fmt"
	"math"
	"time"

	"insitubits"
)

// miningSetup prepares curve-ordered temperature/salinity plus their
// indices for one ocean grid.
type miningSetup struct {
	temp, salt []float64
	mt, ms     insitubits.Mapper
	xt, xs     *insitubits.Index
}

func prepareOcean(lon, lat, depth int, seed int64, bins int) (*miningSetup, error) {
	d, err := insitubits.GenerateOcean(lon, lat, depth, seed)
	if err != nil {
		return nil, err
	}
	temp, err := d.VarCurveOrder("temperature")
	if err != nil {
		return nil, err
	}
	salt, err := d.VarCurveOrder("salinity")
	if err != nil {
		return nil, err
	}
	tlo, thi := insitubits.MinMax(temp)
	slo, shi := insitubits.MinMax(salt)
	mt, err := insitubits.NewUniformBins(tlo, thi+1e-9, bins)
	if err != nil {
		return nil, err
	}
	ms, err := insitubits.NewUniformBins(slo, shi+1e-9, bins)
	if err != nil {
		return nil, err
	}
	return &miningSetup{
		temp: temp, salt: salt, mt: mt, ms: ms,
		xt: insitubits.BuildIndex(temp, mt),
		xs: insitubits.BuildIndex(salt, ms),
	}, nil
}

// figMiningTime renders Figure 14: correlation-mining time, bitmaps vs full
// data, over growing dataset sizes.
func figMiningTime() error {
	type size struct{ lon, lat, depth int }
	sizes := []size{{64, 64, 16}, {128, 64, 16}, {128, 128, 16}, {256, 128, 16}, {256, 256, 16}}
	if *quick {
		sizes = sizes[:2]
	}
	header("Figure 14 — correlation mining (temperature x salinity), bitmaps vs full data",
		"load time modelled at disk bandwidth (index file vs raw arrays); mining measured; paper sizes 1.4-11.2 GB/variable, here MB-scale")
	row("%-12s %9s | %9s %9s %9s | %9s %9s %9s | %8s %9s",
		"grid", "raw(MB)", "load-b", "mine-b", "total-b", "load-f", "mine-f", "total-f", "speedup", "findings")
	for _, s := range sizes {
		setup, err := prepareOcean(s.lon, s.lat, s.depth, 7, 48)
		if err != nil {
			return err
		}
		n := len(setup.temp)
		// T tuned so the planted currents (≈4% of cells) survive the value
		// filter while the independent background is pruned; T' keeps only
		// clearly correlated spatial units.
		cfg := insitubits.MiningConfig{
			UnitSize:         512,
			ValueThreshold:   0.002,
			SpatialThreshold: 0.05,
		}
		// Bitmaps: load both index files (modelled), then Algorithm 2.
		loadBytesB := insitubits.IndexFileSize(setup.xt) + insitubits.IndexFileSize(setup.xs)
		t0 := time.Now()
		fb, err := insitubits.Mine(setup.xt, setup.xs, cfg)
		if err != nil {
			return err
		}
		mineB := time.Since(t0)
		// Full data: load both raw arrays (modelled), then exhaustive scan.
		loadBytesF := insitubits.RawFileSize(n) * 2
		t1 := time.Now()
		ff, err := insitubits.MineFullData(setup.temp, setup.salt, setup.mt, setup.ms, cfg)
		if err != nil {
			return err
		}
		mineF := time.Since(t1)
		if len(fb) != len(ff) {
			return fmt.Errorf("grid %v: bitmaps found %d, full data %d", s, len(fb), len(ff))
		}
		disk := insitubits.Xeon.DiskMBps
		loadTB := time.Duration(float64(loadBytesB) / (disk * 1e6) * float64(time.Second))
		loadTF := time.Duration(float64(loadBytesF) / (disk * 1e6) * float64(time.Second))
		totalB := loadTB + mineB
		totalF := loadTF + mineF
		row("%-12s %9.1f | %9.3f %9.3f %9.3f | %9.3f %9.3f %9.3f | %7.2fx %9d",
			fmt.Sprintf("%dx%dx%d", s.lon, s.lat, s.depth), mb(int64(8*n)),
			secs(loadTB), secs(mineB), secs(totalB),
			secs(loadTF), secs(mineF), secs(totalF),
			float64(totalF)/float64(totalB), len(fb))
	}
	row("(paper: 3.83x-4.91x, growing with data size; zero accuracy difference)")
	return nil
}

// figMiningAccuracy renders Figure 17: mutual information over 60 value/
// spatial subsets, exact (= bitmaps) vs samples at 50/30/15/5 percent.
func figMiningAccuracy() error {
	// Per-subset MI estimation needs enough samples per subset for the
	// sampling baseline to be meaningful at all (the paper's subsets hold
	// tens of millions of elements each), so this figure uses the larger
	// grid and coarse binning.
	lon, lat, depth, bins := 128, 128, 32, 16
	if *quick {
		lon, lat, depth = 64, 64, 16
	}
	setup, err := prepareOcean(lon, lat, depth, 11, bins)
	if err != nil {
		return err
	}
	n := len(setup.temp)
	const subsets = 60
	unit := (n + subsets - 1) / subsets
	header("Figure 17 — accuracy loss for correlation mining (POP substitute)",
		fmt.Sprintf("MI(temperature, salinity) within %d spatial subsets of %d cells (%d bins); CFP of relative errors", subsets, unit, bins))

	// Exact per-subset MI, from raw data and from bitmaps (must agree).
	exact := exactUnitMI(setup, unit)
	fromBitmaps := unitMIBitmaps(setup, unit)
	bitmapErrs := 0
	for u := range exact {
		if math.Abs(fromBitmaps[u]-exact[u]) > 1e-9 {
			bitmapErrs++
		}
	}
	row("bitmaps: %d/%d subsets differ from exact (must be 0) -> mean loss 0.00%%", bitmapErrs, len(exact))
	if bitmapErrs > 0 {
		return fmt.Errorf("bitmap MI diverged from exact in %d subsets", bitmapErrs)
	}

	for _, pct := range []float64{50, 30, 15, 5} {
		smp, err := insitubits.NewRandomSampler(n, pct, 23)
		if err != nil {
			return err
		}
		st, err := smp.Sample(setup.temp)
		if err != nil {
			return err
		}
		ss, err := smp.Sample(setup.salt)
		if err != nil {
			return err
		}
		pos := smp.Positions()
		approx := make([]float64, len(exact))
		// Group sampled elements by subset and compute subset MI.
		start := 0
		for u := range approx {
			lo, hi := u*unit, (u+1)*unit
			if hi > n {
				hi = n
			}
			end := start
			for end < len(pos) && pos[end] < hi {
				end++
			}
			approx[u] = subsetMI(st[start:end], ss[start:end], setup.mt, setup.ms)
			start = end
			_ = lo
		}
		errs, err := relErrs(exact, approx)
		if err != nil {
			return err
		}
		cfp := insitubits.NewCFP(errs)
		row("sample-%2.0f%%: mean loss %6.2f%%   CFP quartiles: p25=%.4f p50=%.4f p75=%.4f p95=%.4f",
			pct, 100*cfp.Mean(), cfp.Quantile(0.25), cfp.Quantile(0.5), cfp.Quantile(0.75), cfp.Quantile(0.95))
	}
	row("(paper: 3.14%% / 7.56%% / 10.15%% / 17.03%% mean loss at 50/30/15/5%%; bitmaps 0%%)")
	return nil
}

// exactUnitMI computes the exact per-unit MI from the raw arrays.
func exactUnitMI(s *miningSetup, unit int) []float64 {
	n := len(s.temp)
	nUnits := (n + unit - 1) / unit
	out := make([]float64, nUnits)
	for u := 0; u < nUnits; u++ {
		lo, hi := u*unit, (u+1)*unit
		if hi > n {
			hi = n
		}
		out[u] = subsetMI(s.temp[lo:hi], s.salt[lo:hi], s.mt, s.ms)
	}
	return out
}

// subsetMI is MI between two value slices under fixed global binning.
func subsetMI(a, b []float64, ma, mb insitubits.Mapper) float64 {
	if len(a) == 0 {
		return 0
	}
	joint := insitubits.JointHistogram(a, b, ma, mb)
	return insitubits.MutualInformation(joint, insitubits.Histogram(a, ma), insitubits.Histogram(b, mb), len(a))
}

// unitMIBitmaps computes every subset's MI purely from the indices: one
// AND + CountUnits per bin pair yields all units' joint counts in a single
// pass, and CountUnits per bin gives the per-unit marginals.
func unitMIBitmaps(s *miningSetup, unit int) []float64 {
	n := s.xt.N()
	nUnits := (n + unit - 1) / unit
	nbA, nbB := s.xt.Bins(), s.xs.Bins()
	ha := make([][]int, nbA)
	for i := range ha {
		ha[i] = s.xt.Bitmap(i).CountUnits(unit)
	}
	hb := make([][]int, nbB)
	for j := range hb {
		hb[j] = s.xs.Bitmap(j).CountUnits(unit)
	}
	jointU := make([][][]int, nUnits) // [unit][binA][binB]
	for u := range jointU {
		jointU[u] = make([][]int, nbA)
		for i := range jointU[u] {
			jointU[u][i] = make([]int, nbB)
		}
	}
	for i := 0; i < nbA; i++ {
		if s.xt.Count(i) == 0 {
			continue
		}
		for j := 0; j < nbB; j++ {
			if s.xs.Count(j) == 0 {
				continue
			}
			cu := s.xt.Bitmap(i).And(s.xs.Bitmap(j)).CountUnits(unit)
			for u, c := range cu {
				jointU[u][i][j] = c
			}
		}
	}
	out := make([]float64, nUnits)
	margA := make([]int, nbA)
	margB := make([]int, nbB)
	for u := 0; u < nUnits; u++ {
		lo, hi := u*unit, (u+1)*unit
		if hi > n {
			hi = n
		}
		for i := range margA {
			margA[i] = ha[i][u]
		}
		for j := range margB {
			margB[j] = hb[j][u]
		}
		out[u] = insitubits.MutualInformation(jointU[u], margA, margB, hi-lo)
	}
	return out
}

func relErrs(exact, approx []float64) ([]float64, error) {
	if len(exact) != len(approx) {
		return nil, fmt.Errorf("length mismatch %d vs %d", len(exact), len(approx))
	}
	out := make([]float64, len(exact))
	for i := range exact {
		d := math.Abs(exact[i] - approx[i])
		if e := math.Abs(exact[i]); e > 1e-12 {
			out[i] = d / e
		} else {
			out[i] = d
		}
	}
	return out, nil
}
