package main

import (
	"fmt"
	"time"

	"insitubits"
)

// figCluster renders Figure 13: Heat3D in a parallel in-situ environment,
// 1..32 nodes (8 cores each in the paper), four series: {bitmaps, full
// data} x {local disks, shared remote server at 100 MB/s}.
func figCluster() error {
	gx, gy, gz := 32, 32, 192
	steps, sel := 40, 10
	nodeCounts := []int{1, 2, 4, 8, 16, 32}
	if *quick {
		gx, gy, gz = 12, 12, 48
		steps, sel = 12, 4
		nodeCounts = []int{1, 2, 4}
	}
	coresPerNode := 8 // as in the paper's Oakley runs
	header(
		fmt.Sprintf("Figure 13 — parallel in-situ scalability, Heat3D %dx%dx%d, selecting %d of %d (conditional entropy)", gx, gy, gz, sel, steps),
		fmt.Sprintf("%d cores/node; local disk %.0f MB/s, remote server %.0f MB/s shared (modelled); compute scaled to nodes x cores via Amdahl",
			coresPerNode, insitubits.OakleyNode.DiskMBps, float64(insitubits.Xeon.NetMBps)),
	)
	row("%-6s %-9s %-7s %9s %10s %8s %8s %9s", "nodes", "method", "target", "simulate", "bitmapgen", "select", "output", "total")

	type key struct {
		method insitubits.ReductionMethod
		remote bool
	}
	totals := map[int]map[key]time.Duration{}
	for _, n := range nodeCounts {
		totals[n] = map[key]time.Duration{}
		for _, method := range []insitubits.ReductionMethod{insitubits.MethodFullData, insitubits.MethodBitmaps} {
			for _, remote := range []bool{false, true} {
				cfg := insitubits.ClusterConfig{
					Nodes:        n,
					CoresPerNode: 1, // real execution; scaling modelled below
					GridX:        gx, GridY: gy, GridZ: gz,
					Steps:  steps,
					Select: sel,
					Metric: insitubits.MetricConditionalEntropy,
					Method: insitubits.ClusterFullData,
					Bins:   160,
				}
				if method == insitubits.MethodBitmaps {
					cfg.Method = insitubits.ClusterBitmaps
				}
				if remote {
					st, err := insitubits.NewIOStore(100)
					if err != nil {
						return err
					}
					cfg.Remote = st
				} else {
					cfg.LocalMBps = insitubits.OakleyNode.DiskMBps
				}
				res, err := insitubits.RunCluster(cfg)
				if err != nil {
					return err
				}
				// Measured busy times are total work on the fixed global
				// grid; model the n-node x 8-core machine.
				c := n * coresPerNode
				simT := amdahl(res.Simulate, c, 0.95)
				redT := amdahl(res.Reduce, c, 0.99)
				selT := amdahl(res.Select, c, 0.90)
				total := simT + redT + selT + res.Output
				totals[n][key{method, remote}] = total
				target := "local"
				if remote {
					target = "remote"
				}
				name := "fulldata"
				if method == insitubits.MethodBitmaps {
					name = "bitmaps"
				}
				row("%-6d %-9s %-7s %9.3f %10.3f %8.3f %8.3f %9.3f",
					n, name, target, secs(simT), secs(redT), secs(selT), secs(res.Output), secs(total))
			}
		}
	}
	for _, n := range nodeCounts {
		local := float64(totals[n][key{insitubits.MethodFullData, false}]) / float64(totals[n][key{insitubits.MethodBitmaps, false}])
		remote := float64(totals[n][key{insitubits.MethodFullData, true}]) / float64(totals[n][key{insitubits.MethodBitmaps, true}])
		row("nodes=%-3d speedup bitmaps-vs-fulldata: local %.2fx, remote %.2fx (paper: 1.24-1.29x local, 1.24-3.79x remote)",
			n, local, remote)
	}
	return nil
}
