package main

import (
	"fmt"
	"time"

	"insitubits"
)

// workload bundles one single-node experiment setup.
type workload struct {
	name     string
	mkSim    func() (insitubits.Simulator, error)
	steps    int
	selectK  int
	bins     int
	metric   insitubits.SelectionMetric
	fracs    fractions
	diskMBps float64
	maxCores int
	scale    string // human description of the size substitution
}

func heatXeonWorkload() workload {
	dx, dy, dz, steps, sel := 64, 64, 48, 100, 25
	if *quick {
		dx, dy, dz, steps, sel = 24, 24, 24, 20, 5
	}
	return workload{
		name:     "Heat3D/Xeon",
		mkSim:    func() (insitubits.Simulator, error) { return insitubits.NewHeat3D(dx, dy, dz) },
		steps:    steps,
		selectK:  sel,
		bins:     160,
		metric:   insitubits.MetricConditionalEntropy,
		fracs:    heatFracs,
		diskMBps: insitubits.Xeon.DiskMBps,
		maxCores: insitubits.Xeon.Cores,
		scale: fmt.Sprintf("grid %dx%dx%d (%.1f MB/step; paper: 800x1000x1000, 6.4 GB/step)",
			dx, dy, dz, float64(8*dx*dy*dz)/1e6),
	}
}

func heatMICWorkload() workload {
	w := heatXeonWorkload()
	dx, dy, dz := 64, 64, 12 // quarter of the Xeon grid, as in the paper
	if *quick {
		dx, dy, dz = 24, 24, 8
	}
	w.name = "Heat3D/MIC"
	w.mkSim = func() (insitubits.Simulator, error) { return insitubits.NewHeat3D(dx, dy, dz) }
	w.diskMBps = insitubits.MIC.DiskMBps
	w.maxCores = 56 // the paper uses 56 of the MIC's 60 cores
	w.scale = fmt.Sprintf("grid %dx%dx%d (%.1f MB/step; paper: 200x1000x1000, 1.6 GB/step)",
		dx, dy, dz, float64(8*dx*dy*dz)/1e6)
	return w
}

func luleshXeonWorkload() workload {
	n, steps, sel := 20, 100, 25
	if *quick {
		n, steps, sel = 8, 16, 4
	}
	return workload{
		name:     "Lulesh/Xeon",
		mkSim:    func() (insitubits.Simulator, error) { return insitubits.NewLulesh(n, n, n) },
		steps:    steps,
		selectK:  sel,
		bins:     120,
		metric:   insitubits.MetricEMDSpatial,
		fracs:    luleshFracs,
		diskMBps: insitubits.Xeon.DiskMBps,
		maxCores: insitubits.Xeon.Cores,
		scale: fmt.Sprintf("mesh %d^3 nodes, 12 arrays (%.1f MB/step; paper: 64M nodes, 6.14 GB/step)",
			n, float64(12*8*n*n*n)/1e6),
	}
}

func luleshMICWorkload() workload {
	w := luleshXeonWorkload()
	n := 14
	if *quick {
		n = 7
	}
	w.name = "Lulesh/MIC"
	w.mkSim = func() (insitubits.Simulator, error) { return insitubits.NewLulesh(n, n, n) }
	w.diskMBps = insitubits.MIC.DiskMBps
	w.maxCores = 56
	w.scale = fmt.Sprintf("mesh %d^3 nodes, 12 arrays (%.1f MB/step; paper: 8M nodes, 768 MB/step)",
		n, float64(12*8*n*n*n)/1e6)
	return w
}

// runMeasured executes the pipeline once, single-core, fully for real, and
// returns the result with measured busy times plus modelled output time.
func runMeasured(w workload, method insitubits.ReductionMethod, samplePct float64) (*insitubits.PipelineResult, error) {
	s, err := w.mkSim()
	if err != nil {
		return nil, err
	}
	st, err := insitubits.NewIOStore(w.diskMBps)
	if err != nil {
		return nil, err
	}
	cfg := insitubits.PipelineConfig{
		Sim:       s,
		Steps:     w.steps,
		Select:    w.selectK,
		Method:    method,
		Bins:      w.bins,
		SamplePct: samplePct,
		Seed:      1,
		Metric:    w.metric,
		Cores:     1,
		Store:     st,
	}
	return insitubits.RunPipeline(cfg)
}

// figBreakdown renders one Figure 7/8/9/10 panel: per-core-count stacked
// phase times for the full-data and bitmaps methods.
func figBreakdown(figName string, w workload) error {
	if *cores > 0 {
		w.maxCores = *cores
	}
	header(
		fmt.Sprintf("Figure %s — %s: selecting %d of %d time-steps (%s)", figName, w.name, w.selectK, w.steps, w.metric),
		fmt.Sprintf("%s; disk %.0f MB/s (modelled); compute measured 1-core, scaled by Amdahl (sim=%.2f reduce=%.2f select=%.2f)",
			w.scale, w.diskMBps, w.fracs.sim, w.fracs.reduce, w.fracs.sel),
	)
	full, err := runMeasured(w, insitubits.MethodFullData, 0)
	if err != nil {
		return err
	}
	bmp, err := runMeasured(w, insitubits.MethodBitmaps, 0)
	if err != nil {
		return err
	}
	if !equalInts(full.Selected, bmp.Selected) {
		return fmt.Errorf("methods selected different steps: %v vs %v", full.Selected, bmp.Selected)
	}
	row("%-6s %-9s %9s %10s %8s %8s %9s %8s", "cores", "method", "simulate", "bitmapgen", "select", "output", "total", "speedup")
	for _, c := range coreSeries(w.maxCores) {
		fb := scaleBreakdown(full.Breakdown, c, w.fracs)
		bb := scaleBreakdown(bmp.Breakdown, c, w.fracs)
		row("%-6d %-9s %9.3f %10.3f %8.3f %8.3f %9.3f %8s",
			c, "fulldata", secs(fb.Simulate), 0.0, secs(fb.Select), secs(fb.Output), secs(fb.Total()), "1.00x")
		row("%-6d %-9s %9.3f %10.3f %8.3f %8.3f %9.3f %7.2fx",
			c, "bitmaps", secs(bb.Simulate), secs(bb.Reduce), secs(bb.Select), secs(bb.Output), secs(bb.Total()),
			float64(fb.Total())/float64(bb.Total()))
	}
	row("selected steps: %v", bmp.Selected)
	row("bytes written: fulldata %.1f MB, bitmaps %.1f MB (%.1fx less)",
		mb(full.BytesWritten), mb(bmp.BytesWritten), float64(full.BytesWritten)/float64(bmp.BytesWritten))
	return nil
}

func figHeatXeon() error   { return figBreakdown("7", heatXeonWorkload()) }
func figHeatMIC() error    { return figBreakdown("8", heatMICWorkload()) }
func figLuleshXeon() error { return figBreakdown("9", luleshXeonWorkload()) }
func figLuleshMIC() error  { return figBreakdown("10", luleshMICWorkload()) }

// figMemory renders Figure 11: modelled in-situ memory (10 steps held) for
// the four workload/machine pairs, both methods.
func figMemory() error {
	header("Figure 11 — Memory cost comparison (10 time-steps held in memory)",
		"model: fulldata = prev step + in-flight step + 10 steps; bitmaps = in-flight step + prev summary + 10 summaries")
	row("%-14s %14s %14s %10s", "workload", "fulldata(MB)", "bitmaps(MB)", "ratio")
	for _, w := range []workload{heatXeonWorkload(), heatMICWorkload(), luleshXeonWorkload(), luleshMICWorkload()} {
		w.steps = min(w.steps, 12)
		w.selectK = min(w.selectK, 4)
		res, err := runMeasured(w, insitubits.MethodBitmaps, 0)
		if err != nil {
			return err
		}
		fullMem := insitubits.MemoryModel(insitubits.MethodFullData, res.StepBytes, 0, 10)
		bmpMem := insitubits.MemoryModel(insitubits.MethodBitmaps, res.StepBytes, res.SummaryBytes, 10)
		row("%-14s %14.1f %14.1f %9.2fx", w.name, mb(fullMem), mb(bmpMem), float64(fullMem)/float64(bmpMem))
	}
	row("(paper: Heat3D 3.59x/3.39x, Lulesh 2.02x/1.99x smaller)")
	return nil
}

// figAllocation renders Figure 12: shared cores vs separate-core splits.
func figAllocation(panel string) error {
	var w workload
	var total int
	switch panel {
	case "12a":
		w, total = heatXeonWorkload(), 28
	case "12b":
		w, total = heatMICWorkload(), 56
	default:
		w, total = luleshXeonWorkload(), 28
	}
	if *cores > 0 {
		total = *cores
	}
	header(
		fmt.Sprintf("Figure %s — core allocation strategies, %s, %d cores, %d time-steps", panel, w.name, total, w.steps),
		fmt.Sprintf("%s; separate-cores steady state = steps x max(sim(c_i), bitmap(c_j)); shared = steps x (sim(c_all)+bitmap(c_all))", w.scale),
	)
	// Measure true 1-core per-step costs over a short calibration run.
	calib := w
	calib.steps = min(w.steps, 8)
	calib.selectK = min(w.selectK, 2)
	res, err := runMeasured(calib, insitubits.MethodBitmaps, 0)
	if err != nil {
		return err
	}
	simStep := res.Breakdown.Simulate / time.Duration(calib.steps)
	redStep := res.Breakdown.Reduce / time.Duration(calib.steps)

	perStepShared := amdahl(simStep, total, w.fracs.sim) + amdahl(redStep, total, w.fracs.reduce)
	row("%-10s %12s", "allocation", "total(ms)")
	row("%-10s %12.3f", "c_all", 1e3*float64(w.steps)*secs(perStepShared))
	bestName, bestTime := "c_all", float64(w.steps)*secs(perStepShared)
	for _, simC := range []int{total * 1 / 7, total * 2 / 7, total * 3 / 7, total * 4 / 7, total * 5 / 7, total * 6 / 7} {
		if simC < 1 || simC >= total {
			continue
		}
		redC := total - simC
		ts := amdahl(simStep, simC, w.fracs.sim)
		tr := amdahl(redStep, redC, w.fracs.reduce)
		step := ts
		if tr > step {
			step = tr
		}
		t := float64(w.steps) * secs(step)
		name := fmt.Sprintf("c%d_c%d", simC, redC)
		row("%-10s %12.3f", name, 1e3*t)
		if t < bestTime {
			bestName, bestTime = name, t
		}
	}
	// The paper's Equation 1/2 recommendation.
	simT := amdahl(simStep, total, w.fracs.sim)
	redT := amdahl(redStep, total, w.fracs.reduce)
	eqSim := int(float64(total) * float64(simT) / float64(simT+redT))
	if eqSim < 1 {
		eqSim = 1
	}
	if eqSim >= total {
		eqSim = total - 1
	}
	row("best allocation: %s (%.3f ms); Eq.1/2 recommends c%d_c%d", bestName, 1e3*bestTime, eqSim, total-eqSim)
	return nil
}

// figSamplingTime renders Figure 15: bitmaps vs sampling levels on Heat3D,
// 32 cores.
func figSamplingTime() error {
	w := heatXeonWorkload()
	c := 32
	if *cores > 0 {
		c = *cores
	}
	header(
		fmt.Sprintf("Figure 15 — bitmaps vs in-situ sampling, %s, %d cores, selecting %d of %d", w.name, c, w.selectK, w.steps),
		w.scale+"; process = bitmap generation or down-sampling",
	)
	row("%-12s %9s %8s %8s %8s %9s", "method", "simulate", "process", "select", "output", "total")
	bmp, err := runMeasured(w, insitubits.MethodBitmaps, 0)
	if err != nil {
		return err
	}
	bb := scaleBreakdown(bmp.Breakdown, c, w.fracs)
	row("%-12s %9.3f %8.3f %8.3f %8.3f %9.3f", "bitmaps",
		secs(bb.Simulate), secs(bb.Reduce), secs(bb.Select), secs(bb.Output), secs(bb.Total()))
	for _, pct := range []float64{30, 15, 10, 5, 1} {
		res, err := runMeasured(w, insitubits.MethodSampling, pct)
		if err != nil {
			return err
		}
		sb := scaleBreakdown(res.Breakdown, c, w.fracs)
		row("%-12s %9.3f %8.3f %8.3f %8.3f %9.3f", fmt.Sprintf("sample-%g%%", pct),
			secs(sb.Simulate), secs(sb.Reduce), secs(sb.Select), secs(sb.Output), secs(sb.Total()))
	}
	return nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
