package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"insitubits"
)

// The multi-core performance model. Every phase is executed for real and
// its single-core busy time measured; the per-core-count series the paper's
// figures plot are then derived with Amdahl's law:
//
//	T(c) = T1 × (f/c + (1-f))
//
// with a per-phase parallel fraction f. The fractions below are calibrated
// to the scaling the paper reports: Heat3D "does not scale well" (speedup
// 1.3× from 12→28 cores means a substantial serial fraction), bitmap
// generation "is reduced almost linearly", Lulesh is a scalable compute
// kernel. Transfer (Output) time never scales with cores — that is the
// paper's central observation.
type fractions struct {
	sim    float64
	reduce float64
	sel    float64
}

var (
	heatFracs   = fractions{sim: 0.78, reduce: 0.99, sel: 0.95}
	luleshFracs = fractions{sim: 0.97, reduce: 0.99, sel: 0.95}
)

// amdahl scales a measured 1-core busy time to c cores.
func amdahl(t1 time.Duration, c int, f float64) time.Duration {
	if c < 1 {
		c = 1
	}
	return time.Duration(float64(t1) * (f/float64(c) + (1 - f)))
}

// scaleBreakdown derives the c-core phase times of a 1-core measured run.
func scaleBreakdown(b insitubits.Breakdown, c int, f fractions) insitubits.Breakdown {
	return insitubits.Breakdown{
		Simulate: amdahl(b.Simulate, c, f.sim),
		Reduce:   amdahl(b.Reduce, c, f.reduce),
		Select:   amdahl(b.Select, c, f.sel),
		Output:   b.Output, // I/O does not parallelize
	}
}

func secs(d time.Duration) float64 { return d.Seconds() }

// out is where figures print; tests swap in a buffer.
var out io.Writer = os.Stdout

// row prints one aligned figure row.
func row(format string, args ...any) { fmt.Fprintf(out, format+"\n", args...) }

// header prints a figure banner.
func header(title, detail string) {
	fmt.Fprintf(out, "# %s\n", title)
	if detail != "" {
		fmt.Fprintf(out, "# %s\n", detail)
	}
}

func mb(bytes int64) float64 { return float64(bytes) / 1e6 }

// coreSeries are the core counts each single-node figure sweeps.
func coreSeries(maxCores int) []int {
	series := []int{1, 2, 4, 8, 16, 32, 56}
	var out []int
	for _, c := range series {
		if c <= maxCores {
			out = append(out, c)
		}
	}
	if len(out) == 0 || out[len(out)-1] != maxCores {
		out = append(out, maxCores)
	}
	return out
}
