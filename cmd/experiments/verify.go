package main

import (
	"context"
	"fmt"
	"math"

	"insitubits"
)

// figVerify machine-checks the paper's headline *correctness* claims — the
// ones that must hold exactly, independent of hardware. Performance claims
// live in the figures; these are pass/fail.
func figVerify() error {
	header("Claims verifier — the paper's exactness claims, machine-checked",
		"each claim either PASSes exactly or the command exits nonzero")
	failures := 0
	check := func(name string, ok bool, detail string) {
		status := "PASS"
		if !ok {
			status = "FAIL"
			failures++
		}
		row("  [%s] %-58s %s", status, name, detail)
	}

	// Workloads at verification scale.
	h, err := insitubits.NewHeat3D(24, 24, 16)
	if err != nil {
		return err
	}
	m, err := insitubits.NewUniformBins(0, 130, 96)
	if err != nil {
		return err
	}
	var raw [][]float64
	var indices []*insitubits.Index
	for t := 0; t < 16; t++ {
		data := h.Step(2)[0].Data
		raw = append(raw, data)
		indices = append(indices, insitubits.BuildIndex(data, m))
	}

	// Claim 1 (§2.2): bitmaps much smaller than the data.
	maxRatio := 0.0
	for _, x := range indices {
		if r := float64(x.SizeBytes()) / float64(8*x.N()); r > maxRatio {
			maxRatio = r
		}
	}
	check("bitmap size < 30% of raw data on every step", maxRatio < 0.30,
		fmt.Sprintf("worst %.1f%%", 100*maxRatio))

	// Claim 2 (§3.2): every metric identical between bitmap and data paths.
	worst := 0.0
	for i := 1; i < len(raw); i++ {
		pb := insitubits.PairFromBitmaps(indices[i], indices[0])
		pd := insitubits.PairFromData(raw[i], raw[0], m, m)
		for _, d := range []float64{
			pb.EntropyA - pd.EntropyA, pb.MI - pd.MI, pb.CondEntropyAB - pd.CondEntropyAB,
			insitubits.EMDSpatialBitmaps(indices[i], indices[0]) - insitubits.EMDSpatialData(raw[i], raw[0], m),
			insitubits.EMDCount(indices[i].Histogram(), indices[0].Histogram()) -
				insitubits.EMDCount(insitubits.Histogram(raw[i], m), insitubits.Histogram(raw[0], m)),
		} {
			if a := math.Abs(d); a > worst {
				worst = a
			}
		}
	}
	check("entropy/MI/cond-entropy/EMD identical on both paths", worst < 1e-9,
		fmt.Sprintf("max |diff| %.2e", worst))

	// Claim 3 (§3): time-step selection picks identical steps on both paths.
	var sumsB, sumsD []insitubits.Summary
	for i := range raw {
		sumsB = append(sumsB, insitubits.NewBitmapSummary(indices[i]))
		sumsD = append(sumsD, insitubits.NewDataSummary(raw[i], m))
	}
	sameSel := true
	for _, metric := range []insitubits.SelectionMetric{
		insitubits.MetricConditionalEntropy, insitubits.MetricEMDCount, insitubits.MetricEMDSpatial,
	} {
		rb, err := insitubits.SelectTimeSteps(sumsB, 5, insitubits.FixedLengthPartitioning{}, metric)
		if err != nil {
			return err
		}
		rd, err := insitubits.SelectTimeSteps(sumsD, 5, insitubits.FixedLengthPartitioning{}, metric)
		if err != nil {
			return err
		}
		for i := range rb.Selected {
			if rb.Selected[i] != rd.Selected[i] {
				sameSel = false
			}
		}
	}
	check("selection identical on both paths (all 3 metrics)", sameSel, "5 of 16 steps")

	// Claim 4 (§4): mining results identical across all four code paths.
	d, err := insitubits.GenerateOcean(48, 48, 8, 3)
	if err != nil {
		return err
	}
	temp, _ := d.VarCurveOrder("temperature")
	salt, _ := d.VarCurveOrder("salinity")
	tlo, thi := insitubits.MinMax(temp)
	slo, shi := insitubits.MinMax(salt)
	mt, _ := insitubits.NewUniformBins(tlo, thi+1e-9, 32)
	ms, _ := insitubits.NewUniformBins(slo, shi+1e-9, 32)
	xt := insitubits.BuildIndex(temp, mt)
	xs := insitubits.BuildIndex(salt, ms)
	cfg := insitubits.MiningConfig{UnitSize: 256, ValueThreshold: 0.002, SpatialThreshold: 0.03}
	flat, err := insitubits.Mine(xt, xs, cfg)
	if err != nil {
		return err
	}
	par, err := insitubits.MineParallel(xt, xs, cfg, 4)
	if err != nil {
		return err
	}
	mlt, _ := insitubits.BuildMultiLevel(xt, 4)
	mls, _ := insitubits.BuildMultiLevel(xs, 4)
	multi, err := insitubits.MineMultiLevel(mlt, mls, cfg)
	if err != nil {
		return err
	}
	full, err := insitubits.MineFullData(temp, salt, mt, ms, cfg)
	if err != nil {
		return err
	}
	check("mining identical: serial = parallel = multi-level = full-data",
		len(flat) == len(par) && len(flat) == len(multi) && len(flat) == len(full) && len(flat) > 0,
		fmt.Sprintf("%d findings each", len(flat)))

	// Claim 5 (Algorithm 1): streaming build = dense = two-phase, bit-exact.
	same := true
	lazy := insitubits.BuildIndex(raw[3], m)
	dense := insitubits.BuildIndexAlgorithm1(raw[3], m)
	two := insitubits.BuildIndexTwoPhase(raw[3], m)
	for b := 0; b < lazy.Bins(); b++ {
		if !lazy.Bitmap(b).Equal(dense.Bitmap(b)) || !lazy.Bitmap(b).Equal(two.Bitmap(b)) {
			same = false
		}
	}
	check("Algorithm 1 variants produce bit-identical indices", same,
		fmt.Sprintf("%d bins compared", lazy.Bins()))

	// Claim 6: aggregation bounds always contain the truth.
	bounds := true
	trueSum := 0.0
	for _, v := range raw[0] {
		trueSum += v
	}
	agg, err := insitubits.SubsetSum(context.Background(), indices[0], insitubits.QuerySubset{})
	if err != nil {
		return err
	}
	if trueSum < agg.Lo || trueSum > agg.Hi {
		bounds = false
	}
	check("aggregation bounds contain the discarded data's true sum", bounds,
		fmt.Sprintf("sum %.1f in [%.1f, %.1f]", trueSum, agg.Lo, agg.Hi))

	if failures > 0 {
		return fmt.Errorf("%d claim(s) failed", failures)
	}
	row("all claims hold")
	return nil
}
