package main

import (
	"testing"
	"time"

	"insitubits"
)

func TestAmdahl(t *testing.T) {
	t1 := time.Second
	// One core: unchanged.
	if got := amdahl(t1, 1, 0.9); got != t1 {
		t.Fatalf("amdahl(1s, 1) = %v", got)
	}
	// Perfectly parallel: 1/c.
	if got := amdahl(t1, 4, 1.0); got != t1/4 {
		t.Fatalf("amdahl fully parallel = %v", got)
	}
	// Fully serial: unchanged at any core count.
	if got := amdahl(t1, 64, 0); got != t1 {
		t.Fatalf("amdahl fully serial = %v", got)
	}
	// Monotone non-increasing in cores; asymptote is the serial fraction.
	prev := t1
	for _, c := range []int{1, 2, 4, 8, 16, 1 << 20} {
		got := amdahl(t1, c, 0.8)
		if got > prev {
			t.Fatalf("amdahl not monotone at c=%d", c)
		}
		prev = got
	}
	if floor := amdahl(t1, 1<<20, 0.8); floor < t1/5 || floor > t1/4 {
		t.Fatalf("asymptote %v, want ~0.2s", floor)
	}
	// Degenerate core counts clamp.
	if amdahl(t1, 0, 0.5) != t1 || amdahl(t1, -3, 0.5) != t1 {
		t.Fatal("non-positive cores not clamped")
	}
}

func TestScaleBreakdownKeepsOutputFlat(t *testing.T) {
	b := insitubits.Breakdown{
		Simulate: time.Second,
		Reduce:   time.Second,
		Select:   time.Second,
		Output:   time.Second,
	}
	scaled := scaleBreakdown(b, 32, heatFracs)
	if scaled.Output != time.Second {
		t.Fatalf("output scaled: %v", scaled.Output)
	}
	if scaled.Simulate >= b.Simulate || scaled.Reduce >= b.Reduce || scaled.Select >= b.Select {
		t.Fatal("compute phases did not shrink")
	}
	// Bitmap generation scales the best (highest fraction).
	if scaled.Reduce >= scaled.Simulate {
		t.Fatalf("reduce (f=%.2f) should shrink below simulate (f=%.2f): %v vs %v",
			heatFracs.reduce, heatFracs.sim, scaled.Reduce, scaled.Simulate)
	}
}

func TestCoreSeries(t *testing.T) {
	s := coreSeries(32)
	if s[0] != 1 || s[len(s)-1] != 32 {
		t.Fatalf("series %v", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatalf("series not ascending: %v", s)
		}
	}
	// Max not in the canonical list is appended.
	s = coreSeries(28)
	if s[len(s)-1] != 28 {
		t.Fatalf("series %v missing max", s)
	}
	// Tiny max still produces a valid series.
	s = coreSeries(1)
	if len(s) != 1 || s[0] != 1 {
		t.Fatalf("series %v", s)
	}
}

func TestEqualInts(t *testing.T) {
	if !equalInts([]int{1, 2}, []int{1, 2}) {
		t.Fatal("equal slices reported unequal")
	}
	if equalInts([]int{1, 2}, []int{1, 3}) || equalInts([]int{1}, []int{1, 2}) {
		t.Fatal("unequal slices reported equal")
	}
}

// TestWorkloadsConstructible ensures every figure's workload definition can
// actually build its simulator (guards against size/flag regressions).
func TestWorkloadsConstructible(t *testing.T) {
	for _, w := range []workload{heatXeonWorkload(), heatMICWorkload(), luleshXeonWorkload(), luleshMICWorkload()} {
		s, err := w.mkSim()
		if err != nil {
			t.Fatalf("%s: %v", w.name, err)
		}
		if s.Elements() <= 0 || len(s.Vars()) != len(s.Ranges()) {
			t.Fatalf("%s: inconsistent simulator", w.name)
		}
		if w.steps < w.selectK {
			t.Fatalf("%s: selects %d of %d", w.name, w.selectK, w.steps)
		}
	}
}
