package main

import (
	"fmt"
	"math"

	"insitubits"
)

// figSamplingAccuracy renders Figure 16: the conditional-entropy error that
// sampling introduces into time-step selection, as a CFP over all step
// pairs, plus the paper's mean relative information loss.
func figSamplingAccuracy() error {
	dx, dy, dz, steps := 32, 32, 24, 40
	if *quick {
		dx, dy, dz, steps = 16, 16, 12, 12
	}
	header("Figure 16 — accuracy loss for time-step selection (Heat3D)",
		fmt.Sprintf("conditional entropy between all %dx%d step pairs; sampling vs exact; bitmaps are exact by construction", steps, steps-1))
	h, err := insitubits.NewHeat3D(dx, dy, dz)
	if err != nil {
		return err
	}
	m, err := insitubits.NewUniformBins(0, 130, 160)
	if err != nil {
		return err
	}
	n := h.Elements()
	raw := make([][]float64, steps)
	for t := range raw {
		fields := h.Step(1)
		raw[t] = fields[0].Data
	}
	var exactS, bitmapS []insitubits.Summary
	for _, data := range raw {
		exactS = append(exactS, insitubits.NewDataSummary(data, m))
		bitmapS = append(bitmapS, insitubits.NewBitmapSummary(insitubits.BuildIndex(data, m)))
	}
	exact := pairwiseScores(exactS)
	viaBitmaps := pairwiseScores(bitmapS)
	maxDiff := 0.0
	for i := range exact {
		if d := math.Abs(exact[i] - viaBitmaps[i]); d > maxDiff {
			maxDiff = d
		}
	}
	row("bitmaps: max |error| over %d pairs = %.2e -> mean loss 0.00%% (no accuracy loss)", len(exact), maxDiff)
	if maxDiff > 1e-9 {
		return fmt.Errorf("bitmap metrics diverged from exact by %g", maxDiff)
	}

	for _, pct := range []float64{30, 15, 5} {
		smp, err := insitubits.NewRandomSampler(n, pct, 31)
		if err != nil {
			return err
		}
		var sampledS []insitubits.Summary
		for _, data := range raw {
			sd, err := smp.Sample(data)
			if err != nil {
				return err
			}
			sampledS = append(sampledS, insitubits.NewDataSummary(sd, m))
		}
		approx := pairwiseScores(sampledS)
		abs := make([]float64, len(exact))
		rel := 0.0
		for i := range exact {
			abs[i] = math.Abs(exact[i] - approx[i])
			if e := math.Abs(exact[i]); e > 1e-12 {
				rel += abs[i] / e
			}
		}
		cfp := insitubits.NewCFP(abs)
		row("sample-%2.0f%%: mean rel. loss %6.2f%%   CFP of |dH|: p25=%.4f p50=%.4f p75=%.4f p95=%.4f",
			pct, 100*rel/float64(len(exact)),
			cfp.Quantile(0.25), cfp.Quantile(0.5), cfp.Quantile(0.75), cfp.Quantile(0.95))
	}
	row("(paper: 21.03%% / 37.56%% / 58.37%% mean loss at 30/15/5%%; bitmaps 0%%)")
	return nil
}

// pairwiseScores evaluates conditional entropy between all ordered pairs.
func pairwiseScores(steps []insitubits.Summary) []float64 {
	var out []float64
	for i := range steps {
		for j := range steps {
			if i != j {
				out = append(out, steps[i].Dissimilarity(steps[j], insitubits.MetricConditionalEntropy))
			}
		}
	}
	return out
}
