// Command insitu-serve is the always-on query daemon: it loads the
// immutable bitmap indexes an in-situ run published (or any explicit set
// of .isbm files), and serves the full query API — count, sum, mean,
// quantile, minmax, bits, correlation, EXPLAIN — concurrently over
// HTTP/JSON, hardened for production use (docs/SERVING.md):
//
//   - per-request deadlines (server default, per-request override, clamped);
//   - admission control: a max-inflight execution semaphore with a bounded
//     wait queue — overload sheds 429 + Retry-After instead of collapsing;
//   - per-request panic isolation (500 + counter, the server survives);
//   - zero-downtime reload: -watch polls a live run's journal and publishes
//     each newly committed step without dropping in-flight queries; SIGHUP
//     and POST /v1/reload force a reload;
//   - graceful drain on SIGTERM/SIGINT: readiness flips, in-flight requests
//     finish, then the listener closes;
//   - liveness (/healthz) split from readiness (/readyz);
//   - W3C traceparent / X-Trace-Id propagation into traces, the slow-query
//     log and the workload log (captured records carry source=serve).
//
//	insitu-run -sim heat3d -out run1/ -method bitmaps &
//	insitu-serve -dir run1/ -watch 2s -debug-addr :6060
//	bitmapctl query -addr http://localhost:8689 -op count -lo 1 -hi 5
//	bitmapctl load -addr http://localhost:8689 -rate 500 -duration 10s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"insitubits"
)

func main() {
	addr := flag.String("addr", ":8689", "query API listen address")
	dir := flag.String("dir", "", "serve the newest committed step of this in-situ run directory")
	var indexes multiFlag
	flag.Var(&indexes, "index", "serve this index file, as PATH or NAME=PATH (repeatable; positional args too)")
	watch := flag.Duration("watch", 0, "poll -dir for newly committed steps at this interval and reload (0 = off)")
	maxInflight := flag.Int("max-inflight", 0, "concurrently executing queries (0 = 2x GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 0, "admission wait-queue seats before shedding (0 = 4x max-inflight)")
	timeout := flag.Duration("timeout", 2*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 30*time.Second, "clamp for the per-request timeout_ms override")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long a drain waits for in-flight queries")
	retryAfter := flag.Duration("retry-after", 250*time.Millisecond, "backoff hint stamped on shed (429) responses")
	readTimeout := flag.Duration("read-timeout", 10*time.Second, "HTTP read deadline (slow-loris guard)")
	writeTimeout := flag.Duration("write-timeout", 60*time.Second, "HTTP write deadline")
	debugAddr := flag.String("debug-addr", "", "serve live telemetry, /debug/serve, /readyz and pprof on this address")
	cacheMB := flag.Int("cache-mb", 64, "materialized-bitmap cache size in MB (0 = off)")
	qlogPath := flag.String("qlog", "", "capture every served query into this workload log (.isql, records tagged source=serve)")
	slowLog := flag.String("slowlog", "", `slow-query log destination: "stderr" or a file path (JSON lines)`)
	slowLogThreshold := flag.Duration("slowlog-threshold", 10*time.Millisecond, "log queries slower than this (with -slowlog)")
	trace := flag.Bool("trace", false, "record identity traces per served query, at /debug/traces")
	traceSample := flag.Int("trace-sample", 1, "keep 1 of every N traces (1 keeps all)")
	traceSlow := flag.Duration("trace-slow", 0, "always keep traces slower than this")
	traceRing := flag.Int("trace-ring", 256, "completed traces held in memory")
	flag.Parse()
	indexes = append(indexes, flag.Args()...)

	if *dir == "" && len(indexes) == 0 {
		log.Fatal("nothing to serve: give -dir RUNDIR or index files (-index NAME=PATH or positional)")
	}
	if *dir != "" && len(indexes) > 0 {
		log.Fatal("-dir and explicit index files are mutually exclusive")
	}

	if *cacheMB > 0 {
		insitubits.SetDefaultBitmapCache(insitubits.NewBitmapCache(int64(*cacheMB) << 20))
	}
	if *trace {
		rec := insitubits.NewTraceRecorder(insitubits.TraceConfig{
			Capacity:      *traceRing,
			SampleEvery:   *traceSample,
			SlowThreshold: *traceSlow,
		})
		insitubits.SetTraceRecorder(rec)
	}
	if *qlogPath != "" {
		w, err := insitubits.CreateQueryLog(*qlogPath)
		if err != nil {
			log.Fatal(err)
		}
		w.SetSource("serve")
		insitubits.InstallQueryLog(w)
		defer func() {
			insitubits.InstallQueryLog(nil)
			if err := w.Close(); err != nil {
				log.Printf("workload log: %v", err)
			}
			h := w.Health()
			fmt.Printf("workload log:   %d records to %s (%d dropped, %d errors)\n",
				h.Records, *qlogPath, h.Dropped, h.Errors)
		}()
	}
	if *slowLog != "" {
		w := os.Stderr
		if *slowLog != "stderr" {
			f, err := os.OpenFile(*slowLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		insitubits.SetSlowQueryLog(slog.New(slog.NewJSONHandler(w, nil)), *slowLogThreshold)
	}

	srv := insitubits.NewQueryServer(insitubits.ServeConfig{
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		DrainTimeout:   *drainTimeout,
		RetryAfter:     *retryAfter,
	})
	srv.PublishStatus()

	var err error
	if *dir != "" {
		err = srv.LoadDir(*dir)
	} else {
		err = srv.LoadFiles(indexes)
	}
	if err != nil {
		log.Fatal(err)
	}
	st := srv.Status()
	fmt.Printf("serving:        %s (step %d, catalog generation %d)\n",
		strings.Join(st.Vars, ", "), st.Step, st.CatalogGen)
	fmt.Printf("admission:      %d in-flight slots, %d queue seats, default deadline %s\n",
		st.MaxInflight, st.MaxQueue, *timeout)

	if *debugAddr != "" {
		dbg, err := insitubits.Telemetry.ServeDebug(*debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		insitubits.Telemetry.EnableRuntimeMetrics()
		hist := insitubits.StartMetricsHistory(insitubits.Telemetry, time.Second, 300)
		defer hist.Stop()
		fmt.Printf("debug server:   http://%s  (/debug/serve /readyz /telemetry /metrics /debug/pprof/)\n", dbg.Addr)
	}

	watchCtx, stopWatch := context.WithCancel(context.Background())
	defer stopWatch()
	if *watch > 0 {
		if *dir == "" {
			log.Fatal("-watch needs -dir")
		}
		go srv.Watch(watchCtx, *watch, func(step int) {
			log.Printf("reloaded: now serving step %d (catalog generation %d)", step, srv.Status().CatalogGen)
		})
	}

	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      srv.Handler(),
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("query API:      http://localhost%s/v1/query  (POST JSON; /v1/vars, /healthz, /readyz)\n", *addr)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for {
		select {
		case err := <-errCh:
			if err != nil && err != http.ErrServerClosed {
				log.Fatal(err)
			}
			return
		case s := <-sig:
			if s == syscall.SIGHUP {
				if swapped, err := srv.Reload(); err != nil {
					log.Printf("reload: %v", err)
				} else if swapped {
					log.Printf("reloaded: now serving step %d (catalog generation %d)",
						srv.Status().Step, srv.Status().CatalogGen)
				} else {
					log.Printf("reload: no change")
				}
				continue
			}
			// SIGTERM/SIGINT: flip readiness, let in-flight requests finish,
			// then close the listener.
			fmt.Printf("draining:       %s received, waiting up to %s for in-flight queries\n", s, *drainTimeout)
			stopWatch()
			if err := srv.Drain(context.Background()); err != nil {
				log.Printf("drain: %v", err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			err := httpSrv.Shutdown(ctx)
			cancel()
			if err != nil {
				log.Printf("http shutdown: %v", err)
			}
			final := srv.Status()
			fmt.Printf("served:         %d requests (%d admitted, %d shed, %d panics, %d reloads)\n",
				final.Requests, final.Admitted, final.Shed, final.Panics, final.Reloads)
			return
		}
	}
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }
