// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document on stdout, so benchmark runs can be
// archived and diffed across commits (the Makefile `bench-json` target
// writes BENCH_<date>.json this way; `benchtrend` compares the archived
// snapshots).
//
//	go test -run xxx -bench . -benchmem ./... | benchjson > BENCH_20260806.json
//
// Lines that are not benchmark results (PASS, ok, coverage, test logs) are
// ignored, so the full `go test` stream can be piped through unfiltered.
// The parsing and the snapshot schema live in internal/benchfmt.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"insitubits/internal/benchfmt"
)

func main() {
	rep, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
