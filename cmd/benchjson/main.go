// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document on stdout, so benchmark runs can be
// archived and diffed across commits (the Makefile `bench-json` target
// writes BENCH_<date>.json this way).
//
//	go test -run xxx -bench . -benchmem ./... | benchjson > BENCH_20260806.json
//
// Lines that are not benchmark results (PASS, ok, coverage, test logs) are
// ignored, so the full `go test` stream can be piped through unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line, annotated with the package it ran in.
type Result struct {
	Pkg  string `json:"pkg,omitempty"`
	Name string `json:"name"`
	Runs int64  `json:"runs"`
	// Metrics maps the benchmark's reported units to values: "ns/op",
	// "B/op", "allocs/op", "MB/s", and any custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole run: the environment header go test prints plus
// every benchmark result that followed it.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func parse(lines *bufio.Scanner) (Report, error) {
	var rep Report
	pkg := ""
	for lines.Scan() {
		line := strings.TrimSpace(lines.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			fields := strings.Fields(line)
			// Name, iteration count, then value/unit pairs.
			if len(fields) < 4 || len(fields)%2 != 0 {
				continue
			}
			runs, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				continue
			}
			r := Result{Pkg: pkg, Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
			ok := true
			for i := 2; i+1 < len(fields); i += 2 {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					ok = false
					break
				}
				r.Metrics[fields[i+1]] = v
			}
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}
	return rep, lines.Err()
}

func main() {
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	rep, err := parse(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
