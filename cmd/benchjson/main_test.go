package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	const sample = `goos: linux
goarch: amd64
pkg: insitubits/internal/telemetry
cpu: Example CPU @ 3.00GHz
BenchmarkNoopCounter-8   	1000000000	         0.2500 ns/op	       0 B/op	       0 allocs/op
BenchmarkSpan-8          	 5000000	       240.0 ns/op
PASS
ok  	insitubits/internal/telemetry	2.150s
pkg: insitubits/internal/bitvec
BenchmarkAppend-8        	  120000	      9800 ns/op	     132 B/op	       2 allocs/op
some stray log line
PASS
`
	rep, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU == "" {
		t.Errorf("header not captured: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	b := rep.Benchmarks[0]
	if b.Pkg != "insitubits/internal/telemetry" || b.Name != "BenchmarkNoopCounter-8" ||
		b.Runs != 1000000000 || b.Metrics["ns/op"] != 0.25 || b.Metrics["allocs/op"] != 0 {
		t.Errorf("first benchmark mis-parsed: %+v", b)
	}
	if got := rep.Benchmarks[2]; got.Pkg != "insitubits/internal/bitvec" || got.Metrics["B/op"] != 132 {
		t.Errorf("pkg tracking broken: %+v", got)
	}
}
