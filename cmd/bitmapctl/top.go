package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"insitubits"
)

// cmdTop renders a live terminal view of the pipeline run published at a
// debug server's /debug/run endpoint (see docs/OBSERVABILITY.md):
//
//	bitmapctl top -addr localhost:6060
//	bitmapctl top -addr localhost:6060 -once   # one snapshot, no refresh
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "localhost:6060", "debug server address (host:port)")
	interval := fs.Duration("interval", time.Second, "refresh interval")
	once := fs.Bool("once", false, "print one snapshot and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *interval < 100*time.Millisecond {
		*interval = 100 * time.Millisecond
	}
	url := fmt.Sprintf("http://%s/debug/run", *addr)
	for {
		st, err := fetchRunStatus(url)
		if err != nil {
			if *once {
				return err
			}
			// Transient between runs or while the server restarts: show it
			// and keep polling.
			fmt.Printf("\033[H\033[2Jbitmapctl top: %v (retrying every %s)\n", err, *interval)
		} else {
			out := renderTop(st)
			if *once {
				fmt.Print(out)
				return nil
			}
			// Home + clear-to-end keeps the repaint flicker-free.
			fmt.Print("\033[H\033[2J" + out)
		}
		time.Sleep(*interval)
	}
}

// fetchRunStatus GETs and decodes one /debug/run snapshot.
func fetchRunStatus(url string) (insitubits.RunStatus, error) {
	var st insitubits.RunStatus
	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("%s: %s (%s)", url, resp.Status, strings.TrimSpace(string(body)))
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return st, fmt.Errorf("decoding run status: %w", err)
	}
	return st, nil
}

// renderTop formats one run-status snapshot as a terminal screen. Pure —
// the refresh loop and the tests share it.
func renderTop(st insitubits.RunStatus) string {
	var b strings.Builder
	state := "running"
	if st.Done {
		state = "done"
	}
	fmt.Fprintf(&b, "insitubits run  %s  method=%s", state, st.Method)
	if st.Strategy != "" {
		fmt.Fprintf(&b, "  strategy=%s", st.Strategy)
	}
	fmt.Fprintf(&b, "  workload=%s\n", st.Workload)

	done := st.StepsDone
	if st.Steps > 0 && done > st.Steps {
		done = st.Steps
	}
	fmt.Fprintf(&b, "steps     %s %d/%d", progressBar(done, st.Steps, 30), done, st.Steps)
	if st.CurrentStep >= 0 {
		fmt.Fprintf(&b, "  (current %d)", st.CurrentStep)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "selected  %d steps, %s written\n", st.Selected, fmtBytes(st.BytesWritten))
	fmt.Fprintf(&b, "queue     depth %d, peak %d\n", st.QueueDepth, st.QueuePeak)
	fmt.Fprintf(&b, "elapsed   %s\n", time.Duration(st.ElapsedNs).Round(time.Millisecond))

	if len(st.Phases) > 0 {
		names := make([]string, 0, len(st.Phases))
		for name := range st.Phases {
			names = append(names, name)
		}
		sort.Strings(names)
		b.WriteString("phases    ")
		for i, name := range names {
			p := st.Phases[name]
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%s %s/%d", name, time.Duration(p.TotalNs).Round(time.Millisecond), p.Count)
		}
		b.WriteByte('\n')
	}
	if len(st.CodecBins) > 0 {
		parts := make([]string, 0, len(st.CodecBins))
		for _, id := range []string{"wah", "bbc", "dense", "other"} {
			if n := st.CodecBins[id]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", id, n))
			}
		}
		fmt.Fprintf(&b, "codecs    %s (bins reduced)\n", strings.Join(parts, " "))
	}
	if st.TraceID != "" {
		fmt.Fprintf(&b, "trace     %s (GET /debug/traces?id=%s)\n", st.TraceID, st.TraceID)
	}
	return b.String()
}

// progressBar renders done/total as a fixed-width bar.
func progressBar(done, total, width int) string {
	if total <= 0 {
		return "[" + strings.Repeat("-", width) + "]"
	}
	filled := done * width / total
	if filled > width {
		filled = width
	}
	return "[" + strings.Repeat("#", filled) + strings.Repeat(".", width-filled) + "]"
}

// fmtBytes renders a byte count human-readably.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
