package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"insitubits"
)

// cmdTop renders a live terminal view of the pipeline run published at a
// debug server's /debug/run endpoint (see docs/OBSERVABILITY.md):
//
//	bitmapctl top -addr localhost:6060
//	bitmapctl top -addr localhost:6060 -once   # one snapshot, no refresh
//
// Pointed at an insitu-serve debug address (no pipeline run, but a
// /debug/serve surface), it renders the query-server dashboard instead:
// admission pressure, shed counters and catalog generation.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "localhost:6060", "debug server address (host:port)")
	interval := fs.Duration("interval", time.Second, "refresh interval")
	once := fs.Bool("once", false, "print one snapshot and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *interval < 100*time.Millisecond {
		*interval = 100 * time.Millisecond
	}
	url := fmt.Sprintf("http://%s/debug/run", *addr)
	serveURL := fmt.Sprintf("http://%s/debug/serve", *addr)
	histURL := fmt.Sprintf("http://%s/debug/metrics/history", *addr)
	for {
		out, err := "", error(nil)
		if st, rerr := fetchRunStatus(url); rerr == nil {
			out = renderTop(st)
		} else if sst, serr := fetchServeStatus(serveURL); serr == nil {
			// No pipeline run here — but a query server is publishing
			// /debug/serve, so show its dashboard instead.
			out = renderServeTop(sst)
		} else {
			err = rerr
		}
		if err != nil {
			if *once {
				return err
			}
			// Transient between runs or while the server restarts: show it
			// and keep polling.
			fmt.Printf("\033[H\033[2Jbitmapctl top: %v (retrying every %s)\n", err, *interval)
		} else {
			// The metrics history is optional (the server may not have
			// started a sampler) — render sparklines when it's there.
			if hist, herr := fetchMetricsHistory(histURL); herr == nil {
				out += renderHistory(hist, 30)
			}
			if *once {
				fmt.Print(out)
				return nil
			}
			// Home + clear-to-end keeps the repaint flicker-free.
			fmt.Print("\033[H\033[2J" + out)
		}
		time.Sleep(*interval)
	}
}

// fetchRunStatus GETs and decodes one /debug/run snapshot.
func fetchRunStatus(url string) (insitubits.RunStatus, error) {
	var st insitubits.RunStatus
	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("%s: %s (%s)", url, resp.Status, strings.TrimSpace(string(body)))
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return st, fmt.Errorf("decoding run status: %w", err)
	}
	return st, nil
}

// fetchServeStatus GETs and decodes one /debug/serve snapshot.
func fetchServeStatus(url string) (insitubits.ServeStatus, error) {
	var st insitubits.ServeStatus
	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("%s: %s (%s)", url, resp.Status, strings.TrimSpace(string(body)))
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return st, fmt.Errorf("decoding serve status: %w", err)
	}
	return st, nil
}

// fetchMetricsHistory GETs and decodes one /debug/metrics/history dump.
func fetchMetricsHistory(url string) (insitubits.MetricsHistoryDump, error) {
	var d insitubits.MetricsHistoryDump
	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return d, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return d, err
	}
	if resp.StatusCode != http.StatusOK {
		return d, fmt.Errorf("%s: %s", url, resp.Status)
	}
	if err := json.Unmarshal(body, &d); err != nil {
		return d, fmt.Errorf("decoding metrics history: %w", err)
	}
	return d, nil
}

// renderTop formats one run-status snapshot as a terminal screen. Pure —
// the refresh loop and the tests share it.
func renderTop(st insitubits.RunStatus) string {
	var b strings.Builder
	state := "running"
	if st.Done {
		state = "done"
	}
	fmt.Fprintf(&b, "insitubits run  %s  method=%s", state, st.Method)
	if st.Strategy != "" {
		fmt.Fprintf(&b, "  strategy=%s", st.Strategy)
	}
	fmt.Fprintf(&b, "  workload=%s\n", st.Workload)

	done := st.StepsDone
	if st.Steps > 0 && done > st.Steps {
		done = st.Steps
	}
	fmt.Fprintf(&b, "steps     %s %d/%d", progressBar(done, st.Steps, 30), done, st.Steps)
	if st.CurrentStep >= 0 {
		fmt.Fprintf(&b, "  (current %d)", st.CurrentStep)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "selected  %d steps, %s written\n", st.Selected, fmtBytes(st.BytesWritten))
	fmt.Fprintf(&b, "queue     depth %d, peak %d\n", st.QueueDepth, st.QueuePeak)
	if st.Generation > 0 || st.Journal != "" {
		fmt.Fprintf(&b, "index     generation %d", st.Generation)
		if st.Journal != "" {
			fmt.Fprintf(&b, ", journal %s", st.Journal)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "elapsed   %s\n", time.Duration(st.ElapsedNs).Round(time.Millisecond))

	if len(st.Phases) > 0 {
		names := make([]string, 0, len(st.Phases))
		for name := range st.Phases {
			names = append(names, name)
		}
		sort.Strings(names)
		b.WriteString("phases    ")
		for i, name := range names {
			p := st.Phases[name]
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%s %s/%d", name, time.Duration(p.TotalNs).Round(time.Millisecond), p.Count)
		}
		b.WriteByte('\n')
	}
	if len(st.CodecBins) > 0 {
		parts := make([]string, 0, len(st.CodecBins))
		for _, id := range []string{"wah", "bbc", "dense", "other"} {
			if n := st.CodecBins[id]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", id, n))
			}
		}
		fmt.Fprintf(&b, "codecs    %s (bins reduced)\n", strings.Join(parts, " "))
	}
	if st.TraceID != "" {
		fmt.Fprintf(&b, "trace     %s (GET /debug/traces?id=%s)\n", st.TraceID, st.TraceID)
	}
	return b.String()
}

// renderServeTop formats one query-server snapshot as a terminal screen.
// Pure — the refresh loop and the tests share it.
func renderServeTop(st insitubits.ServeStatus) string {
	var b strings.Builder
	fmt.Fprintf(&b, "insitu-serve  %s", st.State)
	if len(st.Vars) > 0 {
		fmt.Fprintf(&b, "  vars=%s", strings.Join(st.Vars, ","))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "catalog   generation %d", st.CatalogGen)
	if st.Step >= 0 {
		fmt.Fprintf(&b, ", step %d", st.Step)
	}
	fmt.Fprintf(&b, ", %d reloads\n", st.Reloads)
	fmt.Fprintf(&b, "inflight  %s %d/%d\n", progressBar(st.Inflight, st.MaxInflight, 30), st.Inflight, st.MaxInflight)
	fmt.Fprintf(&b, "queued    %s %d/%d\n", progressBar(st.Queued, st.MaxQueue, 30), st.Queued, st.MaxQueue)
	fmt.Fprintf(&b, "requests  %d total, %d admitted, %d shed, %d queue-cancelled, %d refused\n",
		st.Requests, st.Admitted, st.Shed, st.Cancelled, st.Refused)
	if st.Panics > 0 {
		fmt.Fprintf(&b, "panics    %d isolated (500s served, see the slow/workload logs)\n", st.Panics)
	}
	return b.String()
}

// queryOpCounters are the per-entry-point counters summed into the
// queries/s rate line.
var queryOpCounters = []string{
	"query.bits", "query.count", "query.sum", "query.minmax",
	"query.quantile", "query.correlation", "query.masked",
}

// renderHistory formats the metrics-history ring as sparkline rate lines:
// query throughput, operand word scans, cache hit-rate, and workload-log
// capture rate — only series that moved during the window are shown. Pure —
// the refresh loop and the tests share it.
func renderHistory(d insitubits.MetricsHistoryDump, width int) string {
	if len(d.Samples) < 2 {
		return ""
	}
	var b strings.Builder
	sumRates := func(names ...string) []float64 {
		var out []float64
		for _, name := range names {
			series, ok := d.Rates[name]
			if !ok {
				continue
			}
			if out == nil {
				out = make([]float64, len(series))
			}
			for i, v := range series {
				out[i] += v
			}
		}
		return out
	}
	line := func(label, unit string, vals []float64) {
		if len(vals) == 0 {
			return
		}
		last := vals[len(vals)-1]
		max := 0.0
		for _, v := range vals {
			if v > max {
				max = v
			}
		}
		if max == 0 {
			return // flat zero: nothing happened in the window
		}
		fmt.Fprintf(&b, "%-9s %s %.4g%s\n", label, sparkline(vals, width), last, unit)
	}
	line("queries", "/s", sumRates(queryOpCounters...))
	line("served", "/s", sumRates("serve.requests"))
	line("shed", "/s", sumRates("serve.shed"))
	line("scans", " words/s", sumRates("query.codec_ops.wah", "query.codec_ops.bbc", "query.codec_ops.dense", "query.codec_ops.other"))
	line("steps", "/s", sumRates("insitu.steps_processed"))
	line("qlog", " rec/s", sumRates("qlog.records"))
	// Cache hit-rate needs hits and misses per interval, not a plain sum.
	hits, misses := d.Rates["bitcache.hits"], d.Rates["bitcache.misses"]
	if len(hits) > 0 && len(hits) == len(misses) {
		pct := make([]float64, len(hits))
		any := false
		for i := range hits {
			if total := hits[i] + misses[i]; total > 0 {
				pct[i] = 100 * hits[i] / total
				any = true
			}
		}
		if any {
			fmt.Fprintf(&b, "%-9s %s %.1f%%\n", "cache hit", sparkline(pct, width), pct[len(pct)-1])
		}
	}
	if b.Len() == 0 {
		return ""
	}
	return "rates over last " + (time.Duration(d.IntervalNs) * time.Duration(len(d.Samples)-1)).Round(time.Second).String() + ":\n" + b.String()
}

// sparkLevels are the eight block glyphs a sparkline is drawn with.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// sparkline renders vals scaled to the block glyphs, downsampled (max of
// each bucket, so spikes survive) to at most width runes.
func sparkline(vals []float64, width int) string {
	if len(vals) == 0 || width <= 0 {
		return ""
	}
	if len(vals) > width {
		packed := make([]float64, width)
		for i, v := range vals {
			j := i * width / len(vals)
			if v > packed[j] {
				packed[j] = v
			}
		}
		vals = packed
	}
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	out := make([]rune, len(vals))
	for i, v := range vals {
		level := 0
		if max > 0 {
			level = int(v / max * float64(len(sparkLevels)-1))
		}
		out[i] = sparkLevels[level]
	}
	return string(out)
}

// progressBar renders done/total as a fixed-width bar.
func progressBar(done, total, width int) string {
	if total <= 0 {
		return "[" + strings.Repeat("-", width) + "]"
	}
	filled := done * width / total
	if filled > width {
		filled = width
	}
	return "[" + strings.Repeat("#", filled) + strings.Repeat(".", width-filled) + "]"
}

// fmtBytes renders a byte count human-readably.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
