package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"insitubits"
)

func topStatus() insitubits.RunStatus {
	return insitubits.RunStatus{
		Workload:     "heat3d",
		Method:       "bitmaps",
		Strategy:     "c2_c2",
		Steps:        100,
		StepsDone:    40,
		CurrentStep:  39,
		Selected:     10,
		QueueDepth:   2,
		QueuePeak:    5,
		BytesWritten: 3 << 20,
		CodecBins:    map[string]int64{"wah": 120, "dense": 8},
		Phases: map[string]insitubits.RunPhaseStatus{
			"simulate": {Count: 40, TotalNs: 2_000_000_000},
			"reduce":   {Count: 40, TotalNs: 500_000_000},
		},
		ElapsedNs: 3_000_000_000,
		TraceID:   "00000000000000000000000000abcdef",
	}
}

func TestRenderTop(t *testing.T) {
	out := renderTop(topStatus())
	for _, want := range []string{
		"running",
		"method=bitmaps",
		"strategy=c2_c2",
		"workload=heat3d",
		"40/100",
		"(current 39)",
		"selected  10 steps, 3.00 MB written",
		"depth 2, peak 5",
		"elapsed   3s",
		"reduce 500ms/40",
		"simulate 2s/40",
		"wah=120 dense=8",
		"trace     00000000000000000000000000abcdef",
		"/debug/traces?id=00000000000000000000000000abcdef",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("renderTop output missing %q:\n%s", want, out)
		}
	}

	st := topStatus()
	st.Done = true
	st.TraceID = ""
	out = renderTop(st)
	if !strings.Contains(out, "done") {
		t.Errorf("finished run not shown as done:\n%s", out)
	}
	if strings.Contains(out, "trace ") {
		t.Errorf("trace line rendered without a trace ID:\n%s", out)
	}
}

func TestRenderServeTop(t *testing.T) {
	st := insitubits.ServeStatus{
		State:       "ready",
		CatalogGen:  3,
		Step:        40,
		Vars:        []string{"pres", "temp"},
		MaxInflight: 8,
		MaxQueue:    32,
		Inflight:    4,
		Queued:      2,
		Requests:    1000,
		Admitted:    950,
		Shed:        50,
		Cancelled:   3,
		Refused:     1,
		Panics:      2,
	}
	out := renderServeTop(st)
	for _, want := range []string{
		"insitu-serve  ready",
		"vars=pres,temp",
		"generation 3, step 40",
		"4/8",
		"2/32",
		"1000 total, 950 admitted, 50 shed, 3 queue-cancelled, 1 refused",
		"panics    2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("renderServeTop output missing %q:\n%s", want, out)
		}
	}
	st.Panics = 0
	st.Step = -1
	out = renderServeTop(st)
	if strings.Contains(out, "panics") {
		t.Errorf("panic line rendered with zero panics:\n%s", out)
	}
	if strings.Contains(out, "step -1") {
		t.Errorf("explicit-file catalog must not render a step:\n%s", out)
	}
}

func TestFetchServeStatusFallback(t *testing.T) {
	// A serve debug server: /debug/run 404s, /debug/serve answers — the
	// path `bitmapctl top` takes against insitu-serve.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/debug/serve" {
			http.NotFound(w, req)
			return
		}
		w.Write([]byte(`{"state":"ready","catalog_generation":2,"step":7,"vars":["temp"],"max_inflight":8,"max_queue":32}`))
	}))
	defer srv.Close()
	if _, err := fetchRunStatus(srv.URL + "/debug/run"); err == nil {
		t.Fatal("expected /debug/run to 404 on a serve-only debug server")
	}
	st, err := fetchServeStatus(srv.URL + "/debug/serve")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "ready" || st.CatalogGen != 2 || st.Step != 7 {
		t.Errorf("decoded serve status: %+v", st)
	}
}

func TestProgressBar(t *testing.T) {
	if got := progressBar(0, 0, 10); got != "[----------]" {
		t.Errorf("zero-total bar: %q", got)
	}
	if got := progressBar(5, 10, 10); got != "[#####.....]" {
		t.Errorf("half bar: %q", got)
	}
	if got := progressBar(20, 10, 10); got != "[##########]" {
		t.Errorf("overfull bar must clamp: %q", got)
	}
}

func TestFmtBytes(t *testing.T) {
	for _, tc := range []struct {
		n    int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.0 KB"},
		{3 << 20, "3.00 MB"},
		{5 << 30, "5.00 GB"},
	} {
		if got := fmtBytes(tc.n); got != tc.want {
			t.Errorf("fmtBytes(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}

func TestFetchRunStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/debug/run" {
			http.NotFound(w, req)
			return
		}
		w.Write([]byte(`{"workload":"heat3d","method":"bitmaps","steps":10,"steps_done":10,"done":true}`))
	}))
	defer srv.Close()
	st, err := fetchRunStatus(srv.URL + "/debug/run")
	if err != nil {
		t.Fatal(err)
	}
	if st.Workload != "heat3d" || !st.Done || st.StepsDone != 10 {
		t.Errorf("decoded status: %+v", st)
	}
	if _, err := fetchRunStatus(srv.URL + "/nope"); err == nil {
		t.Error("non-200 response did not error")
	}
}
