// Command bitmapctl builds, inspects and queries bitmap index files (the
// .isbm format written by the in-situ pipeline).
//
//	bitmapctl build -in data.israw -out index.isbm [-bins N] [-codec auto|wah|bbc|dense]
//	bitmapctl info  index.isbm
//	bitmapctl stat  index.isbm
//	bitmapctl convert -codec wah [-v1] -in index.isbm -out recoded.isbm
//	bitmapctl query -lo V -hi V index.isbm
//	bitmapctl explain -op count -lo V -hi V index.isbm
//	bitmapctl histogram index.isbm
//	bitmapctl entropy index.isbm
//	bitmapctl mi a.isbm b.isbm
//	bitmapctl emd a.isbm b.isbm
//	bitmapctl fsck [-repair] [-json] outdir/
//	bitmapctl top -addr localhost:6060 [-interval 1s] [-once]
//	bitmapctl profile top|diff|list|watch -addr localhost:6060 [-kind cpu] [-by op]
//	bitmapctl diag -addr localhost:6060 -out diag.tar.gz
//	bitmapctl replay -log workload.isql [-concurrency N] [-speedup X] index.isbm
//	bitmapctl workload -log workload.isql [index.isbm]
//	bitmapctl query -addr http://localhost:8689 -op count -var temp -lo V -hi V
//	bitmapctl load -addr http://localhost:8689 -rate 500 -duration 10s
//
// Raw input files use the .israw format (WriteRawFile); `bitmapctl genraw`
// produces a demo file from the Heat3D workload.
//
// The global -debug-addr flag (before the subcommand) starts the telemetry
// debug server for the duration of the command, exposing live counters,
// histograms and pprof (see docs/OBSERVABILITY.md):
//
//	bitmapctl -debug-addr :6060 mine -units 64 a.isbm b.isbm
//
// The global -qlog flag captures every query the command executes into a
// workload log for later `bitmapctl replay` / `bitmapctl workload`:
//
//	bitmapctl -qlog workload.isql explain -op count -lo 1 -hi 5 index.isbm
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"insitubits"
)

func main() {
	global := flag.NewFlagSet("bitmapctl", flag.ExitOnError)
	global.Usage = func() { usage() }
	debugAddr := global.String("debug-addr", "", "serve live telemetry, expvar and pprof on this address (e.g. :6060)")
	cacheMB := global.Int("cache-mb", 0, "install a materialized-bitmap cache of this many MB for the command (0 = off)")
	qlogPath := global.String("qlog", "", "capture every executed query into this workload log (.isql)")
	global.Parse(os.Args[1:]) // stops at the subcommand (first non-flag)
	if global.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cmd, args := global.Arg(0), global.Args()[1:]
	if *cacheMB > 0 {
		insitubits.SetDefaultBitmapCache(insitubits.NewBitmapCache(int64(*cacheMB) << 20))
	}
	if *debugAddr != "" {
		dbg, err := insitubits.Telemetry.ServeDebug(*debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bitmapctl: %v\n", err)
			os.Exit(1)
		}
		defer dbg.Close()
		hist := insitubits.StartMetricsHistory(insitubits.Telemetry, time.Second, 300)
		defer hist.Stop()
		fmt.Fprintf(os.Stderr, "debug server: http://%s\n", dbg.Addr)
	}
	if *qlogPath != "" {
		w, err := insitubits.CreateQueryLog(*qlogPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bitmapctl: %v\n", err)
			os.Exit(1)
		}
		insitubits.InstallQueryLog(w)
		defer func() {
			insitubits.InstallQueryLog(nil)
			if err := w.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "bitmapctl: closing workload log: %v\n", err)
			}
			// Health after Close: records are counted as the drain goroutine
			// writes them, so the final count is only stable once drained.
			h := w.Health()
			fmt.Fprintf(os.Stderr, "workload log: %d records to %s (%d dropped, %d errors)\n",
				h.Records, *qlogPath, h.Dropped, h.Errors)
		}()
	}
	var err error
	switch cmd {
	case "build":
		err = cmdBuild(args)
	case "info":
		err = cmdInfo(args)
	case "stat":
		err = cmdStat(args)
	case "convert":
		err = cmdConvert(args)
	case "query":
		err = cmdQuery(args)
	case "explain":
		err = cmdExplain(args)
	case "histogram":
		err = cmdHistogram(args)
	case "entropy":
		err = cmdEntropy(args)
	case "mi":
		err = cmdPair(args, "mi")
	case "emd":
		err = cmdPair(args, "emd")
	case "genraw":
		err = cmdGenRaw(args)
	case "genocean":
		err = cmdGenOcean(args)
	case "vars":
		err = cmdVars(args)
	case "mine":
		err = cmdMine(args)
	case "subgroup":
		err = cmdSubgroup(args)
	case "aggregate":
		err = cmdAggregate(args)
	case "evolve":
		err = cmdEvolve(args)
	case "manifest":
		err = cmdManifest(args)
	case "fsck":
		err = cmdFsck(args)
	case "top":
		err = cmdTop(args)
	case "profile":
		err = cmdProfile(args)
	case "diag":
		err = cmdDiag(args)
	case "cache-stats":
		err = cmdCacheStats(args)
	case "load":
		err = cmdLoad(args)
	case "replay":
		err = cmdReplay(args)
	case "workload":
		err = cmdWorkload(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bitmapctl %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: bitmapctl [-debug-addr ADDR] [-cache-mb N] [-qlog FILE] <build|info|stat|convert|query|explain|histogram|entropy|mi|emd|aggregate|mine|subgroup|vars|manifest|fsck|top|profile|diag|cache-stats|replay|workload|load|evolve|genraw|genocean> ...`)
}

func loadIndex(path string) (*insitubits.Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return insitubits.ReadIndexFile(f)
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	in := fs.String("in", "", "input raw array file (.israw)")
	out := fs.String("out", "", "output index file (.isbm)")
	bins := fs.Int("bins", 128, "number of value bins")
	codecName := fs.String("codec", "auto", "per-bin bitmap codec: auto | wah | bbc | dense")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("both -in and -out are required")
	}
	codecID, err := insitubits.ParseCodec(*codecName)
	if err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	data, err := insitubits.ReadRawFile(f)
	f.Close()
	if err != nil {
		return err
	}
	lo, hi := insitubits.MinMax(data)
	m, err := insitubits.NewUniformBins(lo, hi+1e-9, *bins)
	if err != nil {
		return err
	}
	x := insitubits.BuildIndexCodec(data, m, codecID)
	g, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer g.Close()
	written, err := insitubits.WriteIndexFile(g, x)
	if err != nil {
		return err
	}
	fmt.Printf("indexed %d elements into %d bins: %d bytes (%.1f%% of raw)\n",
		x.N(), x.Bins(), written, 100*float64(written)/float64(insitubits.RawFileSize(x.N())))
	return nil
}

func cmdInfo(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: bitmapctl info FILE")
	}
	x, err := loadIndex(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("elements:   %d\n", x.N())
	fmt.Printf("bins:       %d over [%g, %g)\n", x.Bins(), x.Mapper().Low(0), x.Mapper().High(x.Bins()-1))
	fmt.Printf("compressed: %d bytes (%.1f%% of raw)\n",
		x.SizeBytes(), 100*float64(x.SizeBytes())/float64(8*x.N()))
	nonEmpty := 0
	literals, fills, filledSegs := 0, 0, 0
	for b := 0; b < x.Bins(); b++ {
		if x.Count(b) > 0 {
			nonEmpty++
		}
		st := x.Bitmap(b).Stats()
		literals += st.LiteralWords
		fills += st.FillWords
		filledSegs += st.FilledSegments
	}
	fmt.Printf("non-empty:  %d bins\n", nonEmpty)
	fmt.Printf("encoding:   %d literal words, %d fill words covering %d segments\n",
		literals, fills, filledSegs)
	fmt.Printf("entropy:    %.4f bits\n", insitubits.Entropy(x.Histogram(), x.N()))
	return nil
}

// cmdStat reports the physical encoding of every bin: codec, compressed
// bytes, and the compression ratio against the uncompressed (dense) form.
func cmdStat(args []string) error {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	all := fs.Bool("all", false, "also list empty bins")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: bitmapctl stat [-all] FILE")
	}
	x, err := loadIndex(fs.Arg(0))
	if err != nil {
		return err
	}
	// Dense reference: one 31-bit segment word per bin row.
	denseBytes := 4 * ((x.N() + insitubits.SegmentBits - 1) / insitubits.SegmentBits)
	fmt.Printf("%4s  %-6s %9s %10s %8s %9s\n", "bin", "codec", "count", "bytes", "vs dense", "density")
	perCodec := map[insitubits.Codec]int{}
	total := 0
	for b := 0; b < x.Bins(); b++ {
		id := x.Codec(b)
		perCodec[id]++
		sz := x.Bitmap(b).SizeBytes()
		total += sz
		if x.Count(b) == 0 && !*all {
			continue
		}
		ratio := 0.0
		if denseBytes > 0 {
			ratio = float64(sz) / float64(denseBytes)
		}
		density := 0.0
		if x.N() > 0 {
			density = float64(x.Count(b)) / float64(x.N())
		}
		fmt.Printf("%4d  %-6s %9d %10d %7.1f%% %8.4f\n", b, id, x.Count(b), sz, 100*ratio, density)
	}
	fmt.Printf("codecs: ")
	for _, id := range []insitubits.Codec{insitubits.CodecWAH, insitubits.CodecBBC, insitubits.CodecDense} {
		if n := perCodec[id]; n > 0 {
			fmt.Printf("%s=%d ", id, n)
		}
	}
	fmt.Printf("\ntotal:  %d bytes across %d bins (%.1f%% of %d dense bytes)\n",
		total, x.Bins(), 100*float64(total)/float64(denseBytes*x.Bins()+1), denseBytes*x.Bins())
	return nil
}

// cmdConvert re-encodes an index file under a different codec (or down to
// the legacy v1 layout with -v1, which is always all-WAH on disk).
func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "input index file (.isbm)")
	out := fs.String("out", "", "output index file (.isbm)")
	codecName := fs.String("codec", "auto", "target codec: auto | wah | bbc | dense")
	v1 := fs.Bool("v1", false, "write the legacy all-WAH v1 layout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("both -in and -out are required")
	}
	codecID, err := insitubits.ParseCodec(*codecName)
	if err != nil {
		return err
	}
	x, err := loadIndex(*in)
	if err != nil {
		return err
	}
	before := x.SizeBytes()
	x.Recode(codecID)
	g, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer g.Close()
	var written int64
	if *v1 {
		written, err = insitubits.WriteIndexFileV1(g, x)
	} else {
		written, err = insitubits.WriteIndexFile(g, x)
	}
	if err != nil {
		return err
	}
	fmt.Printf("recoded %d bins to %s: %d -> %d in-memory bytes, %d on disk\n",
		x.Bins(), codecID, before, x.SizeBytes(), written)
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	addr := fs.String("addr", "", "query a running insitu-serve instead of a local file (e.g. http://localhost:8689)")
	op := fs.String("op", "count", "remote operator: count | sum | mean | quantile | minmax | bits | correlation | explain (with -addr)")
	varName := fs.String("var", "", "served variable name (with -addr; optional when one variable is served)")
	varB := fs.String("var-b", "", "second operand for -op correlation (with -addr)")
	lo := fs.Float64("lo", 0, "lower value bound (inclusive, bin-granular)")
	hi := fs.Float64("hi", 0, "upper value bound (exclusive, bin-granular)")
	slo := fs.Int("slo", 0, "lower spatial bound (inclusive element position)")
	shi := fs.Int("shi", 0, "upper spatial bound (exclusive element position)")
	q := fs.Float64("q", 0.5, "quantile for -op quantile")
	timeoutMs := fs.Int64("timeout-ms", 0, "per-request deadline override sent to the server (0 = server default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr != "" {
		return remoteQuery(*addr, &insitubits.ServeQueryRequest{
			Op: *op, Var: *varName, VarB: *varB,
			ValueLo: *lo, ValueHi: *hi, SpatialLo: *slo, SpatialHi: *shi,
			Q: *q, BValueLo: *lo, BValueHi: *hi, TimeoutMs: *timeoutMs,
		})
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: bitmapctl query [-addr URL] -lo V -hi V FILE")
	}
	x, err := loadIndex(fs.Arg(0))
	if err != nil {
		return err
	}
	// Route through the query layer (not x.Query directly) so the count
	// participates in planning, caching, and workload capture (-qlog).
	n, err := insitubits.SubsetCount(context.Background(), x,
		insitubits.QuerySubset{ValueLo: *lo, ValueHi: *hi})
	if err != nil {
		return err
	}
	fmt.Printf("%d of %d elements have values in [%g, %g) (bin-granular)\n", n, x.N(), *lo, *hi)
	return nil
}

func cmdHistogram(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: bitmapctl histogram FILE")
	}
	x, err := loadIndex(args[0])
	if err != nil {
		return err
	}
	max := 0
	for _, c := range x.Histogram() {
		if c > max {
			max = c
		}
	}
	for b, c := range x.Histogram() {
		if c == 0 {
			continue
		}
		bar := ""
		if max > 0 {
			for i := 0; i < 50*c/max; i++ {
				bar += "#"
			}
		}
		fmt.Printf("[%10.3f, %10.3f) %8d %s\n", x.Mapper().Low(b), x.Mapper().High(b), c, bar)
	}
	return nil
}

func cmdEntropy(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: bitmapctl entropy FILE")
	}
	x, err := loadIndex(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("%.6f\n", insitubits.Entropy(x.Histogram(), x.N()))
	return nil
}

func cmdPair(args []string, kind string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: bitmapctl %s A B", kind)
	}
	xa, err := loadIndex(args[0])
	if err != nil {
		return err
	}
	xb, err := loadIndex(args[1])
	if err != nil {
		return err
	}
	if xa.N() != xb.N() {
		return fmt.Errorf("indices cover %d and %d elements", xa.N(), xb.N())
	}
	switch kind {
	case "mi":
		p := insitubits.PairFromBitmaps(xa, xb)
		fmt.Printf("I(A;B)=%.6f  H(A)=%.6f  H(B)=%.6f  H(A|B)=%.6f  H(B|A)=%.6f\n",
			p.MI, p.EntropyA, p.EntropyB, p.CondEntropyAB, p.CondEntropyBA)
	case "emd":
		if xa.Bins() != xb.Bins() {
			return fmt.Errorf("spatial EMD needs matching binning (%d vs %d bins)", xa.Bins(), xb.Bins())
		}
		fmt.Printf("EMD(count)=%.2f  EMD(spatial)=%.2f\n",
			insitubits.EMDCount(xa.Histogram(), xb.Histogram()),
			insitubits.EMDSpatialBitmaps(xa, xb))
	}
	return nil
}

func cmdGenRaw(args []string) error {
	fs := flag.NewFlagSet("genraw", flag.ExitOnError)
	out := fs.String("out", "heat3d.israw", "output raw array file")
	steps := fs.Int("steps", 10, "heat3d steps to advance before capture")
	if err := fs.Parse(args); err != nil {
		return err
	}
	h, err := insitubits.NewHeat3D(32, 32, 24)
	if err != nil {
		return err
	}
	var data []float64
	for i := 0; i < *steps; i++ {
		data = h.Step(2)[0].Data
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := insitubits.WriteRawFile(f, data); err != nil {
		return err
	}
	fmt.Printf("wrote %d temperatures to %s\n", len(data), *out)
	return nil
}
