package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"insitubits"
)

// cmdExplain prints the estimated plan (EXPLAIN — per-bin index stats
// only, nothing executed) and then executes the same query under ANALYZE,
// printing the measured per-operator profile next to it. With two index
// files the query is the interactive correlation query of the paper.
func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	opName := fs.String("op", "count", "query operator: bits | count | sum | mean | quantile | minmax | correlation")
	lo := fs.Float64("lo", 0, "lower value bound (inclusive, bin-granular)")
	hi := fs.Float64("hi", 0, "upper value bound (exclusive, bin-granular)")
	slo := fs.Int("slo", 0, "lower spatial bound (inclusive element position)")
	shi := fs.Int("shi", 0, "upper spatial bound (exclusive element position)")
	q := fs.Float64("q", 0.5, "quantile for -op quantile")
	jsonOut := fs.Bool("json", false, "emit the two profiles as JSON instead of rendered trees")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 || fs.NArg() > 2 {
		return fmt.Errorf("usage: bitmapctl explain [-op OP] [-lo V -hi V] [-slo P -shi P] FILE [FILE2]")
	}
	x, err := loadIndex(fs.Arg(0))
	if err != nil {
		return err
	}
	s := insitubits.QuerySubset{ValueLo: *lo, ValueHi: *hi, SpatialLo: *slo, SpatialHi: *shi}

	if *opName == "correlation" || fs.NArg() == 2 {
		if fs.NArg() != 2 {
			return fmt.Errorf("-op correlation needs two index files")
		}
		xb, err := loadIndex(fs.Arg(1))
		if err != nil {
			return err
		}
		est, err := insitubits.ExplainCorrelationQuery(x, xb, s, s)
		if err != nil {
			return err
		}
		_, prof, err := insitubits.CorrelationAnalyze(context.Background(), x, xb, s, s)
		if err != nil {
			return err
		}
		return printProfiles(est, prof, *jsonOut)
	}

	op, err := insitubits.ParseQueryOp(*opName)
	if err != nil {
		return err
	}
	est, err := insitubits.ExplainQuery(x, s, op)
	if err != nil {
		return err
	}
	var prof *insitubits.QueryProfile
	switch op {
	case insitubits.QueryOpBits:
		_, prof, err = insitubits.SubsetBitsAnalyze(context.Background(), x, s)
	case insitubits.QueryOpCount:
		_, prof, err = insitubits.SubsetCountAnalyze(context.Background(), x, s)
	case insitubits.QueryOpSum:
		_, prof, err = insitubits.SubsetSumAnalyze(context.Background(), x, s)
	case insitubits.QueryOpMean:
		_, prof, err = insitubits.SubsetMeanAnalyze(context.Background(), x, s)
	case insitubits.QueryOpQuantile:
		_, prof, err = insitubits.SubsetQuantileAnalyze(context.Background(), x, s, *q)
	case insitubits.QueryOpMinMax:
		_, _, prof, err = insitubits.SubsetMinMaxAnalyze(context.Background(), x, s)
	default:
		return fmt.Errorf("unsupported operator %q", op)
	}
	if err != nil {
		return err
	}
	return printProfiles(est, prof, *jsonOut)
}

func printProfiles(est, prof *insitubits.QueryProfile, asJSON bool) error {
	if asJSON {
		fmt.Printf("{\"explain\": %s, \"analyze\": %s}\n", est.JSON(), prof.JSON())
		return nil
	}
	fmt.Println("-- EXPLAIN (estimated, not executed) --")
	os.Stdout.WriteString(est.Render())
	fmt.Println("-- ANALYZE (executed) --")
	os.Stdout.WriteString(prof.Render())
	return nil
}
