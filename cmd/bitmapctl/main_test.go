package main

import (
	"os"
	"path/filepath"
	"testing"

	"insitubits"
)

// The subcommands are plain functions, so the CLI is tested end to end
// through temp files without exec'ing anything.

func TestBuildInfoQueryFlow(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "data.israw")
	idx := filepath.Join(dir, "data.isbm")
	if err := cmdGenRaw([]string{"-out", raw, "-steps", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBuild([]string{"-in", raw, "-out", idx, "-bins", "64"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInfo([]string{idx}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-lo", "20", "-hi", "90", idx}); err != nil {
		t.Fatal(err)
	}
	if err := cmdHistogram([]string{idx}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEntropy([]string{idx}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPair([]string{idx, idx}, "mi"); err != nil {
		t.Fatal(err)
	}
	if err := cmdPair([]string{idx, idx}, "emd"); err != nil {
		t.Fatal(err)
	}
	if err := cmdAggregate([]string{"-slo", "0", "-shi", "100", idx}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildValidation(t *testing.T) {
	if err := cmdBuild([]string{"-in", "", "-out", ""}); err == nil {
		t.Error("missing flags accepted")
	}
	if err := cmdBuild([]string{"-in", "/nonexistent", "-out", "/tmp/x"}); err == nil {
		t.Error("missing input accepted")
	}
	if err := cmdInfo([]string{"/nonexistent"}); err == nil {
		t.Error("missing index accepted")
	}
	if err := cmdInfo(nil); err == nil {
		t.Error("no args accepted")
	}
}

func TestOceanWorkflow(t *testing.T) {
	dir := t.TempDir()
	ds := filepath.Join(dir, "ocean.isds")
	if err := cmdGenOcean([]string{"-out", ds, "-lon", "32", "-lat", "32", "-depth", "8"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVars([]string{ds}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMine([]string{"-in", ds, "-unit", "256", "-top", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSubgroup([]string{"-in", ds, "-top", "2"}); err != nil {
		t.Fatal(err)
	}
	// Unknown variable errors cleanly.
	if err := cmdMine([]string{"-in", ds, "-a", "nope"}); err == nil {
		t.Error("unknown variable accepted")
	}
	if err := cmdMine([]string{"-in", ""}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := cmdVars([]string{filepath.Join(dir, "missing.isds")}); err == nil {
		t.Error("missing dataset accepted")
	}
}

func TestManifestAndEvolve(t *testing.T) {
	// Produce an archive via the library, then drive the CLI over it.
	dir := t.TempDir()
	if err := runPipelineForTest(dir); err != nil {
		t.Fatal(err)
	}
	if err := cmdManifest([]string{dir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEvolve([]string{dir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEvolve([]string{"-var", "nope", dir}); err == nil {
		t.Error("unknown variable accepted")
	}
	// Corrupt one artifact: manifest validation must fail.
	m, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range m {
		if filepath.Ext(e.Name()) == ".isbm" {
			if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte("garbage"), 0o644); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if err := cmdManifest([]string{dir}); err == nil {
		t.Error("corrupt archive passed validation")
	}
}

func runPipelineForTest(dir string) error {
	h, err := insitubits.NewHeat3D(10, 10, 10)
	if err != nil {
		return err
	}
	_, err = insitubits.RunPipeline(insitubits.PipelineConfig{
		Sim: h, Steps: 10, Select: 3,
		Method: insitubits.MethodBitmaps, Bins: 48,
		Metric:    insitubits.MetricConditionalEntropy,
		Cores:     1,
		OutputDir: dir,
	})
	return err
}
