package main

import (
	"os"
	"path/filepath"
	"testing"

	"insitubits"
)

// The subcommands are plain functions, so the CLI is tested end to end
// through temp files without exec'ing anything.

func TestBuildInfoQueryFlow(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "data.israw")
	idx := filepath.Join(dir, "data.isbm")
	if err := cmdGenRaw([]string{"-out", raw, "-steps", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdBuild([]string{"-in", raw, "-out", idx, "-bins", "64"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInfo([]string{idx}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-lo", "20", "-hi", "90", idx}); err != nil {
		t.Fatal(err)
	}
	if err := cmdHistogram([]string{idx}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEntropy([]string{idx}); err != nil {
		t.Fatal(err)
	}
	if err := cmdPair([]string{idx, idx}, "mi"); err != nil {
		t.Fatal(err)
	}
	if err := cmdPair([]string{idx, idx}, "emd"); err != nil {
		t.Fatal(err)
	}
	if err := cmdAggregate([]string{"-slo", "0", "-shi", "100", idx}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecFlagConvertAndStat(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "data.israw")
	if err := cmdGenRaw([]string{"-out", raw, "-steps", "3"}); err != nil {
		t.Fatal(err)
	}
	// Build once per codec; every variant must load and answer queries.
	paths := map[string]string{}
	for _, c := range []string{"auto", "wah", "bbc", "dense"} {
		idx := filepath.Join(dir, c+".isbm")
		if err := cmdBuild([]string{"-in", raw, "-out", idx, "-bins", "64", "-codec", c}); err != nil {
			t.Fatalf("build -codec %s: %v", c, err)
		}
		if err := cmdStat([]string{idx}); err != nil {
			t.Fatalf("stat on %s index: %v", c, err)
		}
		paths[c] = idx
	}
	// Pinned builds really carry the pinned codec on disk.
	for c, want := range map[string]insitubits.Codec{
		"wah": insitubits.CodecWAH, "bbc": insitubits.CodecBBC, "dense": insitubits.CodecDense,
	} {
		x, err := loadIndex(paths[c])
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < x.Bins(); b++ {
			if got := x.Codec(b); got != want {
				t.Fatalf("%s index bin %d holds %v", c, b, got)
			}
		}
	}
	// convert re-encodes, and -v1 emits the legacy layout that still loads.
	conv := filepath.Join(dir, "conv.isbm")
	if err := cmdConvert([]string{"-in", paths["dense"], "-out", conv, "-codec", "wah"}); err != nil {
		t.Fatal(err)
	}
	legacy := filepath.Join(dir, "legacy.isbm")
	if err := cmdConvert([]string{"-in", paths["auto"], "-out", legacy, "-codec", "wah", "-v1"}); err != nil {
		t.Fatal(err)
	}
	want, err := loadIndex(paths["wah"])
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{conv, legacy} {
		x, err := loadIndex(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if x.N() != want.N() || x.Bins() != want.Bins() {
			t.Fatalf("%s: shape changed", p)
		}
		for b := 0; b < x.Bins(); b++ {
			if x.Codec(b) != insitubits.CodecWAH || !x.Bitmap(b).Equal(want.Bitmap(b)) {
				t.Fatalf("%s: bin %d diverged after conversion", p, b)
			}
		}
	}
	// Bad codec names error cleanly everywhere.
	if err := cmdBuild([]string{"-in", raw, "-out", conv, "-codec", "zstd"}); err == nil {
		t.Error("build accepted unknown codec")
	}
	if err := cmdConvert([]string{"-in", paths["wah"], "-out", conv, "-codec", "zstd"}); err == nil {
		t.Error("convert accepted unknown codec")
	}
	if err := cmdConvert([]string{"-in", "", "-out", ""}); err == nil {
		t.Error("convert accepted missing paths")
	}
	if err := cmdStat([]string{"/nonexistent"}); err == nil {
		t.Error("stat accepted missing file")
	}
}

func TestBuildValidation(t *testing.T) {
	if err := cmdBuild([]string{"-in", "", "-out", ""}); err == nil {
		t.Error("missing flags accepted")
	}
	if err := cmdBuild([]string{"-in", "/nonexistent", "-out", "/tmp/x"}); err == nil {
		t.Error("missing input accepted")
	}
	if err := cmdInfo([]string{"/nonexistent"}); err == nil {
		t.Error("missing index accepted")
	}
	if err := cmdInfo(nil); err == nil {
		t.Error("no args accepted")
	}
}

func TestOceanWorkflow(t *testing.T) {
	dir := t.TempDir()
	ds := filepath.Join(dir, "ocean.isds")
	if err := cmdGenOcean([]string{"-out", ds, "-lon", "32", "-lat", "32", "-depth", "8"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdVars([]string{ds}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMine([]string{"-in", ds, "-unit", "256", "-top", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdSubgroup([]string{"-in", ds, "-top", "2"}); err != nil {
		t.Fatal(err)
	}
	// Unknown variable errors cleanly.
	if err := cmdMine([]string{"-in", ds, "-a", "nope"}); err == nil {
		t.Error("unknown variable accepted")
	}
	if err := cmdMine([]string{"-in", ""}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := cmdVars([]string{filepath.Join(dir, "missing.isds")}); err == nil {
		t.Error("missing dataset accepted")
	}
}

func TestManifestAndEvolve(t *testing.T) {
	// Produce an archive via the library, then drive the CLI over it.
	dir := t.TempDir()
	if err := runPipelineForTest(dir); err != nil {
		t.Fatal(err)
	}
	if err := cmdManifest([]string{dir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEvolve([]string{dir}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEvolve([]string{"-var", "nope", dir}); err == nil {
		t.Error("unknown variable accepted")
	}
	// Corrupt one artifact: manifest validation must fail.
	m, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range m {
		if filepath.Ext(e.Name()) == ".isbm" {
			if err := os.WriteFile(filepath.Join(dir, e.Name()), []byte("garbage"), 0o644); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if err := cmdManifest([]string{dir}); err == nil {
		t.Error("corrupt archive passed validation")
	}
}

func runPipelineForTest(dir string) error {
	h, err := insitubits.NewHeat3D(10, 10, 10)
	if err != nil {
		return err
	}
	_, err = insitubits.RunPipeline(insitubits.PipelineConfig{
		Sim: h, Steps: 10, Select: 3,
		Method: insitubits.MethodBitmaps, Bins: 48,
		Metric:    insitubits.MetricConditionalEntropy,
		Cores:     1,
		OutputDir: dir,
	})
	return err
}
