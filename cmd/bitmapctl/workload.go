package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"insitubits"
)

// cmdWorkload summarizes a captured workload log: operator mix, cache
// behaviour, operand arity and selectivity, hot value ranges — and, given
// the index the log was captured against, the hot-bin ranking:
//
//	bitmapctl workload -log workload.isql
//	bitmapctl workload -log workload.isql index.isbm
func cmdWorkload(args []string) error {
	fs := flag.NewFlagSet("workload", flag.ExitOnError)
	logPath := fs.String("log", "", "captured workload log (.isql), required")
	jsonOut := fs.Bool("json", false, "emit the summary as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logPath == "" || fs.NArg() > 1 {
		return fmt.Errorf("usage: bitmapctl workload -log FILE [-json] [INDEX]")
	}
	recs, _, err := insitubits.ReadQueryLog(*logPath)
	if err != nil {
		return err
	}
	var x *insitubits.Index
	if fs.NArg() == 1 {
		if x, err = loadIndex(fs.Arg(0)); err != nil {
			return err
		}
	}
	sum := insitubits.AnalyzeWorkload(recs, x)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(sum)
	}
	fmt.Print(renderWorkload(sum))
	return nil
}

// renderWorkload formats a workload summary. Pure — the command and the
// tests share it.
func renderWorkload(s insitubits.WorkloadSummary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "queries     %d total, %d replayable, %d errors\n", s.Total, s.Replayable, s.Errors)
	if len(s.ByOp) > 0 {
		ops := make([]string, 0, len(s.ByOp))
		for op := range s.ByOp {
			ops = append(ops, op)
		}
		sort.Slice(ops, func(i, j int) bool {
			if s.ByOp[ops[i]] != s.ByOp[ops[j]] {
				return s.ByOp[ops[i]] > s.ByOp[ops[j]]
			}
			return ops[i] < ops[j]
		})
		parts := make([]string, 0, len(ops))
		for _, op := range ops {
			parts = append(parts, fmt.Sprintf("%s=%d", op, s.ByOp[op]))
		}
		fmt.Fprintf(&b, "mix         %s\n", strings.Join(parts, " "))
	}
	fmt.Fprintf(&b, "planner     on for %d of %d\n", s.PlannerOn, s.Total)
	if s.CacheHits+s.CacheMisses > 0 {
		fmt.Fprintf(&b, "cache       %d hits, %d misses (%.1f%% hit rate)\n",
			s.CacheHits, s.CacheMisses, 100*float64(s.CacheHits)/float64(s.CacheHits+s.CacheMisses))
	}
	fmt.Fprintf(&b, "cost        %s total, %d words scanned\n",
		time.Duration(s.ElapsedNs).Round(time.Microsecond), s.Words)
	fmt.Fprintf(&b, "repeats     %d unique parameter sets / %d replayable (repeat ratio %.2f: cache-hit potential)\n",
		s.UniqueQueries, s.Replayable, s.RepeatRatio)
	if s.Arity.Count > 0 {
		fmt.Fprintf(&b, "arity       bins/query min %g p50 %g p90 %g max %g (%d queries)\n",
			s.Arity.Min, s.Arity.P50, s.Arity.P90, s.Arity.Max, s.Arity.Count)
	}
	if s.Selectivity.Count > 0 {
		fmt.Fprintf(&b, "selectivity rows/N min %.4f p50 %.4f p90 %.4f max %.4f (%d queries)\n",
			s.Selectivity.Min, s.Selectivity.P50, s.Selectivity.P90, s.Selectivity.Max, s.Selectivity.Count)
	}
	if len(s.HotRanges) > 0 {
		b.WriteString("hot ranges\n")
		for _, r := range s.HotRanges {
			fmt.Fprintf(&b, "  [%10.4g, %10.4g)  %d queries\n", r.Lo, r.Hi, r.Queries)
		}
	}
	if len(s.HotBins) > 0 {
		b.WriteString("hot bins\n")
		for _, bin := range s.HotBins {
			fmt.Fprintf(&b, "  bin %4d [%10.4g, %10.4g)  %d queries\n", bin.Bin, bin.Lo, bin.Hi, bin.Queries)
		}
	}
	return b.String()
}
