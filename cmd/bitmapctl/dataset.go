package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"insitubits"
)

// Dataset-oriented subcommands: generate a demo ocean dataset file, list
// its variables, index one variable, mine correlations between two, and
// discover subgroups — the offline workflow over .isds containers.

func cmdGenOcean(args []string) error {
	fs := flag.NewFlagSet("genocean", flag.ExitOnError)
	out := fs.String("out", "ocean.isds", "output dataset file")
	lon := fs.Int("lon", 64, "longitude cells")
	lat := fs.Int("lat", 64, "latitude cells")
	depth := fs.Int("depth", 16, "depth levels")
	seed := fs.Int64("seed", 42, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := insitubits.GenerateOcean(*lon, *lat, *depth, *seed)
	if err != nil {
		return err
	}
	ds := insitubits.NewDatasetFile(*lon, *lat, *depth)
	for _, name := range d.Names {
		data, err := d.VarCurveOrder(name) // curve order: mining-ready
		if err != nil {
			return err
		}
		if err := ds.Add(name, data); err != nil {
			return err
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	written, err := insitubits.WriteDatasetFile(f, ds)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d variables x %d cells (%d bytes, Z-order layout) to %s\n",
		len(ds.Names), d.N(), written, *out)
	return nil
}

func loadDataset(path string) (*insitubits.DatasetFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return insitubits.ReadDatasetFile(f)
}

func cmdVars(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: bitmapctl vars FILE.isds")
	}
	ds, err := loadDataset(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("grid %dx%dx%d\n", ds.NX, ds.NY, ds.NZ)
	for _, name := range ds.Names {
		data, _ := ds.Var(name)
		lo, hi := insitubits.MinMax(data)
		fmt.Printf("  %-14s %d elements, range [%.4g, %.4g]\n", name, len(data), lo, hi)
	}
	return nil
}

// indexVar builds an index over one dataset variable.
func indexVar(ds *insitubits.DatasetFile, name string, bins int) (*insitubits.Index, error) {
	data, err := ds.Var(name)
	if err != nil {
		return nil, err
	}
	lo, hi := insitubits.MinMax(data)
	m, err := insitubits.NewUniformBins(lo, hi+1e-9, bins)
	if err != nil {
		return nil, err
	}
	return insitubits.BuildIndex(data, m), nil
}

func cmdMine(args []string) error {
	fs := flag.NewFlagSet("mine", flag.ExitOnError)
	in := fs.String("in", "", "dataset file (.isds)")
	varA := fs.String("a", "temperature", "first variable")
	varB := fs.String("b", "salinity", "second variable")
	bins := fs.Int("bins", 48, "value bins per variable")
	unit := fs.Int("unit", 512, "spatial unit size (elements)")
	t1 := fs.Float64("t", 0.002, "value threshold T")
	t2 := fs.Float64("t2", 0.05, "spatial threshold T'")
	top := fs.Int("top", 10, "findings to print")
	slow := fs.Int("slow", 0, "also print the N slowest bin-pair profiles")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	ds, err := loadDataset(*in)
	if err != nil {
		return err
	}
	xa, err := indexVar(ds, *varA, *bins)
	if err != nil {
		return err
	}
	xb, err := indexVar(ds, *varB, *bins)
	if err != nil {
		return err
	}
	var slowPairs *insitubits.QueryTopK
	if *slow > 0 {
		slowPairs = insitubits.NewQueryTopK(*slow)
	}
	findings, err := insitubits.Mine(xa, xb, insitubits.MiningConfig{
		UnitSize: *unit, ValueThreshold: *t1, SpatialThreshold: *t2, Slow: slowPairs,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%d correlated (value pair, spatial unit) findings\n", len(findings))
	// Strongest first.
	for i := 0; i < len(findings)-1; i++ {
		for j := i + 1; j < len(findings); j++ {
			if findings[j].SpatialMI > findings[i].SpatialMI {
				findings[i], findings[j] = findings[j], findings[i]
			}
		}
	}
	if *top > len(findings) {
		*top = len(findings)
	}
	for _, f := range findings[:*top] {
		fmt.Printf("  %s[%.3g,%.3g) x %s[%.3g,%.3g)  cells [%d,%d)  localMI=%.4f\n",
			*varA, xa.Mapper().Low(f.BinA), xa.Mapper().High(f.BinA),
			*varB, xb.Mapper().Low(f.BinB), xb.Mapper().High(f.BinB),
			f.Begin, f.End, f.SpatialMI)
	}
	if slowPairs != nil {
		profiles := slowPairs.Profiles()
		fmt.Printf("slowest %d of %d profiled bin pairs:\n", len(profiles), slowPairs.Seen())
		for _, p := range profiles {
			fmt.Print(p.Render())
		}
	}
	return nil
}

func cmdSubgroup(args []string) error {
	fs := flag.NewFlagSet("subgroup", flag.ExitOnError)
	in := fs.String("in", "", "dataset file (.isds)")
	target := fs.String("target", "oxygen", "target variable")
	varList := fs.String("vars", "temperature,salinity", "comma-separated explanatory variables")
	bins := fs.Int("bins", 20, "value bins per variable")
	top := fs.Int("top", 5, "subgroups to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	ds, err := loadDataset(*in)
	if err != nil {
		return err
	}
	names := strings.Split(*varList, ",")
	vars := make([]*insitubits.Index, len(names))
	for i, name := range names {
		vars[i], err = indexVar(ds, strings.TrimSpace(name), *bins)
		if err != nil {
			return err
		}
	}
	xt, err := indexVar(ds, *target, *bins)
	if err != nil {
		return err
	}
	sgs, err := insitubits.DiscoverSubgroups(vars, xt, insitubits.SubgroupConfig{TopK: *top})
	if err != nil {
		return err
	}
	globalMean, err := insitubits.SubsetMean(context.Background(), xt, insitubits.QuerySubset{})
	if err != nil {
		return err
	}
	fmt.Printf("global %s mean: %.4f; top subgroups:\n", *target, globalMean.Estimate)
	for i, sg := range sgs {
		fmt.Printf("  %d. %s -> mean %.4f over %d cells (quality %.4f)\n",
			i+1, insitubits.DescribeSubgroup(sg, vars, names), sg.Mean, sg.Count, sg.Quality)
	}
	return nil
}

func cmdManifest(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: bitmapctl manifest DIR")
	}
	dir := args[0]
	m, err := insitubits.ReadManifest(dir)
	if err != nil {
		return err
	}
	fmt.Printf("workload: %s (%s), %d steps simulated, %d selected: %v\n",
		m.Workload, m.Method, m.Steps, len(m.Selected), m.Selected)
	fmt.Printf("variables: %v\n", m.Vars)
	var total int64
	bad := 0
	for _, mf := range m.Files {
		total += mf.Bytes
		// Validate: every listed artifact must parse.
		path := filepath.Join(dir, mf.Path)
		f, err := os.Open(path)
		if err != nil {
			fmt.Printf("  MISSING %s (%v)\n", mf.Path, err)
			bad++
			continue
		}
		switch {
		case strings.HasSuffix(mf.Path, ".isbm"):
			_, err = insitubits.ReadIndexFile(f)
		case strings.HasSuffix(mf.Path, ".israw"):
			_, err = insitubits.ReadRawFile(f)
		default:
			err = fmt.Errorf("unknown artifact type")
		}
		f.Close()
		if err != nil {
			fmt.Printf("  CORRUPT %s (%v)\n", mf.Path, err)
			bad++
		}
	}
	fmt.Printf("%d artifacts, %.2f MB total", len(m.Files), float64(total)/1e6)
	if bad > 0 {
		fmt.Printf(", %d FAILED validation\n", bad)
		return fmt.Errorf("%d artifacts failed validation", bad)
	}
	fmt.Println(", all validate")
	return nil
}

func cmdEvolve(args []string) error {
	fs := flag.NewFlagSet("evolve", flag.ExitOnError)
	varName := fs.String("var", "", "variable to trace (default: first archived)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: bitmapctl evolve [-var NAME] DIR")
	}
	a, err := insitubits.LoadArchive(fs.Arg(0))
	if err != nil {
		return err
	}
	name := *varName
	if name == "" {
		name = a.Vars()[0]
	}
	ev, err := a.Evolve(name)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %10s %12s %12s\n", "step", "entropy", "H(cur|prev)", "EMD(prev)")
	for _, e := range ev {
		fmt.Printf("%-6d %10.4f %12.4f %12.1f\n", e.Step, e.Entropy, e.CondEntropy, e.EMD)
	}
	return nil
}

func cmdAggregate(args []string) error {
	fs := flag.NewFlagSet("aggregate", flag.ExitOnError)
	lo := fs.Float64("lo", 0, "value lower bound (with -hi)")
	hi := fs.Float64("hi", 0, "value upper bound")
	slo := fs.Int("slo", 0, "spatial lower bound (with -shi)")
	shi := fs.Int("shi", 0, "spatial upper bound")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: bitmapctl aggregate [flags] FILE.isbm")
	}
	x, err := loadIndex(fs.Arg(0))
	if err != nil {
		return err
	}
	s := insitubits.QuerySubset{ValueLo: *lo, ValueHi: *hi, SpatialLo: *slo, SpatialHi: *shi}
	sum, err := insitubits.SubsetSum(context.Background(), x, s)
	if err != nil {
		return err
	}
	if sum.Count == 0 {
		fmt.Println("empty subset")
		return nil
	}
	mean, err := insitubits.SubsetMean(context.Background(), x, s)
	if err != nil {
		return err
	}
	fmt.Printf("count: %d (exact)\n", sum.Count)
	fmt.Printf("sum:   %.6g  (true value in [%.6g, %.6g])\n", sum.Estimate, sum.Lo, sum.Hi)
	fmt.Printf("mean:  %.6g  (true value in [%.6g, %.6g])\n", mean.Estimate, mean.Lo, mean.Hi)
	return nil
}
