package main

import (
	"archive/tar"
	"compress/gzip"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"insitubits"
)

func profileStatusFixture() insitubits.ProfilingStatus {
	return insitubits.ProfilingStatus{
		Enabled:     true,
		IntervalNs:  30e9,
		CPUWindowNs: 1e9,
		Capacity:    16,
		Snapshots: []insitubits.ProfileSnapshotMeta{
			{ID: 4, UnixNs: 1700000000e9, Generation: 3, Phase: "reduce", Step: 11,
				Sizes: map[string]int{"cpu": 2048, "heap": 512}},
			{ID: 5, UnixNs: 1700000030e9, Generation: 4, Phase: "select", Step: 12,
				Sizes: map[string]int{"cpu": 4096, "heap": 640}},
		},
	}
}

func TestRenderProfileList(t *testing.T) {
	out := renderProfileList(profileStatusFixture())
	for _, want := range []string{"profiling enabled", "ring 2/16",
		"reduce", "select", "cpu=4096B", "heap=640B"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing missing %q:\n%s", want, out)
		}
	}
	empty := renderProfileList(insitubits.ProfilingStatus{Capacity: 8})
	if !strings.Contains(empty, "profiling disabled") || strings.Contains(empty, "ID") {
		t.Errorf("empty listing: %q", empty)
	}
}

func TestRenderTopReport(t *testing.T) {
	rep := insitubits.ProfileTopReport{
		Kind: "cpu", SampleType: "cpu", Unit: "nanoseconds",
		From: 4, To: 5,
		FromMeta: insitubits.ProfileSnapshotMeta{ID: 4, Generation: 3, Phase: "reduce"},
		ToMeta:   insitubits.ProfileSnapshotMeta{ID: 5, Generation: 4, Phase: "select"},
		Total:    1000,
		Entries: []insitubits.ProfileFuncValue{
			{Name: "insitubits/internal/bitvec.(*Appender).Append", Flat: 700, Cum: 900},
			{Name: "insitubits/internal/query.Count", Flat: -100, Cum: 300},
		},
	}
	out := renderTopReport(rep)
	for _, want := range []string{"cpu diff", "#4 (gen 3, reduce)", "#5 (gen 4, select)",
		"bitvec.(*Appender).Append", "70.0%", "-100"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff render missing %q:\n%s", want, out)
		}
	}
	// Same-snapshot report renders as top, not diff.
	rep.From = 5
	rep.FromMeta = rep.ToMeta
	if out := renderTopReport(rep); !strings.Contains(out, "cpu top  #5") {
		t.Errorf("top render:\n%s", out)
	}
	// By-label view.
	rep.ByLabel = "op"
	rep.Entries = nil
	rep.Labels = []insitubits.ProfileLabelValue{{Value: "query.count", Total: 600}}
	if out := renderTopReport(rep); !strings.Contains(out, "query.count") || !strings.Contains(out, "60.0%") {
		t.Errorf("by-label render:\n%s", out)
	}
}

// TestProfileAndDiagEndToEnd drives the real surfaces: a debug server with
// a live collector behind it, `profile top/diff` fetching server-computed
// reports, and `diag` capturing the bundle — then the bundle is opened and
// its sections checked, including a raw profile that must parse as pprof.
func TestProfileAndDiagEndToEnd(t *testing.T) {
	reg := insitubits.NewTelemetryRegistry()
	srv, err := reg.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := insitubits.StartProfiling(insitubits.ProfilingConfig{
		Registry:    reg,
		Interval:    time.Hour,
		CPUDuration: 20 * time.Millisecond,
		Capacity:    4,
	})
	defer c.Stop()
	waitSnapshots := func(n int) {
		deadline := time.Now().Add(10 * time.Second)
		for len(c.Snapshots()) < n {
			if time.Now().After(deadline) {
				t.Fatalf("never reached %d snapshots", n)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitSnapshots(1)
	if _, err := c.Snap(); err != nil {
		t.Fatal(err)
	}
	waitSnapshots(2)
	base := "http://" + srv.Addr + "/debug/profiles"

	st, err := fetchProfilingStatus(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Snapshots) != 2 || !st.Enabled {
		t.Fatalf("status = %+v", st)
	}
	a, b := st.Snapshots[0].ID, st.Snapshots[1].ID
	rep, err := fetchTopReport(base + "?id=" + itoa(b) + "&kind=goroutine&top=5")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total == 0 || len(rep.Entries) == 0 {
		t.Errorf("goroutine top empty: %+v", rep)
	}
	rep, err = fetchTopReport(base + "?diff=" + itoa(a) + "," + itoa(b) + "&kind=heap&top=5")
	if err != nil {
		t.Fatal(err)
	}
	if rep.From != a || rep.To != b {
		t.Errorf("diff ids = %d,%d want %d,%d", rep.From, rep.To, a, b)
	}

	// diag: capture the bundle and open it.
	dir := t.TempDir()
	bundle := filepath.Join(dir, "diag.tar.gz")
	if err := cmdDiag([]string{"-addr", srv.Addr, "-out", bundle}); err != nil {
		t.Fatal(err)
	}
	sections := readBundle(t, bundle)
	for _, name := range []string{"healthz.json", "telemetry.json", "metrics.prom",
		"metrics.om", "profiles/status.json", "MANIFEST.json"} {
		if _, ok := sections[name]; !ok {
			t.Errorf("bundle missing %s; has %v", name, keys(sections))
		}
	}
	if !strings.Contains(string(sections["metrics.om"]), "# EOF") {
		t.Error("bundled OpenMetrics exposition unterminated")
	}
	var man struct {
		Sections map[string]string `json:"sections"`
	}
	if err := json.Unmarshal(sections["MANIFEST.json"], &man); err != nil {
		t.Fatal(err)
	}
	if man.Sections["healthz.json"] != "ok" {
		t.Errorf("manifest healthz = %q", man.Sections["healthz.json"])
	}
	// Endpoints this server does not expose are recorded, not fatal.
	if v := man.Sections["run.json"]; v == "" || v == "ok" {
		t.Errorf("manifest run.json = %q, want a recorded miss", v)
	}
	// The bundled raw profiles parse as pprof proto.
	parsed := 0
	for name, data := range sections {
		if strings.HasPrefix(name, "profiles/") && strings.HasSuffix(name, ".pb.gz") {
			if _, err := insitubits.ParseProfile(data); err != nil {
				t.Errorf("%s: %v", name, err)
			}
			parsed++
		}
	}
	if parsed == 0 {
		t.Error("no raw profiles in the bundle")
	}
}

func itoa(v uint64) string { return strconv.FormatUint(v, 10) }

func readBundle(t *testing.T, path string) map[string][]byte {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	tr := tar.NewReader(zr)
	out := map[string][]byte{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			t.Fatal(err)
		}
		out[hdr.Name] = data
	}
	return out
}

func keys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
