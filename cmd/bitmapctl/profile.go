package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"insitubits"
)

// cmdProfile talks to the continuous-profiling ring a server exposes at
// /debug/profiles (started with `insitu-run -profile` or
// insitubits.StartProfiling; see docs/OBSERVABILITY.md):
//
//	bitmapctl profile list -addr localhost:6060
//	bitmapctl profile top  -addr localhost:6060 [-id N] [-kind cpu] [-n 15] [-by op]
//	bitmapctl profile diff -addr localhost:6060 -from A -to B [-kind cpu] [-n 15]
//	bitmapctl profile watch -addr localhost:6060 [-interval 5s]
//
// top defaults to the newest snapshot; diff prints the symbolized delta
// (to − from) so "what got hot since the last generation" is one command.
// The heavy lifting (parsing, symbolizing, ranking) happens server-side;
// this client renders JSON reports.
func cmdProfile(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: bitmapctl profile <list|top|diff|watch> -addr HOST:PORT ...")
	}
	sub, args := args[0], args[1:]
	fs := flag.NewFlagSet("profile "+sub, flag.ExitOnError)
	addr := fs.String("addr", "localhost:6060", "debug server address (host:port)")
	kind := fs.String("kind", "cpu", "profile kind: cpu|heap|goroutine|mutex|block")
	n := fs.Int("n", 15, "entries to show")
	id := fs.Uint64("id", 0, "snapshot id (0 = newest)")
	from := fs.Uint64("from", 0, "diff: older snapshot id")
	to := fs.Uint64("to", 0, "diff: newer snapshot id (0 = newest)")
	by := fs.String("by", "", "aggregate by pprof label (e.g. op, phase, codec) instead of function")
	sample := fs.String("sample", "", "sample type (e.g. inuse_space); default is the kind's primary type")
	interval := fs.Duration("interval", 5*time.Second, "watch refresh interval")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := fmt.Sprintf("http://%s/debug/profiles", *addr)

	switch sub {
	case "list":
		st, err := fetchProfilingStatus(base)
		if err != nil {
			return err
		}
		fmt.Print(renderProfileList(st))
		return nil
	case "top":
		target := *id
		if target == 0 {
			st, err := fetchProfilingStatus(base)
			if err != nil {
				return err
			}
			if len(st.Snapshots) == 0 {
				return fmt.Errorf("no snapshots in the ring yet")
			}
			target = st.Snapshots[len(st.Snapshots)-1].ID
		}
		url := fmt.Sprintf("%s?id=%d&kind=%s&top=%d", base, target, *kind, *n)
		if *by != "" {
			url = fmt.Sprintf("%s?id=%d&kind=%s&by=%s&top=%d", base, target, *kind, *by, *n)
		}
		if *sample != "" {
			url += "&sample=" + *sample
		}
		rep, err := fetchTopReport(url)
		if err != nil {
			return err
		}
		fmt.Print(renderTopReport(rep))
		return nil
	case "diff":
		if *from == 0 {
			return fmt.Errorf("usage: bitmapctl profile diff -from A [-to B]")
		}
		target := *to
		if target == 0 {
			st, err := fetchProfilingStatus(base)
			if err != nil {
				return err
			}
			if len(st.Snapshots) == 0 {
				return fmt.Errorf("no snapshots in the ring yet")
			}
			target = st.Snapshots[len(st.Snapshots)-1].ID
		}
		url := fmt.Sprintf("%s?diff=%d,%d&kind=%s&top=%d", base, *from, target, *kind, *n)
		if *sample != "" {
			url += "&sample=" + *sample
		}
		rep, err := fetchTopReport(url)
		if err != nil {
			return err
		}
		fmt.Print(renderTopReport(rep))
		return nil
	case "watch":
		if *interval < 500*time.Millisecond {
			*interval = 500 * time.Millisecond
		}
		for {
			out, err := watchFrame(base, *kind, *n)
			if err != nil {
				out = fmt.Sprintf("bitmapctl profile watch: %v (retrying every %s)\n", err, *interval)
			}
			fmt.Print("\033[H\033[2J" + out)
			time.Sleep(*interval)
		}
	default:
		return fmt.Errorf("unknown profile subcommand %q (want list|top|diff|watch)", sub)
	}
}

// watchFrame composes one watch repaint: the ring listing plus the top of
// the newest snapshot, so a long-running server reads like `top` for
// profiles.
func watchFrame(base, kind string, n int) (string, error) {
	st, err := fetchProfilingStatus(base)
	if err != nil {
		return "", err
	}
	out := renderProfileList(st)
	if len(st.Snapshots) == 0 {
		return out, nil
	}
	last := st.Snapshots[len(st.Snapshots)-1].ID
	rep, err := fetchTopReport(fmt.Sprintf("%s?id=%d&kind=%s&top=%d", base, last, kind, n))
	if err != nil {
		return "", err
	}
	return out + "\n" + renderTopReport(rep), nil
}

func fetchProfilingStatus(url string) (insitubits.ProfilingStatus, error) {
	var st insitubits.ProfilingStatus
	return st, fetchJSONInto(url, &st)
}

func fetchTopReport(url string) (insitubits.ProfileTopReport, error) {
	var rep insitubits.ProfileTopReport
	return rep, fetchJSONInto(url, &rep)
}

// fetchJSONInto GETs a debug endpoint and decodes its JSON body.
func fetchJSONInto(url string, v any) error {
	client := http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s (%s)", url, resp.Status, strings.TrimSpace(string(body)))
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("decoding %s: %w", url, err)
	}
	return nil
}

// renderProfileList formats the ring listing. Pure — tests call it on
// fixtures.
func renderProfileList(st insitubits.ProfilingStatus) string {
	var b strings.Builder
	state := "disabled"
	if st.Enabled {
		state = "enabled"
	}
	fmt.Fprintf(&b, "profiling %s  interval=%s  cpu-window=%s  ring %d/%d\n",
		state, time.Duration(st.IntervalNs), time.Duration(st.CPUWindowNs),
		len(st.Snapshots), st.Capacity)
	if len(st.Snapshots) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%4s  %-19s  %4s  %-10s  %5s  %s\n", "ID", "TIME", "GEN", "PHASE", "STEP", "SIZES")
	for _, m := range st.Snapshots {
		phase := m.Phase
		if phase == "" {
			phase = "-"
		}
		fmt.Fprintf(&b, "%4d  %-19s  %4d  %-10s  %5d  %s\n",
			m.ID, time.Unix(0, m.UnixNs).Format("2006-01-02 15:04:05"),
			m.Generation, phase, m.Step, renderSizes(m.Sizes))
	}
	return b.String()
}

func renderSizes(sizes map[string]int) string {
	parts := make([]string, 0, len(sizes))
	for _, kind := range insitubits.ProfilingKinds {
		if n, ok := sizes[kind]; ok {
			parts = append(parts, fmt.Sprintf("%s=%dB", kind, n))
		}
	}
	return strings.Join(parts, " ")
}

// renderTopReport formats a symbolized top or diff report. Pure.
func renderTopReport(rep insitubits.ProfileTopReport) string {
	var b strings.Builder
	if rep.From != rep.To {
		fmt.Fprintf(&b, "%s diff  #%d (gen %d, %s) -> #%d (gen %d, %s)  %s\n",
			rep.Kind, rep.From, rep.FromMeta.Generation, orDash(rep.FromMeta.Phase),
			rep.To, rep.ToMeta.Generation, orDash(rep.ToMeta.Phase), rep.SampleType)
	} else {
		fmt.Fprintf(&b, "%s top  #%d  gen=%d phase=%s step=%d  %s\n",
			rep.Kind, rep.To, rep.ToMeta.Generation, orDash(rep.ToMeta.Phase),
			rep.ToMeta.Step, rep.SampleType)
	}
	if rep.ByLabel != "" {
		fmt.Fprintf(&b, "%14s  %6s  %s\n", rep.Unit, "%", rep.ByLabel)
		for _, lv := range rep.Labels {
			fmt.Fprintf(&b, "%14d  %5.1f%%  %s\n", lv.Total, pct(lv.Total, rep.Total), lv.Value)
		}
		return b.String()
	}
	fmt.Fprintf(&b, "%14s  %6s  %14s  %s\n", "flat ("+rep.Unit+")", "%", "cum", "function")
	for _, fv := range rep.Entries {
		fmt.Fprintf(&b, "%14d  %5.1f%%  %14d  %s\n", fv.Flat, pct(fv.Flat, rep.Total), fv.Cum, fv.Name)
	}
	if len(rep.Entries) == 0 && rep.From != rep.To {
		b.WriteString("(no delta between the two snapshots)\n")
	}
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func pct(v, total int64) float64 {
	if total == 0 {
		return 0
	}
	f := 100 * float64(v) / float64(total)
	if f < 0 {
		f = -f
	}
	return f
}
