package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"insitubits"
)

// remoteQuery executes one query against a running insitu-serve through
// the retrying client (sheds are backed off and retried, honoring the
// server's Retry-After hint) and prints the answer with its digest and
// generation stamps.
func remoteQuery(addr string, req *insitubits.ServeQueryRequest) error {
	cl := &insitubits.ServeClient{Base: strings.TrimSuffix(addr, "/")}
	cl.Backoff.Tries = 8
	cl.Backoff.Base = 25 * time.Millisecond
	cl.Backoff.Max = time.Second
	cl.Backoff.Seed = time.Now().UnixNano()
	start := time.Now()
	resp, err := cl.Query(context.Background(), req)
	if err != nil {
		return err
	}
	switch {
	case resp.Aggregate != nil:
		a := resp.Aggregate
		fmt.Printf("%s(%s): count=%d estimate=%g bounds=[%g, %g]\n", resp.Op, resp.Var, a.Count, a.Estimate, a.Lo, a.Hi)
	case resp.Min != nil && resp.Max != nil:
		fmt.Printf("minmax(%s): min=[%g, %g] max=[%g, %g]\n", resp.Var, resp.Min.Lo, resp.Min.Hi, resp.Max.Lo, resp.Max.Hi)
	case resp.Pair != nil:
		p := resp.Pair
		fmt.Printf("correlation(%s, %s): I(A;B)=%.6f H(A)=%.6f H(B)=%.6f H(A|B)=%.6f H(B|A)=%.6f\n",
			resp.Var, req.VarB, p.MI, p.EntropyA, p.EntropyB, p.CondEntropyAB, p.CondEntropyBA)
	case resp.Explain != "":
		os.Stdout.WriteString(resp.Explain)
	default:
		fmt.Printf("%s(%s): %d\n", resp.Op, resp.Var, resp.Count)
	}
	fmt.Printf("digest=%s generation=%d catalog=%d step=%d server=%s round-trip=%s",
		resp.Digest, resp.Generation, resp.CatalogGen, resp.Step,
		time.Duration(resp.ElapsedNs), time.Since(start).Round(time.Microsecond))
	if resp.TraceID != "" {
		fmt.Printf(" trace=%s", resp.TraceID)
	}
	if cl.Retries > 0 {
		fmt.Printf(" retries=%d", cl.Retries)
	}
	fmt.Println()
	return nil
}

// cmdLoad drives the open-loop load generator against a running
// insitu-serve — the capacity-planning and soak tool behind the numbers
// in docs/SERVING.md.
func cmdLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:8689", "insitu-serve address")
	rate := fs.Float64("rate", 200, "request launch rate per second (open loop)")
	duration := fs.Duration("duration", 5*time.Second, "launch window")
	total := fs.Int("total", 0, "exact request count (overrides -rate x -duration)")
	vars := fs.String("vars", "", "comma-separated variable names to draw from (default: ask the server)")
	ops := fs.String("ops", "count,sum,mean", "comma-separated op mix")
	timeout := fs.Duration("timeout", 0, "per-request timeout_ms sent to the server (0 = server default)")
	retry := fs.Bool("retry", false, "retry shed requests through client backoff instead of counting them")
	seed := fs.Int64("seed", 1, "request-mix seed")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}

	varList := splitList(*vars)
	if len(varList) == 0 {
		// Ask the server what it serves.
		cl := &insitubits.ServeClient{Base: strings.TrimSuffix(*addr, "/")}
		listing, err := cl.Vars(context.Background())
		if err != nil {
			return fmt.Errorf("listing served variables: %w", err)
		}
		if entries, ok := listing["vars"].([]any); ok {
			for _, e := range entries {
				if m, ok := e.(map[string]any); ok {
					if name, ok := m["name"].(string); ok {
						varList = append(varList, name)
					}
				}
			}
		}
		if len(varList) == 0 {
			return fmt.Errorf("server lists no variables")
		}
	}

	rep := insitubits.RunServeLoad(context.Background(), insitubits.ServeLoadConfig{
		Base:     strings.TrimSuffix(*addr, "/"),
		Rate:     *rate,
		Duration: *duration,
		Total:    *total,
		Seed:     *seed,
		Vars:     varList,
		Ops:      splitList(*ops),
		Timeout:  *timeout,
		Retry:    *retry,
	})
	if *jsonOut {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		os.Stdout.Write(append(data, '\n'))
	} else {
		fmt.Printf("sent:        %d in %s (%.0f launched/s)\n", rep.Sent, rep.Elapsed.Round(time.Millisecond), float64(rep.Sent)/rep.Elapsed.Seconds())
		fmt.Printf("ok:          %d (%.0f answers/s)\n", rep.OK, rep.Throughput())
		fmt.Printf("shed:        %d (final 429s after %d retries)\n", rep.Shed, rep.Retries)
		fmt.Printf("errors:      %d 5xx, %d other 4xx, %d network\n", rep.Errors5x, rep.Errors4x, rep.Network)
		fmt.Printf("latency:     p50=%s p95=%s p99=%s max=%s\n",
			rep.P50.Round(time.Microsecond), rep.P95.Round(time.Microsecond),
			rep.P99.Round(time.Microsecond), rep.Max.Round(time.Microsecond))
		if len(rep.DigestConflicts) > 0 {
			fmt.Printf("digest conflicts (%d keys — expected only across reloads):\n", len(rep.DigestConflicts))
			for k, ds := range rep.DigestConflicts {
				fmt.Printf("  %s: %v\n", k, ds)
			}
		}
	}
	if rep.Errors5x > 0 {
		return fmt.Errorf("%d server errors under load", rep.Errors5x)
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
