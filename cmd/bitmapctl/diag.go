package main

import (
	"archive/tar"
	"compress/gzip"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"insitubits"
)

// cmdDiag captures a one-shot diagnostics bundle from a running server
// into a single tar.gz — everything a bug report or postmortem needs in
// one artifact (see docs/OBSERVABILITY.md):
//
//	bitmapctl diag -addr localhost:6060 -out diag.tar.gz
//	bitmapctl diag -addr localhost:6060 -qlog workload.isql -fsck outdir/ -out diag.tar.gz
//
// The bundle holds the debug surfaces (healthz, telemetry, both metrics
// expositions, the metrics-history ring, traces, run, query-server and
// cache status),
// the profiling ring (listing plus the newest snapshots' raw pprof
// profiles), and — when pointed at local artifacts — a workload-log tail
// and summary, a slow-log tail, and an fsck summary of an output
// directory. Endpoints the server does not expose are recorded as
// missing in MANIFEST.json rather than failing the capture: a degraded
// server is exactly when a bundle matters most.
func cmdDiag(args []string) error {
	fs := flag.NewFlagSet("diag", flag.ExitOnError)
	addr := fs.String("addr", "localhost:6060", "debug server address (host:port)")
	out := fs.String("out", "", "output bundle path (default diag-<unix>.tar.gz)")
	qlogPath := fs.String("qlog", "", "also bundle a tail + summary of this workload log (.isql)")
	slowlogPath := fs.String("slowlog", "", "also bundle the tail of this slow-query log file")
	fsckDir := fs.String("fsck", "", "also bundle an fsck summary of this pipeline output directory")
	tail := fs.Int("tail", 200, "records/lines to keep from qlog and slow-log tails")
	snaps := fs.Int("profiles", 2, "newest profile snapshots to bundle raw (0 = listing only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("diag-%d.tar.gz", time.Now().Unix())
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	tw := tar.NewWriter(zw)
	b := &diagBundle{tw: tw, when: time.Now(), manifest: map[string]string{}}

	base := "http://" + *addr
	// The HTTP surfaces: name in the bundle ← endpoint.
	for _, e := range []struct{ name, url string }{
		{"healthz.json", base + "/healthz"},
		{"telemetry.json", base + "/telemetry"},
		{"metrics.prom", base + "/metrics"},
		{"metrics.om", base + "/metrics?format=openmetrics"},
		{"metrics-history.json", base + "/debug/metrics/history"},
		{"run.json", base + "/debug/run"},
		{"serve.json", base + "/debug/serve"},
		{"cache.json", base + "/debug/cache"},
		{"traces.json", base + "/debug/traces"},
		{"profiles/status.json", base + "/debug/profiles"},
	} {
		b.addURL(e.name, e.url)
	}
	b.addProfileRing(base, *snaps)
	if *qlogPath != "" {
		b.addQlog(*qlogPath, *tail)
	}
	if *slowlogPath != "" {
		b.addFileTail("slowlog-tail.log", *slowlogPath, *tail)
	}
	if *fsckDir != "" {
		b.addFsck(*fsckDir)
	}
	b.addManifest()

	if err := tw.Close(); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	ok, missing := b.counts()
	fmt.Printf("wrote %s: %d sections captured, %d missing (see MANIFEST.json)\n", path, ok, missing)
	return nil
}

// diagBundle accumulates tar entries and a per-section manifest ("ok" or
// the reason a section is absent). Capture errors degrade to manifest
// entries; only writing the archive itself can fail the command.
type diagBundle struct {
	tw       *tar.Writer
	when     time.Time
	manifest map[string]string
	tarErr   error
}

func (b *diagBundle) add(name string, data []byte) {
	if b.tarErr != nil {
		return
	}
	hdr := &tar.Header{
		Name: name, Mode: 0o644, Size: int64(len(data)), ModTime: b.when,
	}
	if err := b.tw.WriteHeader(hdr); err != nil {
		b.tarErr = err
		return
	}
	if _, err := b.tw.Write(data); err != nil {
		b.tarErr = err
		return
	}
	b.manifest[name] = "ok"
}

func (b *diagBundle) miss(name string, err error) {
	b.manifest[name] = err.Error()
}

func (b *diagBundle) addURL(name, url string) {
	data, err := diagFetch(url)
	if err != nil {
		b.miss(name, err)
		return
	}
	b.add(name, data)
}

// addProfileRing bundles the newest n snapshots' raw profiles, every kind,
// as pprof-compatible .pb.gz files.
func (b *diagBundle) addProfileRing(base string, n int) {
	if n <= 0 {
		return
	}
	var st insitubits.ProfilingStatus
	if err := fetchJSONInto(base+"/debug/profiles", &st); err != nil {
		return // the listing section already recorded the miss
	}
	metas := st.Snapshots
	if len(metas) > n {
		metas = metas[len(metas)-n:]
	}
	for _, m := range metas {
		kinds := make([]string, 0, len(m.Sizes))
		for kind := range m.Sizes {
			kinds = append(kinds, kind)
		}
		sort.Strings(kinds)
		for _, kind := range kinds {
			name := fmt.Sprintf("profiles/%d-%s.pb.gz", m.ID, kind)
			b.addURL(name, fmt.Sprintf("%s/debug/profiles?id=%d&kind=%s", base, m.ID, kind))
		}
	}
}

// addQlog bundles the analyzed summary and the last n records of a local
// workload log, tolerating a torn tail exactly like `bitmapctl workload`.
func (b *diagBundle) addQlog(path string, n int) {
	recs, _, err := insitubits.ReadQueryLog(path)
	if err != nil {
		b.miss("qlog-tail.json", err)
		return
	}
	sum := insitubits.AnalyzeWorkload(recs, nil)
	if data, err := json.MarshalIndent(sum, "", "  "); err == nil {
		b.add("qlog-summary.json", data)
	}
	if len(recs) > n {
		recs = recs[len(recs)-n:]
	}
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		b.miss("qlog-tail.json", err)
		return
	}
	b.add("qlog-tail.json", data)
}

// addFileTail bundles the last n lines of a local text log.
func (b *diagBundle) addFileTail(name, path string, n int) {
	data, err := os.ReadFile(path)
	if err != nil {
		b.miss(name, err)
		return
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) > n {
		lines = lines[len(lines)-n:]
	}
	b.add(name, []byte(strings.Join(lines, "\n")+"\n"))
}

// addFsck bundles the verification report of a pipeline output directory
// (read-only: never repairs from inside a diagnostics capture).
func (b *diagBundle) addFsck(dir string) {
	rep, err := insitubits.Fsck(dir, insitubits.FsckOptions{})
	if err != nil {
		b.miss("fsck.json", err)
		return
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.miss("fsck.json", err)
		return
	}
	b.add("fsck.json", data)
}

// addManifest writes the capture manifest as the bundle's last entry.
func (b *diagBundle) addManifest() {
	man := struct {
		CapturedAt string            `json:"captured_at"`
		Tool       string            `json:"tool"`
		Sections   map[string]string `json:"sections"`
	}{b.when.UTC().Format(time.RFC3339), "bitmapctl diag", b.manifest}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return
	}
	b.add("MANIFEST.json", data)
}

func (b *diagBundle) counts() (ok, missing int) {
	for _, v := range b.manifest {
		if v == "ok" {
			ok++
		} else {
			missing++
		}
	}
	return ok, missing
}

// diagFetch GETs one endpoint body with a short timeout.
func diagFetch(url string) ([]byte, error) {
	client := http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s (%s)", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return body, nil
}
