package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"insitubits"
)

// cmdReplay re-executes a captured workload log against an index and
// byte-compares every result digest — the CLI face of the replay
// regression gate (see docs/OBSERVABILITY.md):
//
//	bitmapctl replay -log workload.isql index.isbm
//	bitmapctl replay -log workload.isql -b second.isbm -concurrency 8 index.isbm
//	bitmapctl replay -log workload.isql -speedup 10 -planner=false index.isbm
//
// The exit status is non-zero when any digest diverges, so the command
// drops straight into CI.
func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	logPath := fs.String("log", "", "captured workload log (.isql), required")
	bPath := fs.String("b", "", "second index for correlation records (defaults to the primary)")
	concurrency := fs.Int("concurrency", 1, "worker goroutines (1 = serial)")
	speedup := fs.Float64("speedup", 0, "pace dispatch by recorded inter-arrival times / this factor (0 = as fast as possible)")
	planner := fs.Bool("planner", true, "replay with the query planner enabled")
	jsonOut := fs.Bool("json", false, "emit the full report as JSON")
	top := fs.Int("top", 5, "show the N slowest replayed queries")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *logPath == "" || fs.NArg() != 1 {
		return fmt.Errorf("usage: bitmapctl replay -log FILE [-b SECOND] [-concurrency N] [-speedup X] [-planner=BOOL] [-json] [-top N] INDEX")
	}
	recs, valid, err := insitubits.ReadQueryLog(*logPath)
	if err != nil {
		return err
	}
	x, err := loadIndex(fs.Arg(0))
	if err != nil {
		return err
	}
	xb := x
	if *bPath != "" {
		if xb, err = loadIndex(*bPath); err != nil {
			return err
		}
	}
	prev := insitubits.QueryPlannerEnabled()
	insitubits.SetQueryPlanner(*planner)
	defer insitubits.SetQueryPlanner(prev)
	rep := insitubits.ReplayWorkload(context.Background(), recs, x, xb,
		insitubits.ReplayOptions{Concurrency: *concurrency, Speedup: *speedup})
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		fmt.Printf("log      %s: %d records (%d valid bytes)\n", *logPath, len(recs), valid)
		fmt.Print(renderReplayReport(rep, *top))
	}
	return rep.Err()
}

// renderReplayReport formats a replay report: totals, the recorded-vs-
// replayed latency and scan-cost comparison, mismatches, and the slowest
// replayed queries. Pure — the command and the tests share it.
func renderReplayReport(rep *insitubits.ReplayReport, top int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "replayed %d of %d (%d skipped): %d matched, %d mismatched, %d failed\n",
		rep.Replayed, rep.Total, rep.Skipped, rep.Matched, rep.Mismatched, rep.Failed)
	fmt.Fprintf(&b, "wall     %s\n", time.Duration(rep.WallNs).Round(time.Microsecond))
	if rep.Replayed > 0 {
		fmt.Fprintf(&b, "latency  recorded %s -> replayed %s (%s)\n",
			time.Duration(rep.RecordedNs).Round(time.Microsecond),
			time.Duration(rep.ReplayedNs).Round(time.Microsecond),
			fmtDelta(rep.RecordedNs, rep.ReplayedNs))
		fmt.Fprintf(&b, "words    recorded %d -> replayed %d (%s)\n",
			rep.RecordedWords, rep.ReplayedWords,
			fmtDelta(rep.RecordedWords, rep.ReplayedWords))
	}
	for _, mm := range rep.Mismatches() {
		fmt.Fprintf(&b, "MISMATCH seq %d %s (%s): recorded %s, replayed %s\n",
			mm.Seq, mm.Op, mm.Detail, mm.Recorded, mm.Replayed)
	}
	for _, res := range rep.Results {
		if res.Err != "" {
			fmt.Fprintf(&b, "FAILED   seq %d %s (%s): %s\n", res.Seq, res.Op, res.Detail, res.Err)
		}
	}
	if top > 0 {
		slow := make([]insitubits.ReplayResult, 0, rep.Replayed)
		for _, res := range rep.Results {
			if !res.Skipped {
				slow = append(slow, res)
			}
		}
		sort.Slice(slow, func(i, j int) bool { return slow[i].ReplayedNs > slow[j].ReplayedNs })
		if len(slow) > top {
			slow = slow[:top]
		}
		if len(slow) > 0 {
			fmt.Fprintf(&b, "slowest %d replayed queries:\n", len(slow))
			fmt.Fprintf(&b, "  %6s %-11s %12s %12s %10s  %s\n", "seq", "op", "recorded", "replayed", "words", "detail")
			for _, res := range slow {
				fmt.Fprintf(&b, "  %6d %-11s %12s %12s %10d  %s\n",
					res.Seq, res.Op,
					time.Duration(res.RecordedNs).Round(time.Microsecond),
					time.Duration(res.ReplayedNs).Round(time.Microsecond),
					res.ReplayedWords, res.Detail)
			}
		}
	}
	return b.String()
}

// fmtDelta renders replayed-vs-recorded as a signed percentage.
func fmtDelta(recorded, replayed int64) string {
	if recorded <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*float64(replayed-recorded)/float64(recorded))
}
