package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"insitubits"
)

// cmdCacheStats prints the materialized-bitmap cache counters. With -addr it
// fetches a running process's /debug/cache endpoint; with -local it reads the
// in-process default cache (useful under -cache-mb to summarize what the
// command just did, e.g. `bitmapctl -cache-mb 64 mine ... && ...`).
//
//	bitmapctl cache-stats -addr localhost:6060
func cmdCacheStats(args []string) error {
	fs := flag.NewFlagSet("cache-stats", flag.ExitOnError)
	addr := fs.String("addr", "localhost:6060", "debug server address (host:port)")
	local := fs.Bool("local", false, "report the in-process cache instead of querying -addr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var st insitubits.BitmapCacheStats
	if *local {
		st = insitubits.DefaultBitmapCache().Stats()
	} else {
		var err error
		st, err = fetchCacheStats(fmt.Sprintf("http://%s/debug/cache", *addr))
		if err != nil {
			return err
		}
	}
	fmt.Print(renderCacheStats(st))
	return nil
}

// fetchCacheStats GETs and decodes one /debug/cache snapshot.
func fetchCacheStats(url string) (insitubits.BitmapCacheStats, error) {
	var st insitubits.BitmapCacheStats
	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("%s: %s (%s)", url, resp.Status, strings.TrimSpace(string(body)))
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return st, fmt.Errorf("decoding cache stats: %w", err)
	}
	return st, nil
}

// renderCacheStats formats one cache snapshot. Pure — shared with tests.
func renderCacheStats(st insitubits.BitmapCacheStats) string {
	var b strings.Builder
	if !st.Enabled {
		b.WriteString("bitmap cache: disabled (no cache installed)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "bitmap cache: %d entries, %s of %s\n",
		st.Entries, fmtBytes(st.Bytes), fmtBytes(st.MaxBytes))
	total := st.Hits + st.Misses
	ratio := 0.0
	if total > 0 {
		ratio = 100 * float64(st.Hits) / float64(total)
	}
	fmt.Fprintf(&b, "lookups:      %d hits, %d misses (%.1f%% hit rate)\n", st.Hits, st.Misses, ratio)
	fmt.Fprintf(&b, "turnover:     %d evictions, %d invalidations\n", st.Evictions, st.Invalidations)
	return b.String()
}
