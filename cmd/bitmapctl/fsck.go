package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"insitubits"
)

// cmdFsck verifies a pipeline output directory: journal integrity,
// manifest consistency, and every artifact's checksum. Exit codes follow
// fsck convention — 0 clean, 1 issues found, 2 usage error (the dispatcher
// maps the returned errIssuesFound to exit 1 like any other error).
func cmdFsck(args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	repair := fs.Bool("repair", false, "quarantine damaged steps and strays, rewrite a consistent manifest")
	asJSON := fs.Bool("json", false, "emit the full report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bitmapctl fsck [-repair] [-json] DIR")
		os.Exit(2)
	}
	rep, err := insitubits.Fsck(fs.Arg(0), insitubits.FsckOptions{Repair: *repair})
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		state := "complete"
		if !rep.Complete {
			state = "incomplete (resumable)"
		}
		fmt.Printf("%s: %d files checked, %s\n", rep.Dir, rep.FilesChecked, state)
		for _, is := range rep.Issues {
			loc := is.Path
			if is.Step >= 0 {
				loc = fmt.Sprintf("%s (step %d)", is.Path, is.Step)
			}
			fmt.Printf("  %-9s %s: %s", is.Class, loc, is.Detail)
			if is.Action != "" {
				fmt.Printf(" [%s]", is.Action)
			}
			fmt.Println()
		}
	}
	if !rep.Clean() && !rep.Repaired {
		return fmt.Errorf("%d issue(s) found", len(rep.Issues))
	}
	if rep.Repaired {
		fmt.Printf("repaired: %d issue(s) handled, damaged files in %s/\n",
			len(rep.Issues), insitubits.PipelineQuarantineDir)
	} else {
		fmt.Println("clean")
	}
	return nil
}
