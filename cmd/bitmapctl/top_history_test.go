package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"insitubits"
)

func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 10); got != "" {
		t.Errorf("empty sparkline: %q", got)
	}
	if got := sparkline([]float64{0, 0, 0}, 10); got != "▁▁▁" {
		t.Errorf("flat-zero sparkline: %q", got)
	}
	got := sparkline([]float64{0, 5, 10}, 10)
	if got != "▁▄█" {
		t.Errorf("ramp sparkline: %q", got)
	}
	// Downsampling keeps spikes: 20 points into width 5 must still show a
	// full-height glyph for the single spike.
	vals := make([]float64, 20)
	vals[11] = 100
	got = sparkline(vals, 5)
	if len([]rune(got)) != 5 || !strings.ContainsRune(got, '█') {
		t.Errorf("downsampled sparkline lost the spike: %q", got)
	}
}

func historyDump() insitubits.MetricsHistoryDump {
	return insitubits.MetricsHistoryDump{
		IntervalNs: 1e9,
		Capacity:   300,
		Samples: []insitubits.MetricsHistorySample{
			{UnixNs: 1e9}, {UnixNs: 2e9}, {UnixNs: 3e9},
		},
		Rates: map[string][]float64{
			"query.count":     {10, 30},
			"query.bits":      {5, 5},
			"bitcache.hits":   {8, 9},
			"bitcache.misses": {2, 1},
			"qlog.records":    {15, 35},
		},
	}
}

func TestRenderHistory(t *testing.T) {
	out := renderHistory(historyDump(), 20)
	for _, want := range []string{
		"rates over last 2s",
		"queries",
		"35/s", // query.count + query.bits, last interval
		"qlog",
		"35 rec/s",
		"cache hit",
		"90.0%", // 9 hits / 10 lookups in the last interval
	} {
		if !strings.Contains(out, want) {
			t.Errorf("renderHistory output missing %q:\n%s", want, out)
		}
	}
	if !strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Errorf("renderHistory drew no sparkline glyphs:\n%s", out)
	}

	// Too few samples: nothing to draw.
	if out := renderHistory(insitubits.MetricsHistoryDump{Samples: []insitubits.MetricsHistorySample{{}}}, 20); out != "" {
		t.Errorf("single-sample history rendered %q", out)
	}
	// All-flat-zero rates: no rate lines, so the whole block is elided.
	d := historyDump()
	d.Rates = map[string][]float64{"query.count": {0, 0}}
	if out := renderHistory(d, 20); out != "" {
		t.Errorf("flat history rendered %q", out)
	}
}

// TestRenderTopGenerationJournal covers the run-status fields /healthz and
// top gained for the observability plane.
func TestRenderTopGenerationJournal(t *testing.T) {
	st := topStatus()
	st.Generation = 42
	st.Journal = "active"
	out := renderTop(st)
	if !strings.Contains(out, "generation 42") || !strings.Contains(out, "journal active") {
		t.Errorf("renderTop missing generation/journal line:\n%s", out)
	}
	st.Generation, st.Journal = 0, ""
	if out := renderTop(st); strings.Contains(out, "generation") {
		t.Errorf("index line rendered with nothing to show:\n%s", out)
	}
}

func TestFetchMetricsHistory(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/debug/metrics/history" {
			http.NotFound(w, req)
			return
		}
		w.Write([]byte(`{"interval_ns":1000000000,"capacity":300,"samples":[{"unix_ns":1},{"unix_ns":2}],"rates":{"query.count":[3.5]}}`))
	}))
	defer srv.Close()
	d, err := fetchMetricsHistory(srv.URL + "/debug/metrics/history")
	if err != nil {
		t.Fatal(err)
	}
	if d.Capacity != 300 || len(d.Samples) != 2 || d.Rates["query.count"][0] != 3.5 {
		t.Errorf("decoded dump: %+v", d)
	}
	if _, err := fetchMetricsHistory(srv.URL + "/nope"); err == nil {
		t.Error("non-200 response did not error")
	}
}
