package main

import (
	"strings"
	"testing"

	"insitubits"
)

func TestRenderReplayReport(t *testing.T) {
	rep := &insitubits.ReplayReport{
		Total: 10, Replayed: 8, Skipped: 2, Matched: 7, Mismatched: 1,
		RecordedNs: 2_000_000, ReplayedNs: 1_000_000,
		RecordedWords: 4000, ReplayedWords: 3000,
		WallNs: 1_500_000,
		Results: []insitubits.ReplayResult{
			{Seq: 1, Op: "count", Detail: "value in [1, 5)", Match: true,
				Recorded: "aaaa", Replayed: "aaaa", RecordedNs: 900_000, ReplayedNs: 800_000, ReplayedWords: 2000},
			{Seq: 2, Op: "sum", Detail: "value in [2, 7)", Match: false,
				Recorded: "bbbb", Replayed: "cccc", RecordedNs: 400_000, ReplayedNs: 100_000, ReplayedWords: 500},
			{Seq: 3, Op: "quantile", Skipped: true, Reason: "recorded query failed"},
		},
	}
	out := renderReplayReport(rep, 5)
	for _, want := range []string{
		"replayed 8 of 10 (2 skipped): 7 matched, 1 mismatched, 0 failed",
		"latency  recorded 2ms -> replayed 1ms (-50.0%)",
		"words    recorded 4000 -> replayed 3000 (-25.0%)",
		"MISMATCH seq 2 sum (value in [2, 7)): recorded bbbb, replayed cccc",
		"slowest 2 replayed queries:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("renderReplayReport missing %q:\n%s", want, out)
		}
	}
	// The slowest listing is ordered by replayed latency and excludes the
	// skipped record.
	if strings.Contains(out, "quantile") {
		t.Errorf("skipped record listed as slow:\n%s", out)
	}
	if i, j := strings.Index(out, "count"), strings.LastIndex(out, "sum"); i > j {
		t.Errorf("slowest list not sorted by replayed latency:\n%s", out)
	}
	// -top 0 suppresses the listing.
	if out := renderReplayReport(rep, 0); strings.Contains(out, "slowest") {
		t.Errorf("top=0 still rendered the slow list:\n%s", out)
	}
}

func TestFmtDelta(t *testing.T) {
	if got := fmtDelta(0, 5); got != "n/a" {
		t.Errorf("zero-recorded delta: %q", got)
	}
	if got := fmtDelta(100, 150); got != "+50.0%" {
		t.Errorf("fmtDelta(100,150) = %q", got)
	}
	if got := fmtDelta(200, 100); got != "-50.0%" {
		t.Errorf("fmtDelta(200,100) = %q", got)
	}
}

func TestRenderWorkload(t *testing.T) {
	s := insitubits.WorkloadSummary{
		Total: 20, Replayable: 16, Errors: 1,
		ByOp:      map[string]int{"count": 10, "bits": 6, "sum": 4},
		PlannerOn: 20, CacheHits: 6, CacheMisses: 2,
		ElapsedNs: 5_000_000, Words: 123456,
		UniqueQueries: 8, RepeatRatio: 0.5,
		HotRanges:   []insitubits.WorkloadRangeCount{{Lo: 1, Hi: 5, Queries: 9}},
		HotBins:     []insitubits.WorkloadBinCount{{Bin: 3, Lo: 1.5, Hi: 2, Queries: 9}},
		Selectivity: insitubits.WorkloadDistribution{Count: 16, Min: 0.01, P50: 0.2, P90: 0.7, Max: 0.9},
	}
	out := renderWorkload(s)
	for _, want := range []string{
		"queries     20 total, 16 replayable, 1 errors",
		"mix         count=10 bits=6 sum=4",
		"cache       6 hits, 2 misses (75.0% hit rate)",
		"123456 words scanned",
		"repeat ratio 0.50",
		"selectivity rows/N min 0.0100 p50 0.2000 p90 0.7000 max 0.9000",
		"hot ranges",
		"9 queries",
		"bin    3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("renderWorkload missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "arity") {
		t.Errorf("empty arity distribution rendered:\n%s", out)
	}
}
