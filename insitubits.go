// Package insitubits is a Go reproduction of "In-Situ Bitmaps Generation and
// Efficient Data Analysis based on Bitmaps" (Su, Wang, Agrawal — HPDC 2015).
//
// It provides, as one coherent library:
//
//   - WAH-compressed bitvectors with in-place streaming compression
//     (the paper's Algorithm 1) and compressed bitwise operations;
//   - binned, multi-level bitmap indices over floating-point arrays;
//   - information-theoretic metrics (entropy, mutual information,
//     conditional entropy, Earth Mover's Distance) computed either from raw
//     data or — with identical results — from bitmaps alone;
//   - importance-driven time-step selection (online analysis);
//   - correlation mining between variables (offline analysis, Algorithm 2);
//   - an in-situ pipeline with Shared/Separate core-allocation strategies
//     and the paper's Equation 1/2 calibration;
//   - a multi-node in-situ driver with halo exchange and local/remote
//     storage models;
//   - the simulation workloads the paper evaluates on (Heat3D, a LULESH
//     proxy, a POP-like ocean dataset generator) and the sampling baseline;
//   - the companion bitmap-only analyses the paper cites: subset queries,
//     approximate aggregation with rigorous bounds, interactive correlation
//     queries, incomplete-data analysis and subgroup discovery;
//   - persistence (index, raw-array and multi-variable dataset formats, plus
//     pipeline output manifests) and an offline archive loader for post-hoc
//     analysis of the summarized data.
//
// This package is a facade: it re-exports the stable API of the internal
// packages so applications depend on a single import path. See DESIGN.md
// for the system inventory and EXPERIMENTS.md for the paper-vs-measured
// results; `go run ./cmd/experiments` regenerates every figure.
package insitubits

import (
	"insitubits/internal/binning"
	"insitubits/internal/bitcache"
	"insitubits/internal/bitvec"
	"insitubits/internal/cluster"
	"insitubits/internal/codec"
	"insitubits/internal/index"
	"insitubits/internal/insitu"
	"insitubits/internal/iosim"
	"insitubits/internal/machine"
	"insitubits/internal/metrics"
	"insitubits/internal/mining"
	"insitubits/internal/offline"
	"insitubits/internal/profiling"
	"insitubits/internal/qlog"
	"insitubits/internal/query"
	"insitubits/internal/replay"
	"insitubits/internal/sampling"
	"insitubits/internal/selection"
	"insitubits/internal/serve"
	"insitubits/internal/sim"
	"insitubits/internal/sim/heat3d"
	"insitubits/internal/sim/lulesh"
	"insitubits/internal/sim/ocean"
	"insitubits/internal/store"
	"insitubits/internal/subgroup"
	"insitubits/internal/telemetry"
	"insitubits/internal/zorder"
)

// --- Telemetry (internal/telemetry) ---

// TelemetryRegistry names and owns a set of instruments (counters, gauges,
// histograms, span tracers) and exports them as JSON, expvar, or over the
// debug HTTP server. See docs/OBSERVABILITY.md for the metric catalog.
type (
	TelemetryRegistry    = telemetry.Registry
	TelemetryCounter     = telemetry.Counter
	TelemetryGauge       = telemetry.Gauge
	TelemetryHistogram   = telemetry.Histogram
	TelemetryTracer      = telemetry.Tracer
	TelemetrySpan        = telemetry.Span
	TelemetrySnapshot    = telemetry.Snapshot
	TelemetryDebugServer = telemetry.DebugServer
)

// Telemetry is the process-wide registry every instrumented package reports
// into by default; `Telemetry.ServeDebug(addr)` is what the CLIs run behind
// -debug-addr.
var (
	Telemetry            = telemetry.Default
	NewTelemetryRegistry = telemetry.NewRegistry
	NewTelemetryTracer   = telemetry.NewTracer
)

// PipelineTracerName is the registry key the in-situ pipeline attaches its
// per-run span tracer under.
const PipelineTracerName = insitu.TracerName

// --- Identity tracing (internal/telemetry) ---

// TraceRecorder collects identity-carrying request traces: each traced
// query or pipeline step gets a TraceID/SpanID span tree, head-sampled and
// kept in a fixed-size ring, fetchable from /debug/traces as plain JSON,
// Chrome trace-event JSON, or OTLP-shaped JSON. Distinct from the aggregate
// TelemetryTracer, which only keeps per-phase totals.
type (
	TraceRecorder = telemetry.TraceRecorder
	TraceConfig   = telemetry.TraceConfig
	Trace         = telemetry.Trace
	TraceSpan     = telemetry.TraceSpan
	TraceStats    = telemetry.TraceStats
	ActiveSpan    = telemetry.ActiveSpan
)

// SetTraceRecorder installs (or, with nil, removes) the process-wide trace
// recorder the context-free entry points start traces on; StartSpan is how
// callers open (or join) a trace, and TraceIDOf reads the trace identity a
// context carries.
var (
	NewTraceRecorder     = telemetry.NewTraceRecorder
	SetTraceRecorder     = telemetry.SetTraceRecorder
	DefaultTraceRecorder = telemetry.DefaultTraceRecorder
	StartSpan            = telemetry.StartSpan
	SpanFromContext      = telemetry.SpanFromContext
	ContextWithSpan      = telemetry.ContextWithSpan
	TraceIDOf            = telemetry.TraceIDOf
	NewOTLPFileSink      = telemetry.NewOTLPFileSink
)

// RunStatus is the live pipeline snapshot published while a run is in
// flight, served as JSON at /debug/run and rendered by `bitmapctl top`.
type (
	RunStatus      = insitu.RunStatus
	RunPhaseStatus = insitu.PhaseStatus
)

// PipelineRunStatusName is the registry status key the live RunStatus is
// published under.
const PipelineRunStatusName = insitu.RunStatusName

// --- Compressed bitvectors (internal/bitvec, internal/codec) ---

// Bitmap is the codec-independent compressed bitmap interface every
// analysis layer operates on: AND/OR/XOR/NOT, population counts and range
// counts on the compressed form, plus decode-free run iteration. Three
// codecs implement it: BitVector (WAH), BBC, and DenseBitmap.
type Bitmap = bitvec.Bitmap

// BitVector is a WAH-compressed bitvector supporting AND/OR/XOR/NOT,
// population counts and range counts directly on the compressed form.
type BitVector = bitvec.Vector

// BitAppender builds a BitVector incrementally, one 31-bit segment at a
// time, merging fills in place (the paper's Algorithm 1 primitive).
type BitAppender = bitvec.Appender

// BBC is a byte-aligned compressed bitmap whose logical ops merge byte
// runs on the compressed stream.
type BBC = bitvec.BBC

// DenseBitmap is the uncompressed codec, the fast path for high-density
// bins where fill runs never pay off.
type DenseBitmap = bitvec.Dense

// Codec names a bitmap encoding; CodecAuto is the adaptive per-bin policy.
type Codec = codec.ID

// Available codecs. CodecAuto picks per bin by density at build time
// (dense at ≥50%, the smaller run-length codec below).
const (
	CodecAuto  = codec.Auto
	CodecWAH   = codec.WAH
	CodecBBC   = codec.BBC
	CodecDense = codec.Dense
)

// SegmentBits is the number of logical bits per WAH word (31).
const SegmentBits = bitvec.SegmentBits

// Re-exported bitvec/codec constructors.
var (
	FromBools       = bitvec.FromBools
	FromIndices     = bitvec.FromIndices
	ConcatVectors   = bitvec.Concat
	ToBitVector     = bitvec.ToVector
	BBCFromVector   = bitvec.BBCFromVector
	BBCFromBitmap   = bitvec.BBCFromBitmap
	DenseFromBitmap = bitvec.DenseFromBitmap
	ParseCodec      = codec.Parse
	EncodeBitmap    = codec.Encode
	CodecOf         = codec.Of
)

// --- Binning (internal/binning) ---

// Mapper assigns values to bins; the same Mapper drives bitmap construction
// and the full-data baselines, which is why both paths agree exactly.
type Mapper = binning.Mapper

// UniformBins is an equal-width Mapper.
type UniformBins = binning.Uniform

// ExplicitBins is an arbitrary-edge Mapper.
type ExplicitBins = binning.Explicit

// GroupedBins coarsens a base Mapper into high-level interval bins.
type GroupedBins = binning.Grouped

// Re-exported binning constructors.
var (
	NewUniformBins   = binning.NewUniform
	NewPrecisionBins = binning.NewPrecision
	NewEquiDepthBins = binning.NewEquiDepth
	NewExplicitBins  = binning.NewExplicit
	NewGroupedBins   = binning.NewGrouped
	MinMax           = binning.MinMax
)

// --- Bitmap indices (internal/index) ---

// Index is a bitmap index: one compressed BitVector per value bin, with the
// per-bin counts (the histogram) cached.
type Index = index.Index

// MultiLevelIndex pairs a fine low-level index with derived high-level
// interval vectors (Figure 1 of the paper).
type MultiLevelIndex = index.MultiLevel

// StreamIndexBuilder indexes a value stream chunk by chunk — the in-situ
// generation path.
type StreamIndexBuilder = index.StreamBuilder

// Re-exported index constructors.
var (
	BuildIndex           = index.Build
	BuildIndexCodec      = index.BuildCodec
	BuildIndexAlgorithm1 = index.BuildAlgorithm1
	BuildIndexTwoPhase   = index.BuildTwoPhase
	BuildIndexParallel   = index.BuildParallel
	BuildMultiLevel      = index.BuildMultiLevel
	NewStreamIndex       = index.NewStreamBuilder
)

// --- Metrics (internal/metrics) ---

// PairMetrics bundles the pairwise metrics (entropies, mutual information,
// conditional entropies) of two variables or time-steps.
type PairMetrics = metrics.Pair

// CFP is the cumulative frequency plot used for accuracy-loss reporting.
type CFP = metrics.CFP

// Re-exported metric functions; the *Bitmaps variants compute identical
// values from indices alone.
var (
	Histogram                = metrics.Histogram
	JointHistogram           = metrics.JointHistogram
	JointHistogramBitmaps    = metrics.JointHistogramBitmaps
	JointHistogramBitmapsAND = metrics.JointHistogramBitmapsAND
	Entropy                  = metrics.Entropy
	MutualInformation        = metrics.MutualInformation
	ConditionalEntropy       = metrics.ConditionalEntropy
	EMDCount                 = metrics.EMDCount
	EMDSpatialData           = metrics.EMDSpatialData
	EMDSpatialBitmaps        = metrics.EMDSpatialBitmaps
	PairFromData             = metrics.PairFromData
	PairFromBitmaps          = metrics.PairFromBitmaps
	NewCFP                   = metrics.NewCFP
)

// --- Time-step selection (internal/selection) ---

// Summary is a time-step's analyzable representation (raw data or bitmaps).
type Summary = selection.Summary

// SelectionResult reports the chosen steps and scores.
type SelectionResult = selection.Result

// SelectionMetric picks the correlation measure for selection.
type SelectionMetric = selection.Metric

// Selection metrics.
const (
	MetricConditionalEntropy = selection.ConditionalEntropy
	MetricEMDCount           = selection.EMDCount
	MetricEMDSpatial         = selection.EMDSpatial
)

// FixedLengthPartitioning and InfoVolumePartitioning are the paper's two
// interval partitioners.
type (
	FixedLengthPartitioning = selection.FixedLength
	InfoVolumePartitioning  = selection.InfoVolume
)

// Re-exported selection API. SelectTimeSteps is the paper's greedy
// algorithm; SelectTimeStepsDP the dynamic-programming alternative it
// references (offline only).
var (
	SelectTimeSteps     = selection.Select
	SelectTimeStepsDP   = selection.SelectDP
	SelectionChainScore = selection.ChainScore
	NewDataSummary      = selection.NewDataSummary
	NewBitmapSummary    = selection.NewBitmapSummary
)

// --- Correlation mining (internal/mining) ---

// MiningConfig parameterizes Algorithm 2 (unit size and the T/T' thresholds).
type MiningConfig = mining.Config

// Finding is one mined high-correlation (value pair, spatial unit).
type Finding = mining.Finding

// MinedRegion is a run of adjacent high-correlation spatial units merged
// into one contiguous block.
type MinedRegion = mining.Region

// Re-exported mining API.
var (
	Mine                  = mining.Mine
	MineParallel          = mining.MineParallel
	MineMultiLevel        = mining.MineMultiLevel
	MineFullData          = mining.MineFullData
	MergeFindings         = mining.MergeFindings
	DefaultValueThreshold = mining.DefaultValueThreshold
)

// --- Bitmap-only queries and aggregation (internal/query) ---

// QuerySubset selects elements by value and/or spatial range; Aggregate
// carries an estimate with rigorous bin-edge bounds.
type (
	QuerySubset = query.Subset
	Aggregate   = query.Aggregate
	// MaskedIndex pairs an index with a validity bitvector for
	// incomplete-data analysis.
	MaskedIndex = query.Masked
)

// Re-exported query API — all of it consumes indices only.
var (
	SubsetBits       = query.Bits
	SubsetCount      = query.Count
	SubsetSum        = query.Sum
	SubsetMean       = query.Mean
	SubsetMinMax     = query.MinMax
	SubsetQuantile   = query.Quantile
	SumMasked        = query.SumMasked
	MeanMasked       = query.MeanMasked
	CorrelationQuery = query.Correlation
	NewMaskedIndex   = query.NewMasked
)

// --- Query EXPLAIN/ANALYZE and slow-query log (internal/query) ---

// QueryProfile is the plan-profile tree an EXPLAIN or ANALYZE run returns:
// per-operator cost accounting (bins touched, words scanned split into
// fills and literals, bytes decoded, output shape) plus wall time for
// ANALYZE. QueryTopK keeps the K slowest profiles seen.
type (
	QueryProfile  = query.Profile
	QueryPlanNode = query.Node
	QueryCost     = query.Cost
	QueryOp       = query.Op
	QueryTopK     = query.TopK
)

// Query operators accepted by ExplainQuery.
const (
	QueryOpBits     = query.OpBits
	QueryOpCount    = query.OpCount
	QueryOpSum      = query.OpSum
	QueryOpMean     = query.OpMean
	QueryOpQuantile = query.OpQuantile
	QueryOpMinMax   = query.OpMinMax
)

// Re-exported EXPLAIN/ANALYZE API. ExplainQuery estimates cost from the
// index's per-bin stats without executing; the *Analyze variants execute
// and return the measured profile alongside the normal result.
var (
	ExplainQuery            = query.Explain
	ExplainCorrelationQuery = query.ExplainCorrelation
	ParseQueryOp            = query.ParseOp
	SubsetBitsAnalyze       = query.BitsAnalyze
	SubsetCountAnalyze      = query.CountAnalyze
	SubsetSumAnalyze        = query.SumAnalyze
	SubsetMeanAnalyze       = query.MeanAnalyze
	SubsetQuantileAnalyze   = query.QuantileAnalyze
	SubsetMinMaxAnalyze     = query.MinMaxAnalyze
	SumMaskedAnalyze        = query.SumMaskedAnalyze
	CorrelationAnalyze      = query.CorrelationAnalyze
	SetSlowQueryLog         = query.SetSlowLog
	NewQueryTopK            = query.NewTopK
)

// --- Query planner and materialized-bitmap cache (internal/query, internal/bitcache) ---

// BitmapCache is a byte-bounded LRU of materialized bitmaps (subset ORs,
// range indicators, mining joints) shared by the query planner, correlation
// mining, and the metrics AND formulation. Keys embed the owning index
// generations, and the in-situ pipeline invalidates superseded generations
// when it publishes a new step, so hits are always sound. BitmapCacheStats
// is its counter snapshot, published at /debug/cache and as bitcache.*
// Prometheus series.
type (
	BitmapCache      = bitcache.Cache
	BitmapCacheStats = bitcache.Stats
)

// Re-exported planner/cache API. NewBitmapCache builds a cache bounded to
// maxBytes (<=0 disables); SetDefaultBitmapCache installs the process-wide
// cache every query and mining run consults (nil uninstalls — caching is
// opt-in and off by default); WithBitmapCache overrides the cache per
// request via context. SetQueryPlanner toggles the cost-based
// plan/optimize/execute pipeline — disabled, every entry point runs the
// fixed-order naive path the differential tests compare against.
var (
	NewBitmapCache        = bitcache.New
	SetDefaultBitmapCache = bitcache.SetDefault
	DefaultBitmapCache    = bitcache.Default
	WithBitmapCache       = query.WithCache
	SetQueryPlanner       = query.SetPlanner
	QueryPlannerEnabled   = query.PlannerEnabled
)

// --- Workload capture, replay, and metrics history (internal/qlog, internal/replay, internal/telemetry) ---

// QueryLogWriter appends one checksummed QueryLogRecord per executed query
// to a workload log (the .isql format); QueryLogHealth is the writer's
// live health snapshot (records, drops, queue depth), published under the
// "qlog" status key and embedded in /healthz. WorkloadSummary is the
// analyzer's report: per-op mix, hot bins, operand arity/selectivity
// distributions, and the repeat ratio that bounds cache-hit potential.
type (
	QueryLogWriter       = qlog.Writer
	QueryLogRecord       = qlog.Record
	QueryLogHealth       = qlog.Health
	WorkloadSummary      = qlog.Summary
	WorkloadDistribution = qlog.Distribution
	WorkloadBinCount     = qlog.BinCount
	WorkloadRangeCount   = qlog.RangeCount
)

// CreateQueryLog opens a new workload log; InstallQueryLog makes it the
// process-wide capture target every query entry point appends to (nil
// uninstalls — capture is opt-in and off by default). ReadQueryLog loads a
// log back tolerating a torn tail, and AnalyzeWorkload summarizes one.
var (
	CreateQueryLog  = qlog.Create
	InstallQueryLog = qlog.Install
	ActiveQueryLog  = qlog.Active
	ReadQueryLog    = qlog.ReadLog
	AnalyzeWorkload = qlog.Analyze
)

// QueryLogStatusName is the registry status key the active workload-log
// writer publishes its health under.
const QueryLogStatusName = qlog.StatusName

// ReplayWorkload re-executes a captured workload log against an index and
// byte-compares every result digest against the recorded one — the
// cross-codec / planner / cache regression gate behind `bitmapctl replay`
// and `make replay-diff`.
type (
	ReplayOptions = replay.Options
	ReplayResult  = replay.Result
	ReplayReport  = replay.Report
)

var ReplayWorkload = replay.Run

// MetricsHistory samples the registry's counters and gauges into a fixed
// ring so the debug surface can serve a short metric history — the
// sparklines in `bitmapctl top` — without an external scraper.
type (
	MetricsHistory       = telemetry.History
	MetricsHistorySample = telemetry.HistorySample
	MetricsHistoryDump   = telemetry.HistoryDump
)

// StartMetricsHistory publishes and starts a sampler over a registry; the
// ring is served at /debug/metrics/history.
var (
	StartMetricsHistory = telemetry.StartHistory
	NewMetricsHistory   = telemetry.NewHistory
)

// MetricsHistoryStatusName is the registry status key a started history
// publishes its dump under.
const MetricsHistoryStatusName = telemetry.HistoryStatusName

// MetricExemplar is one traced sample a latency histogram retains; the
// OpenMetrics exposition on /metrics attaches it to the matching
// histogram bucket so a slow bucket links to /debug/traces?id=.
type MetricExemplar = telemetry.Exemplar

// --- Continuous profiling (internal/profiling) ---

// ProfilingConfig configures the background profile collector;
// ProfileSnapshotMeta describes one captured snapshot (stamped with the
// in-situ run's generation/phase/step and the metrics-history cursor);
// ProfileTopReport is the symbolized top/diff view /debug/profiles and
// `bitmapctl profile` serve; Profile/ProfileFuncValue/ProfileLabelValue
// are the parsed pprof views behind it; ProfilingStatus is the
// collector's live status (the "profiling" registry status key).
type (
	ProfilingConfig     = profiling.Config
	ProfileCollector    = profiling.Collector
	ProfileSnapshot     = profiling.Snapshot
	ProfileSnapshotMeta = profiling.SnapshotMeta
	ProfileTopReport    = profiling.TopReport
	Profile             = profiling.Profile
	ProfileFuncValue    = profiling.FuncValue
	ProfileLabelValue   = profiling.LabelValue
	ProfilingStatus     = profiling.Status
	ProfilingRunInfo    = profiling.RunInfo
)

// StartProfiling starts the continuous collector (and enables the pprof
// label plane); ParseProfile decodes a gzipped pprof profile without
// external dependencies; DiffProfiles is the symbolized delta between two
// parsed profiles; ProfilingEnabled/SetProfilingEnabled expose the label
// gate on its own (one atomic load on the query path when off).
var (
	StartProfiling      = profiling.Start
	ParseProfile        = profiling.Parse
	DiffProfiles        = profiling.Diff
	ProfilingEnabled    = profiling.Enabled
	SetProfilingEnabled = profiling.SetEnabled
	ProfileWithLabels   = profiling.Label
	ProfilingKinds      = profiling.Kinds
	ProfilingStatusName = profiling.StatusName
)

// --- Subgroup discovery (internal/subgroup) ---

// SubgroupCondition, Subgroup and SubgroupConfig drive bitmap-based
// subgroup discovery (the SciSD companion analysis).
type (
	SubgroupCondition = subgroup.Condition
	Subgroup          = subgroup.Subgroup
	SubgroupConfig    = subgroup.Config
)

// Re-exported subgroup API.
var (
	DiscoverSubgroups = subgroup.Discover
	DescribeSubgroup  = subgroup.Describe
)

// --- In-situ pipeline (internal/insitu) ---

// PipelineConfig configures one in-situ run; PipelineResult reports it.
type (
	PipelineConfig  = insitu.Config
	PipelineResult  = insitu.Result
	Breakdown       = insitu.Breakdown
	ReductionMethod = insitu.Method
	CoreStrategy    = insitu.Strategy
	SharedCores     = insitu.SharedCores
	SeparateCores   = insitu.SeparateCores
)

// Reduction methods.
const (
	MethodBitmaps  = insitu.Bitmaps
	MethodFullData = insitu.FullData
	MethodSampling = insitu.Sampling
)

// PipelineManifestName is the manifest file written into OutputDir.
const PipelineManifestName = insitu.ManifestName

// Manifest records what a pipeline run persisted when
// PipelineConfig.OutputDir is set.
type (
	Manifest     = insitu.Manifest
	ManifestFile = insitu.ManifestFile
)

// Re-exported pipeline API.
var (
	RunPipeline  = insitu.Run
	Calibrate    = insitu.Calibrate
	MemoryModel  = insitu.MemoryModel
	ReadManifest = insitu.ReadManifest
)

// --- Crash safety: run journal, resume, fsck (internal/insitu) ---

// PipelineJournalName is the append-only run journal written into
// OutputDir; PipelineQuarantineDir is where Resume and fsck park damaged
// or stray files instead of deleting them.
const (
	PipelineJournalName   = insitu.JournalName
	PipelineQuarantineDir = insitu.QuarantineDir
)

// JournalRecord is one entry of the run journal; JournalFile is one
// durable artifact a select record covers. FsckReport and FsckIssue
// describe a directory verification.
type (
	JournalRecord = insitu.JournalRecord
	JournalFile   = insitu.JournalFile
	FsckReport    = insitu.FsckReport
	FsckIssue     = insitu.FsckIssue
	FsckOptions   = insitu.FsckOptions
)

// Re-exported crash-safety API: ResumePipeline continues a crashed run
// from its journal; Fsck verifies (and optionally repairs) an output
// directory; ReadJournal/ParseJournal expose the journal itself.
var (
	ResumePipeline = insitu.Resume
	Fsck           = insitu.Fsck
	ReadJournal    = insitu.ReadJournal
	ParseJournal   = insitu.ParseJournal
)

// --- Offline archives (internal/offline) ---

// Archive is a loaded pipeline output directory (manifest + artifacts);
// ArchiveEvolution is one point of a variable's evolution series.
type (
	Archive          = offline.Archive
	ArchiveEvolution = offline.Evolution
)

// LoadArchive reads a pipeline's OutputDir back for offline analysis.
var LoadArchive = offline.Load

// --- Cluster driver (internal/cluster) ---

// ClusterConfig configures a multi-node in-situ run; ClusterResult reports it.
type (
	ClusterConfig = cluster.Config
	ClusterResult = cluster.Result
)

// Cluster reduction methods.
const (
	ClusterBitmaps  = cluster.Bitmaps
	ClusterFullData = cluster.FullData
)

// RunCluster executes a multi-node in-situ experiment.
var RunCluster = cluster.Run

// --- Simulations (internal/sim/...) ---

// Simulator is the workload abstraction the pipeline drives.
type Simulator = sim.Simulator

// Field is one named output array of a time-step.
type Field = sim.Field

// Heat3D is the heat-diffusion workload; Lulesh the shock-hydro proxy;
// OceanDataset the POP-substitute multivariable dataset.
type (
	Heat3D       = heat3d.Sim
	Lulesh       = lulesh.Sim
	OceanDataset = ocean.Dataset
	OceanRegion  = ocean.Region
)

// FeedSimulator adapts an external simulation loop to the pipeline: the
// producer pushes per-step fields into the channel NewFeedSimulator
// returns.
type FeedSimulator = sim.FeedSimulator

// Re-exported workload constructors.
var (
	NewHeat3D        = heat3d.New
	NewLulesh        = lulesh.New
	GenerateOcean    = ocean.Generate
	NewFeedSimulator = sim.NewFeed
)

// --- Sampling baseline (internal/sampling) ---

// Sampler keeps a fixed element subset of every array (the §5.5 baseline).
type Sampler = sampling.Sampler

// Re-exported sampler constructors.
var (
	NewStridedSampler = sampling.NewStrided
	NewRandomSampler  = sampling.NewRandom
)

// --- Storage (internal/store, internal/iosim, internal/machine) ---

// IOStore is a bandwidth-modelled storage device.
type IOStore = iosim.Store

// MachineProfile describes one of the paper's testbed node types.
type MachineProfile = machine.Profile

// The paper's testbeds.
var (
	Xeon       = machine.Xeon
	MIC        = machine.MIC
	OakleyNode = machine.OakleyNode
)

// DatasetFile is the multi-variable container format (the reproduction's
// NetCDF stand-in).
type DatasetFile = store.Dataset

// Re-exported storage API. WriteIndexFile emits the v3 checksummed
// container; the V1/V2 writers keep the legacy layouts producible.
var (
	NewIOStore       = iosim.NewStore
	NewIOStoreWriter = iosim.NewStoreWriter
	WriteIndexFile   = store.WriteIndex
	WriteIndexFileV1 = store.WriteIndexV1
	WriteIndexFileV2 = store.WriteIndexV2
	ReadIndexFile    = store.ReadIndex
	IndexFileSize    = store.IndexSize
	WriteRawFile     = store.WriteRaw
	ReadRawFile      = store.ReadRaw
	RawFileSize      = store.RawSize
	// Ctx variants record a store.* child span when the context carries an
	// identity-trace span (see TraceRecorder); otherwise they cost one
	// context lookup and delegate to the plain functions.
	WriteIndexFileCtx = store.WriteIndexCtx
	ReadIndexFileCtx  = store.ReadIndexCtx
	WriteRawFileCtx   = store.WriteRawCtx
	ReadRawFileCtx    = store.ReadRawCtx
	NewDatasetFile    = store.NewDataset
	WriteDatasetFile  = store.WriteDataset
	ReadDatasetFile   = store.ReadDataset
)

// --- Durability and fault injection (internal/store, internal/iosim) ---

// ErrChecksum is the sentinel wrapped by every checksum failure in the
// container formats; ErrTransientIO and ErrCrashedIO are the fault layer's
// injected error kinds.
var (
	ErrChecksum    = store.ErrChecksum
	ErrTransientIO = iosim.ErrTransient
	ErrCrashedIO   = iosim.ErrCrashed
)

// FaultPlan schedules injected I/O faults; FaultFS applies one to a whole
// filesystem; Backoff parameterizes RetryIO. FileSystem is the pluggable
// filesystem the pipeline writes through (PipelineConfig.FS).
type (
	FaultPlan   = iosim.FaultPlan
	FaultWriter = iosim.FaultWriter
	FaultFS     = iosim.FaultFS
	FileSystem  = iosim.FS
	Backoff     = iosim.Backoff
)

// Re-exported durability API: CRC32C is the checksum every container and
// journal frame uses; AtomicWriteFile stages-fsyncs-renames so files are
// never torn; RetryIO retries transient store errors with backoff.
var (
	CRC32C          = store.CRC32C
	AtomicWriteFile = store.AtomicWrite
	NewFaultFS      = iosim.NewFaultFS
	RetryIO         = iosim.Retry
	IsTransientIO   = iosim.IsTransient
)

// --- Z-order curves (internal/zorder) ---

// ZLayout3 maps a 3-D grid between row-major and Z-order positions.
type ZLayout3 = zorder.Layout3

// Re-exported Z-order API.
var (
	NewZLayout3 = zorder.NewLayout3
	ZEncode3    = zorder.Encode3
	ZDecode3    = zorder.Decode3
)

// --- Query serving (internal/serve) ---

// QueryServer is the hardened concurrent query daemon behind cmd/insitu-serve:
// it loads immutable index files once (shared, read-only, generation-stamped),
// executes the full query API over HTTP/JSON with per-request deadlines,
// admission control (bounded queue, 429 + Retry-After shedding), per-request
// panic isolation, zero-downtime catalog reloads and graceful drain. See
// docs/SERVING.md.
type (
	ServeConfig        = serve.Config
	QueryServer        = serve.Server
	ServeStatus        = serve.Status
	ServeEntry         = serve.Entry
	ServeClient        = serve.Client
	ServeQueryRequest  = serve.QueryRequest
	ServeQueryResponse = serve.QueryResponse
	ServeStatusError   = serve.StatusError
	ServeLoadConfig    = serve.LoadConfig
	ServeLoadReport    = serve.LoadReport
)

// NewQueryServer builds a server; RunServeLoad is the open-loop load
// generator the chaos harness and `bitmapctl load` drive; ErrServeShed is
// the admission-queue-full sentinel behind every 429.
var (
	NewQueryServer = serve.New
	RunServeLoad   = serve.RunLoad
	ErrServeShed   = serve.ErrShed
	// ValidTraceID reports whether a string is a well-formed W3C/OTLP
	// 128-bit trace ID; the server uses it to vet propagated IDs.
	ValidTraceID = telemetry.ValidTraceID
)

// ServeStatusName is the registry status key the server publishes its
// admission/shed counters under (read by bitmapctl top and diag).
const ServeStatusName = serve.StatusName
