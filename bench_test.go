// Benchmarks mirroring every figure of the paper's evaluation plus the
// ablations called out in DESIGN.md §3. Each BenchmarkFigNN exercises the
// exact code path that regenerates the corresponding figure (the experiment
// harness `cmd/experiments` prints the full series; these measure the cost
// of one representative configuration). Run:
//
//	go test -bench=. -benchmem
package insitubits_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"insitubits"
)

// pipelineBench runs one in-situ pipeline configuration.
func pipelineBench(b *testing.B, mk func() (insitubits.Simulator, error),
	method insitubits.ReductionMethod, metric insitubits.SelectionMetric,
	bins int, samplePct float64, diskMBps float64) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := mk()
		if err != nil {
			b.Fatal(err)
		}
		st, err := insitubits.NewIOStore(diskMBps)
		if err != nil {
			b.Fatal(err)
		}
		res, err := insitubits.RunPipeline(insitubits.PipelineConfig{
			Sim: s, Steps: 16, Select: 4,
			Method: method, Bins: bins, SamplePct: samplePct, Seed: 1,
			Metric: metric, Cores: 2, Store: st,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Selected) != 4 {
			b.Fatalf("selected %v", res.Selected)
		}
	}
}

func heat() (insitubits.Simulator, error)    { return insitubits.NewHeat3D(32, 32, 24) }
func heatMIC() (insitubits.Simulator, error) { return insitubits.NewHeat3D(32, 32, 8) }
func lul() (insitubits.Simulator, error)     { return insitubits.NewLulesh(12, 12, 12) }
func lulMIC() (insitubits.Simulator, error)  { return insitubits.NewLulesh(8, 8, 8) }

// BenchmarkFig7 covers Heat3D-on-Xeon in-situ analysis (bitmaps vs the
// full-data baseline below).
func BenchmarkFig7HeatXeonBitmaps(b *testing.B) {
	pipelineBench(b, heat, insitubits.MethodBitmaps, insitubits.MetricConditionalEntropy, 160, 0, insitubits.Xeon.DiskMBps)
}

func BenchmarkFig7HeatXeonFullData(b *testing.B) {
	pipelineBench(b, heat, insitubits.MethodFullData, insitubits.MetricConditionalEntropy, 160, 0, insitubits.Xeon.DiskMBps)
}

// BenchmarkFig8 covers the MIC profile (quarter grid, slower disk).
func BenchmarkFig8HeatMICBitmaps(b *testing.B) {
	pipelineBench(b, heatMIC, insitubits.MethodBitmaps, insitubits.MetricConditionalEntropy, 160, 0, insitubits.MIC.DiskMBps)
}

// BenchmarkFig9 covers Lulesh-on-Xeon with the spatial EMD metric over all
// 12 arrays.
func BenchmarkFig9LuleshXeonBitmaps(b *testing.B) {
	pipelineBench(b, lul, insitubits.MethodBitmaps, insitubits.MetricEMDSpatial, 120, 0, insitubits.Xeon.DiskMBps)
}

func BenchmarkFig9LuleshXeonFullData(b *testing.B) {
	pipelineBench(b, lul, insitubits.MethodFullData, insitubits.MetricEMDSpatial, 120, 0, insitubits.Xeon.DiskMBps)
}

// BenchmarkFig10 covers Lulesh on the MIC profile.
func BenchmarkFig10LuleshMICBitmaps(b *testing.B) {
	pipelineBench(b, lulMIC, insitubits.MethodBitmaps, insitubits.MetricEMDSpatial, 120, 0, insitubits.MIC.DiskMBps)
}

// BenchmarkFig11 measures the memory-model evaluation itself (the figure's
// numbers come from StepBytes/SummaryBytes of a bitmaps run).
func BenchmarkFig11MemoryModel(b *testing.B) {
	s, err := insitubits.NewHeat3D(24, 24, 24)
	if err != nil {
		b.Fatal(err)
	}
	res, err := insitubits.RunPipeline(insitubits.PipelineConfig{
		Sim: s, Steps: 8, Select: 2,
		Method: insitubits.MethodBitmaps, Bins: 160,
		Metric: insitubits.MetricConditionalEntropy, Cores: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		full := insitubits.MemoryModel(insitubits.MethodFullData, res.StepBytes, 0, 10)
		bmp := insitubits.MemoryModel(insitubits.MethodBitmaps, res.StepBytes, res.SummaryBytes, 10)
		if bmp >= full {
			b.Fatal("bitmaps not smaller")
		}
	}
}

// BenchmarkFig12 compares the two core-allocation strategies end to end
// (real concurrency, bounded queue).
func BenchmarkFig12SharedCores(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := insitubits.NewHeat3D(24, 24, 24)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := insitubits.RunPipeline(insitubits.PipelineConfig{
			Sim: s, Steps: 12, Select: 3,
			Method: insitubits.MethodBitmaps, Bins: 160,
			Metric: insitubits.MetricConditionalEntropy, Cores: 4,
			Strategy: insitubits.SharedCores{},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12SeparateCores(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := insitubits.NewHeat3D(24, 24, 24)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := insitubits.RunPipeline(insitubits.PipelineConfig{
			Sim: s, Steps: 12, Select: 3,
			Method: insitubits.MethodBitmaps, Bins: 160,
			Metric: insitubits.MetricConditionalEntropy, Cores: 4,
			Strategy: insitubits.SeparateCores{SimCores: 2, ReduceCores: 2, QueueCap: 2},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13 runs the multi-node in-situ environment with halo exchange
// and a shared remote store.
func BenchmarkFig13Cluster(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		remote, err := insitubits.NewIOStore(100)
		if err != nil {
			b.Fatal(err)
		}
		res, err := insitubits.RunCluster(insitubits.ClusterConfig{
			Nodes: 4, CoresPerNode: 1,
			GridX: 16, GridY: 16, GridZ: 48,
			Steps: 10, Select: 3,
			Metric: insitubits.MetricConditionalEntropy,
			Method: insitubits.ClusterBitmaps,
			Bins:   160,
			Remote: remote,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Selected) != 3 {
			b.Fatalf("selected %v", res.Selected)
		}
	}
}

// fig14Setup builds the mining inputs once per benchmark.
func fig14Setup(b *testing.B) (temp, salt []float64, mt, ms insitubits.Mapper, xt, xs *insitubits.Index) {
	b.Helper()
	d, err := insitubits.GenerateOcean(64, 64, 16, 7)
	if err != nil {
		b.Fatal(err)
	}
	temp, err = d.VarCurveOrder("temperature")
	if err != nil {
		b.Fatal(err)
	}
	salt, err = d.VarCurveOrder("salinity")
	if err != nil {
		b.Fatal(err)
	}
	tlo, thi := insitubits.MinMax(temp)
	slo, shi := insitubits.MinMax(salt)
	mt, err = insitubits.NewUniformBins(tlo, thi+1e-9, 48)
	if err != nil {
		b.Fatal(err)
	}
	ms, err = insitubits.NewUniformBins(slo, shi+1e-9, 48)
	if err != nil {
		b.Fatal(err)
	}
	return temp, salt, mt, ms, insitubits.BuildIndex(temp, mt), insitubits.BuildIndex(salt, ms)
}

var miningCfg = insitubits.MiningConfig{UnitSize: 512, ValueThreshold: 0.002, SpatialThreshold: 0.05}

// BenchmarkFig14 times Algorithm 2 against the exhaustive baseline.
func BenchmarkFig14MineBitmaps(b *testing.B) {
	_, _, _, _, xt, xs := fig14Setup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := insitubits.Mine(xt, xs, miningCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14MineFullData(b *testing.B) {
	temp, salt, mt, ms, _, _ := fig14Setup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := insitubits.MineFullData(temp, salt, mt, ms, miningCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15 covers the sampling reduction method in the pipeline.
func BenchmarkFig15Sampling30(b *testing.B) {
	pipelineBench(b, heat, insitubits.MethodSampling, insitubits.MetricConditionalEntropy, 160, 30, insitubits.Xeon.DiskMBps)
}

// BenchmarkFig16 measures the pairwise metric evaluation the accuracy
// figure is built from — via bitmaps, the path with zero loss.
func BenchmarkFig16PairwiseMetrics(b *testing.B) {
	h, err := insitubits.NewHeat3D(24, 24, 16)
	if err != nil {
		b.Fatal(err)
	}
	m, err := insitubits.NewUniformBins(0, 130, 160)
	if err != nil {
		b.Fatal(err)
	}
	var steps []*insitubits.Index
	for t := 0; t < 8; t++ {
		steps = append(steps, insitubits.BuildIndex(h.Step(1)[0].Data, m))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for a := range steps {
			for c := range steps {
				if a != c {
					insitubits.PairFromBitmaps(steps[a], steps[c])
				}
			}
		}
	}
}

// BenchmarkFig17 measures per-subset MI from bitmaps (the accuracy figure's
// exact reference).
func BenchmarkFig17SubsetMI(b *testing.B) {
	_, _, _, _, xt, xs := fig14Setup(b)
	n := xt.N()
	unit := (n + 59) / 60
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for bin := 0; bin < xt.Bins(); bin++ {
			xt.Bitmap(bin).CountUnits(unit)
		}
		_ = xs
	}
}

// --- Ablations (DESIGN.md §3) ---

func ablationData(b *testing.B) ([]float64, insitubits.Mapper) {
	b.Helper()
	h, err := insitubits.NewHeat3D(48, 48, 32)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		h.Step(1)
	}
	m, err := insitubits.NewUniformBins(0, 130, 160)
	if err != nil {
		b.Fatal(err)
	}
	return h.Step(1)[0].Data, m
}

// Streaming (Algorithm 1, lazy) vs two-phase compression.
func BenchmarkAblationStreamingBuild(b *testing.B) {
	data, m := ablationData(b)
	b.SetBytes(int64(8 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		insitubits.BuildIndex(data, m)
	}
}

func BenchmarkAblationTwoPhaseBuild(b *testing.B) {
	data, m := ablationData(b)
	b.SetBytes(int64(8 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		insitubits.BuildIndexTwoPhase(data, m)
	}
}

// Dense (paper-literal Algorithm 1) vs lazy touched-bin builder.
func BenchmarkAblationDenseBuilder(b *testing.B) {
	data, m := ablationData(b)
	b.SetBytes(int64(8 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		insitubits.BuildIndexAlgorithm1(data, m)
	}
}

// Multi-level pruning vs flat low-level mining.
func BenchmarkAblationFlatMining(b *testing.B) {
	_, _, _, _, xt, xs := fig14Setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := insitubits.Mine(xt, xs, miningCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMultiLevelMining(b *testing.B) {
	_, _, _, _, xt, xs := fig14Setup(b)
	mlt, err := insitubits.BuildMultiLevel(xt, 6)
	if err != nil {
		b.Fatal(err)
	}
	mls, err := insitubits.BuildMultiLevel(xs, 6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := insitubits.MineMultiLevel(mlt, mls, miningCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Z-order vs row-major layout: locality of joint-vector 1-bits.
func BenchmarkAblationMiningZOrder(b *testing.B)   { benchMiningLayout(b, true) }
func BenchmarkAblationMiningRowMajor(b *testing.B) { benchMiningLayout(b, false) }

func benchMiningLayout(b *testing.B, curve bool) {
	b.Helper()
	d, err := insitubits.GenerateOcean(64, 64, 16, 7)
	if err != nil {
		b.Fatal(err)
	}
	get := d.Var
	if curve {
		get = d.VarCurveOrder
	}
	temp, err := get("temperature")
	if err != nil {
		b.Fatal(err)
	}
	salt, err := get("salinity")
	if err != nil {
		b.Fatal(err)
	}
	tlo, thi := insitubits.MinMax(temp)
	slo, shi := insitubits.MinMax(salt)
	mt, _ := insitubits.NewUniformBins(tlo, thi+1e-9, 48)
	ms, _ := insitubits.NewUniformBins(slo, shi+1e-9, 48)
	xt := insitubits.BuildIndex(temp, mt)
	xs := insitubits.BuildIndex(salt, ms)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := insitubits.Mine(xt, xs, miningCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// WAH compressed ops vs BBC decode-operate-encode.
func BenchmarkAblationWAHAnd(b *testing.B) {
	data, m := ablationData(b)
	x := insitubits.BuildIndex(data, m)
	va, vb := busiestVectors(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va.AndCount(vb)
	}
}

func BenchmarkAblationBBCAnd(b *testing.B) {
	data, m := ablationData(b)
	x := insitubits.BuildIndex(data, m)
	va, vb := busiestVectors(x)
	ca := insitubits.BBCFromBitmap(va)
	cb := insitubits.BBCFromBitmap(vb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ca.And(cb)
	}
}

// Three-way codec ablation: the same random bits encoded under each codec,
// measured for logical-op latency and encoded size across bin densities.
// Results are recorded in EXPERIMENTS.md ("Codec ablation").
var codecBenchDensities = []float64{0.001, 0.01, 0.1, 0.5}

var codecBenchIDs = []insitubits.Codec{
	insitubits.CodecWAH, insitubits.CodecBBC, insitubits.CodecDense,
}

func codecBenchPair(b *testing.B, density float64, id insitubits.Codec) (insitubits.Bitmap, insitubits.Bitmap) {
	b.Helper()
	r := rand.New(rand.NewSource(42))
	const n = 1 << 20
	mk := func() insitubits.Bitmap {
		bs := make([]bool, n)
		for i := range bs {
			bs[i] = r.Float64() < density
		}
		return insitubits.EncodeBitmap(insitubits.FromBools(bs), id)
	}
	return mk(), mk()
}

func benchCodecOp(b *testing.B, op func(x, y insitubits.Bitmap)) {
	for _, d := range codecBenchDensities {
		for _, id := range codecBenchIDs {
			b.Run(fmt.Sprintf("%s/d=%g", id, d), func(b *testing.B) {
				x, y := codecBenchPair(b, d, id)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					op(x, y)
				}
				b.ReportMetric(float64(x.SizeBytes()), "enc-bytes")
			})
		}
	}
}

func BenchmarkCodecAnd(b *testing.B) {
	benchCodecOp(b, func(x, y insitubits.Bitmap) { x.And(y) })
}

func BenchmarkCodecAndCount(b *testing.B) {
	benchCodecOp(b, func(x, y insitubits.Bitmap) { x.AndCount(y) })
}

func BenchmarkCodecOr(b *testing.B) {
	benchCodecOp(b, func(x, y insitubits.Bitmap) { x.Or(y) })
}

func BenchmarkCodecCountRange(b *testing.B) {
	benchCodecOp(b, func(x, y insitubits.Bitmap) { x.CountRange(x.Len()/4, 3*x.Len()/4) })
}

func busiestVectors(x *insitubits.Index) (insitubits.Bitmap, insitubits.Bitmap) {
	best, second := 0, 1
	for bin := 0; bin < x.Bins(); bin++ {
		if x.Count(bin) > x.Count(best) {
			second = best
			best = bin
		}
	}
	return x.Bitmap(best), x.Bitmap(second)
}

// Decode-based vs AND-based joint histograms (see metrics package docs).
func BenchmarkAblationJointDecode(b *testing.B) {
	data, m := ablationData(b)
	x := insitubits.BuildIndex(data, m)
	y := insitubits.BuildIndex(data, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		insitubits.JointHistogramBitmaps(x, y)
	}
}

func BenchmarkAblationJointAND(b *testing.B) {
	data, m := ablationData(b)
	x := insitubits.BuildIndex(data, m)
	y := insitubits.BuildIndex(data, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		insitubits.JointHistogramBitmapsAND(x, y)
	}
}

// Core allocation: Equation 1/2 calibration cost.
func BenchmarkAblationCalibrate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := insitubits.NewHeat3D(24, 24, 16)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := insitubits.Calibrate(insitubits.PipelineConfig{
			Sim: s, Steps: 8, Select: 2,
			Method: insitubits.MethodBitmaps, Bins: 160,
			Metric: insitubits.MetricConditionalEntropy, Cores: 4,
		}, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Companion analyses (DESIGN.md §1.2b) ---

// BenchmarkQueryAggregation measures bounded aggregation over one index.
func BenchmarkQueryAggregation(b *testing.B) {
	data, m := ablationData(b)
	x := insitubits.BuildIndex(data, m)
	sub := insitubits.QuerySubset{ValueLo: 20, ValueHi: 80, SpatialLo: 1000, SpatialHi: len(data) - 1000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := insitubits.SubsetSum(context.Background(), x, sub); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorrelationQuery measures a subset correlation query.
func BenchmarkCorrelationQuery(b *testing.B) {
	_, _, _, _, xt, xs := fig14Setup(b)
	sub := insitubits.QuerySubset{SpatialLo: 0, SpatialHi: xt.N() / 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := insitubits.CorrelationQuery(context.Background(), xt, xs, sub, sub); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubgroupDiscovery measures a full beam search.
func BenchmarkSubgroupDiscovery(b *testing.B) {
	d, err := insitubits.GenerateOcean(32, 32, 8, 7)
	if err != nil {
		b.Fatal(err)
	}
	mk := func(name string) *insitubits.Index {
		data, err := d.VarCurveOrder(name)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := insitubits.MinMax(data)
		m, _ := insitubits.NewUniformBins(lo, hi+1e-9, 16)
		return insitubits.BuildIndex(data, m)
	}
	xt, xs, xo := mk("temperature"), mk("salinity"), mk("oxygen")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := insitubits.DiscoverSubgroups([]*insitubits.Index{xt, xs}, xo,
			insitubits.SubgroupConfig{TopK: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectDP measures the offline DP selection over 20 steps.
func BenchmarkSelectDP(b *testing.B) {
	h, err := insitubits.NewHeat3D(16, 16, 12)
	if err != nil {
		b.Fatal(err)
	}
	m, _ := insitubits.NewUniformBins(0, 130, 96)
	var steps []insitubits.Summary
	for i := 0; i < 20; i++ {
		steps = append(steps, insitubits.NewBitmapSummary(insitubits.BuildIndex(h.Step(1)[0].Data, m)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := insitubits.SelectTimeStepsDP(steps, 6, insitubits.MetricConditionalEntropy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArchiveLoad measures reloading a persisted pipeline output.
func BenchmarkArchiveLoad(b *testing.B) {
	dir := b.TempDir()
	h, err := insitubits.NewHeat3D(16, 16, 12)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := insitubits.RunPipeline(insitubits.PipelineConfig{
		Sim: h, Steps: 12, Select: 4,
		Method: insitubits.MethodBitmaps, Bins: 96,
		Metric: insitubits.MetricConditionalEntropy, Cores: 1,
		OutputDir: dir,
	}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := insitubits.LoadArchive(dir); err != nil {
			b.Fatal(err)
		}
	}
}
