package profiling_test

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"insitubits/internal/binning"
	"insitubits/internal/codec"
	"insitubits/internal/index"
	"insitubits/internal/profiling"
	"insitubits/internal/query"
	"insitubits/internal/telemetry"
)

// TestProfileSmoke is the end-to-end acceptance check for the profiling
// plane (the `make profile-smoke` target): drive a codec-heavy query
// workload across a codec switch (generation bump), capture a CPU
// snapshot on each side, and require that the symbolized delta between
// the two names at least one codec word-loop function. It lives in an
// external package so it exercises the same import path a binary does
// (profiling ← query ← index), and it skips rather than fails when the
// host denies CPU profiling samples (some CI sandboxes do).
func TestProfileSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("CPU capture windows are too slow for -short")
	}
	m, err := binning.NewUniform(0, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]float64, 31*4000)
	for i := range data {
		data[i] = float64((i / 31) % 8)
	}
	// The load goroutine reads the live index through an atomic pointer;
	// the generation bump below publishes a freshly built index the same
	// way the in-situ pipeline does (an index is immutable once shared).
	var cur atomic.Pointer[index.Index]
	cur.Store(index.BuildCodec(data, m, codec.WAH))

	// Background load: the compressed-bitmap word loops the diff must name.
	stop := make(chan struct{})
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		ctx := context.Background()
		for {
			select {
			case <-stop:
				return
			default:
			}
			x := cur.Load()
			s := query.Subset{ValueLo: 0, ValueHi: 8, SpatialLo: 31, SpatialHi: x.N() - 31}
			if _, err := query.Count(ctx, x, s); err != nil {
				panic(err)
			}
			if _, err := query.Sum(ctx, x, query.Subset{ValueLo: 1, ValueHi: 7}); err != nil {
				panic(err)
			}
		}
	}()
	defer func() { close(stop); <-loadDone }()

	reg := telemetry.NewRegistry()
	c := profiling.Start(profiling.Config{
		Registry:    reg,
		Interval:    time.Hour, // the initial snap is snapshot A; B is manual
		CPUDuration: 300 * time.Millisecond,
		Capacity:    4,
	})
	defer c.Stop()

	// Wait for the startup snapshot (it blocks for the CPU window).
	deadline := time.Now().Add(10 * time.Second)
	for len(c.Snapshots()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("startup snapshot never landed")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Generation bump between the two snapshots: build the BBC-coded index
	// off to the side and publish it atomically, so in-flight queries keep
	// reading the WAH index until the swap (recoding a live index in place
	// would race with them).
	genA := cur.Load().Generation()
	x2 := index.BuildCodec(data, m, codec.BBC)
	if x2.Generation() == genA {
		t.Fatalf("rebuild did not bump the generation (still %d)", genA)
	}
	cur.Store(x2)
	snapB, err := c.Snap()
	if err != nil {
		t.Fatal(err)
	}
	metas := c.Snapshots()
	snapA := c.Get(metas[0].ID)

	pa, err := profiling.Parse(snapA.Profiles["cpu"])
	if err != nil {
		t.Fatalf("snapshot A cpu: %v", err)
	}
	pb, err := profiling.Parse(snapB.Profiles["cpu"])
	if err != nil {
		t.Fatalf("snapshot B cpu: %v", err)
	}
	if pa.Total(pa.ValueIndex("")) == 0 || pb.Total(pb.ValueIndex("")) == 0 {
		t.Skip("CPU profiler returned no samples on this host")
	}

	// The acceptance bar: between the two generations the union of top and
	// delta entries names a codec word loop — a function in the bitvec,
	// codec, or index packages (WAH/BBC runs, dense words, or the
	// bin-bitmap walkers that drive them).
	names := map[string]bool{}
	for _, fv := range profiling.Diff(pa, pb, "", 40) {
		names[fv.Name] = true
	}
	for _, fv := range pb.Top("", 40) {
		names[fv.Name] = true
	}
	found := ""
	for name := range names {
		if strings.Contains(name, "bitvec.") || strings.Contains(name, "codec.") ||
			strings.Contains(name, "index.") {
			found = name
			break
		}
	}
	if found == "" {
		t.Errorf("no codec word-loop function in top/diff; saw %d functions: %v",
			len(names), firstN(names, 15))
	} else {
		t.Logf("codec word loop attributed: %s", found)
	}

	// The query prologue labels CPU samples with the op while profiling is
	// enabled; at least one sample should carry it in a 300ms window under
	// sustained load. Advisory (sampling is probabilistic): log, don't fail.
	if by := pb.ByLabel("", "op", 10); len(by) > 0 {
		t.Logf("samples by op label: %+v", by)
	}
}

func firstN(set map[string]bool, n int) []string {
	out := make([]string, 0, n)
	for s := range set {
		if len(out) == n {
			break
		}
		out = append(out, s)
	}
	return out
}
