// Package profiling is the continuous-profiling and resource-attribution
// plane. It has two halves:
//
//   - Labels: query entry points and in-situ pipeline phases tag their
//     goroutines with pprof labels (op, codec, phase, index generation,
//     trace ID) via Label, so every CPU sample the runtime takes is
//     attributable to the work that was running. The disabled path is one
//     atomic load — the same budget the telemetry and qlog gates obey.
//
//   - Collector: a low-duty-cycle background loop snapshots CPU, heap,
//     goroutine, mutex, and block profiles into a fixed ring. Each
//     snapshot is stamped with the in-situ index generation, run phase,
//     and the metrics-history cursor, so a profile joins against the
//     metrics window and trace set from the same moment. A stdlib-only
//     pprof-proto parser (pprofparse.go) symbolizes snapshots into top-N
//     function tables and computes delta profiles between any two
//     snapshots — the evidence trail for "generation 12 got slower
//     because bbc.appendLiteral grew 40% of CPU".
//
// Like the rest of the observability stack: no dependencies beyond the
// standard library, nil-safe handles, and nothing on the hot path unless
// explicitly enabled.
package profiling

import (
	"context"
	"runtime/pprof"
	"sync/atomic"
)

// enabled gates the label plane. Off (the default) Label is one atomic
// load and no allocation.
var enabled atomic.Bool

// Enabled reports whether pprof labeling is on.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns pprof labeling on or off process-wide. The collector's
// Start enables it; standalone use (labels without a collector, e.g. to
// feed an external scrape of /debug/pprof/profile) is also valid.
func SetEnabled(on bool) { enabled.Store(on) }

// noop is the unlabel closure of the disabled path.
func noop() {}

// Label attaches key/value pprof labels to the current goroutine and the
// returned context (child goroutines inherit them). The returned closure
// restores the caller's previous label set — call it when the labeled
// region ends. Pairs with an empty key or value are dropped; a trailing
// odd argument is ignored. When profiling is disabled this is one atomic
// load.
func Label(ctx context.Context, kv ...string) (context.Context, func()) {
	if !enabled.Load() {
		return ctx, noop
	}
	pairs := make([]string, 0, len(kv))
	for i := 0; i+1 < len(kv); i += 2 {
		if kv[i] != "" && kv[i+1] != "" {
			pairs = append(pairs, kv[i], kv[i+1])
		}
	}
	if len(pairs) == 0 {
		return ctx, noop
	}
	prev := ctx
	ctx = pprof.WithLabels(ctx, pprof.Labels(pairs...))
	pprof.SetGoroutineLabels(ctx)
	return ctx, func() { pprof.SetGoroutineLabels(prev) }
}

// Do runs fn with the given labels applied (pprof.Do semantics: labels
// are restored when fn returns). One atomic load when disabled.
func Do(ctx context.Context, fn func(ctx context.Context), kv ...string) {
	ctx, unlabel := Label(ctx, kv...)
	defer unlabel()
	fn(ctx)
}

// RunInfo is the pipeline state a snapshot is stamped with: the current
// index generation, the in-situ phase executing ("simulate", "reduce",
// "select", "write", "done"), and the simulation step.
type RunInfo struct {
	Generation uint64 `json:"generation"`
	Phase      string `json:"phase,omitempty"`
	Step       int    `json:"step,omitempty"`
}

// runInfo is the registered provider (the in-situ pipeline's run
// telemetry registers itself here; see internal/insitu).
var runInfo atomic.Pointer[func() RunInfo]

// SetRunInfo registers the provider the collector stamps snapshots from.
// A nil fn unregisters.
func SetRunInfo(fn func() RunInfo) {
	if fn == nil {
		runInfo.Store(nil)
		return
	}
	runInfo.Store(&fn)
}

// currentRunInfo evaluates the registered provider, if any.
func currentRunInfo() RunInfo {
	if fn := runInfo.Load(); fn != nil {
		return (*fn)()
	}
	return RunInfo{}
}
