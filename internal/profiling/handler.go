package profiling

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Handler serves the collector's ring over HTTP (mounted by Start at
// /debug/profiles on the registry's debug server):
//
//	GET ?                         ring listing (Status JSON)
//	GET ?id=N&kind=cpu            raw gzipped profile.proto — feed it to
//	                              `go tool pprof`
//	GET ?id=N&kind=cpu&top=20     symbolized top-N JSON (&sample= picks a
//	                              sample type, &by=<label> aggregates by
//	                              pprof label instead of function)
//	GET ?diff=A,B&kind=cpu&top=20 symbolized delta profile (B − A)
func (c *Collector) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		kind := q.Get("kind")
		if kind == "" {
			kind = "cpu"
		}
		if diff := q.Get("diff"); diff != "" {
			c.serveDiff(w, diff, kind, q)
			return
		}
		idStr := q.Get("id")
		if idStr == "" {
			writeJSON(w, c.Status())
			return
		}
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			http.Error(w, "bad id "+idStr, http.StatusBadRequest)
			return
		}
		snap := c.Get(id)
		if snap == nil {
			http.Error(w, fmt.Sprintf("snapshot %d not in ring", id), http.StatusNotFound)
			return
		}
		data := snap.Profiles[kind]
		if data == nil {
			http.Error(w, fmt.Sprintf("snapshot %d has no %q profile", id, kind), http.StatusNotFound)
			return
		}
		topN, hasTop := topParam(q.Get("top"))
		byLabel := q.Get("by")
		if !hasTop && byLabel == "" {
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Disposition",
				fmt.Sprintf("attachment; filename=%s-%d.pb.gz", kind, id))
			w.Write(data) //nolint:errcheck // best-effort over HTTP
			return
		}
		p, err := Parse(data)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		sample := q.Get("sample")
		rep := TopReport{
			Kind:       kind,
			From:       id,
			To:         id,
			FromMeta:   snap.Meta,
			ToMeta:     snap.Meta,
			SampleType: sampleTypeName(p, sample),
			Unit:       sampleUnit(p, sample),
			Total:      p.Total(p.ValueIndex(sample)),
		}
		if byLabel != "" {
			rep.ByLabel = byLabel
			rep.Labels = p.ByLabel(sample, byLabel, topN)
		} else {
			rep.Entries = p.Top(sample, topN)
		}
		writeJSON(w, rep)
	})
}

// TopReport is the JSON shape of the symbolized top and diff views.
type TopReport struct {
	Kind       string       `json:"kind"`
	SampleType string       `json:"sample_type"`
	Unit       string       `json:"unit"`
	From       uint64       `json:"from"`
	To         uint64       `json:"to"`
	FromMeta   SnapshotMeta `json:"from_meta"`
	ToMeta     SnapshotMeta `json:"to_meta"`
	// Total is the summed sample value: of the single snapshot for a top
	// view, of the newer snapshot for a diff.
	Total   int64        `json:"total"`
	Entries []FuncValue  `json:"entries,omitempty"`
	ByLabel string       `json:"by_label,omitempty"`
	Labels  []LabelValue `json:"labels,omitempty"`
}

func (c *Collector) serveDiff(w http.ResponseWriter, diff, kind string, q map[string][]string) {
	lo, hi, ok := strings.Cut(diff, ",")
	if !ok {
		http.Error(w, "diff wants two ids: ?diff=A,B", http.StatusBadRequest)
		return
	}
	fromID, err1 := strconv.ParseUint(strings.TrimSpace(lo), 10, 64)
	toID, err2 := strconv.ParseUint(strings.TrimSpace(hi), 10, 64)
	if err1 != nil || err2 != nil {
		http.Error(w, "bad diff ids "+diff, http.StatusBadRequest)
		return
	}
	from, to := c.Get(fromID), c.Get(toID)
	if from == nil || to == nil {
		http.Error(w, "diff snapshot not in ring", http.StatusNotFound)
		return
	}
	fp, err := Parse(from.Profiles[kind])
	if err != nil {
		http.Error(w, fmt.Sprintf("snapshot %d: %v", fromID, err), http.StatusInternalServerError)
		return
	}
	tp, err := Parse(to.Profiles[kind])
	if err != nil {
		http.Error(w, fmt.Sprintf("snapshot %d: %v", toID, err), http.StatusInternalServerError)
		return
	}
	var sample string
	if v := q["sample"]; len(v) > 0 {
		sample = v[0]
	}
	topN := 20
	if v := q["top"]; len(v) > 0 {
		if n, ok := topParam(v[0]); ok {
			topN = n
		}
	}
	writeJSON(w, TopReport{
		Kind:       kind,
		SampleType: sampleTypeName(tp, sample),
		Unit:       sampleUnit(tp, sample),
		From:       fromID,
		To:         toID,
		FromMeta:   from.Meta,
		ToMeta:     to.Meta,
		Total:      tp.Total(tp.ValueIndex(sample)),
		Entries:    Diff(fp, tp, sample, topN),
	})
}

func sampleTypeName(p *Profile, sample string) string {
	if i := p.ValueIndex(sample); i >= 0 {
		return p.SampleTypes[i].Type
	}
	return sample
}

func sampleUnit(p *Profile, sample string) string {
	if i := p.ValueIndex(sample); i >= 0 {
		return p.SampleTypes[i].Unit
	}
	return ""
}

// topParam parses the &top= count; (0, false) when absent or malformed.
func topParam(s string) (int, bool) {
	if s == "" {
		return 0, false
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(data) //nolint:errcheck // best-effort over HTTP
}
