package profiling

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// A minimal reader for the pprof profile.proto wire format, written
// against the protobuf encoding spec directly so the repo keeps its
// no-dependency rule. It decodes exactly the fields the delta/top
// reports need — sample types, samples (stacks, values, labels),
// locations, functions, the string table, and the timing header — and
// skips everything else wire-compatibly.
//
// profile.proto field numbers (github.com/google/pprof/proto/profile.proto):
//
//	Profile:  1 sample_type, 2 sample, 4 location, 5 function,
//	          6 string_table, 9 time_nanos, 10 duration_nanos,
//	          11 period_type, 12 period
//	Sample:   1 location_id (repeated), 2 value (repeated), 3 label
//	Label:    1 key, 2 str, 3 num            (key/str are string indices)
//	Location: 1 id, 4 line (repeated)
//	Line:     1 function_id
//	Function: 1 id, 2 name                   (name is a string index)
//	ValueType: 1 type, 2 unit                (string indices)

// ValueType names one sample dimension, e.g. {cpu, nanoseconds}.
type ValueType struct {
	Type string `json:"type"`
	Unit string `json:"unit"`
}

// Sample is one decoded stack sample: function names leaf-first, one
// value per sample type, plus its pprof labels.
type Sample struct {
	Funcs     []string
	Values    []int64
	Labels    map[string]string
	NumLabels map[string]int64
}

// Profile is a decoded pprof profile.
type Profile struct {
	SampleTypes   []ValueType
	Samples       []Sample
	TimeNanos     int64
	DurationNanos int64
	PeriodType    ValueType
	Period        int64
}

// Parse decodes a pprof profile in profile.proto format, gzipped (as the
// runtime writes it) or raw.
func Parse(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("profiling: gunzip: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("profiling: gunzip: %w", err)
		}
		data = raw
	}
	// First pass: collect raw sub-messages and the string table. The
	// encoder may emit sections in any order, so resolution waits until
	// everything is read.
	var (
		strs        []string
		sampleTypes [][]byte
		samples     [][]byte
		locations   [][]byte
		functions   [][]byte
		periodType  []byte
		p           = &Profile{}
	)
	err := eachField(data, func(num int, val uint64, sub []byte) error {
		switch num {
		case 1:
			sampleTypes = append(sampleTypes, sub)
		case 2:
			samples = append(samples, sub)
		case 4:
			locations = append(locations, sub)
		case 5:
			functions = append(functions, sub)
		case 6:
			strs = append(strs, string(sub))
		case 9:
			p.TimeNanos = int64(val)
		case 10:
			p.DurationNanos = int64(val)
		case 11:
			periodType = sub
		case 12:
			p.Period = int64(val)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("profiling: parse profile: %w", err)
	}
	str := func(i uint64) string {
		if i < uint64(len(strs)) {
			return strs[i]
		}
		return ""
	}
	parseVT := func(sub []byte) ValueType {
		var vt ValueType
		eachField(sub, func(num int, val uint64, _ []byte) error { //nolint:errcheck // fn never errors
			switch num {
			case 1:
				vt.Type = str(val)
			case 2:
				vt.Unit = str(val)
			}
			return nil
		})
		return vt
	}
	for _, sub := range sampleTypes {
		p.SampleTypes = append(p.SampleTypes, parseVT(sub))
	}
	if periodType != nil {
		p.PeriodType = parseVT(periodType)
	}
	// Functions: id → name.
	funcName := make(map[uint64]string, len(functions))
	for _, sub := range functions {
		var id, name uint64
		eachField(sub, func(num int, val uint64, _ []byte) error { //nolint:errcheck
			switch num {
			case 1:
				id = val
			case 2:
				name = val
			}
			return nil
		})
		funcName[id] = str(name)
	}
	// Locations: id → function names (inline frames leaf-first, which is
	// the order Line entries are encoded in).
	locFuncs := make(map[uint64][]string, len(locations))
	for _, sub := range locations {
		var id uint64
		var fns []string
		eachField(sub, func(num int, val uint64, line []byte) error { //nolint:errcheck
			switch num {
			case 1:
				id = val
			case 4:
				eachField(line, func(lnum int, lval uint64, _ []byte) error {
					if lnum == 1 {
						if name := funcName[lval]; name != "" {
							fns = append(fns, name)
						}
					}
					return nil
				})
			}
			return nil
		})
		locFuncs[id] = fns
	}
	// Samples.
	for _, sub := range samples {
		var s Sample
		eachField(sub, func(num int, val uint64, lsub []byte) error { //nolint:errcheck
			switch num {
			case 1: // location_id: packed or repeated varint
				if lsub != nil {
					eachVarint(lsub, func(v uint64) {
						s.Funcs = append(s.Funcs, locFuncs[v]...)
					})
				} else {
					s.Funcs = append(s.Funcs, locFuncs[val]...)
				}
			case 2: // value
				if lsub != nil {
					eachVarint(lsub, func(v uint64) { s.Values = append(s.Values, int64(v)) })
				} else {
					s.Values = append(s.Values, int64(val))
				}
			case 3: // label
				var key, sval uint64
				var nval int64
				var hasNum bool
				eachField(lsub, func(lnum int, lval uint64, _ []byte) error {
					switch lnum {
					case 1:
						key = lval
					case 2:
						sval = lval
					case 3:
						nval, hasNum = int64(lval), true
					}
					return nil
				})
				if k := str(key); k != "" {
					if sv := str(sval); sv != "" {
						if s.Labels == nil {
							s.Labels = make(map[string]string, 4)
						}
						s.Labels[k] = sv
					} else if hasNum {
						if s.NumLabels == nil {
							s.NumLabels = make(map[string]int64, 2)
						}
						s.NumLabels[k] = nval
					}
				}
			}
			return nil
		})
		p.Samples = append(p.Samples, s)
	}
	return p, nil
}

// eachField walks one protobuf message, invoking fn per field with the
// varint value (wire type 0) or sub-message/bytes payload (wire type 2;
// val is 0 and sub is non-nil). Fixed32/64 fields are skipped.
func eachField(buf []byte, fn func(num int, val uint64, sub []byte) error) error {
	for len(buf) > 0 {
		tag, n := uvarint(buf)
		if n <= 0 {
			return fmt.Errorf("bad field tag")
		}
		buf = buf[n:]
		num := int(tag >> 3)
		switch tag & 7 {
		case 0: // varint
			v, n := uvarint(buf)
			if n <= 0 {
				return fmt.Errorf("bad varint in field %d", num)
			}
			buf = buf[n:]
			if err := fn(num, v, nil); err != nil {
				return err
			}
		case 1: // fixed64
			if len(buf) < 8 {
				return fmt.Errorf("short fixed64 in field %d", num)
			}
			buf = buf[8:]
		case 2: // length-delimited
			l, n := uvarint(buf)
			if n <= 0 || uint64(len(buf)-n) < l {
				return fmt.Errorf("bad length in field %d", num)
			}
			if err := fn(num, 0, buf[n:n+int(l)]); err != nil {
				return err
			}
			buf = buf[n+int(l):]
		case 5: // fixed32
			if len(buf) < 4 {
				return fmt.Errorf("short fixed32 in field %d", num)
			}
			buf = buf[4:]
		default:
			return fmt.Errorf("unsupported wire type %d in field %d", tag&7, num)
		}
	}
	return nil
}

// eachVarint decodes a packed varint payload.
func eachVarint(buf []byte, fn func(v uint64)) {
	for len(buf) > 0 {
		v, n := uvarint(buf)
		if n <= 0 {
			return
		}
		fn(v)
		buf = buf[n:]
	}
}

// uvarint is binary.Uvarint without the import, returning (value, width).
func uvarint(buf []byte) (uint64, int) {
	var v uint64
	var shift uint
	for i, b := range buf {
		if i == 10 {
			return 0, -1
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, i + 1
		}
		shift += 7
	}
	return 0, 0
}

// ---------------------------------------------------------------------------
// Symbolized reports.

// FuncValue is one row of a top or delta report: flat is the value
// attributed to samples where the function is the leaf frame, cum the
// value of every sample the function appears in. In a delta report both
// are (to − from) differences and may be negative (improvements).
type FuncValue struct {
	Name string `json:"name"`
	Flat int64  `json:"flat"`
	Cum  int64  `json:"cum"`
}

// LabelValue is one row of a by-label attribution report.
type LabelValue struct {
	Value string `json:"value"`
	Total int64  `json:"total"`
}

// ValueIndex finds the sample-type index matching name ("cpu", "samples",
// "inuse_space", "alloc_space", ...). An empty name selects the last
// sample type — the pprof default (cpu time for CPU profiles, inuse_space
// for heap). Returns -1 when the name matches nothing.
func (p *Profile) ValueIndex(name string) int {
	if p == nil || len(p.SampleTypes) == 0 {
		return -1
	}
	if name == "" {
		return len(p.SampleTypes) - 1
	}
	for i, vt := range p.SampleTypes {
		if vt.Type == name {
			return i
		}
	}
	return -1
}

// Total sums every sample's value at index vi.
func (p *Profile) Total(vi int) int64 {
	var total int64
	if p == nil {
		return 0
	}
	for _, s := range p.Samples {
		if vi >= 0 && vi < len(s.Values) {
			total += s.Values[vi]
		}
	}
	return total
}

// flatCum aggregates the profile by function name at value index vi.
func (p *Profile) flatCum(vi int) map[string]*FuncValue {
	out := make(map[string]*FuncValue)
	if p == nil {
		return out
	}
	for _, s := range p.Samples {
		if vi < 0 || vi >= len(s.Values) {
			continue
		}
		v := s.Values[vi]
		if v == 0 || len(s.Funcs) == 0 {
			continue
		}
		get := func(name string) *FuncValue {
			fv := out[name]
			if fv == nil {
				fv = &FuncValue{Name: name}
				out[name] = fv
			}
			return fv
		}
		get(s.Funcs[0]).Flat += v
		seen := make(map[string]bool, len(s.Funcs))
		for _, name := range s.Funcs {
			if !seen[name] {
				seen[name] = true
				get(name).Cum += v
			}
		}
	}
	return out
}

// Top returns the top-n functions by flat value for the named sample type.
func (p *Profile) Top(sampleType string, n int) []FuncValue {
	return rank(p.flatCum(p.ValueIndex(sampleType)), n)
}

// ByLabel aggregates total value per distinct value of the pprof label
// key — the resource-attribution view: ByLabel("cpu", "op", 10) says
// which query operators burned the CPU, ByLabel("cpu", "phase", 10)
// which pipeline phases.
func (p *Profile) ByLabel(sampleType, key string, n int) []LabelValue {
	vi := p.ValueIndex(sampleType)
	totals := make(map[string]int64)
	if p != nil && vi >= 0 {
		for _, s := range p.Samples {
			if vi >= len(s.Values) {
				continue
			}
			val := s.Labels[key]
			if val == "" {
				val = "(unlabeled)"
			}
			totals[val] += s.Values[vi]
		}
	}
	out := make([]LabelValue, 0, len(totals))
	for v, t := range totals {
		out = append(out, LabelValue{Value: v, Total: t})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Value < out[j].Value
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Diff computes the symbolized delta profile (to − from) by function
// name, sorted by flat regression first. CPU snapshots are fixed-length
// windows, so the delta compares two equal windows; cumulative kinds
// (mutex, block, alloc_space) yield the growth between the snapshots.
func Diff(from, to *Profile, sampleType string, n int) []FuncValue {
	a := from.flatCum(from.ValueIndex(sampleType))
	b := to.flatCum(to.ValueIndex(sampleType))
	merged := make(map[string]*FuncValue, len(b))
	for name, fv := range b {
		merged[name] = &FuncValue{Name: name, Flat: fv.Flat, Cum: fv.Cum}
	}
	for name, fv := range a {
		m := merged[name]
		if m == nil {
			m = &FuncValue{Name: name}
			merged[name] = m
		}
		m.Flat -= fv.Flat
		m.Cum -= fv.Cum
	}
	for name, fv := range merged {
		if fv.Flat == 0 && fv.Cum == 0 {
			delete(merged, name)
		}
	}
	return rank(merged, n)
}

// rank sorts by flat descending (name ascending on ties) and truncates.
func rank(m map[string]*FuncValue, n int) []FuncValue {
	out := make([]FuncValue, 0, len(m))
	for _, fv := range m {
		out = append(out, *fv)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flat != out[j].Flat {
			return out[i].Flat > out[j].Flat
		}
		return out[i].Name < out[j].Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
