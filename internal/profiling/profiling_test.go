package profiling

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"net/http/httptest"
	"runtime/pprof"
	"testing"
	"time"
)

// ---------------------------------------------------------------------------
// Hand-rolled profile.proto encoder — the parser's test fixture builder.
// Encoding by hand keeps the round-trip independent of the runtime's
// profile writer, so parser regressions can't hide behind it.

type protoBuf struct{ bytes.Buffer }

func (b *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		b.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	b.WriteByte(byte(v))
}

func (b *protoBuf) tag(num, wire int) { b.varint(uint64(num)<<3 | uint64(wire)) }

func (b *protoBuf) vfield(num int, v uint64) {
	b.tag(num, 0)
	b.varint(v)
}

func (b *protoBuf) bfield(num int, data []byte) {
	b.tag(num, 2)
	b.varint(uint64(len(data)))
	b.Write(data)
}

func (b *protoBuf) msg(num int, fn func(*protoBuf)) {
	var sub protoBuf
	fn(&sub)
	b.bfield(num, sub.Bytes())
}

// testProfile encodes a two-sample-type profile:
//
//	strings:   1 samples, 2 count, 3 cpu, 4 nanoseconds,
//	           5 bitvec.leaf, 6 query.root, 7 op, 8 count
//	functions: 1 bitvec.leaf, 2 query.root
//	locations: 1 → bitvec.leaf, 2 → query.root
//	sample A:  stack [leaf, root] (packed ids), values [3, leafCPU],
//	           label op=count
//	sample B:  stack [root] (unpacked id), values [2, rootCPU]
func testProfile(t *testing.T, leafCPU, rootCPU int64) []byte {
	t.Helper()
	var p protoBuf
	for _, s := range []string{"", "samples", "count", "cpu", "nanoseconds",
		"bitvec.leaf", "query.root", "op", "count"} {
		p.bfield(6, []byte(s))
	}
	p.msg(1, func(b *protoBuf) { b.vfield(1, 1); b.vfield(2, 2) }) // samples/count
	p.msg(1, func(b *protoBuf) { b.vfield(1, 3); b.vfield(2, 4) }) // cpu/nanoseconds
	for id := uint64(1); id <= 2; id++ {
		id := id
		p.msg(5, func(b *protoBuf) { b.vfield(1, id); b.vfield(2, 4+id) })
		p.msg(4, func(b *protoBuf) {
			b.vfield(1, id)
			b.msg(4, func(l *protoBuf) { l.vfield(1, id) })
		})
	}
	p.msg(2, func(b *protoBuf) {
		var ids, vals protoBuf
		ids.varint(1)
		ids.varint(2)
		b.bfield(1, ids.Bytes())
		vals.varint(3)
		vals.varint(uint64(leafCPU))
		b.bfield(2, vals.Bytes())
		b.msg(3, func(l *protoBuf) { l.vfield(1, 7); l.vfield(2, 8) })
	})
	p.msg(2, func(b *protoBuf) {
		b.vfield(1, 2) // unpacked location_id
		b.vfield(2, 2)
		b.vfield(2, uint64(rootCPU))
	})
	p.vfield(9, 1700000000_000000000)
	p.vfield(10, uint64(time.Second.Nanoseconds()))
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(p.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return gz.Bytes()
}

func TestParseTopDiffByLabel(t *testing.T) {
	p, err := Parse(testProfile(t, 300, 200))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.SampleTypes) != 2 || p.SampleTypes[1] != (ValueType{"cpu", "nanoseconds"}) {
		t.Fatalf("sample types = %+v", p.SampleTypes)
	}
	if p.DurationNanos != time.Second.Nanoseconds() {
		t.Errorf("duration = %d", p.DurationNanos)
	}
	// Empty sample type selects the last ("cpu"), the pprof default.
	if got := p.ValueIndex(""); got != 1 {
		t.Fatalf("default value index = %d", got)
	}
	if total := p.Total(1); total != 500 {
		t.Errorf("total = %d, want 500", total)
	}
	top := p.Top("", 10)
	want := []FuncValue{
		{Name: "bitvec.leaf", Flat: 300, Cum: 300},
		{Name: "query.root", Flat: 200, Cum: 500},
	}
	if len(top) != 2 || top[0] != want[0] || top[1] != want[1] {
		t.Errorf("top = %+v, want %+v", top, want)
	}
	// The "samples" dimension is addressable by name.
	if st := p.Top("samples", 1); len(st) != 1 || st[0].Flat != 3 {
		t.Errorf("samples top = %+v", st)
	}
	by := p.ByLabel("", "op", 10)
	if len(by) != 2 || by[0] != (LabelValue{"count", 300}) || by[1] != (LabelValue{"(unlabeled)", 200}) {
		t.Errorf("by label = %+v", by)
	}

	// Diff: leaf grew 300→700, root shrank 200→100.
	p2, err := Parse(testProfile(t, 700, 100))
	if err != nil {
		t.Fatal(err)
	}
	d := Diff(p, p2, "", 10)
	if len(d) != 2 || d[0] != (FuncValue{Name: "bitvec.leaf", Flat: 400, Cum: 400}) {
		t.Fatalf("diff = %+v", d)
	}
	if d[1].Name != "query.root" || d[1].Flat != -100 {
		t.Errorf("diff shrink = %+v", d[1])
	}
	// Identical profiles diff to nothing.
	if d := Diff(p, p, "", 10); len(d) != 0 {
		t.Errorf("self-diff = %+v", d)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte{0x1f, 0x8b, 0x00}); err == nil {
		t.Error("truncated gzip parsed")
	}
	if _, err := Parse([]byte{0xff, 0xff, 0xff}); err == nil {
		t.Error("garbage proto parsed")
	}
	if p, err := Parse(nil); err != nil || len(p.Samples) != 0 {
		t.Errorf("empty profile: %v %+v", err, p)
	}
}

func TestLabelGate(t *testing.T) {
	SetEnabled(false)
	ctx := context.Background()
	got, unlabel := Label(ctx, "op", "count")
	if got != ctx {
		t.Error("disabled Label changed the context")
	}
	unlabel()

	SetEnabled(true)
	defer SetEnabled(false)
	ctx2, unlabel := Label(ctx, "op", "count", "", "dropped", "odd")
	if ctx2 == ctx {
		t.Error("enabled Label did not attach labels")
	}
	if v, ok := pprof.Label(ctx2, "op"); !ok || v != "count" {
		t.Errorf("label op = %q %v", v, ok)
	}
	if _, ok := pprof.Label(ctx2, ""); ok {
		t.Error("empty key survived")
	}
	unlabel()
	var seen string
	Do(ctx, func(ctx context.Context) {
		seen, _ = pprof.Label(ctx, "phase")
	}, "phase", "reduce")
	if seen != "reduce" {
		t.Errorf("Do label = %q", seen)
	}
	// All-empty pairs collapse to a no-op even when enabled.
	if got, _ := Label(ctx, "", ""); got != ctx {
		t.Error("empty pairs allocated a label set")
	}
}

// newTestCollector builds an unstarted collector (no background loop, no
// global state) so tests drive Snap deterministically.
func newTestCollector(capacity int, cpu time.Duration) *Collector {
	cfg := Config{Interval: time.Hour, CPUDuration: cpu, Capacity: capacity,
		MutexFraction: -1, BlockRateNs: -1}
	cfg.defaults()
	cfg.Registry = nil // exercise nil-safe counters
	return &Collector{
		cfg:    cfg,
		ring:   make([]*Snapshot, cfg.Capacity),
		nextID: 1,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

func TestCollectorRingAndHandler(t *testing.T) {
	c := newTestCollector(2, 10*time.Millisecond)
	for i := 0; i < 3; i++ {
		if _, err := c.Snap(); err != nil {
			t.Fatalf("snap %d: %v", i, err)
		}
	}
	metas := c.Snapshots()
	if len(metas) != 2 || metas[0].ID != 2 || metas[1].ID != 3 {
		t.Fatalf("ring metas = %+v", metas)
	}
	for _, m := range metas {
		if m.Sizes["goroutine"] == 0 || m.Sizes["heap"] == 0 || m.Sizes["cpu"] == 0 {
			t.Errorf("snapshot %d missing kinds: %v", m.ID, m.Sizes)
		}
	}
	if c.Get(1) != nil {
		t.Error("evicted snapshot still reachable")
	}
	if got := c.Latest(1); len(got) != 1 || got[0].Meta.ID != 3 {
		t.Errorf("latest = %+v", got)
	}
	// Every stored profile parses as valid pprof proto.
	snap := c.Get(3)
	for kind, data := range snap.Profiles {
		if _, err := Parse(data); err != nil {
			t.Errorf("kind %s: %v", kind, err)
		}
	}

	h := c.Handler()
	get := func(url string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
		return rr
	}
	// Listing.
	rr := get("/debug/profiles")
	var st Status
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Snapshots) != 2 || st.Capacity != 2 {
		t.Errorf("status = %+v", st)
	}
	// Raw fetch is gzip (pprof-compatible).
	rr = get("/debug/profiles?id=3&kind=goroutine")
	if body := rr.Body.Bytes(); len(body) < 2 || body[0] != 0x1f || body[1] != 0x8b {
		t.Error("raw fetch not gzipped proto")
	}
	// Symbolized top: the goroutine profile always has samples.
	rr = get("/debug/profiles?id=3&kind=goroutine&top=5")
	var rep TopReport
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Total == 0 || len(rep.Entries) == 0 {
		t.Errorf("goroutine top empty: %+v", rep)
	}
	// Diff between the two retained snapshots.
	rr = get("/debug/profiles?diff=2,3&kind=goroutine&top=5")
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.From != 2 || rep.To != 3 {
		t.Errorf("diff report ids = %d,%d", rep.From, rep.To)
	}
	// Error paths.
	for url, want := range map[string]int{
		"/debug/profiles?id=99":          404,
		"/debug/profiles?id=bogus":       400,
		"/debug/profiles?diff=2":         400,
		"/debug/profiles?diff=1,3":       404,
		"/debug/profiles?id=3&kind=none": 404,
	} {
		if rr := get(url); rr.Code != want {
			t.Errorf("%s → %d, want %d", url, rr.Code, want)
		}
	}
}

func TestRunInfoStamp(t *testing.T) {
	SetRunInfo(func() RunInfo { return RunInfo{Generation: 42, Phase: "reduce", Step: 7} })
	defer SetRunInfo(nil)
	c := newTestCollector(2, time.Millisecond)
	s, err := c.Snap()
	if err != nil {
		t.Fatal(err)
	}
	if s.Meta.Generation != 42 || s.Meta.Phase != "reduce" || s.Meta.Step != 7 {
		t.Errorf("meta = %+v", s.Meta)
	}
	SetRunInfo(nil)
	s2, _ := c.Snap()
	if s2.Meta.Generation != 0 {
		t.Errorf("unregistered run info still stamped: %+v", s2.Meta)
	}
}
