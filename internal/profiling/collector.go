package profiling

import (
	"bytes"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"insitubits/internal/telemetry"
)

// StatusName is the registry status key the collector publishes under;
// /debug/profiles serves the same data.
const StatusName = "profiling"

// Kinds are the profile kinds every snapshot carries. CPU is a sampled
// window of Config.CPUDuration; the others are instantaneous (heap,
// goroutine) or cumulative-since-start (mutex, block) states.
var Kinds = []string{"cpu", "heap", "goroutine", "mutex", "block"}

// Config parameterizes a Collector. The zero value gets sane defaults:
// the Default telemetry registry, a 30s cycle with a 1s CPU window, a
// 16-snapshot ring, mutex sampling at 1/100 events, and block sampling
// at 1ms granularity.
type Config struct {
	// Registry receives the collector's own counters, the "profiling"
	// status provider, and the /debug/profiles handler.
	Registry *telemetry.Registry
	// History, when set, stamps each snapshot with the metrics-history
	// cursor at capture time so profiles align with metric windows.
	History *telemetry.History
	// Interval is the cycle period; CPUDuration the CPU sampling window
	// inside each cycle (duty cycle = CPUDuration/Interval).
	Interval    time.Duration
	CPUDuration time.Duration
	// Capacity is the snapshot ring size.
	Capacity int
	// MutexFraction and BlockRateNs are passed to
	// runtime.SetMutexProfileFraction / SetBlockProfileRate while the
	// collector runs (restored on Stop). Zero means the defaults; a
	// negative value leaves the runtime setting untouched.
	MutexFraction int
	BlockRateNs   int
}

func (c *Config) defaults() {
	if c.Registry == nil {
		c.Registry = telemetry.Default
	}
	if c.Interval <= 0 {
		c.Interval = 30 * time.Second
	}
	if c.CPUDuration <= 0 {
		c.CPUDuration = time.Second
	}
	if c.CPUDuration > c.Interval/2 {
		c.CPUDuration = c.Interval / 2
	}
	if c.Capacity <= 0 {
		c.Capacity = 16
	}
	if c.MutexFraction == 0 {
		c.MutexFraction = 100
	}
	if c.BlockRateNs == 0 {
		c.BlockRateNs = int(time.Millisecond)
	}
}

// Snapshot is one captured profile set plus the correlation stamps that
// tie it to the other observability planes.
type Snapshot struct {
	Meta SnapshotMeta
	// Profiles maps kind → gzipped profile.proto bytes, exactly what
	// `go tool pprof` reads.
	Profiles map[string][]byte
}

// SnapshotMeta is the ring-listing view of a snapshot.
type SnapshotMeta struct {
	ID            uint64         `json:"id"`
	UnixNs        int64          `json:"unix_ns"`
	CPUWindowNs   int64          `json:"cpu_window_ns"`
	Generation    uint64         `json:"generation"`
	Phase         string         `json:"phase,omitempty"`
	Step          int            `json:"step,omitempty"`
	HistoryCursor uint64         `json:"history_cursor"`
	Sizes         map[string]int `json:"sizes"`
}

// Collector is the background profile snapshotter. Build one with Start;
// tests drive Snap directly for determinism.
type Collector struct {
	cfg Config

	mu     sync.Mutex
	ring   []*Snapshot
	next   int
	full   bool
	nextID uint64

	snapshots *telemetry.Counter
	errors    *telemetry.Counter

	prevMutex int
	stop      chan struct{}
	stopOnce  sync.Once
	done      chan struct{}
}

// Start builds a collector, enables the label plane and the mutex/block
// sampling rates, registers the "profiling" status provider and the
// /debug/profiles handler on the registry, and starts the periodic
// capture loop. Stop it with Stop.
func Start(cfg Config) *Collector {
	cfg.defaults()
	c := &Collector{
		cfg:       cfg,
		ring:      make([]*Snapshot, cfg.Capacity),
		nextID:    1,
		snapshots: cfg.Registry.Counter("profiling.snapshots"),
		errors:    cfg.Registry.Counter("profiling.errors"),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	SetEnabled(true)
	if cfg.MutexFraction >= 0 {
		c.prevMutex = runtime.SetMutexProfileFraction(cfg.MutexFraction)
	}
	if cfg.BlockRateNs >= 0 {
		runtime.SetBlockProfileRate(cfg.BlockRateNs)
	}
	cfg.Registry.PublishStatus(StatusName, func() any { return c.Status() })
	cfg.Registry.RegisterDebugHandler("/debug/profiles", c.Handler())
	go c.run()
	return c
}

func (c *Collector) run() {
	defer close(c.done)
	tick := time.NewTicker(c.cfg.Interval)
	defer tick.Stop()
	c.Snap() //nolint:errcheck // errors are counted, the loop goes on
	for {
		select {
		case <-tick.C:
			c.Snap() //nolint:errcheck
		case <-c.stop:
			return
		}
	}
}

// Snap captures one snapshot now and appends it to the ring. The CPU
// window blocks for Config.CPUDuration (interrupted by Stop); the other
// kinds are instantaneous. Safe for concurrent use with readers, but
// only one Snap runs at a time (CPU profiling is process-global).
func (c *Collector) Snap() (*Snapshot, error) {
	if c == nil {
		return nil, fmt.Errorf("profiling: nil collector")
	}
	snap := &Snapshot{Profiles: make(map[string][]byte, len(Kinds))}
	var firstErr error
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		// Another CPU profile is running (a /debug/pprof/profile fetch):
		// skip the CPU kind this cycle rather than fight over it.
		firstErr = err
		c.errors.Inc()
	} else {
		select {
		case <-time.After(c.cfg.CPUDuration):
		case <-c.stop:
		}
		pprof.StopCPUProfile()
		snap.Profiles["cpu"] = append([]byte(nil), buf.Bytes()...)
	}
	for _, kind := range Kinds[1:] {
		p := pprof.Lookup(kind)
		if p == nil {
			continue
		}
		buf.Reset()
		if err := p.WriteTo(&buf, 0); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			c.errors.Inc()
			continue
		}
		snap.Profiles[kind] = append([]byte(nil), buf.Bytes()...)
	}
	info := currentRunInfo()
	sizes := make(map[string]int, len(snap.Profiles))
	for k, b := range snap.Profiles {
		sizes[k] = len(b)
	}
	c.mu.Lock()
	snap.Meta = SnapshotMeta{
		ID:            c.nextID,
		UnixNs:        time.Now().UnixNano(),
		CPUWindowNs:   c.cfg.CPUDuration.Nanoseconds(),
		Generation:    info.Generation,
		Phase:         info.Phase,
		Step:          info.Step,
		HistoryCursor: c.cfg.History.Cursor(),
		Sizes:         sizes,
	}
	c.nextID++
	c.ring[c.next] = snap
	c.next++
	if c.next == len(c.ring) {
		c.next, c.full = 0, true
	}
	c.mu.Unlock()
	c.snapshots.Inc()
	return snap, firstErr
}

// Snapshots lists the retained snapshot metadata, oldest first. Nil-safe.
func (c *Collector) Snapshots() []SnapshotMeta {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []SnapshotMeta
	emit := func(s *Snapshot) {
		if s != nil {
			out = append(out, s.Meta)
		}
	}
	if c.full {
		for _, s := range c.ring[c.next:] {
			emit(s)
		}
	}
	for _, s := range c.ring[:c.next] {
		emit(s)
	}
	return out
}

// Get returns the snapshot with the given ID, or nil if it left the ring.
func (c *Collector) Get(id uint64) *Snapshot {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.ring {
		if s != nil && s.Meta.ID == id {
			return s
		}
	}
	return nil
}

// Latest returns the n most recent snapshots, oldest first.
func (c *Collector) Latest(n int) []*Snapshot {
	if c == nil || n <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var all []*Snapshot
	if c.full {
		all = append(all, c.ring[c.next:]...)
	}
	all = append(all, c.ring[:c.next]...)
	keep := all[:0]
	for _, s := range all {
		if s != nil {
			keep = append(keep, s)
		}
	}
	if len(keep) > n {
		keep = keep[len(keep)-n:]
	}
	return append([]*Snapshot(nil), keep...)
}

// Status is the "profiling" status-provider payload.
type Status struct {
	Enabled     bool           `json:"enabled"`
	IntervalNs  int64          `json:"interval_ns"`
	CPUWindowNs int64          `json:"cpu_window_ns"`
	Capacity    int            `json:"capacity"`
	Snapshots   []SnapshotMeta `json:"snapshots"`
}

// Status reports the collector's configuration and ring contents.
func (c *Collector) Status() Status {
	if c == nil {
		return Status{}
	}
	return Status{
		Enabled:     Enabled(),
		IntervalNs:  c.cfg.Interval.Nanoseconds(),
		CPUWindowNs: c.cfg.CPUDuration.Nanoseconds(),
		Capacity:    c.cfg.Capacity,
		Snapshots:   c.Snapshots(),
	}
}

// Stop halts the capture loop, restores the runtime sampling rates, and
// disables the label plane. The ring stays readable (the status provider
// and handler keep serving the frozen snapshots). Safe to call more than
// once; nil-safe.
func (c *Collector) Stop() {
	if c == nil {
		return
	}
	c.stopOnce.Do(func() {
		close(c.stop)
		<-c.done
		if c.cfg.MutexFraction >= 0 {
			runtime.SetMutexProfileFraction(c.prevMutex)
		}
		if c.cfg.BlockRateNs >= 0 {
			runtime.SetBlockProfileRate(0)
		}
		SetEnabled(false)
	})
}
