package profiling

import (
	"context"
	"os"
	"testing"
)

// TestDisabledLabelZeroCost pins the disabled-path budget the query
// prologue depends on: with profiling off, Label must return the caller's
// context unchanged, allocate nothing, and cost one atomic load. The
// allocation and identity halves are deterministic and always run; the
// wall-clock half joins the gated overhead guard (`make overhead`), like
// the other timing assertions that flap on loaded CI hosts. The end-to-end
// <2% budget on the full query prologue is enforced by
// TestAnalyzeOverheadDisabled in internal/query, whose measured path now
// includes this gate.
func TestDisabledLabelZeroCost(t *testing.T) {
	SetEnabled(false)
	ctx := context.Background()
	if allocs := testing.AllocsPerRun(1000, func() {
		c, unlabel := Label(ctx, "op", "count", "generation", "7")
		if c != ctx {
			t.Fatal("disabled Label changed the context")
		}
		unlabel()
	}); allocs != 0 {
		t.Errorf("disabled Label allocates %v objects per call, want 0", allocs)
	}

	if os.Getenv("TELEMETRY_OVERHEAD_GUARD") == "" {
		t.Skip("set TELEMETRY_OVERHEAD_GUARD=1 for the timing half (make overhead)")
	}
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, unlabel := Label(ctx, "op", "count", "generation", "7")
			unlabel()
		}
	})
	// One atomic load plus two calls; 50ns is an order of magnitude of
	// headroom on any machine quiet enough for the guard to be meaningful.
	if ns := r.NsPerOp(); ns > 50 {
		t.Errorf("disabled Label costs %dns/op, want an atomic load (<50ns)", ns)
	} else {
		t.Logf("disabled Label: %dns/op", ns)
	}
}
