package qlog

import (
	"bufio"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"insitubits/internal/telemetry"
)

// queueCap bounds the append queue. Capture must never stall a query: an
// Append into a full queue drops the record (counted) instead of blocking.
const queueCap = 4096

// Writer appends records to a workload log. The fast path (Append) does a
// JSON encode and a non-blocking channel send; a single drain goroutine
// owns the file, buffers writes, and flushes whenever the queue empties.
// Safe for concurrent use; the disabled path (Active() == nil in callers)
// costs one atomic load.
type Writer struct {
	path string
	f    *os.File
	bw   *bufio.Writer
	ch   chan []byte
	done chan struct{}

	seq     atomic.Uint64
	records atomic.Int64 // lines written to the buffer
	dropped atomic.Int64 // records lost to a full queue or a closed writer
	errs    atomic.Int64 // encode or I/O failures
	bytes   atomic.Int64 // line bytes accepted by the buffer

	closed    atomic.Bool
	closeOnce sync.Once
	closeErr  error

	// source, when set, is stamped into every appended record that does
	// not already carry one (SetSource).
	source atomic.Pointer[string]
}

// Health is the writer's self-report, published as the "qlog" status
// provider (so /healthz and the debug server surface it) and printed by
// the CLIs on shutdown. The zero value means "no workload log installed".
type Health struct {
	Enabled    bool   `json:"enabled"`
	Path       string `json:"path,omitempty"`
	Records    int64  `json:"records"`
	Dropped    int64  `json:"dropped"`
	Errors     int64  `json:"errors"`
	Bytes      int64  `json:"bytes"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
}

// Create opens (truncating) a workload log at path, writes the header, and
// starts the drain goroutine. The caller owns the writer and must Close it
// to flush, fsync, and release the file.
func Create(path string) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{
		path: path,
		f:    f,
		bw:   bufio.NewWriterSize(f, 64<<10),
		ch:   make(chan []byte, queueCap),
		done: make(chan struct{}),
	}
	if _, err := w.bw.Write(header()); err != nil {
		f.Close()
		return nil, err
	}
	go w.drain()
	return w, nil
}

// Append queues one record, stamping its sequence number, schema version,
// and (if unset) timestamp. Never blocks: a full queue or closed writer
// drops the record and counts the drop. Nil-safe.
func (w *Writer) Append(rec *Record) {
	if w == nil {
		return
	}
	if w.closed.Load() {
		w.dropped.Add(1)
		tel.dropped.Inc()
		return
	}
	rec.Schema = Version
	rec.Seq = w.seq.Add(1)
	if rec.UnixNs == 0 {
		rec.UnixNs = time.Now().UnixNano()
	}
	if rec.Source == "" {
		if src := w.source.Load(); src != nil {
			rec.Source = *src
		}
	}
	line, err := encodeRecord(rec)
	if err != nil {
		w.errs.Add(1)
		tel.errors.Inc()
		return
	}
	select {
	case w.ch <- line:
	default:
		w.dropped.Add(1)
		tel.dropped.Inc()
	}
}

// drain is the single writer goroutine. It exits on the nil sentinel sent
// by Close; the channel is never closed, so a straggling Append after
// Close can only drop, never panic.
func (w *Writer) drain() {
	defer close(w.done)
	for line := range w.ch {
		if line == nil {
			return
		}
		w.write(line)
		if len(w.ch) == 0 {
			if err := w.bw.Flush(); err != nil {
				w.errs.Add(1)
				tel.errors.Inc()
			}
		}
	}
}

func (w *Writer) write(line []byte) {
	n, err := w.bw.Write(line)
	w.bytes.Add(int64(n))
	if err != nil {
		w.errs.Add(1)
		tel.errors.Inc()
		return
	}
	w.records.Add(1)
	tel.records.Inc()
}

// Close drains the queue, flushes, fsyncs, and closes the file. Safe to
// call more than once; records appended after Close are dropped.
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	w.closeOnce.Do(func() {
		w.closed.Store(true)
		w.ch <- nil // sentinel: ordered after every prior successful send
		<-w.done
		if err := w.bw.Flush(); err != nil && w.closeErr == nil {
			w.closeErr = err
		}
		if err := w.f.Sync(); err != nil && w.closeErr == nil {
			w.closeErr = err
		}
		if err := w.f.Close(); err != nil && w.closeErr == nil {
			w.closeErr = err
		}
	})
	return w.closeErr
}

// SetSource makes every record appended from now on carry this source tag
// (unless the record already has one). insitu-serve stamps "serve" so a
// replayed log distinguishes serving-path captures from in-process ones.
// Nil-safe; "" clears the tag.
func (w *Writer) SetSource(source string) {
	if w == nil {
		return
	}
	if source == "" {
		w.source.Store(nil)
		return
	}
	w.source.Store(&source)
}

// Path reports the log file's path. Nil-safe.
func (w *Writer) Path() string {
	if w == nil {
		return ""
	}
	return w.path
}

// Health reports the writer's counters. Nil-safe: a nil writer reports
// the zero (disabled) health.
func (w *Writer) Health() Health {
	if w == nil {
		return Health{}
	}
	return Health{
		Enabled:    !w.closed.Load(),
		Path:       w.path,
		Records:    w.records.Load(),
		Dropped:    w.dropped.Load(),
		Errors:     w.errs.Load(),
		Bytes:      w.bytes.Load(),
		QueueDepth: len(w.ch),
		QueueCap:   cap(w.ch),
	}
}

// ---------------------------------------------------------------------------
// Process-wide active writer. Query entry points capture into whatever
// writer is installed; the disabled path is one atomic load.

var active atomic.Pointer[Writer]

// Install makes w the process-wide capture target (nil uninstalls).
// Installing does not close the previous writer — the owner does.
func Install(w *Writer) { active.Store(w) }

// Active returns the installed writer, or nil when capture is off.
func Active() *Writer { return active.Load() }

// StatusName is the registry status key the writer health is published
// under (surfaced by /healthz and /telemetry).
const StatusName = "qlog"

// tel mirrors the writer counters into the telemetry registry so capture
// throughput and drops show up in /metrics and the metrics-history ring.
var tel struct {
	records *telemetry.Counter
	dropped *telemetry.Counter
	errors  *telemetry.Counter
}

// SetTelemetry (re)binds the package's instruments and status provider to
// a registry; nil disables them.
func SetTelemetry(r *telemetry.Registry) {
	tel.records = r.Counter("qlog.records")
	tel.dropped = r.Counter("qlog.dropped")
	tel.errors = r.Counter("qlog.errors")
	r.PublishStatus(StatusName, func() any { return Active().Health() })
}

func init() { SetTelemetry(telemetry.Default) }
