// Package qlog is the workload capture plane: one checksummed,
// schema-versioned record per query entry point, appended to a plain-text
// log that replays deterministically (internal/replay) and summarizes into
// workload statistics (Analyze). The format follows the run journal's
// durability conventions — every record carries a CRC32C over its payload,
// and a torn or corrupt tail is quarantined by length, never parsed past.
//
// File layout (docs/FORMATS.md "Workload log"):
//
//	isqlog 1\n                    header: magic, space, schema version
//	crc32c-hex8 SP json \n        one record per line
//
// The 8-hex-digit CRC32C (Castagnoli, lowercase) covers exactly the JSON
// payload bytes between the separator space and the terminating newline.
// Lines are self-contained, so logs concatenate, tail cleanly, and survive
// a kill mid-append with at most the torn final line lost.
package qlog

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"math/bits"
	"os"
	"strconv"

	"insitubits/internal/bitvec"
	"insitubits/internal/store"
)

// Magic and Version identify the log format; the header line is
// "isqlog 1\n". Bumping Version is a schema change: readers refuse
// versions they do not know rather than guessing at fields.
const (
	Magic   = "isqlog"
	Version = 1
)

// Record is one captured query. Op names the entry point using the query
// package's operator names ("bits", "count", "sum", "mean", "quantile",
// "minmax", "correlation", "sum-masked", "masked-sum", plus non-replayable
// internal producers like "selection.dissimilarity"). Subset parameters
// are recorded verbatim so the query is re-executable; Words/Bins/Rows
// come from the ANALYZE cost accounting of the captured execution; Result
// is the canonical result digest replay byte-compares against.
type Record struct {
	// Schema is the record's format version (Version at capture time).
	Schema int `json:"v"`
	// Seq is the writer-assigned sequence number, 1-based.
	Seq uint64 `json:"seq"`
	// UnixNs is the capture wall-clock time (replay pacing uses deltas).
	UnixNs int64 `json:"unix_ns"`
	// Op is the query entry point.
	Op string `json:"op"`
	// Detail is the human-oriented parameter description from the profile.
	Detail string `json:"detail,omitempty"`
	// N is the element count of the index the query ran against.
	N int `json:"n,omitempty"`

	// Subset parameters (first operand).
	ValueLo   float64 `json:"value_lo,omitempty"`
	ValueHi   float64 `json:"value_hi,omitempty"`
	SpatialLo int     `json:"spatial_lo,omitempty"`
	SpatialHi int     `json:"spatial_hi,omitempty"`
	// Q is the quantile argument (op == "quantile").
	Q float64 `json:"q,omitempty"`

	// Second-operand subset (op == "correlation").
	Correlated bool    `json:"correlated,omitempty"`
	BValueLo   float64 `json:"b_value_lo,omitempty"`
	BValueHi   float64 `json:"b_value_hi,omitempty"`
	BSpatialLo int     `json:"b_spatial_lo,omitempty"`
	BSpatialHi int     `json:"b_spatial_hi,omitempty"`

	// Gen and GenB are the index generations the query read.
	Gen  uint64 `json:"gen,omitempty"`
	GenB uint64 `json:"gen_b,omitempty"`
	// PlanDigest fingerprints the executable plan (op, parameters, planner
	// mode, optimized IR shape) — joinable against slow-query log records.
	PlanDigest string `json:"plan,omitempty"`
	// Planner records whether the cost-based planner was on.
	Planner bool `json:"planner"`
	// Cache is the bitmap cache's verdict: "hit" when any operator was
	// answered from the cache, "miss" when the cache was consulted without
	// a hit, "" when no cache was in play.
	Cache string `json:"cache,omitempty"`

	// Measured execution: bins touched, encoded words scanned, output
	// cardinality, wall time.
	Bins      int   `json:"bins,omitempty"`
	Words     int64 `json:"words,omitempty"`
	Rows      int64 `json:"rows,omitempty"`
	ElapsedNs int64 `json:"elapsed_ns"`

	// Result is the canonical result digest (DigestBitmap / DigestInt /
	// DigestFloats), empty when the query failed.
	Result string `json:"result,omitempty"`
	// Source names the capture surface when it is not the in-process
	// default: "serve" for records captured on insitu-serve's request
	// path (Writer.SetSource). Replay ignores it — a server-captured log
	// re-executes exactly like a local one.
	Source string `json:"source,omitempty"`
	// TraceID cross-references the identity trace, when one was recorded.
	// On serving-path records this is the client's propagated trace ID.
	TraceID string `json:"trace_id,omitempty"`
	// Err records the query error, if it failed.
	Err string `json:"error,omitempty"`
}

// Replayable reports whether a record can be re-executed from its recorded
// parameters alone: the masked entry points carry a caller-built bitmap
// that is not captured, and internal producers (pipeline scoring, mining)
// have no entry-point equivalent.
func (r *Record) Replayable() bool {
	if r.Err != "" {
		return false
	}
	switch r.Op {
	case "bits", "count", "sum", "mean", "quantile", "minmax", "correlation":
		return true
	}
	return false
}

// Subset reports the record's first-operand subset parameters.
func (r *Record) Subset() (valueLo, valueHi float64, spatialLo, spatialHi int) {
	return r.ValueLo, r.ValueHi, r.SpatialLo, r.SpatialHi
}

// encodeRecord renders one record line: crc32c-hex8, space, JSON, newline.
func encodeRecord(r *Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(payload)+10)
	line = fmt.Appendf(line, "%08x ", store.CRC32C(payload))
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// header renders the log header line.
func header() []byte { return []byte(fmt.Sprintf("%s %d\n", Magic, Version)) }

// ParseLog decodes workload-log bytes. Like the run journal's parser, it
// returns every record of the valid prefix plus the prefix's byte length;
// a torn or corrupt tail is not an error — it is what a kill mid-append
// leaves — but bytes past validLen must not be replayed. A damaged header
// or unknown version is an error.
func ParseLog(data []byte) (recs []Record, validLen int64, err error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, 0, fmt.Errorf("qlog: missing header line")
	}
	var ver int
	if n, _ := fmt.Sscanf(string(data[:nl]), Magic+" %d", &ver); n != 1 {
		return nil, 0, fmt.Errorf("qlog: bad header %q", data[:nl])
	}
	if ver != Version {
		return nil, 0, fmt.Errorf("qlog: unsupported version %d", ver)
	}
	pos := int64(nl + 1)
	for {
		rest := data[pos:]
		if len(rest) == 0 {
			return recs, pos, nil
		}
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			return recs, pos, nil // torn tail: no terminating newline
		}
		line := rest[:nl]
		if len(line) < 10 || line[8] != ' ' {
			return recs, pos, nil
		}
		want, perr := strconv.ParseUint(string(line[:8]), 16, 32)
		if perr != nil {
			return recs, pos, nil
		}
		payload := line[9:]
		if store.CRC32C(payload) != uint32(want) {
			return recs, pos, nil
		}
		var rec Record
		if json.Unmarshal(payload, &rec) != nil || rec.Op == "" {
			return recs, pos, nil
		}
		recs = append(recs, rec)
		pos += int64(nl) + 1
	}
}

// ReadLog loads and parses a workload log from disk.
func ReadLog(path string) (recs []Record, validLen int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	return ParseLog(data)
}

// ---------------------------------------------------------------------------
// Result digests. All digests are 8-hex-digit CRC32C strings over a
// canonical byte encoding, so a digest computed at capture time compares
// byte-for-byte against one computed at replay time — across codecs,
// planner on/off, and cache on/off.

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// DigestString fingerprints an arbitrary string (plan digests).
func DigestString(s string) string {
	return fmt.Sprintf("%08x", crc32.Checksum([]byte(s), castagnoli))
}

// DigestInt fingerprints one integer result (Count).
func DigestInt(v int) string {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
	return fmt.Sprintf("%08x", crc32.Checksum(buf[:], castagnoli))
}

// DigestFloats fingerprints a float sequence bit-exactly (aggregates,
// correlation metrics, selection scores). Order matters.
func DigestFloats(vs ...float64) string {
	h := crc32.New(castagnoli)
	var buf [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:]) //nolint:errcheck // hash.Hash never errors
	}
	return fmt.Sprintf("%08x", h.Sum32())
}

// DigestBitmap fingerprints a bitmap's logical contents independently of
// its encoding, and returns its population count from the same single
// pass. The run stream is canonicalized before hashing: uniform literal
// segments (all-zero, or all-ones over a full segment) become fills,
// adjacent same-bit fills merge, a trailing zero-fill overhanging the
// logical length is truncated, and the final partial segment is masked to
// the valid bits — so the WAH, BBC and Dense encodings of equal contents
// hash identically, which is what lets replay byte-compare results across
// codec conversions.
func DigestBitmap(b bitvec.Bitmap) (digest string, count int) {
	const literalMask = 1<<bitvec.SegmentBits - 1
	n := b.Len()
	segs := (n + bitvec.SegmentBits - 1) / bitvec.SegmentBits
	rem := n - (segs-1)*bitvec.SegmentBits // valid bits in the final segment
	h := crc32.New(castagnoli)
	var buf [10]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(n))
	h.Write(buf[:8]) //nolint:errcheck // hash.Hash never errors
	// Pending canonical fill run, merged across emits.
	curBit := uint32(0)
	curN := 0
	flushFill := func() {
		if curN == 0 {
			return
		}
		buf[0] = 'F'
		buf[1] = byte(curBit)
		binary.LittleEndian.PutUint64(buf[2:10], uint64(curN))
		h.Write(buf[:10]) //nolint:errcheck
		curN = 0
	}
	emitFill := func(bit uint32, k int) {
		if curN > 0 && curBit == bit {
			curN += k
			return
		}
		flushFill()
		curBit, curN = bit, k
	}
	emitLiteral := func(word uint32) {
		flushFill()
		buf[0] = 'L'
		binary.LittleEndian.PutUint32(buf[1:5], word)
		h.Write(buf[:5]) //nolint:errcheck
	}
	left := segs
	rd := b.Runs()
	for left > 0 {
		r, ok := rd.NextRun()
		if !ok {
			// Defensive: a short run stream reads as trailing zeros.
			emitFill(0, left)
			left = 0
			break
		}
		if r.N <= 0 {
			continue
		}
		k := r.N
		if k > left {
			k = left // truncate a trailing zero-fill's overhang
		}
		final := k == left
		if r.Fill {
			bit := r.Bit & 1
			if bit == 1 {
				count += k * bitvec.SegmentBits
				if final {
					count -= bitvec.SegmentBits - rem
				}
			}
			emitFill(bit, k)
		} else {
			w := r.Word & literalMask
			if final {
				w &= uint32(1)<<uint(rem) - 1
			}
			count += bits.OnesCount32(w)
			switch {
			case w == 0:
				emitFill(0, 1)
			case w == literalMask:
				emitFill(1, 1)
			default:
				emitLiteral(w)
			}
		}
		left -= k
	}
	flushFill()
	return fmt.Sprintf("%08x", h.Sum32()), count
}
