package qlog

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"insitubits/internal/bitvec"
	"insitubits/internal/codec"
)

func TestLogRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "workload.isql")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Op: "count", ValueLo: 1, ValueHi: 3, N: 100, Planner: true, Cache: "miss",
			Bins: 2, Words: 42, Rows: 17, ElapsedNs: 1234, Result: DigestInt(17)},
		{Op: "bits", SpatialLo: 10, SpatialHi: 90, ElapsedNs: 99, TraceID: "abc123"},
		{Op: "quantile", Q: 0.5, Err: "boom", ElapsedNs: 5},
		{Op: "correlation", Correlated: true, BValueLo: -1, BValueHi: 1, GenB: 7, ElapsedNs: 8},
	}
	for i := range want {
		rec := want[i]
		w.Append(&rec)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	h := w.Health()
	if h.Enabled {
		t.Error("closed writer reports enabled")
	}
	if h.Records != int64(len(want)) || h.Dropped != 0 || h.Errors != 0 {
		t.Errorf("health = %+v, want %d records, 0 dropped/errors", h, len(want))
	}

	recs, validLen, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	fi, _ := os.Stat(path)
	if validLen != fi.Size() {
		t.Errorf("validLen = %d, file size %d", validLen, fi.Size())
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i, got := range recs {
		w := want[i]
		if got.Seq != uint64(i+1) || got.Schema != Version || got.UnixNs == 0 {
			t.Errorf("record %d: seq=%d schema=%d unix_ns=%d", i, got.Seq, got.Schema, got.UnixNs)
		}
		got.Seq, got.Schema, got.UnixNs = 0, 0, 0
		if got != w {
			t.Errorf("record %d roundtrip:\n got %+v\nwant %+v", i, got, w)
		}
	}
	if want[2].Replayable() {
		t.Error("errored record reports replayable")
	}
	if !recs[0].Replayable() || !recs[1].Replayable() {
		t.Error("count/bits records should be replayable")
	}
}

func TestParseLogTornAndCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "workload.isql")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		w.Append(&Record{Op: "count", ValueLo: float64(i)})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full, fullLen, err := ParseLog(data)
	if err != nil || len(full) != 5 {
		t.Fatalf("full parse: %d records, err %v", len(full), err)
	}

	// Truncate at every byte offset: never an error, records form a prefix,
	// and validLen never exceeds the truncation point.
	for cut := int(fullLen); cut > len(Magic)+2; cut-- {
		recs, validLen, err := ParseLog(data[:cut])
		if err != nil {
			t.Fatalf("cut %d: unexpected error %v", cut, err)
		}
		if validLen > int64(cut) {
			t.Fatalf("cut %d: validLen %d past end", cut, validLen)
		}
		for i, r := range recs {
			if r.ValueLo != float64(i) {
				t.Fatalf("cut %d: record %d out of order", cut, i)
			}
		}
	}

	// A flipped byte mid-log quarantines from that record on.
	corrupt := bytes.Clone(data)
	mid := int(fullLen) / 2
	corrupt[mid] ^= 0x40
	recs, validLen, err := ParseLog(corrupt)
	if err != nil {
		t.Fatalf("corrupt parse: %v", err)
	}
	if len(recs) >= 5 {
		t.Errorf("corrupt parse returned all %d records", len(recs))
	}
	if validLen > int64(mid) {
		t.Errorf("validLen %d past corruption at %d", validLen, mid)
	}

	// Header damage is an error, not a silent empty log.
	if _, _, err := ParseLog([]byte("isqlog 9\nx")); err == nil {
		t.Error("unknown version accepted")
	}
	if _, _, err := ParseLog([]byte("notalog\n")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, _, err := ParseLog([]byte("")); err == nil {
		t.Error("empty data accepted")
	}
}

func TestWriterConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "workload.isql")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				w.Append(&Record{Op: "count", ValueLo: float64(g), ValueHi: float64(i)})
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Queue capacity exceeds the total append count, so nothing may drop.
	if h := w.Health(); h.Dropped != 0 || h.Records != workers*per {
		t.Fatalf("health = %+v, want %d records, 0 dropped", h, workers*per)
	}
	recs, _, err := ReadLog(path)
	if err != nil || len(recs) != workers*per {
		t.Fatalf("read %d records, err %v", len(recs), err)
	}
	seen := make(map[uint64]bool, len(recs))
	for _, r := range recs {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
	// Appends after Close drop without panicking.
	w.Append(&Record{Op: "count"})
	if h := w.Health(); h.Dropped != 1 {
		t.Errorf("append after close: dropped = %d, want 1", h.Dropped)
	}
}

func TestDigestBitmapCodecIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []struct {
		name string
		bits []bool
	}{
		{"empty", nil},
		{"all-zero", make([]bool, 31*4+7)},
		{"all-one", func() []bool {
			b := make([]bool, 31*3)
			for i := range b {
				b[i] = true
			}
			return b
		}()},
		{"partial-tail-ones", func() []bool {
			b := make([]bool, 31*2+5)
			for i := range b {
				b[i] = true
			}
			return b
		}()},
		{"sparse", func() []bool {
			b := make([]bool, 31*100+13)
			for i := 0; i < len(b); i += 97 {
				b[i] = true
			}
			return b
		}()},
		{"dense-random", func() []bool {
			b := make([]bool, 31*50+1)
			for i := range b {
				b[i] = rng.Intn(3) > 0
			}
			return b
		}()},
		{"exact-segments", func() []bool {
			b := make([]bool, 31*8)
			for i := range b {
				b[i] = rng.Intn(2) == 0
			}
			return b
		}()},
	}
	ids := []codec.ID{codec.WAH, codec.BBC, codec.Dense}
	for _, tc := range cases {
		base := bitvec.FromBools(tc.bits)
		wantCount := 0
		for _, set := range tc.bits {
			if set {
				wantCount++
			}
		}
		wantDigest, count := DigestBitmap(base)
		if count != wantCount {
			t.Errorf("%s: wah count = %d, want %d", tc.name, count, wantCount)
		}
		for _, id := range ids {
			enc := codec.Encode(base, id)
			d, c := DigestBitmap(enc)
			if d != wantDigest {
				t.Errorf("%s: %v digest %s != wah digest %s", tc.name, id, d, wantDigest)
			}
			if c != wantCount {
				t.Errorf("%s: %v count = %d, want %d", tc.name, id, c, wantCount)
			}
		}
	}
	// Different contents must not collide on these fixtures.
	a, _ := DigestBitmap(bitvec.FromBools([]bool{true, false, true}))
	b, _ := DigestBitmap(bitvec.FromBools([]bool{true, true, false}))
	if a == b {
		t.Error("distinct bitmaps share a digest")
	}
	// Same prefix, different lengths must differ (length is hashed).
	c1, _ := DigestBitmap(bitvec.FromBools(make([]bool, 31)))
	c2, _ := DigestBitmap(bitvec.FromBools(make([]bool, 62)))
	if c1 == c2 {
		t.Error("length not part of the digest")
	}
}

func TestDigestHelpers(t *testing.T) {
	if DigestInt(5) == DigestInt(6) {
		t.Error("DigestInt collision")
	}
	if DigestFloats(1, 2) == DigestFloats(2, 1) {
		t.Error("DigestFloats is order-insensitive")
	}
	if DigestFloats(1.5) != DigestFloats(1.5) {
		t.Error("DigestFloats unstable")
	}
	if DigestString("a|b") == DigestString("a|c") {
		t.Error("DigestString collision")
	}
}

func TestAnalyze(t *testing.T) {
	recs := []Record{
		{Op: "count", ValueLo: 1, ValueHi: 3, N: 100, Rows: 10, Bins: 2, Planner: true, Cache: "miss", ElapsedNs: 100, Words: 40},
		{Op: "count", ValueLo: 1, ValueHi: 3, N: 100, Rows: 10, Bins: 2, Planner: true, Cache: "hit", ElapsedNs: 50, Words: 4},
		{Op: "sum", ValueLo: 1, ValueHi: 3, N: 100, Rows: 10, Bins: 2, ElapsedNs: 70, Words: 40},
		{Op: "bits", SpatialLo: 0, SpatialHi: 50, N: 100, Rows: 50, Bins: 8, ElapsedNs: 30, Words: 80},
		{Op: "quantile", Q: 0.9, Err: "boom", ElapsedNs: 5},
		{Op: "selection.dissimilarity", ElapsedNs: 900, Words: 300},
	}
	s := Analyze(recs, nil)
	if s.Total != 6 || s.Errors != 1 || s.Replayable != 4 {
		t.Errorf("total/errors/replayable = %d/%d/%d", s.Total, s.Errors, s.Replayable)
	}
	if s.ByOp["count"] != 2 || s.ByOp["selection.dissimilarity"] != 1 {
		t.Errorf("by-op = %v", s.ByOp)
	}
	if s.CacheHits != 1 || s.CacheMisses != 1 || s.PlannerOn != 2 {
		t.Errorf("cache %d/%d planner %d", s.CacheHits, s.CacheMisses, s.PlannerOn)
	}
	// 4 replayable, 3 unique parameter sets (the two counts repeat).
	if s.UniqueQueries != 3 {
		t.Errorf("unique = %d, want 3", s.UniqueQueries)
	}
	if want := 1 - 3.0/4.0; s.RepeatRatio != want {
		t.Errorf("repeat ratio = %g, want %g", s.RepeatRatio, want)
	}
	if s.Arity.Count != 4 || s.Arity.Max != 8 {
		t.Errorf("arity = %+v", s.Arity)
	}
	if len(s.HotRanges) == 0 || s.HotRanges[0].Queries != 3 {
		t.Errorf("hot ranges = %+v", s.HotRanges)
	}
	if len(s.HotBins) != 0 {
		t.Errorf("hot bins without an index = %+v", s.HotBins)
	}
}

func TestInstallActive(t *testing.T) {
	if Active() != nil {
		t.Fatal("writer already installed")
	}
	w, err := Create(filepath.Join(t.TempDir(), "w.isql"))
	if err != nil {
		t.Fatal(err)
	}
	Install(w)
	if Active() != w {
		t.Error("Active != installed writer")
	}
	Install(nil)
	if Active() != nil {
		t.Error("uninstall failed")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var nilW *Writer
	nilW.Append(&Record{Op: "count"}) // must not panic
	if h := nilW.Health(); h.Enabled || h.Path != "" {
		t.Errorf("nil writer health = %+v", h)
	}
	if nilW.Path() != "" {
		t.Error("nil writer path")
	}
}

func TestHealthQueue(t *testing.T) {
	w, err := Create(filepath.Join(t.TempDir(), "w.isql"))
	if err != nil {
		t.Fatal(err)
	}
	h := w.Health()
	if !h.Enabled || h.QueueCap != queueCap {
		t.Errorf("health = %+v", h)
	}
	for i := 0; i < 100; i++ {
		w.Append(&Record{Op: "count", ValueLo: float64(i)})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := w.Health(); got.Records != 100 || got.Bytes == 0 {
		t.Errorf("post-close health = %+v", got)
	}
}

func BenchmarkAppend(b *testing.B) {
	w, err := Create(filepath.Join(b.TempDir(), "w.isql"))
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	rec := Record{Op: "count", ValueLo: 1, ValueHi: 3, N: 1 << 20, Bins: 4,
		Words: 12345, Rows: 678, ElapsedNs: 91011, Result: "deadbeef", Planner: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := rec
		r.UnixNs = int64(i + 1)
		w.Append(&r)
	}
}

func ExampleParseLog() {
	recs, _, _ := ParseLog([]byte("isqlog 1\n"))
	fmt.Println(len(recs))
	// Output: 0
}
