package qlog

import (
	"fmt"
	"sort"

	"insitubits/internal/index"
)

// Summary is the workload analyzer's output: what a captured log says
// about the query mix — operator counts, cache behaviour, operand-arity
// and selectivity distributions, hot bins and hot value ranges, and the
// repeat ratio that bounds how much a materialized-bitmap cache could
// help. Produced by Analyze, rendered by `bitmapctl workload`.
type Summary struct {
	Total      int            `json:"total"`
	Replayable int            `json:"replayable"`
	Errors     int            `json:"errors"`
	ByOp       map[string]int `json:"by_op"`

	PlannerOn   int `json:"planner_on"`
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`

	ElapsedNs int64 `json:"elapsed_ns"`
	Words     int64 `json:"words"`

	// UniqueQueries counts distinct replayable parameter sets; RepeatRatio
	// is 1 - unique/replayable — the fraction of queries a warm cache
	// keyed on exact parameters could answer without scanning.
	UniqueQueries int     `json:"unique_queries"`
	RepeatRatio   float64 `json:"repeat_ratio"`

	// Arity is the distribution of bins touched per query (operand arity
	// of the underlying OR); Selectivity is output rows over index N.
	Arity       Distribution `json:"arity"`
	Selectivity Distribution `json:"selectivity"`

	// HotBins ranks index bins by how many captured queries' value ranges
	// overlap them (needs an index; empty otherwise). HotRanges ranks
	// exact value-range predicates by frequency.
	HotBins   []BinCount   `json:"hot_bins,omitempty"`
	HotRanges []RangeCount `json:"hot_ranges,omitempty"`
}

// Distribution summarizes a numeric sample: count, min/max, median, p90.
type Distribution struct {
	Count int     `json:"count"`
	Min   float64 `json:"min"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	Max   float64 `json:"max"`
}

// BinCount is one hot-bin ranking entry.
type BinCount struct {
	Bin     int     `json:"bin"`
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
	Queries int     `json:"queries"`
}

// RangeCount is one hot value-range entry.
type RangeCount struct {
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
	Queries int     `json:"queries"`
}

// Analyze summarizes a captured workload. x is optional: when non-nil its
// binning maps each record's value predicate onto concrete bins for the
// hot-bin ranking (records are matched to the index by content, not
// generation — a recoded index ranks identically).
func Analyze(recs []Record, x *index.Index) Summary {
	s := Summary{ByOp: make(map[string]int)}
	var arity, selectivity []float64
	unique := make(map[string]struct{})
	ranges := make(map[[2]float64]int)
	var binHits []int
	if x != nil {
		binHits = make([]int, x.Bins())
	}
	for i := range recs {
		r := &recs[i]
		s.Total++
		s.ByOp[r.Op]++
		s.ElapsedNs += r.ElapsedNs
		s.Words += r.Words
		if r.Err != "" {
			s.Errors++
		}
		if r.Planner {
			s.PlannerOn++
		}
		switch r.Cache {
		case "hit":
			s.CacheHits++
		case "miss":
			s.CacheMisses++
		}
		if r.Bins > 0 {
			arity = append(arity, float64(r.Bins))
		}
		if r.N > 0 && r.Rows > 0 {
			selectivity = append(selectivity, float64(r.Rows)/float64(r.N))
		}
		if !r.Replayable() {
			continue
		}
		s.Replayable++
		unique[paramKey(r)] = struct{}{}
		if r.ValueHi > r.ValueLo {
			ranges[[2]float64{r.ValueLo, r.ValueHi}]++
			if x != nil {
				m := x.Mapper()
				for b := 0; b < x.Bins(); b++ {
					// Same overlap rule as query.Subset.binSelected.
					if m.High(b) > r.ValueLo && m.Low(b) < r.ValueHi {
						binHits[b]++
					}
				}
			}
		} else if x != nil {
			// No value predicate: the query touches every bin.
			for b := range binHits {
				binHits[b]++
			}
		}
	}
	s.UniqueQueries = len(unique)
	if s.Replayable > 0 {
		s.RepeatRatio = 1 - float64(s.UniqueQueries)/float64(s.Replayable)
	}
	s.Arity = summarize(arity)
	s.Selectivity = summarize(selectivity)
	for r, n := range ranges {
		s.HotRanges = append(s.HotRanges, RangeCount{Lo: r[0], Hi: r[1], Queries: n})
	}
	sort.Slice(s.HotRanges, func(i, j int) bool {
		a, b := s.HotRanges[i], s.HotRanges[j]
		if a.Queries != b.Queries {
			return a.Queries > b.Queries
		}
		return a.Lo < b.Lo
	})
	if len(s.HotRanges) > 10 {
		s.HotRanges = s.HotRanges[:10]
	}
	if x != nil {
		m := x.Mapper()
		for b, n := range binHits {
			if n > 0 {
				s.HotBins = append(s.HotBins, BinCount{Bin: b, Lo: m.Low(b), Hi: m.High(b), Queries: n})
			}
		}
		sort.Slice(s.HotBins, func(i, j int) bool {
			a, b := s.HotBins[i], s.HotBins[j]
			if a.Queries != b.Queries {
				return a.Queries > b.Queries
			}
			return a.Bin < b.Bin
		})
		if len(s.HotBins) > 10 {
			s.HotBins = s.HotBins[:10]
		}
	}
	return s
}

// paramKey canonicalizes a record's replayable parameters; records with
// equal keys would hit a parameter-keyed cache.
func paramKey(r *Record) string {
	return fmt.Sprintf("%s|%g|%g|%d|%d|%g|%t|%g|%g|%d|%d",
		r.Op, r.ValueLo, r.ValueHi, r.SpatialLo, r.SpatialHi, r.Q,
		r.Correlated, r.BValueLo, r.BValueHi, r.BSpatialLo, r.BSpatialHi)
}

func summarize(vals []float64) Distribution {
	if len(vals) == 0 {
		return Distribution{}
	}
	sort.Float64s(vals)
	q := func(p float64) float64 {
		i := int(p * float64(len(vals)-1))
		return vals[i]
	}
	return Distribution{
		Count: len(vals),
		Min:   vals[0],
		P50:   q(0.5),
		P90:   q(0.9),
		Max:   vals[len(vals)-1],
	}
}
