package mining

import (
	"math/rand"
	"testing"

	"insitubits/internal/binning"
	"insitubits/internal/index"
)

func TestMineParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 3; trial++ {
		n := 4096 + 31*r.Intn(20)
		a, b := correlatedPair(r, n, n/4, n/2)
		m := mapper(t, 13+r.Intn(30)) // odd bin counts exercise uneven spans
		xa, xb := index.Build(a, m), index.Build(b, m)
		cfg := Config{UnitSize: 256, ValueThreshold: 0.001, SpatialThreshold: 0.03}
		serial, err := Mine(xa, xb, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 5, 8, 64} {
			parallel, err := MineParallel(xa, xb, cfg, workers)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			assertSameFindings(t, "parallel vs serial", parallel, serial)
		}
	}
}

func TestMineParallelValidation(t *testing.T) {
	m := mapper(t, 4)
	x := index.Build(make([]float64, 100), m)
	if _, err := MineParallel(x, x, Config{UnitSize: 0}, 4); err == nil {
		t.Error("bad config accepted")
	}
	y := index.Build(make([]float64, 50), m)
	if _, err := MineParallel(x, y, Config{UnitSize: 10}, 4); err == nil {
		t.Error("mismatched indices accepted")
	}
}

func TestWorkerSlot(t *testing.T) {
	// For every decomposition sim.ParallelFor can produce, the span start
	// must map back to a unique, in-range slot.
	for _, n := range []int{1, 2, 7, 16, 100} {
		for _, workers := range []int{1, 2, 3, 8, 200} {
			w := workers
			if w > n {
				w = n
			}
			chunk := n / w
			extra := n % w
			lo := 0
			seen := map[int]bool{}
			for k := 0; k < w; k++ {
				size := chunk
				if k < extra {
					size++
				}
				slot := workerSlot(lo, n, workers)
				if slot != k {
					t.Fatalf("n=%d workers=%d: span %d starting at %d -> slot %d", n, workers, k, lo, slot)
				}
				if seen[slot] {
					t.Fatalf("slot %d reused", slot)
				}
				seen[slot] = true
				lo += size
			}
		}
	}
}

func TestMergeFindings(t *testing.T) {
	fs := []Finding{
		{BinA: 1, BinB: 2, Unit: 4, Begin: 400, End: 500, SpatialMI: 0.2},
		{BinA: 1, BinB: 2, Unit: 5, Begin: 500, End: 600, SpatialMI: 0.5},
		{BinA: 1, BinB: 2, Unit: 7, Begin: 700, End: 800, SpatialMI: 0.1}, // gap: new region
		{BinA: 3, BinB: 3, Unit: 5, Begin: 500, End: 600, SpatialMI: 0.9}, // other pair
	}
	regions := MergeFindings(fs)
	if len(regions) != 3 {
		t.Fatalf("%d regions: %+v", len(regions), regions)
	}
	first := regions[0]
	if first.Begin != 400 || first.End != 600 || first.Units != 2 || first.MaxMI != 0.5 {
		t.Fatalf("merged region wrong: %+v", first)
	}
	if regions[1].Units != 1 || regions[1].Begin != 700 {
		t.Fatalf("gap region wrong: %+v", regions[1])
	}
	if regions[2].BinA != 3 || regions[2].MaxMI != 0.9 {
		t.Fatalf("other-pair region wrong: %+v", regions[2])
	}
	if MergeFindings(nil) != nil {
		t.Fatal("empty merge should be nil")
	}
}

func TestMergeFindingsCoversAllUnits(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	n := 8192
	a, b := correlatedPair(r, n, 1024, 3072)
	m := mapper(t, 16)
	fs, err := Mine(index.Build(a, m), index.Build(b, m),
		Config{UnitSize: 256, ValueThreshold: 0.001, SpatialThreshold: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	regions := MergeFindings(fs)
	totalUnits := 0
	for _, reg := range regions {
		totalUnits += reg.Units
		if reg.End <= reg.Begin {
			t.Fatalf("degenerate region %+v", reg)
		}
	}
	if totalUnits != len(fs) {
		t.Fatalf("regions cover %d units, findings %d", totalUnits, len(fs))
	}
}

func BenchmarkMineParallel4(b *testing.B) {
	r := rand.New(rand.NewSource(13))
	n := 1 << 16
	aa, bb := correlatedPair(r, n, n/4, n/2)
	m, _ := newMapper(48)
	xa, xb := index.Build(aa, m), index.Build(bb, m)
	cfg := Config{UnitSize: 512, ValueThreshold: 0.001, SpatialThreshold: 0.03}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MineParallel(xa, xb, cfg, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func newMapper(bins int) (binning.Mapper, error) {
	return binning.NewUniform(0, 10, bins)
}
