package mining

import (
	"math/rand"
	"testing"

	"insitubits/internal/binning"
	"insitubits/internal/bitcache"
	"insitubits/internal/index"
	"insitubits/internal/query"
)

// miningScanWords sums the words-scanned accounting over every bin-pair
// profile of one run — the measured bitmap work the run paid for.
func miningScanWords(slow *query.TopK) int64 {
	var total int64
	for _, p := range slow.Profiles() {
		total += p.Total().WordsScanned
	}
	return total
}

// TestMineCacheScanReduction is the ISSUE's acceptance check for mining:
// with a shared cache, a repeated run over the same bin pairs must answer
// surviving pairs from cached joints, cutting the ANALYZE words-scanned at
// least in half versus the cold run — while producing identical findings.
func TestMineCacheScanReduction(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 31 * 700
	a, b := correlatedPair(r, n, n/4, n/2)
	m := mapper(t, 12)
	xa, xb := index.Build(a, m), index.Build(b, m)
	cfg := Config{UnitSize: 256, ValueThreshold: DefaultValueThreshold(40, n), SpatialThreshold: 0.2}

	cache := bitcache.New(16 << 20)
	run := func(c *bitcache.Cache) ([]Finding, int64, *query.TopK) {
		cfg := cfg
		cfg.Cache = c
		cfg.Slow = query.NewTopK(1 << 12) // keep every pair profile
		fs, err := Mine(xa, xb, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return fs, miningScanWords(cfg.Slow), cfg.Slow
	}

	baseline, baseWords, _ := run(nil) // no cache anywhere (no default installed)
	cold, coldWords, coldSlow := run(cache)
	warm, warmWords, warmSlow := run(cache)

	assertSameFindings(t, "cold vs uncached", cold, baseline)
	assertSameFindings(t, "warm vs uncached", warm, baseline)
	if baseWords != coldWords {
		t.Fatalf("cold cached run scanned %d words, uncached %d — cold misses must cost the same", coldWords, baseWords)
	}
	if 2*warmWords > coldWords {
		t.Fatalf("warm run scanned %d words, cold %d: expected at least a 2x reduction", warmWords, coldWords)
	}
	t.Logf("pair-profile words scanned: uncached=%d cold=%d warm=%d (%.1fx reduction)",
		baseWords, coldWords, warmWords, float64(coldWords)/float64(warmWords))
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatalf("warm run recorded no cache hits: %+v", st)
	}

	// The slow profiles must name the outcome per pair (`mine -slow` UI).
	for name, slow := range map[string]*query.TopK{"cold": coldSlow, "warm": warmSlow} {
		verdict := map[string]string{"cold": "miss", "warm": "hit"}[name]
		found := false
		for _, p := range slow.Profiles() {
			for _, c := range p.Root.Children {
				if c.Cache == verdict {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("%s run produced no %s-annotated pair profiles", name, verdict)
		}
	}
}

// TestMineCacheVariants checks the cached paths of the parallel and
// multi-level miners stay identical to their uncached selves.
func TestMineCacheVariants(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	n := 31 * 500
	a, b := correlatedPair(r, n, n/3, 2*n/3)
	m := mapper(t, 10)
	xa, xb := index.Build(a, m), index.Build(b, m)
	cfg := Config{UnitSize: 128, ValueThreshold: DefaultValueThreshold(30, n), SpatialThreshold: 0.15}

	want, err := Mine(xa, xb, cfg)
	if err != nil {
		t.Fatal(err)
	}

	cache := bitcache.New(16 << 20)
	cfgC := cfg
	cfgC.Cache = cache
	for pass := 0; pass < 2; pass++ { // cold, then warm
		got, err := MineParallel(xa, xb, cfgC, 4)
		if err != nil {
			t.Fatal(err)
		}
		assertSameFindings(t, "parallel cached", got, want)
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatalf("warm parallel run recorded no hits: %+v", st)
	}
}

func benchMineIndexes(n int) (*index.Index, *index.Index, Config) {
	r := rand.New(rand.NewSource(3))
	a, bdat := correlatedPair(r, n, n/4, n/2)
	m, err := binning.NewUniform(0, 10, 16)
	if err != nil {
		panic(err)
	}
	xa, xb := index.Build(a, m), index.Build(bdat, m)
	cfg := Config{UnitSize: 256, ValueThreshold: DefaultValueThreshold(40, n), SpatialThreshold: 0.2}
	return xa, xb, cfg
}

// BenchmarkMineUncached / BenchmarkMineCached measure repeated correlation
// mining over the same indices without and with the joint-vector cache —
// the cached-vs-uncached comparison recorded in EXPERIMENTS.md.
func BenchmarkMineUncached(b *testing.B) {
	xa, xb, cfg := benchMineIndexes(31 * 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mine(xa, xb, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMineCached(b *testing.B) {
	xa, xb, cfg := benchMineIndexes(31 * 2000)
	cfg.Cache = bitcache.New(64 << 20)
	if _, err := Mine(xa, xb, cfg); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mine(xa, xb, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
