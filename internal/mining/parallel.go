package mining

import (
	"sort"

	"insitubits/internal/index"
	"insitubits/internal/metrics"
	"insitubits/internal/sim"
)

// MineParallel runs Algorithm 2 with the bin-pair loop fanned out over
// nWorkers goroutines — the parallel setting of the authors' correlation
// framework [30]. Each worker owns a contiguous span of variable-A bins
// (every A-bin's pair row is independent), results are concatenated in bin
// order, so the output is identical to Mine.
func MineParallel(xa, xb *index.Index, cfg Config, nWorkers int) ([]Finding, error) {
	if nWorkers <= 1 || xa.Bins() <= 1 {
		return Mine(xa, xb, cfg)
	}
	if xa.N() != xb.N() {
		return Mine(xa, xb, cfg) // delegate for uniform error reporting
	}
	if err := cfg.validate(xa.N()); err != nil {
		return nil, err
	}
	n := xa.N()
	// Shared, read-only after construction: per-unit marginal counts.
	// Built eagerly here (unlike Mine's lazy build) because with several
	// workers the odds that someone needs them are high and sharing a
	// lazily built table would need locking on the hot path.
	unitsA := unitCounts(xa, cfg.UnitSize)
	unitsB := unitCounts(xb, cfg.UnitSize)
	pc := newPairCache(cfg, xa, xb) // bitcache.Cache is mutex-guarded: safe to share

	results := make([][]Finding, nWorkers)
	sim.ParallelFor(xa.Bins(), nWorkers, func(lo, hi int) {
		var out []Finding
		for i := lo; i < hi; i++ {
			ci := xa.Count(i)
			if ci == 0 {
				continue
			}
			va := xa.Bitmap(i)
			for j := 0; j < xb.Bins(); j++ {
				cj := xb.Count(j)
				if cj == 0 {
					continue
				}
				if childTermUpperBound(minInt(ci, cj), n) < cfg.ValueThreshold {
					continue
				}
				key := pc.key(i, j)
				cached := pc.get(key)
				var cij int
				if cached != nil {
					cij = cached.Count()
				} else {
					cij = va.AndCount(xb.Bitmap(j))
				}
				valueMI := metrics.MutualInformationTerm(cij, ci, cj, n)
				if valueMI < cfg.ValueThreshold {
					continue
				}
				joint := cached
				if joint == nil {
					joint = va.And(xb.Bitmap(j))
					pc.put(key, joint)
				}
				out = append(out, scanUnits(i, j, valueMI, joint.CountUnits(cfg.UnitSize), unitsA[i], unitsB[j], n, cfg)...)
			}
		}
		// Store under the span's slot; spans are disjoint so index by a
		// stable key derived from lo.
		results[workerSlot(lo, xa.Bins(), nWorkers)] = out
	})
	var out []Finding
	for _, part := range results {
		out = append(out, part...)
	}
	// Parts are already bin-ordered within themselves and slots are in
	// ascending lo order, so the concatenation matches Mine's order; sort
	// defensively to keep the contract explicit.
	sort.Slice(out, func(a, b int) bool {
		if out[a].BinA != out[b].BinA {
			return out[a].BinA < out[b].BinA
		}
		if out[a].BinB != out[b].BinB {
			return out[a].BinB < out[b].BinB
		}
		return out[a].Unit < out[b].Unit
	})
	return out, nil
}

// workerSlot maps a span start to its worker slot under sim.ParallelFor's
// deterministic decomposition (first `extra` spans are one larger).
func workerSlot(lo, n, workers int) int {
	if workers > n {
		workers = n
	}
	chunk := n / workers
	extra := n % workers
	// Spans: the first `extra` have size chunk+1.
	boundary := extra * (chunk + 1)
	if lo < boundary {
		return lo / (chunk + 1)
	}
	if chunk == 0 {
		return extra
	}
	return extra + (lo-boundary)/chunk
}

// Merge coalesces findings of the same bin pair whose spatial units are
// adjacent along the element layout into contiguous regions — with Z-order
// layouts, runs of adjacent units are spatially compact blocks. The merged
// region keeps the maximum local MI of its units.
type Region struct {
	BinA, BinB int
	Begin, End int
	Units      int
	MaxMI      float64
}

// MergeFindings groups per-unit findings into regions.
func MergeFindings(fs []Finding) []Region {
	if len(fs) == 0 {
		return nil
	}
	sorted := append([]Finding(nil), fs...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].BinA != sorted[b].BinA {
			return sorted[a].BinA < sorted[b].BinA
		}
		if sorted[a].BinB != sorted[b].BinB {
			return sorted[a].BinB < sorted[b].BinB
		}
		return sorted[a].Unit < sorted[b].Unit
	})
	var out []Region
	cur := Region{BinA: sorted[0].BinA, BinB: sorted[0].BinB,
		Begin: sorted[0].Begin, End: sorted[0].End, Units: 1, MaxMI: sorted[0].SpatialMI}
	lastUnit := sorted[0].Unit
	for _, f := range sorted[1:] {
		if f.BinA == cur.BinA && f.BinB == cur.BinB && f.Unit == lastUnit+1 {
			cur.End = f.End
			cur.Units++
			if f.SpatialMI > cur.MaxMI {
				cur.MaxMI = f.SpatialMI
			}
		} else {
			out = append(out, cur)
			cur = Region{BinA: f.BinA, BinB: f.BinB, Begin: f.Begin, End: f.End, Units: 1, MaxMI: f.SpatialMI}
		}
		lastUnit = f.Unit
	}
	return append(out, cur)
}
