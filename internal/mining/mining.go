// Package mining implements the paper's offline analysis: correlation mining
// between two variables (§4, Algorithm 2). Joint bitvectors are produced by
// AND-ing every bin pair, low-correlation value subsets are pruned top-down
// with threshold T (justified by the paper's Equation 7), and surviving
// joint vectors are scanned bottom-up over basic spatial units with
// threshold T' (Equation 8 shows why spatial pruning cannot be top-down).
// Spatial units are contiguous ranges of the (Z-order) element layout, so
// per-unit counting is CountRange on compressed vectors.
package mining

import (
	"fmt"
	"math"
	"time"

	"insitubits/internal/binning"
	"insitubits/internal/bitcache"
	"insitubits/internal/bitvec"
	"insitubits/internal/index"
	"insitubits/internal/metrics"
	"insitubits/internal/qlog"
	"insitubits/internal/query"
)

// Config parameterizes Algorithm 2.
type Config struct {
	// UnitSize is the basic spatial unit in elements. With Z-order layout
	// this is the paper's "smallest unit of Z orders"; powers of two keep
	// units cube-shaped.
	UnitSize int
	// ValueThreshold is T: a joint bin (value-subset pair) whose global
	// mutual-information term falls below it is pruned before any spatial
	// work (Algorithm 2 line 5).
	ValueThreshold float64
	// SpatialThreshold is T': a spatial unit is reported only if its local
	// mutual-information term reaches it (Algorithm 2 line 8).
	SpatialThreshold float64
	// Slow, when set, receives one profile per bin pair surviving the value
	// filter in Mine — the pairs that pay for a materialized AND and the
	// per-unit scan — ranked by wall time. Profiles also feed the
	// process-wide slow-query log (query.SetSlowLog). Nil disables.
	Slow *query.TopK
	// Cache overrides the process-default materialized-bitmap cache
	// (bitcache.Default()) for joint vectors. Bin-pair joints are keyed by
	// the same canonical AND keys the query planner uses, so joints
	// materialized by one mining run — or by a correlation query over the
	// same indices — are reused by the next. Nil falls back to the default;
	// when that is also nil (no cache installed), caching is off and the
	// per-pair work is exactly the pre-cache computation.
	Cache *bitcache.Cache
}

// cache resolves the effective joint-vector cache for a run.
func (c Config) cache() *bitcache.Cache {
	if c.Cache != nil {
		return c.Cache
	}
	return bitcache.Default()
}

// pairCache consults the bitmap cache for materialized bin-pair joints of
// one (xa, xb) run. The zero value (nil cache) is inert.
type pairCache struct {
	c          *bitcache.Cache
	genA, genB uint64
}

func newPairCache(cfg Config, xa, xb *index.Index) pairCache {
	return pairCache{c: cfg.cache(), genA: xa.Generation(), genB: xb.Generation()}
}

func (p pairCache) key(i, j int) string {
	if p.c == nil {
		return ""
	}
	return bitcache.AndKey(bitcache.BinKey(p.genA, i), bitcache.BinKey(p.genB, j))
}

func (p pairCache) get(key string) bitvec.Bitmap {
	if key == "" {
		return nil
	}
	return p.c.Get(key)
}

func (p pairCache) put(key string, joint bitvec.Bitmap) {
	if key != "" {
		p.c.Put(key, joint, p.genA, p.genB)
	}
}

func (c Config) validate(n int) error {
	if c.UnitSize <= 0 || c.UnitSize > n {
		return fmt.Errorf("mining: unit size %d out of range [1,%d]", c.UnitSize, n)
	}
	if c.ValueThreshold < 0 || c.SpatialThreshold < 0 {
		return fmt.Errorf("mining: negative thresholds (%g, %g)", c.ValueThreshold, c.SpatialThreshold)
	}
	return nil
}

// Finding is one mined (value-subset pair, spatial unit) with high local
// correlation.
type Finding struct {
	BinA, BinB int     // value-subset bins of the two variables
	Unit       int     // spatial unit index along the element layout
	Begin, End int     // element range [Begin, End) of the unit
	ValueMI    float64 // the joint bin's global MI term (Algorithm 2 line 4)
	SpatialMI  float64 // the unit's local MI term (Algorithm 2 line 7)
}

// Mine runs Algorithm 2 over two single-level indices built over the same
// element layout.
func Mine(xa, xb *index.Index, cfg Config) ([]Finding, error) {
	if xa.N() != xb.N() {
		return nil, fmt.Errorf("mining: indices over %d and %d elements", xa.N(), xb.N())
	}
	if err := cfg.validate(xa.N()); err != nil {
		return nil, err
	}
	n := xa.N()
	pc := newPairCache(cfg, xa, xb)
	// Per-unit marginal counts are computed lazily: only needed once a
	// pair survives the value filter.
	var unitsA, unitsB [][]int
	var out []Finding
	for i := 0; i < xa.Bins(); i++ { // Algorithm 2 lines 1-2
		ci := xa.Count(i)
		if ci == 0 {
			continue
		}
		va := xa.Bitmap(i)
		for j := 0; j < xb.Bins(); j++ {
			cj := xb.Count(j)
			if cj == 0 {
				continue
			}
			// Cheap pre-filter: the joint count cannot exceed either
			// marginal, so the pair's MI term is bounded before any AND.
			if childTermUpperBound(minInt(ci, cj), n) < cfg.ValueThreshold {
				continue
			}
			start := time.Now()
			key := pc.key(i, j)
			cached := pc.get(key)
			var cij int
			if cached != nil {
				cij = cached.Count() // popcount of the cached joint
			} else {
				cij = va.AndCount(xb.Bitmap(j)) // line 3: LogicAND (count only)
			}
			valueMI := metrics.MutualInformationTerm(cij, ci, cj, n) // line 4
			if valueMI < cfg.ValueThreshold {                        // line 5
				continue
			}
			if unitsA == nil {
				unitsA = unitCounts(xa, cfg.UnitSize)
				unitsB = unitCounts(xb, cfg.UnitSize)
			}
			joint := cached
			if joint == nil {
				joint = va.And(xb.Bitmap(j))
				pc.put(key, joint)
			}
			jointUnits := joint.CountUnits(cfg.UnitSize)
			found := scanUnits(i, j, valueMI, jointUnits, unitsA[i], unitsB[j], n, cfg)
			out = append(out, found...)
			profilePair(cfg, xa, xb, i, j, valueMI, joint, len(found), time.Since(start), pairVerdict(key, cached))
		}
	}
	return out, nil
}

// pairVerdict names the cache outcome of one surviving bin pair for its
// slow-log record: "" when no cache was consulted (annotation-free profiles,
// byte-identical to pre-cache runs).
func pairVerdict(key string, cached bitvec.Bitmap) string {
	switch {
	case key == "":
		return ""
	case cached != nil:
		return "hit"
	default:
		return "miss"
	}
}

// profilePair records one surviving bin pair's bitmap work for cfg.Slow and
// the slow-query log. Costs come from the operands' encoded shape (O(1)
// metadata reads, no decode). On a cache miss (or with no cache) the pair
// consumed both bin bitmaps twice — once for the AndCount filter, once for
// the materialized AND; on a hit both steps were answered from the cached
// joint, each charged one scan of its encoding — the operand scans are the
// work the cache saved, and their absence is what the scan-reduction test
// measures. verdict ("hit"/"miss"/"") annotates the nodes and the record
// header so `bitmapctl mine -slow` shows the outcome per pair.
func profilePair(cfg Config, xa, xb *index.Index, i, j int, valueMI float64, joint bitvec.Bitmap, found int, elapsed time.Duration, verdict string) {
	if cfg.Slow == nil {
		return
	}
	jointScan := query.Cost{WordsScanned: int64(joint.Words()), BytesDecoded: int64(joint.SizeBytes())}
	andCount := &query.Node{Op: "and-count", Detail: "value filter", Bin: -1, Cache: verdict}
	and := &query.Node{Op: "and", Detail: "materialize joint vector", Bin: -1, Cache: verdict}
	if verdict == "hit" {
		andCount.Cost = jointScan
		and.Cost = jointScan
	} else {
		opCost := func(x *index.Index, b int) query.Cost {
			bm := x.Bitmap(b)
			return query.Cost{WordsScanned: int64(bm.Words()), BytesDecoded: int64(bm.SizeBytes())}
		}
		andCount.Cost.WordsScanned = opCost(xa, i).WordsScanned + opCost(xb, j).WordsScanned
		andCount.Cost.BytesDecoded = opCost(xa, i).BytesDecoded + opCost(xb, j).BytesDecoded
		and.Cost = andCount.Cost
	}
	and.Cost.OutWords = joint.Words()
	units := &query.Node{
		Op: "count-units", Detail: fmt.Sprintf("unit size %d", cfg.UnitSize), Bin: -1,
		Cost: query.Cost{WordsScanned: int64(joint.Words()), BytesDecoded: int64(joint.SizeBytes()), Rows: int64(found)},
	}
	detail := fmt.Sprintf("binA=%d (%s) binB=%d (%s) valueMI=%.4g findings=%d", i, xa.Codec(i), j, xb.Codec(j), valueMI, found)
	if verdict != "" {
		detail += " cache=" + verdict
	}
	p := &query.Profile{
		Query:     "mine.pair",
		Mode:      query.ModeAnalyze,
		Detail:    detail,
		ElapsedNs: elapsed.Nanoseconds(),
		Root:      &query.Node{Op: "mine.pair", Bin: -1, Children: []*query.Node{andCount, and, units}},
	}
	cfg.Slow.Offer(p)
	query.LogSlow(p)
	query.CaptureProfile(p, qlog.DigestFloats(valueMI, float64(found)))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// scanUnits is Algorithm 2's spatial loop (lines 6-11): the local MI term of
// each unit, computed from unit-local joint and marginal counts.
func scanUnits(binA, binB int, valueMI float64, joint, ca, cb []int, n int, cfg Config) []Finding {
	var out []Finding
	for u := range joint {
		if joint[u] == 0 {
			continue
		}
		begin := u * cfg.UnitSize
		end := begin + cfg.UnitSize
		if end > n {
			end = n
		}
		local := metrics.MutualInformationTerm(joint[u], ca[u], cb[u], end-begin)
		if local >= cfg.SpatialThreshold { // line 8
			out = append(out, Finding{
				BinA: binA, BinB: binB,
				Unit: u, Begin: begin, End: end,
				ValueMI: valueMI, SpatialMI: local,
			})
		}
	}
	return out
}

// unitCounts materializes per-unit 1-bit counts for every bin of an index.
func unitCounts(x *index.Index, unitSize int) [][]int {
	out := make([][]int, x.Bins())
	for b := range out {
		out[b] = x.Bitmap(b).CountUnits(unitSize)
	}
	return out
}

// MineMultiLevel is the paper's multi-level optimization (§4.2): high-level
// (coarse) joint bins are tested first, and only the low-level children of
// promising high-level pairs are examined. The skip test uses a provable
// upper bound on any child's MI term derived from the high-level joint
// count, so the result set is guaranteed identical to Mine on the low level.
func MineMultiLevel(mla, mlb *index.MultiLevel, cfg Config) ([]Finding, error) {
	xa, xb := mla.Low, mlb.Low
	if xa.N() != xb.N() {
		return nil, fmt.Errorf("mining: indices over %d and %d elements", xa.N(), xb.N())
	}
	if err := cfg.validate(xa.N()); err != nil {
		return nil, err
	}
	n := xa.N()
	pc := newPairCache(cfg, xa, xb)
	var unitsA, unitsB [][]int // computed lazily: only if any pair survives
	var out []Finding
	for hi := 0; hi < mla.High.Bins(); hi++ {
		if mla.High.Count(hi) == 0 {
			continue
		}
		vhi := mla.High.Bitmap(hi)
		for hj := 0; hj < mlb.High.Bins(); hj++ {
			if mlb.High.Count(hj) == 0 {
				continue
			}
			cHH := vhi.AndCount(mlb.High.Bitmap(hj))
			if childTermUpperBound(cHH, n) < cfg.ValueThreshold {
				continue // no child pair can pass T
			}
			loA, hiA := mla.G.Children(hi)
			loB, hiB := mlb.G.Children(hj)
			for i := loA; i < hiA; i++ {
				ci := xa.Count(i)
				if ci == 0 {
					continue
				}
				va := xa.Bitmap(i)
				for j := loB; j < hiB; j++ {
					cj := xb.Count(j)
					if cj == 0 {
						continue
					}
					if childTermUpperBound(minInt(ci, cj), n) < cfg.ValueThreshold {
						continue
					}
					key := pc.key(i, j)
					cached := pc.get(key)
					var cij int
					if cached != nil {
						cij = cached.Count()
					} else {
						cij = va.AndCount(xb.Bitmap(j))
					}
					valueMI := metrics.MutualInformationTerm(cij, ci, cj, n)
					if valueMI < cfg.ValueThreshold {
						continue
					}
					if unitsA == nil {
						unitsA = unitCounts(xa, cfg.UnitSize)
						unitsB = unitCounts(xb, cfg.UnitSize)
					}
					joint := cached
					if joint == nil {
						joint = va.And(xb.Bitmap(j))
						pc.put(key, joint)
					}
					jointUnits := joint.CountUnits(cfg.UnitSize)
					out = append(out, scanUnits(i, j, valueMI, jointUnits, unitsA[i], unitsB[j], n, cfg)...)
				}
			}
		}
	}
	return out, nil
}

// childTermUpperBound bounds the MI term of any low-level child pair whose
// joint count is at most cHH. With p = c/n for a child pair, its term is
// p·log2(p/(pa·pb)) ≤ p·log2(1/p) because pa, pb ≥ p. The map p ↦ p·log2(1/p)
// increases until p = 1/e, so capping there yields a monotone, safe bound.
func childTermUpperBound(cHH, n int) float64 {
	if cHH == 0 || n == 0 {
		return 0
	}
	p := float64(cHH) / float64(n)
	if p > 1/math.E {
		p = 1 / math.E
	}
	return p * math.Log2(1/p)
}

// MineFullData is the exhaustive full-data baseline the paper compares
// against (§5.4): the value filter needs one full scan to build the joint
// histogram, and every surviving bin pair then re-scans the raw arrays to
// assemble its per-unit counts. Results are identical to Mine with the same
// binning; only the cost differs.
func MineFullData(a, b []float64, ma, mb binning.Mapper, cfg Config) ([]Finding, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("mining: arrays of %d and %d elements", len(a), len(b))
	}
	if err := cfg.validate(len(a)); err != nil {
		return nil, err
	}
	n := len(a)
	joint := metrics.JointHistogram(a, b, ma, mb)
	ha := metrics.Histogram(a, ma)
	hb := metrics.Histogram(b, mb)
	nUnits := (n + cfg.UnitSize - 1) / cfg.UnitSize
	var out []Finding
	for i := range joint {
		for j := range joint[i] {
			valueMI := metrics.MutualInformationTerm(joint[i][j], ha[i], hb[j], n)
			if valueMI < cfg.ValueThreshold {
				continue
			}
			// Exhaustive per-pair re-scan: unit-local joint and marginals.
			ju := make([]int, nUnits)
			cau := make([]int, nUnits)
			cbu := make([]int, nUnits)
			for k := range a {
				u := k / cfg.UnitSize
				ba, bb := ma.Bin(a[k]), mb.Bin(b[k])
				if ba == i {
					cau[u]++
				}
				if bb == j {
					cbu[u]++
				}
				if ba == i && bb == j {
					ju[u]++
				}
			}
			out = append(out, scanUnits(i, j, valueMI, ju, cau, cbu, n, cfg)...)
		}
	}
	return out, nil
}

// DefaultValueThreshold derives the paper's rule for T: even if every 1-bit
// of a joint bin landed in a single spatial unit, a bin with fewer than
// minCount elements is still considered uncorrelated. The returned T is the
// largest MI term such a bin could achieve.
func DefaultValueThreshold(minCount, n int) float64 {
	return childTermUpperBound(minCount, n)
}
