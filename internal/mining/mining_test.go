package mining

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"insitubits/internal/binning"
	"insitubits/internal/index"
)

// correlatedPair fabricates two variables that are independent noise except
// inside a planted element range where B tracks A's bin exactly.
func correlatedPair(r *rand.Rand, n, plantLo, plantHi int) (a, b []float64) {
	a = make([]float64, n)
	b = make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = r.Float64() * 10
		if i >= plantLo && i < plantHi {
			b[i] = a[i] // perfectly correlated inside the planted region
		} else {
			b[i] = r.Float64() * 10
		}
	}
	return a, b
}

func mapper(t *testing.T, bins int) binning.Mapper {
	t.Helper()
	m, err := binning.NewUniform(0, 10, bins)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.BinA != b.BinA {
			return a.BinA < b.BinA
		}
		if a.BinB != b.BinB {
			return a.BinB < b.BinB
		}
		return a.Unit < b.Unit
	})
}

func assertSameFindings(t *testing.T, name string, got, want []Finding) {
	t.Helper()
	sortFindings(got)
	sortFindings(want)
	if len(got) != len(want) {
		t.Fatalf("%s: %d findings, want %d", name, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.BinA != w.BinA || g.BinB != w.BinB || g.Unit != w.Unit || g.Begin != w.Begin || g.End != w.End {
			t.Fatalf("%s: finding %d = %+v, want %+v", name, i, g, w)
		}
		if math.Abs(g.ValueMI-w.ValueMI) > 1e-9 || math.Abs(g.SpatialMI-w.SpatialMI) > 1e-9 {
			t.Fatalf("%s: finding %d MI (%g,%g) want (%g,%g)", name, i, g.ValueMI, g.SpatialMI, w.ValueMI, w.SpatialMI)
		}
	}
}

func TestMineFindsPlantedRegion(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	n := 8192
	plantLo, plantHi := 4096, 4096+1024
	a, b := correlatedPair(r, n, plantLo, plantHi)
	m := mapper(t, 16)
	xa, xb := index.Build(a, m), index.Build(b, m)
	cfg := Config{UnitSize: 256, ValueThreshold: 0.001, SpatialThreshold: 0.05}
	fs, err := Mine(xa, xb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) == 0 {
		t.Fatal("no findings")
	}
	// Every unit inside the planted region must be hit by some finding, and
	// the bulk of findings must lie inside it.
	inPlant := 0
	unitsHit := map[int]bool{}
	for _, f := range fs {
		if f.Begin >= plantLo && f.End <= plantHi {
			inPlant++
			unitsHit[f.Unit] = true
		}
		if f.BinA != f.BinB {
			t.Fatalf("planted correlation is diagonal, got finding %+v", f)
		}
	}
	if frac := float64(inPlant) / float64(len(fs)); frac < 0.9 {
		t.Fatalf("only %.0f%% of findings inside planted region", 100*frac)
	}
	if len(unitsHit) < (plantHi-plantLo)/cfg.UnitSize/2 {
		t.Fatalf("planted region coverage too sparse: %d units", len(unitsHit))
	}
}

func TestMineMatchesFullData(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		n := 2048 + 31*r.Intn(40)
		a, b := correlatedPair(r, n, n/4, n/2)
		m := mapper(t, 8+r.Intn(12))
		xa, xb := index.Build(a, m), index.Build(b, m)
		cfg := Config{UnitSize: 128, ValueThreshold: 0.0005, SpatialThreshold: 0.02}
		bm, err := Mine(xa, xb, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fd, err := MineFullData(a, b, m, m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameFindings(t, "bitmaps vs full data", bm, fd)
	}
}

func TestMineMultiLevelMatchesFlat(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		n := 4096
		a, b := correlatedPair(r, n, 512, 1536)
		m := mapper(t, 24)
		xa, xb := index.Build(a, m), index.Build(b, m)
		mla, err := index.BuildMultiLevel(xa, 4)
		if err != nil {
			t.Fatal(err)
		}
		mlb, err := index.BuildMultiLevel(xb, 4)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{UnitSize: 256, ValueThreshold: 0.002, SpatialThreshold: 0.05}
		flat, err := Mine(xa, xb, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ml, err := MineMultiLevel(mla, mlb, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameFindings(t, "multi-level vs flat", ml, flat)
	}
}

func TestMineUncorrelatedFindsLittle(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	n := 8192
	a, b := correlatedPair(r, n, 0, 0) // no planted region at all
	m := mapper(t, 16)
	cfg := Config{UnitSize: 256, ValueThreshold: 0.001, SpatialThreshold: 0.2}
	fs, err := Mine(index.Build(a, m), index.Build(b, m), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) > 3 {
		t.Fatalf("independent noise produced %d findings", len(fs))
	}
}

func TestThresholdsMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	n := 4096
	a, b := correlatedPair(r, n, 1024, 2048)
	m := mapper(t, 16)
	xa, xb := index.Build(a, m), index.Build(b, m)
	prev := -1
	for _, thr := range []float64{0.0, 0.01, 0.05, 0.2} {
		fs, err := Mine(xa, xb, Config{UnitSize: 256, ValueThreshold: 0.0005, SpatialThreshold: thr})
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && len(fs) > prev {
			t.Fatalf("raising T' increased findings: %d -> %d", prev, len(fs))
		}
		prev = len(fs)
	}
}

func TestConfigValidation(t *testing.T) {
	m := mapper(t, 4)
	x := index.Build(make([]float64, 100), m)
	cases := []Config{
		{UnitSize: 0, ValueThreshold: 0, SpatialThreshold: 0},
		{UnitSize: 101, ValueThreshold: 0, SpatialThreshold: 0},
		{UnitSize: 10, ValueThreshold: -1, SpatialThreshold: 0},
		{UnitSize: 10, ValueThreshold: 0, SpatialThreshold: -1},
	}
	for i, cfg := range cases {
		if _, err := Mine(x, x, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	// Mismatched element counts.
	y := index.Build(make([]float64, 50), m)
	if _, err := Mine(x, y, Config{UnitSize: 10}); err == nil {
		t.Error("mismatched indices accepted")
	}
	if _, err := MineFullData(make([]float64, 10), make([]float64, 9), m, m, Config{UnitSize: 2}); err == nil {
		t.Error("mismatched arrays accepted")
	}
}

func TestChildTermUpperBoundIsSound(t *testing.T) {
	// For random joint distributions, no child term may exceed the bound
	// computed from any count >= the child count.
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 2000; trial++ {
		n := 100 + r.Intn(10000)
		cij := r.Intn(n + 1)
		ci := cij + r.Intn(n-cij+1)
		cj := cij + r.Intn(n-cij+1)
		term := termFor(cij, ci, cj, n)
		if bound := childTermUpperBound(cij, n); term > bound+1e-12 {
			t.Fatalf("term %g exceeds bound %g (cij=%d ci=%d cj=%d n=%d)", term, bound, cij, ci, cj, n)
		}
		// Bound must be monotone in the count.
		if cij+1 <= n {
			if childTermUpperBound(cij, n) > childTermUpperBound(cij+1, n)+1e-12 {
				t.Fatalf("bound not monotone at cij=%d n=%d", cij, n)
			}
		}
	}
}

func termFor(cij, ci, cj, n int) float64 {
	if cij == 0 || ci == 0 || cj == 0 {
		return 0
	}
	p := float64(cij) / float64(n)
	return p * math.Log2(p/(float64(ci)/float64(n)*float64(cj)/float64(n)))
}

func TestDefaultValueThreshold(t *testing.T) {
	if DefaultValueThreshold(0, 1000) != 0 {
		t.Error("zero count should yield zero threshold")
	}
	lo := DefaultValueThreshold(5, 10000)
	hi := DefaultValueThreshold(50, 10000)
	if !(lo < hi) {
		t.Errorf("threshold not increasing with count: %g vs %g", lo, hi)
	}
}

func TestFindingRanges(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	n := 1000 // not a multiple of the unit size: last unit must be short
	a, b := correlatedPair(r, n, 0, n)
	m := mapper(t, 8)
	fs, err := Mine(index.Build(a, m), index.Build(b, m), Config{UnitSize: 300, ValueThreshold: 0, SpatialThreshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		if f.Begin != f.Unit*300 {
			t.Fatalf("finding %+v: Begin inconsistent with Unit", f)
		}
		want := f.Begin + 300
		if want > n {
			want = n
		}
		if f.End != want {
			t.Fatalf("finding %+v: End=%d want %d", f, f.End, want)
		}
	}
}
