// Package iosim provides bandwidth-modelled storage accounting. A Store
// tallies the bytes written to a device of fixed bandwidth and reports the
// modelled transfer time, optionally passing the bytes through to a real
// io.Writer. Sharing one Store between several writers models contention on
// a shared device (the paper's single remote data server in Figure 13):
// modelled time is total bytes over device bandwidth regardless of who
// wrote them.
package iosim

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Store is a bandwidth-modelled storage target. Safe for concurrent use.
type Store struct {
	mu            sync.Mutex
	bandwidthMBps float64
	bytes         int64
	writes        int64
	sink          io.Writer // optional write-through
}

// NewStore models a device with the given bandwidth in MB/s.
func NewStore(bandwidthMBps float64) (*Store, error) {
	if bandwidthMBps <= 0 {
		return nil, fmt.Errorf("iosim: bandwidth %g MB/s must be positive", bandwidthMBps)
	}
	return &Store{bandwidthMBps: bandwidthMBps}, nil
}

// NewStoreWriter models a device and forwards all written bytes to sink.
func NewStoreWriter(bandwidthMBps float64, sink io.Writer) (*Store, error) {
	s, err := NewStore(bandwidthMBps)
	if err != nil {
		return nil, err
	}
	s.sink = sink
	return s, nil
}

// Write implements io.Writer, accounting (and optionally forwarding) p.
// With a sink attached, only the bytes the sink actually accepted are
// accounted: a short write must not inflate the modelled transfer volume.
func (s *Store) Write(p []byte) (int, error) {
	s.mu.Lock()
	sink := s.sink
	s.mu.Unlock()
	n, err := len(p), error(nil)
	if sink != nil {
		n, err = sink.Write(p)
	}
	s.mu.Lock()
	s.bytes += int64(n)
	s.writes++
	s.mu.Unlock()
	return n, err
}

// Account records n bytes without materializing them — used when the
// experiment only needs the cost model, not the artifact.
func (s *Store) Account(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("iosim: negative byte count %d", n))
	}
	s.mu.Lock()
	s.bytes += n
	s.writes++
	s.mu.Unlock()
}

// BytesWritten returns the total bytes recorded so far.
func (s *Store) BytesWritten() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Writes returns the number of write operations recorded.
func (s *Store) Writes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writes
}

// BandwidthMBps returns the modelled device bandwidth.
func (s *Store) BandwidthMBps() float64 { return s.bandwidthMBps }

// ModeledTime converts the bytes written so far into transfer time on the
// modelled device.
func (s *Store) ModeledTime() time.Duration {
	s.mu.Lock()
	b := s.bytes
	s.mu.Unlock()
	return ModelTransfer(b, s.bandwidthMBps)
}

// Reset clears the accounting (bandwidth and sink are kept).
func (s *Store) Reset() {
	s.mu.Lock()
	s.bytes = 0
	s.writes = 0
	s.mu.Unlock()
}

// ModelTransfer returns the time to move n bytes at the given bandwidth.
func ModelTransfer(n int64, bandwidthMBps float64) time.Duration {
	seconds := float64(n) / (bandwidthMBps * 1e6)
	return time.Duration(seconds * float64(time.Second))
}
