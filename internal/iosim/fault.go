// Fault injection: a failpoint layer over the storage path. A FaultPlan is
// a deterministic, seeded schedule of injected storage faults — transient
// errors, short writes, and a crash-at-byte-N kill after which every
// subsequent operation fails, emulating a process or node death mid-write.
// FaultWriter applies a plan to a single io.Writer; FaultFS applies it to a
// whole filesystem (creates, appends, renames, syncs), which is how the
// in-situ pipeline's crash-point suite kills a run at every write boundary
// and then proves Resume recovers the directory.
package iosim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// ErrTransient marks an injected (or real) storage error that a retry may
// clear. The pipeline's bounded-backoff retry only retries errors that
// match it via errors.Is.
var ErrTransient = errors.New("iosim: transient storage error")

// ErrCrashed marks the simulated kill: once a plan crashes, every further
// operation through it fails with this error. It is deliberately not
// transient — nothing recovers inside the dead process; recovery is the
// next process's Resume.
var ErrCrashed = errors.New("iosim: simulated crash")

// IsTransient reports whether err should be retried.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// FaultPlan is a deterministic fault schedule shared by every writer and
// file derived from it. The zero value injects nothing. Safe for concurrent
// use.
type FaultPlan struct {
	// CrashAtByte kills the plan when cumulative payload bytes reach this
	// offset: the write that would cross it lands only the prefix up to the
	// offset, returns ErrCrashed, and every later operation fails. <= 0
	// disables the kill.
	CrashAtByte int64
	// TransientErrs fails the first N write operations with ErrTransient
	// (writing nothing) before letting writes through — the deterministic
	// way to exercise the retry path.
	TransientErrs int
	// TransientProb additionally fails each write with this probability,
	// drawn from the seeded schedule rng (deterministic per Seed).
	TransientProb float64
	// ShortWrites makes injected transient errors land half the buffer
	// first, exercising short-write handling in every accounting layer.
	ShortWrites bool
	// Seed drives the probabilistic schedule; same seed, same schedule.
	Seed int64

	mu      sync.Mutex
	rng     *rand.Rand
	written int64
	ops     int64
	bounds  []int64 // cumulative byte offset after each successful write op
	crashed bool
	errs    int // transient errors injected so far
}

// Crashed reports whether the plan's kill already fired.
func (p *FaultPlan) Crashed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.crashed
}

// BytesWritten is the total payload bytes that landed before any kill.
func (p *FaultPlan) BytesWritten() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.written
}

// WriteBoundaries returns the cumulative byte offset after every write
// operation observed so far. A recording pass over a fault-free plan yields
// the kill schedule for a crash-point suite: crashing at each boundary (and
// between boundaries) covers every write edge of the run.
func (p *FaultPlan) WriteBoundaries() []int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]int64(nil), p.bounds...)
}

// apply consults the schedule for one write of len(p) bytes and returns how
// many bytes the underlying writer should accept plus the injected error
// (nil to pass the write through untouched).
func (p *FaultPlan) apply(n int) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed {
		return 0, ErrCrashed
	}
	p.ops++
	inject := false
	if p.errs < p.TransientErrs {
		p.errs++
		inject = true
	} else if p.TransientProb > 0 {
		if p.rng == nil {
			p.rng = rand.New(rand.NewSource(p.Seed))
		}
		if p.rng.Float64() < p.TransientProb {
			p.errs++
			inject = true
		}
	}
	if inject {
		k := 0
		if p.ShortWrites {
			k = n / 2
		}
		p.written += int64(k)
		return k, fmt.Errorf("iosim: injected fault on write op %d: %w", p.ops, ErrTransient)
	}
	if p.CrashAtByte > 0 && p.written+int64(n) > p.CrashAtByte {
		k := int(p.CrashAtByte - p.written)
		if k < 0 {
			k = 0
		}
		p.written += int64(k)
		p.crashed = true
		return k, fmt.Errorf("iosim: killed at byte %d: %w", p.CrashAtByte, ErrCrashed)
	}
	p.written += int64(n)
	p.bounds = append(p.bounds, p.written)
	return n, nil
}

// op gates a non-write operation (sync, rename, create): after the kill,
// everything fails.
func (p *FaultPlan) op() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.crashed {
		return ErrCrashed
	}
	return nil
}

// FaultWriter applies a FaultPlan to one io.Writer.
type FaultWriter struct {
	W    io.Writer
	Plan *FaultPlan
}

// Write implements io.Writer under the plan's schedule. Injected short
// writes and kills forward only the allowed prefix to the underlying
// writer, so the bytes past the fault genuinely never land.
func (f *FaultWriter) Write(p []byte) (int, error) {
	k, ferr := f.Plan.apply(len(p))
	n := 0
	var err error
	if k > 0 {
		n, err = f.W.Write(p[:k])
	}
	if ferr != nil {
		return n, ferr
	}
	if err != nil {
		return n, err
	}
	if n < len(p) {
		return n, io.ErrShortWrite
	}
	return n, nil
}

// FS is the slim filesystem surface the durable writers go through, so a
// fault plan can intercept every operation a crash could interrupt.
type FS interface {
	// Create truncates/creates the file for writing.
	Create(path string) (File, error)
	// OpenAppend opens the file for appending, creating it if absent.
	OpenAppend(path string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(path string) error
	// SyncDir fsyncs a directory, making renames within it durable.
	SyncDir(dir string) error
}

// File is the writable-file surface of FS.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(path string) (File, error) { return os.Create(path) }

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// NewFaultFS wraps an FS so every file write consults plan and every
// metadata operation fails once the plan has crashed.
func NewFaultFS(base FS, plan *FaultPlan) *FaultFS {
	return &FaultFS{base: base, plan: plan}
}

// FaultFS injects a FaultPlan into a whole filesystem.
type FaultFS struct {
	base FS
	plan *FaultPlan
}

// Plan returns the plan the FS injects.
func (f *FaultFS) Plan() *FaultPlan { return f.plan }

// Create implements FS.
func (f *FaultFS) Create(path string) (File, error) {
	if err := f.plan.op(); err != nil {
		return nil, err
	}
	file, err := f.base.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, w: FaultWriter{W: file, Plan: f.plan}, plan: f.plan}, nil
}

// OpenAppend implements FS.
func (f *FaultFS) OpenAppend(path string) (File, error) {
	if err := f.plan.op(); err != nil {
		return nil, err
	}
	file, err := f.base.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, w: FaultWriter{W: file, Plan: f.plan}, plan: f.plan}, nil
}

// Rename implements FS.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.plan.op(); err != nil {
		return err
	}
	return f.base.Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *FaultFS) Remove(path string) error {
	if err := f.plan.op(); err != nil {
		return err
	}
	return f.base.Remove(path)
}

// SyncDir implements FS.
func (f *FaultFS) SyncDir(dir string) error {
	if err := f.plan.op(); err != nil {
		return err
	}
	return f.base.SyncDir(dir)
}

type faultFile struct {
	File
	w    FaultWriter
	plan *FaultPlan
}

func (f *faultFile) Write(p []byte) (int, error) { return f.w.Write(p) }

func (f *faultFile) Sync() error {
	if err := f.plan.op(); err != nil {
		return err
	}
	return f.File.Sync()
}

// Close always closes the real file (a dead process's descriptors close
// too) but reports the crash so callers don't mistake it for durability.
func (f *faultFile) Close() error {
	err := f.File.Close()
	if perr := f.plan.op(); perr != nil {
		return perr
	}
	return err
}

// Backoff is a bounded exponential-backoff retry policy with jitter for
// transient store errors. The zero value of any field takes the default.
type Backoff struct {
	Tries int           // total attempts, default 4
	Base  time.Duration // first delay, default 1ms
	Max   time.Duration // delay ceiling, default 100ms
	Seed  int64         // jitter seed, default 1 (deterministic tests)
	// OnRetry, if set, observes each retry (attempt index from 1, the
	// error being retried) — the hook the telemetry counters hang off.
	OnRetry func(attempt int, err error)
}

func (b Backoff) withDefaults() Backoff {
	if b.Tries <= 0 {
		b.Tries = 4
	}
	if b.Base <= 0 {
		b.Base = time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 100 * time.Millisecond
	}
	if b.Seed == 0 {
		b.Seed = 1
	}
	return b
}

// Retry runs op, retrying transient errors (IsTransient) up to b.Tries
// attempts with exponential backoff and full jitter. Non-transient errors,
// context cancellation, and exhausted budgets return immediately with the
// last error.
func Retry(ctx context.Context, b Backoff, op func() error) error {
	b = b.withDefaults()
	rng := rand.New(rand.NewSource(b.Seed))
	delay := b.Base
	var err error
	for attempt := 1; ; attempt++ {
		if err = op(); err == nil || !IsTransient(err) {
			return err
		}
		if attempt >= b.Tries {
			return fmt.Errorf("iosim: giving up after %d attempts: %w", attempt, err)
		}
		if b.OnRetry != nil {
			b.OnRetry(attempt, err)
		}
		// Full jitter: sleep a uniform fraction of the current ceiling so
		// concurrent writers don't thunder in lockstep.
		sleep := time.Duration(rng.Int63n(int64(delay) + 1))
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			return fmt.Errorf("iosim: retry cancelled: %w", ctx.Err())
		}
		if delay *= 2; delay > b.Max {
			delay = b.Max
		}
	}
}
