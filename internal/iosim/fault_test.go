package iosim

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestStoreShortWriteAccounting pins the accounting fix: a sink that
// accepts only part of the buffer must leave the store counting the
// accepted bytes, not the attempted ones, and the sink's error must
// surface.
func TestStoreShortWriteAccounting(t *testing.T) {
	plan := &FaultPlan{TransientErrs: 1, ShortWrites: true}
	var buf bytes.Buffer
	s, err := NewStoreWriter(100, &FaultWriter{W: &buf, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Write(make([]byte, 100))
	if err == nil {
		t.Fatal("short write reported no error")
	}
	if n != 50 {
		t.Fatalf("sink accepted 50 bytes, Write returned %d", n)
	}
	if s.BytesWritten() != 50 {
		t.Fatalf("store accounted %d bytes for a 50-byte short write", s.BytesWritten())
	}
	if s.Writes() != 1 {
		t.Fatalf("Writes = %d", s.Writes())
	}
	// The next write goes through and accounting resumes from the truth.
	if n, err := s.Write(make([]byte, 10)); err != nil || n != 10 {
		t.Fatalf("post-fault write = %d, %v", n, err)
	}
	if s.BytesWritten() != 60 {
		t.Fatalf("accounted %d bytes total", s.BytesWritten())
	}
}

func TestFaultWriterTransientThenClear(t *testing.T) {
	plan := &FaultPlan{TransientErrs: 2}
	var buf bytes.Buffer
	w := &FaultWriter{W: &buf, Plan: plan}
	for i := 0; i < 2; i++ {
		if n, err := w.Write([]byte("abc")); !IsTransient(err) || n != 0 {
			t.Fatalf("op %d: n=%d err=%v, want injected transient", i, n, err)
		}
	}
	if n, err := w.Write([]byte("abc")); err != nil || n != 3 {
		t.Fatalf("post-transient write = %d, %v", n, err)
	}
	if buf.String() != "abc" {
		t.Fatalf("sink holds %q", buf.String())
	}
}

func TestFaultWriterCrashAtByte(t *testing.T) {
	plan := &FaultPlan{CrashAtByte: 5}
	var buf bytes.Buffer
	w := &FaultWriter{W: &buf, Plan: plan}
	if n, err := w.Write([]byte("abc")); err != nil || n != 3 {
		t.Fatalf("pre-crash write = %d, %v", n, err)
	}
	// This write crosses byte 5: only 2 more bytes land, then the kill.
	n, err := w.Write([]byte("defg"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crossing write err = %v", err)
	}
	if n != 2 {
		t.Fatalf("crossing write landed %d bytes, want 2", n)
	}
	if buf.String() != "abcde" {
		t.Fatalf("sink holds %q, want the 5-byte prefix", buf.String())
	}
	if !plan.Crashed() {
		t.Fatal("plan not crashed")
	}
	// Everything after the kill fails, writes and metadata alike.
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write err = %v", err)
	}
	if IsTransient(err) {
		t.Fatal("crash classified as transient")
	}
}

func TestFaultPlanBoundariesDeterministic(t *testing.T) {
	run := func() []int64 {
		plan := &FaultPlan{}
		w := &FaultWriter{W: io.Discard, Plan: plan}
		for _, n := range []int{3, 7, 1} {
			if _, err := w.Write(make([]byte, n)); err != nil {
				t.Fatal(err)
			}
		}
		return plan.WriteBoundaries()
	}
	a, b := run(), run()
	want := []int64{3, 10, 11}
	for i := range want {
		if a[i] != want[i] || b[i] != want[i] {
			t.Fatalf("boundaries %v / %v, want %v", a, b, want)
		}
	}
}

func TestFaultFSKillsMetadataOps(t *testing.T) {
	dir := t.TempDir()
	plan := &FaultPlan{CrashAtByte: 4}
	fs := NewFaultFS(OS, plan)
	f, err := fs.Create(filepath.Join(dir, "a.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("123456")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write err = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync err = %v", err)
	}
	f.Close()
	if err := fs.Rename(filepath.Join(dir, "a.tmp"), filepath.Join(dir, "a")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename err = %v", err)
	}
	if err := fs.SyncDir(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("syncdir err = %v", err)
	}
	if _, err := fs.Create(filepath.Join(dir, "b")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("create err = %v", err)
	}
	// Only the 4-byte prefix ever reached the disk.
	data, err := os.ReadFile(filepath.Join(dir, "a.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "1234" {
		t.Fatalf("temp file holds %q", data)
	}
}

func TestRetryTransient(t *testing.T) {
	calls, retries := 0, 0
	err := Retry(context.Background(), Backoff{Tries: 5, Base: time.Microsecond, OnRetry: func(int, error) { retries++ }},
		func() error {
			calls++
			if calls < 3 {
				return ErrTransient
			}
			return nil
		})
	if err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if calls != 3 || retries != 2 {
		t.Fatalf("calls=%d retries=%d", calls, retries)
	}
}

func TestRetryGivesUpAndSkipsNonTransient(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), Backoff{Tries: 3, Base: time.Microsecond}, func() error {
		calls++
		return ErrTransient
	})
	if !IsTransient(err) || calls != 3 {
		t.Fatalf("calls=%d err=%v", calls, err)
	}
	calls = 0
	fatal := errors.New("disk on fire")
	err = Retry(context.Background(), Backoff{Tries: 3, Base: time.Microsecond}, func() error {
		calls++
		return fatal
	})
	if !errors.Is(err, fatal) || calls != 1 {
		t.Fatalf("non-transient retried: calls=%d err=%v", calls, err)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Retry(ctx, Backoff{Tries: 10, Base: time.Hour}, func() error { return ErrTransient })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}
