package iosim

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

func TestStoreValidation(t *testing.T) {
	if _, err := NewStore(0); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := NewStore(-5); err == nil {
		t.Error("negative bandwidth accepted")
	}
}

func TestAccounting(t *testing.T) {
	s, err := NewStore(100)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := s.Write(make([]byte, 1000)); err != nil || n != 1000 {
		t.Fatalf("Write = %d, %v", n, err)
	}
	s.Account(9000)
	if s.BytesWritten() != 10000 {
		t.Fatalf("BytesWritten = %d", s.BytesWritten())
	}
	if s.Writes() != 2 {
		t.Fatalf("Writes = %d", s.Writes())
	}
	// 10 kB at 100 MB/s = 100 µs.
	if got, want := s.ModeledTime(), 100*time.Microsecond; got != want {
		t.Fatalf("ModeledTime = %v want %v", got, want)
	}
	s.Reset()
	if s.BytesWritten() != 0 || s.ModeledTime() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestWriteThrough(t *testing.T) {
	var buf bytes.Buffer
	s, err := NewStoreWriter(10, &buf)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello bitmaps")
	if _, err := s.Write(payload); err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(payload) {
		t.Fatalf("sink got %q", buf.String())
	}
	if s.BytesWritten() != int64(len(payload)) {
		t.Fatalf("accounted %d bytes", s.BytesWritten())
	}
}

func TestSharedContention(t *testing.T) {
	// Two writers sharing one store accumulate on the same device: the
	// modelled time is the sum, which is exactly the remote-server
	// contention of Figure 13.
	s, _ := NewStore(100)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.Account(1000)
			}
		}()
	}
	wg.Wait()
	if s.BytesWritten() != 800000 {
		t.Fatalf("BytesWritten = %d", s.BytesWritten())
	}
	if s.Writes() != 800 {
		t.Fatalf("Writes = %d", s.Writes())
	}
}

func TestAccountNegativePanics(t *testing.T) {
	s, _ := NewStore(1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative Account did not panic")
		}
	}()
	s.Account(-1)
}

func TestModelTransfer(t *testing.T) {
	if d := ModelTransfer(100e6, 100); d != time.Second {
		t.Fatalf("100 MB at 100 MB/s = %v", d)
	}
	if d := ModelTransfer(0, 100); d != 0 {
		t.Fatalf("0 bytes = %v", d)
	}
}
