package insitu

import (
	"testing"

	"insitubits/internal/iosim"
	"insitubits/internal/selection"
	"insitubits/internal/sim/heat3d"
	"insitubits/internal/sim/lulesh"
)

func heatConfig(t *testing.T, method Method) Config {
	t.Helper()
	h, err := heat3d.New(16, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	st, err := iosim.NewStore(100)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Sim:    h,
		Steps:  20,
		Select: 5,
		Method: method,
		Bins:   64,
		Metric: selection.ConditionalEntropy,
		Cores:  4,
		Store:  st,
	}
}

func TestValidation(t *testing.T) {
	base := heatConfig(t, Bitmaps)
	bad := []func(*Config){
		func(c *Config) { c.Sim = nil },
		func(c *Config) { c.Steps = 0 },
		func(c *Config) { c.Select = 0 },
		func(c *Config) { c.Select = c.Steps + 1 },
		func(c *Config) { c.Bins = 0 },
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.Method = Sampling; c.SamplePct = 0 },
		func(c *Config) { c.Method = Sampling; c.SamplePct = 150 },
		func(c *Config) { c.Part = selection.InfoVolume{} },
	}
	for i, mutate := range bad {
		cfg := base
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRunBitmaps(t *testing.T) {
	cfg := heatConfig(t, Bitmaps)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != cfg.Select {
		t.Fatalf("selected %d steps, want %d: %v", len(res.Selected), cfg.Select, res.Selected)
	}
	if res.Selected[0] != 0 {
		t.Fatal("step 0 not selected")
	}
	for i := 1; i < len(res.Selected); i++ {
		if res.Selected[i] <= res.Selected[i-1] || res.Selected[i] >= cfg.Steps {
			t.Fatalf("selection invalid: %v", res.Selected)
		}
	}
	if res.BytesWritten <= 0 {
		t.Fatal("nothing written")
	}
	if res.BytesWritten != cfg.Store.BytesWritten() {
		t.Fatalf("result says %d bytes, store says %d", res.BytesWritten, cfg.Store.BytesWritten())
	}
	if res.SummaryBytes <= 0 || res.SummaryBytes >= res.StepBytes {
		t.Fatalf("bitmap summary %d bytes vs raw step %d: not a reduction", res.SummaryBytes, res.StepBytes)
	}
	if res.Breakdown.Simulate <= 0 || res.Breakdown.Reduce <= 0 {
		t.Fatalf("phases unmeasured: %+v", res.Breakdown)
	}
	if res.Breakdown.Output <= 0 {
		t.Fatal("output unmodelled")
	}
}

func TestBitmapsWriteLessThanFullData(t *testing.T) {
	// The paper's I/O claim: selected bitmaps are much smaller than
	// selected raw data.
	resB, err := Run(heatConfig(t, Bitmaps))
	if err != nil {
		t.Fatal(err)
	}
	resF, err := Run(heatConfig(t, FullData))
	if err != nil {
		t.Fatal(err)
	}
	if resB.BytesWritten >= resF.BytesWritten/2 {
		t.Fatalf("bitmaps wrote %d bytes, full data %d: insufficient reduction",
			resB.BytesWritten, resF.BytesWritten)
	}
	if resB.PeakMemory >= resF.PeakMemory {
		t.Fatalf("bitmap memory %d not below full-data %d", resB.PeakMemory, resF.PeakMemory)
	}
}

func TestMethodsAgreeOnSelection(t *testing.T) {
	// Bitmaps and full data must pick identical steps (no accuracy loss);
	// both runs use fresh simulators with identical trajectories.
	resB, err := Run(heatConfig(t, Bitmaps))
	if err != nil {
		t.Fatal(err)
	}
	resF, err := Run(heatConfig(t, FullData))
	if err != nil {
		t.Fatal(err)
	}
	if len(resB.Selected) != len(resF.Selected) {
		t.Fatalf("selection lengths differ: %v vs %v", resB.Selected, resF.Selected)
	}
	for i := range resB.Selected {
		if resB.Selected[i] != resF.Selected[i] {
			t.Fatalf("bitmaps selected %v, full data %v", resB.Selected, resF.Selected)
		}
	}
}

func TestSamplingMethodRuns(t *testing.T) {
	cfg := heatConfig(t, Sampling)
	cfg.SamplePct = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != cfg.Select {
		t.Fatalf("selected %v", res.Selected)
	}
	// A 10% sample is about 10% of the raw bytes.
	if res.SummaryBytes > res.StepBytes/5 {
		t.Fatalf("sample summary %d vs step %d", res.SummaryBytes, res.StepBytes)
	}
}

func TestSeparateCoresMatchesShared(t *testing.T) {
	shared := heatConfig(t, Bitmaps)
	res1, err := Run(shared)
	if err != nil {
		t.Fatal(err)
	}
	sep := heatConfig(t, Bitmaps)
	sep.Strategy = SeparateCores{SimCores: 2, ReduceCores: 2, QueueCap: 3}
	res2, err := Run(sep)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Selected) != len(res2.Selected) {
		t.Fatalf("strategies selected different counts: %v vs %v", res1.Selected, res2.Selected)
	}
	for i := range res1.Selected {
		if res1.Selected[i] != res2.Selected[i] {
			t.Fatalf("strategies disagree: shared %v separate %v", res1.Selected, res2.Selected)
		}
	}
	if res2.BytesWritten != res1.BytesWritten {
		t.Fatalf("bytes differ: %d vs %d", res1.BytesWritten, res2.BytesWritten)
	}
}

func TestSeparateCoresValidation(t *testing.T) {
	cfg := heatConfig(t, Bitmaps)
	cfg.Strategy = SeparateCores{SimCores: 0, ReduceCores: 2}
	if _, err := Run(cfg); err == nil {
		t.Error("zero sim cores accepted")
	}
	cfg.Strategy = SeparateCores{SimCores: 3, ReduceCores: 3}
	if _, err := Run(cfg); err == nil {
		t.Error("oversubscribed split accepted")
	}
}

func TestStrategyDescribe(t *testing.T) {
	if (SharedCores{}).Describe() != "c_all" {
		t.Error("SharedCores name")
	}
	if (SeparateCores{SimCores: 12, ReduceCores: 16}).Describe() != "c12_c16" {
		t.Error("SeparateCores name")
	}
}

func TestCalibrate(t *testing.T) {
	cfg := heatConfig(t, Bitmaps)
	cfg.Cores = 8
	split, err := Calibrate(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if split.SimCores < 1 || split.ReduceCores < 1 {
		t.Fatalf("degenerate split %+v", split)
	}
	if split.SimCores+split.ReduceCores != cfg.Cores {
		t.Fatalf("split %+v does not use all %d cores", split, cfg.Cores)
	}
}

func TestLuleshPipelineAllArrays(t *testing.T) {
	l, err := lulesh.New(8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := iosim.NewStore(100)
	cfg := Config{
		Sim:    l,
		Steps:  12,
		Select: 4,
		Method: Bitmaps,
		Bins:   48,
		Metric: selection.EMDSpatial,
		Cores:  4,
		Store:  st,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 4 {
		t.Fatalf("selected %v", res.Selected)
	}
	// 12 arrays per step: the raw step size must reflect all of them.
	if res.StepBytes != int64(12*8*l.Elements()) {
		t.Fatalf("StepBytes=%d", res.StepBytes)
	}
}

func TestMemoryModel(t *testing.T) {
	// Full data: prev + in-flight + window raw steps.
	if got := MemoryModel(FullData, 100, 0, 10); got != 1200 {
		t.Fatalf("full data model = %d", got)
	}
	// Bitmaps: in-flight raw + prev summary + window summaries.
	if got := MemoryModel(Bitmaps, 100, 20, 10); got != 100+20+200 {
		t.Fatalf("bitmaps model = %d", got)
	}
	// Reduction only pays off when summaries are smaller — and then the
	// model must order the methods the way Figure 11 does.
	if MemoryModel(Bitmaps, 100, 20, 10) >= MemoryModel(FullData, 100, 20, 10) {
		t.Fatal("bitmaps not smaller in model")
	}
}

func TestMethodString(t *testing.T) {
	for _, m := range []Method{Bitmaps, FullData, Sampling, Method(9)} {
		if m.String() == "" {
			t.Fatalf("empty name for %d", int(m))
		}
	}
}
