package insitu

import (
	"testing"

	"insitubits/internal/iosim"
	"insitubits/internal/selection"
	"insitubits/internal/sim"
	"insitubits/internal/sim/heat3d"
	"insitubits/internal/sim/lulesh"
)

// countingSim wraps a simulator and records how many times Step ran, so
// the queue tests can prove no step is lost or duplicated.
type countingSim struct {
	inner sim.Simulator
	steps int
}

func (c *countingSim) Name() string         { return c.inner.Name() }
func (c *countingSim) Vars() []string       { return c.inner.Vars() }
func (c *countingSim) Elements() int        { return c.inner.Elements() }
func (c *countingSim) Ranges() [][2]float64 { return c.inner.Ranges() }
func (c *countingSim) Step(n int) []sim.Field {
	c.steps++
	return c.inner.Step(n)
}

// TestSeparateCoresQueueInvariants runs the separate-cores strategy with
// the tightest possible queue over many steps and checks: every step
// simulated exactly once, every step consumed exactly once and in order
// (the streaming selector requires order — a violated invariant would
// corrupt the selection), and no deadlock (the test finishing is the
// proof).
func TestSeparateCoresQueueInvariants(t *testing.T) {
	for _, qcap := range []int{1, 2, 7} {
		h, err := heat3d.New(8, 8, 8)
		if err != nil {
			t.Fatal(err)
		}
		cs := &countingSim{inner: h}
		st, err := iosim.NewStore(100)
		if err != nil {
			t.Fatal(err)
		}
		const steps = 64
		res, err := Run(Config{
			Sim:    cs,
			Steps:  steps,
			Select: 16,
			Method: Bitmaps,
			Bins:   32,
			Metric: selection.EMDCount,
			Cores:  2,
			Strategy: SeparateCores{
				SimCores: 1, ReduceCores: 1, QueueCap: qcap,
			},
			Store: st,
		})
		if err != nil {
			t.Fatalf("qcap=%d: %v", qcap, err)
		}
		if cs.steps != steps {
			t.Fatalf("qcap=%d: simulator stepped %d times, want %d", qcap, cs.steps, steps)
		}
		if len(res.Selected) != 16 {
			t.Fatalf("qcap=%d: selected %v", qcap, res.Selected)
		}
		for i := 1; i < len(res.Selected); i++ {
			if res.Selected[i] <= res.Selected[i-1] {
				t.Fatalf("qcap=%d: out-of-order selection %v (queue reordered steps?)", qcap, res.Selected)
			}
		}
	}
}

// TestSeparateCoresDeterministicAcrossQueueCaps verifies the selection is a
// pure function of the data: queue capacity affects throughput only.
func TestSeparateCoresDeterministicAcrossQueueCaps(t *testing.T) {
	run := func(qcap int) []int {
		h, err := heat3d.New(10, 10, 10)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			Sim: h, Steps: 30, Select: 8,
			Method: Bitmaps, Bins: 64,
			Metric:   selection.ConditionalEntropy,
			Cores:    2,
			Strategy: SeparateCores{SimCores: 1, ReduceCores: 1, QueueCap: qcap},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Selected
	}
	want := run(1)
	for _, qcap := range []int{2, 5, 30} {
		got := run(qcap)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("qcap=%d selected %v, qcap=1 selected %v", qcap, got, want)
			}
		}
	}
}

// TestMultiVarParallelScoringDeterministic: the per-variable fan-out in
// stepSummary.Dissimilarity must not change scores or selections.
func TestMultiVarParallelScoringDeterministic(t *testing.T) {
	mk := func(cores int) []int {
		// A 12-array workload exercises the parallel path.
		l := newTestLulesh(t)
		res, err := Run(Config{
			Sim: l, Steps: 10, Select: 4,
			Method: Bitmaps, Bins: 48,
			Metric: selection.EMDSpatial,
			Cores:  cores,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Selected
	}
	serial := mk(1)
	parallel := mk(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("cores changed selection: %v vs %v", serial, parallel)
		}
	}
}

func newTestLulesh(t *testing.T) sim.Simulator {
	t.Helper()
	l, err := lulesh.New(7, 7, 7)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestQueueCapForMemory(t *testing.T) {
	cases := []struct {
		budget, step int64
		want         int
	}{
		{1 << 30, 1 << 20, 1024},
		{1 << 20, 1 << 30, 1}, // budget below one step: still one slot
		{0, 100, 1},
		{100, 0, 1},
		{-5, 100, 1},
	}
	for _, c := range cases {
		if got := QueueCapForMemory(c.budget, c.step); got != c.want {
			t.Errorf("QueueCapForMemory(%d, %d) = %d, want %d", c.budget, c.step, got, c.want)
		}
	}
}

func TestMemoryBudgetBoundsQueue(t *testing.T) {
	// A budget of exactly 3 steps must run (cap 3); a tiny budget degrades
	// to cap 1 but still completes.
	for _, budgetSteps := range []float64{3, 0.1} {
		h, err := heat3d.New(8, 8, 8)
		if err != nil {
			t.Fatal(err)
		}
		stepBytes := int64(8 * h.Elements())
		res, err := Run(Config{
			Sim: h, Steps: 12, Select: 3,
			Method: Bitmaps, Bins: 32,
			Metric:            selection.EMDCount,
			Cores:             2,
			Strategy:          SeparateCores{SimCores: 1, ReduceCores: 1},
			MemoryBudgetBytes: int64(budgetSteps * float64(stepBytes)),
		})
		if err != nil {
			t.Fatalf("budget=%g steps: %v", budgetSteps, err)
		}
		if len(res.Selected) != 3 {
			t.Fatalf("budget=%g steps: selected %v", budgetSteps, res.Selected)
		}
	}
}

func TestVarWeights(t *testing.T) {
	// Weighting one Lulesh variable to zero must not crash and can change
	// the selection; invalid weight vectors are rejected.
	base := Config{
		Steps: 10, Select: 4,
		Method: Bitmaps, Bins: 48,
		Metric: selection.EMDSpatial,
		Cores:  1,
	}
	run := func(weights []float64) ([]int, error) {
		cfg := base
		cfg.Sim = newTestLulesh(t)
		cfg.VarWeights = weights
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		return res.Selected, nil
	}
	equal, err := run(nil)
	if err != nil {
		t.Fatal(err)
	}
	// All-equal explicit weights reproduce the nil-weights selection.
	ones := make([]float64, 12)
	for i := range ones {
		ones[i] = 1
	}
	same, err := run(ones)
	if err != nil {
		t.Fatal(err)
	}
	for i := range equal {
		if equal[i] != same[i] {
			t.Fatalf("explicit equal weights changed selection: %v vs %v", same, equal)
		}
	}
	// Only-coordinates weighting runs and yields a valid selection.
	coordOnly := make([]float64, 12)
	coordOnly[0], coordOnly[1], coordOnly[2] = 1, 1, 1
	sel, err := run(coordOnly)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 4 || sel[0] != 0 {
		t.Fatalf("weighted selection %v", sel)
	}
	// Invalid vectors.
	if _, err := run(make([]float64, 3)); err == nil {
		t.Error("wrong-length weights accepted")
	}
	if _, err := run(make([]float64, 12)); err == nil {
		t.Error("all-zero weights accepted")
	}
	bad := make([]float64, 12)
	bad[0] = -1
	if _, err := run(bad); err == nil {
		t.Error("negative weight accepted")
	}
}
