package insitu

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"insitubits/internal/telemetry"
)

// findSpan returns the named child of a span forest, or nil.
func findSpan(nodes []telemetry.SpanSnapshot, name string) *telemetry.SpanSnapshot {
	for i := range nodes {
		if nodes[i].Name == name {
			return &nodes[i]
		}
	}
	return nil
}

// TestRunEmitsSpanTree asserts that one pipeline run produces the full
// simulate → reduce → select → write phase tree under the "pipeline"
// tracer, and that the run report's breakdown is derived from those spans.
func TestRunEmitsSpanTree(t *testing.T) {
	for _, tc := range []struct {
		name     string
		strategy Strategy
	}{
		{"shared", SharedCores{}},
		{"separate", SeparateCores{SimCores: 2, ReduceCores: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := heatConfig(t, Bitmaps)
			cfg.Strategy = tc.strategy
			cfg.OutputDir = t.TempDir()
			reg := telemetry.NewRegistry()
			cfg.Telemetry = reg

			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}

			tr := reg.Tracer(TracerName)
			if tr == nil {
				t.Fatalf("no %q tracer attached to the run registry", TracerName)
			}
			root := findSpan(tr.Snapshot(), SpanRun)
			if root == nil {
				t.Fatalf("no %q root span; forest: %+v", SpanRun, tr.Snapshot())
			}
			if root.Count != 1 {
				t.Errorf("root span count %d, want 1", root.Count)
			}
			for _, phase := range []string{SpanSimulate, SpanReduce, SpanSelect, SpanWrite} {
				child := findSpan(root.Children, phase)
				if child == nil {
					t.Fatalf("span tree missing %s → %s; children: %+v", SpanRun, phase, root.Children)
				}
				if child.Count == 0 || child.TotalNs <= 0 {
					t.Errorf("phase %s: count=%d total=%dns, want both positive",
						phase, child.Count, child.TotalNs)
				}
			}
			if got := tr.Phase(SpanRun, SpanSimulate).Count; got != int64(cfg.Steps) {
				t.Errorf("simulate span count %d, want one per step (%d)", got, cfg.Steps)
			}
			// Breakdown must be the span totals, not an independent clock.
			if res.Breakdown.Simulate != tr.Phase(SpanRun, SpanSimulate).Total {
				t.Errorf("Breakdown.Simulate %v != span total %v",
					res.Breakdown.Simulate, tr.Phase(SpanRun, SpanSimulate).Total)
			}
			if res.Breakdown.Reduce != tr.Phase(SpanRun, SpanReduce).Total {
				t.Errorf("Breakdown.Reduce %v != span total %v",
					res.Breakdown.Reduce, tr.Phase(SpanRun, SpanReduce).Total)
			}
			if res.WriteTime != tr.Phase(SpanRun, SpanWrite).Total {
				t.Errorf("WriteTime %v != span total %v",
					res.WriteTime, tr.Phase(SpanRun, SpanWrite).Total)
			}
			if g := reg.Gauge("insitu.queue_depth"); tc.name == "separate" && g.Max() < 1 {
				t.Errorf("separate-cores run never raised the queue depth watermark")
			}
			if c := reg.Counter("insitu.steps_processed"); c.Value() != int64(cfg.Steps) {
				t.Errorf("steps_processed = %d, want %d", c.Value(), cfg.Steps)
			}
		})
	}
}

// TestRunCountsBitvecActivity asserts a pipeline run moves the global
// bitvec counters: every step builds bitmap bins, so vectors_built and
// bits_appended must grow. (bitvec flushes into telemetry.Default, so this
// reads before/after deltas; package tests never run pipelines in
// parallel with this one.)
func TestRunCountsBitvecActivity(t *testing.T) {
	vectors := telemetry.Default.Counter("bitvec.vectors_built")
	bits := telemetry.Default.Counter("bitvec.bits_appended")
	v0, b0 := vectors.Value(), bits.Value()

	cfg := heatConfig(t, Bitmaps)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}

	dv, db := vectors.Value()-v0, bits.Value()-b0
	if dv <= 0 {
		t.Errorf("bitvec.vectors_built did not grow during a bitmap run (delta %d)", dv)
	}
	elems := int64(cfg.Sim.Elements())
	minBits := int64(cfg.Steps) * elems // at least one index' worth of bits per step
	if db < minBits {
		t.Errorf("bitvec.bits_appended grew by %d, want ≥ steps × elements = %d", db, minBits)
	}
}

// TestQueueBackpressure runs separate cores with a tiny queue and checks
// the watermark saturates: with a slow consumer the producer must hit the
// memory-capacity bound (depth cap+1 counts the blocked producer).
func TestQueueBackpressure(t *testing.T) {
	cfg := heatConfig(t, Bitmaps)
	const qcap = 1
	cfg.Strategy = SeparateCores{SimCores: 2, ReduceCores: 2, QueueCap: qcap}
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueuePeak < 1 || res.QueuePeak > qcap+1 {
		t.Errorf("queue peak %d outside [1, cap+1=%d]", res.QueuePeak, qcap+1)
	}
	if g := reg.Gauge("insitu.queue_depth"); g.Max() != int64(res.QueuePeak) {
		t.Errorf("gauge watermark %d != reported peak %d", g.Max(), res.QueuePeak)
	}
	if g := reg.Gauge("insitu.queue_depth"); g.Value() != 0 {
		t.Errorf("queue depth %d after the run, want 0 (drained)", g.Value())
	}
}

// TestRunPublishesStatus asserts the live-status provider the run registers
// under the "run" name (the payload /debug/run and `bitmapctl top` consume)
// reflects the finished run.
func TestRunPublishesStatus(t *testing.T) {
	cfg := heatConfig(t, Bitmaps)
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := reg.StatusValue(RunStatusName)
	if !ok {
		t.Fatalf("no %q status provider registered", RunStatusName)
	}
	st, ok := v.(RunStatus)
	if !ok {
		t.Fatalf("status value is %T, want RunStatus", v)
	}
	if !st.Done {
		t.Error("finished run not marked done")
	}
	if st.Workload != "heat3d" || st.Method != "bitmaps" || st.Strategy != "c_all" {
		t.Errorf("run identity: %+v", st)
	}
	if st.Steps != cfg.Steps || st.StepsDone != cfg.Steps || st.CurrentStep != cfg.Steps-1 {
		t.Errorf("progress: %d/%d current %d", st.StepsDone, st.Steps, st.CurrentStep)
	}
	if st.Selected != cfg.Select {
		t.Errorf("selected %d, want %d", st.Selected, cfg.Select)
	}
	if st.BytesWritten != res.BytesWritten {
		t.Errorf("bytes written %d != result %d", st.BytesWritten, res.BytesWritten)
	}
	var codecTotal int64
	for _, n := range st.CodecBins {
		codecTotal += n
	}
	if codecTotal == 0 {
		t.Errorf("no codec mix tallied: %+v", st.CodecBins)
	}
	if st.Phases[SpanSimulate].Count != int64(cfg.Steps) {
		t.Errorf("simulate phase count %d, want %d", st.Phases[SpanSimulate].Count, cfg.Steps)
	}
	if st.ElapsedNs <= 0 {
		t.Errorf("elapsed %d", st.ElapsedNs)
	}
}

// TestJournalTraceIDs asserts the crash-safety compatibility contract of
// trace stamping: with an identity recorder installed, score and select
// journal records link to the step traces that produced them; with tracing
// off, the field is absent from the journal bytes entirely, so traced and
// untraced runs of the same configuration stay journal-compatible.
func TestJournalTraceIDs(t *testing.T) {
	t.Run("enabled", func(t *testing.T) {
		telemetry.SetTraceRecorder(telemetry.NewTraceRecorder(telemetry.TraceConfig{Capacity: 64}))
		defer telemetry.SetTraceRecorder(nil)
		cfg := heatConfig(t, Bitmaps)
		cfg.OutputDir = t.TempDir()
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		recs, _, err := ReadJournal(cfg.OutputDir)
		if err != nil {
			t.Fatal(err)
		}
		scored, selected := 0, 0
		for _, rec := range recs {
			switch rec.Kind {
			case KindScore:
				scored++
			case KindSelect:
				selected++
			default:
				continue
			}
			if len(rec.TraceID) != 32 {
				t.Errorf("%s record for step %d has trace_id %q, want 32-hex ID",
					rec.Kind, rec.Step, rec.TraceID)
			}
		}
		if scored == 0 || selected == 0 {
			t.Fatalf("journal has %d score / %d select records", scored, selected)
		}
	})
	t.Run("disabled", func(t *testing.T) {
		telemetry.SetTraceRecorder(nil)
		cfg := heatConfig(t, Bitmaps)
		cfg.OutputDir = t.TempDir()
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(filepath.Join(cfg.OutputDir, JournalName))
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(raw, []byte("trace_id")) {
			t.Error("untraced run wrote trace_id fields into the journal")
		}
	})
}
