package insitu

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"insitubits/internal/iosim"
	"insitubits/internal/store"
)

// The run journal (journal.isbj) is the pipeline's crash-safety spine: an
// append-only, fsync-per-record log of everything the run decided and made
// durable. A step's artifacts count as persisted only once its "select"
// record is in the journal, so on restart Resume can replay the journal,
// quarantine whatever a crash left half-written, and continue the run from
// the last durable step without recomputing what already survived.
//
// File layout (little-endian; byte-level spec in docs/FORMATS.md):
//
//	magic   "ISBJ" (4 bytes)
//	version u32 = 1
//	records, each:
//	    len u32         payload length, in (0, 2^20]
//	    payload         len bytes of JSON (one JournalRecord)
//	    crc u32         CRC32C of payload
//
// A torn tail — a partial frame, or a frame whose checksum disagrees — ends
// the valid prefix; everything after it is quarantined on resume, never
// trusted.

// JournalName is the journal's file name inside the output directory.
const JournalName = "journal.isbj"

const (
	journalMagic   = "ISBJ"
	journalVersion = 1
	// maxJournalRecord bounds one frame's payload so a corrupt length field
	// cannot demand an absurd allocation.
	maxJournalRecord = 1 << 20
	journalHeaderLen = 8
)

// Record kinds, in the order a run emits them.
const (
	// KindBegin opens a journal with the run's config fingerprint.
	KindBegin = "begin"
	// KindScore records one offered step's selection score (steps >= 1).
	KindScore = "score"
	// KindSelect commits one selected step: its artifacts are durable
	// (written, fsynced, renamed, directory fsynced) before this record is
	// appended.
	KindSelect = "select"
	// KindEnd closes a completed run; the manifest is durable before it.
	KindEnd = "end"
)

// JournalRecord is one journal entry. Kind decides which fields are set.
type JournalRecord struct {
	Kind string `json:"kind"`

	// Begin: the config fingerprint Resume validates against.
	Workload  string    `json:"workload,omitempty"`
	Method    string    `json:"method,omitempty"`
	Vars      []string  `json:"vars,omitempty"`
	Steps     int       `json:"steps,omitempty"`
	Select    int       `json:"select,omitempty"`
	Bins      int       `json:"bins,omitempty"`
	Codec     string    `json:"codec,omitempty"`
	Metric    string    `json:"metric,omitempty"`
	SamplePct float64   `json:"sample_pct,omitempty"`
	Seed      int64     `json:"seed,omitempty"`
	Weights   []float64 `json:"weights,omitempty"`

	// Score and Select.
	Step int `json:"step,omitempty"`
	// Score is the step's dissimilarity vs the previously selected step.
	Score float64 `json:"score,omitempty"`
	// TraceID links a score/select record to the identity trace of the
	// pipeline step that produced it (see internal/telemetry). Empty — and
	// absent from the JSON — when tracing is disabled, so journals stay
	// byte-identical with pre-tracing runs and across traced/untraced
	// replays of the same configuration.
	TraceID string `json:"trace_id,omitempty"`

	// Select: the step's durable artifacts.
	Files []JournalFile `json:"files,omitempty"`

	// End: the final selected step set.
	Selected []int `json:"selected,omitempty"`
}

// JournalFile describes one durable artifact of a selected step: its
// on-disk name, exact length, and whole-file CRC32C, enough for fsck and
// Resume to verify the file without parsing it.
type JournalFile struct {
	Var   string `json:"var"`
	Path  string `json:"path"`
	Bytes int64  `json:"bytes"`
	CRC   uint32 `json:"crc"`
}

// journal is the append side. Every append is a single write of one framed
// record followed by an fsync, so the file only ever grows by whole frames
// (modulo the torn tail a kill can leave, which replay cuts off).
type journal struct {
	f     iosim.File
	path  string
	ctx   context.Context
	retry iosim.Backoff
}

// writeAll pushes buf through the journal's file with retry — but only
// attempts where nothing landed are retryable. Once any prefix of buf is
// on disk, a retry would follow the torn bytes with a duplicate and
// corrupt every later record, so a partial landing is a hard error (the
// run aborts resumable, replay cuts the torn tail).
func (j *journal) writeAll(buf []byte) error {
	return iosim.Retry(j.ctx, j.retry, func() error {
		n, err := j.f.Write(buf)
		switch {
		case err == nil:
			return nil
		case n > 0:
			return fmt.Errorf("insitu: journal write tore after %d of %d bytes: %v", n, len(buf), err)
		default:
			return fmt.Errorf("insitu: journal write: %w", err)
		}
	})
}

// createJournal starts a fresh journal (truncating any previous one) and
// makes its existence durable before the run writes anything else.
func createJournal(fsys iosim.FS, dir string, ctx context.Context, retry iosim.Backoff) (*journal, error) {
	path := filepath.Join(dir, JournalName)
	f, err := fsys.Create(path)
	if err != nil {
		return nil, fmt.Errorf("insitu: creating journal: %w", err)
	}
	j := &journal{f: f, path: path, ctx: ctx, retry: retry}
	if err := j.writeAll(journalHeader()); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("insitu: syncing journal: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("insitu: syncing journal dir: %w", err)
	}
	return j, nil
}

// openJournalAppend reopens an existing journal for appending (the resume
// path; the caller has already truncated any torn tail).
func openJournalAppend(fsys iosim.FS, dir string, ctx context.Context, retry iosim.Backoff) (*journal, error) {
	path := filepath.Join(dir, JournalName)
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, fmt.Errorf("insitu: reopening journal: %w", err)
	}
	return &journal{f: f, path: path, ctx: ctx, retry: retry}, nil
}

// journalHeader returns the 8-byte magic+version prefix.
func journalHeader() []byte {
	hdr := make([]byte, 0, journalHeaderLen)
	hdr = append(hdr, journalMagic...)
	return binary.LittleEndian.AppendUint32(hdr, journalVersion)
}

// encodeFrame serializes one record as a length-prefixed, checksummed frame.
func encodeFrame(rec *JournalRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("insitu: journal record: %w", err)
	}
	if len(payload) > maxJournalRecord {
		return nil, fmt.Errorf("insitu: journal record of %d bytes exceeds frame limit", len(payload))
	}
	frame := make([]byte, 0, 4+len(payload)+4)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	return binary.LittleEndian.AppendUint32(frame, store.CRC32C(payload)), nil
}

// append frames rec, writes it in one call, and fsyncs. The record is
// durable when append returns nil.
func (j *journal) append(rec *JournalRecord) error {
	frame, err := encodeFrame(rec)
	if err != nil {
		return err
	}
	if err := j.writeAll(frame); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("insitu: journal sync: %w", err)
	}
	return nil
}

func (j *journal) close() error {
	if j == nil || j.f == nil {
		return nil
	}
	return j.f.Close()
}

// ParseJournal decodes journal bytes. It returns every record of the valid
// prefix and the prefix's byte length; a torn or corrupt tail is not an
// error — it is exactly what a kill mid-append leaves — but any byte past
// validLen must be quarantined, never replayed. Malformed bytes never
// panic; a journal whose header is damaged yields an error.
func ParseJournal(data []byte) (recs []JournalRecord, validLen int64, err error) {
	if len(data) < journalHeaderLen {
		return nil, 0, fmt.Errorf("insitu: journal too short (%d bytes)", len(data))
	}
	if string(data[:4]) != journalMagic {
		return nil, 0, fmt.Errorf("insitu: bad journal magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != journalVersion {
		return nil, 0, fmt.Errorf("insitu: unsupported journal version %d", v)
	}
	pos := int64(journalHeaderLen)
	for {
		rest := data[pos:]
		if len(rest) < 4 {
			return recs, pos, nil
		}
		n := binary.LittleEndian.Uint32(rest[:4])
		if n == 0 || n > maxJournalRecord || int64(len(rest)) < 4+int64(n)+4 {
			return recs, pos, nil
		}
		payload := rest[4 : 4+n]
		stored := binary.LittleEndian.Uint32(rest[4+n : 4+n+4])
		if store.CRC32C(payload) != stored {
			return recs, pos, nil
		}
		var rec JournalRecord
		if json.Unmarshal(payload, &rec) != nil || rec.Kind == "" {
			return recs, pos, nil
		}
		recs = append(recs, rec)
		pos += 4 + int64(n) + 4
	}
}

// ReadJournal loads and parses dir's journal from disk.
func ReadJournal(dir string) (recs []JournalRecord, validLen int64, err error) {
	data, err := os.ReadFile(filepath.Join(dir, JournalName))
	if err != nil {
		return nil, 0, err
	}
	return ParseJournal(data)
}

// beginRecord captures the config fingerprint the journal opens with.
func beginRecord(cfg Config) *JournalRecord {
	return &JournalRecord{
		Kind:      KindBegin,
		Workload:  cfg.Sim.Name(),
		Method:    cfg.Method.String(),
		Vars:      cfg.Sim.Vars(),
		Steps:     cfg.Steps,
		Select:    cfg.Select,
		Bins:      cfg.Bins,
		Codec:     cfg.Codec.String(),
		Metric:    cfg.Metric.String(),
		SamplePct: cfg.SamplePct,
		Seed:      cfg.Seed,
		Weights:   cfg.VarWeights,
	}
}

// matchesConfig checks a begin record against a resume config: everything
// that shapes the deterministic replay must agree, or continuing would
// splice two different runs into one directory.
func (r *JournalRecord) matchesConfig(cfg Config) error {
	if r.Kind != KindBegin {
		return fmt.Errorf("insitu: journal does not open with a begin record (got %q)", r.Kind)
	}
	mismatch := func(field string, got, want any) error {
		return fmt.Errorf("insitu: resume config mismatch: journal %s %v, config %v", field, got, want)
	}
	switch {
	case r.Workload != cfg.Sim.Name():
		return mismatch("workload", r.Workload, cfg.Sim.Name())
	case r.Method != cfg.Method.String():
		return mismatch("method", r.Method, cfg.Method.String())
	case r.Steps != cfg.Steps:
		return mismatch("steps", r.Steps, cfg.Steps)
	case r.Select != cfg.Select:
		return mismatch("select", r.Select, cfg.Select)
	case r.Bins != cfg.Bins:
		return mismatch("bins", r.Bins, cfg.Bins)
	case r.Codec != cfg.Codec.String():
		return mismatch("codec", r.Codec, cfg.Codec.String())
	case r.Metric != cfg.Metric.String():
		return mismatch("metric", r.Metric, cfg.Metric.String())
	case r.SamplePct != cfg.SamplePct:
		return mismatch("sample pct", r.SamplePct, cfg.SamplePct)
	case r.Seed != cfg.Seed:
		return mismatch("seed", r.Seed, cfg.Seed)
	case len(r.Vars) != len(cfg.Sim.Vars()):
		return mismatch("variable count", len(r.Vars), len(cfg.Sim.Vars()))
	case len(r.Weights) != len(cfg.VarWeights):
		return mismatch("weight count", len(r.Weights), len(cfg.VarWeights))
	}
	for i, v := range cfg.Sim.Vars() {
		if r.Vars[i] != v {
			return mismatch(fmt.Sprintf("variable %d", i), r.Vars[i], v)
		}
	}
	for i, w := range cfg.VarWeights {
		if r.Weights[i] != w {
			return mismatch(fmt.Sprintf("weight %d", i), r.Weights[i], w)
		}
	}
	return nil
}
