package insitu

import (
	"testing"
)

// FuzzParseJournal throws arbitrary bytes at the journal parser. The
// contract under fuzzing: never panic, never allocate from a lying length
// field (the frame cap bounds it), and on success return a valid prefix —
// validLen within [header, len(data)] — whose re-parse is a fixed point
// (same records, same length). That last property is what Resume's
// truncate-then-append depends on.
func FuzzParseJournal(f *testing.F) {
	// Seed: a real journal shape — header plus begin/score/select/end.
	buf := journalHeader()
	for _, rec := range []*JournalRecord{
		{Kind: KindBegin, Workload: "tri", Method: "bitmaps", Vars: []string{"a", "b"}, Steps: 4, Select: 2, Bins: 4, Codec: "auto", Metric: "cond-entropy"},
		{Kind: KindScore, Step: 1, Score: 0.25},
		{Kind: KindSelect, Step: 1, Files: []JournalFile{{Var: "a", Path: "step0001_a.isbm", Bytes: 99, CRC: 7}}},
		{Kind: KindEnd, Selected: []int{0, 1}},
	} {
		frame, err := encodeFrame(rec)
		if err != nil {
			f.Fatal(err)
		}
		buf = append(buf, frame...)
	}
	f.Add(buf)
	f.Add(buf[:len(buf)-3]) // torn tail
	f.Add(journalHeader())
	f.Add([]byte("ISBJ"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validLen, err := ParseJournal(data)
		if err != nil {
			return // short or bad header: nothing durable, fine
		}
		if validLen < journalHeaderLen || validLen > int64(len(data)) {
			t.Fatalf("validLen %d outside [%d, %d]", validLen, journalHeaderLen, len(data))
		}
		recs2, validLen2, err2 := ParseJournal(data[:validLen])
		if err2 != nil {
			t.Fatalf("valid prefix does not re-parse: %v", err2)
		}
		if validLen2 != validLen || len(recs2) != len(recs) {
			t.Fatalf("re-parse not a fixed point: %d/%d records, %d/%d bytes",
				len(recs2), len(recs), validLen2, validLen)
		}
	})
}
