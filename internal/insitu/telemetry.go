package insitu

import (
	"context"
	"sync/atomic"
	"time"

	"insitubits/internal/codec"
	"insitubits/internal/profiling"
	"insitubits/internal/selection"
	"insitubits/internal/telemetry"
)

// TracerName is the registry key the pipeline attaches its per-run tracer
// under; the debug server shows the live span tree of the current run.
const TracerName = "pipeline"

// RunStatusName is the registry status key the pipeline publishes its live
// RunStatus under; the debug server serves it at /debug/run and
// `bitmapctl top` renders it.
const RunStatusName = "run"

// Span names of the per-step phases under the "run" root. The Figure 7-10
// phase breakdowns are regenerated from these spans (Result.Breakdown is
// filled from the tracer, not from ad-hoc timers).
const (
	SpanRun      = "run"
	SpanSimulate = "simulate"
	SpanReduce   = "reduce"
	SpanSelect   = "select"
	SpanWrite    = "write"
)

// SpanStep is the identity-trace root each pipeline step runs under when a
// trace recorder is installed (distinct from the aggregate SpanRun tree,
// which always exists).
const SpanStep = "insitu.step"

// RunStatus is the live snapshot of the current (or most recent) pipeline
// run, published under the registry status key RunStatusName and served as
// JSON at /debug/run. All fields are safe to read while the run is in
// flight; they describe a consistent-enough moment for dashboards, not a
// linearizable one.
type RunStatus struct {
	Workload  string `json:"workload"`
	Method    string `json:"method"`
	Strategy  string `json:"strategy,omitempty"`
	Steps     int    `json:"steps"`
	StepsDone int    `json:"steps_done"`
	// CurrentStep is the last step offered to the selector (-1 before any).
	CurrentStep int `json:"current_step"`
	// Selected counts the steps committed (written) so far.
	Selected     int   `json:"selected"`
	QueueDepth   int   `json:"queue_depth"`
	QueuePeak    int   `json:"queue_peak"`
	BytesWritten int64 `json:"bytes_written"`
	// CodecBins is the cumulative per-codec bin mix of every bitmap summary
	// the run reduced ("wah"/"bbc"/"dense"); empty for non-bitmap methods.
	CodecBins map[string]int64 `json:"codec_bins,omitempty"`
	// Phases aggregates the run's phase spans (simulate/reduce/select/write).
	Phases    map[string]PhaseStatus `json:"phases,omitempty"`
	ElapsedNs int64                  `json:"elapsed_ns"`
	Done      bool                   `json:"done"`
	// Generation is the highest index generation observed among the run's
	// bitmap summaries — /healthz reports it so probes can tell whether the
	// indexes a query layer serves are from the current run.
	Generation uint64 `json:"generation,omitempty"`
	// Journal is the run journal's lifecycle state: "none" (no output
	// directory), "active" (begin record on disk, run in flight), or
	// "sealed" (end record fsync'd — the run is durable).
	Journal string `json:"journal,omitempty"`
	// TraceID is the identity-trace ID of the most recent step, when a trace
	// recorder is installed — paste it into /debug/traces?id= to drill in.
	TraceID string `json:"trace_id,omitempty"`
}

// PhaseStatus is one phase's aggregate in a RunStatus.
type PhaseStatus struct {
	Count   int64 `json:"count"`
	TotalNs int64 `json:"total_ns"`
}

// runTelemetry carries one run's tracing state through the strategies and
// the selector. Everything is nil-safe, so a run with a nil registry works
// (it just measures into a private tracer).
type runTelemetry struct {
	tr   *telemetry.Tracer
	root *telemetry.Span
	// queueDepth mirrors the separate-cores step queue into the registry
	// for live introspection; depth/peak are the run-local truth.
	queueDepth *telemetry.Gauge
	stepsDone  *telemetry.Counter
	// Robustness counters: transient store errors retried, pipeline worker
	// panics converted to errors, and steps a resumed run replayed from the
	// journal instead of recomputing.
	storeRetries   *telemetry.Counter
	workerPanics   *telemetry.Counter
	stepsRecovered *telemetry.Counter
	depth          atomic.Int64
	peak           atomic.Int64

	// Live run-status state behind the RunStatusName provider.
	workload     string
	method       string
	codecName    string
	strategyDesc string
	steps        int
	start        time.Time
	// phase is the in-situ phase currently executing (SpanSimulate, ...,
	// "done"); the profiling collector stamps snapshots with it.
	phase       atomic.Value // string
	currentStep atomic.Int64
	selectedN   atomic.Int64
	bytesOut    atomic.Int64
	// codecBins counts bins by encoding: wah, bbc, dense, other.
	codecBins   [4]atomic.Int64
	generation  atomic.Uint64
	journal     atomic.Value // string: "none", "active", "sealed"
	done        atomic.Bool
	lastTraceID atomic.Value // string
}

// newRunTelemetry attaches a fresh tracer to the registry (cfg.Telemetry,
// defaulting to telemetry.Default), opens the run root span, and publishes
// the live run-status provider the debug server serves at /debug/run.
func newRunTelemetry(cfg Config) *runTelemetry {
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.Default
	}
	rt := &runTelemetry{
		tr:        telemetry.NewTracer(),
		workload:  cfg.Sim.Name(),
		method:    cfg.Method.String(),
		codecName: cfg.Codec.String(),
		steps:     cfg.Steps,
		start:     time.Now(),
	}
	rt.currentStep.Store(-1)
	rt.journal.Store("none")
	rt.phase.Store("")
	reg.AttachTracer(TracerName, rt.tr)
	reg.PublishStatus(RunStatusName, rt.status)
	// The profiling collector stamps each snapshot with this run's
	// generation, phase, and step. Like the run status, the last run's
	// info stays visible after the run completes.
	profiling.SetRunInfo(func() profiling.RunInfo {
		return profiling.RunInfo{
			Generation: rt.generation.Load(),
			Phase:      rt.phaseName(),
			Step:       int(rt.currentStep.Load()),
		}
	})
	rt.root = rt.tr.Start(SpanRun)
	rt.queueDepth = reg.Gauge("insitu.queue_depth")
	rt.stepsDone = reg.Counter("insitu.steps_processed")
	rt.storeRetries = reg.Counter("store.retries")
	rt.workerPanics = reg.Counter("insitu.worker_panics")
	rt.stepsRecovered = reg.Counter("insitu.steps_recovered")
	return rt
}

// status assembles the live RunStatus snapshot (the registry provider).
func (rt *runTelemetry) status() any {
	st := RunStatus{
		Workload:     rt.workload,
		Method:       rt.method,
		Strategy:     rt.strategyDesc,
		Steps:        rt.steps,
		StepsDone:    int(rt.currentStepCount()),
		CurrentStep:  int(rt.currentStep.Load()),
		Selected:     int(rt.selectedN.Load()),
		QueueDepth:   int(rt.depth.Load()),
		QueuePeak:    int(rt.peak.Load()),
		BytesWritten: rt.bytesOut.Load(),
		ElapsedNs:    time.Since(rt.start).Nanoseconds(),
		Done:         rt.done.Load(),
		Generation:   rt.generation.Load(),
	}
	if s, ok := rt.journal.Load().(string); ok {
		st.Journal = s
	}
	names := [4]string{"wah", "bbc", "dense", "other"}
	for i, name := range names {
		if n := rt.codecBins[i].Load(); n > 0 {
			if st.CodecBins == nil {
				st.CodecBins = make(map[string]int64, 4)
			}
			st.CodecBins[name] = n
		}
	}
	for _, phase := range []string{SpanSimulate, SpanReduce, SpanSelect, SpanWrite} {
		p := rt.tr.Phase(SpanRun, phase)
		if p.Count == 0 {
			continue
		}
		if st.Phases == nil {
			st.Phases = make(map[string]PhaseStatus, 4)
		}
		st.Phases[phase] = PhaseStatus{Count: p.Count, TotalNs: p.Total.Nanoseconds()}
	}
	if id, ok := rt.lastTraceID.Load().(string); ok && id != "" {
		st.TraceID = id
	}
	return st
}

// phaseName returns the current in-situ phase, "" before the first one.
func (rt *runTelemetry) phaseName() string {
	if s, ok := rt.phase.Load().(string); ok {
		return s
	}
	return ""
}

// enterPhase marks phase as the run's current in-situ phase and — when
// continuous profiling is enabled — tags the goroutine (and any workers
// it spawns) with pprof labels for the phase, workload, and codec, so
// CPU samples attribute to "reduce under WAH" rather than a bare stack.
// The returned closure restores the caller's labels; the phase marker
// stays until the next enterPhase, matching how the profiling collector
// samples it. One atomic store plus one atomic load when profiling is
// disabled.
func (rt *runTelemetry) enterPhase(ctx context.Context, phase string) func() {
	rt.phase.Store(phase)
	_, unlabel := profiling.Label(ctx,
		"phase", phase, "workload", rt.workload, "codec", rt.codecName)
	return unlabel
}

// currentStepCount is the steps-offered count (currentStep+1, floored at 0).
func (rt *runTelemetry) currentStepCount() int64 {
	if n := rt.currentStep.Load() + 1; n > 0 {
		return n
	}
	return 0
}

// observeStep folds one offered step into the live run status: current
// step, the step's identity-trace ID (if any), and the per-codec bin mix of
// its bitmap summaries — O(bins) metadata reads, no bitmap is decoded.
func (rt *runTelemetry) observeStep(ctx context.Context, t int, sum *stepSummary) {
	rt.currentStep.Store(int64(t))
	if id := telemetry.TraceIDOf(ctx); id != "" {
		rt.lastTraceID.Store(id)
	}
	for _, part := range sum.parts {
		bs, ok := part.(*selection.BitmapSummary)
		if !ok || bs.X == nil {
			continue
		}
		x := bs.X
		rt.observeGeneration(x.Generation())
		for b := 0; b < x.Bins(); b++ {
			switch x.Codec(b) {
			case codec.WAH:
				rt.codecBins[0].Add(1)
			case codec.BBC:
				rt.codecBins[1].Add(1)
			case codec.Dense:
				rt.codecBins[2].Add(1)
			default:
				rt.codecBins[3].Add(1)
			}
		}
	}
}

// observeGeneration folds an index generation into the run status maximum.
func (rt *runTelemetry) observeGeneration(gen uint64) {
	for {
		cur := rt.generation.Load()
		if gen <= cur || rt.generation.CompareAndSwap(cur, gen) {
			return
		}
	}
}

// setJournal records the run journal's lifecycle transition for /healthz.
// Nil-safe so the writer works without telemetry.
func (rt *runTelemetry) setJournal(state string) {
	if rt == nil {
		return
	}
	rt.journal.Store(state)
}

// wroteStep folds one committed step into the live run status.
func (rt *runTelemetry) wroteStep(bytes int64) {
	rt.selectedN.Add(1)
	rt.bytesOut.Add(bytes)
}

// enqueued records one step entering the separate-cores queue (called
// before the blocking send, so a blocked producer shows as backpressure).
func (rt *runTelemetry) enqueued() {
	d := rt.depth.Add(1)
	for {
		p := rt.peak.Load()
		if d <= p || rt.peak.CompareAndSwap(p, d) {
			break
		}
	}
	rt.queueDepth.Set(d)
}

// dequeued records one step leaving the queue.
func (rt *runTelemetry) dequeued() {
	rt.queueDepth.Set(rt.depth.Add(-1))
}

// finish closes the root span and copies the span totals into the result's
// phase breakdown — the run report is produced from telemetry, the tracer
// is the single source of phase truth. The run status stays published with
// Done set, so a dashboard shows the completed run until the next one
// starts.
func (rt *runTelemetry) finish(res *Result) {
	rt.root.End()
	rt.done.Store(true)
	rt.phase.Store("done")
	res.Breakdown.Simulate = rt.tr.Phase(SpanRun, SpanSimulate).Total
	res.Breakdown.Reduce = rt.tr.Phase(SpanRun, SpanReduce).Total
	res.Breakdown.Select = rt.tr.Phase(SpanRun, SpanSelect).Total
	res.WriteTime = rt.tr.Phase(SpanRun, SpanWrite).Total
	res.QueuePeak = int(rt.peak.Load())
}
