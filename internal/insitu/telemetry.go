package insitu

import (
	"sync/atomic"

	"insitubits/internal/telemetry"
)

// TracerName is the registry key the pipeline attaches its per-run tracer
// under; the debug server shows the live span tree of the current run.
const TracerName = "pipeline"

// Span names of the per-step phases under the "run" root. The Figure 7-10
// phase breakdowns are regenerated from these spans (Result.Breakdown is
// filled from the tracer, not from ad-hoc timers).
const (
	SpanRun      = "run"
	SpanSimulate = "simulate"
	SpanReduce   = "reduce"
	SpanSelect   = "select"
	SpanWrite    = "write"
)

// runTelemetry carries one run's tracing state through the strategies and
// the selector. Everything is nil-safe, so a run with a nil registry works
// (it just measures into a private tracer).
type runTelemetry struct {
	tr   *telemetry.Tracer
	root *telemetry.Span
	// queueDepth mirrors the separate-cores step queue into the registry
	// for live introspection; depth/peak are the run-local truth.
	queueDepth *telemetry.Gauge
	stepsDone  *telemetry.Counter
	// Robustness counters: transient store errors retried, pipeline worker
	// panics converted to errors, and steps a resumed run replayed from the
	// journal instead of recomputing.
	storeRetries   *telemetry.Counter
	workerPanics   *telemetry.Counter
	stepsRecovered *telemetry.Counter
	depth          atomic.Int64
	peak           atomic.Int64
}

// newRunTelemetry attaches a fresh tracer to the registry (cfg.Telemetry,
// defaulting to telemetry.Default) and opens the run root span.
func newRunTelemetry(cfg Config) *runTelemetry {
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.Default
	}
	rt := &runTelemetry{tr: telemetry.NewTracer()}
	reg.AttachTracer(TracerName, rt.tr)
	rt.root = rt.tr.Start(SpanRun)
	rt.queueDepth = reg.Gauge("insitu.queue_depth")
	rt.stepsDone = reg.Counter("insitu.steps_processed")
	rt.storeRetries = reg.Counter("store.retries")
	rt.workerPanics = reg.Counter("insitu.worker_panics")
	rt.stepsRecovered = reg.Counter("insitu.steps_recovered")
	return rt
}

// enqueued records one step entering the separate-cores queue (called
// before the blocking send, so a blocked producer shows as backpressure).
func (rt *runTelemetry) enqueued() {
	d := rt.depth.Add(1)
	for {
		p := rt.peak.Load()
		if d <= p || rt.peak.CompareAndSwap(p, d) {
			break
		}
	}
	rt.queueDepth.Set(d)
}

// dequeued records one step leaving the queue.
func (rt *runTelemetry) dequeued() {
	rt.queueDepth.Set(rt.depth.Add(-1))
}

// finish closes the root span and copies the span totals into the result's
// phase breakdown — the run report is produced from telemetry, the tracer
// is the single source of phase truth.
func (rt *runTelemetry) finish(res *Result) {
	rt.root.End()
	res.Breakdown.Simulate = rt.tr.Phase(SpanRun, SpanSimulate).Total
	res.Breakdown.Reduce = rt.tr.Phase(SpanRun, SpanReduce).Total
	res.Breakdown.Select = rt.tr.Phase(SpanRun, SpanSelect).Total
	res.WriteTime = rt.tr.Phase(SpanRun, SpanWrite).Total
	res.QueuePeak = int(rt.peak.Load())
}
