package insitu

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"insitubits/internal/store"
)

// Damage classes Fsck assigns to issues. "missing" is an artifact the
// journal or manifest references that is not on disk; "truncated" is a file
// (or journal tail) cut short, the signature of a crash; "corrupt" is
// content that fails its checksum or parses invalid — flipped bytes, not a
// crash; "orphan" is a file nothing references (stray staging files
// included); "incomplete" is a journal without an end record — the run
// never finished and can be resumed.
const (
	DamageMissing    = "missing"
	DamageTruncated  = "truncated"
	DamageCorrupt    = "corrupt"
	DamageOrphan     = "orphan"
	DamageIncomplete = "incomplete"
)

// FsckIssue is one problem fsck found (and possibly repaired).
type FsckIssue struct {
	Path   string `json:"path"`
	Step   int    `json:"step"` // -1 when not tied to a step
	Class  string `json:"class"`
	Detail string `json:"detail"`
	// Action is what -repair did about it ("" when not repairing).
	Action string `json:"action,omitempty"`
}

// FsckReport summarizes one directory verification.
type FsckReport struct {
	Dir string `json:"dir"`
	// FilesChecked counts artifacts actually verified (journal CRC or full
	// format parse), not counting the journal and manifest themselves.
	FilesChecked int  `json:"files_checked"`
	HasJournal   bool `json:"has_journal"`
	// Complete is true when the journal records a finished run (or the
	// directory predates journals and only a manifest exists).
	Complete bool        `json:"complete"`
	Issues   []FsckIssue `json:"issues,omitempty"`
	Repaired bool        `json:"repaired,omitempty"`
}

// Clean reports whether no issues were found.
func (r *FsckReport) Clean() bool { return len(r.Issues) == 0 }

// FsckOptions configures Fsck.
type FsckOptions struct {
	// Repair quarantines damaged steps and strays and rewrites a
	// consistent manifest (and, for completed runs, journal) covering only
	// the surviving steps. Nothing is deleted — everything moves to
	// quarantine/.
	Repair bool
}

// Fsck verifies an output directory end to end: journal integrity,
// manifest consistency, and every artifact's checksum (via the journal's
// whole-file CRC32C when available, by full format parse otherwise —
// which also covers directories written before journals existed, and
// detects v3 per-bin and footer checksum violations). Damage is classified
// per FsckIssue; the error return is reserved for fsck itself failing, not
// for problems it found.
func Fsck(dir string, opt FsckOptions) (*FsckReport, error) {
	rep := &FsckReport{Dir: dir}
	issue := func(path string, step int, class, detail, action string) {
		rep.Issues = append(rep.Issues, FsckIssue{Path: path, Step: step, Class: class, Detail: detail, Action: action})
	}
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return nil, fmt.Errorf("insitu: fsck: %s is not a directory", dir)
	}

	// Journal pass: parse, note torn tails and incompleteness, and verify
	// every committed artifact against its journaled length + CRC32C.
	var (
		begin      *JournalRecord
		selects    = map[int]*JournalRecord{}
		end        *JournalRecord
		tornTail   []byte
		journalLen int64
		referenced = map[string]bool{}
		badSteps   = map[int]bool{}
	)
	jdata, jerr := os.ReadFile(filepath.Join(dir, JournalName))
	switch {
	case errors.Is(jerr, fs.ErrNotExist):
		// Pre-journal directory: the manifest pass does all the work.
	case jerr != nil:
		return nil, jerr
	default:
		rep.HasJournal = true
		recs, validLen, perr := ParseJournal(jdata)
		if perr != nil {
			issue(JournalName, -1, DamageCorrupt, perr.Error(), "")
		} else {
			if int64(len(jdata)) > validLen {
				tornTail = jdata[validLen:]
				journalLen = validLen
				issue(JournalName, -1, DamageTruncated,
					fmt.Sprintf("torn tail of %d bytes after %d valid records", len(tornTail), len(recs)), "")
			}
			for i := range recs {
				rec := &recs[i]
				switch rec.Kind {
				case KindBegin:
					if begin == nil {
						begin = rec
					}
				case KindSelect:
					selects[rec.Step] = rec // later record supersedes
				case KindEnd:
					end = rec
				}
			}
			if end == nil {
				issue(JournalName, -1, DamageIncomplete,
					"no end record: the run did not finish (resumable with insitu-run -resume)", "")
			}
		}
		for step, rec := range selects {
			for _, jf := range rec.Files {
				referenced[jf.Path] = true
				rep.FilesChecked++
				if err := verifyArtifact(dir, jf); err != nil {
					badSteps[step] = true
					issue(jf.Path, step, classifyDamage(err), err.Error(), "")
				}
			}
		}
	}
	rep.Complete = end != nil || !rep.HasJournal

	// Manifest pass: structural validation, then verify files the journal
	// did not already cover by fully parsing them (the only integrity
	// check available for pre-journal directories).
	m, merr := ReadManifest(dir)
	switch {
	case errors.Is(merr, fs.ErrNotExist):
		if !rep.HasJournal {
			issue(ManifestName, -1, DamageMissing, "neither manifest nor journal present", "")
		} else if end != nil {
			issue(ManifestName, -1, DamageMissing, "journal records a completed run but the manifest is gone", "")
		}
		// An incomplete run legitimately has no manifest yet.
	case merr != nil:
		issue(ManifestName, -1, DamageCorrupt, merr.Error(), "")
	default:
		for _, mf := range m.Files {
			referenced[mf.Path] = true
			if journalCovers(selects, mf) {
				continue
			}
			rep.FilesChecked++
			if err := parseArtifact(dir, mf); err != nil {
				badSteps[mf.Step] = true
				issue(mf.Path, mf.Step, classifyDamage(err), err.Error(), "")
			}
		}
	}

	// Orphan pass: staging strays and unreferenced files.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var orphans []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || name == JournalName || name == ManifestName {
			continue
		}
		if referenced[name] {
			continue
		}
		orphans = append(orphans, name)
		detail := "referenced by neither journal nor manifest"
		if strings.HasSuffix(name, store.TempSuffix) {
			detail = "staging file stranded by a crash"
		}
		issue(name, -1, DamageOrphan, detail, "")
	}

	if !opt.Repair || rep.Clean() {
		return rep, nil
	}
	if err := repair(dir, rep, begin, selects, end, badSteps, orphans, tornTail, journalLen); err != nil {
		return rep, err
	}
	rep.Repaired = true
	return rep, nil
}

// journalCovers reports whether a manifest entry was already verified via a
// journal select record (same step, path, and length).
func journalCovers(selects map[int]*JournalRecord, mf ManifestFile) bool {
	rec, ok := selects[mf.Step]
	if !ok {
		return false
	}
	for _, jf := range rec.Files {
		if jf.Path == mf.Path && jf.Bytes == mf.Bytes {
			return true
		}
	}
	return false
}

// classifyDamage maps a verification error to a damage class.
func classifyDamage(err error) string {
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return DamageMissing
	case errors.Is(err, store.ErrChecksum):
		return DamageCorrupt
	case errors.Is(err, io.ErrUnexpectedEOF), errors.Is(err, io.EOF):
		return DamageTruncated
	default:
		return DamageCorrupt
	}
}

// parseArtifact fully decodes one artifact by its format — the verification
// path for files with no journaled checksum.
func parseArtifact(dir string, mf ManifestFile) error {
	path := filepath.Join(dir, mf.Path)
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	if st.Size() < mf.Bytes {
		return fmt.Errorf("insitu: %s is %d bytes, manifest records %d: %w", mf.Path, st.Size(), mf.Bytes, io.ErrUnexpectedEOF)
	}
	if st.Size() > mf.Bytes {
		return fmt.Errorf("insitu: %s is %d bytes, manifest records %d: %w", mf.Path, st.Size(), mf.Bytes, store.ErrChecksum)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch filepath.Ext(mf.Path) {
	case ".isbm":
		_, err = store.ReadIndex(f)
	case ".israw":
		_, err = store.ReadRaw(f)
	default:
		err = fmt.Errorf("insitu: unrecognized artifact extension on %s", mf.Path)
	}
	return err
}

// repair executes the -repair plan: quarantine the torn journal tail,
// orphans, and every file of each damaged step, then rewrite a manifest
// (and, for completed runs, a journal) that covers only the surviving
// steps. Incomplete journals are left in place minus their torn tail so
// Resume can still continue the run.
func repair(dir string, rep *FsckReport, begin *JournalRecord, selects map[int]*JournalRecord,
	end *JournalRecord, badSteps map[int]bool, orphans []string, tornTail []byte, journalLen int64) error {
	act := func(path, action string) {
		for i := range rep.Issues {
			if rep.Issues[i].Path == path && rep.Issues[i].Action == "" {
				rep.Issues[i].Action = action
			}
		}
	}
	if tornTail != nil {
		if err := quarantineBytes(dir, JournalName+".tail", tornTail); err != nil {
			return err
		}
		if err := os.Truncate(filepath.Join(dir, JournalName), journalLen); err != nil {
			return err
		}
		act(JournalName, "torn tail quarantined and truncated")
	}
	for _, name := range orphans {
		if err := quarantineFile(dir, name); err != nil {
			return err
		}
		act(name, "quarantined")
	}
	// Whole-step granularity: the manifest invariant is one file per
	// variable per selected step, so a step with any damaged artifact is
	// dropped entirely and its surviving siblings quarantined with it.
	for step := range badSteps {
		rec, ok := selects[step]
		if !ok {
			continue
		}
		for _, jf := range rec.Files {
			if _, err := os.Stat(filepath.Join(dir, jf.Path)); err == nil {
				if err := quarantineFile(dir, jf.Path); err != nil {
					return err
				}
			}
			act(jf.Path, "step quarantined")
		}
	}

	// Rebuild the manifest from the authoritative source. With a journal,
	// that is the surviving select records; without one, the existing
	// manifest minus the damaged steps.
	var nm Manifest
	if begin != nil {
		nm = Manifest{Workload: begin.Workload, Method: begin.Method, Vars: begin.Vars, Steps: begin.Steps}
		steps := make([]int, 0, len(selects))
		for step := range selects {
			if !badSteps[step] {
				steps = append(steps, step)
			}
		}
		sort.Ints(steps)
		for _, step := range steps {
			nm.Selected = append(nm.Selected, step)
			for _, jf := range selects[step].Files {
				nm.Files = append(nm.Files, ManifestFile{Step: step, Var: jf.Var, Path: jf.Path, Bytes: jf.Bytes})
			}
		}
		if end == nil {
			// The run is resumable; rewriting the manifest now would claim
			// completeness it does not have. Quarantining was enough.
			return nil
		}
	} else {
		m, err := ReadManifest(dir)
		if err != nil {
			return fmt.Errorf("insitu: repair needs a readable journal or manifest: %w", err)
		}
		nm = Manifest{Workload: m.Workload, Method: m.Method, Vars: m.Vars, Steps: m.Steps}
		for _, s := range m.Selected {
			if !badSteps[s] {
				nm.Selected = append(nm.Selected, s)
			}
		}
		for _, f := range m.Files {
			if !badSteps[f.Step] {
				nm.Files = append(nm.Files, f)
			}
		}
	}
	data, err := marshalManifest(&nm)
	if err != nil {
		return err
	}
	if _, err := store.AtomicWriteBytes(nil, filepath.Join(dir, ManifestName), data); err != nil {
		return err
	}
	act(ManifestName, "rewritten")

	if begin != nil && end != nil {
		// Rewrite the completed journal to match: begin, the surviving
		// selects, and an end record over the surviving selection.
		buf := journalHeader()
		out := []*JournalRecord{begin}
		for _, step := range nm.Selected {
			out = append(out, selects[step])
		}
		out = append(out, &JournalRecord{Kind: KindEnd, Selected: nm.Selected})
		for _, rec := range out {
			frame, err := encodeFrame(rec)
			if err != nil {
				return err
			}
			buf = append(buf, frame...)
		}
		if _, err := store.AtomicWriteBytes(nil, filepath.Join(dir, JournalName), buf); err != nil {
			return err
		}
		act(JournalName, "rewritten")
	}
	return nil
}

// marshalManifest renders a manifest exactly as writer.finish does, so a
// repaired manifest is byte-identical to a freshly written one.
func marshalManifest(m *Manifest) ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}
