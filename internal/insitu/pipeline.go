// Package insitu is the paper's end-to-end system (§2.3, Figure 2): a
// simulation produces time-steps in memory; a reduction method (bitmaps,
// full data, or sampling) summarizes each step; time-step selection runs
// online over the summaries; and only the selected summaries are written
// out. Core allocation between simulation and bitmap generation follows the
// paper's two strategies — Shared Cores and Separate Cores with the
// Equation 1/2 calibrated split — and all phase costs are reported
// separately so the Figure 7-10/12/15 breakdowns can be regenerated.
package insitu

import (
	"context"
	"fmt"
	"strings"
	"time"

	"insitubits/internal/binning"
	"insitubits/internal/bitcache"
	"insitubits/internal/codec"
	"insitubits/internal/index"
	"insitubits/internal/iosim"
	"insitubits/internal/qlog"
	"insitubits/internal/query"
	"insitubits/internal/sampling"
	"insitubits/internal/selection"
	"insitubits/internal/sim"
	"insitubits/internal/store"
	"insitubits/internal/telemetry"
)

// Method is the data-reduction approach applied to each time-step.
type Method int

const (
	// Bitmaps is the paper's method: compress each variable into a WAH
	// bitmap index and discard the raw data.
	Bitmaps Method = iota
	// FullData is the baseline: keep (and eventually write) raw arrays.
	FullData
	// Sampling keeps a fixed element subset of each array (§5.5 baseline).
	Sampling
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Bitmaps:
		return "bitmaps"
	case FullData:
		return "fulldata"
	case Sampling:
		return "sampling"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Config parameterizes one pipeline run.
type Config struct {
	Sim    sim.Simulator
	Steps  int // time-steps to simulate (paper: 100)
	Select int // time-steps to keep (paper: 25)

	Method    Method
	Bins      int     // bins per variable (bitmaps/fulldata metrics)
	SamplePct float64 // sampling percentage for Method == Sampling
	Seed      int64   // sampler seed

	// Codec selects the per-bin bitmap encoding for Method == Bitmaps. The
	// zero value (codec.Auto) applies the adaptive density policy — dense
	// bins store uncompressed, sparse bins take the smaller run-length
	// codec. Pin codec.WAH to reproduce pre-v2 output exactly.
	Codec codec.ID

	Metric selection.Metric
	Part   selection.Partitioner

	// VarWeights optionally weights each variable's contribution to the
	// multi-variable selection score (nil = equal weights, the paper's
	// implicit choice for Lulesh's 12 arrays). Length must match the
	// simulator's variable count; weights must be non-negative.
	VarWeights []float64

	Cores    int      // total cores (worker goroutines)
	Strategy Strategy // nil defaults to SharedCores

	// MemoryBudgetBytes, when positive, bounds the separate-cores step
	// queue: its capacity becomes QueueCapForMemory(budget, step bytes)
	// whenever the strategy leaves QueueCap zero — the paper's "the queue
	// size is limited by the memory capacity".
	MemoryBudgetBytes int64

	Store *iosim.Store // output device; nil disables output accounting

	// OutputDir, when set, persists every selected step's summaries for
	// real: one .isbm (bitmaps) or .israw (full data, sampling) file per
	// variable, plus a manifest.json index (see Manifest).
	OutputDir string

	// Window is how many current time-steps the memory model assumes held
	// in memory for selection (paper Figure 11 uses 10).
	Window int

	// Telemetry selects the registry the run reports into (phase span tree
	// under "pipeline", queue-depth gauge, step counter). Nil means
	// telemetry.Default; the phase breakdown is always measured either way
	// because each run traces into its own tracer.
	Telemetry *telemetry.Registry

	// Ctx, when set, cancels the run: both strategies stop between steps
	// (and the separate-cores producer unblocks from a full queue) once the
	// context is done. Nil means context.Background().
	Ctx context.Context

	// FS is the filesystem the run's durable artifacts (step files,
	// manifest, journal) go through. Nil means the real filesystem
	// (iosim.OS); tests inject an iosim.FaultFS here to rehearse crashes
	// and transient store errors.
	FS iosim.FS

	// Retry is the backoff policy applied to transient store errors while
	// persisting artifacts. The zero value gets iosim.Retry's defaults
	// (4 attempts, 1ms base, 100ms cap). Crashes are never retried.
	Retry iosim.Backoff

	// OnPublish, when set, is invoked after each selected step's artifacts
	// are durably committed — written, fsynced, and sealed by the journal's
	// select record. An embedded query server (internal/serve) hangs its
	// zero-downtime catalog reload off this; cross-process servers poll the
	// journal instead. Called on the selection goroutine between steps, so
	// the hook must not block for long.
	OnPublish func(step int)

	// resume carries the replay state Resume derived from the run journal;
	// nil for a fresh run.
	resume *resumeState
}

// context returns the run's context, defaulting to Background.
func (c *Config) context() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// fsys returns the run's filesystem, defaulting to the real one.
func (c *Config) fsys() iosim.FS {
	if c.FS != nil {
		return c.FS
	}
	return iosim.OS
}

func (c *Config) validate() error {
	if c.Sim == nil {
		return fmt.Errorf("insitu: nil simulator")
	}
	if c.Steps < 1 {
		return fmt.Errorf("insitu: %d steps", c.Steps)
	}
	if c.Select < 1 || c.Select > c.Steps {
		return fmt.Errorf("insitu: select %d of %d steps", c.Select, c.Steps)
	}
	if c.Bins < 1 && c.Method != Sampling {
		return fmt.Errorf("insitu: %d bins", c.Bins)
	}
	if c.Method == Sampling && (c.SamplePct <= 0 || c.SamplePct > 100) {
		return fmt.Errorf("insitu: sample percentage %g", c.SamplePct)
	}
	if c.Cores < 1 {
		return fmt.Errorf("insitu: %d cores", c.Cores)
	}
	if !c.Codec.Valid() {
		return fmt.Errorf("insitu: unknown codec %v", c.Codec)
	}
	if c.Method == Sampling && c.Bins < 1 {
		return fmt.Errorf("insitu: sampling still needs bins for selection metrics, got %d", c.Bins)
	}
	if c.VarWeights != nil {
		if len(c.VarWeights) != len(c.Sim.Vars()) {
			return fmt.Errorf("insitu: %d weights for %d variables", len(c.VarWeights), len(c.Sim.Vars()))
		}
		positive := false
		for i, w := range c.VarWeights {
			if w < 0 {
				return fmt.Errorf("insitu: negative weight %g for variable %d", w, i)
			}
			if w > 0 {
				positive = true
			}
		}
		if !positive {
			return fmt.Errorf("insitu: all variable weights are zero")
		}
	}
	if c.Part != nil {
		if _, ok := c.Part.(selection.FixedLength); !ok {
			// Online selection sees steps as they stream, so importance-
			// balanced partitioning (which needs all importances up front)
			// is an offline-only feature.
			return fmt.Errorf("insitu: online selection supports fixed-length partitioning only, got %T", c.Part)
		}
	}
	return nil
}

// Breakdown is the per-phase cost of a run. Simulate, Reduce and Select are
// measured busy time on the host; Output is modelled from bytes written and
// the store's bandwidth (see DESIGN.md on the I/O substitution).
type Breakdown struct {
	Simulate time.Duration
	Reduce   time.Duration
	Select   time.Duration
	Output   time.Duration
}

// Total sums the phases; under SharedCores this equals end-to-end time.
func (b Breakdown) Total() time.Duration {
	return b.Simulate + b.Reduce + b.Select + b.Output
}

// Result reports a pipeline run.
type Result struct {
	Breakdown Breakdown
	// Wall is the measured wall-clock time of the produce/reduce loop; with
	// SeparateCores it is less than Simulate+Reduce because they overlap.
	Wall time.Duration
	// Selected are the kept time-step indices.
	Selected []int
	// BytesWritten is the total output volume (selected summaries only).
	BytesWritten int64
	// StepBytes is the raw size of one time-step (all variables).
	StepBytes int64
	// SummaryBytes is the average per-step summary size.
	SummaryBytes int64
	// PeakMemory is the modelled in-situ working set (Figure 11).
	PeakMemory int64
	// QueuePeak is the high-watermark of the separate-cores step queue
	// (counting a produced step blocked on a full queue); 0 under
	// SharedCores. The paper's memory-capacity bound on the queue makes
	// this the run's backpressure signal.
	QueuePeak int
	// WriteTime is the measured time spent persisting selected summaries
	// (the "write" spans); distinct from Breakdown.Output, which stays the
	// bandwidth-modelled transfer time (see DESIGN.md).
	WriteTime time.Duration
	// SlowQueries are the slowest per-step selection scorings of the run
	// (slowest first, at most selectorSlowK), each with a profile of the
	// step's per-variable summary shape. They also feed query.LogSlow, so
	// an installed slow-query log sees them with full detail.
	SlowQueries []*query.Profile
}

// Run executes the configured pipeline and reports the phase breakdown.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	strategy := cfg.Strategy
	if strategy == nil {
		strategy = SharedCores{}
	}
	red, err := newReducer(cfg)
	if err != nil {
		return nil, err
	}
	rt := newRunTelemetry(cfg)
	rt.strategyDesc = strategy.Describe()
	w, err := newWriter(cfg, rt)
	if err != nil {
		return nil, err
	}
	sel := newSelector(cfg)
	sel.w = w
	sel.rt = rt
	res, err := strategy.run(cfg, red, sel)
	if err == nil && sel.err != nil {
		err = sel.err
	}
	if err != nil {
		// Abort without sealing: the journal keeps its last durable record
		// and Resume can pick the run up from there.
		w.close()
		return nil, err
	}
	if w != nil {
		if err := w.finish(); err != nil {
			return nil, err
		}
	}
	res.SlowQueries = sel.slow.Profiles()
	res.finishMemory(cfg, red)
	return res, nil
}

// reducer turns one time-step's fields into a selection.Summary plus the
// byte count its serialized form would occupy on the output device.
type reducer struct {
	cfg     Config
	mappers []binning.Mapper
	sampler *sampling.Sampler
}

func newReducer(cfg Config) (*reducer, error) {
	r := &reducer{cfg: cfg}
	ranges := cfg.Sim.Ranges()
	if len(ranges) != len(cfg.Sim.Vars()) {
		return nil, fmt.Errorf("insitu: simulator %s declares %d ranges for %d vars",
			cfg.Sim.Name(), len(ranges), len(cfg.Sim.Vars()))
	}
	for _, rg := range ranges {
		m, err := binning.NewUniform(rg[0], rg[1], cfg.Bins)
		if err != nil {
			return nil, fmt.Errorf("insitu: binning for range %v: %w", rg, err)
		}
		r.mappers = append(r.mappers, m)
	}
	if cfg.Method == Sampling {
		s, err := sampling.NewRandom(cfg.Sim.Elements(), cfg.SamplePct, cfg.Seed)
		if err != nil {
			return nil, err
		}
		r.sampler = s
	}
	return r, nil
}

// reduce summarizes one step's fields using nWorkers cores.
func (r *reducer) reduce(fields []sim.Field, nWorkers int) (*stepSummary, error) {
	parts := make([]selection.Summary, len(fields))
	outBytes := int64(0)
	memBytes := int64(0)
	switch r.cfg.Method {
	case Bitmaps:
		// Multi-variable steps (Lulesh's 12 arrays) index their variables
		// concurrently; a single-variable step parallelizes within the
		// build via sub-block decomposition instead. Aggregation below is
		// in variable order, so the result is deterministic either way.
		if len(fields) > 1 && nWorkers > 1 {
			xs := make([]*index.Index, len(fields))
			perVar := nWorkers / len(fields)
			if perVar < 1 {
				perVar = 1
			}
			sim.ParallelFor(len(fields), nWorkers, func(lo, hi int) {
				for k := lo; k < hi; k++ {
					xs[k] = index.BuildParallel(fields[k].Data, r.mappers[k], perVar).Recode(r.cfg.Codec)
				}
			})
			for k, x := range xs {
				parts[k] = selection.NewBitmapSummary(x)
				outBytes += store.IndexSize(x)
				memBytes += int64(x.SizeBytes())
			}
			break
		}
		for k, f := range fields {
			x := index.BuildParallel(f.Data, r.mappers[k], nWorkers).Recode(r.cfg.Codec)
			parts[k] = selection.NewBitmapSummary(x)
			outBytes += store.IndexSize(x)
			memBytes += int64(x.SizeBytes())
		}
	case FullData:
		for k, f := range fields {
			parts[k] = selection.NewDataSummary(f.Data, r.mappers[k])
			outBytes += store.RawSize(len(f.Data))
			memBytes += int64(8 * len(f.Data))
		}
	case Sampling:
		for k, f := range fields {
			sampled, err := r.sampler.Sample(f.Data)
			if err != nil {
				return nil, err
			}
			parts[k] = selection.NewDataSummary(sampled, r.mappers[k])
			outBytes += store.RawSize(len(sampled))
			memBytes += int64(8 * len(sampled))
		}
	default:
		return nil, fmt.Errorf("insitu: unknown method %v", r.cfg.Method)
	}
	return &stepSummary{
		parts: parts, outBytes: outBytes, memBytes: memBytes,
		weights: r.cfg.VarWeights, cores: nWorkers,
	}, nil
}

// stepSummary aggregates one time-step's per-variable summaries; metric
// scores sum across variables (the paper analyzes all 12 Lulesh arrays).
type stepSummary struct {
	step     int
	parts    []selection.Summary
	outBytes int64
	memBytes int64
	weights  []float64 // nil = equal weights
	// cores lets multi-variable metric evaluation fan out across the
	// pipeline's workers ("the time-steps selection time is reduced almost
	// linearly" with cores, §5.1). Scores are accumulated in variable
	// order, so the result is deterministic regardless of core count.
	cores int
	// replay marks a stub standing in for a step whose reduction a resumed
	// run skipped because its score (and possibly its artifacts) are
	// already durable in the journal. A stub has no parts and must never be
	// scored or persisted afresh — the resume planner guarantees every step
	// that could still be scored against or written is fully re-reduced.
	replay bool
}

func (s *stepSummary) weight(k int) float64 {
	if s.weights == nil {
		return 1
	}
	return s.weights[k]
}

// Dissimilarity implements selection.Summary.
func (s *stepSummary) Dissimilarity(other selection.Summary, m selection.Metric) float64 {
	o, ok := other.(*stepSummary)
	if !ok {
		panic(fmt.Sprintf("insitu: stepSummary compared against %T", other))
	}
	if s.cores > 1 && len(s.parts) > 1 {
		scores := make([]float64, len(s.parts))
		sim.ParallelFor(len(s.parts), s.cores, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				if w := s.weight(k); w > 0 {
					scores[k] = w * s.parts[k].Dissimilarity(o.parts[k], m)
				}
			}
		})
		total := 0.0
		for _, v := range scores { // fixed order: deterministic sum
			total += v
		}
		return total
	}
	total := 0.0
	for k := range s.parts {
		if w := s.weight(k); w > 0 {
			total += w * s.parts[k].Dissimilarity(o.parts[k], m)
		}
	}
	return total
}

// generations lists the index generations of the summary's bitmap parts,
// for retiring their cached bitmaps once the summary leaves the selection.
func (s *stepSummary) generations() []uint64 {
	var out []uint64
	for _, p := range s.parts {
		if bs, ok := p.(*selection.BitmapSummary); ok && bs.X != nil {
			out = append(out, bs.X.Generation())
		}
	}
	return out
}

// Importance implements selection.Summary.
func (s *stepSummary) Importance() float64 {
	total := 0.0
	for _, p := range s.parts {
		total += p.Importance()
	}
	return total
}

// SizeBytes implements selection.Summary.
func (s *stepSummary) SizeBytes() int { return int(s.memBytes) }

var _ selection.Summary = (*stepSummary)(nil)

// selector performs the streaming greedy selection: each interval's steps
// are scored against the previously selected step as they arrive, so only
// the incumbent best (plus the previous selection) stays referenced.
type selector struct {
	cfg       Config
	intervals [][2]int
	ivPos     int
	prev      *stepSummary
	best      *stepSummary
	bestScore float64
	selected  []int
	written   int64
	sumBytes  int64
	nSeen     int
	w         *writer
	rt        *runTelemetry
	slow      *query.TopK
	err       error
}

// selectorSlowK is how many of the slowest per-step selection scorings
// every run keeps for its report (Result.SlowQueries).
const selectorSlowK = 5

func newSelector(cfg Config) *selector {
	imp := make([]float64, cfg.Steps) // fixed-length partitioning ignores it
	part := cfg.Part
	if part == nil {
		part = selection.FixedLength{}
	}
	return &selector{
		cfg:       cfg,
		intervals: part.Partition(imp, cfg.Select),
		slow:      query.NewTopK(selectorSlowK),
	}
}

// offer consumes step t's summary in order; metric evaluation is recorded
// as a "select" span and committed writes as "write" spans, which is where
// the run report's Select phase and WriteTime come from. When ctx carries
// the step's identity-trace span (the strategies open one per step while a
// trace recorder is installed) the same phases appear as child spans of
// that trace and the journaled score carries its trace ID. On a resumed
// run, steps whose score is already journaled skip the metric evaluation
// and replay the recorded score instead — exact, because Go's float64 JSON
// round-trips bit-for-bit — so the selection unfolds identically.
func (s *selector) offer(ctx context.Context, t int, sum *stepSummary) {
	sum.step = t
	s.sumBytes += sum.memBytes
	s.nSeen++
	s.rt.stepsDone.Inc()
	s.rt.observeStep(ctx, t, sum)
	if t == 0 { // step 0 is always selected (paper Figure 3)
		s.prev = sum
		s.selected = append(s.selected, 0)
		s.write(ctx, sum)
		return
	}
	if rs := s.cfg.resume; rs != nil {
		if score, ok := rs.scores[t]; ok {
			s.rt.stepsRecovered.Inc()
			s.applyScore(ctx, t, sum, score)
			return
		}
	}
	sp := s.rt.root.Child(SpanSelect)
	tsp := telemetry.SpanFromContext(ctx).Child(SpanSelect)
	start := time.Now()
	score := sum.Dissimilarity(s.prev, s.cfg.Metric)
	elapsed := time.Since(start)
	tsp.SetAttrInt("vs_step", int64(s.prev.step))
	tsp.End()
	sp.End()
	// The score is durable before the interval logic can commit on it, so a
	// crash between here and the commit resumes with the selection intact.
	if err := s.w.recordScore(t, score, telemetry.TraceIDOf(ctx)); err != nil && s.err == nil {
		s.err = err
	}
	s.recordSelect(ctx, t, sum, score, elapsed)
	s.applyScore(ctx, t, sum, score)
}

// applyScore runs the streaming interval logic for one scored step. Every
// summary that leaves the selection here — a losing interval candidate or
// the superseded previous selection once a new step is committed — retires
// its cached bitmaps: queries will never see those index generations again.
func (s *selector) applyScore(ctx context.Context, t int, sum *stepSummary, score float64) {
	if s.ivPos < len(s.intervals) {
		iv := s.intervals[s.ivPos]
		if t >= iv[0] && t < iv[1] {
			if s.best == nil || score > s.bestScore {
				s.retire(s.best)
				s.best, s.bestScore = sum, score
			} else {
				s.retire(sum)
			}
			if t == iv[1]-1 { // interval complete: commit the winner
				superseded := s.prev
				s.selected = append(s.selected, s.best.step)
				s.prev = s.best
				s.write(ctx, s.best)
				s.retire(superseded)
				s.best = nil
				s.ivPos++
			}
			return
		}
	}
	s.retire(sum)
}

// retire invalidates the default bitmap cache's entries for a summary whose
// indices have been superseded by a newly published step (or discarded as a
// losing candidate). Without this, a long-running in-situ service would keep
// serving cached results for retired generations' keys — never wrong (keys
// embed the generation) but dead weight crowding out live entries.
func (s *selector) retire(sum *stepSummary) {
	if sum == nil {
		return
	}
	c := bitcache.Default()
	if c == nil {
		return
	}
	for _, g := range sum.generations() {
		c.InvalidateGeneration(g)
	}
}

// recordSelect profiles one dissimilarity scoring for the run report's
// top-K slowest selection queries and the process-wide slow-query log. The
// per-variable nodes carry only O(bins) metadata reads (bin count, codec,
// encoded words/bytes) — no bitmap is decoded, so the profile costs far
// less than the scoring it describes.
func (s *selector) recordSelect(ctx context.Context, t int, sum *stepSummary, score float64, elapsed time.Duration) {
	root := &query.Node{Op: "dissimilarity", Bin: -1}
	for k, part := range sum.parts {
		bs, ok := part.(*selection.BitmapSummary)
		if !ok || bs.X == nil {
			continue
		}
		x := bs.X
		var words, bytes int64
		perCodec := map[string]int{}
		for b := 0; b < x.Bins(); b++ {
			words += int64(x.Bitmap(b).Words())
			bytes += int64(x.Bitmap(b).SizeBytes())
			perCodec[x.Codec(b).String()]++
		}
		mix := make([]string, 0, len(perCodec))
		for _, id := range []string{"wah", "bbc", "dense"} {
			if n := perCodec[id]; n > 0 {
				mix = append(mix, fmt.Sprintf("%s=%d", id, n))
			}
		}
		root.Children = append(root.Children, &query.Node{
			Op:     "variable",
			Detail: fmt.Sprintf("var %d, codecs %s", k, strings.Join(mix, " ")),
			Bin:    -1,
			Cost:   query.Cost{BinsTouched: x.Bins(), WordsScanned: words, BytesDecoded: bytes},
		})
	}
	p := &query.Profile{
		Query:     "selection.dissimilarity",
		Mode:      query.ModeAnalyze,
		Detail:    fmt.Sprintf("step %d vs selected step %d, metric %s, score %g", t, s.prev.step, s.cfg.Metric, score),
		ElapsedNs: elapsed.Nanoseconds(),
		TraceID:   telemetry.TraceIDOf(ctx),
		Root:      root,
	}
	s.slow.Offer(p)
	query.LogSlow(p)
	query.CaptureProfile(p, qlog.DigestFloats(score))
}

func (s *selector) write(ctx context.Context, sum *stepSummary) {
	sp := s.rt.root.Child(SpanWrite)
	defer sp.End()
	wsp := telemetry.SpanFromContext(ctx).Child(SpanWrite)
	wsp.SetAttrInt("step", int64(sum.step))
	wsp.SetAttrInt("bytes", sum.outBytes)
	defer wsp.End()
	ctx = telemetry.ContextWithSpan(ctx, wsp)
	s.written += sum.outBytes
	s.rt.wroteStep(sum.outBytes)
	if s.cfg.Store != nil {
		s.cfg.Store.Account(sum.outBytes)
	}
	if s.w != nil && s.err == nil {
		s.err = s.w.writeStep(ctx, sum)
		if s.err == nil && s.cfg.OnPublish != nil {
			s.cfg.OnPublish(sum.step)
		}
	}
}

func (r *Result) finishMemory(cfg Config, red *reducer) {
	window := cfg.Window
	if window < 1 {
		window = 10
	}
	stepBytes := int64(8*cfg.Sim.Elements()) * int64(len(cfg.Sim.Vars()))
	r.StepBytes = stepBytes
	r.PeakMemory = MemoryModel(cfg.Method, stepBytes, r.SummaryBytes, window)
}

// MemoryModel reproduces the paper's Figure 11 accounting. Full data holds
// the previous selected step, one in-flight (simulating) step, and `window`
// current steps — all raw. The reduced methods hold the in-flight raw step,
// the previous selected summary, and `window` current summaries.
func MemoryModel(m Method, stepBytes, summaryBytes int64, window int) int64 {
	switch m {
	case FullData:
		return stepBytes /* prev selected */ + stepBytes /* in-flight */ +
			int64(window)*stepBytes
	default:
		return stepBytes /* in-flight raw step being reduced */ +
			summaryBytes /* prev selected */ +
			int64(window)*summaryBytes
	}
}
