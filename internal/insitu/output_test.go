package insitu

import (
	"os"
	"path/filepath"
	"testing"

	"insitubits/internal/codec"
	"insitubits/internal/selection"
	"insitubits/internal/sim/heat3d"
	"insitubits/internal/store"
)

// TestPipelineCodecReachesDisk pins a codec in the config and checks the
// persisted index files carry it bin by bin.
func TestPipelineCodecReachesDisk(t *testing.T) {
	for _, id := range []codec.ID{codec.WAH, codec.BBC, codec.Dense} {
		dir := t.TempDir()
		h, err := heat3d.New(10, 10, 10)
		if err != nil {
			t.Fatal(err)
		}
		_, err = Run(Config{
			Sim: h, Steps: 8, Select: 2,
			Method: Bitmaps, Bins: 32, Codec: id,
			Metric:    selection.ConditionalEntropy,
			Cores:     2,
			OutputDir: dir,
		})
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		m, err := ReadManifest(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, mf := range m.Files {
			f, err := os.Open(filepath.Join(dir, mf.Path))
			if err != nil {
				t.Fatal(err)
			}
			x, err := store.ReadIndex(f)
			f.Close()
			if err != nil {
				t.Fatalf("%v: %s: %v", id, mf.Path, err)
			}
			for b := 0; b < x.Bins(); b++ {
				if got := x.Codec(b); got != id {
					t.Fatalf("%v: %s bin %d stored as %v", id, mf.Path, b, got)
				}
			}
		}
	}
}

func TestOutputDirPersistsSelectedBitmaps(t *testing.T) {
	dir := t.TempDir()
	h, err := heat3d.New(12, 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Sim: h, Steps: 16, Select: 4,
		Method: Bitmaps, Bins: 64,
		Metric:    selection.ConditionalEntropy,
		Cores:     2,
		OutputDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Workload != "heat3d" || m.Method != "bitmaps" || m.Steps != 16 {
		t.Fatalf("manifest header %+v", m)
	}
	if len(m.Selected) != len(res.Selected) {
		t.Fatalf("manifest selections %v vs %v", m.Selected, res.Selected)
	}
	for i := range m.Selected {
		if m.Selected[i] != res.Selected[i] {
			t.Fatalf("manifest selections %v vs %v", m.Selected, res.Selected)
		}
	}
	if len(m.Files) != len(res.Selected) { // one variable
		t.Fatalf("%d files for %d selections", len(m.Files), len(res.Selected))
	}
	// Every listed file exists, parses, and its size matches the manifest.
	for _, mf := range m.Files {
		path := filepath.Join(dir, mf.Path)
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() != mf.Bytes {
			t.Fatalf("%s: %d bytes on disk, manifest says %d", mf.Path, info.Size(), mf.Bytes)
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		x, err := store.ReadIndex(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", mf.Path, err)
		}
		if x.N() != h.Elements() {
			t.Fatalf("%s: covers %d elements", mf.Path, x.N())
		}
	}
}

func TestOutputDirFullDataAndSampling(t *testing.T) {
	for _, method := range []Method{FullData, Sampling} {
		dir := t.TempDir()
		h, err := heat3d.New(8, 8, 8)
		if err != nil {
			t.Fatal(err)
		}
		_, err = Run(Config{
			Sim: h, Steps: 8, Select: 2,
			Method: method, Bins: 32, SamplePct: 20, Seed: 1,
			Metric:    selection.EMDCount,
			Cores:     1,
			OutputDir: dir,
		})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		m, err := ReadManifest(dir)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		for _, mf := range m.Files {
			f, err := os.Open(filepath.Join(dir, mf.Path))
			if err != nil {
				t.Fatal(err)
			}
			data, err := store.ReadRaw(f)
			f.Close()
			if err != nil {
				t.Fatalf("%v %s: %v", method, mf.Path, err)
			}
			if len(data) == 0 {
				t.Fatalf("%v %s: empty array", method, mf.Path)
			}
			if method == Sampling && len(data) >= h.Elements() {
				t.Fatalf("sampling persisted %d of %d elements", len(data), h.Elements())
			}
		}
	}
}

func TestOutputDirMultiVariableNames(t *testing.T) {
	dir := t.TempDir()
	l := newTestLulesh(t)
	_, err := Run(Config{
		Sim: l, Steps: 6, Select: 2,
		Method: Bitmaps, Bins: 32,
		Metric:    selection.EMDCount,
		Cores:     1,
		OutputDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Vars) != 12 || len(m.Files) != 2*12 {
		t.Fatalf("%d vars, %d files", len(m.Vars), len(m.Files))
	}
	// Variable names with dots must be sanitized in file names.
	for _, mf := range m.Files {
		if filepath.Ext(mf.Path) != ".isbm" {
			t.Fatalf("unexpected extension in %s", mf.Path)
		}
		base := mf.Path[:len(mf.Path)-5]
		for _, r := range base {
			ok := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-' || r == '_'
			if !ok {
				t.Fatalf("unsanitized character %q in %s", r, mf.Path)
			}
		}
	}
}

func TestReadManifestValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadManifest(dir); err == nil {
		t.Error("missing manifest accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err == nil {
		t.Error("malformed manifest accepted")
	}
	// Inconsistent file count.
	if err := os.WriteFile(filepath.Join(dir, ManifestName),
		[]byte(`{"vars":["a"],"selected":[0,1],"files":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err == nil {
		t.Error("inconsistent manifest accepted")
	}
}

func TestOutputDirCreationFailure(t *testing.T) {
	// A path under an existing *file* cannot be created.
	base := t.TempDir()
	blocker := filepath.Join(base, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	h, err := heat3d.New(8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Config{
		Sim: h, Steps: 4, Select: 2,
		Method: Bitmaps, Bins: 16,
		Metric:    selection.EMDCount,
		Cores:     1,
		OutputDir: filepath.Join(blocker, "sub"),
	})
	if err == nil {
		t.Fatal("unusable output dir accepted")
	}
}
