package insitu

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"insitubits/internal/selection"
	"insitubits/internal/store"
)

// resumeState is the replay plan Resume derives from a run journal: which
// steps' scores are already decided, which committed steps' artifacts
// verified on disk, and which steps must be fully re-reduced because the
// continuation still needs their real summaries.
type resumeState struct {
	// frontier is the last step with a durable journal record; steps past
	// it are fresh work.
	frontier int
	// scores replays the journaled selection scores (exact: Go's float64
	// JSON representation round-trips bit-for-bit).
	scores map[int]float64
	// durable maps committed steps whose artifacts verified (length and
	// whole-file CRC32C) to their journal file records; the writer copies
	// their manifest entries instead of rewriting them.
	durable map[int][]JournalFile
	// needed marks steps the replay must re-reduce for real: the last
	// committed winner (future steps score against it), the open
	// interval's incumbent (it may yet be committed and written), and any
	// committed winner whose artifacts were damaged.
	needed map[int]bool
	// stubBytes carries the journaled output volume of durable steps into
	// their replay stubs so the resumed run's accounting stays honest.
	stubBytes map[int]int64
}

func (rs *resumeState) needsReduce(t int) bool {
	return t > rs.frontier || rs.needed[t]
}

func (rs *resumeState) stub(t int) *stepSummary {
	return &stepSummary{step: t, replay: true, outBytes: rs.stubBytes[t]}
}

// Resume continues a crashed or cancelled run from dir's journal. It
// quarantines whatever the crash left half-done (torn journal tail, stray
// staging files, damaged artifacts), re-simulates from step 0 — simulators
// are deterministic, but their state is not checkpointed — while skipping
// the reduction and scoring of every step the journal already decided, and
// finishes the run. The resulting directory is byte-identical to what an
// uninterrupted run would have produced (quarantine/ aside).
//
// cfg must describe the same run (Resume checks it against the journal's
// begin record); cfg.OutputDir is overridden with dir. A journal that says
// the run already completed returns its recorded selection without
// recomputing anything.
func Resume(dir string, cfg Config) (*Result, error) {
	cfg.OutputDir = dir
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	jpath := filepath.Join(dir, JournalName)
	data, err := os.ReadFile(jpath)
	if err != nil {
		return nil, fmt.Errorf("insitu: no resumable run in %s: %w", dir, err)
	}
	// Stray staging files are uncommitted by construction.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), store.TempSuffix) {
			if err := quarantineFile(dir, e.Name()); err != nil {
				return nil, err
			}
		}
	}
	recs, validLen, perr := ParseJournal(data)
	if perr != nil {
		// A journal whose very header is unreadable (a kill during the
		// first write leaves fewer than 8 bytes) holds nothing durable:
		// park it and start the run over.
		if err := quarantineBytes(dir, JournalName+".damaged", data); err != nil {
			return nil, err
		}
		return Run(cfg)
	}
	// A torn tail is the expected residue of a kill mid-append: park the
	// bytes in quarantine and truncate the journal to its valid prefix so
	// the continuation appends cleanly.
	if int64(len(data)) > validLen {
		if err := quarantineBytes(dir, JournalName+".tail", data[validLen:]); err != nil {
			return nil, err
		}
		if err := os.Truncate(jpath, validLen); err != nil {
			return nil, fmt.Errorf("insitu: truncating torn journal tail: %w", err)
		}
	}
	if len(recs) == 0 {
		// The crash predates even the begin record; nothing is durable, so
		// this is a fresh run (Run truncates the journal).
		return Run(cfg)
	}
	if err := recs[0].matchesConfig(cfg); err != nil {
		return nil, err
	}

	scores := map[int]float64{}
	selects := map[int]*JournalRecord{}
	frontier := -1
	var end *JournalRecord
	for i := range recs {
		rec := &recs[i]
		switch rec.Kind {
		case KindScore:
			scores[rec.Step] = rec.Score
		case KindSelect:
			selects[rec.Step] = rec // last record wins: a rewrite supersedes
		case KindEnd:
			end = rec
			continue
		default:
			continue
		}
		if rec.Step > frontier {
			frontier = rec.Step
		}
	}
	if end != nil {
		// The run completed; the end record guarantees the manifest was
		// durable when it was written, so only verify, never recompute.
		if _, err := ReadManifest(dir); err != nil {
			return nil, fmt.Errorf("insitu: journal records a completed run but the manifest does not verify (run fsck): %w", err)
		}
		return &Result{Selected: end.Selected}, nil
	}

	// Verify every committed step's artifacts by length and whole-file
	// CRC32C. Damage demotes the step to "needed": its files are
	// quarantined here and rewritten (with a superseding select record)
	// when the replay re-commits it.
	durable := map[int][]JournalFile{}
	needed := map[int]bool{}
	stubBytes := map[int]int64{}
	lastWinner := -1
	for step, rec := range selects {
		if step > lastWinner {
			lastWinner = step
		}
		total, bad := int64(0), false
		for _, jf := range rec.Files {
			total += jf.Bytes
			if verifyArtifact(dir, jf) != nil {
				bad = true
				if _, serr := os.Stat(filepath.Join(dir, jf.Path)); serr == nil {
					if qerr := quarantineFile(dir, jf.Path); qerr != nil {
						return nil, qerr
					}
				}
			}
		}
		if bad {
			needed[step] = true
		} else {
			durable[step] = rec.Files
			stubBytes[step] = total
		}
	}
	// Future steps score against the last committed winner, so its real
	// summary must exist even when its files are durable.
	if lastWinner >= 0 {
		needed[lastWinner] = true
	}
	// The open interval's incumbent (journal-exact argmax, same strict ">"
	// first-wins rule as the selector) may still be committed and written.
	part := cfg.Part
	if part == nil {
		part = selection.FixedLength{}
	}
	intervals := part.Partition(make([]float64, cfg.Steps), cfg.Select)
	committed := len(selects)
	if _, ok := selects[0]; ok {
		committed-- // step 0 is not an interval winner
	}
	if committed >= 0 && committed < len(intervals) {
		iv := intervals[committed]
		bestT, bestScore, found := 0, 0.0, false
		for t := iv[0]; t < iv[1] && t <= frontier; t++ {
			if sc, ok := scores[t]; ok && (!found || sc > bestScore) {
				bestT, bestScore, found = t, sc, true
			}
		}
		if found {
			needed[bestT] = true
		}
	}

	cfg.resume = &resumeState{
		frontier:  frontier,
		scores:    scores,
		durable:   durable,
		needed:    needed,
		stubBytes: stubBytes,
	}
	return Run(cfg)
}

// verifyArtifact checks one journaled artifact against the bytes on disk:
// exact length and whole-file CRC32C, no format parsing needed.
func verifyArtifact(dir string, jf JournalFile) error {
	data, err := os.ReadFile(filepath.Join(dir, jf.Path))
	if err != nil {
		return err
	}
	if int64(len(data)) < jf.Bytes {
		return fmt.Errorf("insitu: %s is %d bytes, journal records %d: %w",
			jf.Path, len(data), jf.Bytes, io.ErrUnexpectedEOF)
	}
	if int64(len(data)) > jf.Bytes {
		return fmt.Errorf("insitu: %s is %d bytes, journal records %d: %w",
			jf.Path, len(data), jf.Bytes, store.ErrChecksum)
	}
	if store.CRC32C(data) != jf.CRC {
		return fmt.Errorf("insitu: %s: %w", jf.Path, store.ErrChecksum)
	}
	return nil
}

// quarantineFile moves dir/name into dir/quarantine/, replacing any earlier
// quarantined file of the same name.
func quarantineFile(dir, name string) error {
	qdir := filepath.Join(dir, QuarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("insitu: quarantine dir: %w", err)
	}
	if err := os.Rename(filepath.Join(dir, name), filepath.Join(qdir, name)); err != nil {
		return fmt.Errorf("insitu: quarantining %s: %w", name, err)
	}
	return nil
}

// quarantineBytes writes raw bytes (a torn journal tail) into quarantine.
func quarantineBytes(dir, name string, data []byte) error {
	qdir := filepath.Join(dir, QuarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("insitu: quarantine dir: %w", err)
	}
	if err := os.WriteFile(filepath.Join(qdir, name), data, 0o644); err != nil {
		return fmt.Errorf("insitu: quarantining %s: %w", name, err)
	}
	return nil
}
