package insitu

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"insitubits/internal/iosim"
)

// completedRun executes the canonical crash-suite workload into a fresh
// directory and returns it.
func completedRun(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if _, err := Run(triConfig(dir)); err != nil {
		t.Fatal(err)
	}
	return dir
}

// artifactNames returns the run's data files (sorted order not needed).
func artifactNames(t *testing.T, dir string) []string {
	t.Helper()
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(m.Files))
	for _, f := range m.Files {
		names = append(names, f.Path)
	}
	return names
}

func TestFsckCleanDir(t *testing.T) {
	dir := completedRun(t)
	rep, err := Fsck(dir, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || !rep.Complete || !rep.HasJournal {
		t.Fatalf("clean completed run reported %+v", rep)
	}
	if rep.FilesChecked != 15 { // 5 selected steps x 3 variables
		t.Fatalf("checked %d files, want 15", rep.FilesChecked)
	}
}

// TestFsckDetectsCorruptionTable applies one mutation per case to a fresh
// completed run; fsck must flag every one with the right damage class.
func TestFsckDetectsCorruptionTable(t *testing.T) {
	cases := map[string]struct {
		mutate func(t *testing.T, dir string)
		class  string
	}{
		"flipped artifact byte": {func(t *testing.T, dir string) {
			name := artifactNames(t, dir)[0]
			flipByte(t, filepath.Join(dir, name), -10)
		}, DamageCorrupt},
		"truncated artifact": {func(t *testing.T, dir string) {
			name := artifactNames(t, dir)[1]
			path := filepath.Join(dir, name)
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, st.Size()-5); err != nil {
				t.Fatal(err)
			}
		}, DamageTruncated},
		"deleted artifact": {func(t *testing.T, dir string) {
			name := artifactNames(t, dir)[2]
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				t.Fatal(err)
			}
		}, DamageMissing},
		"torn journal tail": {func(t *testing.T, dir string) {
			f, err := os.OpenFile(filepath.Join(dir, JournalName), os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte{9, 0, 0, 0, 'x'}); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}, DamageTruncated},
		"flipped journal header": {func(t *testing.T, dir string) {
			flipByte(t, filepath.Join(dir, JournalName), 0)
		}, DamageCorrupt},
		"deleted manifest": {func(t *testing.T, dir string) {
			if err := os.Remove(filepath.Join(dir, ManifestName)); err != nil {
				t.Fatal(err)
			}
		}, DamageMissing},
		"stray staging file": {func(t *testing.T, dir string) {
			if err := os.WriteFile(filepath.Join(dir, "step0003_beta.isbm.tmp"), []byte("x"), 0o644); err != nil {
				t.Fatal(err)
			}
		}, DamageOrphan},
		"unreferenced file": {func(t *testing.T, dir string) {
			if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
				t.Fatal(err)
			}
		}, DamageOrphan},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			dir := completedRun(t)
			tc.mutate(t, dir)
			rep, err := Fsck(dir, FsckOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Clean() {
				t.Fatalf("mutation went undetected")
			}
			found := false
			for _, is := range rep.Issues {
				if is.Class == tc.class {
					found = true
				}
			}
			if !found {
				t.Fatalf("no %s issue in %+v", tc.class, rep.Issues)
			}
		})
	}
}

// flipByte XORs one byte of a file; negative offsets count from the end.
func flipByte(t *testing.T, path string, off int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off += len(data)
	}
	data[off] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFsckRepair corrupts one artifact of a completed run, repairs, and
// requires: report marked repaired, the damaged step quarantined whole (all
// three variables), manifest and journal rewritten consistent, and a second
// fsck pass coming back clean.
func TestFsckRepair(t *testing.T) {
	dir := completedRun(t)
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	victim := m.Files[0]
	flipByte(t, filepath.Join(dir, victim.Path), -10)

	rep, err := Fsck(dir, FsckOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Repaired {
		t.Fatalf("repair did not run: %+v", rep)
	}
	// The whole step moved to quarantine, not just the damaged file.
	for _, f := range m.Files {
		if f.Step != victim.Step {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, QuarantineDir, f.Path)); err != nil {
			t.Errorf("%s not quarantined: %v", f.Path, err)
		}
		if _, err := os.Stat(filepath.Join(dir, f.Path)); err == nil {
			t.Errorf("%s still present after repair", f.Path)
		}
	}
	m2, err := ReadManifest(dir)
	if err != nil {
		t.Fatalf("repaired manifest does not read: %v", err)
	}
	if len(m2.Selected) != len(m.Selected)-1 {
		t.Fatalf("repaired manifest keeps %d steps, want %d", len(m2.Selected), len(m.Selected)-1)
	}
	for _, s := range m2.Selected {
		if s == victim.Step {
			t.Fatalf("damaged step %d survived in the manifest", s)
		}
	}
	rep2, err := Fsck(dir, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Clean() || !rep2.Complete {
		t.Fatalf("fsck after repair not clean: %+v", rep2.Issues)
	}
}

// TestFsckRepairIncompleteLeavesResumable: repairing a crashed (incomplete)
// run quarantines damage but must not fabricate a manifest — the directory
// stays resumable, and Resume then finishes it.
func TestFsckRepairIncompleteLeavesResumable(t *testing.T) {
	base := completedRun(t)
	want := snapshot(t, base)

	dir := t.TempDir()
	cfg := triConfig(dir)
	cfg.FS = iosim.NewFaultFS(iosim.OS, &iosim.FaultPlan{CrashAtByte: 3000})
	if _, err := Run(cfg); err == nil {
		t.Fatal("crashed run reported success")
	}
	rep, err := Fsck(dir, FsckOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Complete {
		t.Fatal("crashed run reported complete")
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); err == nil {
		t.Fatal("repair fabricated a manifest for an incomplete run")
	}
	if _, err := Resume(dir, triConfig(dir)); err != nil {
		t.Fatal(err)
	}
	got := snapshot(t, dir)
	// Repair may have already quarantined what Resume would have; the final
	// visible directory must still match the uninterrupted run.
	sameSnapshot(t, "repair+resume", want, got)
}

// TestFsckPreJournalDir: a directory with only a manifest (written before
// journals existed) verifies by full parse and counts as complete; flipping
// an artifact byte is still caught.
func TestFsckPreJournalDir(t *testing.T) {
	dir := completedRun(t)
	if err := os.Remove(filepath.Join(dir, JournalName)); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(dir, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || !rep.Complete || rep.HasJournal {
		t.Fatalf("pre-journal dir reported %+v with issues %+v", rep, rep.Issues)
	}
	if rep.FilesChecked != 15 {
		t.Fatalf("checked %d files, want 15", rep.FilesChecked)
	}
	name := artifactNames(t, dir)[0]
	if strings.HasSuffix(name, ".isbm") {
		flipByte(t, filepath.Join(dir, name), 30) // inside the edges region
	} else {
		flipByte(t, filepath.Join(dir, name), 20)
	}
	rep2, err := Fsck(dir, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Clean() {
		t.Fatal("pre-journal corruption went undetected")
	}
}
