package insitu

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"insitubits/internal/selection"
	"insitubits/internal/store"
)

// Manifest records what a pipeline run persisted, one entry per selected
// time-step, written as manifest.json next to the data files so offline
// tools can find and validate everything.
type Manifest struct {
	Workload string         `json:"workload"`
	Method   string         `json:"method"`
	Vars     []string       `json:"vars"`
	Steps    int            `json:"steps"`
	Selected []int          `json:"selected"`
	Files    []ManifestFile `json:"files"`
}

// ManifestFile describes one persisted artifact.
type ManifestFile struct {
	Step  int    `json:"step"`
	Var   string `json:"var"`
	Path  string `json:"path"`
	Bytes int64  `json:"bytes"`
}

// ManifestName is the manifest's file name inside the output directory.
const ManifestName = "manifest.json"

// writer persists selected summaries when Config.OutputDir is set.
type writer struct {
	dir      string
	vars     []string
	manifest Manifest
}

func newWriter(cfg Config) (*writer, error) {
	if cfg.OutputDir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(cfg.OutputDir, 0o755); err != nil {
		return nil, fmt.Errorf("insitu: output dir: %w", err)
	}
	return &writer{
		dir:  cfg.OutputDir,
		vars: cfg.Sim.Vars(),
		manifest: Manifest{
			Workload: cfg.Sim.Name(),
			Method:   cfg.Method.String(),
			Vars:     cfg.Sim.Vars(),
			Steps:    cfg.Steps,
		},
	}, nil
}

// writeStep persists one selected step's per-variable summaries.
func (w *writer) writeStep(sum *stepSummary) error {
	w.manifest.Selected = append(w.manifest.Selected, sum.step)
	for k, part := range sum.parts {
		name := fmt.Sprintf("step%04d_%s", sum.step, sanitize(w.vars[k]))
		var path string
		var n int64
		var err error
		switch p := part.(type) {
		case *selection.BitmapSummary:
			path = filepath.Join(w.dir, name+".isbm")
			n, err = writeFile(path, func(f *os.File) (int64, error) {
				return store.WriteIndex(f, p.X)
			})
		case *selection.DataSummary:
			path = filepath.Join(w.dir, name+".israw")
			n, err = writeFile(path, func(f *os.File) (int64, error) {
				return store.WriteRaw(f, p.Data)
			})
		default:
			return fmt.Errorf("insitu: cannot persist summary type %T", part)
		}
		if err != nil {
			return err
		}
		w.manifest.Files = append(w.manifest.Files, ManifestFile{
			Step: sum.step, Var: w.vars[k], Path: filepath.Base(path), Bytes: n,
		})
	}
	return nil
}

func writeFile(path string, write func(*os.File) (int64, error)) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	n, err := write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return n, err
}

// finish writes the manifest.
func (w *writer) finish() error {
	data, err := json.MarshalIndent(&w.manifest, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(w.dir, ManifestName), data, 0o644)
}

// sanitize maps a variable name to a file-name-safe token.
func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// ReadManifest loads and validates a manifest from an output directory.
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("insitu: parsing manifest: %w", err)
	}
	if len(m.Selected)*max(1, len(m.Vars)) != len(m.Files) {
		return nil, fmt.Errorf("insitu: manifest lists %d files for %d selections x %d vars",
			len(m.Files), len(m.Selected), len(m.Vars))
	}
	return &m, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
