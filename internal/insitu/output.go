package insitu

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"insitubits/internal/iosim"
	"insitubits/internal/selection"
	"insitubits/internal/store"
	"insitubits/internal/telemetry"
)

// Manifest records what a pipeline run persisted, one entry per selected
// time-step, written as manifest.json next to the data files so offline
// tools can find and validate everything.
type Manifest struct {
	Workload string         `json:"workload"`
	Method   string         `json:"method"`
	Vars     []string       `json:"vars"`
	Steps    int            `json:"steps"`
	Selected []int          `json:"selected"`
	Files    []ManifestFile `json:"files"`
}

// ManifestFile describes one persisted artifact.
type ManifestFile struct {
	Step  int    `json:"step"`
	Var   string `json:"var"`
	Path  string `json:"path"`
	Bytes int64  `json:"bytes"`
}

// ManifestName is the manifest's file name inside the output directory.
const ManifestName = "manifest.json"

// QuarantineDir is the subdirectory Resume and fsck move damaged or stray
// files into — nothing is silently deleted, and nothing quarantined is ever
// read back.
const QuarantineDir = "quarantine"

// writer persists selected summaries when Config.OutputDir is set. Every
// artifact goes through store.AtomicWrite (never torn on disk), transient
// store errors are retried with backoff, and each committed step is sealed
// with a fsync'd journal record before the run moves on — the contract
// Resume and fsck build on.
type writer struct {
	dir      string
	vars     []string
	manifest Manifest
	fs       iosim.FS
	jnl      *journal
	ctx      context.Context
	retry    iosim.Backoff
	resume   *resumeState
	rt       *runTelemetry
}

func newWriter(cfg Config, rt *runTelemetry) (*writer, error) {
	if cfg.OutputDir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(cfg.OutputDir, 0o755); err != nil {
		return nil, fmt.Errorf("insitu: output dir: %w", err)
	}
	w := &writer{
		dir:    cfg.OutputDir,
		vars:   cfg.Sim.Vars(),
		fs:     cfg.fsys(),
		ctx:    cfg.context(),
		retry:  cfg.Retry,
		resume: cfg.resume,
		rt:     rt,
		manifest: Manifest{
			Workload: cfg.Sim.Name(),
			Method:   cfg.Method.String(),
			Vars:     cfg.Sim.Vars(),
			Steps:    cfg.Steps,
		},
	}
	// Retries surface in telemetry on top of whatever hook the caller set.
	userHook := w.retry.OnRetry
	w.retry.OnRetry = func(attempt int, err error) {
		rt.storeRetries.Inc()
		if userHook != nil {
			userHook(attempt, err)
		}
	}
	var err error
	if cfg.resume != nil {
		// The journal already opens with this run's begin record; the torn
		// tail (if any) was truncated before Run restarted.
		w.jnl, err = openJournalAppend(w.fs, w.dir, w.ctx, w.retry)
	} else {
		w.jnl, err = createJournal(w.fs, w.dir, w.ctx, w.retry)
		if err == nil {
			err = w.jnl.append(beginRecord(cfg))
		}
	}
	if err != nil {
		w.close()
		return nil, err
	}
	rt.setJournal("active")
	return w, nil
}

// writeStep persists one selected step's per-variable summaries, then seals
// the step with a journal select record. Steps the resume state already
// verified as durable are not rewritten — their manifest entries are copied
// from the journal. When ctx carries an identity-trace span, each artifact
// write records a store.* child span and the select record is stamped with
// the step's trace ID.
func (w *writer) writeStep(ctx context.Context, sum *stepSummary) error {
	w.manifest.Selected = append(w.manifest.Selected, sum.step)
	if w.resume != nil {
		if files, ok := w.resume.durable[sum.step]; ok {
			for _, jf := range files {
				w.manifest.Files = append(w.manifest.Files, ManifestFile{
					Step: sum.step, Var: jf.Var, Path: jf.Path, Bytes: jf.Bytes,
				})
			}
			return nil
		}
	}
	rec := &JournalRecord{Kind: KindSelect, Step: sum.step, TraceID: telemetry.TraceIDOf(ctx)}
	for k, part := range sum.parts {
		name := fmt.Sprintf("step%04d_%s", sum.step, sanitize(w.vars[k]))
		var path string
		var body func(io.Writer) (int64, error)
		switch p := part.(type) {
		case *selection.BitmapSummary:
			path = filepath.Join(w.dir, name+".isbm")
			body = func(f io.Writer) (int64, error) { return store.WriteIndexCtx(ctx, f, p.X) }
		case *selection.DataSummary:
			path = filepath.Join(w.dir, name+".israw")
			body = func(f io.Writer) (int64, error) { return store.WriteRawCtx(ctx, f, p.Data) }
		default:
			return fmt.Errorf("insitu: cannot persist summary type %T", part)
		}
		n, crc, err := w.atomicWrite(path, body)
		if err != nil {
			return err
		}
		w.manifest.Files = append(w.manifest.Files, ManifestFile{
			Step: sum.step, Var: w.vars[k], Path: filepath.Base(path), Bytes: n,
		})
		rec.Files = append(rec.Files, JournalFile{
			Var: w.vars[k], Path: filepath.Base(path), Bytes: n, CRC: crc,
		})
	}
	return w.jnl.append(rec)
}

// atomicWrite stages one artifact through store.AtomicWrite, retrying
// transient store errors with the configured backoff. A crash error is not
// transient, so an injected kill aborts immediately.
func (w *writer) atomicWrite(path string, body func(io.Writer) (int64, error)) (n int64, crc uint32, err error) {
	err = iosim.Retry(w.ctx, w.retry, func() error {
		var werr error
		n, crc, werr = store.AtomicWrite(w.fs, path, body)
		return werr
	})
	return n, crc, err
}

// recordScore journals one step's selection score. Nil-safe: runs without
// an output directory keep no journal. The score is durable before the
// interval logic can act on it, so a resumed run replays the selection
// exactly instead of recomputing it. traceID (empty when tracing is off)
// links the record to the step's identity trace.
func (w *writer) recordScore(t int, score float64, traceID string) error {
	if w == nil {
		return nil
	}
	return w.jnl.append(&JournalRecord{Kind: KindScore, Step: t, Score: score, TraceID: traceID})
}

// finish commits the manifest atomically, then seals the run with the
// journal's end record — in that order, so an end record on disk implies a
// durable manifest.
func (w *writer) finish() error {
	data, err := json.MarshalIndent(&w.manifest, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(w.dir, ManifestName)
	if err := iosim.Retry(w.ctx, w.retry, func() error {
		_, werr := store.AtomicWriteBytes(w.fs, path, data)
		return werr
	}); err != nil {
		return err
	}
	if err := w.jnl.append(&JournalRecord{Kind: KindEnd, Selected: w.manifest.Selected}); err != nil {
		return err
	}
	if err := w.jnl.close(); err != nil {
		return err
	}
	w.rt.setJournal("sealed")
	return nil
}

// close releases the journal handle without sealing the run (error paths).
func (w *writer) close() {
	if w == nil {
		return
	}
	w.jnl.close()
	w.jnl = nil
}

// sanitize maps a variable name to a file-name-safe token.
func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// ReadManifest loads and validates a manifest from an output directory.
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("insitu: parsing manifest: %w", err)
	}
	if len(m.Selected)*max(1, len(m.Vars)) != len(m.Files) {
		return nil, fmt.Errorf("insitu: manifest lists %d files for %d selections x %d vars",
			len(m.Files), len(m.Selected), len(m.Vars))
	}
	return &m, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
