package insitu

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"insitubits/internal/iosim"
	"insitubits/internal/sim"
)

// triSim is a tiny deterministic 3-variable workload for the crash suite:
// every field is a pure function of the step counter, so two independent
// instances replay identical runs — the property Resume's re-simulation
// relies on.
type triSim struct {
	t int
	n int
}

func (s *triSim) Name() string         { return "tri" }
func (s *triSim) Vars() []string       { return []string{"alpha", "beta", "gamma"} }
func (s *triSim) Elements() int        { return s.n }
func (s *triSim) Ranges() [][2]float64 { return [][2]float64{{-0.1, 1.1}, {-0.1, 1.1}, {-0.1, 1.1}} }
func (s *triSim) Step(int) []sim.Field {
	t := s.t
	s.t++
	mk := func(phase float64) []float64 {
		d := make([]float64, s.n)
		for i := range d {
			d[i] = 0.5 + 0.5*math.Sin(phase+float64(t)*0.37+float64(i)*0.05)
		}
		return d
	}
	return []sim.Field{
		{Name: "alpha", Data: mk(0)},
		{Name: "beta", Data: mk(1.3)},
		{Name: "gamma", Data: mk(2.6)},
	}
}

// triConfig builds the canonical crash-suite run: 3 variables, 20 steps,
// keep 5, bitmaps with adaptive codecs.
func triConfig(dir string) Config {
	return Config{
		Sim:       &triSim{n: 60},
		Steps:     20,
		Select:    5,
		Method:    Bitmaps,
		Bins:      4,
		Cores:     2,
		OutputDir: dir,
	}
}

// snapshot reads every regular file in dir (quarantine/ excluded — it is
// the designated difference between a crashed-and-resumed directory and a
// clean one).
func snapshot(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

func sameSnapshot(t *testing.T, label string, want, got map[string][]byte) {
	t.Helper()
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: %s missing after resume", label, name)
			continue
		}
		if !bytes.Equal(w, g) {
			t.Errorf("%s: %s differs after resume (%d vs %d bytes)", label, name, len(w), len(g))
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("%s: unexpected extra file %s after resume", label, name)
		}
	}
}

// TestCrashMatrixResume is the crash-point suite: record the run's write
// boundaries, kill a fresh run at every boundary (and mid-write between
// boundaries, tearing frames and files), resume it, and require the
// directory to come back byte-identical to an uninterrupted run — then pass
// fsck clean. This is the PR's core acceptance criterion.
func TestCrashMatrixResume(t *testing.T) {
	baseDir := t.TempDir()
	if _, err := Run(triConfig(baseDir)); err != nil {
		t.Fatal(err)
	}
	want := snapshot(t, baseDir)
	if _, ok := want[JournalName]; !ok {
		t.Fatal("baseline run wrote no journal")
	}

	// Recording pass: same run through a fault-free plan yields the kill
	// schedule.
	recPlan := &iosim.FaultPlan{}
	recCfg := triConfig(t.TempDir())
	recCfg.FS = iosim.NewFaultFS(iosim.OS, recPlan)
	if _, err := Run(recCfg); err != nil {
		t.Fatal(err)
	}
	// Expected schedule: 27 journal writes (header + begin + 19 scores +
	// 5 selects + end) and 16 atomic artifact writes (5 steps x 3 vars +
	// manifest) = 43 boundaries.
	bounds := recPlan.WriteBoundaries()
	if len(bounds) < 40 {
		t.Fatalf("recorded only %d write boundaries; the schedule looks wrong", len(bounds))
	}

	// Kill offsets: every boundary (the next write dies with nothing
	// landed) plus every midpoint (a write torn halfway).
	var kills []int64
	prev := int64(0)
	for _, b := range bounds {
		if mid := (prev + b) / 2; mid > prev && mid < b {
			kills = append(kills, mid)
		}
		kills = append(kills, b)
		prev = b
	}
	if testing.Short() {
		thinned := kills[:0]
		for i, k := range kills {
			if i%17 == 0 {
				thinned = append(thinned, k)
			}
		}
		kills = thinned
	}
	total := bounds[len(bounds)-1]

	for _, kill := range kills {
		dir := t.TempDir()
		plan := &iosim.FaultPlan{CrashAtByte: kill}
		cfg := triConfig(dir)
		cfg.FS = iosim.NewFaultFS(iosim.OS, plan)
		_, err := Run(cfg)
		if kill >= total {
			// The kill offset is past the run's last write: no crash.
			if err != nil {
				t.Fatalf("kill@%d: run failed past its final write: %v", kill, err)
			}
		} else if err == nil {
			t.Fatalf("kill@%d: run survived its own crash", kill)
		} else {
			if _, rerr := Resume(dir, triConfig(dir)); rerr != nil {
				t.Fatalf("kill@%d: resume failed: %v", kill, rerr)
			}
		}
		sameSnapshot(t, f("kill@%d", kill), want, snapshot(t, dir))
		rep, err := Fsck(dir, FsckOptions{})
		if err != nil {
			t.Fatalf("kill@%d: fsck errored: %v", kill, err)
		}
		if !rep.Clean() || !rep.Complete {
			t.Fatalf("kill@%d: fsck after resume not clean: %+v", kill, rep.Issues)
		}
	}
}

// f is a tiny fmt.Sprintf alias to keep the matrix loop readable.
func f(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

// TestResumeAfterCancel cancels a run mid-flight via its context, then
// resumes it to completion.
func TestResumeAfterCancel(t *testing.T) {
	baseDir := t.TempDir()
	if _, err := Run(triConfig(baseDir)); err != nil {
		t.Fatal(err)
	}
	want := snapshot(t, baseDir)

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first step: maximal rewind
	cfg := triConfig(dir)
	cfg.Ctx = ctx
	if _, err := Run(cfg); err == nil {
		t.Fatal("cancelled run reported success")
	}
	if _, err := Resume(dir, triConfig(dir)); err != nil {
		t.Fatal(err)
	}
	sameSnapshot(t, "cancel", want, snapshot(t, dir))
}

// TestResumeCompletedRun re-resumes a finished directory: the journal's end
// record short-circuits any recomputation.
func TestResumeCompletedRun(t *testing.T) {
	dir := t.TempDir()
	res, err := Run(triConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Resume(dir, triConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Selected) != len(res.Selected) {
		t.Fatalf("resumed selection %v, original %v", res2.Selected, res.Selected)
	}
	for i := range res.Selected {
		if res.Selected[i] != res2.Selected[i] {
			t.Fatalf("resumed selection %v, original %v", res2.Selected, res.Selected)
		}
	}
}

// TestResumeRejectsMismatchedConfig guards against splicing two different
// runs into one directory.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	dir := t.TempDir()
	cfg := triConfig(dir)
	cfg.Steps, cfg.Select = 10, 3
	ctx, cancel := context.WithCancel(context.Background())
	cfg.Ctx = ctx
	cancel()
	if _, err := Run(cfg); err == nil {
		t.Fatal("cancelled run reported success")
	}
	other := triConfig(dir)
	other.Steps, other.Select = 12, 3
	if _, err := Resume(dir, other); err == nil {
		t.Fatal("resume accepted a mismatched config")
	}
}

// TestTransientFaultsRetried proves the retry path absorbs injected
// transient store errors: the run succeeds and its output is identical to
// a fault-free run.
func TestTransientFaultsRetried(t *testing.T) {
	baseDir := t.TempDir()
	if _, err := Run(triConfig(baseDir)); err != nil {
		t.Fatal(err)
	}
	want := snapshot(t, baseDir)

	dir := t.TempDir()
	plan := &iosim.FaultPlan{TransientErrs: 3}
	cfg := triConfig(dir)
	cfg.FS = iosim.NewFaultFS(iosim.OS, plan)
	if _, err := Run(cfg); err != nil {
		t.Fatalf("transient faults were not retried: %v", err)
	}
	sameSnapshot(t, "transient", want, snapshot(t, dir))
}

// TestWorkerPanicBecomesError: a panicking reduction worker must surface as
// an error from Run, not kill the process — and the directory must then be
// resumable.
func TestWorkerPanicBecomesError(t *testing.T) {
	dir := t.TempDir()
	cfg := triConfig(dir)
	cfg.Sim = &panicSim{triSim: triSim{n: 60}, panicAt: 7}
	if _, err := Run(cfg); err == nil {
		t.Fatal("panicking simulator did not fail the run")
	}
	// The journal survived the panic; a healthy simulator resumes the run.
	if _, err := Resume(dir, triConfig(dir)); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(dir, FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || !rep.Complete {
		t.Fatalf("fsck after panic+resume: %+v", rep.Issues)
	}
}

// panicSim panics inside a ParallelFor worker on one step.
type panicSim struct {
	triSim
	panicAt int
}

func (s *panicSim) Step(nWorkers int) []sim.Field {
	if s.t == s.panicAt {
		sim.ParallelFor(4, 2, func(lo, hi int) {
			panic("injected worker panic")
		})
	}
	return s.triSim.Step(nWorkers)
}
