package insitu

import (
	"context"
	"fmt"
	"time"

	"insitubits/internal/sim"
	"insitubits/internal/telemetry"
)

// Strategy is a core-allocation policy for running the pipeline (§2.3).
type Strategy interface {
	run(cfg Config, red *reducer, sel *selector) (*Result, error)
	// Describe names the strategy for experiment output (e.g. "c_all",
	// "c12_c16").
	Describe() string
}

// runStep advances the simulator one step with panic capture: a panicking
// simulator worker becomes an error (and a telemetry count), not a dead
// process with a half-written output directory.
func runStep(cfg Config, rt *runTelemetry, t, workers int) (fields []sim.Field, err error) {
	defer func() {
		if r := recover(); r != nil {
			rt.workerPanics.Inc()
			err = fmt.Errorf("insitu: simulator panic at step %d: %v", t, r)
		}
	}()
	return cfg.Sim.Step(workers), nil
}

// runReduce summarizes one step with the same panic capture. On a resumed
// run, steps whose outcome the journal already fixes are not re-reduced —
// a cheap replay stub carries the step number through the selector, which
// scores it from the journal.
func runReduce(cfg Config, red *reducer, rt *runTelemetry, fields []sim.Field, workers, t int) (sum *stepSummary, err error) {
	if rs := cfg.resume; rs != nil && !rs.needsReduce(t) {
		return rs.stub(t), nil
	}
	defer func() {
		if r := recover(); r != nil {
			rt.workerPanics.Inc()
			err = fmt.Errorf("insitu: reduction panic at step %d: %v", t, r)
		}
	}()
	return red.reduce(fields, workers)
}

// SharedCores assigns all cores to simulation, then all cores to reduction,
// alternating per time-step — the paper's first strategy.
type SharedCores struct{}

// Describe implements Strategy.
func (SharedCores) Describe() string { return "c_all" }

func (SharedCores) run(cfg Config, red *reducer, sel *selector) (*Result, error) {
	res := &Result{}
	rt := sel.rt
	ctx := cfg.context()
	wallStart := time.Now()
	for t := 0; t < cfg.Steps; t++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("insitu: run cancelled at step %d: %w", t, err)
		}
		// Identity trace: one trace per step when a recorder is installed
		// (no-op context otherwise), with simulate/reduce/select/write
		// child spans mirroring the aggregate phase tree.
		stepCtx, st := telemetry.StartSpan(ctx, SpanStep)
		st.SetAttrInt("step", int64(t))
		sp := rt.root.Child(SpanSimulate)
		ssp := st.Child(SpanSimulate)
		unlabel := rt.enterPhase(stepCtx, SpanSimulate)
		fields, err := runStep(cfg, rt, t, cfg.Cores)
		unlabel()
		ssp.End()
		sp.End()
		if err != nil {
			st.End()
			return nil, err
		}
		sp = rt.root.Child(SpanReduce)
		rsp := st.Child(SpanReduce)
		unlabel = rt.enterPhase(stepCtx, SpanReduce)
		summary, err := runReduce(cfg, red, rt, fields, cfg.Cores, t)
		unlabel()
		rsp.End()
		sp.End()
		if err != nil {
			st.End()
			return nil, err
		}
		unlabel = rt.enterPhase(stepCtx, SpanSelect)
		sel.offer(stepCtx, t, summary)
		unlabel()
		st.End()
		if sel.err != nil {
			// Persistence failed; later steps could compute but never land.
			return nil, sel.err
		}
	}
	res.Wall = time.Since(wallStart)
	finishResult(cfg, sel, res)
	return res, nil
}

// SeparateCores splits the cores into a simulation set and a reduction set
// connected by a bounded time-step queue — the paper's second strategy. The
// queue blocks the producer when full (memory capacity) and the consumer
// when empty, exactly as described in §2.3.
type SeparateCores struct {
	SimCores    int
	ReduceCores int
	// QueueCap bounds the in-memory step queue; 0 means 2.
	QueueCap int
}

// Describe implements Strategy.
func (s SeparateCores) Describe() string {
	return fmt.Sprintf("c%d_c%d", s.SimCores, s.ReduceCores)
}

func (s SeparateCores) run(cfg Config, red *reducer, sel *selector) (*Result, error) {
	if s.SimCores < 1 || s.ReduceCores < 1 {
		return nil, fmt.Errorf("insitu: separate-cores split %d/%d invalid", s.SimCores, s.ReduceCores)
	}
	if s.SimCores+s.ReduceCores > cfg.Cores {
		return nil, fmt.Errorf("insitu: split %d+%d exceeds %d cores", s.SimCores, s.ReduceCores, cfg.Cores)
	}
	qcap := s.QueueCap
	if qcap <= 0 && cfg.MemoryBudgetBytes > 0 {
		stepBytes := int64(8*cfg.Sim.Elements()) * int64(len(cfg.Sim.Vars()))
		qcap = QueueCapForMemory(cfg.MemoryBudgetBytes, stepBytes)
	}
	if qcap <= 0 {
		qcap = 2
	}
	type queued struct {
		step   int
		fields []sim.Field
		err    error
		// ctx/span carry the step's identity trace from the producer to the
		// consumer; both are no-ops when no trace recorder is installed.
		ctx  context.Context
		span *telemetry.ActiveSpan
	}
	rt := sel.rt
	ctx := cfg.context()
	queue := make(chan queued, qcap)
	simDone := make(chan struct{})

	// Producer: the simulation owns its core set. Simulate spans end on
	// this goroutine; the tracer aggregates them with the consumer's spans.
	// The queue gauge counts a step as queued from the moment it is
	// produced, so a producer blocked on a full queue reads as
	// depth == cap+1 — the backpressure signal. A simulator panic travels
	// through the queue as an error; cancellation unblocks a full-queue
	// send so the producer can exit.
	go func() {
		defer close(simDone)
		defer close(queue)
		for t := 0; t < cfg.Steps; t++ {
			if ctx.Err() != nil {
				return
			}
			stepCtx, st := telemetry.StartSpan(ctx, SpanStep)
			st.SetAttrInt("step", int64(t))
			sp := rt.root.Child(SpanSimulate)
			ssp := st.Child(SpanSimulate)
			unlabel := rt.enterPhase(stepCtx, SpanSimulate)
			fields, err := runStep(cfg, rt, t, s.SimCores)
			unlabel()
			ssp.End()
			sp.End()
			rt.enqueued()
			select {
			case queue <- queued{step: t, fields: fields, err: err, ctx: stepCtx, span: st}:
			case <-ctx.Done():
				rt.dequeued()
				st.End()
				return
			}
			if err != nil {
				return
			}
		}
	}()

	// Consumer: reduction + streaming selection own the other set. A single
	// consumer preserves step order (selection is order-dependent); the
	// parallelism is inside the per-step reduction.
	drain := func() {
		for q := range queue {
			rt.dequeued()
			q.span.End()
		}
		<-simDone
	}
	res := &Result{}
	wallStart := time.Now()
	for q := range queue {
		rt.dequeued()
		if q.err != nil {
			q.span.End()
			drain()
			return nil, q.err
		}
		sp := rt.root.Child(SpanReduce)
		rsp := q.span.Child(SpanReduce)
		unlabel := rt.enterPhase(q.ctx, SpanReduce)
		summary, err := runReduce(cfg, red, rt, q.fields, s.ReduceCores, q.step)
		unlabel()
		rsp.End()
		sp.End()
		if err != nil {
			// Drain so the producer can finish; first error wins.
			q.span.End()
			drain()
			return nil, err
		}
		unlabel = rt.enterPhase(q.ctx, SpanSelect)
		sel.offer(q.ctx, q.step, summary)
		unlabel()
		q.span.End()
		if sel.err != nil {
			drain()
			return nil, sel.err
		}
	}
	<-simDone
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("insitu: run cancelled: %w", err)
	}
	res.Wall = time.Since(wallStart)
	finishResult(cfg, sel, res)
	return res, nil
}

// finishResult assembles the run report: selection outcome, I/O volume,
// and the phase breakdown regenerated from the run's telemetry spans.
func finishResult(cfg Config, sel *selector, res *Result) {
	res.Selected = sel.selected
	res.BytesWritten = sel.written
	if sel.nSeen > 0 {
		res.SummaryBytes = sel.sumBytes / int64(sel.nSeen)
	}
	if cfg.Store != nil {
		res.Breakdown.Output = cfg.Store.ModeledTime()
	}
	sel.rt.finish(res)
}

// QueueCapForMemory derives the separate-cores queue capacity from a
// memory budget, implementing the paper's "the queue size is limited by the
// memory capacity": the queue holds raw time-steps of stepBytes each, and
// at least one slot is always granted so the pipeline can make progress.
func QueueCapForMemory(budgetBytes, stepBytes int64) int {
	if stepBytes <= 0 {
		return 1
	}
	cap := int(budgetBytes / stepBytes)
	if cap < 1 {
		cap = 1
	}
	return cap
}

// Calibrate implements the paper's Equations 1 and 2: run a few steps with
// all cores, measure average simulation and reduction time, and split the
// cores proportionally. The returned strategy always grants each side at
// least one core. The calibration steps advance the simulator, mirroring
// the paper's "initial set of cores" warm-up.
func Calibrate(cfg Config, calibSteps int) (SeparateCores, error) {
	if calibSteps < 1 {
		calibSteps = 2
	}
	red, err := newReducer(cfg)
	if err != nil {
		return SeparateCores{}, err
	}
	var simTime, redTime time.Duration
	for t := 0; t < calibSteps; t++ {
		t0 := time.Now()
		fields := cfg.Sim.Step(cfg.Cores)
		t1 := time.Now()
		if _, err := red.reduce(fields, cfg.Cores); err != nil {
			return SeparateCores{}, err
		}
		simTime += t1.Sub(t0)
		redTime += time.Since(t1)
	}
	total := simTime + redTime
	simCores := int(float64(cfg.Cores) * float64(simTime) / float64(total)) // Equation 1
	if simCores < 1 {
		simCores = 1
	}
	if simCores >= cfg.Cores {
		simCores = cfg.Cores - 1
	}
	return SeparateCores{SimCores: simCores, ReduceCores: cfg.Cores - simCores}, nil // Equation 2
}
