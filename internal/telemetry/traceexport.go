package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Trace exporters. Two stdlib-only wire formats:
//
//   - Chrome trace-event JSON ("X" complete events, microsecond
//     timestamps), loadable in Perfetto or chrome://tracing for a visual
//     flame view of one trace.
//   - OTLP-shaped JSON (the proto3 JSON mapping of an OTLP
//     ExportTraceServiceRequest), one object per trace, suitable for
//     newline-delimited log shipping into an OTLP-speaking collector.
//
// Both are produced from the immutable *Trace snapshot, so they need no
// locks and are safe on a trace fetched from the ring.

// chromeEvent is one entry in the Chrome trace-event "traceEvents" array.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`            // microseconds
	Dur  float64           `json:"dur,omitempty"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders the trace as Chrome trace-event JSON. Timestamps are
// microseconds relative to the trace start, so the view opens at zero.
func (t *Trace) ChromeTrace() ([]byte, error) {
	if t == nil {
		return nil, fmt.Errorf("telemetry: ChromeTrace on nil trace")
	}
	doc := chromeDoc{
		TraceEvents:     make([]chromeEvent, 0, len(t.Spans)+1),
		DisplayTimeUnit: "ms",
	}
	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "process_name",
		Ph:   "M",
		Pid:  1,
		Tid:  1,
		Args: map[string]string{"name": "insitubits trace " + t.TraceID},
	})
	for _, sp := range t.Spans {
		args := map[string]string{
			"trace_id": t.TraceID,
			"span_id":  sp.SpanID,
		}
		if sp.ParentID != "" {
			args["parent_id"] = sp.ParentID
		}
		for k, v := range sp.Attrs {
			args[k] = v
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: sp.Name,
			Cat:  "insitubits",
			Ph:   "X",
			Ts:   float64(sp.StartNs-t.StartNs) / 1e3,
			Dur:  float64(sp.DurNs) / 1e3,
			Pid:  1,
			Tid:  1,
			Args: args,
		})
	}
	return json.Marshal(doc)
}

// OTLP-shaped JSON: the proto3 JSON field names and scalar encodings of
// opentelemetry.proto.collector.trace.v1.ExportTraceServiceRequest —
// fixed64 nanosecond timestamps are decimal strings, span kind 1 is
// SPAN_KIND_INTERNAL.
type otlpDoc struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpKeyValue `json:"attributes"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpSpan struct {
	TraceID           string         `json:"traceId"`
	SpanID            string         `json:"spanId"`
	ParentSpanID      string         `json:"parentSpanId,omitempty"`
	Name              string         `json:"name"`
	Kind              int            `json:"kind"`
	StartTimeUnixNano string         `json:"startTimeUnixNano"`
	EndTimeUnixNano   string         `json:"endTimeUnixNano"`
	Attributes        []otlpKeyValue `json:"attributes,omitempty"`
}

type otlpKeyValue struct {
	Key   string       `json:"key"`
	Value otlpAnyValue `json:"value"`
}

type otlpAnyValue struct {
	StringValue string `json:"stringValue"`
}

// OTLPJSON renders the trace as one OTLP-shaped JSON object (no trailing
// newline), ready for JSONL shipping.
func (t *Trace) OTLPJSON() ([]byte, error) {
	if t == nil {
		return nil, fmt.Errorf("telemetry: OTLPJSON on nil trace")
	}
	spans := make([]otlpSpan, 0, len(t.Spans))
	for _, sp := range t.Spans {
		o := otlpSpan{
			TraceID:           t.TraceID,
			SpanID:            sp.SpanID,
			ParentSpanID:      sp.ParentID,
			Name:              sp.Name,
			Kind:              1, // SPAN_KIND_INTERNAL
			StartTimeUnixNano: fmt.Sprintf("%d", sp.StartNs),
			EndTimeUnixNano:   fmt.Sprintf("%d", sp.StartNs+sp.DurNs),
		}
		if len(sp.Attrs) > 0 {
			keys := make([]string, 0, len(sp.Attrs))
			for k := range sp.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				o.Attributes = append(o.Attributes, otlpKeyValue{
					Key:   k,
					Value: otlpAnyValue{StringValue: sp.Attrs[k]},
				})
			}
		}
		spans = append(spans, o)
	}
	doc := otlpDoc{ResourceSpans: []otlpResourceSpans{{
		Resource: otlpResource{Attributes: []otlpKeyValue{{
			Key:   "service.name",
			Value: otlpAnyValue{StringValue: "insitubits"},
		}}},
		ScopeSpans: []otlpScopeSpans{{
			Scope: otlpScope{Name: "insitubits/internal/telemetry"},
			Spans: spans,
		}},
	}}}
	return json.Marshal(doc)
}

// NewOTLPFileSink returns a recorder sink that appends each kept trace as
// one OTLP-shaped JSON line to w, serializing concurrent finalizations.
// Install with TraceRecorder.SetSink. Write errors are silently dropped
// after the first (tracing must never take down the pipeline); the
// returned error func reports the first one for end-of-run logging.
func NewOTLPFileSink(w io.Writer) (sink func(*Trace), firstErr func() error) {
	var mu sync.Mutex
	var err error
	sink = func(t *Trace) {
		data, merr := t.OTLPJSON()
		if merr != nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			return
		}
		if _, werr := w.Write(append(data, '\n')); werr != nil {
			err = werr
		}
	}
	firstErr = func() error {
		mu.Lock()
		defer mu.Unlock()
		return err
	}
	return sink, firstErr
}
