package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// OpenMetrics text exposition (version 1.0.0), stdlib-only. The classic
// Prometheus 0.0.4 writer (prometheus.go) renders histograms as quantile
// summaries, but OpenMetrics forbids exemplars on summaries — and the
// exemplar is the whole point of this exposition: each histogram bucket
// line can carry the trace ID of a sample that landed in it, so a slow
// `insitubits_query_latency_ns` bucket links straight to
// `/debug/traces?id=<trace_id>`, which links to the qlog record stamped
// with the same ID. /metrics serves this format when the scraper sends
// `Accept: application/openmetrics-text` (or `?format=openmetrics`).
//
// Differences from the 0.0.4 exposition:
//
//	counters    family insitubits_<name>, sample insitubits_<name>_total
//	histograms  cumulative le-bucket histogram (edges at powers of 16
//	            from 256 up, +Inf) with `# {trace_id="..."} v ts`
//	            exemplars, plus _sum/_count
//	terminator  "# EOF"
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// omEdges are the cumulative bucket upper edges of the OpenMetrics
// histogram exposition. They sit on power-of-two boundaries, so every
// internal log bucket (histogram.go) maps exactly into one edge span —
// the exposition is a lossless coarsening, never a re-binning estimate.
// For nanosecond latencies the edges read: 256ns, ~4.1µs, ~65µs, ~1ms,
// ~16.8ms, ~268ms, ~4.3s, ~68.7s.
var omEdges = []int64{
	1 << 8, 1 << 12, 1 << 16, 1 << 20, 1 << 24, 1 << 28, 1 << 32, 1 << 36,
}

// WriteOpenMetrics writes a point-in-time snapshot of the registry in
// OpenMetrics text format. Nil-safe (writes only the EOF terminator).
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return r.Snapshot().WriteOpenMetrics(w)
}

// WriteOpenMetrics renders the snapshot in OpenMetrics text format.
func (s Snapshot) WriteOpenMetrics(w io.Writer) error {
	bw := &errWriter{w: w}
	if len(s.BuildInfo) > 0 {
		m := promPrefix + "build_info"
		labels := make([]string, 0, len(s.BuildInfo))
		for _, k := range names(s.BuildInfo) {
			labels = append(labels, fmt.Sprintf("%s=\"%s\"", promName(k)[len(promPrefix):], promLabel(s.BuildInfo[k])))
		}
		bw.printf("# TYPE %s gauge\n%s{%s} 1\n", m, m, strings.Join(labels, ","))
	}
	for _, name := range names(s.Counters) {
		m := promName(name)
		bw.printf("# TYPE %s counter\n%s_total %d\n", m, m, s.Counters[name])
	}
	for _, name := range names(s.Gauges) {
		g := s.Gauges[name]
		m := promName(name)
		bw.printf("# TYPE %s gauge\n%s %d\n", m, m, g.Value)
		bw.printf("# TYPE %s_max gauge\n%s_max %d\n", m, m, g.Max)
	}
	for _, name := range names(s.Histograms) {
		writeOMHistogram(bw, promName(name), s.Histograms[name])
	}
	if len(s.Spans) > 0 {
		countMetric := promPrefix + "span_count"
		durMetric := promPrefix + "span_duration_ns"
		bw.printf("# TYPE %s counter\n# TYPE %s counter\n", countMetric, durMetric)
		tracers := make([]string, 0, len(s.Spans))
		for t := range s.Spans {
			tracers = append(tracers, t)
		}
		sort.Strings(tracers)
		for _, t := range tracers {
			for _, root := range s.Spans[t] {
				writeOMSpan(bw, countMetric, durMetric, t, "", root)
			}
		}
	}
	bw.printf("# EOF\n")
	return bw.err
}

// writeOMHistogram renders one histogram family: cumulative le buckets
// (with exemplars attached to the bucket span each exemplar value falls
// in), _sum, and _count.
func writeOMHistogram(bw *errWriter, m string, h HistogramSnapshot) {
	bw.printf("# TYPE %s histogram\n", m)
	// Fold the fine internal buckets into the coarse exposition edges.
	// Internal bucket spans never straddle a power-of-two boundary, so
	// assigning each to the first edge at or above its upper bound is
	// exact.
	counts := make([]int64, len(omEdges)+1) // +1 for +Inf
	h.eachBucket(func(idx int, c int64) {
		_, hi := bucketBounds(idx)
		slot := len(omEdges)
		for i, e := range omEdges {
			if hi <= e {
				slot = i
				break
			}
		}
		counts[slot] += c
	})
	cum := int64(0)
	prevEdge := int64(-1)
	for i := range counts {
		cum += counts[i]
		le := "+Inf"
		edge := int64(1)<<62 + (int64(1)<<62 - 1) // effectively MaxInt64
		if i < len(omEdges) {
			edge = omEdges[i]
			le = fmt.Sprintf("%d", edge)
		}
		line := fmt.Sprintf("%s_bucket{le=\"%s\"} %d", m, le, cum)
		for _, ex := range h.Exemplars {
			if ex.Value > prevEdge && ex.Value <= edge {
				line += fmt.Sprintf(" # {trace_id=\"%s\"} %d %.9f",
					promLabel(ex.TraceID), ex.Value, float64(ex.UnixNs)/1e9)
				break
			}
		}
		bw.printf("%s\n", line)
		prevEdge = edge
	}
	bw.printf("%s_sum %d\n%s_count %d\n", m, h.Sum, m, h.Count)
}

// eachBucket visits the populated internal buckets of a snapshot.
func (s HistogramSnapshot) eachBucket(fn func(idx int, count int64)) {
	for idx, c := range s.buckets {
		if c != 0 {
			fn(idx, c)
		}
	}
}

func writeOMSpan(bw *errWriter, countMetric, durMetric, tracer, prefix string, sp SpanSnapshot) {
	path := prefix + sp.Name
	labels := fmt.Sprintf("{tracer=\"%s\",path=\"%s\"}", promLabel(tracer), promLabel(path))
	bw.printf("%s_total%s %d\n", countMetric, labels, sp.Count)
	bw.printf("%s_total%s %d\n", durMetric, labels, sp.TotalNs)
	for _, c := range sp.Children {
		writeOMSpan(bw, countMetric, durMetric, tracer, path+"/", c)
	}
}
