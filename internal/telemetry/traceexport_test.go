package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strconv"
	"testing"
	"time"
)

// makeTrace records one three-span trace (request → query → io) through the
// real recorder so exports are tested against genuinely recorded data.
func makeTrace(t *testing.T) *Trace {
	t.Helper()
	rec := NewTraceRecorder(TraceConfig{})
	ctx, root := rec.StartTrace(context.Background(), "request")
	q := SpanFromContext(ctx).Child("query.count")
	q.SetAttrInt("bins", 16)
	io := q.Child("store.read_index")
	time.Sleep(time.Millisecond)
	io.End()
	q.End()
	root.End()
	tr := rec.Get(root.TraceID())
	if tr == nil {
		t.Fatal("trace not kept")
	}
	return tr
}

// The Chrome roundtrip parses the export with independently declared
// structs — no types from traceexport.go — so a silent schema drift in the
// exporter fails here rather than in chrome://tracing.
func TestChromeTraceRoundtrip(t *testing.T) {
	tr := makeTrace(t)
	data, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("independent parse: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var meta, complete int
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			names[ev.Name] = true
			if ev.Args["trace_id"] != tr.TraceID {
				t.Errorf("event %s carries trace_id %q, want %q", ev.Name, ev.Args["trace_id"], tr.TraceID)
			}
			if ev.Args["span_id"] == "" {
				t.Errorf("event %s has no span_id", ev.Name)
			}
			if ev.Ts < 0 {
				t.Errorf("event %s starts before the trace: ts=%g", ev.Name, ev.Ts)
			}
			if ev.Pid != 1 || ev.Tid != 1 {
				t.Errorf("event %s pid/tid = %d/%d", ev.Name, ev.Pid, ev.Tid)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 1 {
		t.Errorf("%d metadata events, want 1", meta)
	}
	if complete != len(tr.Spans) {
		t.Errorf("%d complete events for %d spans", complete, len(tr.Spans))
	}
	for _, want := range []string{"request", "query.count", "store.read_index"} {
		if !names[want] {
			t.Errorf("span %q missing from export", want)
		}
	}
	// Attrs survive into args.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "query.count" && ev.Args["bins"] == "16" {
			found = true
		}
	}
	if !found {
		t.Error("span attribute lost in Chrome export")
	}
}

// The OTLP roundtrip likewise re-declares the proto3 JSON shape locally and
// checks the scalar encodings OTLP collectors are strict about: hex ID
// lengths, fixed64 timestamps as decimal strings, kind, resource service
// name, and parent links.
func TestOTLPJSONRoundtrip(t *testing.T) {
	tr := makeTrace(t)
	data, err := tr.OTLPJSON()
	if err != nil {
		t.Fatal(err)
	}
	type kv struct {
		Key   string `json:"key"`
		Value struct {
			StringValue string `json:"stringValue"`
		} `json:"value"`
	}
	var doc struct {
		ResourceSpans []struct {
			Resource struct {
				Attributes []kv `json:"attributes"`
			} `json:"resource"`
			ScopeSpans []struct {
				Scope struct {
					Name string `json:"name"`
				} `json:"scope"`
				Spans []struct {
					TraceID           string `json:"traceId"`
					SpanID            string `json:"spanId"`
					ParentSpanID      string `json:"parentSpanId"`
					Name              string `json:"name"`
					Kind              int    `json:"kind"`
					StartTimeUnixNano string `json:"startTimeUnixNano"`
					EndTimeUnixNano   string `json:"endTimeUnixNano"`
					Attributes        []kv   `json:"attributes"`
				} `json:"spans"`
			} `json:"scopeSpans"`
		} `json:"resourceSpans"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("independent parse: %v", err)
	}
	if len(doc.ResourceSpans) != 1 || len(doc.ResourceSpans[0].ScopeSpans) != 1 {
		t.Fatalf("unexpected nesting: %s", data)
	}
	service := ""
	for _, a := range doc.ResourceSpans[0].Resource.Attributes {
		if a.Key == "service.name" {
			service = a.Value.StringValue
		}
	}
	if service != "insitubits" {
		t.Errorf("service.name = %q", service)
	}
	spans := doc.ResourceSpans[0].ScopeSpans[0].Spans
	if len(spans) != len(tr.Spans) {
		t.Fatalf("%d spans exported for %d recorded", len(spans), len(tr.Spans))
	}
	ids := map[string]bool{}
	for _, sp := range spans {
		ids[sp.SpanID] = true
	}
	for _, sp := range spans {
		if sp.TraceID != tr.TraceID || len(sp.TraceID) != 32 {
			t.Errorf("span %s traceId %q", sp.Name, sp.TraceID)
		}
		if len(sp.SpanID) != 16 {
			t.Errorf("span %s spanId %q", sp.Name, sp.SpanID)
		}
		if sp.Kind != 1 {
			t.Errorf("span %s kind %d, want 1 (INTERNAL)", sp.Name, sp.Kind)
		}
		start, err1 := strconv.ParseInt(sp.StartTimeUnixNano, 10, 64)
		end, err2 := strconv.ParseInt(sp.EndTimeUnixNano, 10, 64)
		if err1 != nil || err2 != nil || end < start {
			t.Errorf("span %s timestamps %q..%q", sp.Name, sp.StartTimeUnixNano, sp.EndTimeUnixNano)
		}
		if sp.ParentSpanID != "" && !ids[sp.ParentSpanID] {
			t.Errorf("span %s parent %q not in trace", sp.Name, sp.ParentSpanID)
		}
	}
	if spans[0].Name != "request" || spans[0].ParentSpanID != "" {
		t.Errorf("root span not first: %+v", spans[0])
	}
	attr := ""
	for _, sp := range spans {
		if sp.Name == "query.count" {
			for _, a := range sp.Attributes {
				if a.Key == "bins" {
					attr = a.Value.StringValue
				}
			}
		}
	}
	if attr != "16" {
		t.Errorf("span attribute lost in OTLP export: %q", attr)
	}
}

func TestOTLPFileSink(t *testing.T) {
	var buf bytes.Buffer
	sink, firstErr := NewOTLPFileSink(&buf)
	rec := NewTraceRecorder(TraceConfig{})
	rec.SetSink(sink)
	for i := 0; i < 3; i++ {
		_, sp := rec.StartTrace(context.Background(), "q")
		sp.Child("c").End()
		sp.End()
	}
	if err := firstErr(); err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
		var doc map[string]any
		if err := json.Unmarshal(sc.Bytes(), &doc); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if _, ok := doc["resourceSpans"]; !ok {
			t.Fatalf("line %d missing resourceSpans", lines)
		}
	}
	if lines != 3 {
		t.Errorf("%d JSONL lines for 3 kept traces", lines)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, errSink
}

var errSink = &json.UnsupportedValueError{Str: "disk full"}

func TestOTLPFileSinkLatchesFirstError(t *testing.T) {
	w := &failWriter{}
	sink, firstErr := NewOTLPFileSink(w)
	rec := NewTraceRecorder(TraceConfig{})
	rec.SetSink(sink)
	for i := 0; i < 5; i++ {
		_, sp := rec.StartTrace(context.Background(), "q")
		sp.End()
	}
	if firstErr() == nil {
		t.Fatal("write error not surfaced")
	}
	if w.n != 1 {
		t.Errorf("sink kept writing after the first error (%d writes)", w.n)
	}
}
