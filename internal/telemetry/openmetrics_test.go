package telemetry

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// omSample is one parsed OpenMetrics sample line.
type omSample struct {
	name          string
	labels        map[string]string
	value         float64
	exemplarTrace string
	exemplarValue float64
}

// parseOpenMetrics is a deliberately independent reader of the exposition
// — it shares no code with the writer, so a malformed exemplar suffix or
// bucket line fails here rather than round-tripping silently. It returns
// the samples and whether the mandatory # EOF terminator was seen.
func parseOpenMetrics(t *testing.T, text string) (samples []omSample, eof bool) {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if line == "# EOF" {
				eof = true
			}
			continue
		}
		if eof {
			t.Fatalf("sample after # EOF: %q", line)
		}
		var s omSample
		rest := line
		// Optional exemplar suffix: " # {k=\"v\"} value [timestamp]".
		if body, ex, ok := strings.Cut(line, " # "); ok {
			rest = body
			if !strings.HasPrefix(ex, "{") {
				t.Fatalf("bad exemplar %q in %q", ex, line)
			}
			lab, tail, ok := strings.Cut(ex[1:], "} ")
			if !ok {
				t.Fatalf("unterminated exemplar labels in %q", line)
			}
			k, v, ok := strings.Cut(lab, "=")
			if !ok || k != "trace_id" {
				t.Fatalf("exemplar label %q, want trace_id", lab)
			}
			s.exemplarTrace = strings.Trim(v, `"`)
			parts := strings.Fields(tail)
			if len(parts) < 1 || len(parts) > 2 {
				t.Fatalf("exemplar tail %q", tail)
			}
			ev, err := strconv.ParseFloat(parts[0], 64)
			if err != nil {
				t.Fatalf("exemplar value %q: %v", parts[0], err)
			}
			s.exemplarValue = ev
			if len(parts) == 2 {
				if _, err := strconv.ParseFloat(parts[1], 64); err != nil {
					t.Fatalf("exemplar timestamp %q: %v", parts[1], err)
				}
			}
		}
		// Name, optional {labels}, value.
		nameEnd := strings.IndexAny(rest, "{ ")
		if nameEnd < 0 {
			t.Fatalf("unparsable line %q", line)
		}
		s.name = rest[:nameEnd]
		rest = rest[nameEnd:]
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, "}")
			if end < 0 {
				t.Fatalf("unterminated labels in %q", line)
			}
			s.labels = map[string]string{}
			for _, kv := range strings.Split(rest[1:end], ",") {
				if kv == "" {
					continue
				}
				k, v, ok := strings.Cut(kv, "=")
				if !ok {
					t.Fatalf("bad label %q in %q", kv, line)
				}
				s.labels[k] = strings.Trim(v, `"`)
			}
			rest = rest[end+1:]
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 {
			t.Fatalf("no value in %q", line)
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			t.Fatalf("value %q in %q: %v", fields[0], line, err)
		}
		s.value = v
		samples = append(samples, s)
	}
	return samples, eof
}

// TestOpenMetricsExemplarRoundTrip records latency samples stamped with
// known trace IDs and validates — with the independent parser above —
// that the exposition carries them as bucket exemplars that round-trip
// to the exact trace ID, land in the right le bucket, and keep the
// cumulative bucket counts monotone.
func TestOpenMetricsExemplarRoundTrip(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("query.latency_ns")
	reg.Counter("query.count").Add(7)
	reg.Gauge("cache.bytes").Set(123)
	// Two traced samples in different magnitude bands plus untraced bulk.
	h.RecordExemplar(900, "tracefast01")
	h.RecordExemplar(2_000_000, "traceslow02")
	for i := 0; i < 100; i++ {
		h.Record(int64(1000 + i))
	}

	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	samples, eof := parseOpenMetrics(t, buf.String())
	if !eof {
		t.Fatal("missing # EOF terminator")
	}

	var buckets []omSample
	exemplars := map[string]omSample{}
	var count, total float64
	for _, s := range samples {
		switch s.name {
		case "insitubits_query_latency_ns_bucket":
			buckets = append(buckets, s)
			if s.exemplarTrace != "" {
				exemplars[s.exemplarTrace] = s
			}
		case "insitubits_query_latency_ns_count":
			count = s.value
		case "insitubits_query_count_total":
			total = s.value
		}
	}
	if total != 7 {
		t.Errorf("counter total = %g, want 7", total)
	}
	if count != 102 {
		t.Errorf("histogram count = %g, want 102", count)
	}
	if len(buckets) == 0 {
		t.Fatal("no bucket lines")
	}
	// Buckets: cumulative, monotone, terminated by +Inf == count.
	prev := -1.0
	for _, b := range buckets {
		if b.labels["le"] == "" {
			t.Fatalf("bucket without le: %+v", b)
		}
		if b.value < prev {
			t.Fatalf("bucket counts not monotone: %+v", buckets)
		}
		prev = b.value
	}
	if last := buckets[len(buckets)-1]; last.labels["le"] != "+Inf" || last.value != count {
		t.Errorf("+Inf bucket = %+v, want le=+Inf value=%g", last, count)
	}
	// Both trace IDs round-trip, attached to the bucket their value is in.
	for _, want := range []struct {
		trace string
		value float64
	}{{"tracefast01", 900}, {"traceslow02", 2_000_000}} {
		ex, ok := exemplars[want.trace]
		if !ok {
			t.Fatalf("trace %s has no exemplar; buckets: %+v", want.trace, buckets)
		}
		if ex.exemplarValue != want.value {
			t.Errorf("trace %s exemplar value = %g, want %g", want.trace, ex.exemplarValue, want.value)
		}
		if le := ex.labels["le"]; le != "+Inf" {
			edge, err := strconv.ParseFloat(le, 64)
			if err != nil {
				t.Fatalf("le %q: %v", le, err)
			}
			if want.value > edge {
				t.Errorf("trace %s exemplar %g above its bucket edge %g", want.trace, want.value, edge)
			}
		}
	}
}

// TestMetricsContentNegotiation covers /metrics serving both expositions:
// classic 0.0.4 by default, OpenMetrics when the Accept header (or the
// ?format=openmetrics escape hatch) asks for it.
func TestMetricsContentNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("query.latency_ns").RecordExemplar(5000, "tracenego03")
	srv, err := reg.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	fetch := func(accept, query string) (string, string) {
		req, _ := http.NewRequest("GET", "http://"+srv.Addr+"/metrics"+query, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		if _, err := fmt.Fprint(&sb, readAll(t, resp)); err != nil {
			t.Fatal(err)
		}
		return sb.String(), resp.Header.Get("Content-Type")
	}

	classic, ct := fetch("", "")
	if !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("default content type = %q", ct)
	}
	if strings.Contains(classic, "# EOF") || strings.Contains(classic, "_bucket{") {
		t.Error("default exposition leaked OpenMetrics syntax")
	}
	om, ct := fetch("application/openmetrics-text; version=1.0.0", "")
	if !strings.Contains(ct, "application/openmetrics-text") {
		t.Errorf("negotiated content type = %q", ct)
	}
	if !strings.Contains(om, "# EOF") || !strings.Contains(om, `# {trace_id="tracenego03"}`) {
		t.Errorf("OpenMetrics exposition missing exemplar or EOF:\n%s", om)
	}
	if omQ, _ := fetch("", "?format=openmetrics"); !strings.Contains(omQ, "# EOF") {
		t.Error("?format=openmetrics not honored")
	}
	// The negotiated output parses with the independent reader too.
	if _, eof := parseOpenMetrics(t, om); !eof {
		t.Error("negotiated exposition unterminated")
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}
