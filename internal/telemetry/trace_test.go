package telemetry

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceBasics(t *testing.T) {
	rec := NewTraceRecorder(TraceConfig{})
	ctx, root := rec.StartTrace(context.Background(), "request")
	if root == nil {
		t.Fatal("StartTrace returned nil span")
	}
	if got := TraceIDOf(ctx); got != root.TraceID() || len(got) != 32 {
		t.Fatalf("TraceIDOf = %q, root = %q", got, root.TraceID())
	}
	if len(root.SpanID()) != 16 {
		t.Fatalf("span ID %q not 16 hex chars", root.SpanID())
	}
	child := SpanFromContext(ctx).Child("phase")
	child.SetAttr("kind", "test")
	child.SetAttrInt("bins", 42)
	grand := child.Child("io")
	grand.End()
	child.End()
	root.End()

	tr := rec.Get(root.TraceID())
	if tr == nil {
		t.Fatal("kept trace not retrievable by ID")
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(tr.Spans), tr.Spans)
	}
	if tr.Spans[0].Name != "request" || tr.Spans[0].ParentID != "" {
		t.Errorf("root span not first: %+v", tr.Spans[0])
	}
	byID := map[string]TraceSpan{}
	for _, sp := range tr.Spans {
		byID[sp.SpanID] = sp
	}
	var phase, io TraceSpan
	for _, sp := range tr.Spans {
		switch sp.Name {
		case "phase":
			phase = sp
		case "io":
			io = sp
		}
	}
	if phase.ParentID != tr.Spans[0].SpanID {
		t.Errorf("phase span not a child of root: %+v", phase)
	}
	if io.ParentID != phase.SpanID {
		t.Errorf("io span not a child of phase: %+v", io)
	}
	if phase.Attrs["kind"] != "test" || phase.Attrs["bins"] != "42" {
		t.Errorf("attrs lost: %+v", phase.Attrs)
	}
	if st := rec.Stats(); st.Started != 1 || st.Kept != 1 || st.Dropped != 0 {
		t.Errorf("stats: %+v", st)
	}
	// Double End is a no-op.
	root.End()
	if st := rec.Stats(); st.Kept != 1 {
		t.Errorf("double End changed stats: %+v", st)
	}
}

func TestTraceRingEviction(t *testing.T) {
	rec := NewTraceRecorder(TraceConfig{Capacity: 4})
	ids := make([]string, 10)
	for i := range ids {
		_, sp := rec.StartTrace(context.Background(), fmt.Sprintf("t%d", i))
		ids[i] = sp.TraceID()
		sp.End()
	}
	kept := rec.Traces()
	if len(kept) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(kept))
	}
	// Newest first.
	for i, tr := range kept {
		if want := ids[len(ids)-1-i]; tr.TraceID != want {
			t.Errorf("traces[%d] = %s, want %s", i, tr.Name, want)
		}
	}
	if rec.Get(ids[0]) != nil {
		t.Error("evicted trace still retrievable")
	}
	if rec.Get(ids[9]) == nil {
		t.Error("newest trace not retrievable")
	}
}

func TestHeadSampling(t *testing.T) {
	rec := NewTraceRecorder(TraceConfig{SampleEvery: 3})
	for i := 0; i < 9; i++ {
		_, sp := rec.StartTrace(context.Background(), "q")
		sp.End()
	}
	st := rec.Stats()
	if st.Started != 9 || st.Kept != 3 || st.Dropped != 6 {
		t.Errorf("1-in-3 sampling kept %d of %d (dropped %d)", st.Kept, st.Started, st.Dropped)
	}
}

func TestKeepSlowOverridesSampling(t *testing.T) {
	rec := NewTraceRecorder(TraceConfig{SampleEvery: 1 << 30, SlowThreshold: time.Nanosecond})
	_, first := rec.StartTrace(context.Background(), "first") // seq 1: head-sampled
	first.End()
	_, sp := rec.StartTrace(context.Background(), "slow") // seq 2: not sampled
	time.Sleep(time.Millisecond)
	sp.End()
	tr := rec.Get(sp.TraceID())
	if tr == nil {
		t.Fatal("slow trace was dropped despite SlowThreshold")
	}
	if !tr.Slow || tr.Sampled {
		t.Errorf("slow trace flags: %+v", tr)
	}
	// Both traces exceeded the 1ns threshold, so both count as slow keeps.
	if st := rec.Stats(); st.KeptSlow != 2 || st.Kept != 2 {
		t.Errorf("kept-slow count: %+v", st)
	}

	// Fast and unsampled → dropped.
	fast := NewTraceRecorder(TraceConfig{SampleEvery: 1 << 30, SlowThreshold: time.Hour})
	_, a := fast.StartTrace(context.Background(), "a") // seq 1: sampled
	a.End()
	_, b := fast.StartTrace(context.Background(), "b")
	b.End()
	if fast.Get(b.TraceID()) != nil {
		t.Error("fast unsampled trace was kept")
	}
	if st := fast.Stats(); st.Dropped != 1 {
		t.Errorf("drop count: %+v", st)
	}
}

func TestMaxSpansTruncation(t *testing.T) {
	rec := NewTraceRecorder(TraceConfig{MaxSpans: 4})
	_, root := rec.StartTrace(context.Background(), "big")
	for i := 0; i < 10; i++ {
		root.Child("c").End()
	}
	root.End()
	tr := rec.Get(root.TraceID())
	if tr == nil {
		t.Fatal("trace dropped")
	}
	if !tr.Truncated {
		t.Error("truncation not flagged")
	}
	if len(tr.Spans) > 4 {
		t.Errorf("%d spans survived a MaxSpans=4 cap", len(tr.Spans))
	}
}

func TestStartSpanDisabledPath(t *testing.T) {
	SetTraceRecorder(nil)
	ctx, sp := StartSpan(context.Background(), "q")
	if sp != nil {
		t.Fatal("StartSpan minted a span with tracing disabled")
	}
	if SpanFromContext(ctx) != nil || TraceIDOf(ctx) != "" {
		t.Error("disabled path leaked trace state into the context")
	}
	// The whole nil-span surface must be no-op safe.
	sp.SetAttr("k", "v")
	sp.SetAttrInt("n", 1)
	sp.Child("c").End()
	sp.End()
	if sp.TraceID() != "" || sp.SpanID() != "" {
		t.Error("nil span has identity")
	}
}

func TestStartSpanDefaultRecorder(t *testing.T) {
	rec := NewTraceRecorder(TraceConfig{})
	SetTraceRecorder(rec)
	defer SetTraceRecorder(nil)
	ctx, root := StartSpan(context.Background(), "outer")
	if root == nil {
		t.Fatal("StartSpan ignored the installed recorder")
	}
	ctx2, inner := StartSpan(ctx, "inner")
	if inner.TraceID() != root.TraceID() {
		t.Error("nested StartSpan opened a new trace instead of a child")
	}
	if SpanFromContext(ctx2) != inner {
		t.Error("returned context does not carry the child span")
	}
	inner.End()
	root.End()
	tr := rec.Get(root.TraceID())
	if tr == nil || len(tr.Spans) != 2 {
		t.Fatalf("trace: %+v", tr)
	}
	if tr.Spans[1].ParentID != tr.Spans[0].SpanID {
		t.Error("inner span not linked to outer")
	}
}

// TestConcurrentTraceRing hammers the recorder from many goroutines —
// writers producing traces with child spans while readers list, fetch and
// export concurrently. Run under -race (the race-hot Makefile target
// includes this package).
func TestConcurrentTraceRing(t *testing.T) {
	rec := NewTraceRecorder(TraceConfig{Capacity: 8, SampleEvery: 2, SlowThreshold: time.Hour})
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				ctx, root := rec.StartTrace(context.Background(), "hammer")
				_, child := StartSpan(ctx, "child")
				child.SetAttrInt("i", int64(i))
				child.End()
				root.End()
			}
		}()
	}
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, tr := range rec.Traces() {
					if rec.Get(tr.TraceID) == nil {
						continue // evicted between list and fetch: fine
					}
					if _, err := tr.ChromeTrace(); err != nil {
						t.Errorf("export: %v", err)
						return
					}
				}
				rec.Stats()
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	st := rec.Stats()
	if st.Started != 800 || st.Kept+st.Dropped != 800 {
		t.Errorf("counts drifted: %+v", st)
	}
	if st.Kept != 400 {
		t.Errorf("1-in-2 sampling kept %d of 800", st.Kept)
	}
	if got := len(rec.Traces()); got != 8 {
		t.Errorf("ring holds %d, want 8", got)
	}
}

func TestTraceIDFormat(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		id := newID(128)
		if len(id) != 32 || strings.Trim(id, "0123456789abcdef") != "" {
			t.Fatalf("bad 128-bit id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
	if id := newID(64); len(id) != 16 {
		t.Fatalf("bad 64-bit id %q", id)
	}
}
