package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	const workers, per = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
			r.Counter("c").Add(per) // same instance via the registry
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 2*workers*per {
		t.Fatalf("count = %d, want %d", got, 2*workers*per)
	}
	if r.Counter("c") != c {
		t.Fatal("registry returned a different instance for the same name")
	}
}

func TestGaugeWatermark(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
				g.Add(-1)
			}
			g.Set(int64(w))
		}(w)
	}
	wg.Wait()
	if g.Max() < int64(workers-1) {
		t.Fatalf("watermark %d never saw Set(%d)", g.Max(), workers-1)
	}
	if v := g.Value(); v < 0 || v >= workers {
		t.Fatalf("final value %d outside [0,%d)", v, workers)
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g := r.Gauge("x")
	g.Set(3)
	if g.Add(2) != 0 || g.Max() != 0 {
		t.Fatal("nil gauge not a no-op")
	}
	h := r.Histogram("x")
	h.Record(42)
	if s := h.Snapshot(); s.Count != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram not a no-op")
	}
	var tr *Tracer
	sp := tr.Start("run")
	sp.Child("inner").End()
	if sp.End() != 0 || tr.Phase("run").Count != 0 {
		t.Fatal("nil tracer not a no-op")
	}
	r.AttachTracer("t", NewTracer())
	if snap := r.Snapshot(); len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestHistogramBuckets(t *testing.T) {
	// Every value must land in a bucket whose bounds contain it, and
	// bucket widths must bound the relative error by 1/16.
	for _, v := range []int64{0, 1, 15, 16, 17, 31, 32, 1000, 123456789, 1 << 40, 1<<62 + 12345} {
		idx := bucketOf(v)
		lo, hi := bucketBounds(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d in bucket %d with bounds [%d,%d]", v, idx, lo, hi)
		}
		if lo >= exactLimit {
			if width := hi - lo + 1; width > lo/subBuckets+1 {
				t.Fatalf("bucket %d width %d too wide for lower edge %d", idx, width, lo)
			}
		}
	}
	if idx := bucketOf(-5); idx != 0 {
		t.Fatalf("negative value in bucket %d", idx)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	const n = 200000
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		h.Record(int64(rng.Intn(1_000_000)) + 1)
	}
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("count %d", s.Count)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := float64(s.Quantile(q))
		want := q * 1_000_000 // uniform distribution
		if rel := (got - want) / want; rel < -0.08 || rel > 0.08 {
			t.Errorf("q%.2f = %.0f, want %.0f ± 6.25%% bucket width (rel %.3f)", q, got, want, rel)
		}
	}
	if s.Min < 1 || s.Max > 1_000_000 {
		t.Fatalf("min/max %d/%d outside recorded range", s.Min, s.Max)
	}
	if s.Mean < 450_000 || s.Mean > 550_000 {
		t.Fatalf("mean %.0f implausible for uniform [1,1e6]", s.Mean)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	const workers, per = 8, 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.Record(int64(rng.Intn(1 << 20)))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count %d, want %d", s.Count, workers*per)
	}
	total := int64(0)
	for _, c := range s.buckets {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("run")
	for i := 0; i < 3; i++ {
		sp := root.Child("phase")
		inner := sp.Child("inner")
		time.Sleep(time.Millisecond)
		inner.End()
		sp.End()
	}
	root.End()
	if got := tr.Phase("run").Count; got != 1 {
		t.Fatalf("root count %d", got)
	}
	ph := tr.Phase("run", "phase")
	if ph.Count != 3 {
		t.Fatalf("phase count %d", ph.Count)
	}
	in := tr.Phase("run", "phase", "inner")
	if in.Count != 3 || in.Total < 3*time.Millisecond {
		t.Fatalf("inner stats %+v", in)
	}
	if ph.Total < in.Total {
		t.Fatalf("parent total %v < child total %v", ph.Total, in.Total)
	}
	snap := tr.Snapshot()
	if len(snap) != 1 || snap[0].Name != "run" || len(snap[0].Children) != 1 ||
		snap[0].Children[0].Name != "phase" || snap[0].Children[0].Children[0].Name != "inner" {
		t.Fatalf("snapshot tree %+v", snap)
	}
	if tr.Phase("run", "missing").Count != 0 || tr.Phase().Count != 0 {
		t.Fatal("missing phases must read zero")
	}
}

func TestSpanConcurrent(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("run")
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("worker-%d", w%2)
			for i := 0; i < per; i++ {
				root.Child(name).End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	if n := tr.Phase("run", "worker-0").Count + tr.Phase("run", "worker-1").Count; n != workers*per {
		t.Fatalf("span count %d, want %d", n, workers*per)
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(7)
	r.Gauge("g").Set(3)
	r.Histogram("h").Record(100)
	tr := NewTracer()
	tr.Start("run").End()
	r.AttachTracer("pipeline", tr)
	data, err := r.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["a"] != 7 || snap.Gauges["g"].Value != 3 ||
		snap.Histograms["h"].Count != 1 || len(snap.Spans["pipeline"]) != 1 {
		t.Fatalf("round-tripped snapshot %+v", snap)
	}
	if r.Tracer("pipeline") != tr || r.Tracer("absent") != nil {
		t.Fatal("tracer lookup broken")
	}
}

func TestDebugServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(3)
	dbg, err := r.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + dbg.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	code, body := get("/telemetry")
	if code != 200 {
		t.Fatalf("/telemetry -> %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil || snap.Counters["hits"] != 3 {
		t.Fatalf("/telemetry body %q (err %v)", body, err)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ -> %d", code)
	}
	if code, body := get("/debug/vars"); code != 200 || len(body) == 0 {
		t.Fatalf("/debug/vars -> %d", code)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("/nope -> %d", code)
	}
}
