package telemetry

import (
	"sync"
	"time"
)

// Tracer aggregates hierarchical phase spans. Concurrent spans from
// different goroutines (the separate-cores pipeline ends simulate spans on
// the producer while reduce spans end on the consumer) aggregate into one
// tree keyed by name path, so the tree stays bounded no matter how many
// steps run: each node carries a count and a total duration, not one entry
// per span. The zero value is not usable; call NewTracer. Nil-safe.
type Tracer struct {
	mu    sync.Mutex
	roots map[string]*spanNode
}

// spanNode is one aggregated position in the span tree.
type spanNode struct {
	name     string
	count    int64
	total    time.Duration
	children map[string]*spanNode
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{roots: make(map[string]*spanNode)} }

// Span is one in-flight timed region. End it exactly once. A nil span
// (from a nil tracer) is a valid no-op.
type Span struct {
	tracer *Tracer
	node   *spanNode
	start  time.Time
}

// Start opens a root span. Nil-safe: a nil tracer returns a nil span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	n := t.roots[name]
	if n == nil {
		n = &spanNode{name: name}
		t.roots[name] = n
	}
	t.mu.Unlock()
	return &Span{tracer: t, node: n, start: time.Now()}
}

// Child opens a span nested under s. Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.tracer
	t.mu.Lock()
	if s.node.children == nil {
		s.node.children = make(map[string]*spanNode)
	}
	n := s.node.children[name]
	if n == nil {
		n = &spanNode{name: name}
		s.node.children[name] = n
	}
	t.mu.Unlock()
	return &Span{tracer: t, node: n, start: time.Now()}
}

// End closes the span, folds its duration into the aggregated tree, and
// returns the duration (0 on a nil span).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.tracer.mu.Lock()
	s.node.count++
	s.node.total += d
	s.tracer.mu.Unlock()
	return d
}

// PhaseStats summarizes one aggregated span tree node.
type PhaseStats struct {
	Count int64
	Total time.Duration
}

// Phase returns the aggregate for the node at the given name path from a
// root (e.g. Phase("run", "simulate")). Zero stats if absent or nil.
func (t *Tracer) Phase(path ...string) PhaseStats {
	if t == nil || len(path) == 0 {
		return PhaseStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.roots[path[0]]
	for _, name := range path[1:] {
		if n == nil {
			return PhaseStats{}
		}
		n = n.children[name]
	}
	if n == nil {
		return PhaseStats{}
	}
	return PhaseStats{Count: n.count, Total: n.total}
}

// SpanSnapshot is an immutable copy of one aggregated span tree node.
type SpanSnapshot struct {
	Name     string         `json:"name"`
	Count    int64          `json:"count"`
	TotalNs  int64          `json:"total_ns"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot copies the whole span forest, children sorted by name.
func (t *Tracer) Snapshot() []SpanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanSnapshot, 0, len(t.roots))
	for _, name := range names(t.roots) {
		out = append(out, t.roots[name].snapshot())
	}
	return out
}

func (n *spanNode) snapshot() SpanSnapshot {
	s := SpanSnapshot{Name: n.name, Count: n.count, TotalNs: int64(n.total)}
	for _, name := range names(n.children) {
		s.Children = append(s.Children, n.children[name].snapshot())
	}
	return s
}
