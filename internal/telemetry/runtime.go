package telemetry

import (
	"math"
	"runtime/metrics"
	"sync"
)

// Runtime-metrics bridge: a pre-snapshot updater that publishes Go
// scheduler, heap, and GC health from the runtime/metrics package as
// ordinary registry instruments. Because it runs inside Snapshot, the
// values flow into the JSON snapshot, the Prometheus/OpenMetrics
// expositions, the metrics-history ring, and `bitmapctl top` without any
// of those consumers knowing it exists.
//
// Published instruments:
//
//	runtime.goroutines        gauge    live goroutines
//	runtime.heap_live_bytes   gauge    bytes in live heap objects
//	runtime.mem_total_bytes   gauge    total memory mapped by the runtime
//	runtime.gc_cycles         counter  completed GC cycles
//	runtime.gc_pauses         counter  stop-the-world pauses observed
//	runtime.gc_pause_total_ns counter  approximate total pause time
//	                                   (bucket-midpoint sum of the
//	                                   runtime's pause histogram)
const (
	runtimeGoroutines = "runtime.goroutines"
	runtimeHeapLive   = "runtime.heap_live_bytes"
	runtimeMemTotal   = "runtime.mem_total_bytes"
	runtimeGCCycles   = "runtime.gc_cycles"
	runtimeGCPauses   = "runtime.gc_pauses"
	runtimeGCPauseNs  = "runtime.gc_pause_total_ns"
	metricGoroutines  = "/sched/goroutines:goroutines"
	metricHeapObjects = "/memory/classes/heap/objects:bytes"
	metricMemTotal    = "/memory/classes/total:bytes"
	metricGCCycles    = "/gc/cycles/total:gc-cycles"
	metricSchedPauses = "/sched/pauses/total/gc:seconds"
)

// runtimeCollector holds the last-seen cumulative values so the
// counter-shaped metrics advance by deltas.
type runtimeCollector struct {
	mu      sync.Mutex
	samples []metrics.Sample

	goroutines *Gauge
	heapLive   *Gauge
	memTotal   *Gauge
	gcCycles   *Counter
	gcPauses   *Counter
	gcPauseNs  *Counter

	lastCycles  uint64
	lastPauses  uint64
	lastPauseNs float64
}

// EnableRuntimeMetrics registers the runtime-metrics bridge on the
// registry. Safe to call more than once (later calls are no-ops for that
// registry); nil-safe.
func (r *Registry) EnableRuntimeMetrics() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.gauges[runtimeGoroutines] != nil {
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	rc := &runtimeCollector{
		samples: []metrics.Sample{
			{Name: metricGoroutines},
			{Name: metricHeapObjects},
			{Name: metricMemTotal},
			{Name: metricGCCycles},
			{Name: metricSchedPauses},
		},
		goroutines: r.Gauge(runtimeGoroutines),
		heapLive:   r.Gauge(runtimeHeapLive),
		memTotal:   r.Gauge(runtimeMemTotal),
		gcCycles:   r.Counter(runtimeGCCycles),
		gcPauses:   r.Counter(runtimeGCPauses),
		gcPauseNs:  r.Counter(runtimeGCPauseNs),
	}
	r.RegisterUpdater(rc.update)
}

// update refreshes the instruments from one metrics.Read. Serialized so a
// concurrent Snapshot cannot double-apply a delta.
func (rc *runtimeCollector) update() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	metrics.Read(rc.samples)
	for i := range rc.samples {
		s := &rc.samples[i]
		switch s.Name {
		case metricGoroutines:
			if s.Value.Kind() == metrics.KindUint64 {
				rc.goroutines.Set(int64(s.Value.Uint64()))
			}
		case metricHeapObjects:
			if s.Value.Kind() == metrics.KindUint64 {
				rc.heapLive.Set(int64(s.Value.Uint64()))
			}
		case metricMemTotal:
			if s.Value.Kind() == metrics.KindUint64 {
				rc.memTotal.Set(int64(s.Value.Uint64()))
			}
		case metricGCCycles:
			if s.Value.Kind() == metrics.KindUint64 {
				v := s.Value.Uint64()
				if v >= rc.lastCycles {
					rc.gcCycles.Add(int64(v - rc.lastCycles))
				}
				rc.lastCycles = v
			}
		case metricSchedPauses:
			if s.Value.Kind() != metrics.KindFloat64Histogram {
				continue
			}
			count, sumNs := pauseTotals(s.Value.Float64Histogram())
			if count >= rc.lastPauses {
				rc.gcPauses.Add(int64(count - rc.lastPauses))
			}
			if d := sumNs - rc.lastPauseNs; d > 0 {
				rc.gcPauseNs.Add(int64(d))
			}
			rc.lastPauses, rc.lastPauseNs = count, sumNs
		}
	}
}

// pauseTotals reduces the runtime's cumulative pause histogram to a pause
// count and an approximate total in nanoseconds (each bucket contributes
// its midpoint; unbounded edge buckets contribute their finite edge).
func pauseTotals(h *metrics.Float64Histogram) (count uint64, sumNs float64) {
	if h == nil {
		return 0, 0
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		count += c
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := (lo + hi) / 2
		if math.IsInf(lo, -1) {
			mid = hi
		}
		if math.IsInf(hi, 1) {
			mid = lo
		}
		sumNs += float64(c) * mid * 1e9
	}
	return count, sumNs
}
