package telemetry

import (
	"context"
	"math/rand/v2"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Identity-carrying request tracing. Where Tracer (span.go) aggregates
// spans by name path and deliberately forgets which request produced them,
// a TraceRecorder keeps *individual* traces: every StartSpan call under a
// traced context records one concrete span with a TraceID/SpanID pair,
// wall-clock bounds, and free-form attributes. Completed traces land in a
// fixed-size ring buffer, so memory stays bounded no matter how long the
// process runs, and can be fetched back by ID and exported as Chrome
// trace-event JSON or OTLP-shaped JSON (traceexport.go).
//
// Keep policy: head sampling (keep 1 in SampleEvery traces, decided at
// StartTrace) plus always-keep-slow (a trace whose root span runs at least
// SlowThreshold is kept even when head sampling dropped it). Spans are
// collected for every in-flight trace — cheaply, bounded by MaxSpans — so
// the slow-keep decision can be made at root End without losing the tree.
//
// The disabled path is a single atomic pointer load (SpanFromContext on a
// span-free context, or StartSpan with no default recorder), mirroring the
// slow-query-log gate in internal/query; the gated overhead guard covers
// it.

// TraceConfig bounds a TraceRecorder.
type TraceConfig struct {
	// Capacity is the number of completed traces the ring retains.
	// Default 256.
	Capacity int
	// SampleEvery keeps 1 in N started traces (head sampling). 1 keeps
	// everything; 0 defaults to 1.
	SampleEvery int
	// SlowThreshold, when > 0, keeps any trace whose root span runs at
	// least this long, regardless of the head-sampling decision.
	SlowThreshold time.Duration
	// MaxSpans caps the spans recorded per trace; further spans are
	// counted but dropped. Default 512.
	MaxSpans int
}

func (c TraceConfig) withDefaults() TraceConfig {
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 1
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = 512
	}
	return c
}

// TraceSpan is one completed span inside a kept trace.
type TraceSpan struct {
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_id,omitempty"`
	Name     string            `json:"name"`
	StartNs  int64             `json:"start_unix_nano"`
	DurNs    int64             `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// Trace is one completed, kept trace: a flat span list (the root span is
// first) with parent links forming the tree.
type Trace struct {
	TraceID   string      `json:"trace_id"`
	Name      string      `json:"name"`
	StartNs   int64       `json:"start_unix_nano"`
	DurNs     int64       `json:"duration_ns"`
	Sampled   bool        `json:"sampled"`
	Slow      bool        `json:"slow"`
	Truncated bool        `json:"truncated,omitempty"`
	Spans     []TraceSpan `json:"spans"`
}

// TraceStats counts recorder activity since creation.
type TraceStats struct {
	Started  uint64 `json:"started"`
	Kept     uint64 `json:"kept"`
	KeptSlow uint64 `json:"kept_slow"`
	Dropped  uint64 `json:"dropped"`
}

// TraceRecorder owns the ring of completed traces and mints new ones.
// Safe for concurrent use. The zero value is not usable; call
// NewTraceRecorder.
type TraceRecorder struct {
	cfg     TraceConfig
	started atomic.Uint64
	kept    atomic.Uint64
	slow    atomic.Uint64
	dropped atomic.Uint64

	sinkMu sync.Mutex
	sink   func(*Trace)

	mu   sync.Mutex
	ring []*Trace // capacity cfg.Capacity, oldest overwritten first
	pos  int
	byID map[string]*Trace
}

// NewTraceRecorder returns a recorder with the given bounds.
func NewTraceRecorder(cfg TraceConfig) *TraceRecorder {
	cfg = cfg.withDefaults()
	return &TraceRecorder{
		cfg:  cfg,
		ring: make([]*Trace, cfg.Capacity),
		byID: make(map[string]*Trace, cfg.Capacity),
	}
}

// SetSink installs a callback invoked (outside the ring lock) for every
// kept trace — the OTLP JSONL file exporter hangs off this. Nil clears it.
func (r *TraceRecorder) SetSink(fn func(*Trace)) {
	if r == nil {
		return
	}
	r.sinkMu.Lock()
	r.sink = fn
	r.sinkMu.Unlock()
}

// Stats returns recorder activity counts. Nil-safe.
func (r *TraceRecorder) Stats() TraceStats {
	if r == nil {
		return TraceStats{}
	}
	return TraceStats{
		Started:  r.started.Load(),
		Kept:     r.kept.Load(),
		KeptSlow: r.slow.Load(),
		Dropped:  r.dropped.Load(),
	}
}

// Traces returns the kept traces, newest first. Nil-safe.
func (r *TraceRecorder) Traces() []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, len(r.byID))
	n := len(r.ring)
	for i := 1; i <= n; i++ {
		if t := r.ring[(r.pos-i+n*2)%n]; t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Get returns the kept trace with the given ID, or nil. Nil-safe.
func (r *TraceRecorder) Get(id string) *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byID[id]
}

func (r *TraceRecorder) keep(t *Trace) {
	r.mu.Lock()
	if old := r.ring[r.pos]; old != nil {
		delete(r.byID, old.TraceID)
	}
	r.ring[r.pos] = t
	r.byID[t.TraceID] = t
	r.pos = (r.pos + 1) % len(r.ring)
	r.mu.Unlock()
	r.sinkMu.Lock()
	sink := r.sink
	r.sinkMu.Unlock()
	if sink != nil {
		sink(t)
	}
}

// defaultRecorder gates the process-wide tracing fast path: one atomic
// load decides "tracing off" (the common case) before any allocation.
var defaultRecorder atomic.Pointer[TraceRecorder]

// SetTraceRecorder installs rec as the process-wide recorder used by
// StartSpan when the context carries no trace yet. Nil disables tracing.
func SetTraceRecorder(rec *TraceRecorder) {
	defaultRecorder.Store(rec)
}

// DefaultTraceRecorder returns the installed process-wide recorder (nil
// when tracing is disabled).
func DefaultTraceRecorder() *TraceRecorder {
	return defaultRecorder.Load()
}

// activeTrace is one in-flight trace: spans accumulate here until the root
// span ends, when the keep decision is made.
type activeTrace struct {
	rec     *TraceRecorder
	traceID string
	name    string
	sampled bool
	startNs int64

	mu        sync.Mutex
	spans     []TraceSpan
	truncated bool
}

// ActiveSpan is one open span in an in-flight trace. A nil *ActiveSpan is
// a valid no-op (the uninstrumented path), like every other handle in this
// package. End it exactly once; ending the root span finalizes the trace.
// Child and End are safe to call from different goroutines than the one
// that started the span; SetAttr on a single span is not concurrency-safe.
type ActiveSpan struct {
	at       *activeTrace
	spanID   string
	parentID string
	name     string
	start    time.Time
	root     bool
	attrs    map[string]string
	ended    atomic.Bool
}

func newID(bits int) string {
	const hex = "0123456789abcdef"
	n := bits / 4
	buf := make([]byte, n)
	var v uint64
	for i := 0; i < n; i++ {
		if i%16 == 0 {
			v = rand.Uint64()
			if i == 0 && v == 0 {
				v = 1 // all-zero IDs are invalid in OTLP
			}
		}
		buf[i] = hex[v&0xf]
		v >>= 4
	}
	return string(buf)
}

// StartTrace begins a new trace rooted at a span with the given name and
// returns a context carrying it. Nil-safe: a nil recorder returns the
// context unchanged and a nil span.
func (r *TraceRecorder) StartTrace(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	if r == nil {
		return ctx, nil
	}
	seq := r.started.Add(1)
	at := &activeTrace{
		rec:     r,
		traceID: newID(128),
		name:    name,
		sampled: r.cfg.SampleEvery == 1 || seq%uint64(r.cfg.SampleEvery) == 1,
		startNs: time.Now().UnixNano(),
	}
	sp := &ActiveSpan{
		at:     at,
		spanID: newID(64),
		name:   name,
		start:  time.Now(),
		root:   true,
	}
	return ContextWithSpan(ctx, sp), sp
}

// StartTraceWithID begins a new trace like StartTrace, but adopts the
// caller-supplied trace ID — the W3C-style propagation path a server uses
// to join its spans to a client's trace. The ID must be 32 lowercase hex
// digits and not all-zero (ValidTraceID); anything else falls back to a
// freshly minted ID, so a malicious or sloppy client can never corrupt the
// ring's keying. Nil-safe.
func (r *TraceRecorder) StartTraceWithID(ctx context.Context, name, traceID string) (context.Context, *ActiveSpan) {
	if r == nil {
		return ctx, nil
	}
	if !ValidTraceID(traceID) {
		return r.StartTrace(ctx, name)
	}
	seq := r.started.Add(1)
	at := &activeTrace{
		rec:     r,
		traceID: traceID,
		name:    name,
		sampled: r.cfg.SampleEvery == 1 || seq%uint64(r.cfg.SampleEvery) == 1,
		startNs: time.Now().UnixNano(),
	}
	sp := &ActiveSpan{
		at:     at,
		spanID: newID(64),
		name:   name,
		start:  time.Now(),
		root:   true,
	}
	return ContextWithSpan(ctx, sp), sp
}

// ValidTraceID reports whether id is a well-formed 128-bit trace ID: 32
// lowercase hex digits, not all zero (the invalid ID in both OTLP and the
// W3C traceparent spec).
func ValidTraceID(id string) bool {
	if len(id) != 32 {
		return false
	}
	zero := true
	for i := 0; i < len(id); i++ {
		c := id[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero
}

type spanCtxKey struct{}

// ContextWithSpan returns a context carrying the span (nil span returns
// ctx unchanged).
func ContextWithSpan(ctx context.Context, sp *ActiveSpan) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *ActiveSpan {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*ActiveSpan)
	return sp
}

// TraceIDOf returns the trace ID carried by ctx, or "".
func TraceIDOf(ctx context.Context) string {
	if sp := SpanFromContext(ctx); sp != nil {
		return sp.at.traceID
	}
	return ""
}

// StartSpan opens a span named name: as a child of the span in ctx when
// one is present, otherwise as the root of a new trace on the default
// recorder, otherwise a no-op nil span. The returned context carries the
// new span (it is ctx unchanged on the no-op path).
func StartSpan(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	if parent := SpanFromContext(ctx); parent != nil {
		sp := parent.Child(name)
		return ContextWithSpan(ctx, sp), sp
	}
	if rec := defaultRecorder.Load(); rec != nil {
		return rec.StartTrace(ctx, name)
	}
	return ctx, nil
}

// TraceID returns the owning trace's ID ("" on a nil span).
func (s *ActiveSpan) TraceID() string {
	if s == nil {
		return ""
	}
	return s.at.traceID
}

// SpanID returns the span's ID ("" on a nil span).
func (s *ActiveSpan) SpanID() string {
	if s == nil {
		return ""
	}
	return s.spanID
}

// Child opens a sub-span. Nil-safe: a nil receiver returns nil.
func (s *ActiveSpan) Child(name string) *ActiveSpan {
	if s == nil {
		return nil
	}
	return &ActiveSpan{
		at:       s.at,
		spanID:   newID(64),
		parentID: s.spanID,
		name:     name,
		start:    time.Now(),
	}
}

// SetAttr attaches a string attribute to the span. Nil-safe.
func (s *ActiveSpan) SetAttr(key, val string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = val
}

// SetAttrInt attaches an integer attribute to the span. Nil-safe.
func (s *ActiveSpan) SetAttrInt(key string, val int64) {
	s.SetAttr(key, strconv.FormatInt(val, 10))
}

// End closes the span and records it into the in-flight trace. Ending the
// root span finalizes the trace: it is kept when head-sampled or when its
// duration reaches the recorder's SlowThreshold, and dropped otherwise.
// Spans ended after their root are lost. Nil-safe; second End is a no-op.
func (s *ActiveSpan) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	dur := time.Since(s.start)
	at := s.at
	rec := at.rec
	at.mu.Lock()
	if len(at.spans) < rec.cfg.MaxSpans {
		span := TraceSpan{
			SpanID:   s.spanID,
			ParentID: s.parentID,
			Name:     s.name,
			StartNs:  s.start.UnixNano(),
			DurNs:    int64(dur),
			Attrs:    s.attrs,
		}
		if s.root {
			// Root first, so exporters and readers can treat
			// spans[0] as the tree root.
			at.spans = append(at.spans, TraceSpan{})
			copy(at.spans[1:], at.spans)
			at.spans[0] = span
		} else {
			at.spans = append(at.spans, span)
		}
	} else {
		at.truncated = true
	}
	if !s.root {
		at.mu.Unlock()
		return
	}
	slow := rec.cfg.SlowThreshold > 0 && dur >= rec.cfg.SlowThreshold
	keep := at.sampled || slow
	var t *Trace
	if keep {
		t = &Trace{
			TraceID:   at.traceID,
			Name:      at.name,
			StartNs:   at.startNs,
			DurNs:     int64(dur),
			Sampled:   at.sampled,
			Slow:      slow,
			Truncated: at.truncated,
			Spans:     at.spans,
		}
		at.spans = nil
	}
	at.mu.Unlock()
	if t == nil {
		rec.dropped.Add(1)
		return
	}
	rec.kept.Add(1)
	if slow {
		rec.slow.Add(1)
	}
	rec.keep(t)
}
