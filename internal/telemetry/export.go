package telemetry

import (
	"encoding/json"
	"expvar"
	"sync"
)

// GaugeSnapshot is an immutable view of a gauge.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// Snapshot is a point-in-time copy of everything a registry holds —
// the JSON document served at /telemetry and published over expvar.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Spans      map[string][]SpanSnapshot    `json:"spans"`
	BuildInfo  map[string]string            `json:"build_info,omitempty"`
}

// Snapshot captures the registry's current state. Nil-safe: a nil registry
// yields an empty (but non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]GaugeSnapshot{},
		Histograms: map[string]HistogramSnapshot{},
		Spans:      map[string][]SpanSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.runUpdaters()
	r.mu.RLock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	tracers := make(map[string]*Tracer, len(r.tracers))
	for name, t := range r.tracers {
		tracers[name] = t
	}
	r.mu.RUnlock()
	for _, c := range counters {
		snap.Counters[c.Name()] = c.Value()
	}
	for _, g := range gauges {
		snap.Gauges[g.Name()] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
	}
	for _, h := range hists {
		snap.Histograms[h.Name()] = h.Snapshot()
	}
	for name, t := range tracers {
		snap.Spans[name] = t.Snapshot()
	}
	snap.BuildInfo = r.BuildInfo()
	return snap
}

// MarshalJSON renders the snapshot (maps marshal with sorted keys, so the
// output is deterministic for a fixed state).
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

var expvarOnce sync.Once

// PublishExpvar publishes the registry under the expvar name "telemetry",
// so `GET /debug/vars` includes a live snapshot. Safe to call repeatedly;
// only the first registry wins (expvar names are process-global).
func (r *Registry) PublishExpvar() {
	if r == nil {
		return
	}
	expvarOnce.Do(func() {
		expvar.Publish("telemetry", expvar.Func(func() any { return r.Snapshot() }))
	})
}
