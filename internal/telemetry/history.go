package telemetry

import (
	"sync"
	"time"
)

// HistoryStatusName is the registry status key a started History publishes
// its dump under; /debug/metrics/history serves it.
const HistoryStatusName = "metrics_history"

// HistorySample is one periodic snapshot of the registry's counters and
// gauge values.
type HistorySample struct {
	UnixNs   int64            `json:"unix_ns"`
	Counters map[string]int64 `json:"counters"`
	Gauges   map[string]int64 `json:"gauges"`
}

// HistoryDump is the metrics-history plane's wire format: the retained
// samples oldest-first plus per-second rates derived from consecutive
// counter deltas — what `bitmapctl top` renders as sparklines.
type HistoryDump struct {
	IntervalNs int64 `json:"interval_ns"`
	Capacity   int   `json:"capacity"`
	// Cursor is the monotonic count of samples taken since the history
	// started (it keeps counting past ring wraparound). The profiling
	// collector stamps each profile snapshot with this cursor, so a
	// profile aligns with the metrics window it was captured in.
	Cursor  uint64          `json:"cursor"`
	Samples []HistorySample `json:"samples"`
	// Rates maps counter name → per-second rate between consecutive
	// samples (len(Samples)-1 points). A counter reset — a registry swap,
	// an index Recode, a process restart behind the same scrape target —
	// makes the raw delta negative; following the Prometheus convention
	// the new value is treated as the growth since the reset, so rates
	// never go negative and post-reset traffic is not swallowed.
	Rates map[string][]float64 `json:"rates,omitempty"`
}

// History samples a registry's counters and gauges into a fixed ring at a
// periodic interval, giving the debug surface a short metric history —
// hit-rates and scan-rates over the last few minutes — without an
// external scraper. Start it with StartHistory; tests drive Sample
// directly for determinism.
type History struct {
	reg      *Registry
	interval time.Duration

	mu      sync.Mutex
	samples []HistorySample // ring storage
	next    int             // next write position
	full    bool
	cursor  uint64 // monotonic samples taken (never wraps with the ring)

	stop     chan struct{}
	stopOnce sync.Once
}

// NewHistory builds an unstarted history ring over reg (capacity < 2 is
// raised to 2 — rates need consecutive samples; interval <= 0 defaults to
// one second).
func NewHistory(reg *Registry, interval time.Duration, capacity int) *History {
	if capacity < 2 {
		capacity = 2
	}
	if interval <= 0 {
		interval = time.Second
	}
	return &History{
		reg:      reg,
		interval: interval,
		samples:  make([]HistorySample, capacity),
		stop:     make(chan struct{}),
	}
}

// StartHistory builds a history ring, publishes it as the registry's
// "metrics_history" status provider (served at /debug/metrics/history),
// and starts the periodic sampler. Stop it with Stop.
func StartHistory(reg *Registry, interval time.Duration, capacity int) *History {
	h := NewHistory(reg, interval, capacity)
	reg.PublishStatus(HistoryStatusName, func() any { return h.Dump() })
	go h.run()
	return h
}

func (h *History) run() {
	tick := time.NewTicker(h.interval)
	defer tick.Stop()
	h.Sample()
	for {
		select {
		case <-tick.C:
			h.Sample()
		case <-h.stop:
			return
		}
	}
}

// Sample appends one snapshot to the ring now. Safe for concurrent use.
func (h *History) Sample() {
	snap := h.reg.Snapshot()
	s := HistorySample{
		UnixNs:   time.Now().UnixNano(),
		Counters: snap.Counters,
		Gauges:   make(map[string]int64, len(snap.Gauges)),
	}
	for name, g := range snap.Gauges {
		s.Gauges[name] = g.Value
	}
	h.mu.Lock()
	h.samples[h.next] = s
	h.next++
	h.cursor++
	if h.next == len(h.samples) {
		h.next, h.full = 0, true
	}
	h.mu.Unlock()
}

// Cursor returns the monotonic count of samples taken so far. Profile
// snapshots record it to correlate with the metrics-history window.
// Nil-safe.
func (h *History) Cursor() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cursor
}

// Dump returns the retained samples oldest-first with derived per-second
// counter rates. Nil-safe.
func (h *History) Dump() HistoryDump {
	if h == nil {
		return HistoryDump{}
	}
	h.mu.Lock()
	n := h.next
	if h.full {
		n = len(h.samples)
	}
	out := HistoryDump{
		IntervalNs: h.interval.Nanoseconds(),
		Capacity:   len(h.samples),
		Cursor:     h.cursor,
		Samples:    make([]HistorySample, 0, n),
	}
	if h.full {
		out.Samples = append(out.Samples, h.samples[h.next:]...)
		out.Samples = append(out.Samples, h.samples[:h.next]...)
	} else {
		out.Samples = append(out.Samples, h.samples[:h.next]...)
	}
	h.mu.Unlock()
	if len(out.Samples) >= 2 {
		out.Rates = deriveRates(out.Samples)
	}
	return out
}

// Stop halts the periodic sampler (the published status provider keeps
// serving the frozen ring). Safe to call more than once; nil-safe.
func (h *History) Stop() {
	if h == nil {
		return
	}
	h.stopOnce.Do(func() { close(h.stop) })
}

// deriveRates computes per-second counter rates between consecutive
// samples for every counter present in the newest sample. A negative raw
// delta means the counter reset between the two samples (registry swap,
// process restart behind the same address); per the Prometheus rate()
// convention the post-reset value counts as the growth since the reset —
// the best lower bound available — and the rate is clamped at zero, so
// `bitmapctl top` sparklines never dip below the axis.
func deriveRates(samples []HistorySample) map[string][]float64 {
	last := samples[len(samples)-1].Counters
	rates := make(map[string][]float64, len(last))
	for name := range last {
		series := make([]float64, len(samples)-1)
		for i := 1; i < len(samples); i++ {
			dt := float64(samples[i].UnixNs-samples[i-1].UnixNs) / 1e9
			if dt <= 0 {
				continue
			}
			cur := float64(samples[i].Counters[name])
			d := cur - float64(samples[i-1].Counters[name])
			if d < 0 {
				d = cur // counter reset: growth restarts from zero
			}
			if d < 0 {
				d = 0
			}
			series[i-1] = d / dt
		}
		rates[name] = series
	}
	return rates
}
