package telemetry

import (
	"math/bits"
	"sync"
	"time"
)

// Histogram bucketing: values in [0,16) are exact; larger values land in
// log-scaled buckets keeping the top 4 bits below the leading 1, so any
// bucket's width is at most 1/16 (6.25%) of its lower edge. That bounds the
// error of every exported quantile, which is what the accuracy tests
// assert. Values are int64 because everything recorded here is a duration
// in nanoseconds or a size in bytes; negatives clamp to bucket zero.
const (
	histShards  = 8
	exactLimit  = 16 // values below this get exact buckets
	subBits     = 4  // resolution bits below the leading 1
	subBuckets  = 1 << subBits
	histBuckets = exactLimit + (63-subBits)*subBuckets
)

// Histogram is a lock-striped, log-bucketed distribution of int64 samples.
// Recording locks one of 8 shards chosen by a hash of the value, so
// concurrent recorders of different values rarely contend; snapshots merge
// all shards. Nil-safe: Record on a nil handle is a no-op.
type Histogram struct {
	name   string
	shards [histShards]histShard

	// Exemplars: one slot per value magnitude band (8 bits of bit-length
	// each), holding the most recent trace-ID-stamped sample in that band.
	// Only RecordExemplar calls with a non-empty trace ID touch them, so
	// untraced recording pays nothing.
	exMu sync.Mutex
	ex   [exemplarSlots]Exemplar
}

// exemplarSlots bands the int64 value range by bit length (8 bits per
// slot), so exemplars spread across magnitudes — for latencies that is
// roughly sub-µs, µs, ms, s bands — instead of the newest sample evicting
// everything.
const exemplarSlots = 8

// Exemplar links one recorded sample to the trace it came from — the
// OpenMetrics exposition attaches it to the histogram bucket the value
// falls in, closing the metrics→trace loop.
type Exemplar struct {
	Value   int64  `json:"value"`
	TraceID string `json:"trace_id"`
	UnixNs  int64  `json:"unix_ns"`
}

// exemplarSlot maps a value to its magnitude band.
func exemplarSlot(v int64) int {
	if v <= 0 {
		return 0
	}
	return (bits.Len64(uint64(v)) - 1) / 8
}

// RecordExemplar adds one sample like Record and, when traceID is
// non-empty, remembers the (value, trace ID) pair as the exemplar for the
// value's magnitude band. Nil-safe; with an empty traceID it is exactly
// Record.
func (h *Histogram) RecordExemplar(v int64, traceID string) {
	if h == nil {
		return
	}
	h.Record(v)
	if traceID == "" {
		return
	}
	slot := exemplarSlot(v)
	h.exMu.Lock()
	h.ex[slot] = Exemplar{Value: v, TraceID: traceID, UnixNs: time.Now().UnixNano()}
	h.exMu.Unlock()
}

// exemplars returns the populated exemplar slots, ascending by value.
func (h *Histogram) exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	var out []Exemplar
	h.exMu.Lock()
	for _, e := range h.ex {
		if e.TraceID != "" {
			out = append(out, e)
		}
	}
	h.exMu.Unlock()
	return out
}

type histShard struct {
	mu      sync.Mutex
	count   int64
	sum     int64
	min     int64
	max     int64
	buckets [histBuckets]int64
	_       [32]byte // pad shards apart to avoid false sharing
}

func newHistogram(name string) *Histogram {
	return &Histogram{name: name}
}

// Name returns the histogram's registry name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v int64) int {
	if v < exactLimit {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	b := bits.Len64(uint64(v))                           // ≥ 5 here
	sub := int(v>>(uint(b)-1-subBits)) &^ (1 << subBits) // top subBits bits below the leading 1
	return exactLimit + (b-1-subBits)*subBuckets + sub
}

// bucketBounds returns the inclusive [lo, hi] value range of a bucket.
func bucketBounds(idx int) (lo, hi int64) {
	if idx < exactLimit {
		return int64(idx), int64(idx)
	}
	idx -= exactLimit
	shift := uint(idx / subBuckets) // = bitlen-1-subBits
	sub := int64(idx % subBuckets)
	lo = (int64(subBuckets) + sub) << shift
	hi = lo + (int64(1) << shift) - 1
	return lo, hi
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	// Cheap splitmix-style hash spreads concurrent recorders of different
	// values across shards; identical values share a shard, which is fine —
	// they would contend on the same bucket anyway.
	s := &h.shards[(uint64(v)*0x9E3779B97F4A7C15)>>61]
	s.mu.Lock()
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if s.count == 0 || v > s.max {
		s.max = v
	}
	s.count++
	s.sum += v
	s.buckets[bucketOf(v)]++
	s.mu.Unlock()
}

// HistogramSnapshot is a merged, immutable view of a histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	// Exemplars are trace-linked samples, ascending by value, one per
	// populated magnitude band (see RecordExemplar).
	Exemplars []Exemplar `json:"exemplars,omitempty"`

	buckets []int64
}

// Snapshot merges all shards into one consistent-enough view. (Shards are
// locked one at a time; a snapshot taken during concurrent recording may
// straddle them, which is acceptable for monitoring.)
func (h *Histogram) Snapshot() HistogramSnapshot {
	var snap HistogramSnapshot
	if h == nil {
		return snap
	}
	merged := make([]int64, histBuckets)
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		if s.count > 0 {
			if snap.Count == 0 || s.min < snap.Min {
				snap.Min = s.min
			}
			if snap.Count == 0 || s.max > snap.Max {
				snap.Max = s.max
			}
			snap.Count += s.count
			snap.Sum += s.sum
			for b, c := range s.buckets {
				merged[b] += c
			}
		}
		s.mu.Unlock()
	}
	if snap.Count == 0 {
		return snap
	}
	snap.Mean = float64(snap.Sum) / float64(snap.Count)
	snap.buckets = merged
	snap.P50 = snap.Quantile(0.50)
	snap.P90 = snap.Quantile(0.90)
	snap.P99 = snap.Quantile(0.99)
	snap.Exemplars = h.exemplars()
	return snap
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) as the midpoint of the
// bucket the quantile sample falls into; the true sample is guaranteed
// inside that bucket, so the relative error is bounded by the bucket width
// (≤ 6.25% beyond the exact range). Returns 0 on an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || s.buckets == nil {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(s.Count-1)) + 1 // 1-based, clamped to [1, Count]
	cum := int64(0)
	for b, c := range s.buckets {
		cum += c
		if cum >= rank {
			lo, hi := bucketBounds(b)
			mid := lo + (hi-lo)/2
			// Clamp to observed extremes so quantiles never leave [Min, Max].
			if mid < s.Min {
				mid = s.Min
			}
			if mid > s.Max {
				mid = s.Max
			}
			return mid
		}
	}
	return s.Max
}

// Quantile is a convenience that snapshots and queries in one call.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	return h.Snapshot().Quantile(q)
}
