package telemetry

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// promParse is a minimal independent validator of the text exposition
// format: every non-comment line must be `name{labels} value` or
// `name value`, and every sample's base name must have been declared by a
// preceding `# TYPE` line (summaries declare the bare name; their _sum and
// _count suffixes ride on it).
func promParse(t *testing.T, text string) map[string]string {
	t.Helper()
	types := map[string]string{}
	samples := 0
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		rest := line[len(name):]
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, "}")
			if end < 0 {
				t.Fatalf("line %d: unterminated label set in %q", ln+1, line)
			}
			rest = rest[end+1:]
		}
		var value float64
		if _, err := fmt.Sscanf(strings.TrimSpace(rest), "%g", &value); err != nil {
			t.Fatalf("line %d: unparseable value in %q: %v", ln+1, line, err)
		}
		base := name
		for _, suffix := range []string{"_sum", "_count", "_bucket"} {
			if cut, ok := strings.CutSuffix(name, suffix); ok && types[cut] != "" {
				base = cut
				break
			}
		}
		if types[base] == "" {
			t.Fatalf("line %d: sample %q has no preceding # TYPE", ln+1, name)
		}
		if !strings.HasPrefix(name, "insitubits_") {
			t.Fatalf("line %d: metric %q missing insitubits_ prefix", ln+1, name)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("no samples in exposition output")
	}
	return types
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("query.count").Add(7)
	r.Gauge("queue.depth").Set(3)
	h := r.Histogram("query.latency_ns")
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 1000)
	}
	tr := NewTracer()
	func() {
		s := tr.Start("run")
		defer s.End()
		c := s.Child("sim\"ulate") // exercises label escaping
		c.End()
	}()
	r.AttachTracer("pipeline", tr)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	types := promParse(t, text)

	if types["insitubits_query_count_total"] != "counter" {
		t.Errorf("query.count not exposed as counter; types=%v", types)
	}
	if types["insitubits_queue_depth"] != "gauge" || types["insitubits_queue_depth_max"] != "gauge" {
		t.Errorf("queue.depth gauge/max missing; types=%v", types)
	}
	if types["insitubits_query_latency_ns"] != "summary" {
		t.Errorf("latency histogram not exposed as summary; types=%v", types)
	}
	for _, want := range []string{
		"insitubits_query_count_total 7",
		`quantile="0.99"`,
		"insitubits_query_latency_ns_count 100",
		`insitubits_span_count_total{tracer="pipeline",path="run"} 1`,
		`path="run/sim\"ulate"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("nil registry wrote %q", sb.String())
	}
}

func TestMetricsEndpointAndShutdown(t *testing.T) {
	r := NewRegistry()
	r.Counter("store.bytes_written").Add(42)
	d, err := r.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + d.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("wrong content type %q", ct)
	}
	promParse(t, string(body))
	if !strings.Contains(string(body), "insitubits_store_bytes_written_total 42") {
		t.Errorf("counter missing from /metrics:\n%s", body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The listener must be released: the same address can be rebound.
	d2, err := r.ServeDebug(d.Addr)
	if err != nil {
		t.Fatalf("rebind after shutdown: %v", err)
	}
	d2.Close()

	// Nil-safety of the lifecycle methods.
	var nilSrv *DebugServer
	if err := nilSrv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := nilSrv.Close(); err != nil {
		t.Fatal(err)
	}
}
