package telemetry

import (
	"context"
	"testing"
)

// The disabled path must be no-op cheap: every instrument method on a nil
// handle is a nil-check and a return, so instrumented code paths cost a
// branch when telemetry is off. These benchmarks pin that down; the
// whole-pipeline overhead guard lives in internal/bitvec (the hottest
// instrumented package) as TestInstrumentationOverhead.

func BenchmarkNoopCounterInc(b *testing.B) {
	var r *Registry
	c := r.Counter("noop")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNoopHistogramRecord(b *testing.B) {
	var r *Registry
	h := r.Histogram("noop")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}

func BenchmarkNoopSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Start("run").End()
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("live")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("live")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewRegistry().Histogram("live")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}

func BenchmarkHistogramRecordParallel(b *testing.B) {
	h := NewRegistry().Histogram("live")
	b.RunParallel(func(pb *testing.PB) {
		v := int64(0)
		for pb.Next() {
			h.Record(v)
			v += 6151 // spread across shards
		}
	})
}

func BenchmarkSpanChildEnd(b *testing.B) {
	tr := NewTracer()
	root := tr.Start("run")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root.Child("phase").End()
	}
	root.End()
}

func BenchmarkGaugeAdd(b *testing.B) {
	g := NewRegistry().Gauge("live")
	for i := 0; i < b.N; i++ {
		g.Add(1)
		g.Add(-1)
	}
}

// BenchmarkTraceStartSpanDisabled is the identity-tracing disabled path:
// no recorder installed, StartSpan must reduce to one atomic pointer load.
func BenchmarkTraceStartSpanDisabled(b *testing.B) {
	SetTraceRecorder(nil)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "q")
		sp.End()
	}
}

// BenchmarkTraceChildEnd is one identity child span open/close inside an
// already-traced request (the per-operator cost when tracing is on).
func BenchmarkTraceChildEnd(b *testing.B) {
	rec := NewTraceRecorder(TraceConfig{MaxSpans: 8})
	_, root := rec.StartTrace(context.Background(), "request")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root.Child("op").End()
	}
	root.End()
}
