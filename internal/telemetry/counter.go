package telemetry

import "sync/atomic"

// Counter is a monotonically increasing atomic counter. All methods are
// nil-safe no-ops on a nil receiver, so a disabled handle costs one
// predictable branch.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the counter's registry name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative; negative deltas belong on a Gauge).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value with a high-watermark: Set and Add
// track the maximum value ever observed, which is how the separate-cores
// queue reports its peak depth. Nil-safe like Counter.
type Gauge struct {
	name string
	v    atomic.Int64
	max  atomic.Int64
}

// Name returns the gauge's registry name.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Set stores v and raises the watermark if needed.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.raise(v)
}

// Add adjusts the value by delta (may be negative) and returns the new
// value, raising the watermark if needed.
func (g *Gauge) Add(delta int64) int64 {
	if g == nil {
		return 0
	}
	v := g.v.Add(delta)
	g.raise(v)
	return v
}

func (g *Gauge) raise(v int64) {
	for {
		cur := g.max.Load()
		if v <= cur || g.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-watermark (0 on a nil handle).
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}
