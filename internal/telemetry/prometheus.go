package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition (format version 0.0.4), stdlib-only. Metric
// names are the registry names with every non-[a-zA-Z0-9_] character
// mapped to '_', prefixed "insitubits_":
//
//	counters    insitubits_<name>_total                  counter
//	gauges      insitubits_<name>                        gauge
//	            insitubits_<name>_max                    gauge (watermark)
//	histograms  insitubits_<name>{quantile="0.5|0.9|0.99"}  summary
//	            insitubits_<name>_sum / _count
//	spans       insitubits_span_count_total{tracer,path}    counter
//	            insitubits_span_duration_ns_total{tracer,path}
//
// docs/OBSERVABILITY.md carries the full catalog.

const promPrefix = "insitubits_"

// promName sanitizes a registry name into a Prometheus metric name.
func promName(name string) string {
	var sb strings.Builder
	sb.WriteString(promPrefix)
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promLabel escapes a label value per the exposition format.
func promLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// WritePrometheus writes a point-in-time snapshot of the registry in
// Prometheus text exposition format v0.0.4. Nil-safe (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WritePrometheus renders the snapshot in text exposition format.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := &errWriter{w: w}
	if len(s.BuildInfo) > 0 {
		m := promPrefix + "build_info"
		labels := make([]string, 0, len(s.BuildInfo))
		for _, k := range names(s.BuildInfo) {
			labels = append(labels, fmt.Sprintf("%s=\"%s\"", promName(k)[len(promPrefix):], promLabel(s.BuildInfo[k])))
		}
		bw.printf("# TYPE %s gauge\n%s{%s} 1\n", m, m, strings.Join(labels, ","))
	}
	for _, name := range names(s.Counters) {
		m := promName(name) + "_total"
		bw.printf("# TYPE %s counter\n%s %d\n", m, m, s.Counters[name])
	}
	for _, name := range names(s.Gauges) {
		g := s.Gauges[name]
		m := promName(name)
		bw.printf("# TYPE %s gauge\n%s %d\n", m, m, g.Value)
		bw.printf("# TYPE %s_max gauge\n%s_max %d\n", m, m, g.Max)
	}
	for _, name := range names(s.Histograms) {
		h := s.Histograms[name]
		m := promName(name)
		bw.printf("# TYPE %s summary\n", m)
		bw.printf("%s{quantile=\"0.5\"} %d\n", m, h.P50)
		bw.printf("%s{quantile=\"0.9\"} %d\n", m, h.P90)
		bw.printf("%s{quantile=\"0.99\"} %d\n", m, h.P99)
		bw.printf("%s_sum %d\n", m, h.Sum)
		bw.printf("%s_count %d\n", m, h.Count)
	}
	if len(s.Spans) > 0 {
		countMetric := promPrefix + "span_count_total"
		durMetric := promPrefix + "span_duration_ns_total"
		bw.printf("# TYPE %s counter\n# TYPE %s counter\n", countMetric, durMetric)
		tracers := make([]string, 0, len(s.Spans))
		for t := range s.Spans {
			tracers = append(tracers, t)
		}
		sort.Strings(tracers)
		for _, t := range tracers {
			for _, root := range s.Spans[t] {
				writePromSpan(bw, countMetric, durMetric, t, "", root)
			}
		}
	}
	return bw.err
}

func writePromSpan(bw *errWriter, countMetric, durMetric, tracer, prefix string, sp SpanSnapshot) {
	path := prefix + sp.Name
	labels := fmt.Sprintf("{tracer=\"%s\",path=\"%s\"}", promLabel(tracer), promLabel(path))
	bw.printf("%s%s %d\n", countMetric, labels, sp.Count)
	bw.printf("%s%s %d\n", durMetric, labels, sp.TotalNs)
	for _, c := range sp.Children {
		writePromSpan(bw, countMetric, durMetric, tracer, path+"/", c)
	}
}

// errWriter latches the first write error so render code stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
