package telemetry

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// TestHistoryRingAndRates drives Sample directly (no timer) and checks
// ring wraparound, oldest-first ordering, and derived counter rates.
func TestHistoryRingAndRates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test.ops")
	g := reg.Gauge("test.depth")
	h := NewHistory(reg, time.Second, 4)
	for i := 0; i < 6; i++ {
		c.Add(10)
		g.Set(int64(i))
		h.Sample()
	}
	d := h.Dump()
	if d.Capacity != 4 || len(d.Samples) != 4 {
		t.Fatalf("capacity=%d samples=%d, want 4/4", d.Capacity, len(d.Samples))
	}
	// The ring kept the last 4 of 6 samples: counters 30,40,50,60.
	for i, s := range d.Samples {
		if want := int64(30 + 10*i); s.Counters["test.ops"] != want {
			t.Errorf("sample %d counter = %d, want %d", i, s.Counters["test.ops"], want)
		}
		if want := int64(2 + i); s.Gauges["test.depth"] != want {
			t.Errorf("sample %d gauge = %d, want %d", i, s.Gauges["test.depth"], want)
		}
		if i > 0 && s.UnixNs < d.Samples[i-1].UnixNs {
			t.Errorf("samples out of order at %d", i)
		}
	}
	series, ok := d.Rates["test.ops"]
	if !ok || len(series) != 3 {
		t.Fatalf("rates = %v", d.Rates)
	}
	for i, r := range series {
		if r <= 0 {
			t.Errorf("rate %d = %g, want > 0 (counter grows every sample)", i, r)
		}
	}
	if d.Cursor != 6 {
		t.Errorf("cursor = %d, want 6 (monotonic past wraparound)", d.Cursor)
	}
	if h.Cursor() != 6 {
		t.Errorf("Cursor() = %d, want 6", h.Cursor())
	}
	// A counter reset (100 → 5) must read as post-reset growth (+5 over
	// 1s → 5/s), never a negative rate.
	reset := deriveRates([]HistorySample{
		{UnixNs: 1e9, Counters: map[string]int64{"x": 100}},
		{UnixNs: 2e9, Counters: map[string]int64{"x": 5}},
		{UnixNs: 3e9, Counters: map[string]int64{"x": 5}},
	})
	if reset["x"][0] != 5 {
		t.Errorf("reset rate = %g, want 5 (growth since reset)", reset["x"][0])
	}
	if reset["x"][1] != 0 {
		t.Errorf("steady post-reset rate = %g, want 0", reset["x"][1])
	}
	var nilH *History
	if dump := nilH.Dump(); dump.Capacity != 0 {
		t.Error("nil history dump not empty")
	}
	if nilH.Cursor() != 0 {
		t.Error("nil history cursor not zero")
	}
	nilH.Stop()
}

// TestHistoryEndpoint covers StartHistory end to end: the provider is
// published, served at /debug/metrics/history, and embedded sparkline
// inputs (interval, samples, rates) unmarshal from the wire shape.
func TestHistoryEndpoint(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("qlog.records")
	srv, err := reg.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Before StartHistory the endpoint 404s.
	resp, err := http.Get("http://" + srv.Addr + "/debug/metrics/history")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pre-start status = %d, want 404", resp.StatusCode)
	}

	h := StartHistory(reg, time.Hour, 8) // timer never fires in-test
	defer h.Stop()
	c.Add(3)
	h.Sample()
	c.Add(3)
	h.Sample()

	resp, err = http.Get("http://" + srv.Addr + "/debug/metrics/history")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var d HistoryDump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	// run() records an initial sample before the ticker, so expect >= 2.
	if len(d.Samples) < 2 {
		t.Fatalf("samples = %d, want >= 2", len(d.Samples))
	}
	if d.IntervalNs != time.Hour.Nanoseconds() {
		t.Errorf("interval = %d", d.IntervalNs)
	}
	if _, ok := d.Rates["qlog.records"]; !ok {
		t.Errorf("rates missing qlog.records: %v", d.Rates)
	}
	last := d.Samples[len(d.Samples)-1]
	if last.Counters["qlog.records"] != 6 {
		t.Errorf("last sample counter = %d, want 6", last.Counters["qlog.records"])
	}
}
