package telemetry

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// DebugServer is the live-introspection HTTP endpoint the CLIs start
// behind -debug-addr. It serves:
//
//	/telemetry             the registry snapshot as JSON
//	/metrics               the snapshot in Prometheus text exposition format
//	                       (OpenMetrics with exemplars when the request
//	                       Accepts application/openmetrics-text)
//	/healthz               liveness plus run/qlog/cache component status
//	/debug/traces          recent kept traces; ?id= fetches one (&format=chrome|otlp|json)
//	/debug/run             the "run" live-status provider (the in-situ pipeline)
//	/debug/cache           the "cache" live-status provider (the bitmap cache)
//	/debug/metrics/history the metrics-history ring (StartHistory) with derived rates
//	/debug/vars            expvar (includes the "telemetry" var)
//	/debug/pprof/          the standard pprof profiles
type DebugServer struct {
	// Addr is the bound address (useful when the caller passed ":0").
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// ServeDebug binds addr and serves the debug endpoints for this registry in
// a background goroutine until Close is called.
func (r *Registry) ServeDebug(addr string) (*DebugServer, error) {
	if r == nil {
		return nil, fmt.Errorf("telemetry: ServeDebug on nil registry")
	}
	r.PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/telemetry", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		data, err := r.MarshalJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(data)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if wantsOpenMetrics(req) {
			w.Header().Set("Content-Type", openMetricsContentType)
			r.WriteOpenMetrics(w) //nolint:errcheck // best-effort over HTTP
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // best-effort over HTTP
	})
	// /healthz embeds the published live-status providers — the in-situ
	// run (index generation, journal state), the qlog writer's health,
	// and the bitmap cache — so liveness probes see component state, not
	// a bare 200.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		out := map[string]any{
			"status":         "ok",
			"uptime_seconds": int64(time.Since(processStart).Seconds()),
		}
		for _, name := range []string{"run", "qlog", "cache"} {
			if v, ok := r.StatusValue(name); ok {
				out[name] = v
			}
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/debug/traces", handleTraces)
	mux.HandleFunc("/debug/run", func(w http.ResponseWriter, _ *http.Request) {
		v, ok := r.StatusValue("run")
		if !ok {
			http.Error(w, "no run status published", http.StatusNotFound)
			return
		}
		writeJSON(w, v)
	})
	mux.HandleFunc("/debug/cache", func(w http.ResponseWriter, _ *http.Request) {
		v, ok := r.StatusValue("cache")
		if !ok {
			http.Error(w, "no cache status published", http.StatusNotFound)
			return
		}
		writeJSON(w, v)
	})
	mux.HandleFunc("/debug/metrics/history", func(w http.ResponseWriter, _ *http.Request) {
		v, ok := r.StatusValue(HistoryStatusName)
		if !ok {
			http.Error(w, "no metrics history started (StartHistory)", http.StatusNotFound)
			return
		}
		writeJSON(w, v)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		// Late-registered debug handlers (the profiling collector's
		// /debug/profiles) are looked up per request, so they work no
		// matter whether the collector started before or after the
		// server.
		if h := r.DebugHandler(req.URL.Path); h != nil {
			h.ServeHTTP(w, req)
			return
		}
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "insitubits debug server\n\n/telemetry\n/metrics\n/healthz\n/debug/traces\n/debug/run\n/debug/cache\n/debug/metrics/history\n/debug/vars\n/debug/pprof/\n")
		for _, p := range r.debugHandlerPaths() {
			fmt.Fprintf(w, "%s\n", p)
		}
	})
	r.ensureBuildInfo()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug server: %w", err)
	}
	d := &DebugServer{Addr: ln.Addr().String(), srv: &http.Server{Handler: mux}, ln: ln}
	go d.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return d, nil
}

// Close stops the server immediately, dropping in-flight requests, and
// releases the listener. Nil-safe.
func (d *DebugServer) Close() error {
	if d == nil || d.srv == nil {
		return nil
	}
	return d.srv.Close()
}

// processStart anchors /healthz uptime.
var processStart = time.Now()

// debugHandler is the handler type extra debug routes register as (the
// alias keeps the Registry struct definition free of an http import).
type debugHandler = http.Handler

// RegisterDebugHandler mounts an extra handler on the registry's debug
// server under path (e.g. "/debug/profiles"). Registration is dynamic:
// the route serves whether it was registered before or after ServeDebug.
// A nil handler unregisters the path. Nil-safe.
func (r *Registry) RegisterDebugHandler(path string, h http.Handler) {
	if r == nil || path == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h == nil {
		delete(r.handlers, path)
		return
	}
	if r.handlers == nil {
		r.handlers = make(map[string]debugHandler)
	}
	r.handlers[path] = h
}

// DebugHandler returns the handler registered for path, or nil. Nil-safe.
func (r *Registry) DebugHandler(path string) http.Handler {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.handlers[path]
}

// debugHandlerPaths lists the registered extra routes, sorted.
func (r *Registry) debugHandlerPaths() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return names(r.handlers)
}

// wantsOpenMetrics reports whether a /metrics request negotiated the
// OpenMetrics exposition: an Accept header naming
// application/openmetrics-text, or the explicit ?format=openmetrics
// escape hatch for curl.
func wantsOpenMetrics(req *http.Request) bool {
	if req.URL.Query().Get("format") == "openmetrics" {
		return true
	}
	return strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(data) //nolint:errcheck // best-effort over HTTP
}

// ensureBuildInfo fills in default build-identity labels (go version, vcs
// revision when embedded, module version) without overriding labels the
// program already set.
func (r *Registry) ensureBuildInfo() {
	defaults := map[string]string{"goversion": runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			defaults["version"] = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				defaults["revision"] = s.Value
			}
		}
	}
	for k := range r.BuildInfo() {
		delete(defaults, k)
	}
	r.SetBuildInfo(defaults)
}

// handleTraces serves /debug/traces off the process-wide trace recorder:
// with no query parameters, a JSON listing of kept traces (newest first)
// plus recorder stats; with ?id=, the full trace in the requested
// &format= — "json" (native, default), "chrome" (trace-event JSON for
// Perfetto / chrome://tracing), or "otlp" (OTLP-shaped JSON).
func handleTraces(w http.ResponseWriter, req *http.Request) {
	rec := DefaultTraceRecorder()
	if rec == nil {
		http.Error(w, "tracing disabled (no trace recorder installed)", http.StatusNotFound)
		return
	}
	id := req.URL.Query().Get("id")
	if id == "" {
		traces := rec.Traces()
		type summary struct {
			TraceID string `json:"trace_id"`
			Name    string `json:"name"`
			StartNs int64  `json:"start_unix_nano"`
			DurNs   int64  `json:"duration_ns"`
			Slow    bool   `json:"slow"`
			Spans   int    `json:"spans"`
		}
		out := struct {
			Stats  TraceStats `json:"stats"`
			Traces []summary  `json:"traces"`
		}{Stats: rec.Stats(), Traces: make([]summary, 0, len(traces))}
		for _, t := range traces {
			out.Traces = append(out.Traces, summary{
				TraceID: t.TraceID, Name: t.Name, StartNs: t.StartNs,
				DurNs: t.DurNs, Slow: t.Slow, Spans: len(t.Spans),
			})
		}
		writeJSON(w, out)
		return
	}
	t := rec.Get(id)
	if t == nil {
		http.Error(w, "trace not found (evicted or never kept)", http.StatusNotFound)
		return
	}
	var data []byte
	var err error
	switch format := req.URL.Query().Get("format"); format {
	case "", "json":
		data, err = json.Marshal(t)
	case "chrome":
		data, err = t.ChromeTrace()
	case "otlp":
		data, err = t.OTLPJSON()
	default:
		http.Error(w, "unknown format "+format+" (want json, chrome, or otlp)", http.StatusBadRequest)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //nolint:errcheck // best-effort over HTTP
}

// Shutdown stops accepting new connections, waits for in-flight requests
// to finish (bounded by ctx), and releases the listener — the graceful
// counterpart to Close for tests and signal-driven -hold runs. Nil-safe.
func (d *DebugServer) Shutdown(ctx context.Context) error {
	if d == nil || d.srv == nil {
		return nil
	}
	return d.srv.Shutdown(ctx)
}
