package telemetry

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugServer is the live-introspection HTTP endpoint the CLIs start
// behind -debug-addr. It serves:
//
//	/telemetry     the registry snapshot as JSON
//	/metrics       the snapshot in Prometheus text exposition format
//	/debug/vars    expvar (includes the "telemetry" var)
//	/debug/pprof/  the standard pprof profiles
type DebugServer struct {
	// Addr is the bound address (useful when the caller passed ":0").
	Addr string
	srv  *http.Server
	ln   net.Listener
}

// ServeDebug binds addr and serves the debug endpoints for this registry in
// a background goroutine until Close is called.
func (r *Registry) ServeDebug(addr string) (*DebugServer, error) {
	if r == nil {
		return nil, fmt.Errorf("telemetry: ServeDebug on nil registry")
	}
	r.PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/telemetry", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		data, err := r.MarshalJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(data)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // best-effort over HTTP
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "insitubits debug server\n\n/telemetry\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug server: %w", err)
	}
	d := &DebugServer{Addr: ln.Addr().String(), srv: &http.Server{Handler: mux}, ln: ln}
	go d.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return d, nil
}

// Close stops the server immediately, dropping in-flight requests, and
// releases the listener. Nil-safe.
func (d *DebugServer) Close() error {
	if d == nil || d.srv == nil {
		return nil
	}
	return d.srv.Close()
}

// Shutdown stops accepting new connections, waits for in-flight requests
// to finish (bounded by ctx), and releases the listener — the graceful
// counterpart to Close for tests and signal-driven -hold runs. Nil-safe.
func (d *DebugServer) Shutdown(ctx context.Context) error {
	if d == nil || d.srv == nil {
		return nil
	}
	return d.srv.Shutdown(ctx)
}
