// Package telemetry is the repository's zero-dependency observability
// layer: atomic counters and gauges, lock-striped latency/size histograms
// with quantile export, and a span-based phase tracer with hierarchical
// timers. A Registry names and owns a set of instruments and exports them
// as JSON, expvar, or over an optional debug HTTP server (expvar + pprof),
// so a running in-situ pipeline or query workload can be inspected live.
//
// Design rules, in order:
//
//  1. Disabled instrumentation must cost (almost) nothing. Every handle
//     type (*Counter, *Gauge, *Histogram, *Span, *Tracer) is nil-safe: all
//     methods on a nil receiver are no-ops, so packages keep plain handle
//     variables and never branch on an "enabled" flag. The budget —
//     enforced by BenchmarkOverheadGuard — is < 2% on the bitvec/index hot
//     loops.
//  2. Enabled instrumentation must stay off the hot path. Hot loops count
//     into plain struct fields (e.g. bitvec.Appender) and flush once per
//     built artifact; only coarse-grained events (a query, a span, a build)
//     touch shared atomics.
//  3. No dependencies beyond the standard library.
//
// The package-level Default registry is what the instrumented internal
// packages bind to at init; cheap programs never notice it, and the CLIs
// expose it behind -debug-addr.
package telemetry

import (
	"sort"
	"sync"
)

// Registry names and owns a coherent set of instruments. The zero value is
// not usable; call NewRegistry. A nil *Registry is a valid "disabled"
// registry: every lookup returns a nil (no-op) handle.
type Registry struct {
	mu        sync.RWMutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	tracers   map[string]*Tracer
	status    map[string]func() any
	buildInfo map[string]string
	updaters  []func()
	handlers  map[string]debugHandler // extra debug-server routes (see debug.go)
}

// Default is the process-wide registry the instrumented packages (bitvec,
// index, insitu, query, store) bind to at init. Rebind a package with its
// SetTelemetry function to isolate or disable it.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		tracers:  make(map[string]*Tracer),
	}
}

// Counter returns (creating if needed) the named counter. Nil-safe: a nil
// registry returns a nil, no-op counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. Nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(name)
		r.hists[name] = h
	}
	return h
}

// AttachTracer registers (or replaces) a named tracer so its live span tree
// shows up in snapshots — the in-situ pipeline attaches a fresh tracer per
// run under "pipeline". Nil-safe: attaching to a nil registry is a no-op.
func (r *Registry) AttachTracer(name string, t *Tracer) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.tracers[name] = t
	r.mu.Unlock()
}

// Tracer returns the named attached tracer, or nil.
func (r *Registry) Tracer(name string) *Tracer {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tracers[name]
}

// PublishStatus registers (or replaces) a named live-status provider: a
// function returning a JSON-marshalable value, called on demand by the
// debug server's /debug/run endpoint. The in-situ pipeline publishes its
// run status under "run". Nil-safe; a nil fn unregisters the name.
func (r *Registry) PublishStatus(name string, fn func() any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if fn == nil {
		delete(r.status, name)
		return
	}
	if r.status == nil {
		r.status = make(map[string]func() any)
	}
	r.status[name] = fn
}

// StatusValue evaluates the named status provider. Nil-safe.
func (r *Registry) StatusValue(name string) (any, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.RLock()
	fn := r.status[name]
	r.mu.RUnlock()
	if fn == nil {
		return nil, false
	}
	return fn(), true
}

// RegisterUpdater adds a hook that Snapshot runs before collecting, so
// pull-style sources (the runtime-metrics collector) can refresh their
// gauges right when a snapshot, scrape, or history sample is taken.
// Updaters must be fast and must not call Snapshot. Nil-safe.
func (r *Registry) RegisterUpdater(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.updaters = append(r.updaters, fn)
	r.mu.Unlock()
}

// runUpdaters invokes the registered pre-snapshot hooks.
func (r *Registry) runUpdaters() {
	if r == nil {
		return
	}
	r.mu.RLock()
	ups := r.updaters
	r.mu.RUnlock()
	for _, fn := range ups {
		fn()
	}
}

// SetBuildInfo merges static build-identity labels (version, go version,
// codec set, ...) exported as the insitubits_build_info gauge and in the
// JSON snapshot. Nil-safe.
func (r *Registry) SetBuildInfo(labels map[string]string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.buildInfo == nil {
		r.buildInfo = make(map[string]string, len(labels))
	}
	for k, v := range labels {
		r.buildInfo[k] = v
	}
}

// BuildInfo returns a copy of the build-identity labels. Nil-safe.
func (r *Registry) BuildInfo() map[string]string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.buildInfo) == 0 {
		return nil
	}
	out := make(map[string]string, len(r.buildInfo))
	for k, v := range r.buildInfo {
		out[k] = v
	}
	return out
}

// names returns the sorted keys of a map, for deterministic export.
func names[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
