package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"insitubits/internal/index"
	"insitubits/internal/insitu"
	"insitubits/internal/store"
)

// Entry is one served variable: an immutable, shared, read-only index
// loaded once per catalog generation. The index's own Generation() keys
// bitcache entries, so retiring an Entry invalidates exactly its cached
// bitmaps and nothing else.
type Entry struct {
	Name  string `json:"name"`
	Path  string `json:"path"`
	Step  int    `json:"step"` // manifest/journal step, -1 for plain files
	Bytes int64  `json:"bytes"`
	N     int    `json:"n"`
	Bins  int    `json:"bins"`
	Gen   uint64 `json:"generation"`

	X *index.Index `json:"-"`
}

// catalog is one immutable generation of the server's loaded indexes.
// Requests capture a single *catalog pointer at admission and use it for
// the whole request, so a concurrent reload can never serve one operand
// from the old generation and another from the new — the no-mixed-answer
// guarantee the chaos harness checks.
type catalog struct {
	gen     uint64 // server-side catalog generation, bumped per swap
	step    int    // newest committed step loaded, -1 for plain files
	source  string // the directory or file list the loader reads
	fprint  string // change fingerprint watchers compare (loadFingerprint)
	entries map[string]*Entry
	names   []string // sorted
}

// get resolves a variable name; the empty name resolves iff exactly one
// variable is served (the single-index convenience).
func (c *catalog) get(name string) (*Entry, error) {
	if c == nil || len(c.entries) == 0 {
		return nil, fmt.Errorf("serve: no indexes loaded")
	}
	if name == "" {
		if len(c.names) == 1 {
			return c.entries[c.names[0]], nil
		}
		return nil, fmt.Errorf("serve: %d variables served, request must name one of %s",
			len(c.names), strings.Join(c.names, ", "))
	}
	e, ok := c.entries[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown variable %q (serving %s)", name, strings.Join(c.names, ", "))
	}
	return e, nil
}

func newCatalog(entries []*Entry, step int, source, fprint string) *catalog {
	c := &catalog{step: step, source: source, fprint: fprint, entries: make(map[string]*Entry, len(entries))}
	for _, e := range entries {
		c.entries[e.Name] = e
		c.names = append(c.names, e.Name)
	}
	sort.Strings(c.names)
	return c
}

// loadIndexFile reads one .isbm container into an Entry.
func loadIndexFile(name, path string, step int) (*Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	x, err := store.ReadIndex(f)
	if err != nil {
		return nil, fmt.Errorf("serve: loading %s: %w", path, err)
	}
	return &Entry{
		Name: name, Path: path, Step: step, Bytes: st.Size(),
		N: x.N(), Bins: x.Bins(), Gen: x.Generation(), X: x,
	}, nil
}

// loadFiles builds a catalog from explicit "name=path" specs (a bare path
// takes its base name, extension stripped, as the variable name).
func loadFiles(specs []string) (*catalog, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("serve: no index files given")
	}
	var entries []*Entry
	seen := map[string]bool{}
	for _, spec := range specs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			path = spec
			name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		}
		if seen[name] {
			return nil, fmt.Errorf("serve: duplicate variable name %q", name)
		}
		seen[name] = true
		e, err := loadIndexFile(name, path, -1)
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	return newCatalog(entries, -1, strings.Join(specs, ","), filesFingerprint(entries)), nil
}

// filesFingerprint fingerprints an explicit file set by path and size,
// order-independently (Reload re-lists the specs in sorted-name order).
func filesFingerprint(entries []*Entry) string {
	parts := make([]string, 0, len(entries))
	for _, e := range entries {
		parts = append(parts, fmt.Sprintf("%s:%d", e.Path, e.Bytes))
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// loadDir builds a catalog from an in-situ run's output directory. The run
// journal is the source of truth while a run is live — its select records
// are the commit markers, appended only after the step's artifacts are
// durable — so the newest select record names exactly the files that are
// safe to serve mid-run. A finished run without a journal falls back to
// the manifest.
func loadDir(dir string) (*catalog, error) {
	fprint, err := dirFingerprint(dir)
	if err != nil {
		return nil, err
	}
	recs, _, jerr := insitu.ReadJournal(dir)
	if jerr == nil {
		var newest *insitu.JournalRecord
		for i := range recs {
			if recs[i].Kind == insitu.KindSelect {
				newest = &recs[i]
			}
		}
		if newest == nil {
			return nil, fmt.Errorf("serve: %s: journal has no committed step yet", dir)
		}
		var entries []*Entry
		for _, jf := range newest.Files {
			if !strings.HasSuffix(jf.Path, ".isbm") {
				return nil, fmt.Errorf("serve: %s holds %s summaries, not bitmap indexes (run with -method bitmaps)", dir, filepath.Ext(jf.Path))
			}
			e, err := loadIndexFile(jf.Var, filepath.Join(dir, jf.Path), newest.Step)
			if err != nil {
				return nil, err
			}
			entries = append(entries, e)
		}
		return newCatalog(entries, newest.Step, dir, fprint), nil
	}
	man, merr := insitu.ReadManifest(dir)
	if merr != nil {
		return nil, fmt.Errorf("serve: %s: no readable journal (%v) or manifest (%v)", dir, jerr, merr)
	}
	if len(man.Selected) == 0 {
		return nil, fmt.Errorf("serve: %s: manifest lists no selected steps", dir)
	}
	last := man.Selected[len(man.Selected)-1]
	var entries []*Entry
	for _, mf := range man.Files {
		if mf.Step != last {
			continue
		}
		if !strings.HasSuffix(mf.Path, ".isbm") {
			return nil, fmt.Errorf("serve: %s holds %s summaries, not bitmap indexes (run with -method bitmaps)", dir, filepath.Ext(mf.Path))
		}
		e, err := loadIndexFile(mf.Var, filepath.Join(dir, mf.Path), mf.Step)
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("serve: %s: no artifacts for newest step %d", dir, last)
	}
	return newCatalog(entries, last, dir, fprint), nil
}

// dirFingerprint captures the directory state a watcher polls: the journal
// grows by whole appended frames on every publish, so its size (plus the
// manifest's, written once at run end) changes exactly when there is
// something new to load.
func dirFingerprint(dir string) (string, error) {
	var jn, mn int64 = -1, -1
	if st, err := os.Stat(filepath.Join(dir, insitu.JournalName)); err == nil {
		jn = st.Size()
	}
	if st, err := os.Stat(filepath.Join(dir, insitu.ManifestName)); err == nil {
		mn = st.Size()
	}
	if jn < 0 && mn < 0 {
		return "", fmt.Errorf("serve: %s: neither %s nor %s exists", dir, insitu.JournalName, insitu.ManifestName)
	}
	return fmt.Sprintf("journal=%d manifest=%d", jn, mn), nil
}
