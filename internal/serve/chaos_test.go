package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"insitubits/internal/index"
	"insitubits/internal/qlog"
	"insitubits/internal/query"
	"insitubits/internal/store"
)

// The chaos matrix: each test aims a specific failure mode at the server
// and asserts the documented degraded behavior — shed not collapse,
// timeout not hang, consistent not mixed, drained not dropped. CI runs
// the whole file under -race (`make serve-chaos`).

// TestChaosOverloadStorm hits a deliberately tiny server with an open-loop
// storm at several times its capacity. The contract: zero 5xx (every
// answer is a 200 or a shed 429), bounded latency for the admitted, and
// every admitted answer digest-identical to serial execution.
func TestChaosOverloadStorm(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxInflight:    2,
		MaxQueue:       4,
		DefaultTimeout: 2 * time.Second,
		RetryAfter:     5 * time.Millisecond,
	})
	// Slow each admitted request to ~2ms so 2 slots cap the server near
	// 1000 req/s — the 8000 req/s storm is then a true 4×+ overload.
	testHookBeforeExecute = func(*QueryRequest) { time.Sleep(2 * time.Millisecond) }
	defer func() { testHookBeforeExecute = nil }()

	rep := RunLoad(context.Background(), LoadConfig{
		Base:  ts.URL,
		Rate:  8000, // far past what 2 slots + 4 seats admit smoothly
		Total: 400,
		Vars:  []string{"temp", "pres"},
		Ops:   []string{"count", "sum", "mean"},
	})

	if rep.Errors5x != 0 {
		t.Fatalf("storm produced %d 5xx answers — overload must shed, not fail", rep.Errors5x)
	}
	if rep.Network != 0 {
		t.Fatalf("storm produced %d transport errors — server fell over", rep.Network)
	}
	if rep.Errors4x != 0 {
		t.Fatalf("storm produced %d non-429 4xx answers", rep.Errors4x)
	}
	if rep.OK+rep.Shed != rep.Sent {
		t.Fatalf("accounting: ok %d + shed %d != sent %d", rep.OK, rep.Shed, rep.Sent)
	}
	if rep.OK == 0 {
		t.Fatal("storm admitted nothing — server seized instead of degrading")
	}
	if rep.Max > 5*time.Second {
		t.Fatalf("admitted p100 %v — latency unbounded under storm", rep.Max)
	}
	if len(rep.DigestConflicts) != 0 {
		t.Fatalf("same logical query answered differently under storm: %v", rep.DigestConflicts)
	}

	// Every digest the storm produced must equal serial in-process
	// execution of the same logical query.
	serial := serialDigests(t, map[string]*index.Index{
		"temp": buildTestIndex(t, 0), "pres": buildTestIndex(t, 1777),
	}, rep.Digests)
	for key, got := range rep.Digests {
		if want := serial[key]; got != want {
			t.Errorf("key %s: storm digest %s, serial %s", key, got, want)
		}
	}

	// Server-side accounting: every client-visible 429 is a shed, a queue
	// cancel, or a pre-execution deadline (counted as shed there too).
	st := s.Status()
	if st.Shed == 0 {
		t.Fatal("server shed counter is zero despite client-visible 429s")
	}
	t.Logf("storm: sent=%d ok=%d shed=%d p50=%v p99=%v", rep.Sent, rep.OK, rep.Shed, rep.P50, rep.P99)
}

// serialDigests re-executes each logical load-generator query in-process.
func serialDigests(t *testing.T, xs map[string]*index.Index, keys map[string]string) map[string]string {
	t.Helper()
	ctx := context.Background()
	out := make(map[string]string, len(keys))
	for key := range keys {
		req := parseLoadKey(t, key)
		x := xs[req.Var]
		if x == nil {
			t.Fatalf("key %s names unknown var", key)
		}
		sub := query.Subset{ValueLo: req.ValueLo, ValueHi: req.ValueHi,
			SpatialLo: req.SpatialLo, SpatialHi: req.SpatialHi}
		switch req.Op {
		case "count":
			n, err := query.Count(ctx, x, sub)
			if err != nil {
				t.Fatal(err)
			}
			out[key] = qlog.DigestInt(n)
		case "sum":
			a, err := query.Sum(ctx, x, sub)
			if err != nil {
				t.Fatal(err)
			}
			out[key] = query.DigestAggregate(a)
		case "mean":
			a, err := query.Mean(ctx, x, sub)
			if err != nil {
				t.Fatal(err)
			}
			out[key] = query.DigestAggregate(a)
		default:
			t.Fatalf("serialDigests: unhandled op in key %s", key)
		}
	}
	return out
}

// parseLoadKey inverts loadKey for the ops the chaos tests use.
func parseLoadKey(t *testing.T, key string) *QueryRequest {
	t.Helper()
	var req QueryRequest
	var params string
	parts := bytes.Split([]byte(key), []byte("|"))
	if len(parts) != 4 {
		t.Fatalf("bad load key %q", key)
	}
	req.Var, req.Op, req.VarB, params = string(parts[0]), string(parts[1]), string(parts[2]), string(parts[3])
	if _, err := fmt.Sscanf(params, "%g,%g,%d,%d,%g",
		&req.ValueLo, &req.ValueHi, &req.SpatialLo, &req.SpatialHi, &req.Q); err != nil {
		t.Fatalf("bad load key params %q: %v", params, err)
	}
	return &req
}

// TestChaosSlowLoris holds connections half-open against a server with a
// read timeout. The loris connections must be cut by the deadline, and
// well-behaved requests must keep answering throughout.
func TestChaosSlowLoris(t *testing.T) {
	s := New(Config{})
	if err := s.LoadFiles(writeTestIndexes(t)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(s.Handler())
	ts.Config.ReadTimeout = 200 * time.Millisecond
	ts.Config.WriteTimeout = time.Second
	ts.Start()
	defer ts.Close()

	// Open loris connections: send a partial request line, then stall.
	const lorises = 8
	conns := make([]net.Conn, 0, lorises)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	addr := ts.Listener.Addr().String()
	for i := 0; i < lorises; i++ {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Write([]byte("POST /v1/query HTTP/1.1\r\nHost: loris\r\nContent-Le")); err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}

	// While the lorises squat, real clients still get answers.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		_, hresp := postQuery(t, ts.URL, &QueryRequest{Op: "count", Var: "temp", ValueLo: 1, ValueHi: 5})
		if hresp.StatusCode != http.StatusOK {
			t.Fatalf("well-behaved request answered %d while lorises squat", hresp.StatusCode)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The read deadline must have severed every loris by now.
	for i, c := range conns {
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := bufio.NewReader(c).ReadByte(); err == nil {
			// A byte back means the server answered a half-request; any
			// response (408) is fine — what matters is the conn is done.
			continue
		} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Fatalf("loris %d still connected after read timeout", i)
		}
	}
}

// TestChaosPublishDuringStorm swaps the catalog repeatedly while a storm
// is in flight. Every answer must be internally consistent: the digest a
// response carries must match serial execution against the exact catalog
// generation the response claims — never a blend of old and new indexes.
func TestChaosPublishDuringStorm(t *testing.T) {
	dir := t.TempDir()
	write := func(phase int) map[string]*index.Index {
		xs := map[string]*index.Index{}
		for i, name := range []string{"temp", "pres"} {
			x := buildTestIndex(t, phase+i*1777)
			f, err := os.Create(filepath.Join(dir, name+".isbm"))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := store.WriteIndex(f, x); err != nil {
				t.Fatal(err)
			}
			f.Close()
			xs[name] = x
		}
		return xs
	}
	gens := map[uint64]map[string]*index.Index{1: write(0)}
	specs := []string{
		"temp=" + filepath.Join(dir, "temp.isbm"),
		"pres=" + filepath.Join(dir, "pres.isbm"),
	}
	s := New(Config{MaxInflight: 4, MaxQueue: 32, DefaultTimeout: 5 * time.Second})
	if err := s.LoadFiles(specs); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type answer struct {
		key    string
		gen    uint64
		digest string
	}
	var mu sync.Mutex
	var answers []answer
	stop := make(chan struct{})
	var wg sync.WaitGroup
	reqs := []*QueryRequest{
		{Op: "count", Var: "temp", ValueLo: 1, ValueHi: 5},
		{Op: "sum", Var: "pres", ValueLo: 2, ValueHi: 7},
		{Op: "mean", Var: "temp", SpatialLo: 100, SpatialHi: 9000},
	}
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := reqs[(w+i)%len(reqs)]
				resp, hresp := postQuery(t, ts.URL, req)
				switch hresp.StatusCode {
				case http.StatusOK:
					mu.Lock()
					answers = append(answers, answer{loadKey(req), resp.CatalogGen, resp.Digest})
					mu.Unlock()
				case http.StatusTooManyRequests:
				default:
					t.Errorf("storm answer %d", hresp.StatusCode)
					return
				}
			}
		}(w)
	}

	// Publish three new generations mid-storm by rewriting the files with
	// different data and reloading.
	for phase := 1; phase <= 3; phase++ {
		time.Sleep(10 * time.Millisecond)
		xs := write(phase * 7919)
		swapped, err := s.Reload()
		if err != nil {
			t.Fatal(err)
		}
		if !swapped {
			t.Fatal("reload did not swap after files changed")
		}
		gens[s.cat.Load().gen] = xs
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()

	if s.Status().Reloads != 3 {
		t.Fatalf("reloads %d, want 3", s.Status().Reloads)
	}
	// Verify every answer against serial execution on the generation it
	// claims. A mixed-generation answer (operands from different swaps, or
	// a digest from one generation stamped with another) fails here.
	cache := map[string]string{}
	seen := map[uint64]int{}
	for _, a := range answers {
		xs := gens[a.gen]
		if xs == nil {
			t.Fatalf("answer claims unknown catalog generation %d", a.gen)
		}
		seen[a.gen]++
		ck := fmt.Sprintf("%d/%s", a.gen, a.key)
		want, ok := cache[ck]
		if !ok {
			want = serialDigests(t, xs, map[string]string{a.key: ""})[a.key]
			cache[ck] = want
		}
		if a.digest != want {
			t.Fatalf("gen %d key %s: served digest %s, serial %s — mixed-generation answer", a.gen, a.key, a.digest, want)
		}
	}
	if len(answers) == 0 {
		t.Fatal("storm produced no successful answers")
	}
	t.Logf("publish-during-storm: %d answers across generations %v", len(answers), seen)
}

// TestChaosDrainUnderLoad starts a storm, then drains mid-flight. Every
// admitted request must complete (drain waits), new arrivals must get
// 503, and Drain must return cleanly before its deadline.
func TestChaosDrainUnderLoad(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxInflight:    4,
		MaxQueue:       16,
		DefaultTimeout: 5 * time.Second,
		DrainTimeout:   10 * time.Second,
	})
	var ok, shed, refused, other counter64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, hresp := postQuery(t, ts.URL, &QueryRequest{Op: "sum", Var: "temp", ValueLo: 1, ValueHi: 5})
				switch hresp.StatusCode {
				case http.StatusOK:
					ok.add(1)
				case http.StatusTooManyRequests:
					shed.add(1)
				case http.StatusServiceUnavailable:
					refused.add(1)
				default:
					other.add(1)
				}
			}
		}()
	}
	time.Sleep(30 * time.Millisecond)

	drainStart := time.Now()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain under load: %v", err)
	}
	drainTook := time.Since(drainStart)
	// Drain returned: nothing is in flight anymore, by definition.
	if got := s.adm.inflight(); got != 0 {
		t.Fatalf("drain returned with %d requests still holding slots", got)
	}
	close(stop)
	wg.Wait()

	if other.load() != 0 {
		t.Fatalf("%d unexpected status codes under drain", other.load())
	}
	if ok.load() == 0 {
		t.Fatal("no requests succeeded before drain")
	}
	if refused.load() == 0 {
		t.Fatal("no requests were refused after drain — drain gate not visible")
	}
	// And the server stays drained: a late query is refused.
	if _, hresp := postQuery(t, ts.URL, &QueryRequest{Op: "count", Var: "temp"}); hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain query answered %d, want 503", hresp.StatusCode)
	}
	t.Logf("drain under load: ok=%d shed=%d refused=%d drain=%v", ok.load(), shed.load(), refused.load(), drainTook)
}

// TestChaosPanicIsolation injects a panic into one request's execution
// path: that request answers 500, the counter moves, and the very same
// server keeps answering everything else.
func TestChaosPanicIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	testHookBeforeExecute = func(req *QueryRequest) {
		if req.Op == "quantile" && req.Q == -12345 {
			panic("chaos: injected request panic")
		}
	}
	defer func() { testHookBeforeExecute = nil }()

	body, _ := json.Marshal(&QueryRequest{Op: "quantile", Var: "temp", Q: -12345})
	hresp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request answered %d, want 500", hresp.StatusCode)
	}
	if got := s.Status().Panics; got != 1 {
		t.Fatalf("panic counter %d, want 1", got)
	}
	// The server survives and the slot was released.
	for i := 0; i < 20; i++ {
		resp, hresp := postQuery(t, ts.URL, &QueryRequest{Op: "count", Var: "temp", ValueLo: 1, ValueHi: 5})
		if hresp.StatusCode != http.StatusOK || resp.Digest == "" {
			t.Fatalf("request %d after panic: status %d", i, hresp.StatusCode)
		}
	}
	if got := s.adm.inflight(); got != 0 {
		t.Fatalf("panic leaked %d execution slots", got)
	}
}

// counter64 is a tiny counter for test goroutines.
type counter64 struct{ v atomic.Int64 }

func (c *counter64) add(n int64) { c.v.Add(n) }
func (c *counter64) load() int64 { return c.v.Load() }
