package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrShed is returned by acquire when the wait queue is full: the request
// was never admitted and the client should back off and retry (HTTP 429).
var ErrShed = errors.New("serve: overloaded, admission queue full")

// admission is the server's two-stage backpressure valve: a semaphore of
// MaxInflight execution slots, fronted by a bounded count of waiters. A
// request first tries to take a slot without waiting; failing that it joins
// the wait queue — unless the queue is at capacity, in which case it is
// shed immediately with ErrShed rather than piling up unboundedly. Waiters
// respect the request context, so a deadline that expires in the queue
// frees the waiter slot before the request ever executes.
//
// The queue bound is enforced with a single atomic add (increment, then
// check), so under the race detector concurrent arrivals can never exceed
// maxQueue waiters — the over-incrementer undoes itself and sheds.
type admission struct {
	slots    chan struct{}
	queued   atomic.Int64
	maxQueue int64

	// Counters mirrored into the telemetry registry by the server.
	admitted  atomic.Int64 // acquired a slot (immediately or after queueing)
	shed      atomic.Int64 // rejected: queue full
	cancelled atomic.Int64 // rejected: context done while queued
}

func newAdmission(maxInflight, maxQueue int) *admission {
	return &admission{
		slots:    make(chan struct{}, maxInflight),
		maxQueue: int64(maxQueue),
	}
}

// acquire claims one execution slot, waiting in the bounded queue when the
// server is saturated. It returns a release func on success; ErrShed when
// the queue is full; the context error when ctx ends first. The release
// func must be called exactly once.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return a.release, nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		a.shed.Add(1)
		return nil, ErrShed
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return a.release, nil
	case <-ctx.Done():
		a.cancelled.Add(1)
		return nil, ctx.Err()
	}
}

func (a *admission) release() { <-a.slots }

// inflight is the number of currently held execution slots.
func (a *admission) inflight() int { return len(a.slots) }

// waiting is the number of requests currently queued for a slot.
func (a *admission) waiting() int { return int(a.queued.Load()) }
