package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"insitubits/internal/binning"
	"insitubits/internal/index"
	"insitubits/internal/qlog"
	"insitubits/internal/query"
	"insitubits/internal/replay"
	"insitubits/internal/store"
)

// serveTestData mixes fills and literals like the other packages' fixtures.
func serveTestData(n, phase int) []float64 {
	data := make([]float64, n)
	for i := range data {
		switch {
		case i%97 == 0:
			data[i] = float64((i + phase) % 8)
		case (i/128)%3 == 0:
			data[i] = float64(((i + phase) / 128) % 8)
		default:
			data[i] = 4 + 3.9*math.Sin(float64(i+phase)/200)
		}
	}
	return data
}

func buildTestIndex(t testing.TB, phase int) *index.Index {
	t.Helper()
	m, err := binning.NewUniform(0, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	return index.Build(serveTestData(31*400, phase), m)
}

// writeTestIndexes writes temp and pres .isbm files and returns their specs.
func writeTestIndexes(t testing.TB) []string {
	t.Helper()
	dir := t.TempDir()
	specs := make([]string, 0, 2)
	for i, name := range []string{"temp", "pres"} {
		x := buildTestIndex(t, i*1777)
		path := filepath.Join(dir, name+".isbm")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := store.WriteIndex(f, x); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		specs = append(specs, name+"="+path)
	}
	return specs
}

// newTestServer loads the two-variable fixture and wraps the handler in an
// httptest server.
func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	if err := s.LoadFiles(writeTestIndexes(t)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postQuery(t testing.TB, base string, req *QueryRequest) (*QueryResponse, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(req)
	hresp, err := http.Post(base+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var resp QueryResponse
	if hresp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
	}
	return &resp, hresp
}

// TestHandlerOps answers every op and digests identically to direct
// in-process execution — the serving path adds transport, not semantics.
func TestHandlerOps(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	x := buildTestIndex(t, 0)
	xb := buildTestIndex(t, 1777)
	ctx := context.Background()
	sub := query.Subset{ValueLo: 1, ValueHi: 5}

	n, err := query.Count(ctx, x, sub)
	if err != nil {
		t.Fatal(err)
	}
	resp, hresp := postQuery(t, ts.URL, &QueryRequest{Op: "count", Var: "temp", ValueLo: 1, ValueHi: 5})
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("count status %d", hresp.StatusCode)
	}
	if resp.Count != n || resp.Digest != qlog.DigestInt(n) {
		t.Fatalf("served count %d digest %s, direct %d digest %s", resp.Count, resp.Digest, n, qlog.DigestInt(n))
	}
	if resp.CatalogGen != 1 || resp.Generation == 0 {
		t.Fatalf("missing generation stamps: %+v", resp)
	}

	a, err := query.Sum(ctx, x, sub)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ = postQuery(t, ts.URL, &QueryRequest{Op: "sum", Var: "temp", ValueLo: 1, ValueHi: 5})
	if resp.Digest != query.DigestAggregate(a) {
		t.Fatalf("sum digest %s, want %s", resp.Digest, query.DigestAggregate(a))
	}

	resp, hresp = postQuery(t, ts.URL, &QueryRequest{Op: "quantile", Var: "temp", ValueLo: 1, ValueHi: 5, Q: 0.5})
	if hresp.StatusCode != http.StatusOK || resp.Aggregate == nil {
		t.Fatalf("quantile: status %d resp %+v", hresp.StatusCode, resp)
	}

	mn, mx, err := query.MinMax(ctx, x, sub)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ = postQuery(t, ts.URL, &QueryRequest{Op: "minmax", Var: "temp", ValueLo: 1, ValueHi: 5})
	if resp.Digest != query.DigestMinMax(mn, mx) {
		t.Fatalf("minmax digest mismatch")
	}

	pr, err := query.Correlation(ctx, x, xb, sub, sub)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ = postQuery(t, ts.URL, &QueryRequest{
		Op: "correlation", Var: "temp", ValueLo: 1, ValueHi: 5,
		VarB: "pres", BValueLo: 1, BValueHi: 5,
	})
	if resp.Digest != query.DigestPair(pr) {
		t.Fatalf("correlation digest %s, want %s", resp.Digest, query.DigestPair(pr))
	}
	if resp.GenerationB == 0 {
		t.Fatalf("correlation response missing generation_b")
	}

	resp, hresp = postQuery(t, ts.URL, &QueryRequest{Op: "bits", Var: "temp", ValueLo: 1, ValueHi: 5})
	if hresp.StatusCode != http.StatusOK || resp.Count != n {
		t.Fatalf("bits: status %d count %d want %d", hresp.StatusCode, resp.Count, n)
	}

	resp, hresp = postQuery(t, ts.URL, &QueryRequest{Op: "explain", Var: "temp", ExplainOp: "sum", ValueLo: 1, ValueHi: 5})
	if hresp.StatusCode != http.StatusOK || resp.Explain == "" || resp.Digest == "" {
		t.Fatalf("explain: status %d resp %+v", hresp.StatusCode, resp)
	}
}

func TestHandlerErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name string
		req  *QueryRequest
		code int
	}{
		{"unknown op", &QueryRequest{Op: "drop-tables", Var: "temp"}, http.StatusBadRequest},
		{"unknown var", &QueryRequest{Op: "count", Var: "nope"}, http.StatusBadRequest},
		{"ambiguous var", &QueryRequest{Op: "count"}, http.StatusBadRequest},
		{"correlation missing b", &QueryRequest{Op: "correlation", Var: "temp"}, http.StatusBadRequest},
	} {
		_, hresp := postQuery(t, ts.URL, tc.req)
		if hresp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, hresp.StatusCode, tc.code)
		}
	}
	hresp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: status %d", hresp.StatusCode)
	}
	hresp, err = http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET query: status %d", hresp.StatusCode)
	}
}

// TestAdmissionBounds hammers acquire/release from many goroutines and
// checks the invariants the race detector alone can't: waiters never
// exceed the queue bound, slots never exceed max-inflight, and every
// arrival is accounted exactly once.
func TestAdmissionBounds(t *testing.T) {
	const maxInflight, maxQueue, workers, perWorker = 4, 8, 32, 200
	a := newAdmission(maxInflight, maxQueue)
	var wg sync.WaitGroup
	var peakQueue, peakSlots atomic.Int64
	var total atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				total.Add(1)
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
				release, err := a.acquire(ctx)
				if q := int64(a.waiting()); q > peakQueue.Load() {
					peakQueue.Store(q)
				}
				if s := int64(a.inflight()); s > peakSlots.Load() {
					peakSlots.Store(s)
				}
				if err == nil {
					if w%2 == 0 {
						time.Sleep(20 * time.Microsecond)
					}
					release()
				}
				cancel()
			}
		}(w)
	}
	wg.Wait()
	if a.inflight() != 0 || a.waiting() != 0 {
		t.Fatalf("leaked: inflight=%d waiting=%d", a.inflight(), a.waiting())
	}
	if peakQueue.Load() > maxQueue {
		t.Fatalf("queue bound violated: peak %d > %d", peakQueue.Load(), maxQueue)
	}
	if peakSlots.Load() > maxInflight {
		t.Fatalf("inflight bound violated: peak %d > %d", peakSlots.Load(), maxInflight)
	}
	got := a.admitted.Load() + a.shed.Load() + a.cancelled.Load()
	if got != total.Load() {
		t.Fatalf("accounting: admitted+shed+cancelled = %d, arrivals %d", got, total.Load())
	}
}

// TestCatalogSwapRace reloads concurrently with queries; every response
// must be internally consistent (one generation, a digest) and the final
// catalog generation must reflect the swaps. Run under -race in CI.
func TestCatalogSwapRace(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 8, MaxQueue: 64, DefaultTimeout: 5 * time.Second})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, hresp := postQuery(t, ts.URL, &QueryRequest{Op: "count", Var: "temp", ValueLo: 1, ValueHi: 5})
				if hresp.StatusCode == http.StatusOK && (resp.Digest == "" || resp.CatalogGen == 0) {
					t.Errorf("inconsistent response: %+v", resp)
					return
				}
			}
		}()
	}
	swaps := 0
	for i := 0; i < 20; i++ {
		if swapped, err := s.Reload(); err != nil {
			t.Errorf("reload: %v", err)
		} else if swapped {
			swaps++
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	// Same files on disk: fingerprint unchanged, so reload must no-op.
	if swaps != 0 {
		t.Fatalf("reload swapped %d times on unchanged files", swaps)
	}
	if got := s.cat.Load().gen; got != 1 {
		t.Fatalf("catalog generation %d, want 1", got)
	}
}

// TestShedThenRetrySucceeds pins the server at capacity, verifies an
// arrival is shed with 429 + Retry-After, then frees capacity and checks
// the client's backoff turns the shed into an eventual success.
func TestShedThenRetrySucceeds(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1, MaxQueue: 1, DefaultTimeout: time.Second})
	// Occupy the only slot and the only queue seat directly.
	release, err := s.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	seatCtx, seatCancel := context.WithCancel(context.Background())
	seatDone := make(chan struct{})
	go func() {
		defer close(seatDone)
		if r, err := s.adm.acquire(seatCtx); err == nil {
			r()
		}
	}()
	for s.adm.waiting() == 0 {
		time.Sleep(time.Millisecond)
	}

	// Saturated: a bare request sheds with the retry hint.
	_, hresp := postQuery(t, ts.URL, &QueryRequest{Op: "count", Var: "temp"})
	if hresp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429", hresp.StatusCode)
	}
	if hresp.Header.Get("Retry-After") == "" || hresp.Header.Get("X-Retry-After-Ms") == "" {
		t.Fatalf("429 missing Retry-After headers: %v", hresp.Header)
	}

	// Free capacity shortly; the retrying client must land a 200.
	go func() {
		time.Sleep(30 * time.Millisecond)
		seatCancel()
		<-seatDone
		release()
	}()
	var retries int
	cl := &Client{Base: ts.URL, Backoff: backoffForTest(&retries)}
	resp, err := cl.Query(context.Background(), &QueryRequest{Op: "count", Var: "temp", ValueLo: 1, ValueHi: 5})
	if err != nil {
		t.Fatalf("retrying client failed: %v", err)
	}
	if resp.Digest == "" {
		t.Fatalf("no digest in retried response")
	}
	if retries == 0 {
		t.Fatalf("client never retried — shed path not exercised")
	}
	if s.Status().Shed == 0 {
		t.Fatalf("server shed counter is zero")
	}
}

func backoffForTest(retries *int) (b iosimBackoff) {
	b.Tries = 20
	b.Base = 5 * time.Millisecond
	b.Max = 50 * time.Millisecond
	b.OnRetry = func(int, error) { *retries++ }
	return b
}

// TestReadiness walks the lifecycle: loading → 503, loaded → 200, drain →
// 503 while /healthz stays 200 throughout.
func TestReadiness(t *testing.T) {
	s := New(Config{DrainTimeout: time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) int {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		return r.StatusCode
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz while loading: %d", got)
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz while loading: %d, want 503", got)
	}
	if _, hresp := postQuery(t, ts.URL, &QueryRequest{Op: "count"}); hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query while loading: %d, want 503", hresp.StatusCode)
	}

	if err := s.LoadFiles(writeTestIndexes(t)); err != nil {
		t.Fatal(err)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz when ready: %d", got)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz while draining: %d", got)
	}
	if _, hresp := postQuery(t, ts.URL, &QueryRequest{Op: "count", Var: "temp"}); hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query while draining: %d, want 503", hresp.StatusCode)
	}
}

// TestDeadlineClamp sends an absurd timeout override and checks the server
// clamps it rather than holding a request slot for minutes.
func TestDeadlineClamp(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxTimeout: 50 * time.Millisecond})
	resp, hresp := postQuery(t, ts.URL, &QueryRequest{Op: "count", Var: "temp", TimeoutMs: 3_600_000})
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", hresp.StatusCode)
	}
	if resp.Digest == "" {
		t.Fatal("no digest")
	}
}

// TestTracePropagation: a W3C traceparent (and X-Trace-Id) joins the
// response — and the server's telemetry — to the caller's trace ID.
func TestTracePropagation(t *testing.T) {
	rec := newTestTraceRecorder(t)
	_ = rec
	_, ts := newTestServer(t, Config{})
	const remote = "4bf92f3577b34da6a3ce929d0e0e4736"

	body, _ := json.Marshal(&QueryRequest{Op: "count", Var: "temp", ValueLo: 1, ValueHi: 5})
	hreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
	hreq.Header.Set("traceparent", "00-"+remote+"-00f067aa0ba902b7-01")
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var resp QueryResponse
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != remote {
		t.Fatalf("response trace ID %q, want adopted %q", resp.TraceID, remote)
	}

	// A malformed ID must not be adopted.
	hreq, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
	hreq.Header.Set("X-Trace-Id", "ZZZZ")
	hresp2, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer hresp2.Body.Close()
	var resp2 QueryResponse
	if err := json.NewDecoder(hresp2.Body).Decode(&resp2); err != nil {
		t.Fatal(err)
	}
	if resp2.TraceID == "ZZZZ" || resp2.TraceID == "" {
		t.Fatalf("malformed trace ID handling: got %q", resp2.TraceID)
	}
}

// TestReplayServerCapturedLog is satellite 2's gate: a workload log
// captured on the serving path carries source=serve and the remote trace
// ID, and `replay` re-executes it digest-identically — the server adds
// transport, not semantics.
func TestReplayServerCapturedLog(t *testing.T) {
	rec := newTestTraceRecorder(t)
	_ = rec
	dir := t.TempDir()
	w, err := qlog.Create(filepath.Join(dir, "serve.isql"))
	if err != nil {
		t.Fatal(err)
	}
	w.SetSource("serve")
	qlog.Install(w)
	defer qlog.Install(nil)

	_, ts := newTestServer(t, Config{})
	const remote = "00f067aa0ba902b74bf92f3577b34da6"
	subs := []query.Subset{
		{ValueLo: 1, ValueHi: 5},
		{ValueLo: 2, ValueHi: 7, SpatialLo: 100, SpatialHi: 6000},
		{SpatialLo: 31, SpatialHi: 9000},
	}
	for _, sub := range subs {
		for _, op := range []string{"count", "sum", "mean", "minmax", "bits"} {
			body, _ := json.Marshal(&QueryRequest{Op: op, Var: "temp",
				ValueLo: sub.ValueLo, ValueHi: sub.ValueHi,
				SpatialLo: sub.SpatialLo, SpatialHi: sub.SpatialHi})
			hreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
			hreq.Header.Set("X-Trace-Id", remote)
			hresp, err := http.DefaultClient.Do(hreq)
			if err != nil {
				t.Fatal(err)
			}
			hresp.Body.Close()
			if hresp.StatusCode != http.StatusOK {
				t.Fatalf("%s: status %d", op, hresp.StatusCode)
			}
		}
	}
	qlog.Install(nil)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	recs, _, err := qlog.ReadLog(w.Path())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records captured on the serving path")
	}
	for i, r := range recs {
		if r.Source != "serve" {
			t.Fatalf("record %d source %q, want serve", i, r.Source)
		}
		if r.TraceID != remote {
			t.Fatalf("record %d trace ID %q, want propagated %q", i, r.TraceID, remote)
		}
	}

	// Replay against a fresh build of the same data: digests must match.
	x := buildTestIndex(t, 0)
	report := replay.Run(context.Background(), recs, x, nil, replay.Options{})
	if err := report.Err(); err != nil {
		for _, mm := range report.Mismatches() {
			t.Logf("mismatch seq=%d op=%s recorded=%s replayed=%s", mm.Seq, mm.Op, mm.Recorded, mm.Replayed)
		}
		t.Fatalf("server-captured log does not replay: %v", err)
	}
	if report.Replayed == 0 {
		t.Fatal("replay executed nothing")
	}
}

// TestLoadDirJournal serves the newest committed step of a live run
// directory (journal present, no manifest yet) — the in-situ coupling.
func TestLoadDirJournal(t *testing.T) {
	dir := runInsituFixture(t, 6)
	s := New(Config{})
	if err := s.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	st := s.Status()
	if st.State != "ready" || st.Step < 0 || len(st.Vars) == 0 {
		t.Fatalf("bad status after LoadDir: %+v", st)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, hresp := postQuery(t, ts.URL, &QueryRequest{Op: "count", Var: st.Vars[0], ValueLo: 1, ValueHi: 5})
	if hresp.StatusCode != http.StatusOK || resp.Digest == "" {
		t.Fatalf("query against journal-loaded catalog: status %d resp %+v", hresp.StatusCode, resp)
	}
}

func TestVarsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	r, err := http.Get(ts.URL + "/v1/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var out struct {
		CatalogGen uint64   `json:"catalog_generation"`
		Vars       []*Entry `json:"vars"`
	}
	if err := json.NewDecoder(r.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Vars) != 2 || out.Vars[0].Name != "pres" || out.Vars[1].Name != "temp" {
		t.Fatalf("vars: %+v", out.Vars)
	}
	for _, e := range out.Vars {
		if e.N == 0 || e.Bins == 0 || e.Gen == 0 {
			t.Fatalf("entry missing metadata: %+v", e)
		}
	}
}

func fmtSpecs(dir string, names []string) []string {
	specs := make([]string, len(names))
	for i, n := range names {
		specs[i] = fmt.Sprintf("%s=%s", n, filepath.Join(dir, n+".isbm"))
	}
	return specs
}
