package serve

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// LoadConfig shapes one open-loop load run: requests are launched on the
// clock (Rate per second for Duration, or exactly Total), not gated on
// responses, so a slow server accumulates concurrency the way real
// traffic does — exactly the regime admission control exists for.
type LoadConfig struct {
	Base     string        // server address
	Rate     float64       // requests/second, default 100
	Duration time.Duration // wall-clock budget, default 1s (ignored if Total > 0)
	Total    int           // exact request count; 0 means Rate×Duration
	Seed     int64         // request-mix seed, default 1
	Vars     []string      // variable names to draw from ("" = server default)
	Ops      []string      // op mix to draw from, default count/sum/mean
	Timeout  time.Duration // per-request timeout_ms sent to the server, 0 = server default
	Retry    bool          // retry sheds through the Client backoff; off = raw status counts
	HTTP     *http.Client  // shared transport, nil = per-worker default
}

// LoadReport aggregates one load run.
type LoadReport struct {
	Sent     int           `json:"sent"`
	OK       int           `json:"ok"`
	Shed     int           `json:"shed"` // final-answer 429s (after any retries)
	Errors5x int           `json:"errors_5xx"`
	Errors4x int           `json:"errors_4xx"` // non-429 4xx
	Network  int           `json:"network_errors"`
	Retries  int           `json:"retries"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	P50      time.Duration `json:"p50_ns"`
	P95      time.Duration `json:"p95_ns"`
	P99      time.Duration `json:"p99_ns"`
	Max      time.Duration `json:"max_ns"`

	// Digests maps "var|op|params" → result digest for every successful
	// answer, for byte-comparing a concurrent run against a serial one.
	// Conflicting digests for one key (a mid-run reload changing answers
	// legitimately) are kept in DigestConflicts for the caller to judge.
	Digests         map[string]string   `json:"-"`
	DigestConflicts map[string][]string `json:"-"`
}

// Throughput is successful answers per second.
func (r *LoadReport) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.OK) / r.Elapsed.Seconds()
}

// RunLoad fires the open-loop generator and blocks until every launched
// request has answered (or ctx ends).
func RunLoad(ctx context.Context, cfg LoadConfig) *LoadReport {
	if cfg.Rate <= 0 {
		cfg.Rate = 100
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if len(cfg.Ops) == 0 {
		cfg.Ops = []string{"count", "sum", "mean"}
	}
	if len(cfg.Vars) == 0 {
		cfg.Vars = []string{""}
	}
	total := cfg.Total
	if total <= 0 {
		total = int(cfg.Rate * cfg.Duration.Seconds())
	}
	interval := time.Duration(float64(time.Second) / cfg.Rate)

	rep := &LoadReport{Digests: map[string]string{}, DigestConflicts: map[string][]string{}}
	var mu sync.Mutex
	var wg sync.WaitGroup
	latencies := make([]time.Duration, 0, total)
	rng := rand.New(rand.NewSource(cfg.Seed))

	start := time.Now()
	tick := time.NewTicker(interval)
	defer tick.Stop()
launch:
	for i := 0; i < total; i++ {
		req, key := randomRequest(rng, cfg)
		wg.Add(1)
		rep.Sent++
		go func(seed int64) {
			defer wg.Done()
			cl := &Client{Base: cfg.Base, HTTP: cfg.HTTP}
			cl.Backoff.Seed = seed
			if !cfg.Retry {
				cl.Backoff.Tries = 1
			}
			t0 := time.Now()
			resp, err := cl.Query(ctx, req)
			lat := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			rep.Retries += cl.Retries
			if err != nil {
				classify(rep, err)
				return
			}
			rep.OK++
			latencies = append(latencies, lat)
			if prev, ok := rep.Digests[key]; ok && prev != resp.Digest {
				rep.DigestConflicts[key] = append(rep.DigestConflicts[key], resp.Digest)
			} else {
				rep.Digests[key] = resp.Digest
			}
		}(cfg.Seed + int64(i))
		if i+1 < total {
			select {
			case <-tick.C:
			case <-ctx.Done():
				break launch
			}
		}
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if n := len(latencies); n > 0 {
		rep.P50 = latencies[n/2]
		rep.P95 = latencies[n*95/100]
		rep.P99 = latencies[n*99/100]
		rep.Max = latencies[n-1]
	}
	return rep
}

// classify buckets a final (post-retry) error into the report.
func classify(rep *LoadReport, err error) {
	var se *StatusError
	for e := err; e != nil; {
		if s, ok := e.(*StatusError); ok {
			se = s
			break
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			break
		}
		e = u.Unwrap()
	}
	switch {
	case se == nil:
		rep.Network++
	case se.Code == http.StatusTooManyRequests:
		rep.Shed++
	case se.Code >= 500:
		rep.Errors5x++
	default:
		rep.Errors4x++
	}
}

// randomRequest draws one request from the configured mix plus a stable
// key identifying its logical parameters (for digest cross-checks).
func randomRequest(rng *rand.Rand, cfg LoadConfig) (*QueryRequest, string) {
	op := cfg.Ops[rng.Intn(len(cfg.Ops))]
	v := cfg.Vars[rng.Intn(len(cfg.Vars))]
	req := &QueryRequest{Op: op, Var: v, TimeoutMs: cfg.Timeout.Milliseconds()}
	// A small palette of subsets so digests repeat across requests and a
	// conflict (two different answers for one logical query) is detectable.
	switch rng.Intn(3) {
	case 0:
		req.ValueLo, req.ValueHi = 0.2, 0.8
	case 1:
		req.ValueLo, req.ValueHi = 0.5, 1.5
	case 2:
		// no bounds: whole-domain aggregate
	}
	if op == "quantile" {
		req.Q = 0.5
	}
	if op == "correlation" && len(cfg.Vars) > 1 {
		req.VarB = cfg.Vars[(rng.Intn(len(cfg.Vars)-1)+1)%len(cfg.Vars)]
		req.BValueLo, req.BValueHi = req.ValueLo, req.ValueHi
	}
	key := loadKey(req)
	return req, key
}

// loadKey identifies a request's logical parameters — two requests with
// the same key must digest identically unless a reload changed the data.
func loadKey(req *QueryRequest) string {
	return fmt.Sprintf("%s|%s|%s|%g,%g,%d,%d,%g",
		req.Var, req.Op, req.VarB,
		req.ValueLo, req.ValueHi, req.SpatialLo, req.SpatialHi, req.Q)
}
