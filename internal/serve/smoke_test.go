package serve

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// TestServeSmoke is the CI smoke gate (`make serve-smoke`): bring a
// server up on real defaults, run a retrying load-generator against it,
// and require zero failures of any kind plus digest-correct answers.
func TestServeSmoke(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rep := RunLoad(context.Background(), LoadConfig{
		Base:  ts.URL,
		Rate:  500,
		Total: 250,
		Vars:  []string{"temp", "pres"},
		Ops:   []string{"count", "sum", "mean", "quantile", "minmax"},
		Retry: true,
	})
	if rep.Errors5x != 0 || rep.Errors4x != 0 || rep.Network != 0 {
		t.Fatalf("smoke run failed: %+v", rep)
	}
	if rep.Shed != 0 {
		t.Fatalf("smoke run shed %d requests even with retries", rep.Shed)
	}
	if rep.OK != rep.Sent {
		t.Fatalf("smoke run: %d/%d succeeded", rep.OK, rep.Sent)
	}
	if len(rep.DigestConflicts) != 0 {
		t.Fatalf("digest conflicts in steady state: %v", rep.DigestConflicts)
	}
	t.Logf("smoke: %d ok, %.0f req/s, p50=%v p99=%v", rep.OK, rep.Throughput(), rep.P50, rep.P99)
}

// BenchmarkServeQuery measures end-to-end served query latency (HTTP +
// admission + execution) at increasing client concurrency — the
// latency-under-concurrency table in EXPERIMENTS.md.
func BenchmarkServeQuery(b *testing.B) {
	_, ts := newTestServer(b, Config{MaxInflight: 16, MaxQueue: 256, DefaultTimeout: 10 * time.Second})
	for _, par := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("clients=%d", par), func(b *testing.B) {
			b.SetParallelism(par)
			b.RunParallel(func(pb *testing.PB) {
				cl := &Client{Base: ts.URL}
				req := &QueryRequest{Op: "count", Var: "temp", ValueLo: 1, ValueHi: 5}
				for pb.Next() {
					if _, err := cl.Query(context.Background(), req); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
