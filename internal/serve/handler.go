package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"insitubits/internal/metrics"
	"insitubits/internal/qlog"
	"insitubits/internal/query"
	"insitubits/internal/telemetry"
)

// maxBody bounds a request body; query requests are a few hundred bytes.
const maxBody = 1 << 20

// QueryRequest is the body of POST /v1/query. Var selects the served
// variable (optional when exactly one is served); value/spatial bounds
// follow query.Subset semantics (half-open, active when hi > lo). Op
// "correlation" takes the second operand via VarB and the b_* bounds; op
// "explain" estimates ExplainOp's plan without executing it. TimeoutMs
// overrides the server's default deadline, clamped to its maximum.
type QueryRequest struct {
	Op  string `json:"op"`
	Var string `json:"var,omitempty"`

	ValueLo   float64 `json:"value_lo,omitempty"`
	ValueHi   float64 `json:"value_hi,omitempty"`
	SpatialLo int     `json:"spatial_lo,omitempty"`
	SpatialHi int     `json:"spatial_hi,omitempty"`
	Q         float64 `json:"q,omitempty"`

	VarB       string  `json:"var_b,omitempty"`
	BValueLo   float64 `json:"b_value_lo,omitempty"`
	BValueHi   float64 `json:"b_value_hi,omitempty"`
	BSpatialLo int     `json:"b_spatial_lo,omitempty"`
	BSpatialHi int     `json:"b_spatial_hi,omitempty"`

	ExplainOp string `json:"explain_op,omitempty"`
	TimeoutMs int64  `json:"timeout_ms,omitempty"`
}

// AggregateResult mirrors query.Aggregate on the wire.
type AggregateResult struct {
	Count    int     `json:"count"`
	Estimate float64 `json:"estimate"`
	Lo       float64 `json:"lo"`
	Hi       float64 `json:"hi"`
}

// QueryResponse is the success body of POST /v1/query. Digest is the same
// canonical result digest the workload log records, so a client can
// byte-compare answers across servers, codecs, and cache states.
// Generation/CatalogGen pin exactly which published index answered.
type QueryResponse struct {
	Op  string `json:"op"`
	Var string `json:"var"`

	Count     int              `json:"count,omitempty"`
	Aggregate *AggregateResult `json:"aggregate,omitempty"`
	Min       *AggregateResult `json:"min,omitempty"`
	Max       *AggregateResult `json:"max,omitempty"`
	Pair      *metrics.Pair    `json:"pair,omitempty"`
	Explain   string           `json:"explain,omitempty"`

	Digest      string `json:"digest"`
	Generation  uint64 `json:"generation"`
	GenerationB uint64 `json:"generation_b,omitempty"`
	CatalogGen  uint64 `json:"catalog_generation"`
	Step        int    `json:"step"`
	ElapsedNs   int64  `json:"elapsed_ns"`
	TraceID     string `json:"trace_id,omitempty"`
}

// ErrorResponse is the body of every non-200 answer. RetryAfterMs is set
// on retryable rejections (429) and mirrors the Retry-After /
// X-Retry-After-Ms headers.
type ErrorResponse struct {
	Error        string `json:"error"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

// testHookBeforeExecute, when non-nil, runs after admission and before
// execution — the chaos harness's panic-injection point.
var testHookBeforeExecute func(*QueryRequest)

func (s *Server) routes() {
	s.mux.HandleFunc("/v1/query", s.handleQuery)
	s.mux.HandleFunc("/v1/vars", s.handleVars)
	s.mux.HandleFunc("/v1/reload", s.handleReload)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
}

// handleHealthz is pure liveness: if the process can answer HTTP at all it
// answers 200, even while loading or draining. Readiness is /readyz's job
// — conflating the two makes an orchestrator kill a server that is merely
// overloaded or draining.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "state": s.Status().State})
}

// handleReadyz answers 200 only when the query path accepts work: loaded,
// not draining, and the workload log (when installed) healthy. 503
// otherwise, with the reason — the signal a load balancer uses to rotate
// the server out ahead of drain.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ok, reason := s.ready()
	body := map[string]any{"ready": ok, "status": s.Status()}
	code := http.StatusOK
	if !ok {
		body["reason"] = reason
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only", 0)
		return
	}
	c := s.cat.Load()
	if c == nil {
		writeError(w, http.StatusServiceUnavailable, "no catalog loaded", 0)
		return
	}
	entries := make([]*Entry, 0, len(c.names))
	for _, n := range c.names {
		entries = append(entries, c.entries[n])
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"catalog_generation": c.gen, "step": c.step, "vars": entries,
	})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only", 0)
		return
	}
	swapped, err := s.Reload()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error(), 0)
		return
	}
	c := s.cat.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"reloaded": swapped, "catalog_generation": c.gen, "step": c.step,
	})
}

// handleQuery is the serving path: drain check → decode → clamped deadline
// → trace adoption → admission → panic-isolated execution against one
// catalog snapshot.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.tel.requests.Inc()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only", 0)
		return
	}

	// In-flight accounting opens before the drain check: Drain flips the
	// state and then waits the group, so a request that passes the check
	// is guaranteed to be waited for.
	s.inflight.Add(1)
	defer s.inflight.Done()
	if s.state.Load() != stateReady {
		s.refused.Add(1)
		_, reason := s.ready()
		writeError(w, http.StatusServiceUnavailable, "not serving: "+reason, 0)
		return
	}

	var req QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error(), 0)
		return
	}

	// Snapshot the catalog once. Everything below — admission, execution,
	// the response's generation stamps — uses this snapshot, so a reload
	// published mid-request can never mix generations.
	cat := s.cat.Load()

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Adopt the client's trace ID (traceparent or X-Trace-Id) so the
	// server's trace ring, slow-query log, and workload log join the
	// caller's distributed trace. Invalid IDs fall back to a minted one.
	var span *telemetry.ActiveSpan
	traceID := remoteTraceID(r)
	if rec := telemetry.DefaultTraceRecorder(); rec != nil {
		ctx, span = rec.StartTraceWithID(ctx, "serve."+req.Op, traceID)
		defer span.End()
	}

	// Admission: a free slot admits immediately; otherwise wait in the
	// bounded queue under the request deadline. Shed and queue-deadline
	// rejections both answer 429 — the request never executed, so the
	// client should back off and retry.
	release, err := s.adm.acquire(ctx)
	if err != nil {
		s.tel.shed.Inc()
		msg := err.Error()
		if !errors.Is(err, ErrShed) {
			s.tel.shed.Add(-1)
			s.tel.cancelled.Inc()
			msg = "deadline passed while queued for admission: " + msg
		}
		writeShed(w, s.cfg.RetryAfter, msg)
		return
	}
	s.tel.admitted.Inc()
	s.tel.inflight.Set(int64(s.adm.inflight()))
	s.tel.queued.Set(int64(s.adm.waiting()))
	defer func() {
		release()
		s.tel.inflight.Set(int64(s.adm.inflight()))
	}()

	// Panic isolation: one bad request answers 500; the server survives.
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			s.tel.panics.Inc()
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: panic: %v", p), 0)
		}
	}()

	if ctx.Err() != nil {
		// Admitted, but the deadline elapsed before execution; nothing ran,
		// so this is still retryable.
		writeShed(w, s.cfg.RetryAfter, "deadline passed before execution")
		return
	}
	if h := testHookBeforeExecute; h != nil {
		h(&req)
	}

	start := time.Now()
	resp, code, err := s.execute(ctx, cat, &req)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			writeShed(w, s.cfg.RetryAfter, "cancelled during execution: "+err.Error())
			return
		}
		writeError(w, code, err.Error(), 0)
		return
	}
	resp.CatalogGen = cat.gen
	resp.Step = cat.step
	resp.ElapsedNs = time.Since(start).Nanoseconds()
	if span != nil {
		resp.TraceID = span.TraceID()
	}
	s.tel.latency.RecordExemplar(resp.ElapsedNs, resp.TraceID)
	writeJSON(w, http.StatusOK, resp)
}

// execute runs one decoded request against one catalog snapshot. The
// returned code is only meaningful alongside a non-nil error.
func (s *Server) execute(ctx context.Context, cat *catalog, req *QueryRequest) (*QueryResponse, int, error) {
	e, err := cat.get(req.Var)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	sub := query.Subset{ValueLo: req.ValueLo, ValueHi: req.ValueHi,
		SpatialLo: req.SpatialLo, SpatialHi: req.SpatialHi}
	resp := &QueryResponse{Op: req.Op, Var: e.Name, Generation: e.Gen}

	switch req.Op {
	case "count":
		n, err := query.Count(ctx, e.X, sub)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		resp.Count = n
		resp.Digest = qlog.DigestInt(n)
	case "sum", "mean", "quantile":
		var a query.Aggregate
		switch req.Op {
		case "sum":
			a, err = query.Sum(ctx, e.X, sub)
		case "mean":
			a, err = query.Mean(ctx, e.X, sub)
		default:
			a, err = query.Quantile(ctx, e.X, sub, req.Q)
		}
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		resp.Aggregate = &AggregateResult{a.Count, a.Estimate, a.Lo, a.Hi}
		resp.Digest = query.DigestAggregate(a)
	case "minmax":
		mn, mx, err := query.MinMax(ctx, e.X, sub)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		resp.Min = &AggregateResult{mn.Count, mn.Estimate, mn.Lo, mn.Hi}
		resp.Max = &AggregateResult{mx.Count, mx.Estimate, mx.Lo, mx.Hi}
		resp.Digest = query.DigestMinMax(mn, mx)
	case "bits":
		v, err := query.Bits(ctx, e.X, sub)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		d, n := qlog.DigestBitmap(v)
		resp.Count = n
		resp.Digest = d
	case "correlation":
		eb, err := cat.get(req.VarB)
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("correlation operand b: %w", err)
		}
		sb := query.Subset{ValueLo: req.BValueLo, ValueHi: req.BValueHi,
			SpatialLo: req.BSpatialLo, SpatialHi: req.BSpatialHi}
		pr, err := query.Correlation(ctx, e.X, eb.X, sub, sb)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		resp.Pair = &pr
		resp.GenerationB = eb.Gen
		resp.Digest = query.DigestPair(pr)
	case "explain":
		opName := req.ExplainOp
		if opName == "" {
			opName = "count"
		}
		var prof *query.Profile
		if req.VarB != "" || opName == "correlation" {
			eb, err := cat.get(req.VarB)
			if err != nil {
				return nil, http.StatusBadRequest, fmt.Errorf("correlation operand b: %w", err)
			}
			sb := query.Subset{ValueLo: req.BValueLo, ValueHi: req.BValueHi,
				SpatialLo: req.BSpatialLo, SpatialHi: req.BSpatialHi}
			prof, err = query.ExplainCorrelation(e.X, eb.X, sub, sb)
			if err != nil {
				return nil, http.StatusBadRequest, err
			}
			resp.GenerationB = eb.Gen
		} else {
			op, err := query.ParseOp(opName)
			if err != nil {
				return nil, http.StatusBadRequest, err
			}
			prof, err = query.Explain(e.X, sub, op)
			if err != nil {
				return nil, http.StatusBadRequest, err
			}
		}
		resp.Explain = prof.Render()
		resp.Digest = prof.PlanDigest
		if resp.Digest == "" {
			// Estimated profiles carry no plan digest; fingerprint the
			// rendered estimate so the response always has one.
			resp.Digest = qlog.DigestString(resp.Explain)
		}
	default:
		return nil, http.StatusBadRequest,
			fmt.Errorf("unknown op %q (count, sum, mean, quantile, minmax, bits, correlation, explain)", req.Op)
	}
	return resp, http.StatusOK, nil
}

// remoteTraceID extracts the caller's trace ID from a W3C traceparent
// header ("00-<32 hex trace id>-<16 hex span id>-<flags>") or the plain
// X-Trace-Id header. "" when neither is present or parseable.
func remoteTraceID(r *http.Request) string {
	if tp := r.Header.Get("traceparent"); tp != "" {
		parts := strings.Split(tp, "-")
		if len(parts) >= 2 && telemetry.ValidTraceID(parts[1]) {
			return parts[1]
		}
	}
	if id := r.Header.Get("X-Trace-Id"); telemetry.ValidTraceID(id) {
		return id
	}
	return ""
}

// writeShed answers a retryable rejection: 429 with both the standard
// integer-seconds Retry-After (rounded up, so "0" never tells a client to
// hammer) and the precise X-Retry-After-Ms our own client prefers.
func writeShed(w http.ResponseWriter, retryAfter time.Duration, msg string) {
	ms := retryAfter.Milliseconds()
	if ms <= 0 {
		ms = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt((ms+999)/1000, 10))
	w.Header().Set("X-Retry-After-Ms", strconv.FormatInt(ms, 10))
	writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: msg, RetryAfterMs: ms})
}

func writeError(w http.ResponseWriter, code int, msg string, retryAfterMs int64) {
	writeJSON(w, code, ErrorResponse{Error: msg, RetryAfterMs: retryAfterMs})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
