package serve

import (
	"testing"

	"insitubits/internal/insitu"
	"insitubits/internal/iosim"
	"insitubits/internal/selection"
	"insitubits/internal/sim/heat3d"
	"insitubits/internal/telemetry"
)

// iosimBackoff keeps the test file's backoff literal short.
type iosimBackoff = iosim.Backoff

// newTestTraceRecorder installs a keep-everything trace recorder for the
// test's duration so trace-ID propagation is observable end to end.
func newTestTraceRecorder(t testing.TB) *telemetry.TraceRecorder {
	t.Helper()
	rec := telemetry.NewTraceRecorder(telemetry.TraceConfig{Capacity: 64, SampleEvery: 1})
	telemetry.SetTraceRecorder(rec)
	t.Cleanup(func() { telemetry.SetTraceRecorder(nil) })
	return rec
}

// runInsituFixture runs a small bitmaps-method in-situ pipeline into a
// temp output directory and returns the directory — journal and manifest
// both present, newest select record naming real .isbm files.
func runInsituFixture(t testing.TB, selectSteps int) string {
	t.Helper()
	dir := t.TempDir()
	h, err := heat3d.New(12, 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	st, err := iosim.NewStore(100)
	if err != nil {
		t.Fatal(err)
	}
	cfg := insitu.Config{
		Sim:       h,
		Steps:     selectSteps * 2,
		Select:    selectSteps,
		Method:    insitu.Bitmaps,
		Bins:      32,
		Metric:    selection.ConditionalEntropy,
		Cores:     2,
		Store:     st,
		OutputDir: dir,
	}
	if _, err := insitu.Run(cfg); err != nil {
		t.Fatal(err)
	}
	return dir
}
