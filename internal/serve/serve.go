// Package serve is the concurrent query server: an HTTP/JSON daemon that
// loads immutable .isbm indexes once (shared, read-only,
// generation-stamped) and executes Count/Sum/Mean/Quantile/MinMax/Bits/
// Correlation/EXPLAIN requests through the existing planner, bitmap cache,
// workload log, tracing, and profiling planes (cmd/insitu-serve is the
// binary; docs/SERVING.md the manual).
//
// Robustness is the core of the design, not a wrapper:
//
//   - Per-request deadlines: a server default, overridable per request and
//     clamped to a maximum, bounds the admission wait.
//   - Admission control: a max-inflight semaphore fronted by a bounded
//     wait queue. A full queue sheds with 429 + Retry-After — overload
//     degrades to fast rejections, never to collapse.
//   - Panic isolation: a panicking request answers 500 and increments a
//     counter; the server survives.
//   - Zero-downtime reload: catalogs are immutable snapshots behind one
//     atomic pointer. A request captures its snapshot at admission, so a
//     publish mid-request can never mix generations; superseded
//     generations are invalidated from the bitmap cache after the swap.
//   - Graceful drain: Drain flips readiness (so /readyz answers 503 and
//     load balancers rotate the server out), refuses new queries, and
//     waits for in-flight requests under a drain deadline.
//   - Identity propagation: a traceparent or X-Trace-Id header joins the
//     server's trace, slow-log, and workload-log records to the client's
//     trace ID.
//
// The chaos harness in this package (overload storms, slow-loris clients,
// publish-during-query, kill-during-drain) is the executable proof of
// those claims — wired into CI as `make serve-chaos`.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"insitubits/internal/bitcache"
	"insitubits/internal/qlog"
	"insitubits/internal/telemetry"
)

// Config bounds a Server. The zero value gets usable defaults; every knob
// is also an insitu-serve flag (docs/SERVING.md "Resilience knobs").
type Config struct {
	// MaxInflight is the number of concurrently executing queries.
	// Default 2×GOMAXPROCS — queries are CPU-bound scans, so slots beyond
	// the core count only add queueing inside the runtime.
	MaxInflight int
	// MaxQueue is the number of requests that may wait for a slot before
	// arrivals are shed with 429. Default 4×MaxInflight.
	MaxQueue int
	// DefaultTimeout bounds a request that does not ask for a deadline
	// itself. Default 2s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps the per-request timeout_ms override. Default 30s.
	MaxTimeout time.Duration
	// DrainTimeout bounds how long Drain waits for in-flight requests.
	// Default 10s.
	DrainTimeout time.Duration
	// RetryAfter is the backoff hint stamped on shed responses (the
	// Retry-After / X-Retry-After-Ms headers). Default 250ms.
	RetryAfter time.Duration
	// Registry receives the serve.* counters/gauges and the "serve" status
	// provider. Nil means telemetry.Default.
	Registry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInflight
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 250 * time.Millisecond
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default
	}
	return c
}

// Server states, in lifecycle order.
const (
	stateLoading int32 = iota
	stateReady
	stateDraining
)

// Server executes query requests against an atomically swappable catalog
// of immutable indexes. Construct with New, load with LoadFiles/LoadDir,
// serve the Handler, and Drain on shutdown.
type Server struct {
	cfg Config
	adm *admission
	cat atomic.Pointer[catalog]

	state    atomic.Int32
	reloadMu sync.Mutex     // serializes catalog swaps
	inflight sync.WaitGroup // admitted /v1/query requests, for Drain

	requests atomic.Int64 // /v1/query arrivals
	panics   atomic.Int64 // recovered request panics
	reloads  atomic.Int64 // catalog swaps that changed the snapshot
	refused  atomic.Int64 // refused while loading/draining

	mux *http.ServeMux
	tel struct {
		requests, admitted, shed, cancelled, panics, reloads *telemetry.Counter
		inflight, queued                                     *telemetry.Gauge
		latency                                              *telemetry.Histogram
	}
}

// New builds a Server. No catalog is loaded yet: /readyz answers 503 and
// queries are refused until LoadFiles/LoadDir succeeds.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, adm: newAdmission(cfg.MaxInflight, cfg.MaxQueue)}
	s.state.Store(stateLoading)
	r := cfg.Registry
	s.tel.requests = r.Counter("serve.requests")
	s.tel.admitted = r.Counter("serve.admitted")
	s.tel.shed = r.Counter("serve.shed")
	s.tel.cancelled = r.Counter("serve.queue_cancelled")
	s.tel.panics = r.Counter("serve.panics")
	s.tel.reloads = r.Counter("serve.reloads")
	s.tel.inflight = r.Gauge("serve.inflight")
	s.tel.queued = r.Gauge("serve.queued")
	s.tel.latency = r.Histogram("serve.request_ns")
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Handler returns the server's HTTP handler (the /v1 API plus /healthz and
// /readyz). The caller owns the http.Server wrapping it — including the
// Read/Write timeouts that defeat slow-loris clients (cmd/insitu-serve
// sets both; httptest servers in the chaos harness do too).
func (s *Server) Handler() http.Handler { return s.mux }

// LoadFiles loads explicit "name=path" index specs as the served catalog.
func (s *Server) LoadFiles(specs []string) error { return s.swapFrom(func() (*catalog, error) { return loadFiles(specs) }) }

// LoadDir loads the newest committed step of an in-situ run's output
// directory (live runs are read through the journal, finished ones through
// the manifest).
func (s *Server) LoadDir(dir string) error { return s.swapFrom(func() (*catalog, error) { return loadDir(dir) }) }

// Reload re-runs the loader the current catalog came from and swaps in the
// result if it changed. It returns true when a new catalog was published.
// Safe to call concurrently with queries: in-flight requests keep their
// snapshot; the superseded generations are invalidated from the bitmap
// cache so no later request can hit stale cached bitmaps.
func (s *Server) Reload() (bool, error) {
	cur := s.cat.Load()
	if cur == nil {
		return false, fmt.Errorf("serve: nothing loaded yet")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	cur = s.cat.Load()
	var next *catalog
	var err error
	if cur.step >= 0 {
		next, err = loadDir(cur.source)
	} else {
		// Explicit file set: re-read the same specs (paths are identity).
		specs := make([]string, 0, len(cur.names))
		for _, n := range cur.names {
			specs = append(specs, n+"="+cur.entries[n].Path)
		}
		next, err = loadFiles(specs)
	}
	if err != nil {
		return false, err
	}
	if next.fprint == cur.fprint {
		return false, nil
	}
	s.publish(next, cur)
	return true, nil
}

// Changed reports whether the catalog's source has changed on disk since
// it was loaded — the cheap poll a watcher runs before paying for Reload.
func (s *Server) Changed() bool {
	cur := s.cat.Load()
	if cur == nil || cur.step < 0 {
		return false
	}
	fp, err := dirFingerprint(cur.source)
	return err == nil && fp != cur.fprint
}

// swapFrom runs a loader and publishes its catalog.
func (s *Server) swapFrom(load func() (*catalog, error)) error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	next, err := load()
	if err != nil {
		return err
	}
	s.publish(next, s.cat.Load())
	return nil
}

// publish swaps next in (stamping its catalog generation), marks the
// server ready, and invalidates the bitmap-cache generations the old
// catalog held. Invalidation is safe while old-snapshot requests are still
// executing: cache keys embed the index generation, so those requests just
// recompute instead of re-caching stale entries under a live key.
func (s *Server) publish(next, old *catalog) {
	if old != nil {
		next.gen = old.gen + 1
	} else {
		next.gen = 1
	}
	s.cat.Store(next)
	s.state.CompareAndSwap(stateLoading, stateReady)
	if old != nil {
		s.reloads.Add(1)
		s.tel.reloads.Inc()
		if c := bitcache.Default(); c != nil {
			for _, name := range old.names {
				oldE := old.entries[name]
				if newE := next.entries[name]; newE == nil || newE.X != oldE.X {
					c.InvalidateGeneration(oldE.Gen)
				}
			}
		}
	}
}

// Watch polls the catalog source every interval and reloads on change,
// until ctx ends. onSwap (optional) observes each successful swap. This is
// the cross-process subscription to a live insitu-run; in-process
// embedders wire Server.Reload to PipelineConfig.OnPublish instead.
func (s *Server) Watch(ctx context.Context, interval time.Duration, onSwap func(step int)) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if !s.Changed() {
			continue
		}
		if swapped, err := s.Reload(); err == nil && swapped && onSwap != nil {
			onSwap(s.cat.Load().step)
		}
	}
}

// Drain gracefully shuts the query path down: readiness flips to 503 (so
// probes rotate the server out), new queries are refused, and in-flight
// requests get up to DrainTimeout to finish. It returns nil when every
// in-flight request completed, or an error naming how many were abandoned.
func (s *Server) Drain(ctx context.Context) error {
	s.state.Store(stateDraining)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	timeout := time.NewTimer(s.cfg.DrainTimeout)
	defer timeout.Stop()
	select {
	case <-done:
		return nil
	case <-timeout.C:
		return fmt.Errorf("serve: drain deadline (%s) passed with %d requests still in flight",
			s.cfg.DrainTimeout, s.adm.inflight())
	case <-ctx.Done():
		return fmt.Errorf("serve: drain cancelled: %w", ctx.Err())
	}
}

// Draining reports whether Drain has started.
func (s *Server) Draining() bool { return s.state.Load() == stateDraining }

// Status is the server's live snapshot, published as the "serve" registry
// status (so /debug/serve, /healthz embedding, `bitmapctl top`, and the
// diag bundle all see it) and embedded in /readyz responses.
type Status struct {
	State       string   `json:"state"` // loading | ready | draining
	CatalogGen  uint64   `json:"catalog_generation"`
	Step        int      `json:"step"`
	Vars        []string `json:"vars,omitempty"`
	MaxInflight int      `json:"max_inflight"`
	MaxQueue    int      `json:"max_queue"`
	Inflight    int      `json:"inflight"`
	Queued      int      `json:"queued"`
	Requests    int64    `json:"requests"`
	Admitted    int64    `json:"admitted"`
	Shed        int64    `json:"shed"`
	Cancelled   int64    `json:"queue_cancelled"`
	Refused     int64    `json:"refused"`
	Panics      int64    `json:"panics"`
	Reloads     int64    `json:"reloads"`
}

// Status returns the live snapshot (atomics only — safe to call from a
// probe at any rate).
func (s *Server) Status() Status {
	st := Status{
		State:       "loading",
		Step:        -1,
		MaxInflight: s.cfg.MaxInflight,
		MaxQueue:    s.cfg.MaxQueue,
		Inflight:    s.adm.inflight(),
		Queued:      s.adm.waiting(),
		Requests:    s.requests.Load(),
		Admitted:    s.adm.admitted.Load(),
		Shed:        s.adm.shed.Load(),
		Cancelled:   s.adm.cancelled.Load(),
		Refused:     s.refused.Load(),
		Panics:      s.panics.Load(),
		Reloads:     s.reloads.Load(),
	}
	switch s.state.Load() {
	case stateReady:
		st.State = "ready"
	case stateDraining:
		st.State = "draining"
	}
	if c := s.cat.Load(); c != nil {
		st.CatalogGen = c.gen
		st.Step = c.step
		st.Vars = c.names
	}
	return st
}

// StatusName is the registry status key PublishStatus registers under.
const StatusName = "serve"

// PublishStatus registers the server's live status with its registry (and
// mounts /debug/serve and /readyz on the registry's debug server), so the
// ops surface — `bitmapctl top`, `bitmapctl diag`, load balancers probing
// the debug port — sees admission and shed counters without new plumbing.
func (s *Server) PublishStatus() {
	r := s.cfg.Registry
	r.PublishStatus(StatusName, func() any { return s.Status() })
	r.RegisterDebugHandler("/debug/serve", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.Status())
	}))
	r.RegisterDebugHandler("/readyz", http.HandlerFunc(s.handleReadyz))
}

// ready reports whether the query path accepts work, with the refusal
// reason when not.
func (s *Server) ready() (bool, string) {
	switch s.state.Load() {
	case stateLoading:
		return false, "loading"
	case stateDraining:
		return false, "draining"
	}
	if h := qlog.Active().Health(); h.Path != "" && (!h.Enabled || h.Errors > 0) {
		return false, fmt.Sprintf("workload log unhealthy (%d errors, enabled=%v)", h.Errors, h.Enabled)
	}
	return true, ""
}
