package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"insitubits/internal/iosim"
)

// Client talks to an insitu-serve instance with the retry discipline the
// server's admission control assumes: a 429 (shed) or a transport error is
// retried with exponential backoff and full jitter (the iosim.Backoff
// shape), floored by the server's Retry-After hint so a fleet of clients
// never thunders back in lockstep. Anything else — 400s, 500s, and
// successes — returns immediately: a panic-500 or a bad request will not
// get better by retrying.
type Client struct {
	// Base is the server address, e.g. "http://localhost:8689".
	Base string
	// HTTP is the transport; nil means a client with a 35s total timeout
	// (past the server's maximum request deadline).
	HTTP *http.Client
	// Backoff paces retries. The zero value retries 4 times from 1ms; load
	// tests and bitmapctl widen it.
	Backoff iosim.Backoff

	// Retries counts retried attempts (shed or transport), for reports.
	Retries int
}

// StatusError is a non-200, non-retryable (or retries-exhausted) server
// answer.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: server answered %d: %s", e.Code, e.Msg)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 35 * time.Second}
}

// Query executes one request, retrying sheds and transport errors under
// the client's backoff. The context bounds the whole retry loop.
func (c *Client) Query(ctx context.Context, req *QueryRequest) (*QueryResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	b := c.Backoff
	if b.Tries <= 0 {
		b.Tries = 4
	}
	if b.Base <= 0 {
		b.Base = time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 100 * time.Millisecond
	}
	if b.Seed == 0 {
		b.Seed = 1
	}
	rng := rand.New(rand.NewSource(b.Seed))
	delay := b.Base
	var lastErr error
	for attempt := 1; ; attempt++ {
		resp, hint, err := c.once(ctx, body)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if se, ok := err.(*StatusError); ok && se.Code != http.StatusTooManyRequests {
			return nil, err // definitive answer: do not retry
		}
		if attempt >= b.Tries {
			return nil, fmt.Errorf("serve: giving up after %d attempts: %w", attempt, lastErr)
		}
		c.Retries++
		if b.OnRetry != nil {
			b.OnRetry(attempt, err)
		}
		// Full jitter over the current ceiling, floored by the server's
		// Retry-After hint: jitter decorrelates the fleet, the floor keeps
		// everyone off the server for as long as it asked.
		sleep := time.Duration(rng.Int63n(int64(delay) + 1))
		if hint > 0 && sleep < hint {
			sleep = hint
		}
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			return nil, fmt.Errorf("serve: retry wait: %w", ctx.Err())
		}
		if delay *= 2; delay > b.Max {
			delay = b.Max
		}
	}
}

// once is a single attempt; hint is the server's Retry-After on a shed.
func (c *Client) once(ctx context.Context, body []byte) (_ *QueryResponse, hint time.Duration, _ error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, 0, err // transport error: retryable
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hresp.Body, maxBody))
	if err != nil {
		return nil, 0, err
	}
	if hresp.StatusCode != http.StatusOK {
		var e ErrorResponse
		_ = json.Unmarshal(data, &e)
		if e.Error == "" {
			e.Error = string(data)
		}
		return nil, retryAfterHint(hresp, e), &StatusError{Code: hresp.StatusCode, Msg: e.Error}
	}
	var resp QueryResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, 0, fmt.Errorf("serve: bad response body: %w", err)
	}
	return &resp, 0, nil
}

// retryAfterHint reads the shed backoff hint, preferring the millisecond
// header over the coarse integer-seconds standard one.
func retryAfterHint(hresp *http.Response, e ErrorResponse) time.Duration {
	if ms, err := strconv.ParseInt(hresp.Header.Get("X-Retry-After-Ms"), 10, 64); err == nil && ms > 0 {
		return time.Duration(ms) * time.Millisecond
	}
	if e.RetryAfterMs > 0 {
		return time.Duration(e.RetryAfterMs) * time.Millisecond
	}
	if sec, err := strconv.ParseInt(hresp.Header.Get("Retry-After"), 10, 64); err == nil && sec > 0 {
		return time.Duration(sec) * time.Second
	}
	return 0
}

// Vars fetches the served catalog listing.
func (c *Client) Vars(ctx context.Context) (map[string]any, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/vars", nil)
	if err != nil {
		return nil, err
	}
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hresp.Body, maxBody))
	if err != nil {
		return nil, err
	}
	if hresp.StatusCode != http.StatusOK {
		return nil, &StatusError{Code: hresp.StatusCode, Msg: string(data)}
	}
	var out map[string]any
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	return out, nil
}
