// Package cluster runs the paper's parallel in-situ environment (§5.3,
// Figure 13): the global Heat3D grid is decomposed into z-slabs, one per
// simulated node; nodes exchange boundary planes every step (goroutines and
// channels standing in for MPI); each node generates bitmaps over its own
// slab ("distributed bitmaps", Figure 2); and the selection metrics are
// computed globally by reducing per-node histograms and joint counts —
// never moving the data itself. Output goes either to per-node local disks
// (parallel) or to one shared remote data server (contended).
package cluster

import (
	"fmt"
	"sync"
	"time"

	"insitubits/internal/binning"
	"insitubits/internal/index"
	"insitubits/internal/iosim"
	"insitubits/internal/metrics"
	"insitubits/internal/selection"
	"insitubits/internal/sim/heat3d"
	"insitubits/internal/store"
)

// Method mirrors the two Figure 13 reduction methods.
type Method int

const (
	// Bitmaps writes per-node compressed indices.
	Bitmaps Method = iota
	// FullData writes per-node raw arrays.
	FullData
)

// Config parameterizes one cluster run.
type Config struct {
	Nodes        int
	CoresPerNode int
	// Global grid; decomposed into z-slabs (GridZ must allow ≥1 interior
	// plane per node).
	GridX, GridY, GridZ int

	Steps  int
	Select int
	Metric selection.Metric
	Method Method
	Bins   int

	// LocalMBps is each node's local disk bandwidth; used when Remote is
	// nil. Writes proceed in parallel across nodes, so modelled output
	// time is the slowest node's transfer.
	LocalMBps float64
	// Remote, when set, is the single shared data server every node writes
	// to; its modelled time accumulates over all nodes' bytes.
	Remote *iosim.Store
}

func (c *Config) validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("cluster: %d nodes", c.Nodes)
	}
	if c.CoresPerNode < 1 {
		return fmt.Errorf("cluster: %d cores per node", c.CoresPerNode)
	}
	if c.GridZ < 3*c.Nodes {
		return fmt.Errorf("cluster: grid z=%d too shallow for %d nodes", c.GridZ, c.Nodes)
	}
	if c.Steps < 1 || c.Select < 1 || c.Select > c.Steps {
		return fmt.Errorf("cluster: select %d of %d steps", c.Select, c.Steps)
	}
	if c.Bins < 1 {
		return fmt.Errorf("cluster: %d bins", c.Bins)
	}
	if c.Remote == nil && c.LocalMBps <= 0 {
		return fmt.Errorf("cluster: local bandwidth %g MB/s", c.LocalMBps)
	}
	return nil
}

// Result reports one cluster run.
type Result struct {
	// Simulate and Reduce are the wall time of the parallel phases (all
	// nodes working concurrently); Select is metric-evaluation time;
	// Output is the modelled transfer time (max node for local, shared
	// total for remote).
	Simulate, Reduce, Select, Output time.Duration
	Selected                         []int
	BytesWritten                     int64
}

// Total sums the phases.
func (r *Result) Total() time.Duration { return r.Simulate + r.Reduce + r.Select + r.Output }

// node is one simulated machine.
type node struct {
	sim  *heat3d.Sim
	up   chan []float64 // plane flowing to the node above (z+)
	down chan []float64 // plane flowing to the node below (z-)
}

// stepSummary is one global time-step: per-node pieces of either indices or
// raw slabs, plus the bytes its selected form would occupy on storage.
type stepSummary struct {
	step     int
	indices  []*index.Index // Bitmaps
	slabs    [][]float64    // FullData
	mapper   binning.Mapper
	outBytes []int64 // per node
}

// Run executes the cluster experiment.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	nodes, err := buildNodes(cfg)
	if err != nil {
		return nil, err
	}
	mapper, err := binning.NewUniform(0, 130, cfg.Bins)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	sc := newScratch(cfg.Bins)
	// Streaming greedy selection over intervals (as in the single-node
	// pipeline): step 0 is kept, then one winner per interval.
	intervals := selection.FixedLength{}.Partition(make([]float64, cfg.Steps), cfg.Select)
	ivPos := 0
	var prev, best *stepSummary
	bestScore := 0.0
	commit := func(s *stepSummary) {
		res.Selected = append(res.Selected, s.step)
		prev = s
		var maxNode int64
		for _, b := range s.outBytes {
			res.BytesWritten += b
			if b > maxNode {
				maxNode = b
			}
			if cfg.Remote != nil {
				cfg.Remote.Account(b)
			}
		}
		if cfg.Remote == nil {
			// Local disks write in parallel; the slowest node gates.
			res.Output += iosim.ModelTransfer(maxNode, cfg.LocalMBps)
		}
	}

	for t := 0; t < cfg.Steps; t++ {
		t0 := time.Now()
		parallelStep(nodes, cfg.CoresPerNode)
		t1 := time.Now()
		summary := reduceStep(cfg, nodes, mapper, t)
		t2 := time.Now()
		res.Simulate += t1.Sub(t0)
		res.Reduce += t2.Sub(t1)

		if t == 0 {
			commit(summary)
			continue
		}
		t3 := time.Now()
		score := dissimilarity(summary, prev, cfg.Metric, sc)
		res.Select += time.Since(t3)
		if ivPos < len(intervals) {
			iv := intervals[ivPos]
			if t >= iv[0] && t < iv[1] {
				if best == nil || score > bestScore {
					best, bestScore = summary, score
				}
				if t == iv[1]-1 {
					commit(best)
					best = nil
					ivPos++
				}
			}
		}
	}
	if cfg.Remote != nil {
		res.Output = cfg.Remote.ModeledTime()
	}
	return res, nil
}

// buildNodes decomposes the global grid into z-slabs with ghost planes and
// wires neighbor channels.
func buildNodes(cfg Config) ([]*node, error) {
	slab := cfg.GridZ / cfg.Nodes
	extra := cfg.GridZ % cfg.Nodes
	nodes := make([]*node, cfg.Nodes)
	for k := range nodes {
		nz := slab
		if k < extra {
			nz++
		}
		// +2 ghost planes except at the global domain ends (which keep the
		// physical Dirichlet boundary).
		local := nz
		if k > 0 {
			local++
		}
		if k < cfg.Nodes-1 {
			local++
		}
		s, err := heat3d.New(cfg.GridX, cfg.GridY, local)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %d: %w", k, err)
		}
		nodes[k] = &node{
			sim:  s,
			up:   make(chan []float64, 1),
			down: make(chan []float64, 1),
		}
	}
	return nodes, nil
}

// parallelStep performs one halo exchange plus one simulation step on every
// node concurrently. Channels carry the boundary planes, as MPI would.
func parallelStep(nodes []*node, coresPerNode int) {
	var wg sync.WaitGroup
	for k := range nodes {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			n := nodes[k]
			_, _, nz := n.sim.Dims()
			// Send interior boundary planes to neighbors.
			if k < len(nodes)-1 {
				nodes[k+1].down <- n.sim.PlaneZ(nz-2, nil)
			}
			if k > 0 {
				nodes[k-1].up <- n.sim.PlaneZ(1, nil)
			}
			// Install ghosts received from neighbors.
			if k > 0 {
				n.sim.SetPlaneZ(0, <-n.down)
			}
			if k < len(nodes)-1 {
				n.sim.SetPlaneZ(nz-1, <-n.up)
			}
			n.sim.StepInto(coresPerNode, nil)
		}(k)
	}
	wg.Wait()
}

// reduceStep builds the per-node summaries concurrently.
func reduceStep(cfg Config, nodes []*node, mapper binning.Mapper, t int) *stepSummary {
	s := &stepSummary{step: t, mapper: mapper, outBytes: make([]int64, len(nodes))}
	switch cfg.Method {
	case Bitmaps:
		s.indices = make([]*index.Index, len(nodes))
	default:
		s.slabs = make([][]float64, len(nodes))
	}
	var wg sync.WaitGroup
	for k := range nodes {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			data := interiorCopy(cfg, nodes, k)
			if cfg.Method == Bitmaps {
				x := index.BuildParallel(data, mapper, cfg.CoresPerNode)
				s.indices[k] = x
				s.outBytes[k] = store.IndexSize(x)
			} else {
				s.slabs[k] = data
				s.outBytes[k] = store.RawSize(len(data))
			}
		}(k)
	}
	wg.Wait()
	return s
}

// interiorCopy extracts node k's owned planes (excluding ghosts) so the
// same global element set is analyzed regardless of node count.
func interiorCopy(cfg Config, nodes []*node, k int) []float64 {
	n := nodes[k]
	nx, ny, nz := n.sim.Dims()
	lo, hi := 0, nz
	if k > 0 {
		lo++
	}
	if k < len(nodes)-1 {
		hi--
	}
	plane := nx * ny
	out := make([]float64, (hi-lo)*plane)
	copy(out, n.sim.Temperature()[lo*plane:hi*plane])
	return out
}

// scratch holds reusable metric buffers so scoring a step pair allocates
// nothing proportional to node count — essential at high node counts where
// per-node joint-matrix allocations would otherwise dominate selection.
type scratch struct {
	ha, hb     []int
	joint      [][]int
	jointCells []int
	ids        []int32
}

func newScratch(nBins int) *scratch {
	s := &scratch{
		ha:         make([]int, nBins),
		hb:         make([]int, nBins),
		joint:      make([][]int, nBins),
		jointCells: make([]int, nBins*nBins),
	}
	cells := s.jointCells
	for i := range s.joint {
		s.joint[i], cells = cells[:nBins], cells[nBins:]
	}
	return s
}

func (s *scratch) reset() {
	for i := range s.ha {
		s.ha[i] = 0
		s.hb[i] = 0
	}
	for i := range s.jointCells {
		s.jointCells[i] = 0
	}
}

// dissimilarity computes the global metric by reducing per-node pieces into
// the shared scratch buffers.
func dissimilarity(a, b *stepSummary, metric selection.Metric, sc *scratch) float64 {
	switch metric {
	case selection.EMDCount, selection.ConditionalEntropy:
		sc.reset()
		wantJoint := metric == selection.ConditionalEntropy
		n := 0
		for k := 0; k < a.nNodes(); k++ {
			n += accumulateNode(a, b, k, wantJoint, sc)
		}
		if metric == selection.EMDCount {
			return metrics.EMDCount(sc.ha, sc.hb)
		}
		return metrics.ConditionalEntropy(sc.joint, sc.ha, sc.hb, n)
	case selection.EMDSpatial:
		// Per-bin XOR counts sum across nodes; the CFP accumulates over the
		// global per-bin differences.
		diffs := make([]int, a.mapper.Bins())
		for k := 0; k < a.nNodes(); k++ {
			addXorDiffs(a, b, k, diffs)
		}
		cfp := 0
		total := 0.0
		for _, d := range diffs {
			cfp += d
			total += float64(cfp)
		}
		return total
	default:
		panic("cluster: unsupported metric " + metric.String())
	}
}

func (s *stepSummary) nNodes() int {
	if s.indices != nil {
		return len(s.indices)
	}
	return len(s.slabs)
}

// accumulateNode adds node k's marginals (and, when requested, its joint
// distribution) into the scratch buffers and returns its element count.
// For bitmaps, the joint tally decodes both slab indices into bin ids in
// O(slab); the decoded-id buffer is reused across nodes and steps.
func accumulateNode(a, b *stepSummary, k int, wantJoint bool, sc *scratch) int {
	if a.indices != nil {
		xa, xb := a.indices[k], b.indices[k]
		for i, c := range xa.Histogram() {
			sc.ha[i] += c
		}
		for j, c := range xb.Histogram() {
			sc.hb[j] += c
		}
		if wantJoint {
			n := xa.N()
			if cap(sc.ids) < 2*n {
				sc.ids = make([]int32, 2*n)
			}
			ida := xa.BinIDs(sc.ids[:n])
			idb := xb.BinIDs(sc.ids[n : 2*n])
			for p := range ida {
				sc.joint[ida[p]][idb[p]]++
			}
		}
		return xa.N()
	}
	da, db := a.slabs[k], b.slabs[k]
	for p := range da {
		i := a.mapper.Bin(da[p])
		j := b.mapper.Bin(db[p])
		sc.ha[i]++
		sc.hb[j]++
		if wantJoint {
			sc.joint[i][j]++
		}
	}
	return len(da)
}

func addXorDiffs(a, b *stepSummary, k int, diffs []int) {
	if a.indices != nil {
		xa, xb := a.indices[k], b.indices[k]
		for j := 0; j < xa.Bins(); j++ {
			diffs[j] += xa.Bitmap(j).XorCount(xb.Bitmap(j))
		}
		return
	}
	da, db := a.slabs[k], b.slabs[k]
	for i := range da {
		ba, bb := a.mapper.Bin(da[i]), b.mapper.Bin(db[i])
		if ba != bb {
			diffs[ba]++
			diffs[bb]++
		}
	}
}
