package cluster

import (
	"testing"

	"insitubits/internal/iosim"
	"insitubits/internal/selection"
	"insitubits/internal/sim/heat3d"
)

func baseConfig() Config {
	return Config{
		Nodes:        2,
		CoresPerNode: 2,
		GridX:        12, GridY: 12, GridZ: 24,
		Steps:     12,
		Select:    4,
		Metric:    selection.ConditionalEntropy,
		Method:    Bitmaps,
		Bins:      64,
		LocalMBps: 200,
	}
}

func TestValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.CoresPerNode = 0 },
		func(c *Config) { c.GridZ = 5; c.Nodes = 4 },
		func(c *Config) { c.Steps = 0 },
		func(c *Config) { c.Select = 0 },
		func(c *Config) { c.Select = c.Steps + 1 },
		func(c *Config) { c.Bins = 0 },
		func(c *Config) { c.LocalMBps = 0 },
	}
	for i, mutate := range bad {
		cfg := baseConfig()
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRunBitmapsLocal(t *testing.T) {
	cfg := baseConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != cfg.Select || res.Selected[0] != 0 {
		t.Fatalf("selected %v", res.Selected)
	}
	if res.BytesWritten <= 0 || res.Output <= 0 {
		t.Fatalf("output unaccounted: %d bytes, %v", res.BytesWritten, res.Output)
	}
	if res.Simulate <= 0 || res.Reduce <= 0 {
		t.Fatalf("phases unmeasured: %+v", res)
	}
}

func TestRemoteSharedContention(t *testing.T) {
	// The same run against a shared 100 MB/s remote store must model a
	// transfer time based on TOTAL bytes, and full data must pay far more
	// than bitmaps — the Figure 13 remote-series gap.
	mk := func(method Method) *Result {
		cfg := baseConfig()
		cfg.Method = method
		remote, err := iosim.NewStore(100)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Remote = remote
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Output != remote.ModeledTime() {
			t.Fatalf("output %v != store model %v", res.Output, remote.ModeledTime())
		}
		return res
	}
	rb := mk(Bitmaps)
	rf := mk(FullData)
	if rb.BytesWritten >= rf.BytesWritten/2 {
		t.Fatalf("bitmaps wrote %d, full data %d", rb.BytesWritten, rf.BytesWritten)
	}
	if rb.Output >= rf.Output {
		t.Fatalf("bitmaps remote output %v not below full data %v", rb.Output, rf.Output)
	}
}

func TestMethodsSelectSameSteps(t *testing.T) {
	// Bitmaps vs full data on the cluster path: identical selections
	// (global metrics reduce to identical numbers).
	run := func(m Method) []int {
		cfg := baseConfig()
		cfg.Method = m
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Selected
	}
	sb := run(Bitmaps)
	sf := run(FullData)
	if len(sb) != len(sf) {
		t.Fatalf("lengths differ: %v vs %v", sb, sf)
	}
	for i := range sb {
		if sb[i] != sf[i] {
			t.Fatalf("bitmaps %v, full data %v", sb, sf)
		}
	}
}

func TestAllMetricsRun(t *testing.T) {
	for _, m := range []selection.Metric{selection.ConditionalEntropy, selection.EMDCount, selection.EMDSpatial} {
		cfg := baseConfig()
		cfg.Metric = m
		cfg.Steps, cfg.Select = 8, 3
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(res.Selected) != 3 {
			t.Fatalf("%v: selected %v", m, res.Selected)
		}
	}
}

// TestHaloExchangeMatchesGlobalSim verifies the decomposition is exact: a
// 2-node cluster whose slabs are initialized from a single global
// simulation evolves identically to that global simulation (sources off).
func TestHaloExchangeMatchesGlobalSim(t *testing.T) {
	const nx, ny, nz = 8, 8, 16
	global, err := heat3d.New(nx, ny, nz)
	if err != nil {
		t.Fatal(err)
	}
	global.SourceEnabled = false

	cfg := baseConfig()
	cfg.GridX, cfg.GridY, cfg.GridZ = nx, ny, nz
	nodes, err := buildNodes(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 owns planes [0,8) plus ghost 8; node 1 owns [8,16) plus ghost 7.
	plane := make([]float64, nx*ny)
	for z := 0; z < 9; z++ {
		nodes[0].sim.SetPlaneZ(z, global.PlaneZ(z, plane))
	}
	for z := 0; z < 9; z++ {
		nodes[1].sim.SetPlaneZ(z, global.PlaneZ(z+7, plane))
	}
	for _, n := range nodes {
		n.sim.SourceEnabled = false
	}

	for step := 0; step < 10; step++ {
		global.StepInto(2, nil)
		parallelStep(nodes, 2)
	}

	g := global.Temperature()
	for z := 0; z < 8; z++ { // node 0 interior
		got := nodes[0].sim.PlaneZ(z, nil)
		want := global.PlaneZ(z, nil)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("node 0 plane %d cell %d: %g vs %g", z, i, got[i], want[i])
			}
		}
	}
	for z := 8; z < 16; z++ { // node 1 interior (local plane z-7)
		got := nodes[1].sim.PlaneZ(z-7, nil)
		want := global.PlaneZ(z, nil)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("node 1 plane %d cell %d: %g vs %g", z, i, got[i], want[i])
			}
		}
	}
	_ = g
}

func TestInteriorCoversGlobalGrid(t *testing.T) {
	// The union of node interiors must equal the global element count for
	// any node count, so analysis always sees the whole domain.
	for _, nodes := range []int{1, 2, 3, 5} {
		cfg := baseConfig()
		cfg.Nodes = nodes
		cfg.GridZ = 30
		ns, err := buildNodes(cfg)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for k := range ns {
			total += len(interiorCopy(cfg, ns, k))
		}
		if want := cfg.GridX * cfg.GridY * cfg.GridZ; total != want {
			t.Fatalf("nodes=%d: interiors cover %d cells, want %d", nodes, total, want)
		}
	}
}

func TestSingleNodeDegeneratesGracefully(t *testing.T) {
	cfg := baseConfig()
	cfg.Nodes = 1
	cfg.GridZ = 12
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != cfg.Select {
		t.Fatalf("selected %v", res.Selected)
	}
}
