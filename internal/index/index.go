// Package index builds and queries the paper's bitmap indices: one
// compressed bitvector per value bin (the low level of Figure 1), optionally
// grouped into high-level interval vectors, generated in a single streaming
// pass over the data with in-place WAH compression (Algorithm 1).
package index

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"insitubits/internal/binning"
	"insitubits/internal/bitvec"
	"insitubits/internal/codec"
)

// Index is a bitmap index over one array of values. The per-bin 1-counts —
// the value histogram — fall out of construction for free and are cached,
// because every information-theoretic metric in the paper starts from them.
// Each bin holds a bitvec.Bitmap of any codec; builders produce WAH and
// Recode applies a per-bin encoding policy afterwards.
type Index struct {
	mapper binning.Mapper
	vecs   []bitvec.Bitmap
	counts []int
	n      int
	gen    uint64
}

// genCounter issues process-unique index generations. Every constructor
// stamps a fresh one and Recode re-stamps, so a generation identifies one
// immutable bitmap state: cached intermediates (internal/bitcache) key on
// it and are invalidated when an in-situ step supersedes an index.
var genCounter atomic.Uint64

func nextGeneration() uint64 { return genCounter.Add(1) }

// Generation returns the identity of this index's current bitmap state.
// It changes whenever the bitmaps could differ: at construction and on
// every in-place Recode.
func (x *Index) Generation() uint64 { return x.gen }

// Build generates the index in one pass using the lazy builder: only bins
// touched by the current 31-element segment are visited, with untouched bins
// accumulating pending zero-fill. This is behaviourally identical to the
// paper's Algorithm 1 (see BuildAlgorithm1) but costs O(values + touched)
// instead of O(values + segments×bins).
func Build(data []float64, m binning.Mapper) *Index {
	var start time.Time
	if tel.buildNs != nil {
		start = time.Now()
	}
	b := NewStreamBuilder(m)
	b.Append(data)
	x := b.Finish()
	if tel.buildNs != nil {
		tel.buildNs.Record(time.Since(start).Nanoseconds())
	}
	return x
}

// BuildAlgorithm1 is a faithful transcription of the paper's Algorithm 1
// ("Generate_Bitmaps"): for every 31-element segment it materializes the
// uncompressed per-bin segment words and merges each — including the
// untouched all-zero ones — into the compressed result. Kept as the fidelity
// reference and the baseline of the dense-vs-lazy ablation bench.
func BuildAlgorithm1(data []float64, m binning.Mapper) *Index {
	binNum := m.Bins()
	segments := make([]uint32, binNum)        // "Segments" of Algorithm 1
	result := make([]bitvec.Appender, binNum) // "Result" of Algorithm 1
	id := 0
	for i := 0; i < len(data); i += bitvec.SegmentBits {
		for j := range segments { // line 5: initialize Segments to 0
			segments[j] = 0
		}
		width := 0
		for j := 0; j < bitvec.SegmentBits && i+j < len(data); j++ {
			vectorID := m.Bin(data[id]) // line 7: MapValueToID
			id++
			segments[vectorID] |= 1 << uint(j) // line 8
			width++
		}
		for j := 0; j < binNum; j++ { // lines 10-27: merge into Result
			if width == bitvec.SegmentBits {
				result[j].AppendSegment(segments[j])
			} else {
				result[j].AppendPartial(segments[j], width)
			}
		}
	}
	idx := &Index{mapper: m, vecs: make([]bitvec.Bitmap, binNum), counts: make([]int, binNum), n: len(data), gen: nextGeneration()}
	for j := range result {
		idx.vecs[j] = result[j].Vector()
		idx.counts[j] = idx.vecs[j].Count()
	}
	recordBuild(idx, 0)
	return idx
}

// FromParts reassembles an Index from deserialized bitmaps (the store
// package's read path). Every bitmap must cover exactly n bits and there
// must be one per bin of the mapper; codecs may differ per bin.
func FromParts(m binning.Mapper, vecs []bitvec.Bitmap, n int) (*Index, error) {
	if len(vecs) != m.Bins() {
		return nil, fmt.Errorf("index: %d vectors for %d bins", len(vecs), m.Bins())
	}
	x := &Index{mapper: m, vecs: vecs, counts: make([]int, len(vecs)), n: n, gen: nextGeneration()}
	for b, v := range vecs {
		if v.Len() != n {
			return nil, fmt.Errorf("index: bin %d covers %d bits, want %d", b, v.Len(), n)
		}
		x.counts[b] = v.Count()
	}
	return x, nil
}

// BuildTwoPhase is the strawman Algorithm 1 replaces: materialize every
// bin's *uncompressed* bitvector first, then compress in a second pass.
// The paper rules this out for in-situ use because the uncompressed bitmaps
// occupy bins × n bits — potentially more than the data itself — while the
// streaming builder never holds more than one 31-bit segment per bin.
// Kept as the streaming-vs-two-phase ablation baseline.
func BuildTwoPhase(data []float64, m binning.Mapper) *Index {
	nb := m.Bins()
	words := (len(data) + 63) / 64
	dense := make([][]uint64, nb)
	for b := range dense {
		dense[b] = make([]uint64, words)
	}
	for i, v := range data {
		b := m.Bin(v)
		dense[b][i/64] |= 1 << uint(i%64)
	}
	x := &Index{mapper: m, vecs: make([]bitvec.Bitmap, nb), counts: make([]int, nb), n: len(data), gen: nextGeneration()}
	for b := range dense {
		var a bitvec.Appender
		for i := 0; i < len(data); i += bitvec.SegmentBits {
			var seg uint32
			width := len(data) - i
			if width > bitvec.SegmentBits {
				width = bitvec.SegmentBits
			}
			for j := 0; j < width; j++ {
				p := i + j
				if dense[b][p/64]&(1<<uint(p%64)) != 0 {
					seg |= 1 << uint(j)
				}
			}
			if width == bitvec.SegmentBits {
				a.AppendSegment(seg)
			} else {
				a.AppendPartial(seg, width)
			}
		}
		x.vecs[b] = a.Vector()
		x.counts[b] = x.vecs[b].Count()
	}
	recordBuild(x, 0)
	return x
}

// N returns the number of indexed elements.
func (x *Index) N() int { return x.n }

// Bins returns the number of bins (bitvectors).
func (x *Index) Bins() int { return len(x.vecs) }

// Mapper returns the binning used to build the index.
func (x *Index) Mapper() binning.Mapper { return x.mapper }

// Bitmap returns the bitmap of bin b (shared, do not mutate).
func (x *Index) Bitmap(b int) bitvec.Bitmap { return x.vecs[b] }

// Codec reports the encoding of bin b.
func (x *Index) Codec(b int) codec.ID { return codec.Of(x.vecs[b]) }

// Recode re-encodes every bin under the given codec (codec.Auto applies
// the adaptive per-bin policy). Bins already in the target encoding are
// untouched; the index is modified in place and returned for chaining.
func (x *Index) Recode(id codec.ID) *Index {
	for b := range x.vecs {
		x.vecs[b] = codec.Encode(x.vecs[b], id)
	}
	// The bitmaps were replaced in place: retire the old generation so no
	// cached intermediate derived from them can be served against the new
	// encodings (logically equal, but physically different objects).
	x.gen = nextGeneration()
	return x
}

// BuildCodec builds the index (streaming WAH generation) and then applies
// the given encoding policy per bin.
func BuildCodec(data []float64, m binning.Mapper, id codec.ID) *Index {
	return Build(data, m).Recode(id)
}

// Count returns the cached number of elements in bin b.
func (x *Index) Count(b int) int {
	tel.cacheHits.Inc()
	return x.counts[b]
}

// Histogram returns the per-bin element counts (shared slice; copy to mutate).
func (x *Index) Histogram() []int { return x.counts }

// BinIDs decodes the index into a per-element bin-id array: out[i] is the
// bin containing element i. One pass over the compressed vectors (every
// element is set in exactly one bin, so the total decode work is O(n)).
// This powers the scale-robust joint-histogram path: at reproduction scale
// bins² compressed ANDs can exceed an O(n) decode, while both use only the
// bitmaps and produce identical numbers.
func (x *Index) BinIDs(dst []int32) []int32 {
	if len(dst) != x.n {
		dst = make([]int32, x.n)
	}
	for b, v := range x.vecs {
		if x.counts[b] == 0 {
			continue
		}
		v.WriteIDs(dst, int32(b))
	}
	return dst
}

// SizeBytes returns the total compressed size of all bitvectors — the
// number that must stay well under the raw data size (paper: < 30 %).
func (x *Index) SizeBytes() int {
	total := 0
	for _, v := range x.vecs {
		total += v.SizeBytes()
	}
	return total
}

// Query returns the bitvector of elements whose value lies in [lo, hi),
// OR-ing together every bin overlapping the range. Bins straddling the
// endpoints are included whole (bin-granular semantics, as in the paper).
func (x *Index) Query(lo, hi float64) bitvec.Bitmap {
	tel.queries.Inc()
	if tel.orMergeNs != nil {
		start := time.Now()
		defer func() { tel.orMergeNs.Record(time.Since(start).Nanoseconds()) }()
	}
	var acc bitvec.Bitmap
	for b := 0; b < x.Bins(); b++ {
		if x.mapper.High(b) <= lo || x.mapper.Low(b) >= hi {
			continue
		}
		if acc == nil {
			acc = x.vecs[b]
		} else {
			acc = acc.Or(x.vecs[b])
		}
	}
	if acc == nil {
		return bitvec.FromBools(make([]bool, x.n))
	}
	return acc.Clone()
}

// StreamBuilder incrementally indexes a stream of values — the in-situ
// generation path, where simulation output is consumed segment by segment
// and immediately discarded (paper §2.3 "Online Compression"). Each bin
// holds a compressed appender plus a pending count of all-zero segments, so
// a segment only costs work proportional to the bins it actually touches.
type StreamBuilder struct {
	mapper  binning.Mapper
	apps    []bitvec.Appender
	segs    []uint32
	touched []int32
	width   int // elements in the current (unflushed) segment
	nSegs   int // full segments flushed so far
	n       int
}

// NewStreamBuilder returns an empty builder for the given binning.
func NewStreamBuilder(m binning.Mapper) *StreamBuilder {
	nb := m.Bins()
	return &StreamBuilder{
		mapper: m,
		apps:   make([]bitvec.Appender, nb),
		segs:   make([]uint32, nb),
	}
}

// Append indexes a chunk of values; chunks of any size may be appended.
func (sb *StreamBuilder) Append(data []float64) {
	for _, v := range data {
		b := sb.mapper.Bin(v)
		if sb.segs[b] == 0 {
			sb.touched = append(sb.touched, int32(b))
		}
		sb.segs[b] |= 1 << uint(sb.width)
		sb.width++
		if sb.width == bitvec.SegmentBits {
			sb.flushSegment()
		}
	}
	sb.n += len(data)
}

// flushSegment merges the current 31-element segment into each touched bin.
// A touched bin that fell behind (untouched for some segments) first catches
// up with one zero-fill run, so untouched bins cost nothing per segment —
// the lazy improvement over Algorithm 1's dense merge loop.
func (sb *StreamBuilder) flushSegment() {
	for _, b := range sb.touched {
		if gap := sb.nSegs - sb.apps[b].Len()/bitvec.SegmentBits; gap > 0 {
			sb.apps[b].AppendFill(0, gap)
		}
		sb.apps[b].AppendSegment(sb.segs[b])
		sb.segs[b] = 0
	}
	sb.touched = sb.touched[:0]
	sb.nSegs++
	sb.width = 0
}

// Finish flushes the trailing partial segment and outstanding zero runs and
// returns the completed index. The builder must not be reused afterwards.
func (sb *StreamBuilder) Finish() *Index {
	nb := len(sb.apps)
	inSeg := make([]bool, nb)
	for _, b := range sb.touched {
		inSeg[b] = true
	}
	for b := 0; b < nb; b++ {
		if gap := sb.nSegs - sb.apps[b].Len()/bitvec.SegmentBits; gap > 0 {
			sb.apps[b].AppendFill(0, gap)
		}
		if sb.width > 0 {
			if inSeg[b] {
				sb.apps[b].AppendPartial(sb.segs[b], sb.width)
			} else {
				sb.apps[b].AppendPartial(0, sb.width)
			}
		}
	}
	x := &Index{mapper: sb.mapper, vecs: make([]bitvec.Bitmap, nb), counts: make([]int, nb), n: sb.n, gen: nextGeneration()}
	for b := 0; b < nb; b++ {
		x.vecs[b] = sb.apps[b].Vector()
		x.counts[b] = x.vecs[b].Count()
	}
	recordBuild(x, 0)
	return x
}

// SizeBytes reports the compressed bytes accumulated so far — the in-situ
// memory footprint of the partially built index.
func (sb *StreamBuilder) SizeBytes() int {
	total := 0
	for i := range sb.apps {
		total += sb.apps[i].SizeBytes()
	}
	return total
}

// BuildParallel partitions the data into nWorkers sub-blocks aligned to the
// 31-bit segment size, builds a sub-index per block concurrently — the
// paper's Figure 2, where each bitmap-generation core owns one sub-block —
// and concatenates the per-block bitvectors into one index.
func BuildParallel(data []float64, m binning.Mapper, nWorkers int) *Index {
	if nWorkers < 1 {
		nWorkers = 1
	}
	nSegs := (len(data) + bitvec.SegmentBits - 1) / bitvec.SegmentBits
	if nWorkers > nSegs && nSegs > 0 {
		nWorkers = nSegs
	}
	if nWorkers <= 1 || len(data) == 0 {
		return Build(data, m)
	}
	// Split on segment boundaries so Concat is exact.
	segsPer := nSegs / nWorkers
	extra := nSegs % nWorkers
	bounds := make([]int, nWorkers+1)
	pos := 0
	for w := 0; w < nWorkers; w++ {
		bounds[w] = pos
		s := segsPer
		if w < extra {
			s++
		}
		pos += s * bitvec.SegmentBits
		if pos > len(data) {
			pos = len(data)
		}
	}
	bounds[nWorkers] = len(data)
	parts := make([]*Index, nWorkers)
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			parts[w] = Build(data[bounds[w]:bounds[w+1]], m)
		}(w)
	}
	wg.Wait()
	return ConcatIndexes(parts...)
}

// ConcatIndexes joins sub-indices built over consecutive sub-blocks of the
// same array with the same binning. All but the last must cover a multiple
// of 31 elements.
func ConcatIndexes(parts ...*Index) *Index {
	if len(parts) == 0 {
		panic("index: ConcatIndexes needs at least one part")
	}
	first := parts[0]
	nb := first.Bins()
	out := &Index{mapper: first.mapper, vecs: make([]bitvec.Bitmap, nb), counts: make([]int, nb), gen: nextGeneration()}
	vecs := make([]bitvec.Bitmap, len(parts))
	for b := 0; b < nb; b++ {
		for i, p := range parts {
			if p.Bins() != nb {
				panic(fmt.Sprintf("index: part %d has %d bins, want %d", i, p.Bins(), nb))
			}
			vecs[i] = p.vecs[b]
		}
		out.vecs[b] = bitvec.MustConcat(vecs...)
		for _, p := range parts {
			out.counts[b] += p.counts[b]
		}
	}
	for _, p := range parts {
		out.n += p.n
	}
	return out
}

// MultiLevel couples a fine low-level index with a coarse high-level one
// (Figure 1's value-interval vectors). The high-level vectors are the ORs of
// their low-level children, so they are derived rather than rebuilt from
// data.
type MultiLevel struct {
	Low  *Index
	High *Index
	G    *binning.Grouped
}

// BuildMultiLevel derives a high-level index with the given fanout from an
// existing low-level index.
func BuildMultiLevel(low *Index, fanout int) (*MultiLevel, error) {
	g, err := binning.NewGrouped(low.mapper, fanout)
	if err != nil {
		return nil, err
	}
	high := &Index{mapper: g, vecs: make([]bitvec.Bitmap, g.Bins()), counts: make([]int, g.Bins()), n: low.n, gen: nextGeneration()}
	for h := 0; h < g.Bins(); h++ {
		lo, hi := g.Children(h)
		var acc bitvec.Bitmap = low.vecs[lo]
		for b := lo + 1; b < hi; b++ {
			acc = acc.Or(low.vecs[b])
		}
		if hi == lo+1 {
			acc = acc.Clone()
		}
		high.vecs[h] = acc
		c := 0
		for b := lo; b < hi; b++ {
			c += low.counts[b]
		}
		high.counts[h] = c
	}
	return &MultiLevel{Low: low, High: high, G: g}, nil
}
