package index

import (
	"math/rand"
	"testing"

	"insitubits/internal/binning"
)

func testData(r *rand.Rand, n int) []float64 {
	// Piecewise-smooth values in [0, 10): long runs land in one bin, which
	// exercises the fill paths the same way simulation output does.
	out := make([]float64, n)
	v := r.Float64() * 10
	for i := range out {
		if r.Intn(40) == 0 {
			v = r.Float64() * 10
		}
		v += (r.Float64() - 0.5) * 0.01
		if v < 0 {
			v = 0
		}
		if v >= 10 {
			v = 9.999
		}
		out[i] = v
	}
	return out
}

func mustUniform(t *testing.T, n int) binning.Mapper {
	t.Helper()
	m, err := binning.NewUniform(0, 10, n)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildMatchesAlgorithm1(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		data := testData(r, r.Intn(3000))
		m := mustUniform(t, 1+r.Intn(64))
		lazy := Build(data, m)
		dense := BuildAlgorithm1(data, m)
		if lazy.Bins() != dense.Bins() || lazy.N() != dense.N() {
			t.Fatalf("trial %d: shape mismatch", trial)
		}
		for b := 0; b < lazy.Bins(); b++ {
			if !lazy.Bitmap(b).Equal(dense.Bitmap(b)) {
				t.Fatalf("trial %d: bin %d differs\nlazy:  %s\ndense: %s",
					trial, b, lazy.Bitmap(b), dense.Bitmap(b))
			}
			if lazy.Count(b) != dense.Count(b) {
				t.Fatalf("trial %d: bin %d count %d vs %d", trial, b, lazy.Count(b), dense.Count(b))
			}
		}
	}
}

func TestEveryElementInExactlyOneBin(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	data := testData(r, 5000)
	m := mustUniform(t, 32)
	x := Build(data, m)
	for i, v := range data {
		want := m.Bin(v)
		hits := 0
		for b := 0; b < x.Bins(); b++ {
			if x.Bitmap(b).Get(i) {
				hits++
				if b != want {
					t.Fatalf("element %d (value %g) in bin %d, want %d", i, v, b, want)
				}
			}
		}
		if hits != 1 {
			t.Fatalf("element %d appears in %d bins", i, hits)
		}
	}
}

func TestHistogramSumsToN(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		data := testData(r, r.Intn(4000))
		x := Build(data, mustUniform(t, 1+r.Intn(100)))
		sum := 0
		for _, c := range x.Histogram() {
			sum += c
		}
		if sum != len(data) {
			t.Fatalf("trial %d: histogram sums to %d, want %d", trial, sum, len(data))
		}
	}
}

func TestStreamBuilderChunkInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	data := testData(r, 2500)
	m := mustUniform(t, 40)
	oneShot := Build(data, m)
	sb := NewStreamBuilder(m)
	i := 0
	for i < len(data) {
		n := 1 + r.Intn(200)
		if i+n > len(data) {
			n = len(data) - i
		}
		sb.Append(data[i : i+n])
		i += n
	}
	chunked := sb.Finish()
	for b := 0; b < oneShot.Bins(); b++ {
		if !oneShot.Bitmap(b).Equal(chunked.Bitmap(b)) {
			t.Fatalf("bin %d differs between one-shot and chunked append", b)
		}
	}
}

func TestBuildParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, workers := range []int{1, 2, 3, 4, 7, 16} {
		data := testData(r, 4000+r.Intn(100))
		m := mustUniform(t, 50)
		serial := Build(data, m)
		parallel := BuildParallel(data, m, workers)
		if parallel.N() != serial.N() {
			t.Fatalf("workers=%d: N=%d want %d", workers, parallel.N(), serial.N())
		}
		for b := 0; b < serial.Bins(); b++ {
			if !serial.Bitmap(b).Equal(parallel.Bitmap(b)) {
				t.Fatalf("workers=%d: bin %d differs", workers, b)
			}
			if serial.Count(b) != parallel.Count(b) {
				t.Fatalf("workers=%d: bin %d count differs", workers, b)
			}
		}
	}
}

func TestBuildParallelTinyInput(t *testing.T) {
	m := mustUniform(t, 8)
	for _, n := range []int{0, 1, 30, 31, 32, 62} {
		data := make([]float64, n)
		x := BuildParallel(data, m, 8)
		if x.N() != n {
			t.Fatalf("n=%d: N=%d", n, x.N())
		}
		if n > 0 && x.Count(0) != n {
			t.Fatalf("n=%d: all-zero data should land in bin 0, count=%d", n, x.Count(0))
		}
	}
}

func TestQuery(t *testing.T) {
	data := []float64{0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 1.4, 2.2}
	m := mustUniform(t, 10) // bins of width 1 over [0,10)
	x := Build(data, m)
	q := x.Query(1, 3) // bins [1,2) and [2,3): elements 1.5, 2.5, 1.4, 2.2
	if q.Count() != 4 {
		t.Fatalf("Query(1,3) count=%d want 4", q.Count())
	}
	for _, i := range []int{1, 2, 6, 7} {
		if !q.Get(i) {
			t.Fatalf("Query(1,3) missing element %d", i)
		}
	}
	empty := x.Query(100, 200)
	if empty.Count() != 0 || empty.Len() != len(data) {
		t.Fatalf("out-of-range query: count=%d len=%d", empty.Count(), empty.Len())
	}
}

func TestPaperFigure1(t *testing.T) {
	// The exact example of the paper's Figure 1: 8 elements, 4 distinct
	// values, low-level vectors e0..e3 and high-level i0 ([1,2]) i1 ([3,4]).
	data := []float64{4, 1, 2, 2, 3, 4, 3, 1}
	m, err := binning.NewExplicit([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	x := Build(data, m)
	want := map[int][]int{ // bin -> positions of 1-bits, straight from Figure 1
		0: {1, 7}, // e0: value 1
		1: {2, 3}, // e1: value 2
		2: {4, 6}, // e2: value 3
		3: {0, 5}, // e3: value 4
	}
	for b, positions := range want {
		if x.Count(b) != len(positions) {
			t.Fatalf("bin %d count=%d want %d", b, x.Count(b), len(positions))
		}
		for _, p := range positions {
			if !x.Bitmap(b).Get(p) {
				t.Fatalf("bin %d missing bit %d", b, p)
			}
		}
	}
	ml, err := BuildMultiLevel(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantHigh := map[int][]int{
		0: {1, 2, 3, 7}, // i0: values in [1,2]
		1: {0, 4, 5, 6}, // i1: values in [3,4]
	}
	for h, positions := range wantHigh {
		if ml.High.Count(h) != len(positions) {
			t.Fatalf("high bin %d count=%d want %d", h, ml.High.Count(h), len(positions))
		}
		for _, p := range positions {
			if !ml.High.Bitmap(h).Get(p) {
				t.Fatalf("high bin %d missing bit %d", h, p)
			}
		}
	}
}

func TestMultiLevelHighIsOrOfChildren(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	data := testData(r, 3000)
	x := Build(data, mustUniform(t, 37))
	ml, err := BuildMultiLevel(x, 5)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < ml.High.Bins(); h++ {
		lo, hi := ml.G.Children(h)
		acc := x.Bitmap(lo).Clone()
		for b := lo + 1; b < hi; b++ {
			acc = acc.Or(x.Bitmap(b))
		}
		if !ml.High.Bitmap(h).Equal(acc) {
			t.Fatalf("high bin %d is not the OR of children [%d,%d)", h, lo, hi)
		}
	}
	// High-level histogram must also sum to N.
	sum := 0
	for _, c := range ml.High.Histogram() {
		sum += c
	}
	if sum != x.N() {
		t.Fatalf("high histogram sums to %d want %d", sum, x.N())
	}
}

func TestCompressionRatioSmooth(t *testing.T) {
	// The §2.2 claim: for simulation-like (smooth) data, bitmaps are much
	// smaller than the raw float64 array — under 30 % in most cases.
	r := rand.New(rand.NewSource(7))
	data := testData(r, 200000)
	x := Build(data, mustUniform(t, 128))
	raw := 8 * len(data)
	ratio := float64(x.SizeBytes()) / float64(raw)
	if ratio > 0.30 {
		t.Fatalf("compression ratio %.2f exceeds the paper's 30%% envelope", ratio)
	}
	t.Logf("bitmap size = %.1f%% of raw data (%d bins)", 100*ratio, x.Bins())
}

func TestSizeBytesMatchesVectors(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	data := testData(r, 1000)
	x := Build(data, mustUniform(t, 16))
	sum := 0
	for b := 0; b < x.Bins(); b++ {
		sum += x.Bitmap(b).SizeBytes()
	}
	if x.SizeBytes() != sum {
		t.Fatalf("SizeBytes=%d, sum of vectors=%d", x.SizeBytes(), sum)
	}
}

func TestBinIDs(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	data := testData(r, 3000)
	m := mustUniform(t, 40)
	x := Build(data, m)
	ids := x.BinIDs(nil)
	if len(ids) != len(data) {
		t.Fatalf("BinIDs len %d", len(ids))
	}
	for i, v := range data {
		if int(ids[i]) != m.Bin(v) {
			t.Fatalf("element %d: BinIDs=%d, mapper=%d", i, ids[i], m.Bin(v))
		}
	}
	// Buffer reuse: correct length reuses, wrong length reallocates.
	buf := make([]int32, len(data))
	if got := x.BinIDs(buf); &got[0] != &buf[0] {
		t.Fatal("BinIDs did not reuse the buffer")
	}
	if got := x.BinIDs(make([]int32, 5)); len(got) != len(data) {
		t.Fatal("BinIDs kept a wrong-size buffer")
	}
}

func TestEmptyBuild(t *testing.T) {
	x := Build(nil, mustUniform(t, 4))
	if x.N() != 0 || x.SizeBytes() != 0 {
		t.Fatalf("empty build: N=%d size=%d", x.N(), x.SizeBytes())
	}
	for b := 0; b < 4; b++ {
		if x.Bitmap(b).Len() != 0 {
			t.Fatalf("bin %d not empty", b)
		}
	}
}

func BenchmarkBuildLazy(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	data := testData(r, 1<<18)
	m, _ := binning.NewUniform(0, 10, 128)
	b.SetBytes(int64(8 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(data, m)
	}
}

func BenchmarkBuildAlgorithm1Dense(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	data := testData(r, 1<<18)
	m, _ := binning.NewUniform(0, 10, 128)
	b.SetBytes(int64(8 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildAlgorithm1(data, m)
	}
}

func BenchmarkBuildParallel8(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	data := testData(r, 1<<18)
	m, _ := binning.NewUniform(0, 10, 128)
	b.SetBytes(int64(8 * len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildParallel(data, m, 8)
	}
}

func TestBuildTwoPhaseMatchesStreaming(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		data := testData(r, r.Intn(3000))
		m := mustUniform(t, 1+r.Intn(48))
		a := Build(data, m)
		b := BuildTwoPhase(data, m)
		if a.Bins() != b.Bins() || a.N() != b.N() {
			t.Fatalf("trial %d: shape mismatch", trial)
		}
		for bin := 0; bin < a.Bins(); bin++ {
			if !a.Bitmap(bin).Equal(b.Bitmap(bin)) {
				t.Fatalf("trial %d: bin %d differs", trial, bin)
			}
		}
	}
}
