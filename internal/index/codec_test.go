package index

import (
	"math/rand"
	"testing"

	"insitubits/internal/codec"
)

// The index-level differential harness: the same data indexed under each
// codec must answer every query identically — bin counts, range queries,
// membership — because the codec only changes the physical encoding.
func TestIndexDifferentialAcrossCodecs(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for _, n := range []int{0, 1, 100, 5000} {
		data := testData(r, n)
		m := mustUniform(t, 16)
		ref := Build(data, m)
		for _, id := range []codec.ID{codec.WAH, codec.BBC, codec.Dense, codec.Auto} {
			x := BuildCodec(data, m, id)
			if id.Concrete() {
				for b := 0; b < x.Bins(); b++ {
					if got := x.Codec(b); got != id {
						t.Fatalf("n=%d: BuildCodec(%v) bin %d holds %v", n, id, b, got)
					}
				}
			}
			for b := 0; b < x.Bins(); b++ {
				if x.Count(b) != ref.Count(b) {
					t.Fatalf("n=%d %v: bin %d count %d != %d", n, id, b, x.Count(b), ref.Count(b))
				}
				if !x.Bitmap(b).Equal(ref.Bitmap(b)) {
					t.Fatalf("n=%d %v: bin %d bits differ from WAH reference", n, id, b)
				}
			}
			for trial := 0; trial < 20; trial++ {
				lo := r.Float64() * 10
				hi := lo + r.Float64()*(10-lo)
				want := ref.Query(lo, hi)
				got := x.Query(lo, hi)
				if got.Count() != want.Count() || !got.Equal(want) {
					t.Fatalf("n=%d %v: Query(%g,%g) differs", n, id, lo, hi)
				}
			}
		}
	}
}

// Recode must be lossless and reversible whatever the starting encoding.
func TestRecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(78))
	data := testData(r, 3000)
	x := Build(data, mustUniform(t, 12))
	ref := Build(data, mustUniform(t, 12))
	ids := []codec.ID{codec.BBC, codec.Dense, codec.Auto, codec.WAH, codec.Dense, codec.BBC, codec.WAH}
	for _, id := range ids {
		x.Recode(id)
		for b := 0; b < x.Bins(); b++ {
			if !x.Bitmap(b).Equal(ref.Bitmap(b)) {
				t.Fatalf("after Recode(%v): bin %d corrupted", id, b)
			}
		}
	}
}
