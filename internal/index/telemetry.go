package index

import (
	"time"

	"insitubits/internal/telemetry"
)

// tel holds the package's telemetry handles: build volume/cost, the
// compressed-vs-raw ratio inputs, query OR-merge cost, and the histogram
// cache traffic. Nil-safe; bound to telemetry.Default at init.
var tel struct {
	builds     *telemetry.Counter   // indexes completed (any build path)
	bins       *telemetry.Counter   // bitvectors those indexes hold
	values     *telemetry.Counter   // float64 values indexed
	compressed *telemetry.Counter   // compressed bytes produced
	buildNs    *telemetry.Histogram // wall time of single-threaded builds
	queries    *telemetry.Counter   // range queries answered
	orMergeNs  *telemetry.Histogram // OR-merge time per range query
	cacheHits  *telemetry.Counter   // cached per-bin count lookups
}

// SetTelemetry (re)binds the package's instruments to a registry; nil
// disables them.
func SetTelemetry(r *telemetry.Registry) {
	tel.builds = r.Counter("index.builds")
	tel.bins = r.Counter("index.bins_built")
	tel.values = r.Counter("index.values_indexed")
	tel.compressed = r.Counter("index.compressed_bytes")
	tel.buildNs = r.Histogram("index.build_ns")
	tel.queries = r.Counter("index.queries")
	tel.orMergeNs = r.Histogram("index.or_merge_ns")
	tel.cacheHits = r.Counter("index.count_cache_hits")
}

func init() { SetTelemetry(telemetry.Default) }

// recordBuild accounts one completed index.
func recordBuild(x *Index, elapsed time.Duration) {
	if tel.builds == nil {
		return
	}
	tel.builds.Inc()
	tel.bins.Add(int64(x.Bins()))
	tel.values.Add(int64(x.n))
	tel.compressed.Add(int64(x.SizeBytes()))
	if elapsed > 0 {
		tel.buildNs.Record(elapsed.Nanoseconds())
	}
}
