package offline

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"insitubits/internal/insitu"
	"insitubits/internal/selection"
	"insitubits/internal/sim/heat3d"
)

// runPipeline produces a persisted archive for the tests.
func runPipeline(t *testing.T, method insitu.Method, dir string) *insitu.Result {
	t.Helper()
	h, err := heat3d.New(12, 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := insitu.Run(insitu.Config{
		Sim: h, Steps: 18, Select: 6,
		Method: method, Bins: 64, SamplePct: 25, Seed: 1,
		Metric:    selection.ConditionalEntropy,
		Cores:     2,
		OutputDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLoadBitmapArchive(t *testing.T) {
	dir := t.TempDir()
	res := runPipeline(t, insitu.Bitmaps, dir)
	a, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !a.IsBitmaps() {
		t.Fatal("bitmap archive not recognized")
	}
	if len(a.Steps()) != len(res.Selected) {
		t.Fatalf("archive has %d steps, pipeline selected %d", len(a.Steps()), len(res.Selected))
	}
	for i, s := range a.Steps() {
		if s != res.Selected[i] {
			t.Fatalf("archive steps %v vs selected %v", a.Steps(), res.Selected)
		}
		x, err := a.Index(s, "temperature")
		if err != nil {
			t.Fatal(err)
		}
		if x.N() != 12*12*12 {
			t.Fatalf("step %d covers %d elements", s, x.N())
		}
	}
	if _, err := a.Index(9999, "temperature"); err == nil {
		t.Error("missing step accepted")
	}
	if _, err := a.Index(a.Steps()[0], "nope"); err == nil {
		t.Error("missing variable accepted")
	}
	if _, err := a.Raw(a.Steps()[0], "temperature"); err == nil {
		t.Error("Raw on a bitmap archive accepted")
	}
}

func TestLoadRawArchive(t *testing.T) {
	dir := t.TempDir()
	runPipeline(t, insitu.Sampling, dir)
	a, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if a.IsBitmaps() {
		t.Fatal("sampling archive misclassified")
	}
	data, err := a.Raw(a.Steps()[0], "temperature")
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || len(data) >= 12*12*12 {
		t.Fatalf("sample has %d elements", len(data))
	}
	if _, err := a.PairwiseMetrics("temperature"); err == nil {
		t.Error("pairwise metrics on raw archive accepted")
	}
	if _, err := a.Reselect("temperature", 2, selection.EMDCount); err == nil {
		t.Error("reselect on raw archive accepted")
	}
	if _, err := a.Evolve("temperature"); err == nil {
		t.Error("evolve on raw archive accepted")
	}
}

func TestPairwiseMetricsShape(t *testing.T) {
	dir := t.TempDir()
	runPipeline(t, insitu.Bitmaps, dir)
	a, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := a.PairwiseMetrics("temperature")
	if err != nil {
		t.Fatal(err)
	}
	n := len(a.Steps())
	if len(m) != n {
		t.Fatalf("%d rows", len(m))
	}
	for i := range m {
		if len(m[i]) != n {
			t.Fatalf("row %d has %d cells", i, len(m[i]))
		}
		if m[i][i].MI != 0 || m[i][i].EntropyA != 0 {
			t.Fatalf("diagonal not zero-valued: %+v", m[i][i])
		}
		for j := range m[i] {
			if i == j {
				continue
			}
			// MI is symmetric; conditional entropies swap.
			if math.Abs(m[i][j].MI-m[j][i].MI) > 1e-9 {
				t.Fatalf("MI not symmetric at (%d,%d)", i, j)
			}
			if math.Abs(m[i][j].CondEntropyAB-m[j][i].CondEntropyBA) > 1e-9 {
				t.Fatalf("conditional entropies inconsistent at (%d,%d)", i, j)
			}
		}
	}
}

func TestReselect(t *testing.T) {
	dir := t.TempDir()
	runPipeline(t, insitu.Bitmaps, dir)
	a, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	picked, err := a.Reselect("temperature", 3, selection.ConditionalEntropy)
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 3 {
		t.Fatalf("picked %v", picked)
	}
	// Picks must be archived steps, ascending.
	archived := map[int]bool{}
	for _, s := range a.Steps() {
		archived[s] = true
	}
	for i, s := range picked {
		if !archived[s] {
			t.Fatalf("picked unarchived step %d", s)
		}
		if i > 0 && s <= picked[i-1] {
			t.Fatalf("picks not ascending: %v", picked)
		}
	}
	if _, err := a.Reselect("temperature", 99, selection.EMDCount); err == nil {
		t.Error("k beyond archive size accepted")
	}
}

func TestEvolve(t *testing.T) {
	dir := t.TempDir()
	runPipeline(t, insitu.Bitmaps, dir)
	a, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := a.Evolve("temperature")
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != len(a.Steps()) {
		t.Fatalf("%d evolution points", len(ev))
	}
	if ev[0].CondEntropy != 0 || ev[0].EMD != 0 {
		t.Fatalf("first point has previous-step metrics: %+v", ev[0])
	}
	for i, e := range ev {
		if e.Entropy <= 0 {
			t.Fatalf("point %d entropy %g", i, e.Entropy)
		}
		if i > 0 && e.EMD < 0 {
			t.Fatalf("point %d negative EMD", i)
		}
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestLoadRejectsCorruptArtifact(t *testing.T) {
	dir := t.TempDir()
	runPipeline(t, insitu.Bitmaps, dir)
	// Corrupt the first artifact listed in the manifest.
	m, err := insitu.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	victim := filepath.Join(dir, m.Files[0].Path)
	if err := os.WriteFile(victim, []byte("not a bitmap index"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(dir)
	if err == nil {
		t.Fatal("corrupt artifact accepted")
	}
	if !strings.Contains(err.Error(), m.Files[0].Path) {
		t.Fatalf("error %q does not name the corrupt file", err)
	}
}

func TestLoadRejectsMissingArtifact(t *testing.T) {
	dir := t.TempDir()
	runPipeline(t, insitu.Bitmaps, dir)
	m, err := insitu.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, m.Files[1].Path)); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("missing artifact accepted")
	}
}
