// Package offline loads what the in-situ pipeline persisted (the paper's
// step 4: "aggressive analyses, visualization, and exploration, but using
// only the summarized data") and drives post-hoc analyses over it: pairwise
// metrics between the archived steps, re-selection with the DP algorithm,
// value queries and aggregation — all from the bitmap files, since the
// original data no longer exists.
package offline

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"insitubits/internal/index"
	"insitubits/internal/insitu"
	"insitubits/internal/metrics"
	"insitubits/internal/selection"
	"insitubits/internal/store"
)

// Archive is a loaded pipeline output directory.
type Archive struct {
	Manifest *insitu.Manifest
	// indices[step][var] — only present for bitmap archives.
	indices map[int]map[string]*index.Index
	// raws[step][var] — for full-data / sampling archives.
	raws map[int]map[string][]float64
}

// Load reads the manifest and every artifact it lists.
func Load(dir string) (*Archive, error) {
	m, err := insitu.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	a := &Archive{
		Manifest: m,
		indices:  map[int]map[string]*index.Index{},
		raws:     map[int]map[string][]float64{},
	}
	for _, mf := range m.Files {
		path := filepath.Join(dir, mf.Path)
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		switch {
		case strings.HasSuffix(mf.Path, ".isbm"):
			x, err := store.ReadIndex(f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("offline: %s: %w", mf.Path, err)
			}
			if a.indices[mf.Step] == nil {
				a.indices[mf.Step] = map[string]*index.Index{}
			}
			a.indices[mf.Step][mf.Var] = x
		case strings.HasSuffix(mf.Path, ".israw"):
			data, err := store.ReadRaw(f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("offline: %s: %w", mf.Path, err)
			}
			if a.raws[mf.Step] == nil {
				a.raws[mf.Step] = map[string][]float64{}
			}
			a.raws[mf.Step][mf.Var] = data
		default:
			f.Close()
			return nil, fmt.Errorf("offline: unknown artifact type %q", mf.Path)
		}
	}
	return a, nil
}

// Steps returns the archived step numbers in ascending order.
func (a *Archive) Steps() []int { return append([]int(nil), a.Manifest.Selected...) }

// Vars returns the archived variable names.
func (a *Archive) Vars() []string { return append([]string(nil), a.Manifest.Vars...) }

// IsBitmaps reports whether the archive holds indices (vs raw arrays).
func (a *Archive) IsBitmaps() bool { return len(a.indices) > 0 }

// Index returns the bitmap index of one (step, variable).
func (a *Archive) Index(step int, varName string) (*index.Index, error) {
	vars, ok := a.indices[step]
	if !ok {
		return nil, fmt.Errorf("offline: step %d not archived as bitmaps", step)
	}
	x, ok := vars[varName]
	if !ok {
		return nil, fmt.Errorf("offline: step %d has no variable %q", step, varName)
	}
	return x, nil
}

// Raw returns the raw array of one (step, variable) for full-data archives.
func (a *Archive) Raw(step int, varName string) ([]float64, error) {
	vars, ok := a.raws[step]
	if !ok {
		return nil, fmt.Errorf("offline: step %d not archived as raw data", step)
	}
	data, ok := vars[varName]
	if !ok {
		return nil, fmt.Errorf("offline: step %d has no variable %q", step, varName)
	}
	return data, nil
}

// PairwiseMetrics computes the full pairwise metric matrix between archived
// steps over one variable. scores[i][j] holds the metrics of (step i, step
// j) in Steps() order; the diagonal is zero-valued.
func (a *Archive) PairwiseMetrics(varName string) ([][]metrics.Pair, error) {
	if !a.IsBitmaps() {
		return nil, fmt.Errorf("offline: pairwise metrics need a bitmap archive")
	}
	steps := a.Steps()
	out := make([][]metrics.Pair, len(steps))
	for i := range out {
		out[i] = make([]metrics.Pair, len(steps))
		xi, err := a.Index(steps[i], varName)
		if err != nil {
			return nil, err
		}
		for j := range out[i] {
			if i == j {
				continue
			}
			xj, err := a.Index(steps[j], varName)
			if err != nil {
				return nil, err
			}
			out[i][j] = metrics.PairFromBitmaps(xi, xj)
		}
	}
	return out, nil
}

// Reselect re-ranks the archived steps offline with the DP selection (the
// luxury the in-situ pass cannot afford), returning archive positions of
// the k steps maximizing the dissimilarity chain.
func (a *Archive) Reselect(varName string, k int, m selection.Metric) ([]int, error) {
	if !a.IsBitmaps() {
		return nil, fmt.Errorf("offline: reselection needs a bitmap archive")
	}
	steps := a.Steps()
	summaries := make([]selection.Summary, len(steps))
	for i, s := range steps {
		x, err := a.Index(s, varName)
		if err != nil {
			return nil, err
		}
		summaries[i] = selection.NewBitmapSummary(x)
	}
	res, err := selection.SelectDP(summaries, k, m)
	if err != nil {
		return nil, err
	}
	picked := make([]int, len(res.Selected))
	for i, pos := range res.Selected {
		picked[i] = steps[pos]
	}
	return picked, nil
}

// Evolution summarizes how one variable's distribution evolved across the
// archived steps: per-step entropy plus the metric against the previous
// archived step.
type Evolution struct {
	Step        int
	Entropy     float64
	CondEntropy float64 // H(this | previous archived); 0 for the first
	EMD         float64 // count-EMD against the previous archived step
}

// Evolve computes the evolution series for one variable.
func (a *Archive) Evolve(varName string) ([]Evolution, error) {
	if !a.IsBitmaps() {
		return nil, fmt.Errorf("offline: evolution needs a bitmap archive")
	}
	steps := a.Steps()
	out := make([]Evolution, len(steps))
	var prev *index.Index
	for i, s := range steps {
		x, err := a.Index(s, varName)
		if err != nil {
			return nil, err
		}
		out[i] = Evolution{Step: s, Entropy: metrics.Entropy(x.Histogram(), x.N())}
		if prev != nil {
			p := metrics.PairFromBitmaps(x, prev)
			out[i].CondEntropy = p.CondEntropyAB
			out[i].EMD = metrics.EMDCount(x.Histogram(), prev.Histogram())
		}
		prev = x
	}
	return out, nil
}
