package benchfmt

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	const sample = `goos: linux
goarch: amd64
pkg: insitubits/internal/telemetry
cpu: Example CPU @ 3.00GHz
BenchmarkNoopCounter-8   	1000000000	         0.2500 ns/op	       0 B/op	       0 allocs/op
BenchmarkSpan-8          	 5000000	       240.0 ns/op
PASS
ok  	insitubits/internal/telemetry	2.150s
pkg: insitubits/internal/bitvec
BenchmarkAppend-8        	  120000	      9800 ns/op	     132 B/op	       2 allocs/op
some stray log line
PASS
`
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU == "" {
		t.Errorf("header not captured: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	b := rep.Benchmarks[0]
	if b.Pkg != "insitubits/internal/telemetry" || b.Name != "BenchmarkNoopCounter-8" ||
		b.Runs != 1000000000 || b.Metrics["ns/op"] != 0.25 || b.Metrics["allocs/op"] != 0 {
		t.Errorf("first benchmark mis-parsed: %+v", b)
	}
	if got := rep.Benchmarks[2]; got.Pkg != "insitubits/internal/bitvec" || got.Metrics["B/op"] != 132 {
		t.Errorf("pkg tracking broken: %+v", got)
	}
}

func TestParseJSONStrict(t *testing.T) {
	good := `{"goos":"linux","benchmarks":[{"name":"BenchmarkA-8","runs":10,"metrics":{"ns/op":100}}]}`
	rep, err := ParseJSON([]byte(good))
	if err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Metrics["ns/op"] != 100 {
		t.Errorf("mis-parsed: %+v", rep)
	}
	for name, bad := range map[string]string{
		"truncated":     `{"benchmarks":[{"name":"B"`,
		"empty":         `{}`,
		"no-benchmarks": `{"benchmarks":[]}`,
		"nameless":      `{"benchmarks":[{"runs":1,"metrics":{}}]}`,
		"not-json":      `go test output, not json`,
	} {
		if _, err := ParseJSON([]byte(bad)); err == nil {
			t.Errorf("%s snapshot accepted", name)
		}
	}
}

func rep(metric string, vals map[string]float64) *Report {
	r := &Report{}
	for name, v := range vals {
		r.Benchmarks = append(r.Benchmarks, Result{
			Pkg: "p", Name: name, Runs: 1, Metrics: map[string]float64{metric: v},
		})
	}
	return r
}

func TestCompare(t *testing.T) {
	base := rep("ns/op", map[string]float64{
		"BenchmarkFast-8": 100, "BenchmarkSlow-8": 100, "BenchmarkSame-8": 100, "BenchmarkGone-8": 7,
	})
	latest := rep("ns/op", map[string]float64{
		"BenchmarkFast-8": 80, "BenchmarkSlow-8": 130, "BenchmarkSame-8": 104, "BenchmarkNew-8": 9,
	})
	cmp := Compare(base, latest, "ns/op", 0.10)
	if len(cmp.Regressions) != 1 || cmp.Regressions[0].Name != "BenchmarkSlow-8" {
		t.Errorf("regressions: %+v", cmp.Regressions)
	}
	if got := cmp.Regressions[0].Change; got < 0.29 || got > 0.31 {
		t.Errorf("regression change = %g, want ~0.30", got)
	}
	if len(cmp.Improvements) != 1 || cmp.Improvements[0].Name != "BenchmarkFast-8" {
		t.Errorf("improvements: %+v", cmp.Improvements)
	}
	if len(cmp.Stable) != 1 || cmp.Stable[0].Name != "BenchmarkSame-8" {
		t.Errorf("stable: %+v", cmp.Stable)
	}
	if len(cmp.OnlyInBase) != 1 || cmp.OnlyInBase[0] != "p.BenchmarkGone-8" {
		t.Errorf("only-in-base: %v", cmp.OnlyInBase)
	}
	if len(cmp.OnlyInLatest) != 1 || cmp.OnlyInLatest[0] != "p.BenchmarkNew-8" {
		t.Errorf("only-in-latest: %v", cmp.OnlyInLatest)
	}
}

func TestCompareThroughputDirection(t *testing.T) {
	base := rep("MB/s", map[string]float64{"BenchmarkIO-8": 100})
	latest := rep("MB/s", map[string]float64{"BenchmarkIO-8": 50})
	cmp := Compare(base, latest, "MB/s", 0.10)
	if len(cmp.Regressions) != 1 {
		t.Fatalf("halved throughput not flagged as regression: %+v", cmp)
	}
	cmp = Compare(latest, base, "MB/s", 0.10)
	if len(cmp.Improvements) != 1 {
		t.Fatalf("doubled throughput not an improvement: %+v", cmp)
	}
}
