// Package benchfmt parses `go test -bench` output into a machine-readable
// report and compares reports across runs. It is shared by cmd/benchjson
// (text → JSON archival, the `make bench-json` target) and cmd/benchtrend
// (the latest-vs-baseline regression gate over archived BENCH_*.json
// snapshots, the `make bench-check` target).
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line, annotated with the package it ran in.
type Result struct {
	Pkg  string `json:"pkg,omitempty"`
	Name string `json:"name"`
	Runs int64  `json:"runs"`
	// Metrics maps the benchmark's reported units to values: "ns/op",
	// "B/op", "allocs/op", "MB/s", and any custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// Key identifies a benchmark across runs (package-qualified name).
func (r Result) Key() string {
	if r.Pkg == "" {
		return r.Name
	}
	return r.Pkg + "." + r.Name
}

// Report is one whole run: the environment header go test prints plus
// every benchmark result that followed it.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// Parse reads `go test -bench` text output. Lines that are not benchmark
// results (PASS, ok, coverage, test logs) are ignored, so the full
// `go test` stream can be piped through unfiltered.
func Parse(r io.Reader) (*Report, error) {
	lines := bufio.NewScanner(r)
	lines.Buffer(make([]byte, 1<<20), 1<<20)
	var rep Report
	pkg := ""
	for lines.Scan() {
		line := strings.TrimSpace(lines.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			fields := strings.Fields(line)
			// Name, iteration count, then value/unit pairs.
			if len(fields) < 4 || len(fields)%2 != 0 {
				continue
			}
			runs, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				continue
			}
			res := Result{Pkg: pkg, Name: fields[0], Runs: runs, Metrics: map[string]float64{}}
			ok := true
			for i := 2; i+1 < len(fields); i += 2 {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					ok = false
					break
				}
				res.Metrics[fields[i+1]] = v
			}
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, res)
			}
		}
	}
	return &rep, lines.Err()
}

// ParseJSON decodes an archived report (a BENCH_*.json snapshot). Unlike
// Parse it is strict: malformed JSON or a report without benchmarks is an
// error, because the trend gate must hard-fail on damaged snapshots rather
// than silently compare nothing.
func ParseJSON(data []byte) (*Report, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("benchfmt: malformed report: %w", err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchfmt: report has no benchmarks")
	}
	for i, b := range rep.Benchmarks {
		if b.Name == "" {
			return nil, fmt.Errorf("benchfmt: benchmark %d has no name", i)
		}
	}
	return &rep, nil
}

// LoadFile reads and strictly parses one archived snapshot.
func LoadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep, err := ParseJSON(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// Delta is one benchmark's movement between two reports.
type Delta struct {
	Pkg  string `json:"pkg,omitempty"`
	Name string `json:"name"`
	// Base and Latest are the metric values being compared.
	Base   float64 `json:"base"`
	Latest float64 `json:"latest"`
	// Change is the relative movement (Latest-Base)/Base; positive means
	// the metric grew.
	Change float64 `json:"change"`
}

// Comparison is the outcome of comparing two reports on one metric.
type Comparison struct {
	Metric    string  `json:"metric"`
	Threshold float64 `json:"threshold"`
	// Regressions moved past the threshold in the bad direction (slower
	// for ns/op-style metrics, lower for MB/s-style throughput metrics);
	// Improvements moved past it in the good direction; Stable is
	// everything within the noise band. Each list is sorted by |Change|,
	// largest first.
	Regressions  []Delta `json:"regressions,omitempty"`
	Improvements []Delta `json:"improvements,omitempty"`
	Stable       []Delta `json:"stable,omitempty"`
	// OnlyInBase/OnlyInLatest name benchmarks present in one report but
	// not the other (renamed, added, or removed since the baseline).
	OnlyInBase   []string `json:"only_in_base,omitempty"`
	OnlyInLatest []string `json:"only_in_latest,omitempty"`
}

// higherIsBetter reports whether a metric improves upward (throughput)
// rather than downward (time, bytes, allocations).
func higherIsBetter(metric string) bool {
	return strings.HasSuffix(metric, "/s") || strings.HasSuffix(metric, "/sec")
}

// Compare diffs latest against base on one metric with a relative noise
// threshold (0.10 = 10%). Benchmarks missing the metric in either report
// are skipped; benchmarks missing from one report entirely are listed in
// OnlyInBase/OnlyInLatest.
func Compare(base, latest *Report, metric string, threshold float64) *Comparison {
	cmp := &Comparison{Metric: metric, Threshold: threshold}
	baseBy := make(map[string]Result, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Key()] = b
	}
	latestKeys := make(map[string]bool, len(latest.Benchmarks))
	for _, l := range latest.Benchmarks {
		latestKeys[l.Key()] = true
		b, ok := baseBy[l.Key()]
		if !ok {
			cmp.OnlyInLatest = append(cmp.OnlyInLatest, l.Key())
			continue
		}
		bv, bok := b.Metrics[metric]
		lv, lok := l.Metrics[metric]
		if !bok || !lok || bv == 0 {
			continue
		}
		d := Delta{Pkg: l.Pkg, Name: l.Name, Base: bv, Latest: lv, Change: (lv - bv) / bv}
		worse := d.Change > threshold
		better := d.Change < -threshold
		if higherIsBetter(metric) {
			worse, better = better, worse
		}
		switch {
		case worse:
			cmp.Regressions = append(cmp.Regressions, d)
		case better:
			cmp.Improvements = append(cmp.Improvements, d)
		default:
			cmp.Stable = append(cmp.Stable, d)
		}
	}
	for _, b := range base.Benchmarks {
		if !latestKeys[b.Key()] {
			cmp.OnlyInBase = append(cmp.OnlyInBase, b.Key())
		}
	}
	byMagnitude := func(ds []Delta) {
		sort.Slice(ds, func(i, j int) bool {
			ci, cj := ds[i].Change, ds[j].Change
			if ci < 0 {
				ci = -ci
			}
			if cj < 0 {
				cj = -cj
			}
			return ci > cj
		})
	}
	byMagnitude(cmp.Regressions)
	byMagnitude(cmp.Improvements)
	byMagnitude(cmp.Stable)
	sort.Strings(cmp.OnlyInBase)
	sort.Strings(cmp.OnlyInLatest)
	return cmp
}
