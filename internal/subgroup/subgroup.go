// Package subgroup implements bitmap-based subgroup discovery in the spirit
// of the authors' SciSD companion work [39], which the paper lists among
// the analyses bitmaps support without the original data (§2.2): find
// conjunctions of value-range conditions over explanatory variables under
// which a target variable's mean deviates most from its global mean.
//
// Everything runs on indices: a condition's extent is the OR of its bin
// vectors, a conjunction is the AND of its conditions' extents, and the
// target mean over an extent comes from masked approximate aggregation —
// counts exact, means within one bin width.
package subgroup

import (
	"context"
	"fmt"
	"math"
	"sort"

	"insitubits/internal/bitvec"
	"insitubits/internal/index"
	"insitubits/internal/query"
)

// Condition restricts one variable to the bin range [BinLo, BinHi).
type Condition struct {
	Var          int
	BinLo, BinHi int
}

// Subgroup is one discovered conjunction with its statistics.
type Subgroup struct {
	Conditions []Condition
	// Count is the exact number of covered elements.
	Count int
	// Mean is the estimated target mean over the subgroup; MeanLo/MeanHi
	// bound the true mean.
	Mean, MeanLo, MeanHi float64
	// Quality = coverage^Alpha × |Mean − global mean| (classic mean-based
	// interestingness).
	Quality float64

	extent bitvec.Bitmap
}

// Config tunes the beam search.
type Config struct {
	// BeamWidth is how many subgroups survive each refinement level
	// (default 8).
	BeamWidth int
	// MaxConditions bounds the conjunction depth (default 2).
	MaxConditions int
	// TopK is how many subgroups to return (default 5).
	TopK int
	// Alpha is the coverage exponent of the quality measure (default 0.5).
	Alpha float64
	// MinCount prunes subgroups covering fewer elements (default 1% of n).
	MinCount int
	// WindowSizes are the bin-range widths used to generate candidate
	// conditions (default {1, 2, 4, 8}).
	WindowSizes []int
}

func (c *Config) fill(n int) {
	if c.BeamWidth <= 0 {
		c.BeamWidth = 8
	}
	if c.MaxConditions <= 0 {
		c.MaxConditions = 2
	}
	if c.TopK <= 0 {
		c.TopK = 5
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.5
	}
	if c.MinCount <= 0 {
		c.MinCount = n/100 + 1
	}
	if len(c.WindowSizes) == 0 {
		c.WindowSizes = []int{1, 2, 4, 8}
	}
}

// Discover runs beam search over conjunctions of bin-range conditions.
// vars are the explanatory variables' indices, target the variable whose
// mean deviation defines interestingness; all must cover the same elements.
func Discover(vars []*index.Index, target *index.Index, cfg Config) ([]Subgroup, error) {
	if len(vars) == 0 {
		return nil, fmt.Errorf("subgroup: no explanatory variables")
	}
	n := target.N()
	for i, v := range vars {
		if v.N() != n {
			return nil, fmt.Errorf("subgroup: variable %d covers %d elements, target %d", i, v.N(), n)
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("subgroup: empty dataset")
	}
	cfg.fill(n)

	globalMean := estimateMean(target)

	// Level 1: all single conditions.
	var beam []Subgroup
	for vi, x := range vars {
		for _, w := range cfg.WindowSizes {
			if w > x.Bins() {
				continue
			}
			for lo := 0; lo+w <= x.Bins(); lo++ {
				cond := Condition{Var: vi, BinLo: lo, BinHi: lo + w}
				extent := conditionExtent(x, cond)
				sg, ok := evaluate([]Condition{cond}, extent, target, globalMean, cfg)
				if ok {
					beam = append(beam, sg)
				}
			}
		}
	}
	best := append([]Subgroup(nil), beam...)
	beam = topQuality(beam, cfg.BeamWidth)

	// Refinement levels: extend each beam member with a condition on a
	// variable it does not constrain yet.
	for depth := 2; depth <= cfg.MaxConditions; depth++ {
		var next []Subgroup
		for _, sg := range beam {
			used := map[int]bool{}
			for _, c := range sg.Conditions {
				used[c.Var] = true
			}
			for vi, x := range vars {
				if used[vi] {
					continue
				}
				for _, w := range cfg.WindowSizes {
					if w > x.Bins() {
						continue
					}
					for lo := 0; lo+w <= x.Bins(); lo++ {
						cond := Condition{Var: vi, BinLo: lo, BinHi: lo + w}
						extent := sg.extent.And(conditionExtent(x, cond))
						conds := append(append([]Condition(nil), sg.Conditions...), cond)
						child, ok := evaluate(conds, extent, target, globalMean, cfg)
						if ok {
							next = append(next, child)
						}
					}
				}
			}
		}
		if len(next) == 0 {
			break
		}
		best = append(best, next...)
		beam = topQuality(next, cfg.BeamWidth)
	}

	best = topQuality(best, cfg.TopK)
	for i := range best {
		best[i].extent = nil // do not leak working state
	}
	return best, nil
}

// conditionExtent ORs the condition's bin vectors.
func conditionExtent(x *index.Index, c Condition) bitvec.Bitmap {
	acc := x.Bitmap(c.BinLo).Clone()
	for b := c.BinLo + 1; b < c.BinHi; b++ {
		acc = acc.Or(x.Bitmap(b))
	}
	return acc
}

// evaluate scores one candidate; ok is false when pruned by MinCount.
// Conditions are stored in canonical (Var, BinLo) order so the same
// conjunction reached via different refinement orders deduplicates.
func evaluate(conds []Condition, extent bitvec.Bitmap, target *index.Index, globalMean float64, cfg Config) (Subgroup, bool) {
	sort.Slice(conds, func(i, j int) bool {
		if conds[i].Var != conds[j].Var {
			return conds[i].Var < conds[j].Var
		}
		return conds[i].BinLo < conds[j].BinLo
	})
	agg, err := query.MeanMasked(context.Background(), target, extent)
	if err != nil || agg.Count < cfg.MinCount {
		return Subgroup{}, false
	}
	coverage := float64(agg.Count) / float64(target.N())
	quality := math.Pow(coverage, cfg.Alpha) * math.Abs(agg.Estimate-globalMean)
	return Subgroup{
		Conditions: conds,
		Count:      agg.Count,
		Mean:       agg.Estimate,
		MeanLo:     agg.Lo,
		MeanHi:     agg.Hi,
		Quality:    quality,
		extent:     extent,
	}, true
}

func estimateMean(x *index.Index) float64 {
	sum := 0.0
	for b := 0; b < x.Bins(); b++ {
		sum += float64(x.Count(b)) * (x.Mapper().Low(b) + x.Mapper().High(b)) / 2
	}
	return sum / float64(x.N())
}

// topQuality keeps the k best subgroups, deduplicated by condition set.
func topQuality(sgs []Subgroup, k int) []Subgroup {
	sort.Slice(sgs, func(i, j int) bool { return sgs[i].Quality > sgs[j].Quality })
	seen := map[string]bool{}
	out := make([]Subgroup, 0, k)
	for _, sg := range sgs {
		key := fmt.Sprint(sg.Conditions)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, sg)
		if len(out) == k {
			break
		}
	}
	return out
}

// Describe renders a subgroup's conditions using the variables' bin edges.
func Describe(sg Subgroup, vars []*index.Index, names []string) string {
	s := ""
	for i, c := range sg.Conditions {
		if i > 0 {
			s += " AND "
		}
		name := fmt.Sprintf("var%d", c.Var)
		if c.Var < len(names) {
			name = names[c.Var]
		}
		m := vars[c.Var].Mapper()
		s += fmt.Sprintf("%s in [%.3g, %.3g)", name, m.Low(c.BinLo), m.High(c.BinHi-1))
	}
	return s
}
