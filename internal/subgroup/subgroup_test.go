package subgroup

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"insitubits/internal/binning"
	"insitubits/internal/index"
)

// plantedDataset fabricates a dataset where the target is high exactly when
// variable 0 is in [6,8) and variable 1 is in [2,4): the subgroup the
// search must find.
func plantedDataset(r *rand.Rand, n int) (v0, v1, target []float64) {
	v0 = make([]float64, n)
	v1 = make([]float64, n)
	target = make([]float64, n)
	for i := 0; i < n; i++ {
		v0[i] = r.Float64() * 10
		v1[i] = r.Float64() * 10
		target[i] = 10 + r.NormFloat64()
		if v0[i] >= 6 && v0[i] < 8 && v1[i] >= 2 && v1[i] < 4 {
			target[i] = 30 + r.NormFloat64()
		}
	}
	return v0, v1, target
}

func buildAll(t *testing.T, arrays ...[]float64) []*index.Index {
	t.Helper()
	out := make([]*index.Index, len(arrays))
	for i, a := range arrays {
		lo, hi := binning.MinMax(a)
		m, err := binning.NewUniform(lo, hi+1e-9, 20)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = index.Build(a, m)
	}
	return out
}

func TestDiscoverFindsPlantedSubgroup(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	v0, v1, target := plantedDataset(r, 20000)
	idx := buildAll(t, v0, v1, target)
	sgs, err := Discover(idx[:2], idx[2], Config{MaxConditions: 2, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sgs) == 0 {
		t.Fatal("nothing discovered")
	}
	best := sgs[0]
	if len(best.Conditions) != 2 {
		t.Fatalf("best subgroup has %d conditions: %+v", len(best.Conditions), best)
	}
	// The best subgroup must constrain both variables near the planted
	// ranges and have a strongly elevated mean.
	if best.Mean < 20 {
		t.Fatalf("best subgroup mean %.2f not elevated (planted ~30)", best.Mean)
	}
	for _, c := range best.Conditions {
		m := idx[c.Var].Mapper()
		lo, hi := m.Low(c.BinLo), m.High(c.BinHi-1)
		var wantLo, wantHi float64
		if c.Var == 0 {
			wantLo, wantHi = 6, 8
		} else {
			wantLo, wantHi = 2, 4
		}
		// The discovered range must overlap the planted one substantially.
		overlap := math.Min(hi, wantHi) - math.Max(lo, wantLo)
		if overlap < (wantHi-wantLo)/2 {
			t.Fatalf("condition on var %d covers [%.2f,%.2f), planted [%g,%g)", c.Var, lo, hi, wantLo, wantHi)
		}
	}
}

func TestSubgroupMeanBoundsHoldTruth(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	v0, v1, target := plantedDataset(r, 8000)
	idx := buildAll(t, v0, v1, target)
	sgs, err := Discover(idx[:2], idx[2], Config{TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, sg := range sgs {
		// Recompute the TRUE mean over the subgroup's extent by scanning.
		count, sum := 0, 0.0
		for i := range target {
			inAll := true
			for _, c := range sg.Conditions {
				var v float64
				if c.Var == 0 {
					v = v0[i]
				} else {
					v = v1[i]
				}
				b := idx[c.Var].Mapper().Bin(v)
				if b < c.BinLo || b >= c.BinHi {
					inAll = false
					break
				}
			}
			if inAll {
				count++
				sum += target[i]
			}
		}
		if count != sg.Count {
			t.Fatalf("subgroup %v: exact count %d, reported %d", sg.Conditions, count, sg.Count)
		}
		trueMean := sum / float64(count)
		if trueMean < sg.MeanLo-1e-9 || trueMean > sg.MeanHi+1e-9 {
			t.Fatalf("subgroup %v: true mean %g outside [%g, %g]", sg.Conditions, trueMean, sg.MeanLo, sg.MeanHi)
		}
	}
}

func TestDiscoverValidation(t *testing.T) {
	m, _ := binning.NewUniform(0, 1, 4)
	x := index.Build(make([]float64, 100), m)
	y := index.Build(make([]float64, 50), m)
	if _, err := Discover(nil, x, Config{}); err == nil {
		t.Error("no variables accepted")
	}
	if _, err := Discover([]*index.Index{y}, x, Config{}); err == nil {
		t.Error("mismatched sizes accepted")
	}
	empty := index.Build(nil, m)
	if _, err := Discover([]*index.Index{empty}, empty, Config{}); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestMinCountPrunes(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	v0, v1, target := plantedDataset(r, 5000)
	idx := buildAll(t, v0, v1, target)
	sgs, err := Discover(idx[:2], idx[2], Config{MinCount: 500, TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, sg := range sgs {
		if sg.Count < 500 {
			t.Fatalf("subgroup %v has count %d below MinCount", sg.Conditions, sg.Count)
		}
	}
}

func TestQualityOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	v0, v1, target := plantedDataset(r, 5000)
	idx := buildAll(t, v0, v1, target)
	sgs, err := Discover(idx[:2], idx[2], Config{TopK: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sgs); i++ {
		if sgs[i].Quality > sgs[i-1].Quality+1e-12 {
			t.Fatal("results not sorted by quality")
		}
	}
	// No duplicate condition sets.
	seen := map[string]bool{}
	for _, sg := range sgs {
		key := Describe(sg, idx[:2], nil)
		if seen[key] {
			t.Fatalf("duplicate subgroup %q", key)
		}
		seen[key] = true
	}
}

func TestDescribe(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	v0, v1, target := plantedDataset(r, 3000)
	idx := buildAll(t, v0, v1, target)
	sgs, err := Discover(idx[:2], idx[2], Config{TopK: 1})
	if err != nil || len(sgs) == 0 {
		t.Fatal(err)
	}
	desc := Describe(sgs[0], idx[:2], []string{"pressure", "humidity"})
	if desc == "" {
		t.Fatal("empty description")
	}
	if !strings.Contains(desc, "in [") {
		t.Fatalf("description %q missing range rendering", desc)
	}
}
