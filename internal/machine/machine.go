// Package machine declares the hardware profiles of the paper's testbeds.
// Compute is always measured for real on the host; only device *bandwidths*
// (local disk, network to a remote store) are modelled, which is what pins
// the shape of the paper's figures — I/O time stays flat while compute
// shrinks with added cores — independent of the machine running the
// reproduction (see DESIGN.md §1.2 for the substitution argument).
package machine

// Profile describes one node type from the paper's evaluation (§5).
type Profile struct {
	Name string
	// Cores is the number of worker goroutines the experiments use to play
	// the role of this node's cores.
	Cores int
	// MemoryBytes bounds the in-situ working set (the MIC node's 8 GB is
	// why the paper shrinks its grids there; experiments scale likewise).
	MemoryBytes int64
	// DiskMBps is the local storage bandwidth used to model output time.
	DiskMBps float64
	// NetMBps is the bandwidth toward a remote data server.
	NetMBps float64
}

// The paper's three machine types, with bandwidths chosen to preserve the
// paper's compute:I/O ratios at reproduction scale.
var (
	// Xeon is the 32-core, 1 TB OSC node of Figures 7, 9, 12a, 12c, 15.
	Xeon = Profile{Name: "xeon", Cores: 32, MemoryBytes: 1 << 40, DiskMBps: 250, NetMBps: 100}
	// MIC is the 60-core, 8 GB Intel Xeon Phi of Figures 8, 10, 12b: many
	// cores, little memory, and markedly slower storage.
	MIC = Profile{Name: "mic", Cores: 60, MemoryBytes: 8 << 30, DiskMBps: 80, NetMBps: 100}
	// OakleyNode is one 12-core, 48 GB node of the Oakley cluster
	// (Figure 13); the paper uses 8 cores per node there.
	OakleyNode = Profile{Name: "oakley", Cores: 12, MemoryBytes: 48 << 30, DiskMBps: 200, NetMBps: 100}
)

// RemoteStoreMBps is the shared remote data server bandwidth of Figure 13.
const RemoteStoreMBps = 100.0

// ByName resolves a profile by its name; ok is false for unknown names.
func ByName(name string) (Profile, bool) {
	switch name {
	case Xeon.Name:
		return Xeon, true
	case MIC.Name:
		return MIC, true
	case OakleyNode.Name:
		return OakleyNode, true
	default:
		return Profile{}, false
	}
}
