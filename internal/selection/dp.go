package selection

import "fmt"

// SelectDP is the dynamic-programming alternative to the greedy algorithm
// that the paper attributes to Tong et al. [31]: choose k steps — step 0 is
// always kept, matching the greedy convention — maximizing the total
// dissimilarity between consecutive selected steps. The greedy pass commits
// to one winner per interval and can miss globally better chains; the DP
// considers every ascending chain at O(n²) metric evaluations plus O(n²k)
// table work, so it is an offline tool (the paper chooses greedy in situ
// "because efficiency is the most important consideration").
func SelectDP(steps []Summary, k int, m Metric) (*Result, error) {
	n := len(steps)
	if n == 0 {
		return nil, fmt.Errorf("selection: no steps")
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("selection: k=%d out of range [1,%d]", k, n)
	}
	if k == 1 {
		return &Result{Selected: []int{0}}, nil
	}
	// Pairwise dissimilarities d[i][j] = D(step j | step i) for i < j.
	d := make([][]float64, n)
	for i := 0; i < n; i++ {
		d[i] = make([]float64, n)
		for j := i + 1; j < n; j++ {
			d[i][j] = steps[j].Dissimilarity(steps[i], m)
		}
	}
	const neg = -1e300
	// best[c][j]: max total over chains of c selections ending at j, with
	// the chain starting at step 0.
	best := make([][]float64, k+1)
	prev := make([][]int, k+1)
	for c := range best {
		best[c] = make([]float64, n)
		prev[c] = make([]int, n)
		for j := range best[c] {
			best[c][j] = neg
			prev[c][j] = -1
		}
	}
	best[1][0] = 0
	for c := 2; c <= k; c++ {
		for j := c - 1; j < n; j++ {
			for i := c - 2; i < j; i++ {
				if best[c-1][i] == neg {
					continue
				}
				if s := best[c-1][i] + d[i][j]; s > best[c][j] {
					best[c][j] = s
					prev[c][j] = i
				}
			}
		}
	}
	// Best chain of exactly k selections, any end step.
	end, bestScore := -1, neg
	for j := 0; j < n; j++ {
		if best[k][j] > bestScore {
			end, bestScore = j, best[k][j]
		}
	}
	if end < 0 {
		return nil, fmt.Errorf("selection: no feasible chain of %d steps over %d", k, n)
	}
	res := &Result{Selected: make([]int, k)}
	j := end
	for c := k; c >= 1; c-- {
		res.Selected[c-1] = j
		j = prev[c][j]
	}
	// Scores of the consecutive links, matching Result's convention.
	res.Scores = make([]float64, k-1)
	for c := 1; c < k; c++ {
		res.Scores[c-1] = d[res.Selected[c-1]][res.Selected[c]]
	}
	return res, nil
}

// ChainScore sums the consecutive-pair dissimilarities of a selection —
// the objective SelectDP maximizes; useful for comparing strategies.
func ChainScore(steps []Summary, selected []int, m Metric) float64 {
	total := 0.0
	for i := 1; i < len(selected); i++ {
		total += steps[selected[i]].Dissimilarity(steps[selected[i-1]], m)
	}
	return total
}
