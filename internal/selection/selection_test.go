package selection

import (
	"math"
	"math/rand"
	"testing"

	"insitubits/internal/binning"
	"insitubits/internal/index"
)

// evolvingSteps fabricates a time series of arrays that drifts smoothly with
// occasional abrupt events, like a simulation with interesting moments.
func evolvingSteps(r *rand.Rand, nSteps, nElems int) [][]float64 {
	steps := make([][]float64, nSteps)
	base := make([]float64, nElems)
	for i := range base {
		base[i] = 5 + 2*math.Sin(float64(i)/40)
	}
	for t := range steps {
		if t > 0 && r.Intn(7) == 0 {
			for i := range base { // abrupt event
				base[i] += r.Float64()*2 - 1
			}
		}
		s := make([]float64, nElems)
		for i := range s {
			v := base[i] + 0.02*float64(t) + 0.05*(r.Float64()-0.5)
			s[i] = math.Min(9.999, math.Max(0, v))
		}
		steps[t] = s
	}
	return steps
}

func mapper(t *testing.T) binning.Mapper {
	t.Helper()
	m, err := binning.NewUniform(0, 10, 48)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func summaries(t *testing.T, raw [][]float64, m binning.Mapper) (data, bmp []Summary) {
	t.Helper()
	for _, s := range raw {
		data = append(data, NewDataSummary(s, m))
		bmp = append(bmp, NewBitmapSummary(index.Build(s, m)))
	}
	return data, bmp
}

func TestFixedLengthPartition(t *testing.T) {
	imp := make([]float64, 101)
	p := FixedLength{}.Partition(imp, 26) // 25 intervals over steps 1..100
	if len(p) != 25 {
		t.Fatalf("%d intervals, want 25", len(p))
	}
	if p[0][0] != 1 || p[len(p)-1][1] != 101 {
		t.Fatalf("coverage [%d,%d)", p[0][0], p[len(p)-1][1])
	}
	covered := 0
	for i, iv := range p {
		if iv[1] <= iv[0] {
			t.Fatalf("interval %d empty: %v", i, iv)
		}
		if i > 0 && iv[0] != p[i-1][1] {
			t.Fatalf("gap between intervals %d and %d", i-1, i)
		}
		covered += iv[1] - iv[0]
	}
	if covered != 100 {
		t.Fatalf("covered %d steps, want 100", covered)
	}
	// Sizes differ by at most one.
	min, max := 1<<30, 0
	for _, iv := range p {
		s := iv[1] - iv[0]
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max-min > 1 {
		t.Fatalf("interval sizes range [%d,%d]", min, max)
	}
}

func TestFixedLengthDegenerate(t *testing.T) {
	if p := (FixedLength{}).Partition(make([]float64, 5), 1); p != nil {
		t.Fatalf("k=1 gave %v", p)
	}
	if p := (FixedLength{}).Partition(make([]float64, 1), 3); p != nil {
		t.Fatalf("single step gave %v", p)
	}
	// More intervals requested than steps available: one step each.
	p := FixedLength{}.Partition(make([]float64, 4), 10)
	if len(p) != 3 {
		t.Fatalf("%d intervals, want 3", len(p))
	}
}

func TestInfoVolumePartition(t *testing.T) {
	// Importance concentrated early: early intervals must be shorter.
	imp := make([]float64, 101)
	for i := 1; i <= 100; i++ {
		if i <= 20 {
			imp[i] = 10
		} else {
			imp[i] = 1
		}
	}
	p := InfoVolume{}.Partition(imp, 5) // 4 intervals
	if len(p) != 4 {
		t.Fatalf("%d intervals", len(p))
	}
	if p[0][0] != 1 || p[len(p)-1][1] != 101 {
		t.Fatalf("coverage [%d,%d)", p[0][0], p[len(p)-1][1])
	}
	for i := 1; i < len(p); i++ {
		if p[i][0] != p[i-1][1] {
			t.Fatal("intervals not contiguous")
		}
	}
	first := p[0][1] - p[0][0]
	last := p[3][1] - p[3][0]
	if first >= last {
		t.Fatalf("info-volume ignored importance skew: first=%d last=%d", first, last)
	}
}

func TestInfoVolumeUniformMatchesFixed(t *testing.T) {
	imp := make([]float64, 41)
	for i := range imp {
		imp[i] = 1
	}
	pv := InfoVolume{}.Partition(imp, 9)
	pf := FixedLength{}.Partition(imp, 9)
	if len(pv) != len(pf) {
		t.Fatalf("interval counts differ: %d vs %d", len(pv), len(pf))
	}
	for i := range pv {
		sv := pv[i][1] - pv[i][0]
		sf := pf[i][1] - pf[i][0]
		if d := sv - sf; d < -1 || d > 1 {
			t.Fatalf("interval %d: info-volume %d vs fixed %d", i, sv, sf)
		}
	}
}

// TestBitmapSelectionMatchesFullData is the paper's claim for online
// analysis: selection over bitmaps picks the same steps as over full data.
func TestBitmapSelectionMatchesFullData(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	raw := evolvingSteps(r, 40, 2000)
	m := mapper(t)
	data, bmp := summaries(t, raw, m)
	for _, metric := range []Metric{ConditionalEntropy, EMDCount, EMDSpatial} {
		for _, part := range []Partitioner{FixedLength{}, InfoVolume{}} {
			rd, err := Select(data, 10, part, metric)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := Select(bmp, 10, part, metric)
			if err != nil {
				t.Fatal(err)
			}
			if len(rd.Selected) != len(rb.Selected) {
				t.Fatalf("%v/%T: %d vs %d selections", metric, part, len(rd.Selected), len(rb.Selected))
			}
			for i := range rd.Selected {
				if rd.Selected[i] != rb.Selected[i] {
					t.Fatalf("%v/%T: selection %d: data chose %d, bitmaps chose %d",
						metric, part, i, rd.Selected[i], rb.Selected[i])
				}
			}
			for i := range rd.Scores {
				if math.Abs(rd.Scores[i]-rb.Scores[i]) > 1e-9 {
					t.Fatalf("%v/%T: score %d: %g vs %g", metric, part, i, rd.Scores[i], rb.Scores[i])
				}
			}
		}
	}
}

func TestSelectProperties(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	raw := evolvingSteps(r, 30, 500)
	m := mapper(t)
	_, bmp := summaries(t, raw, m)
	res, err := Select(bmp, 8, FixedLength{}, ConditionalEntropy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected[0] != 0 {
		t.Fatal("step 0 not pre-selected")
	}
	if len(res.Selected) != 8 {
		t.Fatalf("selected %d steps, want 8", len(res.Selected))
	}
	for i := 1; i < len(res.Selected); i++ {
		if res.Selected[i] <= res.Selected[i-1] {
			t.Fatal("selection not strictly ascending")
		}
	}
	// One selection per interval, inside that interval.
	for i, iv := range res.Intervals {
		s := res.Selected[i+1]
		if s < iv[0] || s >= iv[1] {
			t.Fatalf("selection %d (step %d) outside interval %v", i, s, iv)
		}
	}
}

func TestSelectValidation(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	raw := evolvingSteps(r, 5, 100)
	m := mapper(t)
	_, bmp := summaries(t, raw, m)
	if _, err := Select(nil, 1, FixedLength{}, EMDCount); err == nil {
		t.Error("empty steps accepted")
	}
	if _, err := Select(bmp, 0, FixedLength{}, EMDCount); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Select(bmp, 6, FixedLength{}, EMDCount); err == nil {
		t.Error("k > n accepted")
	}
	res, err := Select(bmp, 1, FixedLength{}, EMDCount)
	if err != nil || len(res.Selected) != 1 || res.Selected[0] != 0 {
		t.Errorf("k=1 gave %v, %v", res, err)
	}
	res, err = Select(bmp, 5, FixedLength{}, EMDCount)
	if err != nil || len(res.Selected) != 5 {
		t.Errorf("k=n gave %v, %v", res, err)
	}
}

func TestSelectPicksAbruptEvent(t *testing.T) {
	// Craft 10 steps where step 6 is radically different; with k=2 and one
	// interval covering 1..9, the greedy pass must keep step 6.
	m := mapper(t)
	var steps []Summary
	for t0 := 0; t0 < 10; t0++ {
		data := make([]float64, 1000)
		for i := range data {
			if t0 == 6 {
				data[i] = float64((i*7)%97) / 10 // wild distribution
			} else {
				data[i] = 5.0 + 0.001*float64(t0)
			}
		}
		steps = append(steps, NewBitmapSummary(index.Build(data, m)))
	}
	res, err := Select(steps, 2, FixedLength{}, ConditionalEntropy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected[1] != 6 {
		t.Fatalf("greedy missed the abrupt event: selected %v", res.Selected)
	}
}

func TestMixedSummaryTypesPanic(t *testing.T) {
	m := mapper(t)
	d := NewDataSummary([]float64{1, 2}, m)
	b := NewBitmapSummary(index.Build([]float64{1, 2}, m))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic comparing mixed summary types")
		}
	}()
	d.Dissimilarity(b, EMDCount)
}

func TestPairwiseScores(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	raw := evolvingSteps(r, 6, 300)
	m := mapper(t)
	data, bmp := summaries(t, raw, m)
	sd := PairwiseScores(data, ConditionalEntropy)
	sb := PairwiseScores(bmp, ConditionalEntropy)
	if len(sd) != 30 || len(sb) != 30 { // 6*5 ordered pairs
		t.Fatalf("lens %d %d", len(sd), len(sb))
	}
	for i := range sd {
		if math.Abs(sd[i]-sb[i]) > 1e-9 {
			t.Fatalf("pair %d: %g vs %g", i, sd[i], sb[i])
		}
	}
}

func TestMetricString(t *testing.T) {
	if ConditionalEntropy.String() == "" || EMDCount.String() == "" || EMDSpatial.String() == "" {
		t.Fatal("empty metric names")
	}
	if Metric(99).String() == "" {
		t.Fatal("unknown metric has empty name")
	}
}
