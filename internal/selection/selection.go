// Package selection implements the paper's online analysis: importance-
// driven time-step selection (§3). The greedy algorithm of Wang et al. —
// partition the time-steps into intervals, then per interval keep the step
// least correlated with the previously selected one — runs over an abstract
// Summary, so the same code drives the full-data baseline, the bitmap path,
// and the sampling baseline; only the metric evaluation differs.
package selection

import (
	"fmt"

	"insitubits/internal/binning"
	"insitubits/internal/index"
	"insitubits/internal/metrics"
)

// Metric chooses the correlation measure used for selection.
type Metric int

const (
	// ConditionalEntropy selects the step with maximal H(step | selected):
	// the step carrying the most information beyond the already-kept one.
	ConditionalEntropy Metric = iota
	// EMDCount selects by maximal count-variant Earth Mover's Distance.
	EMDCount
	// EMDSpatial selects by maximal spatial-variant EMD.
	EMDSpatial
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case ConditionalEntropy:
		return "conditional-entropy"
	case EMDCount:
		return "emd-count"
	case EMDSpatial:
		return "emd-spatial"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

// Summary is one time-step's analyzable representation.
type Summary interface {
	// Dissimilarity scores this step against a previously selected one;
	// the greedy algorithm keeps the interval's maximum. Implementations
	// must accept the other summaries produced by the same source.
	Dissimilarity(selected Summary, m Metric) float64
	// Importance is the step's standalone information content (Shannon
	// entropy), used by information-volume partitioning.
	Importance() float64
	// SizeBytes is the in-memory footprint, for the memory model.
	SizeBytes() int
}

// DataSummary is the full-data baseline: the raw array plus the binning
// that the metric computations use (identical binning to the bitmap path,
// which is why both paths select identical steps).
type DataSummary struct {
	Data []float64
	M    binning.Mapper

	hist []int // lazily cached marginal histogram
}

// NewDataSummary wraps a raw time-step array.
func NewDataSummary(data []float64, m binning.Mapper) *DataSummary {
	return &DataSummary{Data: data, M: m}
}

func (s *DataSummary) histogram() []int {
	if s.hist == nil {
		s.hist = metrics.Histogram(s.Data, s.M)
	}
	return s.hist
}

// Dissimilarity implements Summary by scanning both raw arrays.
func (s *DataSummary) Dissimilarity(selected Summary, m Metric) float64 {
	o, ok := selected.(*DataSummary)
	if !ok {
		panic(fmt.Sprintf("selection: DataSummary compared against %T", selected))
	}
	switch m {
	case ConditionalEntropy:
		p := metrics.PairFromData(s.Data, o.Data, s.M, o.M)
		return p.CondEntropyAB
	case EMDCount:
		return metrics.EMDCount(s.histogram(), o.histogram())
	case EMDSpatial:
		return metrics.EMDSpatialData(s.Data, o.Data, s.M)
	default:
		panic("selection: unknown metric " + m.String())
	}
}

// Importance implements Summary.
func (s *DataSummary) Importance() float64 {
	return metrics.Entropy(s.histogram(), len(s.Data))
}

// SizeBytes implements Summary: 8 bytes per float64.
func (s *DataSummary) SizeBytes() int { return 8 * len(s.Data) }

// BitmapSummary is the paper's method: only the compressed index is kept;
// the raw data has been discarded.
type BitmapSummary struct {
	X *index.Index
}

// NewBitmapSummary wraps a built index.
func NewBitmapSummary(x *index.Index) *BitmapSummary { return &BitmapSummary{X: x} }

// Dissimilarity implements Summary on the compressed form.
func (s *BitmapSummary) Dissimilarity(selected Summary, m Metric) float64 {
	o, ok := selected.(*BitmapSummary)
	if !ok {
		panic(fmt.Sprintf("selection: BitmapSummary compared against %T", selected))
	}
	switch m {
	case ConditionalEntropy:
		p := metrics.PairFromBitmaps(s.X, o.X)
		return p.CondEntropyAB
	case EMDCount:
		return metrics.EMDCount(s.X.Histogram(), o.X.Histogram())
	case EMDSpatial:
		return metrics.EMDSpatialBitmaps(s.X, o.X)
	default:
		panic("selection: unknown metric " + m.String())
	}
}

// Importance implements Summary from the cached histogram.
func (s *BitmapSummary) Importance() float64 {
	return metrics.Entropy(s.X.Histogram(), s.X.N())
}

// SizeBytes implements Summary: the compressed index size.
func (s *BitmapSummary) SizeBytes() int { return s.X.SizeBytes() }

// Partitioner splits steps 1..n-1 (step 0 is always pre-selected, as in the
// paper's Figure 3) into k-1 intervals, returning half-open [lo, hi) pairs.
type Partitioner interface {
	Partition(importance []float64, k int) [][2]int
}

// FixedLength gives every interval the same number of steps (±1).
type FixedLength struct{}

// Partition implements Partitioner.
func (FixedLength) Partition(importance []float64, k int) [][2]int {
	n := len(importance)
	if k <= 1 || n <= 1 {
		return nil
	}
	intervals := k - 1
	remaining := n - 1
	if intervals > remaining {
		intervals = remaining
	}
	out := make([][2]int, 0, intervals)
	pos := 1
	for i := 0; i < intervals; i++ {
		size := remaining / intervals
		if i < remaining%intervals {
			size++
		}
		out = append(out, [2]int{pos, pos + size})
		pos += size
	}
	return out
}

// InfoVolume balances the *accumulated importance* (entropy) per interval,
// the paper's "information-volume based partitioning": busy phases of the
// simulation get more intervals, quiet ones fewer.
type InfoVolume struct{}

// Partition implements Partitioner.
func (InfoVolume) Partition(importance []float64, k int) [][2]int {
	n := len(importance)
	if k <= 1 || n <= 1 {
		return nil
	}
	intervals := k - 1
	if intervals > n-1 {
		intervals = n - 1
	}
	total := 0.0
	for _, v := range importance[1:] {
		total += v
	}
	out := make([][2]int, 0, intervals)
	pos := 1
	acc := 0.0
	for i := 0; i < intervals; i++ {
		target := total * float64(i+1) / float64(intervals)
		hi := pos
		// Extend until the cumulative importance reaches this interval's
		// share, but always leave enough steps for the remaining intervals.
		for hi < n-(intervals-i-1) && (acc < target || hi == pos) {
			acc += importance[hi]
			hi++
		}
		out = append(out, [2]int{pos, hi})
		pos = hi
	}
	out[len(out)-1][1] = n // absorb any rounding remainder
	return out
}

// Result reports what Select chose and why.
type Result struct {
	// Selected holds the chosen step indices in ascending order; index 0 is
	// always included.
	Selected []int
	// Intervals are the partitions the greedy pass walked.
	Intervals [][2]int
	// Scores[i] is the winning dissimilarity of Selected[i+1] within its
	// interval (the pre-selected step 0 has no score).
	Scores []float64
}

// Select runs the greedy algorithm: keep step 0, then per interval keep the
// step with maximum dissimilarity to the previously selected step.
// It returns an error if the request is malformed.
func Select(steps []Summary, k int, p Partitioner, m Metric) (*Result, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("selection: no steps")
	}
	if k < 1 || k > len(steps) {
		return nil, fmt.Errorf("selection: k=%d out of range [1,%d]", k, len(steps))
	}
	imp := make([]float64, len(steps))
	if _, ok := p.(InfoVolume); ok { // only info-volume needs importances
		for i, s := range steps {
			imp[i] = s.Importance()
		}
	}
	res := &Result{Selected: []int{0}, Intervals: p.Partition(imp, k)}
	prev := steps[0]
	for _, iv := range res.Intervals {
		best, bestScore := -1, 0.0
		for i := iv[0]; i < iv[1]; i++ {
			score := steps[i].Dissimilarity(prev, m)
			if best == -1 || score > bestScore {
				best, bestScore = i, score
			}
		}
		if best == -1 {
			continue
		}
		res.Selected = append(res.Selected, best)
		res.Scores = append(res.Scores, bestScore)
		prev = steps[best]
	}
	return res, nil
}

// PairwiseScores evaluates the metric between every ordered pair of steps;
// the sampling-accuracy experiments (Figure 16) compare these matrices
// between the exact and the approximated summaries.
func PairwiseScores(steps []Summary, m Metric) []float64 {
	var out []float64
	for i := range steps {
		for j := range steps {
			if i == j {
				continue
			}
			out = append(out, steps[i].Dissimilarity(steps[j], m))
		}
	}
	return out
}
