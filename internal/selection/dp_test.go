package selection

import (
	"math"
	"math/rand"
	"testing"

	"insitubits/internal/index"
)

func TestSelectDPValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	raw := evolvingSteps(r, 5, 100)
	m := mapper(t)
	_, bmp := summaries(t, raw, m)
	if _, err := SelectDP(nil, 1, EMDCount); err == nil {
		t.Error("empty steps accepted")
	}
	if _, err := SelectDP(bmp, 0, EMDCount); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := SelectDP(bmp, 6, EMDCount); err == nil {
		t.Error("k>n accepted")
	}
	res, err := SelectDP(bmp, 1, EMDCount)
	if err != nil || len(res.Selected) != 1 || res.Selected[0] != 0 {
		t.Errorf("k=1: %v %v", res, err)
	}
}

func TestSelectDPShape(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	raw := evolvingSteps(r, 20, 400)
	m := mapper(t)
	_, bmp := summaries(t, raw, m)
	res, err := SelectDP(bmp, 6, ConditionalEntropy)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 6 || res.Selected[0] != 0 {
		t.Fatalf("selected %v", res.Selected)
	}
	for i := 1; i < len(res.Selected); i++ {
		if res.Selected[i] <= res.Selected[i-1] {
			t.Fatalf("not ascending: %v", res.Selected)
		}
	}
	if len(res.Scores) != 5 {
		t.Fatalf("%d scores", len(res.Scores))
	}
	// Reported scores are the actual link dissimilarities.
	for i := 1; i < len(res.Selected); i++ {
		want := bmp[res.Selected[i]].Dissimilarity(bmp[res.Selected[i-1]], ConditionalEntropy)
		if math.Abs(res.Scores[i-1]-want) > 1e-9 {
			t.Fatalf("score %d = %g want %g", i-1, res.Scores[i-1], want)
		}
	}
}

func TestDPDominatesGreedy(t *testing.T) {
	// The DP maximizes the chain objective, so its score can never be
	// below the greedy selection's score on the same objective.
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		raw := evolvingSteps(r, 24, 300)
		m := mapper(t)
		_, bmp := summaries(t, raw, m)
		for _, metric := range []Metric{ConditionalEntropy, EMDCount} {
			greedy, err := Select(bmp, 6, FixedLength{}, metric)
			if err != nil {
				t.Fatal(err)
			}
			dp, err := SelectDP(bmp, 6, metric)
			if err != nil {
				t.Fatal(err)
			}
			gs := ChainScore(bmp, greedy.Selected, metric)
			ds := ChainScore(bmp, dp.Selected, metric)
			if ds < gs-1e-9 {
				t.Fatalf("trial %d %v: DP score %g below greedy %g", trial, metric, ds, gs)
			}
		}
	}
}

func TestDPMatchesBruteForceSmall(t *testing.T) {
	// Exhaustive check on a tiny instance: enumerate all ascending chains.
	r := rand.New(rand.NewSource(4))
	raw := evolvingSteps(r, 8, 200)
	m := mapper(t)
	_, bmp := summaries(t, raw, m)
	const k = 4
	dp, err := SelectDP(bmp, k, EMDCount)
	if err != nil {
		t.Fatal(err)
	}
	bestScore := -1.0
	var chain [k]int
	chain[0] = 0
	var rec func(depth, last int, score float64)
	rec = func(depth, last int, score float64) {
		if depth == k {
			if score > bestScore {
				bestScore = score
			}
			return
		}
		for next := last + 1; next < len(bmp); next++ {
			rec(depth+1, next, score+bmp[next].Dissimilarity(bmp[last], EMDCount))
		}
	}
	rec(1, 0, 0)
	if got := ChainScore(bmp, dp.Selected, EMDCount); math.Abs(got-bestScore) > 1e-9 {
		t.Fatalf("DP score %g, brute force %g", got, bestScore)
	}
}

func TestDPBitmapsMatchData(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	raw := evolvingSteps(r, 15, 500)
	m := mapper(t)
	data, bmp := summaries(t, raw, m)
	rd, err := SelectDP(data, 5, ConditionalEntropy)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := SelectDP(bmp, 5, ConditionalEntropy)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rd.Selected {
		if rd.Selected[i] != rb.Selected[i] {
			t.Fatalf("data %v vs bitmaps %v", rd.Selected, rb.Selected)
		}
	}
}

func TestDPPicksAbruptEvent(t *testing.T) {
	// Same abrupt-event setup as the greedy test: DP must also keep it.
	m := mapper(t)
	var steps []Summary
	for t0 := 0; t0 < 10; t0++ {
		data := make([]float64, 1000)
		for i := range data {
			if t0 == 6 {
				data[i] = float64((i*7)%97) / 10
			} else {
				data[i] = 5.0 + 0.001*float64(t0)
			}
		}
		steps = append(steps, NewBitmapSummary(index.Build(data, m)))
	}
	res, err := SelectDP(steps, 3, ConditionalEntropy)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range res.Selected {
		if s == 6 {
			found = true
		}
	}
	if !found {
		t.Fatalf("DP missed the abrupt event: %v", res.Selected)
	}
}
