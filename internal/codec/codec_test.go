package codec

import (
	"math/rand"
	"testing"

	"insitubits/internal/bitvec"
)

func boolsAtDensity(r *rand.Rand, n int, p float64) []bool {
	bs := make([]bool, n)
	for i := range bs {
		bs[i] = r.Float64() < p
	}
	return bs
}

func TestParseRoundTrip(t *testing.T) {
	for _, id := range []ID{Auto, WAH, BBC, Dense} {
		got, err := Parse(id.String())
		if err != nil || got != id {
			t.Fatalf("Parse(%q) = %v, %v", id.String(), got, err)
		}
	}
	if _, err := Parse("zstd"); err == nil {
		t.Fatal("unknown codec accepted")
	}
	if id, err := Parse(""); err != nil || id != Auto {
		t.Fatalf("empty codec: %v, %v", id, err)
	}
}

func TestEncodeProducesRequestedCodec(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	v := bitvec.FromBools(boolsAtDensity(r, 1000, 0.3))
	for _, c := range []struct {
		id   ID
		want ID
	}{{WAH, WAH}, {BBC, BBC}, {Dense, Dense}} {
		got := Encode(v, c.id)
		if Of(got) != c.want {
			t.Fatalf("Encode(%v) produced %v", c.id, Of(got))
		}
		if !got.Equal(v) {
			t.Fatalf("Encode(%v) changed contents", c.id)
		}
	}
}

// The acceptance-criteria policy assertion: Auto picks the uncompressed
// codec at and above 50% density and a run-length codec below it.
func TestAutoPolicy(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	const n = 10000
	cases := []struct {
		density   float64
		wantDense bool
	}{
		{0.001, false},
		{0.05, false},
		{0.3, false},
		{0.5, true},
		{0.75, true},
		{0.99, true},
	}
	for _, c := range cases {
		// Fix the exact count so the density is deterministic, not sampled.
		k := int(c.density * n)
		bs := make([]bool, n)
		perm := r.Perm(n)
		for _, i := range perm[:k] {
			bs[i] = true
		}
		got := Encode(bitvec.FromBools(bs), Auto)
		id := Of(got)
		if c.wantDense && id != Dense {
			t.Fatalf("density %.3f: Auto chose %v, want dense", c.density, id)
		}
		if !c.wantDense && (id != WAH && id != BBC) {
			t.Fatalf("density %.3f: Auto chose %v, want a run-length codec", c.density, id)
		}
	}
}

func TestAutoKeepsSmallerRunLengthCodec(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, p := range []float64{0.001, 0.01, 0.1, 0.4} {
		b := Encode(bitvec.FromBools(boolsAtDensity(r, 20000, p)), Auto)
		if Of(b) == Dense {
			continue
		}
		w := bitvec.ToVector(b)
		c := bitvec.BBCFromBitmap(b)
		min := w.SizeBytes()
		if c.SizeBytes() < min {
			min = c.SizeBytes()
		}
		if b.SizeBytes() != min {
			t.Fatalf("density %.3f: Auto kept %v at %d bytes; smaller option is %d",
				p, Of(b), b.SizeBytes(), min)
		}
	}
}

func TestPayloadNewRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, p := range []float64{0, 0.01, 0.5, 1} {
		for _, n := range []int{0, 1, 31, 100, 997} {
			v := bitvec.FromBools(boolsAtDensity(r, n, p))
			for _, id := range []ID{WAH, BBC, Dense} {
				enc := Encode(v, id)
				back, err := New(id, Payload(enc), n)
				if err != nil {
					t.Fatalf("n=%d p=%.2f %v: New: %v", n, p, id, err)
				}
				if Of(back) != id || !back.Equal(v) {
					t.Fatalf("n=%d p=%.2f %v: payload round-trip diverged", n, p, id)
				}
			}
		}
	}
}

func TestNewRejectsMalformed(t *testing.T) {
	if _, err := New(WAH, []byte{1, 2, 3}, 8); err == nil {
		t.Fatal("ragged WAH payload accepted")
	}
	if _, err := New(Dense, []byte{0xFF, 0xFF, 0xFF, 0xFF}, 31); err == nil {
		t.Fatal("dense payload with fill bit accepted")
	}
	if _, err := New(BBC, []byte{0x80}, 8); err == nil {
		t.Fatal("truncated BBC payload accepted")
	}
	if _, err := New(ID(9), nil, 0); err == nil {
		t.Fatal("unknown codec tag accepted")
	}
}
