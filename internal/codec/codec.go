// Package codec names the bitmap encodings and implements the adaptive
// per-bin policy. The paper's observation (shared by Roaring and CONCISE)
// is that the right encoding is density-dependent: run-length codecs win on
// sparse bins, while bins past ~50% occupancy produce so few runs that the
// uncompressed form is both smaller per useful bit and faster to operate
// on. Auto applies that rule per bin at build time; the explicit IDs pin a
// single codec for benches and format conversion.
package codec

import (
	"fmt"

	"insitubits/internal/bitvec"
)

// ID names a bitmap encoding. The numeric values are the on-disk codec
// tags of the v2 index format (see docs/FORMATS.md) — do not renumber.
type ID uint8

const (
	// Auto is the adaptive policy: per-bin choice by observed density.
	// It never appears on disk; stored bins carry the resolved codec.
	Auto ID = 0
	// WAH is the 32-bit word-aligned hybrid codec (bitvec.Vector).
	WAH ID = 1
	// BBC is the byte-aligned run-length codec (bitvec.BBC).
	BBC ID = 2
	// Dense is the uncompressed segment-array codec (bitvec.Dense).
	Dense ID = 3
)

// DenseThreshold is the bin density (set bits / bits) at and above which
// Auto picks the uncompressed codec.
const DenseThreshold = 0.5

// String returns the flag-friendly name.
func (id ID) String() string {
	switch id {
	case Auto:
		return "auto"
	case WAH:
		return "wah"
	case BBC:
		return "bbc"
	case Dense:
		return "dense"
	default:
		return fmt.Sprintf("codec(%d)", uint8(id))
	}
}

// Valid reports whether id names a known codec (including Auto).
func (id ID) Valid() bool { return id <= Dense }

// Concrete reports whether id names a storable encoding (not Auto).
func (id ID) Concrete() bool { return id >= WAH && id <= Dense }

// Parse maps a flag value to an ID.
func Parse(s string) (ID, error) {
	switch s {
	case "auto", "":
		return Auto, nil
	case "wah":
		return WAH, nil
	case "bbc":
		return BBC, nil
	case "dense":
		return Dense, nil
	default:
		return Auto, fmt.Errorf("codec: unknown codec %q (want auto, wah, bbc, or dense)", s)
	}
}

// Of reports the codec a bitmap is encoded with.
func Of(b bitvec.Bitmap) ID {
	switch b.(type) {
	case *bitvec.Vector:
		return WAH
	case *bitvec.BBC:
		return BBC
	case *bitvec.Dense:
		return Dense
	default:
		return Auto
	}
}

// Encode re-encodes b under the given codec. Auto resolves per the policy:
// density at or above DenseThreshold takes the uncompressed codec, sparser
// bins take whichever run-length encoding (WAH or BBC) is actually smaller
// for these bits. A bitmap already in the target encoding passes through.
func Encode(b bitvec.Bitmap, id ID) bitvec.Bitmap {
	switch id {
	case WAH:
		return bitvec.ToVector(b)
	case BBC:
		return bitvec.BBCFromBitmap(b)
	case Dense:
		return bitvec.DenseFromBitmap(b)
	case Auto:
		return encodeAuto(b)
	default:
		panic(fmt.Sprintf("codec: Encode with invalid id %d", uint8(id)))
	}
}

func encodeAuto(b bitvec.Bitmap) bitvec.Bitmap {
	n := b.Len()
	if n == 0 {
		return bitvec.ToVector(b)
	}
	if float64(b.Count())/float64(n) >= DenseThreshold {
		return bitvec.DenseFromBitmap(b)
	}
	// Sparse regime: both run-length codecs are cheap to materialize; keep
	// whichever encodes these particular bits tighter (ties go to WAH,
	// whose word-aligned ops are faster).
	w := bitvec.ToVector(b)
	c := bitvec.BBCFromBitmap(b)
	if c.SizeBytes() < w.SizeBytes() {
		return c
	}
	return w
}

// New decodes stored payload bytes under the given concrete codec,
// validating the encoding; the inverse of the store writer's Payload.
func New(id ID, payload []byte, nbits int) (bitvec.Bitmap, error) {
	switch id {
	case WAH:
		words, err := wordsOf(payload)
		if err != nil {
			return nil, err
		}
		return bitvec.FromRawWords(words, nbits)
	case Dense:
		words, err := wordsOf(payload)
		if err != nil {
			return nil, err
		}
		return bitvec.DenseFromRawWords(words, nbits)
	case BBC:
		return bitvec.BBCFromRaw(payload, nbits)
	default:
		return nil, fmt.Errorf("codec: unknown codec tag %d", uint8(id))
	}
}

// Payload returns the raw encoded bytes of b for storage, little-endian
// for the word-aligned codecs.
func Payload(b bitvec.Bitmap) []byte {
	switch v := b.(type) {
	case *bitvec.Vector:
		return bytesOf(v.RawWords())
	case *bitvec.Dense:
		return bytesOf(v.RawWords())
	case *bitvec.BBC:
		return v.RawBytes()
	default:
		return bytesOf(bitvec.ToVector(b).RawWords())
	}
}

func bytesOf(words []uint32) []byte {
	out := make([]byte, 4*len(words))
	for i, w := range words {
		out[4*i] = byte(w)
		out[4*i+1] = byte(w >> 8)
		out[4*i+2] = byte(w >> 16)
		out[4*i+3] = byte(w >> 24)
	}
	return out
}

func wordsOf(payload []byte) ([]uint32, error) {
	if len(payload)%4 != 0 {
		return nil, fmt.Errorf("codec: word-aligned payload of %d bytes not a multiple of 4", len(payload))
	}
	words := make([]uint32, len(payload)/4)
	for i := range words {
		words[i] = uint32(payload[4*i]) | uint32(payload[4*i+1])<<8 |
			uint32(payload[4*i+2])<<16 | uint32(payload[4*i+3])<<24
	}
	return words, nil
}
