// Package zorder implements Morton (Z-order) space-filling curves for 2-D
// and 3-D grids. The paper's correlation-mining optimization (§4.2) lays the
// dataset out in Z order before bitmap generation so that every "basic
// spatial unit" — an axis-aligned sub-cube — becomes one contiguous bit range
// of every bitvector, which turns per-unit 1-bit counting into CountRange
// calls on the compressed form.
package zorder

import (
	"fmt"
	"sort"
)

// spread2 inserts one zero bit between each of the low 16 bits of x.
func spread2(x uint32) uint64 {
	v := uint64(x & 0xFFFF)
	v = (v | v<<8) & 0x00FF00FF
	v = (v | v<<4) & 0x0F0F0F0F
	v = (v | v<<2) & 0x33333333
	v = (v | v<<1) & 0x55555555
	return v
}

// compact2 is the inverse of spread2.
func compact2(v uint64) uint32 {
	v &= 0x55555555
	v = (v | v>>1) & 0x33333333
	v = (v | v>>2) & 0x0F0F0F0F
	v = (v | v>>4) & 0x00FF00FF
	v = (v | v>>8) & 0x0000FFFF
	return uint32(v)
}

// spread3 inserts two zero bits between each of the low 21 bits of x.
func spread3(x uint32) uint64 {
	v := uint64(x) & 0x1FFFFF
	v = (v | v<<32) & 0x1F00000000FFFF
	v = (v | v<<16) & 0x1F0000FF0000FF
	v = (v | v<<8) & 0x100F00F00F00F00F
	v = (v | v<<4) & 0x10C30C30C30C30C3
	v = (v | v<<2) & 0x1249249249249249
	return v
}

// compact3 is the inverse of spread3.
func compact3(v uint64) uint32 {
	v &= 0x1249249249249249
	v = (v | v>>2) & 0x10C30C30C30C30C3
	v = (v | v>>4) & 0x100F00F00F00F00F
	v = (v | v>>8) & 0x1F0000FF0000FF
	v = (v | v>>16) & 0x1F00000000FFFF
	v = (v | v>>32) & 0x1FFFFF
	return uint32(v)
}

// Encode2 interleaves (x, y) into a Morton code.
func Encode2(x, y uint32) uint64 { return spread2(x) | spread2(y)<<1 }

// Decode2 splits a Morton code back into (x, y).
func Decode2(z uint64) (x, y uint32) { return compact2(z), compact2(z >> 1) }

// Encode3 interleaves (x, y, z) into a Morton code.
func Encode3(x, y, z uint32) uint64 { return spread3(x) | spread3(y)<<1 | spread3(z)<<2 }

// Decode3 splits a Morton code back into (x, y, z).
func Decode3(m uint64) (x, y, z uint32) { return compact3(m), compact3(m >> 1), compact3(m >> 2) }

// Layout3 maps between row-major and Z-order positions of an nx×ny×nz grid.
// Non-power-of-two grids are handled by ranking: the Morton codes of all
// in-grid coordinates are dense-ranked so the curve remains a bijection onto
// [0, nx*ny*nz) with Z-order locality preserved.
type Layout3 struct {
	NX, NY, NZ int
	toZ        []int32 // row-major index -> curve position
	fromZ      []int32 // curve position -> row-major index
}

// NewLayout3 precomputes the permutation for the given grid. Dimensions must
// be positive and the total size must fit in int32.
func NewLayout3(nx, ny, nz int) (*Layout3, error) {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return nil, fmt.Errorf("zorder: non-positive grid %dx%dx%d", nx, ny, nz)
	}
	n := nx * ny * nz
	if n > 1<<31-1 {
		return nil, fmt.Errorf("zorder: grid %dx%dx%d too large", nx, ny, nz)
	}
	l := &Layout3{NX: nx, NY: ny, NZ: nz,
		toZ:   make([]int32, n),
		fromZ: make([]int32, n),
	}
	// Enumerate coordinates in Morton order by sorting codes; for dense
	// power-of-two grids this is the identity Z-curve, otherwise a dense
	// ranking of it.
	type cm struct {
		code uint64
		row  int32
	}
	items := make([]cm, n)
	i := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				items[i] = cm{Encode3(uint32(x), uint32(y), uint32(z)), int32(i)}
				i++
			}
		}
	}
	sort.Slice(items, func(a, b int) bool { return items[a].code < items[b].code })
	for pos, it := range items {
		l.fromZ[pos] = it.row
		l.toZ[it.row] = int32(pos)
	}
	return l, nil
}

// Len returns the number of grid cells.
func (l *Layout3) Len() int { return len(l.toZ) }

// CurvePos returns the Z-order position of row-major index i.
func (l *Layout3) CurvePos(i int) int { return int(l.toZ[i]) }

// RowMajor returns the row-major index at Z-order position p.
func (l *Layout3) RowMajor(p int) int { return int(l.fromZ[p]) }

// Permute writes src (row-major) into dst in curve order. dst and src must
// have length Len() and must not alias.
func (l *Layout3) Permute(dst, src []float64) {
	if len(dst) != len(l.toZ) || len(src) != len(l.toZ) {
		panic(fmt.Sprintf("zorder: Permute length mismatch dst=%d src=%d want %d", len(dst), len(src), len(l.toZ)))
	}
	for i, p := range l.toZ {
		dst[p] = src[i]
	}
}

// Unpermute inverts Permute.
func (l *Layout3) Unpermute(dst, src []float64) {
	if len(dst) != len(l.toZ) || len(src) != len(l.toZ) {
		panic(fmt.Sprintf("zorder: Unpermute length mismatch dst=%d src=%d want %d", len(dst), len(src), len(l.toZ)))
	}
	for i, p := range l.toZ {
		dst[i] = src[p]
	}
}
