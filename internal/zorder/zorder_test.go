package zorder

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncode2RoundTrip(t *testing.T) {
	f := func(x, y uint16) bool {
		gx, gy := Decode2(Encode2(uint32(x), uint32(y)))
		return gx == uint32(x) && gy == uint32(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncode3RoundTrip(t *testing.T) {
	f := func(x, y, z uint32) bool {
		x &= 0x1FFFFF
		y &= 0x1FFFFF
		z &= 0x1FFFFF
		gx, gy, gz := Decode3(Encode3(x, y, z))
		return gx == x && gy == y && gz == z
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncode2KnownValues(t *testing.T) {
	// The canonical Z pattern on a 2x2 grid: (0,0)=0 (1,0)=1 (0,1)=2 (1,1)=3.
	cases := []struct {
		x, y uint32
		want uint64
	}{{0, 0, 0}, {1, 0, 1}, {0, 1, 2}, {1, 1, 3}, {2, 0, 4}, {3, 3, 15}}
	for _, c := range cases {
		if got := Encode2(c.x, c.y); got != c.want {
			t.Errorf("Encode2(%d,%d)=%d want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestEncode3KnownValues(t *testing.T) {
	cases := []struct {
		x, y, z uint32
		want    uint64
	}{{0, 0, 0, 0}, {1, 0, 0, 1}, {0, 1, 0, 2}, {0, 0, 1, 4}, {1, 1, 1, 7}}
	for _, c := range cases {
		if got := Encode3(c.x, c.y, c.z); got != c.want {
			t.Errorf("Encode3(%d,%d,%d)=%d want %d", c.x, c.y, c.z, got, c.want)
		}
	}
}

func TestLayout3Bijection(t *testing.T) {
	for _, dims := range [][3]int{{4, 4, 4}, {3, 5, 7}, {1, 1, 1}, {8, 1, 2}, {16, 16, 1}} {
		l, err := NewLayout3(dims[0], dims[1], dims[2])
		if err != nil {
			t.Fatal(err)
		}
		n := l.Len()
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			p := l.CurvePos(i)
			if p < 0 || p >= n {
				t.Fatalf("dims %v: CurvePos(%d)=%d out of range", dims, i, p)
			}
			if seen[p] {
				t.Fatalf("dims %v: curve position %d assigned twice", dims, p)
			}
			seen[p] = true
			if l.RowMajor(p) != i {
				t.Fatalf("dims %v: RowMajor(CurvePos(%d)) = %d", dims, i, l.RowMajor(p))
			}
		}
	}
}

func TestLayout3PowerOfTwoMatchesMorton(t *testing.T) {
	// On power-of-two grids, ranking by Morton code IS the Morton order.
	l, err := NewLayout3(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for z := 0; z < 4; z++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				row := z*16 + y*4 + x
				if got, want := l.CurvePos(row), int(Encode3(uint32(x), uint32(y), uint32(z))); got != want {
					t.Fatalf("(%d,%d,%d): CurvePos=%d want Morton %d", x, y, z, got, want)
				}
			}
		}
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	l, err := NewLayout3(3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	src := make([]float64, l.Len())
	for i := range src {
		src[i] = r.Float64()
	}
	curve := make([]float64, l.Len())
	back := make([]float64, l.Len())
	l.Permute(curve, src)
	l.Unpermute(back, curve)
	for i := range src {
		if back[i] != src[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestPermuteLengthMismatchPanics(t *testing.T) {
	l, _ := NewLayout3(2, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Permute(make([]float64, 7), make([]float64, 8))
}

func TestNewLayout3Validation(t *testing.T) {
	if _, err := NewLayout3(0, 2, 2); err == nil {
		t.Error("zero dimension accepted")
	}
	if _, err := NewLayout3(-1, 2, 2); err == nil {
		t.Error("negative dimension accepted")
	}
}

func TestZOrderLocality(t *testing.T) {
	// The defining property the mining optimization relies on: every aligned
	// 2x2x2 block of a power-of-two grid occupies 8 consecutive curve
	// positions.
	l, err := NewLayout3(8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	for bz := 0; bz < 8; bz += 2 {
		for by := 0; by < 8; by += 2 {
			for bx := 0; bx < 8; bx += 2 {
				min, max := 1<<30, -1
				for dz := 0; dz < 2; dz++ {
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							row := (bz+dz)*64 + (by+dy)*8 + (bx + dx)
							p := l.CurvePos(row)
							if p < min {
								min = p
							}
							if p > max {
								max = p
							}
						}
					}
				}
				if max-min != 7 {
					t.Fatalf("block (%d,%d,%d) spans curve [%d,%d], not contiguous", bx, by, bz, min, max)
				}
			}
		}
	}
}
