package binning

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniformBasics(t *testing.T) {
	u, err := NewUniform(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		v    float64
		want int
	}{
		{-1, 0}, {0, 0}, {1.9, 0}, {2, 1}, {9.99, 4}, {10, 4}, {11, 4},
	}
	for _, c := range cases {
		if got := u.Bin(c.v); got != c.want {
			t.Errorf("Bin(%g)=%d want %d", c.v, got, c.want)
		}
	}
	if u.Low(0) != 0 || u.High(4) != 10 {
		t.Errorf("edges wrong: Low(0)=%g High(4)=%g", u.Low(0), u.High(4))
	}
}

func TestUniformValidation(t *testing.T) {
	if _, err := NewUniform(0, 10, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewUniform(5, 5, 3); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewUniform(6, 5, 3); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestUniformEveryValueHasOneBin(t *testing.T) {
	f := func(raw []float64) bool {
		u, err := NewUniform(-100, 100, 37)
		if err != nil {
			return false
		}
		for _, v := range raw {
			if math.IsNaN(v) {
				continue
			}
			b := u.Bin(v)
			if b < 0 || b >= u.Bins() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformBinRespectsEdges(t *testing.T) {
	u, _ := NewUniform(-3, 7, 13)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		v := -3 + r.Float64()*10
		b := u.Bin(v)
		if v < u.Low(b)-1e-9 || v > u.High(b)+1e-9 {
			t.Fatalf("value %g in bin %d [%g,%g)", v, b, u.Low(b), u.High(b))
		}
	}
}

func TestPrecisionBinning(t *testing.T) {
	// The paper's Heat3D binning: 1 digit after the decimal point.
	u, err := NewPrecision(0.0, 20.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if u.Bins() != 205 {
		t.Fatalf("Bins=%d want 205 (0.1-wide bins over [0,20.5])", u.Bins())
	}
	// Two values that agree to 1 decimal share a bin; differing ones do not.
	if u.Bin(3.14) != u.Bin(3.19) {
		t.Error("3.14 and 3.19 should share the 0.1-wide bin [3.1,3.2)")
	}
	if u.Bin(3.14) == u.Bin(3.24) {
		t.Error("3.14 and 3.24 must be in different bins")
	}
}

func TestPrecisionValidation(t *testing.T) {
	if _, err := NewPrecision(0, 1, -1); err == nil {
		t.Error("negative digits accepted")
	}
	if _, err := NewPrecision(0, 1, 10); err == nil {
		t.Error("excessive digits accepted")
	}
	// Degenerate range must still produce a valid single bin.
	u, err := NewPrecision(5, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if u.Bins() < 1 {
		t.Error("degenerate range produced no bins")
	}
}

func TestExplicit(t *testing.T) {
	e, err := NewExplicit([]float64{0, 1, 4, 9})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		v    float64
		want int
	}{{-5, 0}, {0, 0}, {0.5, 0}, {1, 1}, {3.99, 1}, {4, 2}, {9, 2}, {100, 2}}
	for _, c := range cases {
		if got := e.Bin(c.v); got != c.want {
			t.Errorf("Bin(%g)=%d want %d", c.v, got, c.want)
		}
	}
	if _, err := NewExplicit([]float64{1}); err == nil {
		t.Error("single edge accepted")
	}
	if _, err := NewExplicit([]float64{1, 1}); err == nil {
		t.Error("non-increasing edges accepted")
	}
}

func TestExplicitMatchesLinearScan(t *testing.T) {
	edges := []float64{-2, -1, 0, 0.5, 2, 3, 8}
	e, _ := NewExplicit(edges)
	linear := func(v float64) int {
		if v < edges[0] {
			return 0
		}
		for b := 0; b < len(edges)-1; b++ {
			if v >= edges[b] && v < edges[b+1] {
				return b
			}
		}
		return len(edges) - 2
	}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		v := -4 + r.Float64()*14
		if got, want := e.Bin(v), linear(v); got != want {
			t.Fatalf("Bin(%g)=%d want %d", v, got, want)
		}
	}
}

func TestGrouped(t *testing.T) {
	base, _ := NewUniform(0, 10, 10)
	g, err := NewGrouped(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Bins() != 4 { // ceil(10/3)
		t.Fatalf("Bins=%d want 4", g.Bins())
	}
	if g.Bin(0.5) != 0 || g.Bin(3.5) != 1 || g.Bin(9.5) != 3 {
		t.Error("grouped bin assignment wrong")
	}
	lo, hi := g.Children(3)
	if lo != 9 || hi != 10 {
		t.Errorf("Children(3)=[%d,%d) want [9,10)", lo, hi)
	}
	if g.Low(1) != base.Low(3) || g.High(3) != base.High(9) {
		t.Error("grouped edges wrong")
	}
	if _, err := NewGrouped(base, 0); err == nil {
		t.Error("zero fanout accepted")
	}
}

func TestGroupedConsistentWithBase(t *testing.T) {
	base, _ := NewUniform(-5, 5, 23)
	g, _ := NewGrouped(base, 4)
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		v := -6 + r.Float64()*12
		if g.Bin(v) != base.Bin(v)/4 {
			t.Fatalf("grouped bin of %g inconsistent with base", v)
		}
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = %g,%g", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 1 {
		t.Fatalf("empty MinMax = %g,%g want 0,1", min, max)
	}
}

func TestEdges(t *testing.T) {
	u, _ := NewUniform(0, 4, 4)
	e := Edges(u)
	want := []float64{0, 1, 2, 3, 4}
	if len(e) != len(want) {
		t.Fatalf("Edges len %d", len(e))
	}
	for i := range want {
		if math.Abs(e[i]-want[i]) > 1e-12 {
			t.Fatalf("edge %d = %g want %g", i, e[i], want[i])
		}
	}
	// Round-trip through Explicit gives the same binning.
	ex, err := NewExplicit(e)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		v := -1 + r.Float64()*6
		if ex.Bin(v) != u.Bin(v) {
			t.Fatalf("explicit-from-edges disagrees at %g", v)
		}
	}
}

func TestEquiDepthBalancedCounts(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	// Heavily skewed sample: exponential-ish.
	sample := make([]float64, 10000)
	for i := range sample {
		sample[i] = math.Exp(r.Float64() * 5)
	}
	e, err := NewEquiDepth(sample, 16)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, e.Bins())
	for _, v := range sample {
		counts[e.Bin(v)]++
	}
	avg := len(sample) / e.Bins()
	for b, c := range counts {
		if c < avg/3 || c > avg*3 {
			t.Fatalf("bin %d holds %d values, average %d: not equi-depth", b, c, avg)
		}
	}
	// Every sample value maps inside the edge range.
	for _, v := range sample {
		b := e.Bin(v)
		if v < e.Low(b)-1e-9 || v > e.High(b)+1e-9 {
			t.Fatalf("value %g escaped bin %d [%g,%g)", v, b, e.Low(b), e.High(b))
		}
	}
}

func TestEquiDepthDuplicateHeavySample(t *testing.T) {
	// 90% of values identical: duplicate quantiles must collapse without
	// breaking edge monotonicity.
	sample := make([]float64, 1000)
	for i := range sample {
		if i%10 == 0 {
			sample[i] = float64(i)
		} else {
			sample[i] = 42
		}
	}
	e, err := NewEquiDepth(sample, 8)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < e.Bins(); b++ {
		if !(e.Low(b) < e.High(b)) {
			t.Fatalf("bin %d empty-width [%g,%g)", b, e.Low(b), e.High(b))
		}
	}
	// The maximum value must land in the final bin, not clamp outside.
	if got := e.Bin(990); got != e.Bins()-1 {
		t.Fatalf("max value in bin %d of %d", got, e.Bins())
	}
}

func TestEquiDepthValidation(t *testing.T) {
	if _, err := NewEquiDepth([]float64{1, 2, 3}, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewEquiDepth([]float64{1}, 4); err == nil {
		t.Error("single sample accepted")
	}
	// A constant sample degrades gracefully to a single bin.
	e, err := NewEquiDepth([]float64{7, 7, 7, 7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if e.Bins() != 1 || e.Bin(7) != 0 {
		t.Errorf("constant sample: %d bins, Bin(7)=%d", e.Bins(), e.Bin(7))
	}
}

func TestUniformNaNDoesNotPanic(t *testing.T) {
	u, _ := NewUniform(0, 10, 16)
	b := u.Bin(math.NaN())
	if b < 0 || b >= u.Bins() {
		t.Fatalf("NaN mapped to bin %d", b)
	}
	// NaN must also survive an index build without panicking.
	e, _ := NewExplicit([]float64{0, 1, 2})
	if b := e.Bin(math.NaN()); b < 0 || b >= e.Bins() {
		t.Fatalf("NaN mapped to explicit bin %d", b)
	}
}
