// Package binning defines how raw floating-point values map onto the bins
// (bitvectors) of a bitmap index. The paper bins float data to keep the
// number of bitvectors manageable (§2.1) and stresses that, because the
// full-data analyses bin identically, the bitmap path loses no accuracy.
// Binning here is therefore a first-class, shared component: the same
// Mapper drives both the index build and the full-data baselines.
package binning

import (
	"fmt"
	"math"
	"sort"
)

// Mapper assigns every value to exactly one bin in [0, Bins()).
type Mapper interface {
	// Bin returns the bin id for v. Values outside the configured range
	// clamp to the first or last bin, so every value has a home.
	Bin(v float64) int
	// Bins returns the number of bins.
	Bins() int
	// Low and High return the value range covered by bin b; bins tile
	// [Low(0), High(Bins()-1)) left-closed.
	Low(b int) float64
	High(b int) float64
}

// Uniform maps values into equal-width bins over [Min, Max].
type Uniform struct {
	Min, Max float64
	N        int
	width    float64
	invWidth float64 // multiplication beats division in the Bin hot path
}

// NewUniform builds a uniform mapper with n bins over [min, max].
func NewUniform(min, max float64, n int) (*Uniform, error) {
	if n <= 0 {
		return nil, fmt.Errorf("binning: bin count %d must be positive", n)
	}
	if !(min < max) {
		return nil, fmt.Errorf("binning: invalid range [%g, %g]", min, max)
	}
	w := (max - min) / float64(n)
	return &Uniform{Min: min, Max: max, N: n, width: w, invWidth: 1 / w}, nil
}

// Bin implements Mapper with clamping at both ends. Bin is the single
// hottest call of the full-data paths (once per element per scan), hence
// the reciprocal multiply.
func (u *Uniform) Bin(v float64) int {
	if v <= u.Min {
		return 0
	}
	if v >= u.Max {
		return u.N - 1
	}
	b := int((v - u.Min) * u.invWidth)
	if b >= u.N { // guard against FP rounding at the top edge
		b = u.N - 1
	}
	if b < 0 { // NaN converts to an arbitrary int; map it to bin 0
		b = 0
	}
	return b
}

// Bins implements Mapper.
func (u *Uniform) Bins() int { return u.N }

// Low implements Mapper.
func (u *Uniform) Low(b int) float64 { return u.Min + float64(b)*u.width }

// High implements Mapper.
func (u *Uniform) High(b int) float64 { return u.Min + float64(b+1)*u.width }

// NewPrecision builds the paper's decimal-precision binning: one bin per
// value rounded to `digits` decimal places over the observed [min, max]
// range (e.g. Heat3D uses digits=1, yielding 64–206 bins depending on the
// temperature range of the time-step). The bin count adapts to the range.
func NewPrecision(min, max float64, digits int) (*Uniform, error) {
	if digits < 0 || digits > 9 {
		return nil, fmt.Errorf("binning: digits %d out of range [0,9]", digits)
	}
	step := math.Pow(10, -float64(digits))
	lo := math.Floor(min/step) * step
	hi := math.Ceil(max/step) * step
	if hi <= lo {
		hi = lo + step
	}
	n := int(math.Round((hi - lo) / step))
	if n < 1 {
		n = 1
	}
	return NewUniform(lo, hi, n)
}

// Explicit maps values by binary search over caller-provided edges:
// bin b covers [Edges[b], Edges[b+1]).
type Explicit struct {
	Edges []float64 // strictly increasing, len = Bins()+1
}

// NewExplicit validates and wraps an edge slice.
func NewExplicit(edges []float64) (*Explicit, error) {
	if len(edges) < 2 {
		return nil, fmt.Errorf("binning: need at least 2 edges, got %d", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if !(edges[i-1] < edges[i]) {
			return nil, fmt.Errorf("binning: edges not strictly increasing at %d", i)
		}
	}
	return &Explicit{Edges: append([]float64(nil), edges...)}, nil
}

// Bin implements Mapper via binary search with clamping.
func (e *Explicit) Bin(v float64) int {
	lo, hi := 0, len(e.Edges)-1 // invariant: answer in [lo, hi)
	if v < e.Edges[0] {
		return 0
	}
	if v >= e.Edges[hi] {
		return hi - 1
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if v >= e.Edges[mid] {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Bins implements Mapper.
func (e *Explicit) Bins() int { return len(e.Edges) - 1 }

// Low implements Mapper.
func (e *Explicit) Low(b int) float64 { return e.Edges[b] }

// High implements Mapper.
func (e *Explicit) High(b int) float64 { return e.Edges[b+1] }

// Grouped coarsens a base mapper by fusing `fanout` consecutive base bins
// into one, producing the paper's high-level (interval) bins of Figure 1.
type Grouped struct {
	Base   Mapper
	Fanout int
	n      int
}

// NewGrouped wraps base so that high-level bin h covers base bins
// [h*fanout, min((h+1)*fanout, base.Bins())).
func NewGrouped(base Mapper, fanout int) (*Grouped, error) {
	if fanout <= 0 {
		return nil, fmt.Errorf("binning: fanout %d must be positive", fanout)
	}
	n := (base.Bins() + fanout - 1) / fanout
	return &Grouped{Base: base, Fanout: fanout, n: n}, nil
}

// Bin implements Mapper.
func (g *Grouped) Bin(v float64) int { return g.Base.Bin(v) / g.Fanout }

// Bins implements Mapper.
func (g *Grouped) Bins() int { return g.n }

// Low implements Mapper.
func (g *Grouped) Low(b int) float64 { return g.Base.Low(b * g.Fanout) }

// High implements Mapper.
func (g *Grouped) High(b int) float64 {
	last := (b+1)*g.Fanout - 1
	if last >= g.Base.Bins() {
		last = g.Base.Bins() - 1
	}
	return g.Base.High(last)
}

// Children returns the base-bin range [lo, hi) fused into high-level bin h.
func (g *Grouped) Children(h int) (lo, hi int) {
	lo = h * g.Fanout
	hi = lo + g.Fanout
	if hi > g.Base.Bins() {
		hi = g.Base.Bins()
	}
	return lo, hi
}

// NewEquiDepth builds an explicit mapper whose bins hold (approximately)
// equally many of the sample's values — useful when the value distribution
// is heavily skewed and uniform bins would leave most bitvectors empty
// (the flip side of the paper's §5.4 note that bin count/placement trades
// precision against cost for both the bitmap and full-data methods).
// The sample is not retained.
func NewEquiDepth(sample []float64, n int) (*Explicit, error) {
	if n <= 0 {
		return nil, fmt.Errorf("binning: bin count %d must be positive", n)
	}
	if len(sample) < 2 {
		return nil, fmt.Errorf("binning: need at least 2 sample values, got %d", len(sample))
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	edges := make([]float64, 0, n+1)
	edges = append(edges, sorted[0])
	for k := 1; k < n; k++ {
		q := sorted[k*len(sorted)/n]
		if q > edges[len(edges)-1] { // skip duplicate quantiles
			edges = append(edges, q)
		}
	}
	// Make the top edge exclusive-safe so the maximum maps into the last
	// bin; a constant sample degrades to one bin of this tiny width.
	top := sorted[len(sorted)-1]
	top += math.Max(1e-12, math.Abs(top)*1e-12)
	edges = append(edges, top)
	return NewExplicit(edges)
}

// MinMax scans a slice once and returns its range; it returns (0, 1) for an
// empty slice so downstream mapper constructors remain valid.
func MinMax(data []float64) (min, max float64) {
	if len(data) == 0 {
		return 0, 1
	}
	min, max = data[0], data[0]
	for _, v := range data[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Edges materializes the Bins()+1 edge values of any mapper, used when
// serializing an index so it can be queried without the original mapper.
func Edges(m Mapper) []float64 {
	n := m.Bins()
	out := make([]float64, n+1)
	for b := 0; b < n; b++ {
		out[b] = m.Low(b)
	}
	out[n] = m.High(n - 1)
	return out
}
