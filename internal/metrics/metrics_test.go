package metrics

import (
	"math"
	"math/rand"
	"testing"

	"insitubits/internal/binning"
	"insitubits/internal/index"
)

const eps = 1e-9

// smooth generates simulation-like data in [0,10).
func smooth(r *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	v := r.Float64() * 10
	for i := range out {
		if r.Intn(50) == 0 {
			v = r.Float64() * 10
		}
		v += (r.Float64() - 0.5) * 0.05
		out[i] = math.Min(9.999, math.Max(0, v))
	}
	return out
}

func uniform(t *testing.T, bins int) binning.Mapper {
	t.Helper()
	m, err := binning.NewUniform(0, 10, bins)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEntropyKnownValues(t *testing.T) {
	// Uniform over 4 outcomes: H = 2 bits.
	if h := Entropy([]int{25, 25, 25, 25}, 100); math.Abs(h-2) > eps {
		t.Fatalf("uniform-4 entropy = %g want 2", h)
	}
	// Deterministic: H = 0.
	if h := Entropy([]int{100, 0, 0}, 100); h != 0 {
		t.Fatalf("constant entropy = %g want 0", h)
	}
	// Fair coin: H = 1.
	if h := Entropy([]int{50, 50}, 100); math.Abs(h-1) > eps {
		t.Fatalf("coin entropy = %g want 1", h)
	}
	if h := Entropy(nil, 0); h != 0 {
		t.Fatalf("empty entropy = %g", h)
	}
}

func TestMutualInformationKnownValues(t *testing.T) {
	// A == B, both fair coins: I = H = 1 bit.
	joint := [][]int{{50, 0}, {0, 50}}
	if mi := MutualInformation(joint, []int{50, 50}, []int{50, 50}, 100); math.Abs(mi-1) > eps {
		t.Fatalf("identical coins MI = %g want 1", mi)
	}
	// Independent fair coins: I = 0.
	joint = [][]int{{25, 25}, {25, 25}}
	if mi := MutualInformation(joint, []int{50, 50}, []int{50, 50}, 100); math.Abs(mi) > eps {
		t.Fatalf("independent coins MI = %g want 0", mi)
	}
}

func TestConditionalEntropyIdentity(t *testing.T) {
	// H(A|A) = 0 for any distribution.
	joint := [][]int{{30, 0, 0}, {0, 50, 0}, {0, 0, 20}}
	h := []int{30, 50, 20}
	if ce := ConditionalEntropy(joint, h, h, 100); math.Abs(ce) > eps {
		t.Fatalf("H(A|A) = %g want 0", ce)
	}
	// H(A|B) = H(A) when independent.
	joint = [][]int{{25, 25}, {25, 25}}
	m := []int{50, 50}
	if ce := ConditionalEntropy(joint, m, m, 100); math.Abs(ce-1) > eps {
		t.Fatalf("independent H(A|B) = %g want 1", ce)
	}
}

func TestMutualInformationTermSumsToMI(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := smooth(r, 2000)
	b := smooth(r, 2000)
	m := uniform(t, 16)
	joint := JointHistogram(a, b, m, m)
	ha, hb := Histogram(a, m), Histogram(b, m)
	sum := 0.0
	for i := range joint {
		for j := range joint[i] {
			sum += MutualInformationTerm(joint[i][j], ha[i], hb[j], len(a))
		}
	}
	if mi := MutualInformation(joint, ha, hb, len(a)); math.Abs(sum-mi) > 1e-6 {
		t.Fatalf("term sum %g != MI %g", sum, mi)
	}
}

// TestBitmapPathMatchesDataPath is the paper's central no-accuracy-loss
// claim: every metric computed from bitmaps equals the full-data result
// exactly (same binning).
func TestBitmapPathMatchesDataPath(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := 500 + r.Intn(3000)
		a := smooth(r, n)
		b := smooth(r, n)
		m := uniform(t, 8+r.Intn(60))
		xa := index.Build(a, m)
		xb := index.Build(b, m)

		// Histograms.
		ha := Histogram(a, m)
		for i, c := range xa.Histogram() {
			if c != ha[i] {
				t.Fatalf("trial %d: histogram bin %d: bitmap %d data %d", trial, i, c, ha[i])
			}
		}
		// Joint distribution: the decode path, the paper's AND path, and
		// the full-data scan must agree cell by cell.
		jd := JointHistogram(a, b, m, m)
		jb := JointHistogramBitmaps(xa, xb)
		ja := JointHistogramBitmapsAND(xa, xb)
		for i := range jd {
			for j := range jd[i] {
				if jd[i][j] != jb[i][j] {
					t.Fatalf("trial %d: joint[%d][%d]: bitmap %d data %d", trial, i, j, jb[i][j], jd[i][j])
				}
				if jd[i][j] != ja[i][j] {
					t.Fatalf("trial %d: joint[%d][%d]: AND-path %d data %d", trial, i, j, ja[i][j], jd[i][j])
				}
			}
		}
		// Full metric bundle.
		pd := PairFromData(a, b, m, m)
		pb := PairFromBitmaps(xa, xb)
		for name, pair := range map[string][2]float64{
			"EntropyA": {pd.EntropyA, pb.EntropyA},
			"EntropyB": {pd.EntropyB, pb.EntropyB},
			"MI":       {pd.MI, pb.MI},
			"H(A|B)":   {pd.CondEntropyAB, pb.CondEntropyAB},
			"H(B|A)":   {pd.CondEntropyBA, pb.CondEntropyBA},
		} {
			if math.Abs(pair[0]-pair[1]) > eps {
				t.Fatalf("trial %d: %s: data %g bitmap %g", trial, name, pair[0], pair[1])
			}
		}
		// EMD, both variants.
		if d, bm := EMDCount(ha, Histogram(b, m)), EMDCount(xa.Histogram(), xb.Histogram()); math.Abs(d-bm) > eps {
			t.Fatalf("trial %d: EMDCount: data %g bitmap %g", trial, d, bm)
		}
		if d, bm := EMDSpatialData(a, b, m), EMDSpatialBitmaps(xa, xb); math.Abs(d-bm) > eps {
			t.Fatalf("trial %d: EMDSpatial: data %g bitmap %g", trial, d, bm)
		}
	}
}

func TestEMDCountProperties(t *testing.T) {
	// Identical histograms: EMD = 0. Moving one element one bin: EMD = 1.
	h := []int{5, 3, 2}
	if d := EMDCount(h, h); d != 0 {
		t.Fatalf("EMD(h,h)=%g", d)
	}
	if d := EMDCount([]int{5, 3, 2}, []int{4, 4, 2}); d != 1 {
		t.Fatalf("one-step move EMD=%g want 1", d)
	}
	// Moving one element across two bins costs 2.
	if d := EMDCount([]int{5, 3, 2}, []int{4, 3, 3}); d != 2 {
		t.Fatalf("two-step move EMD=%g want 2", d)
	}
	// Symmetry.
	a, b := []int{9, 1, 0, 4}, []int{2, 2, 5, 5}
	if EMDCount(a, b) != EMDCount(b, a) {
		t.Fatal("EMDCount not symmetric")
	}
}

func TestEMDSpatialDetectsRearrangement(t *testing.T) {
	// Same value distribution, different spatial arrangement: count EMD is
	// zero but spatial EMD is not — the reason the paper has both variants.
	a := []float64{1, 1, 5, 5}
	b := []float64{5, 5, 1, 1}
	m := uniform(t, 10)
	if d := EMDCount(Histogram(a, m), Histogram(b, m)); d != 0 {
		t.Fatalf("count EMD = %g want 0", d)
	}
	if d := EMDSpatialData(a, b, m); d == 0 {
		t.Fatal("spatial EMD should be nonzero for rearranged data")
	}
}

func TestPanicsOnLengthMismatch(t *testing.T) {
	m := uniform(t, 4)
	for name, fn := range map[string]func(){
		"JointHistogram": func() { JointHistogram([]float64{1}, []float64{1, 2}, m, m) },
		"EMDCount":       func() { EMDCount([]int{1}, []int{1, 2}) },
		"EMDSpatialData": func() { EMDSpatialData([]float64{1}, []float64{1, 2}, m) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCFP(t *testing.T) {
	c := NewCFP([]float64{0.3, 0.1, 0.2, 0.4})
	if c.Len() != 4 {
		t.Fatalf("Len=%d", c.Len())
	}
	if f := c.FractionBelow(0.25); math.Abs(f-0.5) > eps {
		t.Fatalf("FractionBelow(0.25)=%g want 0.5", f)
	}
	if m := c.Mean(); math.Abs(m-0.25) > eps {
		t.Fatalf("Mean=%g want 0.25", m)
	}
	if q := c.Quantile(0); q != 0.1 {
		t.Fatalf("Quantile(0)=%g", q)
	}
	if q := c.Quantile(1); q != 0.4 {
		t.Fatalf("Quantile(1)=%g", q)
	}
	pts := c.Points(4)
	if len(pts) != 4 || pts[3][1] != 1 {
		t.Fatalf("Points=%v", pts)
	}
	// Monotone non-decreasing in both coordinates.
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] < pts[i-1][1] {
			t.Fatalf("CFP points not monotone: %v", pts)
		}
	}
	empty := NewCFP(nil)
	if empty.Mean() != 0 || empty.Quantile(0.5) != 0 || len(empty.Points(3)) != 0 {
		t.Fatal("empty CFP misbehaves")
	}
}

func TestRelativeErrors(t *testing.T) {
	errs, err := RelativeErrors([]float64{2, 0, -4}, []float64{1, 0.5, -5})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 0.5, 0.25}
	for i := range want {
		if math.Abs(errs[i]-want[i]) > eps {
			t.Fatalf("rel err %d = %g want %g", i, errs[i], want[i])
		}
	}
	if _, err := RelativeErrors([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	abs, err := AbsoluteErrors([]float64{1, -2}, []float64{3, -1})
	if err != nil || abs[0] != 2 || abs[1] != 1 {
		t.Fatalf("AbsoluteErrors = %v, %v", abs, err)
	}
}

func BenchmarkJointHistogramData(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	a := smooth(r, 1<<18)
	c := smooth(r, 1<<18)
	m, _ := binning.NewUniform(0, 10, 64)
	b.SetBytes(int64(16 * len(a)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JointHistogram(a, c, m, m)
	}
}

func BenchmarkJointHistogramBitmaps(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	a := smooth(r, 1<<18)
	c := smooth(r, 1<<18)
	m, _ := binning.NewUniform(0, 10, 64)
	xa := index.Build(a, m)
	xb := index.Build(c, m)
	b.SetBytes(int64(16 * len(a)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JointHistogramBitmaps(xa, xb)
	}
}

func BenchmarkEMDSpatialData(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	a := smooth(r, 1<<18)
	c := smooth(r, 1<<18)
	m, _ := binning.NewUniform(0, 10, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EMDSpatialData(a, c, m)
	}
}

func BenchmarkEMDSpatialBitmaps(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	a := smooth(r, 1<<18)
	c := smooth(r, 1<<18)
	m, _ := binning.NewUniform(0, 10, 64)
	xa := index.Build(a, m)
	xb := index.Build(c, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EMDSpatialBitmaps(xa, xb)
	}
}
