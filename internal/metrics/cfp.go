package metrics

import (
	"fmt"
	"sort"
)

// CFP is the Cumulative Frequency Plot the paper uses to report accuracy
// loss (§5.5, Figures 16 and 17): for a set of error values, a point (x, y)
// means fraction y of all errors are below x. A curve further to the left
// means higher accuracy.
type CFP struct {
	sorted []float64
}

// NewCFP builds a plot over the given error samples.
func NewCFP(errors []float64) *CFP {
	s := append([]float64(nil), errors...)
	sort.Float64s(s)
	return &CFP{sorted: s}
}

// Len returns the number of samples.
func (c *CFP) Len() int { return len(c.sorted) }

// FractionBelow returns the fraction of samples strictly less than x.
func (c *CFP) FractionBelow(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of the error distribution.
func (c *CFP) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(q * float64(len(c.sorted)-1))
	return c.sorted[i]
}

// Mean returns the average error.
func (c *CFP) Mean() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range c.sorted {
		sum += v
	}
	return sum / float64(len(c.sorted))
}

// Points samples the curve at k evenly spaced cumulative fractions,
// returning (x, y) pairs ready for plotting or for the experiment harness
// to print as the paper's figure series.
func (c *CFP) Points(k int) [][2]float64 {
	out := make([][2]float64, 0, k)
	n := len(c.sorted)
	if n == 0 || k <= 0 {
		return out
	}
	for i := 1; i <= k; i++ {
		idx := i*n/k - 1
		if idx < 0 {
			idx = 0
		}
		out = append(out, [2]float64{c.sorted[idx], float64(i) / float64(k)})
	}
	return out
}

// RelativeErrors converts (original, approx) value pairs into the paper's
// relative loss |original − approx| / |original|; pairs with original == 0
// fall back to the absolute error.
func RelativeErrors(original, approx []float64) ([]float64, error) {
	if len(original) != len(approx) {
		return nil, fmt.Errorf("metrics: %d original vs %d approximate values", len(original), len(approx))
	}
	out := make([]float64, len(original))
	for i := range original {
		d := original[i] - approx[i]
		if d < 0 {
			d = -d
		}
		o := original[i]
		if o < 0 {
			o = -o
		}
		if o > 0 {
			out[i] = d / o
		} else {
			out[i] = d
		}
	}
	return out, nil
}

// AbsoluteErrors returns |original − approx| per pair.
func AbsoluteErrors(original, approx []float64) ([]float64, error) {
	if len(original) != len(approx) {
		return nil, fmt.Errorf("metrics: %d original vs %d approximate values", len(original), len(approx))
	}
	out := make([]float64, len(original))
	for i := range original {
		d := original[i] - approx[i]
		if d < 0 {
			d = -d
		}
		out[i] = d
	}
	return out, nil
}
