// Package metrics implements the information-theoretic correlation metrics
// of the paper's §3.1 — Shannon entropy, mutual information, conditional
// entropy, and the Earth Mover's Distance in both its count and spatial
// variants — each computable two ways: from raw data arrays (the "full data"
// baseline) and from bitmap indices (the paper's method). Because both paths
// bin identically, they produce *identical* results; the bitmap path is just
// cheaper, replacing full-array scans with cached histograms, bitwise AND
// (joint distributions) and XOR (spatial differences) on compressed vectors.
package metrics

import (
	"fmt"
	"math"

	"insitubits/internal/binning"
	"insitubits/internal/bitcache"
	"insitubits/internal/index"
)

// Histogram counts elements per bin by scanning the data (full-data path).
// The bitmap path gets the same numbers for free from Index.Histogram.
func Histogram(data []float64, m binning.Mapper) []int {
	h := make([]int, m.Bins())
	for _, v := range data {
		h[m.Bin(v)]++
	}
	return h
}

// JointHistogram scans two equally long arrays once and counts co-occurring
// bin pairs: joint[i][j] = |{k : a_k ∈ bin i of ma, b_k ∈ bin j of mb}|.
func JointHistogram(a, b []float64, ma, mb binning.Mapper) [][]int {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: joint histogram over arrays of length %d and %d", len(a), len(b)))
	}
	joint := make([][]int, ma.Bins())
	cells := make([]int, ma.Bins()*mb.Bins())
	for i := range joint {
		joint[i], cells = cells[:mb.Bins()], cells[mb.Bins():]
	}
	for k := range a {
		joint[ma.Bin(a[k])][mb.Bin(b[k])]++
	}
	return joint
}

// JointHistogramBitmaps produces the same joint distribution as
// JointHistogram from the two indices alone (the raw data may already be
// discarded). It decodes each index into per-element bin ids in one pass —
// O(n) total regardless of bin count — and tallies the pairs. See
// JointHistogramBitmapsAND for the paper's literal bins×bins AND
// formulation, which this replaces as the default because at reproduction
// scale the AND product term (bins² × compressed words) can exceed O(n);
// both compute identical numbers (asserted by tests).
func JointHistogramBitmaps(xa, xb *index.Index) [][]int {
	if xa.N() != xb.N() {
		panic(fmt.Sprintf("metrics: joint histogram over indices of %d and %d elements", xa.N(), xb.N()))
	}
	joint := make([][]int, xa.Bins())
	cells := make([]int, xa.Bins()*xb.Bins())
	for i := range joint {
		joint[i], cells = cells[:xb.Bins()], cells[xb.Bins():]
	}
	ida := xa.BinIDs(nil)
	idb := xb.BinIDs(nil)
	for k := range ida {
		joint[ida[k]][idb[k]]++
	}
	return joint
}

// JointHistogramBitmapsAND is the paper's Figure 5 formulation verbatim:
// one compressed AndCount per bin pair, with a zero-count shortcut. Kept as
// the mining building block (where only surviving pairs are ANDed) and as
// the decode-vs-AND ablation baseline.
func JointHistogramBitmapsAND(xa, xb *index.Index) [][]int {
	if xa.N() != xb.N() {
		panic(fmt.Sprintf("metrics: joint histogram over indices of %d and %d elements", xa.N(), xb.N()))
	}
	joint := make([][]int, xa.Bins())
	cells := make([]int, xa.Bins()*xb.Bins())
	for i := range joint {
		joint[i], cells = cells[:xb.Bins()], cells[xb.Bins():]
	}
	// Consult the process cache read-only: a joint vector materialized by
	// mining or a correlation query answers the pair's count by popcount.
	// Counts are not worth storing (the cache holds bitmaps), so misses
	// compute AndCount without a Put.
	c := bitcache.Default()
	genA, genB := xa.Generation(), xb.Generation()
	for i := 0; i < xa.Bins(); i++ {
		if xa.Count(i) == 0 {
			continue
		}
		va := xa.Bitmap(i)
		for j := 0; j < xb.Bins(); j++ {
			if xb.Count(j) == 0 {
				continue
			}
			if c != nil {
				if hit := c.Get(bitcache.AndKey(bitcache.BinKey(genA, i), bitcache.BinKey(genB, j))); hit != nil {
					joint[i][j] = hit.Count()
					continue
				}
			}
			joint[i][j] = va.AndCount(xb.Bitmap(j))
		}
	}
	return joint
}

// Entropy returns Shannon's entropy H = -Σ p·log2(p) in bits over a count
// histogram with n total elements (Equation 4).
func Entropy(counts []int, n int) float64 {
	if n <= 0 {
		return 0
	}
	h := 0.0
	inv := 1.0 / float64(n)
	for _, c := range counts {
		if c > 0 {
			p := float64(c) * inv
			h -= p * math.Log2(p)
		}
	}
	return h
}

// MutualInformation returns I(A;B) in bits from a joint histogram and the
// two marginals (Equation 5). All histograms must be over the same n.
func MutualInformation(joint [][]int, ca, cb []int, n int) float64 {
	if n <= 0 {
		return 0
	}
	inv := 1.0 / float64(n)
	mi := 0.0
	for i := range joint {
		if ca[i] == 0 {
			continue
		}
		pa := float64(ca[i]) * inv
		for j, cij := range joint[i] {
			if cij == 0 || cb[j] == 0 {
				continue
			}
			pab := float64(cij) * inv
			pb := float64(cb[j]) * inv
			mi += pab * math.Log2(pab/(pa*pb))
		}
	}
	if mi < 0 { // clamp tiny negative FP residue
		mi = 0
	}
	return mi
}

// MutualInformationTerm returns the single (i,j) summand of Equation 7,
// used by correlation mining to score one joint bin.
func MutualInformationTerm(cij, ci, cj, n int) float64 {
	if cij == 0 || ci == 0 || cj == 0 || n == 0 {
		return 0
	}
	inv := 1.0 / float64(n)
	pab := float64(cij) * inv
	return pab * math.Log2(pab/(float64(ci)*inv*float64(cj)*inv))
}

// ConditionalEntropy returns H(A|B) = H(A) − I(A;B) (Equation 6): the
// information A carries beyond what B already conveys — the paper's
// importance score for time-step selection.
func ConditionalEntropy(joint [][]int, ca, cb []int, n int) float64 {
	return Entropy(ca, n) - MutualInformation(joint, ca, cb, n)
}

// EMDCount is the count variant of the Earth Mover's Distance (Equation 3,
// first method): bins are compared by element count only. CFP(j) accumulates
// the signed count differences and the distance sums |CFP(j)|, the classic
// 1-D EMD between the two value distributions.
func EMDCount(ha, hb []int) float64 {
	if len(ha) != len(hb) {
		panic(fmt.Sprintf("metrics: EMD over histograms of %d and %d bins", len(ha), len(hb)))
	}
	cfp := 0
	total := 0.0
	for j := range ha {
		cfp += ha[j] - hb[j]
		total += math.Abs(float64(cfp))
	}
	return total
}

// EMDSpatialData is the spatial variant of EMD computed from raw data
// (Equation 3, second method): Diff(j) counts the *positions* where exactly
// one of the two time-steps has an element in bin j, so spatial arrangement
// matters, not just counts.
func EMDSpatialData(a, b []float64, m binning.Mapper) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("metrics: spatial EMD over arrays of length %d and %d", len(a), len(b)))
	}
	diffs := make([]int, m.Bins())
	for k := range a {
		ba, bb := m.Bin(a[k]), m.Bin(b[k])
		if ba != bb {
			diffs[ba]++
			diffs[bb]++
		}
	}
	cfp := 0
	total := 0.0
	for _, d := range diffs {
		cfp += d
		total += float64(cfp)
	}
	return total
}

// EMDSpatialBitmaps computes the identical spatial EMD from two indices
// with one XorCount per bin pair of the same bin id (Figure 4): the XOR
// popcount is exactly the number of positions where the bins differ.
func EMDSpatialBitmaps(xa, xb *index.Index) float64 {
	if xa.Bins() != xb.Bins() {
		panic(fmt.Sprintf("metrics: spatial EMD over indices with %d and %d bins", xa.Bins(), xb.Bins()))
	}
	cfp := 0
	total := 0.0
	for j := 0; j < xa.Bins(); j++ {
		cfp += xa.Bitmap(j).XorCount(xb.Bitmap(j))
		total += float64(cfp)
	}
	return total
}

// Pair bundles the full set of pairwise metrics the selection algorithm
// consumes, so one joint-distribution computation serves them all.
type Pair struct {
	EntropyA, EntropyB float64
	MI                 float64
	CondEntropyAB      float64 // H(A|B)
	CondEntropyBA      float64 // H(B|A)
}

// PairFromData computes every pairwise metric by scanning the raw arrays.
func PairFromData(a, b []float64, ma, mb binning.Mapper) Pair {
	ha := Histogram(a, ma)
	hb := Histogram(b, mb)
	joint := JointHistogram(a, b, ma, mb)
	return pairFrom(joint, ha, hb, len(a))
}

// PairFromBitmaps computes the identical metrics from two indices.
func PairFromBitmaps(xa, xb *index.Index) Pair {
	joint := JointHistogramBitmaps(xa, xb)
	return pairFrom(joint, xa.Histogram(), xb.Histogram(), xa.N())
}

func pairFrom(joint [][]int, ha, hb []int, n int) Pair {
	ea := Entropy(ha, n)
	eb := Entropy(hb, n)
	mi := MutualInformation(joint, ha, hb, n)
	return Pair{
		EntropyA:      ea,
		EntropyB:      eb,
		MI:            mi,
		CondEntropyAB: ea - mi,
		CondEntropyBA: eb - mi,
	}
}
