package replay

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"insitubits/internal/binning"
	"insitubits/internal/bitcache"
	"insitubits/internal/codec"
	"insitubits/internal/index"
	"insitubits/internal/qlog"
	"insitubits/internal/query"
)

// replayTestData mixes smooth waves (long fills) with noise (literals).
func replayTestData(n, phase int) []float64 {
	data := make([]float64, n)
	for i := range data {
		switch {
		case i%113 == 0:
			data[i] = float64((i + phase) % 8)
		case (i/256)%4 == 0:
			data[i] = float64(((i + phase) / 256) % 8)
		default:
			data[i] = 4 + 3.9*math.Sin(float64(i+phase)/300)
		}
	}
	return data
}

func buildPair(t *testing.T, id codec.ID) (*index.Index, *index.Index) {
	t.Helper()
	m, err := binning.NewUniform(0, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	const n = 31 * 600
	return index.BuildCodec(replayTestData(n, 0), m, id),
		index.BuildCodec(replayTestData(n, 1777), m, id)
}

// captureCanned records the canned mixed workload — every replayable op,
// value/spatial/combined predicates, a repeated query, and one failing
// query — and returns the parsed log.
func captureCanned(t *testing.T, dir string, x, xb *index.Index) []qlog.Record {
	t.Helper()
	path := filepath.Join(dir, "canned.isql")
	w, err := qlog.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	qlog.Install(w)
	defer qlog.Install(nil)
	ctx := context.Background()
	n := x.N()
	subs := []query.Subset{
		{ValueLo: 1, ValueHi: 5},
		{SpatialLo: 31, SpatialHi: n - 31},
		{ValueLo: 2, ValueHi: 7, SpatialLo: 100, SpatialHi: n / 2},
		{ValueLo: 0, ValueHi: 8},
		{ValueLo: 3, ValueHi: 4, SpatialLo: 0, SpatialHi: n},
	}
	for _, s := range subs {
		if _, err := query.Bits(ctx, x, s); err != nil {
			t.Fatal(err)
		}
		if _, err := query.Count(ctx, x, s); err != nil {
			t.Fatal(err)
		}
		if _, err := query.Sum(ctx, x, s); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := query.Mean(ctx, x, subs[0]); err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.99} {
		if _, err := query.Quantile(ctx, x, subs[2], q); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := query.MinMax(ctx, x, subs[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := query.Correlation(ctx, x, xb, subs[0], query.Subset{ValueLo: 2, ValueHi: 6}); err != nil {
		t.Fatal(err)
	}
	// Repeat an earlier query (cache-hit shape) and record one failure.
	if _, err := query.Count(ctx, x, subs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := query.Count(ctx, x, query.Subset{SpatialLo: -1, SpatialHi: 5}); err == nil {
		t.Fatal("expected validation error")
	}
	qlog.Install(nil)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := qlog.ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestReplayDiff is the `make replay-diff` acceptance gate: a workload
// captured against an index must replay with byte-identical result
// digests across all three codecs, with the planner and the bitmap cache
// both on and off, concurrently and serially — and across codec
// conversion of the index itself.
func TestReplayDiff(t *testing.T) {
	defer query.SetPlanner(true)
	for _, id := range []codec.ID{codec.WAH, codec.BBC, codec.Dense} {
		t.Run(id.String(), func(t *testing.T) {
			x, xb := buildPair(t, id)
			recs := captureCanned(t, t.TempDir(), x, xb)
			if len(recs) < 20 {
				t.Fatalf("canned workload captured only %d records", len(recs))
			}
			for _, planner := range []bool{true, false} {
				for _, cached := range []bool{true, false} {
					name := fmt.Sprintf("planner=%t/cache=%t", planner, cached)
					query.SetPlanner(planner)
					ctx := context.Background()
					if cached {
						ctx = query.WithCache(ctx, bitcache.New(32<<20))
					}
					// Replay twice against the same context: the second pass
					// hits whatever the first materialized, and digests must
					// not care.
					for pass := 0; pass < 2; pass++ {
						rep := Run(ctx, recs, x, xb, Options{Concurrency: 4})
						if err := rep.Err(); err != nil {
							for _, mm := range rep.Mismatches() {
								t.Errorf("%s pass %d: seq %d %s (%s): recorded %s replayed %s",
									name, pass, mm.Seq, mm.Op, mm.Detail, mm.Recorded, mm.Replayed)
							}
							t.Fatalf("%s pass %d: %v", name, pass, err)
						}
						if rep.Replayed == 0 || rep.Skipped == 0 {
							t.Fatalf("%s: replayed=%d skipped=%d (want both nonzero: the failing record must skip)",
								name, rep.Replayed, rep.Skipped)
						}
						if rep.Replayed+rep.Skipped != rep.Total {
							t.Fatalf("%s: %d+%d != %d", name, rep.Replayed, rep.Skipped, rep.Total)
						}
					}
				}
			}
			query.SetPlanner(true)
		})
	}

	// Cross-codec: capture on WAH, replay against the BBC and Dense
	// recodings — the digests are codec-canonical, so content equality is
	// exactly digest equality.
	x, xb := buildPair(t, codec.WAH)
	recs := captureCanned(t, t.TempDir(), x, xb)
	for _, id := range []codec.ID{codec.BBC, codec.Dense} {
		rx, rxb := x.Recode(id), xb.Recode(id)
		rep := Run(context.Background(), recs, rx, rxb, Options{})
		if err := rep.Err(); err != nil {
			for _, mm := range rep.Mismatches() {
				t.Errorf("recode %s: seq %d %s: recorded %s replayed %s",
					id, mm.Seq, mm.Op, mm.Recorded, mm.Replayed)
			}
			t.Fatalf("replay against %s recode: %v", id, err)
		}
	}
}

// TestReplayDetectsDivergence: a tampered digest must fail the gate —
// otherwise the suite proves nothing.
func TestReplayDetectsDivergence(t *testing.T) {
	x, xb := buildPair(t, codec.WAH)
	recs := captureCanned(t, t.TempDir(), x, xb)
	var tampered bool
	for i := range recs {
		if recs[i].Replayable() {
			recs[i].Result = "00000000"
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("no replayable record to tamper with")
	}
	rep := Run(context.Background(), recs, x, xb, Options{})
	if rep.Mismatched != 1 {
		t.Fatalf("mismatched = %d, want 1", rep.Mismatched)
	}
	if rep.Err() == nil {
		t.Fatal("tampered log passed the gate")
	}
	if len(rep.Mismatches()) != 1 {
		t.Fatalf("Mismatches() = %v", rep.Mismatches())
	}
}

// TestReplayPacingAndCancel covers -speedup pacing and context cancel.
func TestReplayPacingAndCancel(t *testing.T) {
	x, xb := buildPair(t, codec.WAH)
	recs := captureCanned(t, t.TempDir(), x, xb)
	// Spread the records over a synthetic 50ms span and replay at 10x:
	// the wall time must reflect the pacing (≳ span/speedup, minus the
	// final-record dispatch) without anything diverging.
	span := int64(50 * 1e6)
	for i := range recs {
		recs[i].UnixNs = 1 + span*int64(i)/int64(len(recs))
	}
	rep := Run(context.Background(), recs, x, xb, Options{Speedup: 10})
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.WallNs < span/20 {
		t.Errorf("paced replay finished in %dns, faster than the schedule allows", rep.WallNs)
	}
	// A cancelled context skips the undispatched tail instead of hanging.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep = Run(ctx, recs, x, xb, Options{Speedup: 10})
	if rep.Skipped == 0 || rep.Total != len(recs) {
		t.Errorf("cancelled replay: skipped=%d total=%d", rep.Skipped, rep.Total)
	}
}

// TestReplayReportFigures sanity-checks the latency/words aggregation the
// CLI report renders.
func TestReplayReportFigures(t *testing.T) {
	x, xb := buildPair(t, codec.BBC)
	recs := captureCanned(t, t.TempDir(), x, xb)
	rep := Run(context.Background(), recs, x, xb, Options{})
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.RecordedNs <= 0 || rep.ReplayedNs <= 0 {
		t.Errorf("latency totals: recorded=%d replayed=%d", rep.RecordedNs, rep.ReplayedNs)
	}
	if rep.RecordedWords <= 0 || rep.ReplayedWords <= 0 {
		t.Errorf("word totals: recorded=%d replayed=%d", rep.RecordedWords, rep.ReplayedWords)
	}
	// Same index, same planner/cache state: scan costs must agree exactly.
	if rep.RecordedWords != rep.ReplayedWords {
		t.Errorf("words scanned diverged: recorded=%d replayed=%d", rep.RecordedWords, rep.ReplayedWords)
	}
	for _, res := range rep.Results {
		if res.Skipped {
			continue
		}
		if res.ReplayedNs <= 0 {
			t.Errorf("seq %d: no replayed latency", res.Seq)
		}
	}
}
