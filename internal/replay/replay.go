// Package replay re-executes a captured workload log (internal/qlog)
// against an index and byte-compares every result digest against the
// recorded one. Because the digests are codec-canonical and the capture
// path records exact parameters, a replay is a true end-to-end regression
// gate: the same log must reproduce identical digests across codec
// conversions, planner on/off, and cache on/off — and the per-query
// latency/words-scanned deltas it measures are the comparison report
// `bitmapctl replay` renders.
package replay

import (
	"context"
	"fmt"
	"sync"
	"time"

	"insitubits/internal/index"
	"insitubits/internal/qlog"
	"insitubits/internal/query"
)

// Options controls pacing and parallelism of a replay.
type Options struct {
	// Concurrency is the number of worker goroutines (<1 means serial).
	Concurrency int
	// Speedup > 0 paces dispatch by the recorded inter-arrival times
	// divided by this factor (1 = realtime, 10 = 10x faster); 0 replays
	// as fast as the workers drain.
	Speedup float64
}

// Result is the outcome of one replayed record.
type Result struct {
	Seq    uint64 `json:"seq"`
	Op     string `json:"op"`
	Detail string `json:"detail,omitempty"`

	// Skipped records are not re-executed; Reason says why (non-replayable
	// op, recorded failure, cancelled run).
	Skipped bool   `json:"skipped,omitempty"`
	Reason  string `json:"reason,omitempty"`

	// Match reports digest equality for replayed records.
	Match    bool   `json:"match"`
	Recorded string `json:"recorded,omitempty"`
	Replayed string `json:"replayed,omitempty"`

	// Recorded vs replayed latency and scan cost.
	RecordedNs    int64 `json:"recorded_ns"`
	ReplayedNs    int64 `json:"replayed_ns,omitempty"`
	RecordedWords int64 `json:"recorded_words,omitempty"`
	ReplayedWords int64 `json:"replayed_words,omitempty"`

	// Err is a replay-side execution failure (the recorded run succeeded
	// but the replay did not).
	Err string `json:"error,omitempty"`
}

// Report aggregates a replay run.
type Report struct {
	Total      int `json:"total"`
	Replayed   int `json:"replayed"`
	Skipped    int `json:"skipped"`
	Matched    int `json:"matched"`
	Mismatched int `json:"mismatched"`
	Failed     int `json:"failed"`

	RecordedNs    int64 `json:"recorded_ns"`
	ReplayedNs    int64 `json:"replayed_ns"`
	RecordedWords int64 `json:"recorded_words"`
	ReplayedWords int64 `json:"replayed_words"`

	// WallNs is the whole replay's wall time (dispatch to last worker).
	WallNs int64 `json:"wall_ns"`

	Results []Result `json:"results"`
}

// Mismatches returns the results whose digests diverged.
func (r *Report) Mismatches() []Result {
	var out []Result
	for _, res := range r.Results {
		if !res.Skipped && res.Err == "" && !res.Match {
			out = append(out, res)
		}
	}
	return out
}

// Err returns a non-nil error when the replay found digest mismatches or
// replay-side failures — the CI gate condition.
func (r *Report) Err() error {
	if r.Mismatched > 0 {
		return fmt.Errorf("replay: %d of %d replayed queries diverged from their recorded digests", r.Mismatched, r.Replayed)
	}
	if r.Failed > 0 {
		return fmt.Errorf("replay: %d of %d replayed queries failed", r.Failed, r.Replayed)
	}
	return nil
}

// Run replays recs against x (and xb for correlation records; xb nil
// falls back to x). Results keep the input order regardless of
// concurrency. Cache and planner state are whatever the caller set up —
// pass a query.WithCache context to replay against a cache; toggle
// query.SetPlanner to compare modes.
func Run(ctx context.Context, recs []qlog.Record, x, xb *index.Index, opts Options) *Report {
	if xb == nil {
		xb = x
	}
	rep := &Report{Total: len(recs), Results: make([]Result, len(recs))}
	workers := opts.Concurrency
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				rep.Results[i] = runOne(ctx, &recs[i], x, xb)
			}
		}()
	}
	start := time.Now()
	var t0 int64
	cancelled := false
	for i := range recs {
		if opts.Speedup > 0 && recs[i].UnixNs > 0 {
			if t0 == 0 {
				t0 = recs[i].UnixNs
			} else if target := time.Duration(float64(recs[i].UnixNs-t0) / opts.Speedup); target > 0 {
				if sleep := target - time.Since(start); sleep > 0 {
					select {
					case <-time.After(sleep):
					case <-ctx.Done():
					}
				}
			}
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			cancelled = true
		}
		if cancelled {
			for j := i; j < len(recs); j++ {
				rep.Results[j] = Result{Seq: recs[j].Seq, Op: recs[j].Op, Detail: recs[j].Detail,
					Skipped: true, Reason: "replay cancelled", RecordedNs: recs[j].ElapsedNs}
			}
			break
		}
	}
	close(jobs)
	wg.Wait()
	rep.WallNs = time.Since(start).Nanoseconds()
	for _, res := range rep.Results {
		switch {
		case res.Skipped:
			rep.Skipped++
		case res.Err != "":
			rep.Failed++
			rep.tally(res)
		case res.Match:
			rep.Matched++
			rep.tally(res)
		default:
			rep.Mismatched++
			rep.tally(res)
		}
	}
	rep.Replayed = rep.Matched + rep.Mismatched + rep.Failed
	return rep
}

func (r *Report) tally(res Result) {
	r.RecordedNs += res.RecordedNs
	r.ReplayedNs += res.ReplayedNs
	r.RecordedWords += res.RecordedWords
	r.ReplayedWords += res.ReplayedWords
}

// runOne re-executes a single record through the Analyze entry points (the
// profile supplies the replayed words-scanned figure) and recomputes the
// canonical result digest.
func runOne(ctx context.Context, rec *qlog.Record, x, xb *index.Index) Result {
	res := Result{Seq: rec.Seq, Op: rec.Op, Detail: rec.Detail,
		Recorded: rec.Result, RecordedNs: rec.ElapsedNs, RecordedWords: rec.Words}
	switch {
	case rec.Err != "":
		res.Skipped, res.Reason = true, "recorded query failed: "+rec.Err
		return res
	case !rec.Replayable():
		res.Skipped, res.Reason = true, "op not replayable from recorded parameters"
		return res
	case rec.Result == "":
		res.Skipped, res.Reason = true, "record carries no result digest"
		return res
	}
	sub := query.Subset{ValueLo: rec.ValueLo, ValueHi: rec.ValueHi,
		SpatialLo: rec.SpatialLo, SpatialHi: rec.SpatialHi}
	var (
		digest string
		prof   *query.Profile
		err    error
	)
	switch rec.Op {
	case "bits":
		bm, p, e := query.BitsAnalyze(ctx, x, sub)
		prof, err = p, e
		if e == nil {
			digest, _ = qlog.DigestBitmap(bm)
		}
	case "count":
		n, p, e := query.CountAnalyze(ctx, x, sub)
		prof, err = p, e
		digest = qlog.DigestInt(n)
	case "sum":
		agg, p, e := query.SumAnalyze(ctx, x, sub)
		prof, err = p, e
		digest = query.DigestAggregate(agg)
	case "mean":
		agg, p, e := query.MeanAnalyze(ctx, x, sub)
		prof, err = p, e
		digest = query.DigestAggregate(agg)
	case "quantile":
		agg, p, e := query.QuantileAnalyze(ctx, x, sub, rec.Q)
		prof, err = p, e
		digest = query.DigestAggregate(agg)
	case "minmax":
		lo, hi, p, e := query.MinMaxAnalyze(ctx, x, sub)
		prof, err = p, e
		digest = query.DigestMinMax(lo, hi)
	case "correlation":
		sb := query.Subset{ValueLo: rec.BValueLo, ValueHi: rec.BValueHi,
			SpatialLo: rec.BSpatialLo, SpatialHi: rec.BSpatialHi}
		pair, p, e := query.CorrelationAnalyze(ctx, x, xb, sub, sb)
		prof, err = p, e
		digest = query.DigestPair(pair)
	default:
		res.Skipped, res.Reason = true, fmt.Sprintf("unknown op %q", rec.Op)
		return res
	}
	if prof != nil {
		res.ReplayedNs = prof.ElapsedNs
		res.ReplayedWords = prof.Total().WordsScanned
	}
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.Replayed = digest
	res.Match = digest == rec.Result
	return res
}
