package sampling

import (
	"math"
	"math/rand"
	"testing"

	"insitubits/internal/binning"
	"insitubits/internal/metrics"
	"insitubits/internal/selection"
)

func TestValidation(t *testing.T) {
	cases := []struct {
		n   int
		pct float64
	}{{0, 10}, {-5, 10}, {100, 0}, {100, -1}, {100, 101}}
	for _, c := range cases {
		if _, err := NewStrided(c.n, c.pct); err == nil {
			t.Errorf("NewStrided(%d, %g) accepted", c.n, c.pct)
		}
		if _, err := NewRandom(c.n, c.pct, 1); err == nil {
			t.Errorf("NewRandom(%d, %g) accepted", c.n, c.pct)
		}
	}
}

func TestStridedFraction(t *testing.T) {
	for _, pct := range []float64{1, 5, 15, 30, 50, 100} {
		s, err := NewStrided(10000, pct)
		if err != nil {
			t.Fatal(err)
		}
		got := 100 * s.Fraction()
		if math.Abs(got-pct) > pct*0.2+0.5 {
			t.Errorf("pct=%g: realized %.2f%%", pct, got)
		}
	}
}

func TestRandomFraction(t *testing.T) {
	for _, pct := range []float64{1, 5, 30, 100} {
		s, err := NewRandom(10000, pct, 7)
		if err != nil {
			t.Fatal(err)
		}
		if got := 100 * s.Fraction(); math.Abs(got-pct) > 0.5 {
			t.Errorf("pct=%g: realized %.2f%%", pct, got)
		}
	}
}

func TestPositionsSortedDistinctInRange(t *testing.T) {
	for name, mk := range map[string]func() (*Sampler, error){
		"strided": func() (*Sampler, error) { return NewStrided(5000, 13) },
		"random":  func() (*Sampler, error) { return NewRandom(5000, 13, 3) },
	} {
		s, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		prev := -1
		for _, p := range s.Positions() {
			if p <= prev || p >= 5000 {
				t.Fatalf("%s: position %d after %d invalid", name, p, prev)
			}
			prev = p
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a, _ := NewRandom(1000, 20, 42)
	b, _ := NewRandom(1000, 20, 42)
	c, _ := NewRandom(1000, 20, 43)
	pa, pb, pc := a.Positions(), b.Positions(), c.Positions()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed produced different samples")
		}
	}
	same := len(pa) == len(pc)
	if same {
		for i := range pa {
			if pa[i] != pc[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical samples")
	}
}

func TestSample(t *testing.T) {
	s, _ := NewStrided(10, 30)
	data := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	got, err := s.Sample(data)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range s.Positions() {
		if got[i] != data[p] {
			t.Fatalf("sample[%d]=%g want %g", i, got[i], data[p])
		}
	}
	if _, err := s.Sample(make([]float64, 11)); err == nil {
		t.Fatal("wrong-length array accepted")
	}
	if s.SampleBytes() != 8*s.Len() {
		t.Fatal("SampleBytes inconsistent")
	}
	if s.SourceLen() != 10 {
		t.Fatal("SourceLen wrong")
	}
}

// TestSamplingLosesInformation reproduces the qualitative content of the
// paper's Figure 16: metric values on samples deviate from the exact ones,
// and more aggressive sampling deviates more (while bitmaps are exact).
func TestSamplingLosesInformation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	n := 20000
	mkStep := func(shift float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Mod(math.Abs(5+3*math.Sin(float64(i)/200+shift)+0.3*r.NormFloat64()), 10)
		}
		return out
	}
	a := mkStep(0)
	b := mkStep(1.3)
	m, _ := binning.NewUniform(0, 10, 64)
	exact := metrics.PairFromData(a, b, m, m).CondEntropyAB

	prevLoss := -1.0
	for _, pct := range []float64{30, 5, 1} {
		s, err := NewRandom(n, pct, 11)
		if err != nil {
			t.Fatal(err)
		}
		sa, _ := s.Sample(a)
		sb, _ := s.Sample(b)
		approx := metrics.PairFromData(sa, sb, m, m).CondEntropyAB
		loss := math.Abs(exact-approx) / math.Abs(exact)
		if loss == 0 {
			t.Fatalf("pct=%g: implausible zero loss", pct)
		}
		if loss < prevLoss*0.3 { // allow noise, but the trend must hold
			t.Fatalf("pct=%g: loss %.4f much smaller than at higher pct (%.4f)", pct, loss, prevLoss)
		}
		prevLoss = loss
	}
}

// TestSelectionOnSamplesCanDiverge documents that sample-based selection is
// an approximation: it runs the same greedy algorithm, but over perturbed
// metrics. (It may coincide with the exact selection on easy inputs; here we
// only require that the machinery runs end to end.)
func TestSelectionOnSamplesRuns(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	n := 4000
	m, _ := binning.NewUniform(0, 10, 32)
	s, _ := NewStrided(n, 10)
	var exact, approx []selection.Summary
	for step := 0; step < 12; step++ {
		data := make([]float64, n)
		for i := range data {
			data[i] = math.Mod(math.Abs(5+3*math.Sin(float64(i)/100+float64(step)/3)+0.2*r.NormFloat64()), 10)
		}
		exact = append(exact, selection.NewDataSummary(data, m))
		sd, err := s.Sample(data)
		if err != nil {
			t.Fatal(err)
		}
		approx = append(approx, selection.NewDataSummary(sd, m))
	}
	re, err := selection.Select(exact, 4, selection.FixedLength{}, selection.ConditionalEntropy)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := selection.Select(approx, 4, selection.FixedLength{}, selection.ConditionalEntropy)
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Selected) != 4 || len(ra.Selected) != 4 {
		t.Fatalf("selections: exact %v approx %v", re.Selected, ra.Selected)
	}
}
