// Package sampling implements the in-situ down-sampling baseline of the
// paper's §5.5: instead of summarizing a time-step as bitmaps, keep a fixed
// subset of its elements. Sampling is cheap and shrinks both memory and
// I/O, but — unlike bitmaps — it changes every metric computed downstream,
// which Figures 16 and 17 quantify as information loss.
package sampling

import (
	"fmt"
	"math/rand"
	"sort"
)

// Sampler selects a fixed subset of element positions of arrays of length
// N. The positions are chosen once, so the same spatial subset is taken
// from every variable and every time-step — required for joint metrics on
// samples to be meaningful.
type Sampler struct {
	n   int
	pos []int // ascending element positions
}

// NewStrided samples every k-th element so that about pct percent survive.
func NewStrided(n int, pct float64) (*Sampler, error) {
	if err := validate(n, pct); err != nil {
		return nil, err
	}
	stride := int(100/pct + 0.5)
	if stride < 1 {
		stride = 1
	}
	s := &Sampler{n: n}
	for i := 0; i < n; i += stride {
		s.pos = append(s.pos, i)
	}
	return s, nil
}

// NewRandom samples a uniform pseudo-random pct percent of positions,
// deterministic for a given seed.
func NewRandom(n int, pct float64, seed int64) (*Sampler, error) {
	if err := validate(n, pct); err != nil {
		return nil, err
	}
	k := int(float64(n)*pct/100 + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	r := rand.New(rand.NewSource(seed))
	pos := append([]int(nil), r.Perm(n)[:k]...)
	sort.Ints(pos) // ascending keeps Sample cache-friendly
	return &Sampler{n: n, pos: pos}, nil
}

func validate(n int, pct float64) error {
	if n <= 0 {
		return fmt.Errorf("sampling: array length %d must be positive", n)
	}
	if pct <= 0 || pct > 100 {
		return fmt.Errorf("sampling: percentage %g out of (0,100]", pct)
	}
	return nil
}

// Len returns the sample size.
func (s *Sampler) Len() int { return len(s.pos) }

// SourceLen returns the length of arrays this sampler accepts.
func (s *Sampler) SourceLen() int { return s.n }

// Fraction returns the realized sampling fraction.
func (s *Sampler) Fraction() float64 { return float64(len(s.pos)) / float64(s.n) }

// Positions exposes the sampled element positions (read-only).
func (s *Sampler) Positions() []int { return s.pos }

// Sample extracts the subset from one array.
func (s *Sampler) Sample(data []float64) ([]float64, error) {
	if len(data) != s.n {
		return nil, fmt.Errorf("sampling: array length %d, sampler built for %d", len(data), s.n)
	}
	out := make([]float64, len(s.pos))
	for i, p := range s.pos {
		out[i] = data[p]
	}
	return out, nil
}

// SampleBytes returns the storage footprint of one sampled array.
func (s *Sampler) SampleBytes() int { return 8 * len(s.pos) }
