package query

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"testing"
	"time"

	"insitubits/internal/binning"
	"insitubits/internal/bitcache"
	"insitubits/internal/codec"
	"insitubits/internal/index"
	"insitubits/internal/qlog"
	"insitubits/internal/telemetry"
)

// withCaptureLog installs a fresh workload log for the test body and
// returns the parsed records after closing it.
func withCaptureLog(t *testing.T, body func(ctx context.Context)) []qlog.Record {
	t.Helper()
	path := filepath.Join(t.TempDir(), "workload.isql")
	w, err := qlog.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	qlog.Install(w)
	defer qlog.Install(nil)
	body(context.Background())
	qlog.Install(nil)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _, err := qlog.ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestCaptureWorkload drives every plain entry point with a workload log
// installed and checks the captured records carry parameters, plan
// digests, measured costs, and result digests that match an independent
// re-execution.
func TestCaptureWorkload(t *testing.T) {
	x := explainTestIndex(t, codec.Auto)
	xb := explainTestIndex(t, codec.WAH)
	sub := Subset{ValueLo: 1, ValueHi: 5, SpatialLo: 31, SpatialHi: x.N() - 31}
	masked, err := NewMasked(x, onesVector(x.N()))
	if err != nil {
		t.Fatal(err)
	}
	recs := withCaptureLog(t, func(ctx context.Context) {
		if _, err := Bits(ctx, x, sub); err != nil {
			t.Fatal(err)
		}
		if _, err := Count(ctx, x, sub); err != nil {
			t.Fatal(err)
		}
		if _, err := Sum(ctx, x, sub); err != nil {
			t.Fatal(err)
		}
		if _, err := Mean(ctx, x, sub); err != nil {
			t.Fatal(err)
		}
		if _, err := Quantile(ctx, x, sub, 0.5); err != nil {
			t.Fatal(err)
		}
		if _, _, err := MinMax(ctx, x, sub); err != nil {
			t.Fatal(err)
		}
		if _, err := Correlation(ctx, x, xb, sub, Subset{ValueLo: 2, ValueHi: 6,
			SpatialLo: sub.SpatialLo, SpatialHi: sub.SpatialHi}); err != nil {
			t.Fatal(err)
		}
		if _, err := SumMasked(ctx, x, onesVector(x.N())); err != nil {
			t.Fatal(err)
		}
		if _, err := masked.Sum(ctx, sub); err != nil {
			t.Fatal(err)
		}
		// A failing query must still capture, with the error recorded.
		if _, err := Count(ctx, x, Subset{SpatialLo: -5, SpatialHi: 10}); err == nil {
			t.Fatal("expected validation error")
		}
	})
	wantOps := []string{"bits", "count", "sum", "mean", "quantile", "minmax",
		"correlation", "sum-masked", "masked-sum", "count"}
	if len(recs) != len(wantOps) {
		t.Fatalf("captured %d records, want %d", len(recs), len(wantOps))
	}
	for i, r := range recs {
		if r.Op != wantOps[i] {
			t.Errorf("record %d op = %q, want %q", i, r.Op, wantOps[i])
		}
		if r.PlanDigest == "" {
			t.Errorf("record %d (%s): empty plan digest", i, r.Op)
		}
		if r.ElapsedNs <= 0 {
			t.Errorf("record %d (%s): elapsed = %d", i, r.Op, r.ElapsedNs)
		}
	}
	last := recs[len(recs)-1]
	if last.Err == "" || last.Result != "" || last.Replayable() {
		t.Errorf("failed query record = %+v", last)
	}
	for i, r := range recs[:len(recs)-1] {
		if r.Err != "" || r.Result == "" {
			t.Errorf("record %d (%s): err=%q result=%q", i, r.Op, r.Err, r.Result)
		}
	}
	// Parameters and index identity round-trip.
	count := recs[1]
	if count.ValueLo != sub.ValueLo || count.ValueHi != sub.ValueHi ||
		count.SpatialLo != sub.SpatialLo || count.SpatialHi != sub.SpatialHi {
		t.Errorf("count params = %+v", count)
	}
	if count.N != x.N() || count.Gen != x.Generation() || !count.Planner {
		t.Errorf("count n/gen/planner = %d/%d/%t", count.N, count.Gen, count.Planner)
	}
	if count.Words <= 0 || count.Bins <= 0 || count.Rows <= 0 {
		t.Errorf("count measured cost = words=%d bins=%d rows=%d", count.Words, count.Bins, count.Rows)
	}
	// The recorded digest equals an independent re-execution's digest.
	n, err := Count(context.Background(), x, sub)
	if err != nil {
		t.Fatal(err)
	}
	if want := qlog.DigestInt(n); count.Result != want {
		t.Errorf("count digest = %s, replayed %s", count.Result, want)
	}
	corr := recs[6]
	if !corr.Correlated || corr.BValueLo != 2 || corr.BValueHi != 6 || corr.GenB != xb.Generation() {
		t.Errorf("correlation record = %+v", corr)
	}
	if recs[4].Q != 0.5 {
		t.Errorf("quantile q = %g", recs[4].Q)
	}
}

// TestLightAccountingMatchesFull pins the exactness contract of
// capture-only (light) profiles: the totals the workload log records —
// words scanned, bytes decoded, bins touched, rows — must be identical to
// full ANALYZE accounting; only the fill/literal composition split (which
// costs an extra scan of every operand) is skipped.
func TestLightAccountingMatchesFull(t *testing.T) {
	ctx := context.Background()
	sub := Subset{ValueLo: 1, ValueHi: 5, SpatialLo: 31, SpatialHi: 31 * 20}
	for _, c := range []codec.ID{codec.WAH, codec.BBC, codec.Dense} {
		x := explainTestIndex(t, c)
		check := func(op string, full, light *Profile) {
			t.Helper()
			f, l := full.Total(), light.Total()
			if l.WordsScanned != f.WordsScanned || l.BytesDecoded != f.BytesDecoded ||
				l.BinsTouched != f.BinsTouched || l.Rows != f.Rows {
				t.Errorf("%s/%v: light totals %+v != full totals %+v", op, c, l, f)
			}
			if f.FillWords+f.LiteralWords == 0 {
				t.Errorf("%s/%v: full profile has no composition split", op, c)
			}
			if l.FillWords != 0 || l.LiteralWords != 0 || l.FillSegments != 0 {
				t.Errorf("%s/%v: light profile paid the composition pass: %+v", op, c, l)
			}
		}
		_, pf, err := countAnalyze(ctx, x, sub, false)
		if err != nil {
			t.Fatal(err)
		}
		_, pl, err := countAnalyze(ctx, x, sub, true)
		if err != nil {
			t.Fatal(err)
		}
		check("count", pf, pl)
		_, pf, err = sumAnalyze(ctx, x, sub, false)
		if err != nil {
			t.Fatal(err)
		}
		_, pl, err = sumAnalyze(ctx, x, sub, true)
		if err != nil {
			t.Fatal(err)
		}
		check("sum", pf, pl)
		_, pf, err = bitsAnalyze(ctx, x, sub, false)
		if err != nil {
			t.Fatal(err)
		}
		_, pl, err = bitsAnalyze(ctx, x, sub, true)
		if err != nil {
			t.Fatal(err)
		}
		check("bits", pf, pl)
	}
}

// TestCaptureDisabledByDefault: without an installed writer the plain path
// stays plain — nothing panics and nothing is recorded anywhere.
func TestCaptureDisabledByDefault(t *testing.T) {
	if captureEnabled() {
		t.Fatal("capture enabled with no writer installed")
	}
	x := explainTestIndex(t, codec.Auto)
	if _, err := Count(context.Background(), x, Subset{ValueLo: 1, ValueHi: 3}); err != nil {
		t.Fatal(err)
	}
}

// TestPlanDigestStability: the digest is a function of the logical plan —
// identical across repeats and cache warmth, different across parameters
// and planner mode.
func TestPlanDigestStability(t *testing.T) {
	x := explainTestIndex(t, codec.Auto)
	sub := Subset{ValueLo: 1, ValueHi: 5, SpatialLo: 0, SpatialHi: 100}
	digest := func() string {
		_, p, err := BitsAnalyze(context.Background(), x, sub)
		if err != nil {
			t.Fatal(err)
		}
		if p.PlanDigest == "" {
			t.Fatal("empty plan digest")
		}
		return p.PlanDigest
	}
	d1 := digest()
	if d2 := digest(); d2 != d1 {
		t.Errorf("plan digest unstable: %s then %s", d1, d2)
	}
	// Cache warmth must not change the plan digest.
	ctx := WithCache(context.Background(), bitcache.New(16<<20))
	_, p1, err := BitsAnalyze(ctx, x, sub)
	if err != nil {
		t.Fatal(err)
	}
	_, p2, err := BitsAnalyze(ctx, x, sub)
	if err != nil {
		t.Fatal(err)
	}
	if p1.PlanDigest != d1 || p2.PlanDigest != d1 {
		t.Errorf("cache warmth changed plan digest: %s / %s vs %s", p1.PlanDigest, p2.PlanDigest, d1)
	}
	if p1.cacheVerdict() != "miss" || p2.cacheVerdict() != "hit" {
		t.Errorf("cache verdicts = %q, %q", p1.cacheVerdict(), p2.cacheVerdict())
	}
	// Different parameters and planner mode change the digest.
	_, p3, err := BitsAnalyze(context.Background(), x, Subset{ValueLo: 2, ValueHi: 5, SpatialLo: 0, SpatialHi: 100})
	if err != nil {
		t.Fatal(err)
	}
	if p3.PlanDigest == d1 {
		t.Error("different parameters share a plan digest")
	}
	SetPlanner(false)
	defer SetPlanner(true)
	if doff := digest(); doff == d1 {
		t.Error("planner on/off share a plan digest")
	}
}

// TestSlowLogCarriesPlanDigest: satellite — slow-log records join against
// qlog/replay output by plan digest.
func TestSlowLogCarriesPlanDigest(t *testing.T) {
	x := explainTestIndex(t, codec.Auto)
	var buf bytes.Buffer
	SetSlowLog(slog.New(slog.NewJSONHandler(&buf, nil)), 0)
	defer SetSlowLog(nil, 0)
	if _, err := Count(context.Background(), x, Subset{ValueLo: 1, ValueHi: 3}); err != nil {
		t.Fatal(err)
	}
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("slow-log record not JSON: %v\n%s", err, buf.String())
	}
	digest, _ := rec["plan_digest"].(string)
	if digest == "" {
		t.Errorf("slow-log record missing plan_digest attr: %s", buf.String())
	}
}

// TestCaptureProfile covers the exported non-entry-point hook the in-situ
// pipeline and mining pass use.
func TestCaptureProfile(t *testing.T) {
	recs := withCaptureLog(t, func(ctx context.Context) {
		p := &Profile{Query: "selection.dissimilarity", Detail: "steps 3~4",
			ElapsedNs: 42, Root: &Node{Op: "selection.dissimilarity", Bin: -1,
				Cost: Cost{WordsScanned: 99, Rows: 7}}}
		CaptureProfile(p, qlog.DigestFloats(0.25))
		CaptureProfile(nil, "") // nil-safe
	})
	if len(recs) != 1 {
		t.Fatalf("captured %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Op != "selection.dissimilarity" || r.Words != 99 || r.Rows != 7 ||
		r.Result != qlog.DigestFloats(0.25) || r.Replayable() {
		t.Errorf("record = %+v", r)
	}
}

func TestFormatBins(t *testing.T) {
	cases := []struct {
		in   []int
		want string
	}{
		{nil, ""},
		{[]int{3}, "3"},
		{[]int{1, 2, 3}, "1-3"},
		{[]int{0, 2, 3, 4, 9}, "0,2-4,9"},
	}
	for _, tc := range cases {
		if got := formatBins(tc.in); got != tc.want {
			t.Errorf("formatBins(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestQlogCaptureOverhead guards the acceptance bound for capture: with a
// workload log installed, scan-dominated queries (the shape capture is
// built for) must stay within 2% of the capture-off path. The index is
// deliberately larger than the other guards' — capture cost is per-query
// while query cost scales with the data, and the bound certifies the
// production regime, not toy indexes. Gated like the other wall-clock
// guards (TELEMETRY_OVERHEAD_GUARD=1, via `make overhead`).
func TestQlogCaptureOverhead(t *testing.T) {
	if os.Getenv("TELEMETRY_OVERHEAD_GUARD") == "" {
		t.Skip("set TELEMETRY_OVERHEAD_GUARD=1 to run the timing guard (make overhead)")
	}
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	telemetry.SetTraceRecorder(nil)
	m, err := binning.NewUniform(0, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	x := index.BuildCodec(explainTestData(31*20000), m, codec.Auto)
	dir := t.TempDir()
	logs := 0
	measure := func(enabled bool) time.Duration {
		if enabled {
			logs++
			w, err := qlog.Create(filepath.Join(dir, fmt.Sprintf("guard-%d.isql", logs)))
			if err != nil {
				t.Fatal(err)
			}
			qlog.Install(w)
			defer func() {
				qlog.Install(nil)
				if err := w.Close(); err != nil {
					t.Fatal(err)
				}
				if h := w.Health(); h.Dropped != 0 || h.Errors != 0 {
					t.Fatalf("writer health during guard: %+v", h)
				}
			}()
		}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				queryWorkload(x)
			}
		})
		return time.Duration(r.NsPerOp())
	}
	measure(false)
	measure(true)
	min := time.Duration(1<<63 - 1)
	off, on := min, min
	for round := 0; round < 5; round++ {
		if d := measure(false); d < off {
			off = d
		}
		if d := measure(true); d < on {
			on = d
		}
	}
	overhead := float64(on-off) / float64(off)
	t.Logf("capture-enabled query path: off=%v on=%v overhead=%.2f%%", off, on, 100*overhead)
	if overhead > 0.02 {
		t.Errorf("qlog capture overhead %.2f%% exceeds the 2%% budget (off=%v on=%v)",
			100*overhead, off, on)
	}
}
