package query

import (
	"context"
	"os"
	"testing"
	"time"

	"insitubits/internal/codec"
	"insitubits/internal/index"
	"insitubits/internal/telemetry"
)

// queryWorkload is the guarded hot path: spatially-restricted counts and
// sums, which walk every selected bin's compressed bitmap — the same shape
// the selection and mining layers issue in bulk.
func queryWorkload(x *index.Index) {
	s := Subset{ValueLo: 0, ValueHi: 8, SpatialLo: 31, SpatialHi: x.N() - 31}
	if _, err := Count(context.Background(), x, s); err != nil {
		panic(err)
	}
	if _, err := Sum(context.Background(), x, Subset{ValueLo: 1, ValueHi: 7}); err != nil {
		panic(err)
	}
}

// TestAnalyzeOverheadDisabled guards the EXPLAIN/ANALYZE budget: with no
// slow-query log installed, ANALYZE not requested, and no trace recorder
// installed, the plain query path (which still carries the slow-log gate,
// the always-on per-codec operand counters, and the identity-tracing
// StartSpan gate on every entry point) must stay within 2% of the
// fully-uninstrumented path. Gated like the bitvec guard: wall-clock
// assertions flap on loaded CI hosts, so it only engages under
// TELEMETRY_OVERHEAD_GUARD=1 (the Makefile `overhead` target sets it).
func TestAnalyzeOverheadDisabled(t *testing.T) {
	if os.Getenv("TELEMETRY_OVERHEAD_GUARD") == "" {
		t.Skip("set TELEMETRY_OVERHEAD_GUARD=1 to run the timing guard (make overhead)")
	}
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	// Pin identity tracing off so the guard certifies the tracing-disabled
	// path: StartSpan must cost one atomic pointer load and nothing else.
	telemetry.SetTraceRecorder(nil)
	x := explainTestIndex(t, codec.Auto)
	measure := func(enabled bool) time.Duration {
		if enabled {
			SetTelemetry(telemetry.Default)
		} else {
			SetTelemetry(nil)
		}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				queryWorkload(x)
			}
		})
		return time.Duration(r.NsPerOp())
	}
	// Interleave off/on rounds and take each side's minimum, as in the
	// bitvec guard, so frequency drift hits both sides equally.
	measure(false)
	measure(true)
	min := time.Duration(1<<63 - 1)
	off, on := min, min
	for round := 0; round < 5; round++ {
		if d := measure(false); d < off {
			off = d
		}
		if d := measure(true); d < on {
			on = d
		}
	}
	SetTelemetry(telemetry.Default)
	overhead := float64(on-off) / float64(off)
	t.Logf("query hot path: off=%v on=%v overhead=%.2f%%", off, on, 100*overhead)
	if overhead > 0.02 {
		t.Errorf("disabled-ANALYZE overhead %.2f%% exceeds the 2%% budget (off=%v on=%v)",
			100*overhead, off, on)
	}
}
