package query

import (
	"context"
	"strconv"
	"time"

	"insitubits/internal/codec"
	"insitubits/internal/index"
	"insitubits/internal/profiling"
	"insitubits/internal/telemetry"
)

// tel holds the package's telemetry: one latency histogram shared by every
// bitmap-only analysis plus a per-operation counter. Derived helpers
// (Mean, MeanMasked) time themselves and also hit the primitive they call,
// so counters are operation counts, not unique user requests. Nil-safe.
//
// codecOps (indexed by codec.ID) counts bitmap operands consumed by query
// operators per codec — every bin bitmap or mask an operator reads bumps
// the counter of its encoding, on the plain and profiled paths alike.
// fallbackMerges counts binary ops whose operands had different codecs
// (they leave the native merge kernels for the generic run path).
var tel struct {
	latency     *telemetry.Histogram // ns per query operation
	bits        *telemetry.Counter
	count       *telemetry.Counter
	sum         *telemetry.Counter
	quantile    *telemetry.Counter
	minmax      *telemetry.Counter
	correlation *telemetry.Counter
	masked      *telemetry.Counter

	codecOps       [4]*telemetry.Counter // by codec.ID; 0 = unknown wrappers
	fallbackMerges *telemetry.Counter
	slowQueries    *telemetry.Counter // profiles emitted to the slow-query log
}

// SetTelemetry (re)binds the package's instruments to a registry; nil
// disables them.
func SetTelemetry(r *telemetry.Registry) {
	tel.latency = r.Histogram("query.latency_ns")
	tel.bits = r.Counter("query.bits")
	tel.count = r.Counter("query.count")
	tel.sum = r.Counter("query.sum")
	tel.quantile = r.Counter("query.quantile")
	tel.minmax = r.Counter("query.minmax")
	tel.correlation = r.Counter("query.correlation")
	tel.masked = r.Counter("query.masked")
	tel.codecOps[codec.Auto] = r.Counter("query.codec_ops.other")
	tel.codecOps[codec.WAH] = r.Counter("query.codec_ops.wah")
	tel.codecOps[codec.BBC] = r.Counter("query.codec_ops.bbc")
	tel.codecOps[codec.Dense] = r.Counter("query.codec_ops.dense")
	tel.fallbackMerges = r.Counter("query.fallback_merges")
	tel.slowQueries = r.Counter("query.slow")
}

func init() { SetTelemetry(telemetry.Default) }

var noopObserve = func() {}

// observe counts one operation and, when enabled, times it:
//
//	defer observe(tel.count)()
func observe(op *telemetry.Counter) func() {
	op.Inc()
	if tel.latency == nil {
		return noopObserve
	}
	start := time.Now()
	return func() { tel.latency.Record(time.Since(start).Nanoseconds()) }
}

// begin is the shared prologue of every query entry point. It counts the
// operation, opens the identity span, and — when continuous profiling is
// enabled — tags the goroutine with pprof labels (op, index generation,
// trace ID) so CPU samples taken during the query attribute to it. The
// returned end closure restores the labels, ends the span, and records
// the operation latency; when the query was traced, the latency sample
// carries the trace ID as a histogram exemplar, which the OpenMetrics
// exposition surfaces on /metrics. With profiling disabled the label
// plane costs exactly one atomic load (profiling.Enabled), on top of the
// tracing gate's own load — the gated overhead guard covers the whole
// prologue.
func begin(ctx context.Context, name string, op *telemetry.Counter, x *index.Index) (context.Context, *telemetry.ActiveSpan, func()) {
	op.Inc()
	ctx, sp := telemetry.StartSpan(ctx, name)
	unlabel := noopObserve
	if profiling.Enabled() {
		gen := ""
		if x != nil {
			gen = strconv.FormatUint(x.Generation(), 10)
		}
		ctx, unlabel = profiling.Label(ctx,
			"op", name, "generation", gen, "trace_id", sp.TraceID())
	}
	if tel.latency == nil {
		return ctx, sp, func() {
			unlabel()
			sp.End()
		}
	}
	start := time.Now()
	return ctx, sp, func() {
		unlabel()
		sp.End()
		tel.latency.RecordExemplar(time.Since(start).Nanoseconds(), sp.TraceID())
	}
}
