package query

import (
	"context"
	"encoding/json"
	"log/slog"
	"sync/atomic"
	"time"
)

// slowLog is the installed slow-query sink: queries (and pipeline/mining
// profiles fed through LogSlow) at or above the threshold are emitted as
// one structured record with the full profile attached as JSON.
type slowLogSink struct {
	logger    *slog.Logger
	threshold time.Duration
}

var slowLogState atomic.Pointer[slowLogSink]

// SetSlowLog installs a structured slow-query log: every profiled query
// whose wall time reaches threshold is emitted through logger with its
// full ANALYZE profile as a JSON attribute. While a log is installed, the
// plain query entry points route through the profiled execution path so
// slow calls are captured without the caller opting into Analyze variants;
// when no log is installed (the default, and after SetSlowLog(nil, 0))
// the plain path carries zero profiling cost. Safe for concurrent use.
func SetSlowLog(logger *slog.Logger, threshold time.Duration) {
	if logger == nil {
		slowLogState.Store(nil)
		return
	}
	if threshold < 0 {
		threshold = 0
	}
	slowLogState.Store(&slowLogSink{logger: logger, threshold: threshold})
}

// slowLogEnabled reports whether a slow-query log is installed (one atomic
// load — the plain entry points check it on every call).
func slowLogEnabled() bool { return slowLogState.Load() != nil }

// LogSlow offers a finished profile to the installed slow-query log; it is
// emitted when its elapsed time reaches the threshold. The analyze entry
// points call this automatically; the in-situ pipeline and the mining pass
// feed their selection/mining profiles through it too. Nil-safe, no-op
// when no log is installed.
func LogSlow(p *Profile) {
	sink := slowLogState.Load()
	if sink == nil || p == nil {
		return
	}
	if time.Duration(p.ElapsedNs) < sink.threshold {
		return
	}
	tel.slowQueries.Inc()
	attrs := []slog.Attr{
		slog.String("query", p.Query),
		slog.String("detail", p.Detail),
		slog.Duration("elapsed", p.Elapsed()),
	}
	if p.TraceID != "" {
		attrs = append(attrs, slog.String("trace_id", p.TraceID))
	}
	if p.PlanDigest != "" {
		attrs = append(attrs, slog.String("plan_digest", p.PlanDigest))
	}
	attrs = append(attrs, slog.Any("profile", json.RawMessage(p.JSON())))
	sink.logger.LogAttrs(context.Background(), slog.LevelWarn, "slow query", attrs...)
}
