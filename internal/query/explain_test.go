package query

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"log/slog"

	"insitubits/internal/binning"
	"insitubits/internal/bitvec"
	"insitubits/internal/codec"
	"insitubits/internal/index"
)

// explainTestData mixes long homogeneous value blocks (which compress into
// fills) with scattered noise (which forces literals), so every codec's
// encoding exercises both branches of the differential accounting below.
func explainTestData(n int) []float64 {
	data := make([]float64, n)
	for i := range data {
		switch {
		case i%127 == 0:
			data[i] = float64(i % 8) // scattered literals
		case (i/512)%3 == 0:
			data[i] = float64((i / 512) % 8) // long constant blocks
		default:
			data[i] = float64((i / 31) % 8)
		}
	}
	return data
}

func explainTestIndex(t *testing.T, id codec.ID) *index.Index {
	t.Helper()
	m, err := binning.NewUniform(0, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	return index.BuildCodec(explainTestData(31*400), m, id)
}

// refScan recomputes scanCost by parsing the encoded payload directly, per
// the byte-level layouts in docs/FORMATS.md. It shares no code with the
// production Stats walkers, which is what makes the comparison differential.
func refScan(t *testing.T, bm bitvec.Bitmap) Cost {
	t.Helper()
	switch v := bm.(type) {
	case *bitvec.Vector:
		var c Cost
		words := v.RawWords()
		c.WordsScanned = int64(len(words))
		c.BytesDecoded = int64(4 * len(words))
		for _, w := range words {
			if w&(1<<31) != 0 {
				c.FillWords++
				c.FillSegments += int64(w & (1<<30 - 1))
			} else {
				c.LiteralWords++
			}
		}
		return c
	case *bitvec.BBC:
		data := v.RawBytes()
		c := Cost{
			WordsScanned: int64((len(data) + 3) / 4),
			BytesDecoded: int64(len(data)),
		}
		runBytes := 0
		for i := 0; i < len(data); {
			tok := data[i]
			i++
			switch tok {
			case 0x80, 0x81: // zero/one run + uvarint byte count
				n, k := binary.Uvarint(data[i:])
				if k <= 0 {
					t.Fatalf("malformed BBC run count at byte %d", i)
				}
				i += k
				c.FillWords++
				runBytes += int(n)
			default: // literal chunk: tok+1 payload bytes
				c.LiteralWords += int64(tok) + 1
				i += int(tok) + 1
			}
		}
		c.FillSegments = int64(runBytes * 8 / bitvec.SegmentBits)
		return c
	case *bitvec.Dense:
		n := len(v.RawWords())
		return Cost{WordsScanned: int64(n), LiteralWords: int64(n), BytesDecoded: int64(4 * n)}
	}
	t.Fatalf("unknown bitmap type %T", bm)
	return Cost{}
}

func scanFields(c Cost) [5]int64 {
	return [5]int64{c.WordsScanned, c.FillWords, c.FillSegments, c.LiteralWords, c.BytesDecoded}
}

// TestAnalyzeMatchesEncodedComposition is the tentpole differential test:
// for every codec, the per-bin costs an ANALYZE profile reports must equal
// the composition obtained by independently parsing each bin's encoded
// payload byte-for-byte.
func TestAnalyzeMatchesEncodedComposition(t *testing.T) {
	for _, id := range []codec.ID{codec.WAH, codec.BBC, codec.Dense} {
		t.Run(id.String(), func(t *testing.T) {
			x := explainTestIndex(t, id)
			// Spatial restriction forces the bitmap-scanning count path.
			s := Subset{ValueLo: 0, ValueHi: 8, SpatialLo: 0, SpatialHi: x.N()}
			got, p, err := CountAnalyze(context.Background(), x, s)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Count(context.Background(), x, s)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("CountAnalyze = %d, plain Count = %d", got, want)
			}
			scans := 0
			for _, n := range p.Root.Children {
				if n.Op != "count-range" {
					continue
				}
				scans++
				if n.Bin < 0 || n.Bin >= x.Bins() {
					t.Fatalf("count-range node with bin %d", n.Bin)
				}
				ref := refScan(t, x.Bitmap(n.Bin))
				if scanFields(n.Cost) != scanFields(ref) {
					t.Errorf("bin %d (%s): profile cost %+v != payload-parsed %+v",
						n.Bin, n.Codec, n.Cost, ref)
				}
				if n.Codec != id.String() {
					t.Errorf("bin %d codec label %q, want %q", n.Bin, n.Codec, id)
				}
			}
			if scans != x.Bins() {
				t.Errorf("profiled %d bin scans, want %d", scans, x.Bins())
			}

			// Same differential check on the OR-merge operands of Bits.
			_, bp, err := BitsAnalyze(context.Background(), x, Subset{ValueLo: 2, ValueHi: 6})
			if err != nil {
				t.Fatal(err)
			}
			merged := 0
			for _, n := range bp.Root.Children {
				if n.Op != "or-merge" {
					continue
				}
				for _, c := range n.Children {
					if c.Op != "or" {
						continue
					}
					merged++
					ref := refScan(t, x.Bitmap(c.Bin))
					if scanFields(c.Cost) != scanFields(ref) {
						t.Errorf("or operand bin %d: cost %+v != payload-parsed %+v",
							c.Bin, c.Cost, ref)
					}
				}
			}
			if merged != 4 {
				t.Errorf("or-merge touched %d bins, want 4 (bins 2..5)", merged)
			}
		})
	}
}

// TestAnalyzeMatchesPlainResults checks the other half of the execution
// contract: the Analyze variants return byte-identical results to the plain
// entry points, across codecs and subset shapes.
func TestAnalyzeMatchesPlainResults(t *testing.T) {
	subsets := []Subset{
		{ValueLo: 1, ValueHi: 5},
		{SpatialLo: 100, SpatialHi: 9000},
		{ValueLo: 0, ValueHi: 7, SpatialLo: 31, SpatialHi: 11000},
	}
	for _, id := range []codec.ID{codec.WAH, codec.BBC, codec.Dense} {
		x := explainTestIndex(t, id)
		for _, s := range subsets {
			name := id.String() + "/" + s.describe()
			c1, err1 := Count(context.Background(), x, s)
			c2, p, err2 := CountAnalyze(context.Background(), x, s)
			if err1 != nil || err2 != nil || c1 != c2 {
				t.Fatalf("%s: count %d/%v vs analyze %d/%v", name, c1, err1, c2, err2)
			}
			if p == nil || p.Mode != ModeAnalyze || p.ElapsedNs <= 0 {
				t.Fatalf("%s: malformed profile %+v", name, p)
			}
			a1, _ := Sum(context.Background(), x, s)
			a2, _, _ := SumAnalyze(context.Background(), x, s)
			if a1 != a2 {
				t.Errorf("%s: sum %+v != analyzed %+v", name, a1, a2)
			}
			m1, _ := Mean(context.Background(), x, s)
			m2, _, _ := MeanAnalyze(context.Background(), x, s)
			if m1 != m2 {
				t.Errorf("%s: mean %+v != analyzed %+v", name, m1, m2)
			}
			q1, _ := Quantile(context.Background(), x, s, 0.5)
			q2, _, _ := QuantileAnalyze(context.Background(), x, s, 0.5)
			if q1 != q2 {
				t.Errorf("%s: quantile %+v != analyzed %+v", name, q1, q2)
			}
			lo1, hi1, _ := MinMax(context.Background(), x, s)
			lo2, hi2, _, _ := MinMaxAnalyze(context.Background(), x, s)
			if lo1 != lo2 || hi1 != hi2 {
				t.Errorf("%s: minmax (%+v,%+v) != analyzed (%+v,%+v)", name, lo1, hi1, lo2, hi2)
			}
			v1, _ := Bits(context.Background(), x, s)
			v2, _, _ := BitsAnalyze(context.Background(), x, s)
			if v1.Count() != v2.Count() || !bitvec.ToVector(v1).Equal(v2) {
				t.Errorf("%s: bits differ between plain and analyze", name)
			}
		}
		sb := Subset{ValueLo: 2, ValueHi: 7}
		pr1, err1 := Correlation(context.Background(), x, x, subsets[0], sb)
		pr2, p, err2 := CorrelationAnalyze(context.Background(), x, x, subsets[0], sb)
		if err1 != nil || err2 != nil || pr1 != pr2 {
			t.Fatalf("%s: correlation %+v/%v vs analyze %+v/%v", id, pr1, err1, pr2, err2)
		}
		if p.Total().WordsScanned == 0 {
			t.Errorf("%s: correlation profile charged no words", id)
		}
	}
}

// TestExplainWithinFactorOfAnalyze pins the estimator's accuracy: on the
// scan-cost figures (words, bytes), EXPLAIN must land within 4x of what
// ANALYZE measures, in both directions.
func TestExplainWithinFactorOfAnalyze(t *testing.T) {
	const factor = 4.0
	within := func(est, act int64) bool {
		if act == 0 {
			return est == 0
		}
		r := float64(est) / float64(act)
		return r >= 1/factor && r <= factor
	}
	for _, id := range []codec.ID{codec.WAH, codec.BBC, codec.Dense} {
		x := explainTestIndex(t, id)
		s := Subset{ValueLo: 1, ValueHi: 6, SpatialLo: 0, SpatialHi: x.N()}
		for _, op := range []Op{OpBits, OpCount, OpSum, OpMean, OpQuantile, OpMinMax} {
			est, err := Explain(x, s, op)
			if err != nil {
				t.Fatal(err)
			}
			if est.Mode != ModeExplain || est.ElapsedNs != 0 {
				t.Fatalf("%s/%s: EXPLAIN executed something: %+v", id, op, est)
			}
			var prof *Profile
			switch op {
			case OpBits:
				_, prof, err = BitsAnalyze(context.Background(), x, s)
			case OpCount:
				_, prof, err = CountAnalyze(context.Background(), x, s)
			case OpSum:
				_, prof, err = SumAnalyze(context.Background(), x, s)
			case OpMean:
				_, prof, err = MeanAnalyze(context.Background(), x, s)
			case OpQuantile:
				_, prof, err = QuantileAnalyze(context.Background(), x, s, 0.5)
			case OpMinMax:
				_, _, prof, err = MinMaxAnalyze(context.Background(), x, s)
			}
			if err != nil {
				t.Fatal(err)
			}
			et, at := est.Total(), prof.Total()
			if !within(et.WordsScanned, at.WordsScanned) {
				t.Errorf("%s/%s: estimated %d words vs measured %d (beyond %gx)",
					id, op, et.WordsScanned, at.WordsScanned, factor)
			}
			if !within(et.BytesDecoded, at.BytesDecoded) {
				t.Errorf("%s/%s: estimated %d bytes vs measured %d (beyond %gx)",
					id, op, et.BytesDecoded, at.BytesDecoded, factor)
			}
			if at.WordsScanned == 0 {
				t.Errorf("%s/%s: spatially-restricted ANALYZE scanned no words", id, op)
			}
		}
	}
}

func TestExplainCorrelationEstimates(t *testing.T) {
	x := explainTestIndex(t, codec.Auto)
	est, err := ExplainCorrelation(x, x, Subset{ValueLo: 1, ValueHi: 6}, Subset{})
	if err != nil {
		t.Fatal(err)
	}
	if est.Mode != ModeExplain {
		t.Fatalf("mode = %q", est.Mode)
	}
	_, prof, err := CorrelationAnalyze(context.Background(), x, x, Subset{ValueLo: 1, ValueHi: 6}, Subset{})
	if err != nil {
		t.Fatal(err)
	}
	et, at := est.Total(), prof.Total()
	if et.WordsScanned == 0 || at.WordsScanned == 0 {
		t.Fatalf("empty totals: est %+v act %+v", et, at)
	}
	// The joint pass dominates both sides; the estimate may assume more bin
	// pairs than survive the subset masks, so allow a wide one-sided band.
	if et.WordsScanned < at.WordsScanned/8 {
		t.Errorf("correlation estimate %d words far below measured %d", et.WordsScanned, at.WordsScanned)
	}
}

// TestSlowQueryLog checks the routing contract: with a slow-log installed,
// plain entry points self-profile and emit the full profile JSON for
// queries over the threshold; below the threshold (or with the log
// disabled) they stay silent.
func TestSlowQueryLog(t *testing.T) {
	x := explainTestIndex(t, codec.Auto)
	s := Subset{ValueLo: 0, ValueHi: 8, SpatialLo: 0, SpatialHi: x.N()}

	var buf bytes.Buffer
	SetSlowLog(slog.New(slog.NewJSONHandler(&buf, nil)), 0)
	defer SetSlowLog(nil, 0)
	if _, err := Count(context.Background(), x, s); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	if line == "" {
		t.Fatal("threshold 0 logged nothing")
	}
	var entry struct {
		Msg     string `json:"msg"`
		Query   string `json:"query"`
		Profile struct {
			Mode string `json:"mode"`
			Plan *Node  `json:"plan"`
		} `json:"profile"`
	}
	if err := json.Unmarshal([]byte(strings.SplitN(line, "\n", 2)[0]), &entry); err != nil {
		t.Fatalf("slow-log line is not JSON: %v\n%s", err, line)
	}
	if entry.Msg != "slow query" || entry.Query != "count" {
		t.Errorf("unexpected log entry %+v", entry)
	}
	if entry.Profile.Mode != string(ModeAnalyze) || entry.Profile.Plan == nil ||
		len(entry.Profile.Plan.Children) == 0 {
		t.Errorf("embedded profile incomplete: %s", line)
	}

	buf.Reset()
	SetSlowLog(slog.New(slog.NewJSONHandler(&buf, nil)), time.Hour)
	if _, err := Count(context.Background(), x, s); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("sub-threshold query logged: %s", buf.String())
	}

	buf.Reset()
	SetSlowLog(nil, 0)
	if _, err := Count(context.Background(), x, s); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("disabled slow log still wrote: %s", buf.String())
	}
}

func TestTopK(t *testing.T) {
	tk := NewTopK(3)
	for _, ns := range []int64{5, 1, 9, 3, 7, 2} {
		tk.Offer(&Profile{Query: "q", ElapsedNs: ns})
	}
	ps := tk.Profiles()
	if len(ps) != 3 || tk.Seen() != 6 {
		t.Fatalf("kept %d of %d, want 3 of 6", len(ps), tk.Seen())
	}
	for i, want := range []int64{9, 7, 5} {
		if ps[i].ElapsedNs != want {
			t.Errorf("rank %d: ElapsedNs = %d, want %d", i, ps[i].ElapsedNs, want)
		}
	}
	var nilTK *TopK
	nilTK.Offer(&Profile{})
	if got := nilTK.Profiles(); got != nil {
		t.Errorf("nil TopK returned %v", got)
	}
}
