package query

import (
	"context"
	"fmt"
	"time"

	"insitubits/internal/bitcache"
	"insitubits/internal/bitvec"
	"insitubits/internal/codec"
	"insitubits/internal/index"
	"insitubits/internal/metrics"
	"insitubits/internal/qlog"
	"insitubits/internal/telemetry"
)

// Op names a profileable query entry point for Explain.
type Op string

// Ops accepted by Explain (Correlation and the Masked family have their
// own dedicated Explain/Analyze entry points because of their extra
// arguments).
const (
	OpBits     Op = "bits"
	OpCount    Op = "count"
	OpSum      Op = "sum"
	OpMean     Op = "mean"
	OpQuantile Op = "quantile"
	OpMinMax   Op = "minmax"
)

// ParseOp maps a CLI flag value to an Op.
func ParseOp(s string) (Op, error) {
	switch op := Op(s); op {
	case OpBits, OpCount, OpSum, OpMean, OpQuantile, OpMinMax:
		return op, nil
	default:
		return "", fmt.Errorf("query: unknown op %q (want bits, count, sum, mean, quantile, or minmax)", s)
	}
}

func (s Subset) describe() string {
	switch {
	case s.hasValue() && s.hasSpatial():
		return fmt.Sprintf("value=[%g,%g) spatial=[%d,%d)", s.ValueLo, s.ValueHi, s.SpatialLo, s.SpatialHi)
	case s.hasValue():
		return fmt.Sprintf("value=[%g,%g)", s.ValueLo, s.ValueHi)
	case s.hasSpatial():
		return fmt.Sprintf("spatial=[%d,%d)", s.SpatialLo, s.SpatialHi)
	default:
		return "all"
	}
}

// newAnalyze opens an ANALYZE profile whose root node collects the query's
// operators; finish stamps the wall time, records the error, and submits
// the profile to the slow-query log. The profile carries the trace ID from
// ctx (when the caller runs under a trace) so slow-log records are
// cross-referenceable against /debug/traces. light selects capture-only
// accounting (see Node.light): exact word/byte totals, no per-operand
// composition re-scan — the plain entry points pass captureOnly() so a
// query that is profiled only to feed the workload log stays inside the
// <2% budget, while explicit ANALYZE and slow-log profiles pass false.
func newAnalyze(ctx context.Context, query, detail string, light bool) (*Profile, func(error)) {
	p := &Profile{
		Query:   query,
		Mode:    ModeAnalyze,
		Detail:  detail,
		TraceID: telemetry.TraceIDOf(ctx),
		Root:    &Node{Op: query, Bin: -1, light: light},
	}
	start := time.Now()
	return p, func(err error) {
		p.ElapsedNs = time.Since(start).Nanoseconds()
		if err != nil {
			p.Err = err.Error()
		}
		LogSlow(p)
	}
}

// ---------------------------------------------------------------------------
// Always-on per-codec operation counters. These fire on the plain path too
// (prof == nil): each bitmap operand a query operator consumes bumps the
// counter of its codec, and merging operands of different codecs bumps the
// cross-codec fallback counter (those ops leave the native word/byte merge
// kernels for the generic 31-bit run path — see internal/bitvec/generic.go).
// Cost: one predictable-branch type switch plus an atomic add per operand,
// the same order as the index.Count cache-hit counter.

// codecTally batches per-bin operand counts inside a hot loop so the loop
// pays one atomic add per codec instead of one per bin — that difference is
// what keeps the disabled-ANALYZE overhead guard under its 2% budget.
type codecTally [4]int64

func (ct *codecTally) bin(x *index.Index, b int) { ct[x.Codec(b)]++ }

func (ct *codecTally) flush() {
	for id, n := range ct {
		if n == 0 {
			continue
		}
		if c := tel.codecOps[id]; c != nil {
			c.Add(n)
		}
	}
}

// addOperandSpans emits one zero-duration marker child span per codec
// class with the number of encoded operands that class contributed — the
// bounded trace-side view of "which codecs did this operator consume"
// (one span per codec, never one per bin). Nil-safe.
func addOperandSpans(sp *telemetry.ActiveSpan, ct codecTally) {
	if sp == nil {
		return
	}
	for id, n := range ct {
		if n == 0 {
			continue
		}
		c := sp.Child("operand." + codec.ID(id).String())
		c.SetAttrInt("operands", n)
		c.End()
	}
}

// countPairOperands counts both operands of a binary bitmap op and returns
// 1 when their codecs differ (a fallback merge), else 0.
func countPairOperands(a, b bitvec.Bitmap) int64 {
	ca, cb := codec.Of(a), codec.Of(b)
	if c := tel.codecOps[ca]; c != nil {
		c.Inc()
	}
	if c := tel.codecOps[cb]; c != nil {
		c.Inc()
	}
	if ca != cb {
		tel.fallbackMerges.Inc()
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------------
// Profiled implementations. Each xxxImpl is the single execution path for
// its query: the exported plain entry points call it with prof == nil
// (every profiling hook no-ops), the Analyze variants pass the profile
// root. The sp parameter is the caller's identity-trace span (nil when the
// request is untraced — every trace hook is nil-safe); operators record
// bounded child spans under it, one per operator plus one marker span per
// codec class consumed. ANALYZE accounting convention: an operator is
// charged one full scan of each encoded operand it consumes (bitvec's
// kernels are not instrumented — that would tax the hot loops the <2%
// overhead budget protects; the physical composition of the operands is
// the same number, read after the fact via Stats).

func bitsImpl(e *executor, x *index.Index, s Subset, prof *Node, sp *telemetry.ActiveSpan) (bitvec.Bitmap, error) {
	if err := s.validate(x.N()); err != nil {
		return nil, err
	}
	if !PlannerEnabled() {
		return bitsNaive(x, s, prof, sp)
	}
	p := planBits(x, s)
	optimize(p)
	v := e.exec(p, prof, sp)
	if prof != nil {
		prof.setRows(v.Count())
	}
	return v, nil
}

// bitsNaive is the pre-planner fixed-order execution: bins OR-merged in
// index order, then one AND with a freshly built range indicator. Kept as
// the reference the differential suite compares planned execution against
// (and the SetPlanner(false) escape hatch).
func bitsNaive(x *index.Index, s Subset, prof *Node, sp *telemetry.ActiveSpan) (bitvec.Bitmap, error) {
	var v bitvec.Bitmap
	if s.hasValue() {
		n := prof.child("or-merge", fmt.Sprintf("value=[%g,%g)", s.ValueLo, s.ValueHi))
		osp := sp.Child("or-merge")
		touched := 0
		var ct codecTally
		for b := 0; b < x.Bins(); b++ {
			if !s.binSelected(x, b) {
				continue
			}
			ct.bin(x, b)
			touched++
			n.binChild("or", x, b)
		}
		ct.flush()
		n.addCost(Cost{BinsTouched: touched})
		v = x.Query(s.ValueLo, s.ValueHi)
		n.setOut(v)
		osp.SetAttrInt("bins", int64(touched))
		addOperandSpans(osp, ct)
		osp.End()
	} else {
		n := prof.child("ones", "no value predicate")
		v = onesVector(x.N())
		n.setOut(v)
	}
	if s.hasSpatial() {
		n := prof.child("and-range", fmt.Sprintf("spatial=[%d,%d)", s.SpatialLo, s.SpatialHi))
		asp := sp.Child("and-range")
		r := rangeVector(x.N(), s.SpatialLo, s.SpatialHi)
		n.scanOperand(v)
		n.scanOperand(r)
		n.markFallback(countPairOperands(v, r))
		v = v.And(r)
		n.setOut(v)
		asp.SetAttr("codec", codecName(v))
		asp.End()
	}
	if prof != nil {
		prof.setRows(v.Count())
	}
	return v, nil
}

// binCounts runs the shared per-bin counting loop of Count/Sum/Quantile/
// MinMax: for each value-selected bin, the subset count — from the cached
// per-bin cardinality when there is no spatial restriction (no bitmap is
// touched), else by scanning the bin's bitmap over the element range.
// visit receives every selected bin with its count.
func binCounts(x *index.Index, s Subset, prof *Node, sp *telemetry.ActiveSpan, visit func(b, c int)) {
	lo, hi := s.spatialBounds(x.N())
	bsp := sp.Child("bin-counts")
	cached, scanned, pruned := 0, 0, 0
	planned := PlannerEnabled()
	var ct codecTally
	for b := 0; b < x.Bins(); b++ {
		if !s.binSelected(x, b) {
			continue
		}
		// Planner empty-bin pruning: a bin with zero cached cardinality
		// contributes nothing to any count, so its bitmap is never scanned.
		// Bin order is preserved — Quantile and MinMax depend on it.
		if planned && x.Count(b) == 0 {
			pruned++
			continue
		}
		var c int
		if !s.hasSpatial() {
			cached++
			c = x.Count(b)
			n := prof.child("cached-count", "")
			if n != nil {
				n.Bin = b
				n.Codec = x.Codec(b).String()
				n.setRows(c)
			}
		} else {
			scanned++
			ct.bin(x, b)
			c = x.Bitmap(b).CountRange(lo, hi)
			prof.binChild("count-range", x, b).setRows(c)
		}
		visit(b, c)
	}
	ct.flush()
	if pruned > 0 {
		prof.child("prune", fmt.Sprintf("skipped %d empty bins", pruned))
	}
	if bsp != nil {
		bsp.SetAttrInt("cached_counts", int64(cached))
		bsp.SetAttrInt("scanned_bins", int64(scanned))
		addOperandSpans(bsp, ct)
		bsp.End()
	}
}

func countImpl(x *index.Index, s Subset, prof *Node, sp *telemetry.ActiveSpan) (int, error) {
	if err := s.validate(x.N()); err != nil {
		return 0, err
	}
	total := 0
	bins := 0
	binCounts(x, s, prof, sp, func(b, c int) {
		total += c
		bins++
	})
	prof.addCost(Cost{BinsTouched: bins})
	prof.setRows(total)
	return total, nil
}

func sumImpl(x *index.Index, s Subset, prof *Node, sp *telemetry.ActiveSpan) (Aggregate, error) {
	if err := s.validate(x.N()); err != nil {
		return Aggregate{}, err
	}
	var agg Aggregate
	bins := 0
	binCounts(x, s, prof, sp, func(b, c int) {
		bins++
		if c == 0 {
			return
		}
		bl, bh := x.Mapper().Low(b), x.Mapper().High(b)
		agg.Count += c
		agg.Estimate += float64(c) * (bl + bh) / 2
		agg.Lo += float64(c) * bl
		agg.Hi += float64(c) * bh
	})
	prof.addCost(Cost{BinsTouched: bins})
	prof.setRows(agg.Count)
	return agg, nil
}

func meanImpl(x *index.Index, s Subset, prof *Node, sp *telemetry.ActiveSpan) (Aggregate, error) {
	sum, err := sumImpl(x, s, prof.child("sum", s.describe()), sp)
	if err != nil || sum.Count == 0 {
		return Aggregate{}, err
	}
	n := float64(sum.Count)
	prof.setRows(sum.Count)
	return Aggregate{Count: sum.Count, Estimate: sum.Estimate / n, Lo: sum.Lo / n, Hi: sum.Hi / n}, nil
}

func quantileImpl(x *index.Index, s Subset, q float64, prof *Node, sp *telemetry.ActiveSpan) (Aggregate, error) {
	if q < 0 || q > 1 {
		return Aggregate{}, fmt.Errorf("query: quantile %g out of [0,1]", q)
	}
	if err := s.validate(x.N()); err != nil {
		return Aggregate{}, err
	}
	counts := make([]int, x.Bins())
	total := 0
	bins := 0
	binCounts(x, s, prof, sp, func(b, c int) {
		counts[b] = c
		total += c
		bins++
	})
	prof.addCost(Cost{BinsTouched: bins})
	prof.setRows(total)
	if total == 0 {
		return Aggregate{}, nil
	}
	// Rank of the quantile element (1-based), clamped into [1, total].
	rank := int(q*float64(total-1)) + 1
	cum := 0
	for b := 0; b < x.Bins(); b++ {
		cum += counts[b]
		if cum >= rank {
			bl, bh := x.Mapper().Low(b), x.Mapper().High(b)
			n := prof.child("rank-scan", fmt.Sprintf("rank %d of %d", rank, total))
			if n != nil {
				n.Bin = b
			}
			return Aggregate{Count: total, Estimate: (bl + bh) / 2, Lo: bl, Hi: bh}, nil
		}
	}
	return Aggregate{}, fmt.Errorf("query: internal: rank %d beyond %d elements", rank, total)
}

func minMaxImpl(x *index.Index, s Subset, prof *Node, sp *telemetry.ActiveSpan) (min, max Aggregate, err error) {
	if err := s.validate(x.N()); err != nil {
		return Aggregate{}, Aggregate{}, err
	}
	first, last := -1, -1
	total := 0
	bins := 0
	binCounts(x, s, prof, sp, func(b, c int) {
		bins++
		if c == 0 {
			return
		}
		if first < 0 {
			first = b
		}
		last = b
		total += c
	})
	prof.addCost(Cost{BinsTouched: bins})
	prof.setRows(total)
	if first < 0 {
		return Aggregate{}, Aggregate{}, nil
	}
	m := x.Mapper()
	min = Aggregate{Count: total, Estimate: (m.Low(first) + m.High(first)) / 2, Lo: m.Low(first), Hi: m.High(first)}
	max = Aggregate{Count: total, Estimate: (m.Low(last) + m.High(last)) / 2, Lo: m.Low(last), Hi: m.High(last)}
	return min, max, nil
}

func sumMaskedImpl(x *index.Index, mask bitvec.Bitmap, prof *Node, sp *telemetry.ActiveSpan) (Aggregate, error) {
	if mask.Len() != x.N() {
		return Aggregate{}, fmt.Errorf("query: mask covers %d bits for %d elements", mask.Len(), x.N())
	}
	msp := sp.Child("and-count-mask")
	var ops codecTally
	var agg Aggregate
	bins := 0
	for b := 0; b < x.Bins(); b++ {
		if x.Count(b) == 0 {
			continue
		}
		bins++
		ops.bin(x, b)
		n := prof.binChild("and-count-mask", x, b)
		n.scanOperand(mask)
		n.markFallback(countPairOperands(x.Bitmap(b), mask))
		c := x.Bitmap(b).AndCount(mask)
		n.setRows(c)
		if c == 0 {
			continue
		}
		bl, bh := x.Mapper().Low(b), x.Mapper().High(b)
		agg.Count += c
		agg.Estimate += float64(c) * (bl + bh) / 2
		agg.Lo += float64(c) * bl
		agg.Hi += float64(c) * bh
	}
	prof.addCost(Cost{BinsTouched: bins})
	prof.setRows(agg.Count)
	if msp != nil {
		msp.SetAttrInt("bins", int64(bins))
		addOperandSpans(msp, ops)
		msp.End()
	}
	return agg, nil
}

func correlationImpl(e *executor, xa, xb *index.Index, sa, sb Subset, prof *Node, sp *telemetry.ActiveSpan) (metrics.Pair, error) {
	if xa.N() != xb.N() {
		return metrics.Pair{}, fmt.Errorf("query: indices over %d and %d elements", xa.N(), xb.N())
	}
	if err := sa.validate(xa.N()); err != nil {
		return metrics.Pair{}, err
	}
	if err := sb.validate(xb.N()); err != nil {
		return metrics.Pair{}, err
	}
	if sa.hasSpatial() != sb.hasSpatial() || (sa.hasSpatial() && (sa.SpatialLo != sb.SpatialLo || sa.SpatialHi != sb.SpatialHi)) {
		return metrics.Pair{}, fmt.Errorf("query: correlation needs one common spatial range, got [%d,%d) vs [%d,%d)",
			sa.SpatialLo, sa.SpatialHi, sb.SpatialLo, sb.SpatialHi)
	}
	var mask bitvec.Bitmap
	var mn *Node
	var maskKey string
	var maskGens []uint64
	if PlannerEnabled() {
		// The planner flattens bits(xa,sa) AND bits(xb,sb) into one
		// multi-operand AND: the shared range indicator is built once and
		// operands merge most-selective-first.
		pl := planCorrelationMask(xa, xb, sa, sb)
		optimize(pl)
		mn = prof.child("mask", "planned: elements satisfying both predicates")
		msp := sp.Child("mask")
		mask = e.exec(pl, mn, msp)
		msp.End()
		maskKey, maskGens = pl.key, pl.gens
	} else {
		aSpan := sp.Child("bits-a")
		maskA, err := bitsNaive(xa, sa, prof.child("bits-a", sa.describe()), aSpan)
		aSpan.End()
		if err != nil {
			return metrics.Pair{}, err
		}
		bSpan := sp.Child("bits-b")
		maskB, err := bitsNaive(xb, sb, prof.child("bits-b", sb.describe()), bSpan)
		bSpan.End()
		if err != nil {
			return metrics.Pair{}, err
		}
		mn = prof.child("and-masks", "elements satisfying both predicates")
		mn.scanOperand(maskA)
		mn.scanOperand(maskB)
		mn.markFallback(countPairOperands(maskA, maskB))
		mask = maskA.And(maskB)
		mn.setOut(mask)
	}
	n := mask.Count()
	mn.setRows(n)
	// Per-bin restrictions below are cached under and(bin, mask): repeated
	// correlations over the same subsets (the interactive exploration
	// pattern) skip the whole restriction pass on a warm cache.
	restrictKey := func(x *index.Index, b int) string {
		if maskKey == "" {
			return ""
		}
		return bitcache.AndKey(bitcache.BinKey(x.Generation(), b), maskKey)
	}
	restrictGens := func(x *index.Index) []uint64 {
		return append(append([]uint64(nil), maskGens...), x.Generation())
	}
	if n == 0 {
		return metrics.Pair{}, nil
	}
	ha := make([]int, xa.Bins())
	hb := make([]int, xb.Bins())
	joint := make([][]int, xa.Bins())
	for i := range joint {
		joint[i] = make([]int, xb.Bins())
	}
	// Restricted marginals and joint distribution via AND with the mask.
	// Profile shape: one node per A-bin restriction, and one node per B-bin
	// that folds in the cost of its row of joint AndCounts — per-pair nodes
	// would explode the tree quadratically.
	restrictedA := make([]bitvec.Bitmap, xa.Bins())
	an := prof.child("restrict-a", "per-bin AND with subset mask")
	rsp := sp.Child("restrict-a")
	var opsA codecTally
	binsA := 0
	for i := 0; i < xa.Bins(); i++ {
		if xa.Count(i) == 0 {
			continue
		}
		binsA++
		var bn *Node
		rk := restrictKey(xa, i)
		if hit := e.lookup(rk); hit != nil {
			bn = e.cacheHitNode(an, "and-mask", "", hit)
			if bn != nil {
				bn.Bin = i
			}
			restrictedA[i] = hit
		} else {
			opsA.bin(xa, i)
			bn = an.binChild("and-mask", xa, i)
			bn.scanOperand(mask)
			bn.markFallback(countPairOperands(xa.Bitmap(i), mask))
			restrictedA[i] = xa.Bitmap(i).And(mask)
			e.store(rk, restrictedA[i], restrictGens(xa))
			e.markMiss(bn, rk)
		}
		ha[i] = restrictedA[i].Count()
		bn.setRows(ha[i])
	}
	an.addCost(Cost{BinsTouched: binsA})
	if rsp != nil {
		rsp.SetAttrInt("bins", int64(binsA))
		addOperandSpans(rsp, opsA)
		rsp.End()
	}
	jn := prof.child("joint", "B-bin restriction + per-pair AndCount row")
	jsp := sp.Child("joint")
	binsB := 0
	for j := 0; j < xb.Bins(); j++ {
		if xb.Count(j) == 0 {
			continue
		}
		binsB++
		var bn *Node
		var vj bitvec.Bitmap
		rk := restrictKey(xb, j)
		if hit := e.lookup(rk); hit != nil {
			bn = e.cacheHitNode(jn, "and-mask", "", hit)
			if bn != nil {
				bn.Bin = j
			}
			vj = hit
		} else {
			bn = jn.binChild("and-mask", xb, j)
			bn.scanOperand(mask)
			bn.markFallback(countPairOperands(xb.Bitmap(j), mask))
			vj = xb.Bitmap(j).And(mask)
			e.store(rk, vj, restrictGens(xb))
			e.markMiss(bn, rk)
		}
		hb[j] = vj.Count()
		bn.setRows(hb[j])
		if hb[j] == 0 {
			continue
		}
		for i := 0; i < xa.Bins(); i++ {
			if ha[i] == 0 {
				continue
			}
			bn.scanOperand(restrictedA[i])
			bn.scanOperand(vj)
			bn.markFallback(countPairOperands(restrictedA[i], vj))
			joint[i][j] = restrictedA[i].AndCount(vj)
		}
	}
	jn.addCost(Cost{BinsTouched: binsB})
	if jsp != nil {
		jsp.SetAttrInt("bins", int64(binsB))
		jsp.End()
	}
	ea := metrics.Entropy(ha, n)
	eb := metrics.Entropy(hb, n)
	mi := metrics.MutualInformation(joint, ha, hb, n)
	prof.setRows(n)
	return metrics.Pair{
		EntropyA: ea, EntropyB: eb, MI: mi,
		CondEntropyAB: ea - mi, CondEntropyBA: eb - mi,
	}, nil
}

func maskedSumImpl(m *Masked, s Subset, prof *Node, sp *telemetry.ActiveSpan) (Aggregate, error) {
	if err := s.validate(m.X.N()); err != nil {
		return Aggregate{}, err
	}
	lo, hi := s.spatialBounds(m.X.N())
	vsp := sp.Child("and-valid")
	var ops codecTally
	var agg Aggregate
	bins := 0
	for b := 0; b < m.X.Bins(); b++ {
		if !s.binSelected(m.X, b) || m.X.Count(b) == 0 {
			continue
		}
		bins++
		ops.bin(m.X, b)
		n := prof.binChild("and-valid", m.X, b)
		n.scanOperand(m.Valid)
		n.markFallback(countPairOperands(m.X.Bitmap(b), m.Valid))
		vb := m.X.Bitmap(b).And(m.Valid)
		n.setOut(vb)
		c := vb.CountRange(lo, hi)
		n.setRows(c)
		if c == 0 {
			continue
		}
		bl, bh := m.X.Mapper().Low(b), m.X.Mapper().High(b)
		agg.Count += c
		agg.Estimate += float64(c) * (bl + bh) / 2
		agg.Lo += float64(c) * bl
		agg.Hi += float64(c) * bh
	}
	prof.addCost(Cost{BinsTouched: bins})
	prof.setRows(agg.Count)
	if vsp != nil {
		vsp.SetAttrInt("bins", int64(bins))
		addOperandSpans(vsp, ops)
		vsp.End()
	}
	return agg, nil
}

// ---------------------------------------------------------------------------
// ANALYZE entry points: execute the query and return the result together
// with the measured operator profile. The profile is also offered to the
// slow-query log (SetSlowLog).

// BitsAnalyze is Bits with a measured profile.
func BitsAnalyze(ctx context.Context, x *index.Index, s Subset) (bitvec.Bitmap, *Profile, error) {
	ctx, _, end := begin(ctx, "query.bits", tel.bits, x)
	defer end()
	return bitsAnalyze(ctx, x, s, false)
}

func bitsAnalyze(ctx context.Context, x *index.Index, s Subset, light bool) (bitvec.Bitmap, *Profile, error) {
	p, finish := newAnalyze(ctx, string(OpBits), s.describe(), light)
	stampPlan(p, bitsPlanShape(x, s))
	v, err := bitsImpl(newExecutor(ctx), x, s, p.Root, telemetry.SpanFromContext(ctx))
	finish(err)
	capture(p, x, capParams{s: s}, bitmapDigest(v, err), err)
	return v, p, err
}

// CountAnalyze is Count with a measured profile.
func CountAnalyze(ctx context.Context, x *index.Index, s Subset) (int, *Profile, error) {
	ctx, _, end := begin(ctx, "query.count", tel.count, x)
	defer end()
	return countAnalyze(ctx, x, s, false)
}

func countAnalyze(ctx context.Context, x *index.Index, s Subset, light bool) (int, *Profile, error) {
	p, finish := newAnalyze(ctx, string(OpCount), s.describe(), light)
	stampPlan(p, "")
	n, err := countImpl(x, s, p.Root, telemetry.SpanFromContext(ctx))
	finish(err)
	capture(p, x, capParams{s: s}, qlog.DigestInt(n), err)
	return n, p, err
}

// SumAnalyze is Sum with a measured profile.
func SumAnalyze(ctx context.Context, x *index.Index, s Subset) (Aggregate, *Profile, error) {
	ctx, _, end := begin(ctx, "query.sum", tel.sum, x)
	defer end()
	return sumAnalyze(ctx, x, s, false)
}

func sumAnalyze(ctx context.Context, x *index.Index, s Subset, light bool) (Aggregate, *Profile, error) {
	p, finish := newAnalyze(ctx, string(OpSum), s.describe(), light)
	stampPlan(p, "")
	agg, err := sumImpl(x, s, p.Root, telemetry.SpanFromContext(ctx))
	finish(err)
	capture(p, x, capParams{s: s}, DigestAggregate(agg), err)
	return agg, p, err
}

// MeanAnalyze is Mean with a measured profile.
func MeanAnalyze(ctx context.Context, x *index.Index, s Subset) (Aggregate, *Profile, error) {
	ctx, _, end := begin(ctx, "query.mean", tel.sum, x)
	defer end()
	return meanAnalyze(ctx, x, s, false)
}

func meanAnalyze(ctx context.Context, x *index.Index, s Subset, light bool) (Aggregate, *Profile, error) {
	p, finish := newAnalyze(ctx, string(OpMean), s.describe(), light)
	stampPlan(p, "")
	agg, err := meanImpl(x, s, p.Root, telemetry.SpanFromContext(ctx))
	finish(err)
	capture(p, x, capParams{s: s}, DigestAggregate(agg), err)
	return agg, p, err
}

// QuantileAnalyze is Quantile with a measured profile.
func QuantileAnalyze(ctx context.Context, x *index.Index, s Subset, q float64) (Aggregate, *Profile, error) {
	ctx, _, end := begin(ctx, "query.quantile", tel.quantile, x)
	defer end()
	return quantileAnalyze(ctx, x, s, q, false)
}

func quantileAnalyze(ctx context.Context, x *index.Index, s Subset, q float64, light bool) (Aggregate, *Profile, error) {
	p, finish := newAnalyze(ctx, string(OpQuantile), fmt.Sprintf("q=%g %s", q, s.describe()), light)
	stampPlan(p, "")
	agg, err := quantileImpl(x, s, q, p.Root, telemetry.SpanFromContext(ctx))
	finish(err)
	capture(p, x, capParams{s: s, q: q}, DigestAggregate(agg), err)
	return agg, p, err
}

// MinMaxAnalyze is MinMax with a measured profile.
func MinMaxAnalyze(ctx context.Context, x *index.Index, s Subset) (min, max Aggregate, p *Profile, err error) {
	ctx, _, end := begin(ctx, "query.minmax", tel.minmax, x)
	defer end()
	return minMaxAnalyze(ctx, x, s, false)
}

func minMaxAnalyze(ctx context.Context, x *index.Index, s Subset, light bool) (min, max Aggregate, p *Profile, err error) {
	p, finish := newAnalyze(ctx, string(OpMinMax), s.describe(), light)
	stampPlan(p, "")
	min, max, err = minMaxImpl(x, s, p.Root, telemetry.SpanFromContext(ctx))
	finish(err)
	capture(p, x, capParams{s: s}, DigestMinMax(min, max), err)
	return min, max, p, err
}

// SumMaskedAnalyze is SumMasked with a measured profile.
func SumMaskedAnalyze(ctx context.Context, x *index.Index, mask bitvec.Bitmap) (Aggregate, *Profile, error) {
	ctx, _, end := begin(ctx, "query.sum-masked", tel.masked, x)
	defer end()
	return sumMaskedAnalyze(ctx, x, mask, false)
}

func sumMaskedAnalyze(ctx context.Context, x *index.Index, mask bitvec.Bitmap, light bool) (Aggregate, *Profile, error) {
	p, finish := newAnalyze(ctx, "sum-masked", fmt.Sprintf("mask bits=%d", mask.Len()), light)
	stampPlan(p, "")
	agg, err := sumMaskedImpl(x, mask, p.Root, telemetry.SpanFromContext(ctx))
	finish(err)
	capture(p, x, capParams{}, DigestAggregate(agg), err)
	return agg, p, err
}

// CorrelationAnalyze is Correlation with a measured profile.
func CorrelationAnalyze(ctx context.Context, xa, xb *index.Index, sa, sb Subset) (metrics.Pair, *Profile, error) {
	ctx, _, end := begin(ctx, "query.correlation", tel.correlation, xa)
	defer end()
	return correlationAnalyze(ctx, xa, xb, sa, sb, false)
}

func correlationAnalyze(ctx context.Context, xa, xb *index.Index, sa, sb Subset, light bool) (metrics.Pair, *Profile, error) {
	p, finish := newAnalyze(ctx, "correlation", fmt.Sprintf("a: %s | b: %s", sa.describe(), sb.describe()), light)
	stampPlan(p, corrPlanShape(xa, xb, sa, sb))
	pair, err := correlationImpl(newExecutor(ctx), xa, xb, sa, sb, p.Root, telemetry.SpanFromContext(ctx))
	finish(err)
	capture(p, xa, capParams{s: sa, sb: &sb, xb: xb}, DigestPair(pair), err)
	return pair, p, err
}

// SumAnalyze is Masked.Sum with a measured profile.
func (m *Masked) SumAnalyze(ctx context.Context, s Subset) (Aggregate, *Profile, error) {
	ctx, _, end := begin(ctx, "query.masked-sum", tel.masked, m.X)
	defer end()
	return m.sumAnalyze(ctx, s, false)
}

func (m *Masked) sumAnalyze(ctx context.Context, s Subset, light bool) (Aggregate, *Profile, error) {
	p, finish := newAnalyze(ctx, "masked-sum", s.describe(), light)
	stampPlan(p, "")
	agg, err := maskedSumImpl(m, s, p.Root, telemetry.SpanFromContext(ctx))
	finish(err)
	capture(p, m.X, capParams{s: s}, DigestAggregate(agg), err)
	return agg, p, err
}

// ---------------------------------------------------------------------------
// EXPLAIN: estimate the plan's cost from per-bin index metadata — encoded
// size, word count, cached cardinality, codec — without executing anything.
// O(bins), no bitmap is decoded. Estimates carry WordsScanned, BytesDecoded
// and Rows; the fill/literal split needs a scan of the encoding, so it is
// ANALYZE-only. Value predicates select whole bins (bin-granular semantics),
// so estimated rows for partially-overlapped edge bins are upper bounds;
// spatial restrictions scale row estimates by the covered fraction but not
// scan costs (CountRange still walks the encoding from the start).

// Explain returns the estimated plan of op over the subset.
func Explain(x *index.Index, s Subset, op Op) (*Profile, error) {
	if err := s.validate(x.N()); err != nil {
		return nil, err
	}
	p := &Profile{Query: string(op), Mode: ModeExplain, Detail: s.describe(), Root: &Node{Op: string(op), Bin: -1}}
	switch op {
	case OpBits:
		explainBits(x, s, p.Root)
	case OpCount, OpSum, OpQuantile, OpMinMax:
		explainBinCounts(x, s, p.Root)
	case OpMean:
		explainBinCounts(x, s, p.Root.child("sum", s.describe()))
	default:
		return nil, fmt.Errorf("query: cannot explain op %q", op)
	}
	return p, nil
}

// spatialFraction is the fraction of elements the spatial range covers.
func (s Subset) spatialFraction(n int) float64 {
	if !s.hasSpatial() || n == 0 {
		return 1
	}
	return float64(s.SpatialHi-s.SpatialLo) / float64(n)
}

// estBin estimates the cost of consuming bin b once: its full encoded form.
func estBin(x *index.Index, b int, frac float64) Cost {
	bm := x.Bitmap(b)
	return Cost{
		WordsScanned: int64(bm.Words()),
		BytesDecoded: int64(bm.SizeBytes()),
		Rows:         int64(float64(x.Count(b)) * frac),
	}
}

func explainBits(x *index.Index, s Subset, root *Node) {
	if PlannerEnabled() {
		// Show the optimized plan: chosen operand order, pruned bins, and
		// merge strategy, with estimated costs on the same tree shapes the
		// executor will emit.
		p := planBits(x, s)
		optimize(p)
		explainPlanNode(p, root)
		root.setRows(int(p.est.Rows))
		return
	}
	frac := s.spatialFraction(x.N())
	var rows int64
	if s.hasValue() {
		n := root.child("or-merge", fmt.Sprintf("value=[%g,%g)", s.ValueLo, s.ValueHi))
		touched := 0
		for b := 0; b < x.Bins(); b++ {
			if !s.binSelected(x, b) {
				continue
			}
			touched++
			c := n.child("or", "")
			c.Bin = b
			c.Codec = x.Codec(b).String()
			c.Cost = estBin(x, b, 1)
			rows += c.Cost.Rows
		}
		n.addCost(Cost{BinsTouched: touched})
		n.setRows(int(rows))
	} else {
		rows = int64(x.N())
		root.child("ones", "no value predicate").setRows(x.N())
	}
	if s.hasSpatial() {
		segWords := int64((x.N() + bitvec.SegmentBits - 1) / bitvec.SegmentBits)
		n := root.child("and-range", fmt.Sprintf("spatial=[%d,%d)", s.SpatialLo, s.SpatialHi))
		n.addCost(Cost{WordsScanned: segWords, BytesDecoded: 4 * segWords})
		rows = int64(float64(rows) * frac)
		n.setRows(int(rows))
	}
	root.setRows(int(rows))
}

func explainBinCounts(x *index.Index, s Subset, root *Node) {
	frac := s.spatialFraction(x.N())
	touched, pruned := 0, 0
	planned := PlannerEnabled()
	var rows int64
	for b := 0; b < x.Bins(); b++ {
		if !s.binSelected(x, b) {
			continue
		}
		if planned && x.Count(b) == 0 {
			pruned++
			continue
		}
		touched++
		var c *Node
		if !s.hasSpatial() {
			c = root.child("cached-count", "")
			c.Cost.Rows = int64(x.Count(b))
		} else {
			c = root.child("count-range", "")
			c.Cost = estBin(x, b, frac)
		}
		c.Bin = b
		c.Codec = x.Codec(b).String()
		rows += c.Cost.Rows
	}
	if pruned > 0 {
		root.child("prune", fmt.Sprintf("skipped %d empty bins", pruned))
	}
	root.addCost(Cost{BinsTouched: touched})
	root.setRows(int(rows))
}

// ExplainCorrelation estimates the correlation query's plan: both subset
// materializations, the mask AND, the per-bin restrictions of both
// variables, and the joint AndCount grid over occupied bin pairs.
func ExplainCorrelation(xa, xb *index.Index, sa, sb Subset) (*Profile, error) {
	if err := sa.validate(xa.N()); err != nil {
		return nil, err
	}
	if err := sb.validate(xb.N()); err != nil {
		return nil, err
	}
	p := &Profile{
		Query: "correlation", Mode: ModeExplain,
		Detail: fmt.Sprintf("a: %s | b: %s", sa.describe(), sb.describe()),
		Root:   &Node{Op: "correlation", Bin: -1},
	}
	explainBits(xa, sa, p.Root.child("bits-a", sa.describe()))
	explainBits(xb, sb, p.Root.child("bits-b", sb.describe()))
	segWords := int64((xa.N() + bitvec.SegmentBits - 1) / bitvec.SegmentBits)
	p.Root.child("and-masks", "elements satisfying both predicates").
		addCost(Cost{WordsScanned: 2 * segWords, BytesDecoded: 8 * segWords})
	occupied := func(x *index.Index) (bins int, words, bytes int64) {
		for b := 0; b < x.Bins(); b++ {
			if x.Count(b) == 0 {
				continue
			}
			bins++
			words += int64(x.Bitmap(b).Words())
			bytes += int64(x.Bitmap(b).SizeBytes())
		}
		return
	}
	binsA, wordsA, bytesA := occupied(xa)
	binsB, wordsB, bytesB := occupied(xb)
	p.Root.child("restrict-a", "per-bin AND with subset mask").
		addCost(Cost{BinsTouched: binsA, WordsScanned: wordsA + int64(binsA)*segWords, BytesDecoded: bytesA + 4*int64(binsA)*segWords})
	// Each occupied B bin is restricted once, then AndCounted against every
	// occupied restricted A bin; restricted bitmaps are bounded by the mask.
	jointOps := int64(binsA) * int64(binsB)
	p.Root.child("joint", fmt.Sprintf("%d×%d bin pairs", binsA, binsB)).
		addCost(Cost{BinsTouched: binsB, WordsScanned: wordsB + int64(binsB)*segWords + 2*jointOps*segWords, BytesDecoded: bytesB + 4*int64(binsB)*segWords + 8*jointOps*segWords})
	return p, nil
}
