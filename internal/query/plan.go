package query

import (
	"fmt"
	"sort"
	"sync/atomic"

	"insitubits/internal/bitcache"
	"insitubits/internal/bitvec"
	"insitubits/internal/codec"
	"insitubits/internal/index"
)

// This file is the plan/optimize half of the query pipeline. Bits-shaped
// requests (subset materialization, correlation masks) are first lowered to
// a small algebraic IR — ORs of bin bitmaps, built range/ones indicators,
// multi-operand ANDs — then optimized with the same O(1) per-bin statistics
// the EXPLAIN estimator reads: empty bins are pruned, provably-empty
// subtrees collapse without executing anything, AND operands are reordered
// cheapest/most-selective-first (compressed-bitmap op cost tracks encoded
// size — Lemire, Kaser & Aouiche), and built leaves pick the codec that
// keeps merges on a native kernel. Execution (exec.go) then walks the
// optimized tree, consulting the bitmap cache at every node that has a
// canonical key. SetPlanner(false) reverts every entry point to the
// fixed-order naive path, which the differential tests compare against.

// plannerOff gates the pipeline; zero value = planner enabled.
var plannerOff atomic.Bool

// SetPlanner toggles the cost-based planner. Disabled, every entry point
// executes operands in fixed index order with no cache, exactly as before
// the planner existed — the reference behaviour of the differential suite.
func SetPlanner(on bool) { plannerOff.Store(!on) }

// PlannerEnabled reports whether the cost-based planner is active.
func PlannerEnabled() bool { return !plannerOff.Load() }

type planKind int

const (
	planEmpty planKind = iota // provably zero result, nothing to execute
	planOnes                  // built all-ones indicator
	planRange                 // built [lo,hi) spatial indicator
	planBinOr                 // OR of the value-selected bins of one index
	planAnd                   // multi-operand AND
)

// planNode is one operator of the bits IR. The builder fills the shape
// fields; optimize fills estimates, cache keys, operand order, and notes.
type planNode struct {
	kind planKind
	n    int // bit length of the result

	// planBinOr
	x         *index.Index
	vlo, vhi  float64
	bins      []int
	uniform   bool // all kept bins share one codec
	uniformID codec.ID

	// planRange
	slo, shi int

	// planOnes / planRange: codec to build the leaf in (Auto = WAH default);
	// the optimizer's cross-codec merge strategy sets it to match a sibling.
	hint codec.ID

	// planAnd
	children []*planNode

	est  Cost     // estimated cost of computing this node once
	key  string   // canonical cache key ("" = uncacheable / not worth it)
	gens []uint64 // index generations the expression reads
	note string   // human-readable optimizer decision, surfaced in plans
}

// planLeafOnes builds the all-ones leaf over n bits.
func planLeafOnes(n int) *planNode {
	return &planNode{kind: planOnes, n: n, key: bitcache.OnesKey(n), est: Cost{Rows: int64(n)}}
}

// planLeafRange builds the [lo,hi) indicator leaf over n bits.
func planLeafRange(n, lo, hi int) *planNode {
	segWords := int64((n + bitvec.SegmentBits - 1) / bitvec.SegmentBits)
	return &planNode{
		kind: planRange, n: n, slo: lo, shi: hi,
		key: bitcache.RangeKey(n, lo, hi),
		est: Cost{WordsScanned: segWords, BytesDecoded: 4 * segWords, Rows: int64(hi - lo)},
	}
}

// planValue lowers a value predicate to the OR of its selected bins.
func planValue(x *index.Index, s Subset) *planNode {
	nd := &planNode{kind: planBinOr, n: x.N(), x: x, vlo: s.ValueLo, vhi: s.ValueHi,
		gens: []uint64{x.Generation()}}
	for b := 0; b < x.Bins(); b++ {
		if s.binSelected(x, b) {
			nd.bins = append(nd.bins, b)
		}
	}
	return nd
}

// planBits lowers Bits(x, s): the value OR (or all-ones) ANDed with the
// spatial range indicator.
func planBits(x *index.Index, s Subset) *planNode {
	var val *planNode
	if s.hasValue() {
		val = planValue(x, s)
	} else {
		val = planLeafOnes(x.N())
	}
	if !s.hasSpatial() {
		return val
	}
	return &planNode{kind: planAnd, n: x.N(),
		children: []*planNode{val, planLeafRange(x.N(), s.SpatialLo, s.SpatialHi)}}
}

// planCorrelationMask lowers the correlation subset mask, flattening
// bits(xa,sa) AND bits(xb,sb) into one multi-operand AND: both value ORs
// plus at most one shared spatial indicator. The naive path builds the
// range twice and merges in fixed order; flattening lets the optimizer
// order all operands together and build the indicator once.
func planCorrelationMask(xa, xb *index.Index, sa, sb Subset) *planNode {
	n := xa.N()
	var ops []*planNode
	if sa.hasValue() {
		ops = append(ops, planValue(xa, sa))
	}
	if sb.hasValue() {
		ops = append(ops, planValue(xb, sb))
	}
	if sa.hasSpatial() {
		ops = append(ops, planLeafRange(n, sa.SpatialLo, sa.SpatialHi))
	}
	switch len(ops) {
	case 0:
		return planLeafOnes(n)
	case 1:
		return ops[0]
	}
	return &planNode{kind: planAnd, n: n, children: ops}
}

// optimize finalizes a plan in place using only O(1) per-bin metadata —
// the same inputs as the EXPLAIN estimator. It never touches a bitmap.
func optimize(p *planNode) {
	switch p.kind {
	case planBinOr:
		kept := p.bins[:0]
		var words, bytes, rows int64
		pruned := 0
		p.uniform = true
		for _, b := range p.bins {
			if p.x.Count(b) == 0 {
				pruned++
				continue
			}
			if len(kept) == 0 {
				p.uniformID = p.x.Codec(b)
			} else if p.x.Codec(b) != p.uniformID {
				p.uniform = false
			}
			kept = append(kept, b)
			bm := p.x.Bitmap(b)
			words += int64(bm.Words())
			bytes += int64(bm.SizeBytes())
			rows += int64(p.x.Count(b))
		}
		p.bins = kept
		if pruned > 0 {
			p.note = fmt.Sprintf("pruned %d empty bins", pruned)
		}
		if len(p.bins) == 0 {
			p.kind = planEmpty
			p.note = "provably empty: no occupied bins in value range"
			p.est, p.key, p.gens = Cost{}, "", nil
			return
		}
		p.est = Cost{BinsTouched: len(p.bins), WordsScanned: words, BytesDecoded: bytes, Rows: rows}
		keys := make([]string, len(p.bins))
		for i, b := range p.bins {
			keys[i] = bitcache.BinKey(p.x.Generation(), b)
		}
		p.key = bitcache.OrKey(keys...)
	case planAnd:
		for _, c := range p.children {
			optimize(c)
		}
		for _, c := range p.children {
			if c.kind == planEmpty {
				p.kind = planEmpty
				p.n = c.n
				p.note = "short-circuit: " + c.note
				p.children, p.est, p.key, p.gens = nil, Cost{}, "", nil
				return
			}
		}
		// x AND ones = x: drop identity operands (keep one if nothing else).
		if len(p.children) > 1 {
			kept := p.children[:0]
			for _, c := range p.children {
				if c.kind != planOnes {
					kept = append(kept, c)
				}
			}
			if len(kept) == 0 {
				kept = p.children[:1]
			}
			p.children = kept
		}
		if len(p.children) == 1 {
			*p = *p.children[0]
			return
		}
		// Cheapest / most-selective first: fewer expected rows means both a
		// cheaper merge and a better chance of an early empty intermediate;
		// encoded size breaks ties (op cost tracks it).
		sort.SliceStable(p.children, func(i, j int) bool {
			a, b := p.children[i], p.children[j]
			if a.est.Rows != b.est.Rows {
				return a.est.Rows < b.est.Rows
			}
			return a.est.WordsScanned < b.est.WordsScanned
		})
		p.note = "operands ordered most-selective-first"
		// Cross-codec merge strategy: built leaves (range/ones) are free to
		// pick their codec, so match them to a uniformly-dense bin operand —
		// the AND then stays on the native dense word kernel instead of the
		// generic 31-bit run merge.
		dense := false
		for _, c := range p.children {
			if c.kind == planBinOr && c.uniform && c.uniformID == codec.Dense {
				dense = true
			}
		}
		if dense {
			for _, c := range p.children {
				if c.kind == planRange || c.kind == planOnes {
					c.hint = codec.Dense
					c.note = "built dense: native merge with dense operands"
				}
			}
		}
		// Estimates: cost sums the operands; rows assume independent
		// predicates (product of selectivities over n).
		cacheable := true
		sel := 1.0
		for _, c := range p.children {
			p.est.add(c.est)
			if p.n > 0 {
				sel *= float64(c.est.Rows) / float64(p.n)
			}
			if c.key == "" {
				cacheable = false
			}
			p.gens = append(p.gens, c.gens...)
		}
		p.est.Rows = int64(sel * float64(p.n))
		if cacheable {
			keys := make([]string, len(p.children))
			for i, c := range p.children {
				keys[i] = c.key
			}
			p.key = bitcache.AndKey(keys...)
		} else {
			p.key = ""
		}
	}
}
