package query

import (
	"fmt"
	"strings"

	"insitubits/internal/bitvec"
	"insitubits/internal/index"
	"insitubits/internal/metrics"
	"insitubits/internal/qlog"
)

// This file is the query side of the workload capture plane: when a
// qlog.Writer is installed (qlog.Install), every entry point routes
// through the same analyze funnel the slow-query log uses, and the
// finished profile is folded into one qlog.Record — parameters, plan
// digest, cache verdict, measured words scanned, wall time, and a
// canonical result digest that internal/replay byte-compares against.
// With no writer installed the plain path pays one atomic load.

// captureEnabled reports whether a workload log is installed.
func captureEnabled() bool { return qlog.Active() != nil }

// profiled reports whether plain entry points must route through the
// profiled execution path: a slow-query log or a workload log (or both)
// is installed. Two atomic loads on the disabled path.
func profiled() bool { return slowLogEnabled() || captureEnabled() }

// captureOnly reports whether a plain entry point routing through the
// funnel does so only to feed the workload log: no slow-query log wants
// the full fill/literal cost breakdown, so the profile can run in light
// accounting mode (exact words/bytes, no per-operand composition re-scan
// — see Node.light). This is what keeps qlog-enabled production runs
// inside the <2% overhead budget; explicit *Analyze calls never go light.
func captureOnly() bool { return !slowLogEnabled() }

// ---------------------------------------------------------------------------
// Plan digests. A plan digest fingerprints the executable plan — the op,
// its parameters, the planner mode, and (for bits-shaped queries under the
// planner) the optimized IR shape: operand order after most-selective-first
// sorting, pruned bins, merge hints. Index generations are deliberately
// excluded, so the digest is stable across cache warm/cold and joins
// slow-log records to workload records of the same logical plan.

// stampPlan sets p.PlanDigest from the profile header plus an optional
// rendered IR shape.
func stampPlan(p *Profile, shape string) {
	mode := "planner=off"
	if PlannerEnabled() {
		mode = "planner=on"
	}
	s := p.Query + "|" + p.Detail + "|" + mode
	if shape != "" {
		s += "|" + shape
	}
	p.PlanDigest = qlog.DigestString(s)
}

// bitsPlanShape renders the optimized IR of Bits(x, s); "" when the
// planner is off (the naive path has no plan to fingerprint beyond the
// parameters, which stampPlan already covers).
func bitsPlanShape(x *index.Index, s Subset) string {
	if !PlannerEnabled() {
		return ""
	}
	pl := planBits(x, s)
	optimize(pl)
	return planShape(pl)
}

// corrPlanShape renders the optimized IR of the correlation subset mask.
func corrPlanShape(xa, xb *index.Index, sa, sb Subset) string {
	if !PlannerEnabled() {
		return ""
	}
	pl := planCorrelationMask(xa, xb, sa, sb)
	optimize(pl)
	return planShape(pl)
}

// planShape renders an optimized plan node as a compact generation-free
// expression, e.g. "and(or(v=[1,3),bins=2-4),range(0,500,dense))".
func planShape(p *planNode) string {
	var b strings.Builder
	writeShape(&b, p)
	return b.String()
}

func writeShape(b *strings.Builder, p *planNode) {
	switch p.kind {
	case planEmpty:
		b.WriteString("empty")
	case planOnes:
		fmt.Fprintf(b, "ones(%d,%s)", p.n, p.hint)
	case planRange:
		fmt.Fprintf(b, "range(%d,%d,%s)", p.slo, p.shi, p.hint)
	case planBinOr:
		fmt.Fprintf(b, "or(v=[%g,%g),bins=%s)", p.vlo, p.vhi, formatBins(p.bins))
	case planAnd:
		b.WriteString("and(")
		for i, c := range p.children {
			if i > 0 {
				b.WriteByte(',')
			}
			writeShape(b, c)
		}
		b.WriteByte(')')
	}
}

// formatBins compresses a sorted bin list into run notation: "2-5,7".
func formatBins(bins []int) string {
	if len(bins) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i < len(bins); {
		j := i
		for j+1 < len(bins) && bins[j+1] == bins[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if j > i {
			fmt.Fprintf(&b, "%d-%d", bins[i], bins[j])
		} else {
			fmt.Fprintf(&b, "%d", bins[i])
		}
		i = j + 1
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Result digests shared by capture and replay: both sides must compose the
// digest from the same fields in the same order, so they live here.

// DigestAggregate fingerprints an Aggregate result bit-exactly.
func DigestAggregate(a Aggregate) string {
	return qlog.DigestFloats(float64(a.Count), a.Estimate, a.Lo, a.Hi)
}

// DigestMinMax fingerprints a MinMax result pair.
func DigestMinMax(min, max Aggregate) string {
	return qlog.DigestFloats(
		float64(min.Count), min.Estimate, min.Lo, min.Hi,
		float64(max.Count), max.Estimate, max.Lo, max.Hi)
}

// DigestPair fingerprints a correlation metrics result.
func DigestPair(pr metrics.Pair) string {
	return qlog.DigestFloats(pr.EntropyA, pr.EntropyB, pr.MI, pr.CondEntropyAB, pr.CondEntropyBA)
}

// ---------------------------------------------------------------------------
// Record emission.

// capParams carries the replayable parameters of one captured query.
type capParams struct {
	s  Subset
	sb *Subset // correlation second operand
	xb *index.Index
	q  float64
}

// capture folds a finished profile plus its parameters and result digest
// into one workload-log record. Called by every analyze funnel after
// finish(err); no-op (one atomic load) when no log is installed.
func capture(p *Profile, x *index.Index, cp capParams, digest string, err error) {
	w := qlog.Active()
	if w == nil {
		return
	}
	rec := &qlog.Record{
		Op:         p.Query,
		Detail:     p.Detail,
		ValueLo:    cp.s.ValueLo,
		ValueHi:    cp.s.ValueHi,
		SpatialLo:  cp.s.SpatialLo,
		SpatialHi:  cp.s.SpatialHi,
		Q:          cp.q,
		PlanDigest: p.PlanDigest,
		Planner:    PlannerEnabled(),
		Cache:      p.cacheVerdict(),
		ElapsedNs:  p.ElapsedNs,
		TraceID:    p.TraceID,
		Err:        p.Err,
	}
	if x != nil {
		rec.N = x.N()
		rec.Gen = x.Generation()
	}
	if cp.sb != nil {
		rec.Correlated = true
		rec.BValueLo = cp.sb.ValueLo
		rec.BValueHi = cp.sb.ValueHi
		rec.BSpatialLo = cp.sb.SpatialLo
		rec.BSpatialHi = cp.sb.SpatialHi
	}
	if cp.xb != nil {
		rec.GenB = cp.xb.Generation()
	}
	total := p.Total()
	rec.Bins = total.BinsTouched
	rec.Words = total.WordsScanned
	rec.Rows = total.Rows
	if err == nil {
		rec.Result = digest
	}
	w.Append(rec)
}

// bitmapDigest is capture's nil-tolerant DigestBitmap wrapper.
func bitmapDigest(v bitvec.Bitmap, err error) string {
	if err != nil || v == nil {
		return ""
	}
	d, _ := qlog.DigestBitmap(v)
	return d
}

// CaptureProfile appends a finished non-entry-point profile (in-situ
// selection scoring, mining pair profiling) to the active workload log.
// The record is not replayable — it carries no subset parameters — but it
// records the op, words scanned, elapsed time, cache verdict, and result
// digest, so workload analysis sees the full query mix an in-situ run
// generates. Nil-safe; one atomic load when no log is installed.
func CaptureProfile(p *Profile, resultDigest string) {
	w := qlog.Active()
	if w == nil || p == nil {
		return
	}
	total := p.Total()
	w.Append(&qlog.Record{
		Op:         p.Query,
		Detail:     p.Detail,
		PlanDigest: p.PlanDigest,
		Planner:    PlannerEnabled(),
		Cache:      p.cacheVerdict(),
		Bins:       total.BinsTouched,
		Words:      total.WordsScanned,
		Rows:       total.Rows,
		ElapsedNs:  p.ElapsedNs,
		Result:     resultDigest,
		TraceID:    p.TraceID,
		Err:        p.Err,
	})
}
